// Package repro is a Go reproduction of "Parallel sparse matrix-vector
// multiplication as a test case for hybrid MPI+OpenMP programming"
// (Schubert, Hager, Fehske, Wellein; arXiv:1101.0091).
//
// The library lives under internal/: the distributed hybrid SpMV kernels
// (internal/core) run for real on an in-process message-passing runtime
// (internal/chanmpi) and are re-enacted, with the paper's MPI progress
// semantics and calibrated ccNUMA/network models, on a discrete-event
// cluster simulator (internal/des, fluid, machine, netmodel, simmpi,
// simexec) that regenerates every figure of the evaluation. See README.md
// and DESIGN.md.
//
// The node-level kernel engine is format-generic: every storage scheme —
// CRS (internal/matrix), ELLPACK, JDS and SELL-C-σ (internal/formats) —
// satisfies the matrix.Format interface, so the parallel engine
// (spmv.Parallel), the solver operators (CG, Lanczos, KPM) and the
// distributed modes run on any of them; see internal/formats/README.md for
// when SELL-C-σ beats CRS and how its σ-sorting composes with the RCM
// reordering of internal/rcm. All row kernels accumulate in the same
// floating-point order (4-way unrolled over a single accumulator), so
// serial CRS, parallel, split two-pass and SELL-C-σ results are
// bit-identical. The overlap variants' second pass runs on a compacted
// remote matrix holding only halo-coupled rows, and parallel regions are
// dispatched through a sense-reversing barrier (one broadcast + one
// completion signal per region) instead of per-worker channels.
//
// cmd/spmv-bench -snapshot writes a kernel GFlop/s snapshot (see
// BENCH_1.json) that seeds the repo's performance trajectory.
package repro
