// Package repro is a Go reproduction of "Parallel sparse matrix-vector
// multiplication as a test case for hybrid MPI+OpenMP programming"
// (Schubert, Hager, Fehske, Wellein; arXiv:1101.0091).
//
// The library lives under internal/: the distributed hybrid SpMV kernels
// (internal/core) run for real on an in-process message-passing runtime
// (internal/chanmpi) and are re-enacted, with the paper's MPI progress
// semantics and calibrated ccNUMA/network models, on a discrete-event
// cluster simulator (internal/des, fluid, machine, netmodel, simmpi,
// simexec) that regenerates every figure of the evaluation. See README.md
// and DESIGN.md.
//
// The kernel engine is format-generic end to end: every storage scheme —
// CRS (internal/matrix), ELLPACK, JDS and SELL-C-σ (internal/formats) —
// satisfies the matrix.Format interface, so the parallel engine
// (spmv.Parallel), the solver operators (CG, Lanczos, KPM) and all three
// distributed modes run on any of them. Plan.ConvertFormat takes a
// matrix.FormatBuilder (e.g. formats.SELLBuilder) and converts both the
// full local matrix (vector mode without overlap) and the local half of
// the column split (naive overlap and task mode, via spmv.FormatSplit);
// the remote half always stays a compacted CSR of the halo-coupled rows.
// See internal/formats/README.md for the mode × format support matrix,
// when SELL-C-σ beats CRS — including in the overlap modes, where the
// Eq. (2) write-twice penalty scales with the halo — and how σ-sorting
// composes with the RCM reordering of internal/rcm. All row kernels
// accumulate in the same floating-point order (4-way unrolled over a
// single accumulator), so serial CRS, parallel, split two-pass and
// SELL-C-σ results are bit-identical in every mode. Each of the three
// passes (full, split-local, compacted remote) is chunked independently,
// balanced on its own nonzero counts; parallel regions are dispatched
// through a sense-reversing barrier (one broadcast + one completion signal
// per region) instead of per-worker channels.
//
// cmd/spmv-bench -snapshot writes a kernel GFlop/s snapshot covering the
// node kernels and the distributed modes × formats sweep (see BENCH_1.json,
// BENCH_2.json) that tracks the repo's performance trajectory.
package repro
