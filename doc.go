// Package repro is a Go reproduction of "Parallel sparse matrix-vector
// multiplication as a test case for hybrid MPI+OpenMP programming"
// (Schubert, Hager, Fehske, Wellein; arXiv:1101.0091).
//
// The library lives under internal/: the distributed hybrid SpMV kernels
// (internal/core) run for real on an in-process message-passing runtime
// (internal/chanmpi) and are re-enacted, with the paper's MPI progress
// semantics and calibrated ccNUMA/network models, on a discrete-event
// cluster simulator (internal/des, fluid, machine, netmodel, simmpi,
// simexec) that regenerates every figure of the evaluation. See README.md
// and DESIGN.md.
//
// # The session API: core.Cluster
//
// The distributed runtime is session-oriented, mirroring the paper's
// long-running applications (exact diagonalization, CG), where threads,
// communicators and halo buffers persist across thousands of spMVM
// iterations. core.NewCluster(plan, opts...) validates once and brings up
// one resident rank goroutine per plan rank — compute team, communicator
// and halo buffers included — configured through functional options
// (core.WithMode, WithThreads, WithFormat, WithTransport). The session
// then serves any number of jobs until Close:
//
//	cluster, err := core.NewCluster(plan, core.WithMode(core.TaskMode), core.WithThreads(4))
//	defer cluster.Close()
//	err = cluster.Mul(y, x, iters)                // distributed y = A^iters·x
//	err = cluster.Run(func(w *core.Worker) error { // SPMD job on the resident ranks
//		if err := w.Step(mode); err != nil { return err }
//		sum, err := w.Comm.AllreduceScalar(core.OpSum, v)
//		...
//		return nil
//	})
//	err = cluster.SetMode(core.VectorNaiveOverlap)        // live reconfiguration
//	err = cluster.Convert(formats.SELLBuilder{C: 32, Sigma: 256})
//
// Between jobs the rank goroutines block on a job queue, so sequential
// solves and benchmark sweeps reuse the same runtime instead of paying
// world + team spawn per call (BenchmarkClusterReuse measures the gap).
// SetMode switches the kernel organization and Convert swaps the storage
// format in place — results stay bit-identical across both. The solvers
// (solver.DistCG, solver.DistLanczos), the cmd/spmv-bench distributed
// sweep and all examples/ run on one resident Cluster; misuse
// (pattern-only plan, threads < 1, half-converted plan, unknown mode)
// surfaces as errors from NewCluster rather than panics.
//
// # Comm v2: the wire-capable transport contract
//
// core is decoupled from the concrete message-passing runtime by the
// core.Comm interface — error-first end to end, so misuse and transport
// failures surface as errors from the Cluster and solver entry points
// instead of panics (no panic is reachable through the interface). A
// transport dials a core.World that may own only a SUBSET of the ranks:
// core.Transport.Dial(ctx, size) blocks until every participating process
// has joined, World.LocalRanks lists the ranks this process drives, and
// the Cluster spins resident goroutines only for those. The default
// ChanTransport (the in-process chanmpi runtime) owns every rank and
// keeps today's single-process behavior bit-identically; internal/tcpmpi
// is the real multi-process TCP backend — rendezvous by address, rank
// ranges per process, length-prefixed binary frames, tree collectives
// with canonical rank-order combining (see internal/tcpmpi/README.md).
// Reductions combine in canonical rank order on every transport, so
// distributed solves are bit-reproducible across runs AND across
// transports: cmd/spmv-worker joins a world by address + rank range, and
// examples/tcp (the CI tcp-smoke job) verifies a two-OS-process DistCG
// bit-identical to the in-process solve.
//
// Migration from the v1 transport surface (PR 3) to Comm v2:
//
//	Transport.Connect(size) ([]Comm, error)   → Transport.Dial(ctx, size) (World, error);
//	                                            World.LocalRanks / World.Comm(rank) / World.Close
//	Comm.Isend/Irecv(…) Request               → Comm.Isend/Irecv(…) (Request, error)
//	Request.Wait() int (panics on failure)    → Request.Wait() error
//	Comm.Waitall(reqs…) / Barrier()           → both return error
//	Comm.Allreduce / AllreduceScalar /        → all return (value, error)
//	Comm.AllgatherInt64
//	Worker.Step(mode)                         → Worker.Step(mode) error
//	Cluster.Run(func(w *Worker))              → Cluster.Run(func(w *Worker) error) error
//	chanmpi panics (invalid rank, truncation, → typed errors: RankError, TruncationError,
//	  Allreduce length mismatch, failed world)  MismatchError, WorldError (re-exported by core);
//	                                            a failed rank fails the world, peers unwedge
//
// Migration from the deprecated per-call entry points (each is now a thin,
// bit-identical shim over a throwaway Cluster):
//
//	core.MulDistributed(plan, x, mode, t, iters) → core.NewCluster(plan, core.WithMode(mode), core.WithThreads(t));
//	                                               cluster.Mul(y, x, iters)
//	core.RunSPMD(plan, t, body)                  → core.NewCluster(plan, core.WithThreads(t)); cluster.Run(body)
//	core.NewWorker(rp, comm, t)                  → owned by the Cluster; use Cluster.Run to reach Workers
//	solver.DistCG(plan, b, x, mode, t, …)        → solver.DistCG(cluster, b, x, …)
//	solver.DistLanczos(plan, mode, t, m, seed)   → solver.DistLanczos(cluster, m, seed)
//	solver.DistOperator{Plan, Mode, Threads}     → solver.DistOperator{Cluster: cluster}
//
// # Steady-state performance contract
//
// The paper's workloads run thousands of back-to-back spMVM iterations,
// so the runtime guarantees that the RESIDENT iteration path is
// allocation-free: once a Cluster is warm, the following perform zero heap
// allocations per iteration on the chan transport (enforced by the
// TestAllocGate… tests, run as a dedicated CI step):
//
//   - Cluster.Mul in all three kernel modes (hence Worker.Step — halo
//     exchange, kernel passes, and the task-mode rendezvous);
//   - a chanmpi halo exchange over persistent channels, in either
//     post-first or send-first order;
//   - scalar reductions (Comm.AllreduceScalar), i.e. the per-iteration dot
//     products of the solvers;
//   - a solver.DistCG iteration (all per-solve state is preallocated; the
//     same discipline holds for DistLanczos' basis and coefficients).
//
// The machinery behind the guarantee maps onto MPI's persistent
// communication requests: Comm.SendInit/RecvInit bind a (peer, tag,
// buffer) triple once and return a core.PersistentRequest — the analogue
// of MPI_Send_init/MPI_Recv_init — whose Start/Wait cycle reuses one
// resident request object (token-based completion, no per-message channel
// or request allocation). Workers compile their whole halo schedule into
// persistent channels at construction, and compile each kernel pass into a
// restartable spmv.Team region (spmv.Team.Compile/Exec), so a step is pure
// restart loops. Task mode launches the compiled local-pass region
// asynchronously (Team.Start) and Joins after the halo wait — the rank
// goroutine is the resident communication thread; no goroutine is spawned
// per step. On the wire transport, tcpmpi's reader goroutine decodes
// arriving frames DIRECTLY into a posted receive's user buffer (no
// intermediate slice; unposted arrivals go through recycled carriers), and
// the tree collectives run on resident per-communicator scratch.
//
// Two contract changes pay for this: Allreduce/AllgatherInt64 results are
// resident buffers, read-only and valid only until the rank's NEXT
// collective (copy them to retain); and a PersistentRequest requires one
// Wait per Start. cmd/spmv-bench records allocs_per_iter and ns_per_iter
// per kernel in its snapshots (BENCH_5.json onward) and takes
// -cpuprofile/-memprofile flags, so a regression shows up in both the
// alloc gates and the perf trajectory.
//
// # Fault tolerance: heartbeats, checkpoints, epoch restarts
//
// The failure model is fail-stop per world, mirroring an MPI job abort:
// the first failure poisons the world, blocked ranks unwedge with a
// *core.WorldError, and the cause chain carries a *core.PeerError naming
// the suspect rank range and the phase that implicated it (handshake,
// frame read, heartbeat, collective, send). Detection is layered on the
// wire transport: a peer that dies visibly (connection reset, EOF without
// the BYE departure frame) is named immediately by its reader goroutine;
// a peer that falls SILENT — powered off, partitioned, frozen — is caught
// by heartbeats (tcpmpi.Transport.HeartbeatInterval/HeartbeatTimeout:
// idle links carry kindPing frames, and silence past the timeout fails
// the world within a bounded interval); a live process whose rank never
// enters a collective is caught by the per-edge collective deadline
// (CollectiveTimeout), which names the tree edge that never delivered.
// internal/faultmpi is the matching test instrument: a transport
// decorator that injects deterministic, seeded faults (kill rank r at
// its k-th operation, drop/delay/duplicate matched frames, fail dials)
// so every detection and recovery path is exercised hermetically in-process.
//
// Recovery is epoch-structured. core.Supervisor.Run dials a fresh world
// per epoch, rebuilds the Cluster from the same plan, and hands the
// epoch to the caller's body; when the body dies of a world-level error
// (Recoverable — a WorldError/PeerError in the chain), it re-dials with
// bounded, jittered exponential backoff and runs the next epoch, while
// deterministic errors surface immediately. The solvers make epochs
// resumable: DistCGOpt/DistLanczosOpt snapshot their complete iteration
// state into a caller-owned checkpoint every k iterations at a collective
// boundary, and a restore is BIT-IDENTICAL — the snapshot is taken at the
// top-of-iteration boundary and restores the ITERATED residual rather
// than recomputing b−A·x, and every derived scalar comes from the
// canonical-rank-order reductions, so the resumed trajectory (iterates,
// residual history, MVM count) is exactly the uninterrupted one.
// internal/ckpt makes snapshots durable (atomic tmp+rename files with a
// CRC, one per process row-span) and, after a crash, Agree picks the
// newest iteration ALL processes hold via a min-reduction.
// cmd/spmv-worker wires the whole stack behind flags (-heartbeat,
// -coll-timeout, -rejoin, -ckpt-every, -ckpt-dir), departs gracefully on
// SIGINT/SIGTERM (BYE flushed, so peers see a departure, not a crash),
// and offers -kill-at-ckpt for chaos drills; examples/tcp -chaos and the
// CI chaos job SIGKILL a real worker process mid-solve and require the
// recovered two-process answer bit-identical to the uninterrupted one
// (TestSIGKILLedWorkerRecoversBitIdentical).
//
// The checkpoint cadence k trades snapshot bandwidth against recovery
// time, and both sides are bandwidth terms of the paper's cost model: a
// CG snapshot streams three local vectors (x, r, p — pure local memory
// and disk traffic, no communication), while recovery re-executes up to k
// iterations, each paying the full spMVM data volume of Eq. 1 (matrix +
// vector traffic, the memory-bandwidth bound) plus the halo transfer and
// — in the overlap modes — the Eq. 2 write-twice penalty. Since the
// snapshot moves O(3·N_local) doubles and a re-executed iteration moves
// the whole matrix (N_nzr ≫ 3 nonzeros per row in the paper's matrices),
// checkpointing every k ≳ 10 iterations keeps the steady-state overhead
// marginal while bounding recovery to k iterations of re-execution;
// BENCH_6.json records the measured heartbeat overhead and
// time-to-recover next to the kernel numbers (the resilience machinery —
// heartbeats enabled, checkpoints at that cadence — costs <5% steady
// state, and the alloc gates still hold with heartbeats on).
//
// # Gray failures: deadlines, slow-peer suspicion, overload grace
//
// Fail-stop is only half the failure model: a GRAY failure — a rank that
// is alive but slow, a link that stalls without dropping, a service
// that is up but drowning — never trips the fail-stop detectors, so the
// runtime bounds it in time instead. Cluster.MulContext and
// Cluster.RunContext attach a context to a job; when its deadline
// expires (or it is cancelled), Cluster.Interrupt poisons the in-flight
// world so every blocked rank unwedges, and the job returns a typed
// *core.DeadlineError. The contract is three-sided: a DeadlineError is
// NOT Recoverable — the supervisor must not burn restart epochs
// re-running work that timed out deterministically — it is FINAL for
// the request that carried the deadline, and it still poisons the world
// it interrupted, so batch-mates sharing that world are world-failed
// (Recoverable) and retried on the next epoch. The solvers take the
// same option (solver.CGOptions.Context / LanczosOptions.Context),
// checked at the top-of-iteration collective boundary so a timed-out
// solve still leaves a bit-identical resumable checkpoint. Below the
// job layer, tcpmpi runs slow-peer SUSPICION next to the heartbeat
// detectors: per-peer EWMA round-trip tracking flags a peer whose
// acknowledgements fall persistently behind as a *core.PeerError with
// phase "slow" — suspicion names the lagging rank range for operators
// and deadline attribution, but never fails the world by itself (a slow
// rank is not a dead rank; only silence past HeartbeatTimeout is).
// internal/faultmpi injects the matching gray faults deterministically
// (Slowdowns delay the k-th matched frame, Stalls freeze a link without
// closing it), and internal/simnet runs the same drills in virtual time
// at 1024+ ranks, where time-to-detect is measured exactly rather than
// slept for.
//
// The serving layer turns those primitives into overload grace.
// Requests carry an end-to-end deadline from admission: one already
// expired in its tenant queue fails with a DeadlineError (HTTP 504)
// without ever dispatching — it cannot poison a cluster — and one that
// expires mid-job interrupts only its own batch, with batch-mates
// retried under a per-tenant retry-token budget so a pathological
// tenant cannot convert world restarts into unbounded re-execution.
// Each matrix pool carries a circuit breaker: consecutive exhausted
// retries open it, admissions then fail fast (HTTP 503) instead of
// queueing behind a poisoned pool, and after a cooldown a single
// half-open probe decides recovery. Sustained queue growth past a high
// watermark triggers brown-out shedding — the lowest-priority, newest
// queued requests are shed (503) until the backlog returns to the low
// watermark, keeping admitted-work latency within a small factor of the
// unloaded baseline instead of stretching every tenant's tail.
// Server.Drain completes the lifecycle: admissions 503 while queued and
// in-flight work runs out, then shutdown proceeds (cmd/spmv-serve wires
// it to SIGINT/SIGTERM behind -drain-timeout, before the HTTP listener
// stops). cmd/spmv-load -deadline drives all of it and reports
// deadline-exceeded and 503-shed as their own outcome columns — graceful
// degradation, distinct from errors.
//
// # Static contracts: cmd/reprolint
//
// The runtime's load-bearing conventions are enforced at compile time by
// cmd/reprolint, a multichecker over the internal/analysis suite (a
// required CI job, also runnable as `go vet -vettool=`). Six analyzers,
// one invariant each:
//
//   - commerr — no error returned by a core.Comm, core.Request or
//     core.PersistentRequest method may be discarded (bare call, go/defer,
//     or blank-identifier assignment): the error-first contract above is
//     only real if every call site looks.
//   - persistwait — one Wait per Start on persistent channels: a Start
//     that can re-fire (straight-line or looped) without an intervening
//     Wait of the same request is flagged.
//   - hotalloc — functions annotated //repro:noalloc (the resident halo
//     exchange, the team barrier path, the row kernels, tcpmpi framing)
//     must not allocate: make/new/append, composite literals, closures,
//     go statements, string conversions and interface boxing are flagged.
//     Allocations inside early-exit guards are exempt; deliberate
//     grow-once resident-buffer sites carry //repro:alloc-ok.
//   - rankorder — reduction combine loops must iterate ranks in canonical
//     ascending order (descending, strided and map-ordered loops break
//     the bit-identical reproducibility every transport promises).
//   - clusterctx — no mutex-taking *core.Cluster method (Mul, Run,
//     MulContext, RunContext, SetMode, Convert, Close, Failed) may be
//     reachable from a Run job body,
//     directly or through package-local helpers: the submitter holds the
//     cluster lock while the body runs, so the call self-deadlocks.
//     Mode() and the read-only accessors are the lock-free exceptions.
//   - wallclock — packages whose package clause carries the
//     //repro:virtualtime directive (internal/des, internal/simnet) must
//     not touch the wall clock: time.Now, Since, Until, Sleep, After,
//     AfterFunc, Tick, NewTimer and NewTicker are flagged, called or
//     stored. The simulator's bit-reproducibility rests on every
//     timestamp coming from the des clock; simnet's WallBudget (which
//     bounds planning wall time, not simulated time) is the one
//     annotated exception.
//
// A deliberate exception to any analyzer is written in the code as
// `//reprolint:ignore <name> <reason>` on (or directly above) the line.
// Each analyzer ships analysistest-style want-comment fixtures under
// internal/analysis/testdata/src/, including the known-hard
// false-positive shapes the suite intentionally tolerates.
//
// # Storage formats and kernels
//
// The kernel engine is format-generic end to end: every storage scheme —
// CRS (internal/matrix), ELLPACK, JDS and SELL-C-σ (internal/formats) —
// satisfies the matrix.Format interface, so the parallel engine
// (spmv.Parallel), the solver operators (CG, Lanczos, KPM) and all three
// distributed modes run on any of them. Plan.ConvertFormat (or the
// session-level WithFormat/Convert) takes a matrix.FormatBuilder (e.g.
// formats.SELLBuilder) and converts both the full local matrix (vector
// mode without overlap) and the local half of the column split (naive
// overlap and task mode, via spmv.FormatSplit); the remote half always
// stays a compacted CSR of the halo-coupled rows. See
// internal/formats/README.md for the mode × format support matrix, when
// SELL-C-σ beats CRS — including in the overlap modes, where the Eq. (2)
// write-twice penalty scales with the halo — and how σ-sorting composes
// with the RCM reordering of internal/rcm. All row kernels accumulate in
// the same floating-point order (4-way unrolled over a single
// accumulator), so serial CRS, parallel, split two-pass and SELL-C-σ
// results are bit-identical in every mode. Each of the three passes (full,
// split-local, compacted remote) is chunked independently, balanced on its
// own nonzero counts; parallel regions are dispatched through a
// sense-reversing barrier (one broadcast + one completion signal per
// region) instead of per-worker channels.
//
// cmd/spmv-bench -snapshot writes a kernel GFlop/s snapshot covering the
// node kernels and the distributed modes × formats sweep on a resident
// Cluster, plus a per-call reference point (see BENCH_1.json …
// BENCH_3.json) that tracks the repo's performance trajectory; -mode,
// -format and -transport (core.ParseMode, core.ParseFormat,
// core.ParseTransport) restrict the sweep to a single kernel mode,
// storage format, or transport backend (chan, a tcpmpi loopback pair, or
// the simulated transport below). From BENCH_9.json on, the snapshot also
// carries a modeled_scaling section: the full-scale capacity-planning
// sweep's crossover rank and per-mode modeled GFlop/s.
//
// # Capacity planning: internal/simnet and cmd/spmv-sim
//
// The paper's strong-scaling verdict (Figs. 5 and 6) needed thousands of
// real cores; internal/simnet reaches the same rank counts on a laptop by
// running the UNMODIFIED resident runtime — core.Cluster, Supervisor,
// solver.DistCG, the persistent-channel halo exchange — on a third
// core.Transport whose world lives in virtual time. Every rank is a
// goroutine scheduled one-at-a-time by the internal/des event kernel
// (deterministic by construction), payload bytes move for real (the
// conformance suite asserts DistCG on sim is bit-identical to chan), and
// every Comm operation is costed by a calibrated network model:
// latency/bandwidth links under fluid-flow contention (internal/fluid),
// an eager/rendezvous protocol switch at the MPI library's threshold, and
// the paper's §3 observation that without an asynchronous progress
// thread, rendezvous transfers advance only while both endpoints are
// inside MPI calls — the very effect that makes "overlap" modes
// non-overlapping in practice. Compute phases are costed by the Eq. (1)
// code-balance model ((8+4)/β + κ bytes per nonzero through the
// locality domain's saturating memory bus, Fig. 3) with the Eq. (2)
// write-twice penalty in the overlap modes.
//
// cmd/spmv-sim is the planner front end: it sweeps rank counts × kernel
// modes × storage formats on a machine-described cluster
// (internal/machine specs: Westmere/Nehalem IB clusters, a Cray XE6
// torus) and emits a machine-readable JSON crossover table — per-point
// simulated time and modeled GFlop/s, plus the smallest rank count at
// which the winning mode changes, the Fig. 5/6 crossover. The full-scale
// HMeP sweep reproduces the paper's qualitative result in under a minute
// of wall time: task mode wins while halos are rendezvous-sized, and
// once strong scaling shrinks them under the eager threshold the naive
// overlap starts genuinely overlapping and takes over (at 4096 of
// {64, 512, 4096} simulated ranks). The sim-smoke CI job gates on a
// crossover being found (-require-crossover) under a wall-clock budget
// (-budget, simnet.WallBudget). See internal/simnet/README.md for the
// progress-semantics model and the deterministic-scheduler contract.
//
// # Serving: the multi-tenant SpMV service
//
// internal/serve lifts the resident runtime into a long-running service —
// the shape the paper's application codes take when the same operator is
// hit by many independent request streams. cmd/spmv-serve exposes it over
// HTTP+JSON on loopback; cmd/spmv-load is its throughput/latency harness.
//
// The architecture is three layers over one shared plan. The REGISTRY
// loads or generates each named matrix once (deterministically, from a
// comparable Spec), partitions it by nonzeros, converts it to the
// session's storage format at registration — so every pooled cluster
// shares one read-only *core.Plan — and evicts least-recently-used idle
// matrices when a byte budget (core.Plan.Bytes) is exceeded; requests pin
// their matrix from admission to completion, so eviction never races a
// live request. The POOL keeps up to Config.Sessions resident
// core.Clusters per matrix, spun up lazily and each wrapped in a
// core.Supervisor: a world failure mid-request redials a fresh world and
// transparently retries the interrupted remainder of the batch (up to
// Config.MaxAttempts per request), so callers see attempts > 1, not an
// error. The DISPATCHER is a single goroutine over per-tenant FIFO rings:
// admission control rejects a request immediately when its tenant's
// bounded queue is full (HTTP 429) — queueing is the tenant's, not the
// server's — while dispatch round-robins across tenants (a saturating
// tenant cannot starve a light one; per-tenant in-flight caps bound its
// share) and coalesces compatible requests for the same matrix into
// batches that ride consecutive Mul/DistCG calls on one warm cluster.
//
// The steady state stays on the PR 5 zero-allocation path: tenant rings
// and batches are preallocated and recycled through freelists, the
// dispatcher's drain/flush loops and the session's batch loop are
// annotated //repro:noalloc (enforced by cmd/reprolint), and the actual
// multiplication is the cluster's resident Mul job. The clusterctx
// analyzer generalizes to this layer by type, not by name: any argument
// in a func(*core.Worker) error parameter slot is checked against the
// job-body locking rule, so pooled-cluster wrappers inherit the
// no-mutex-method guarantee.
//
// Bit-reproducibility is the serving contract, end to end: a response is
// a pure function of (spec, partition geometry, mode, format, request
// seed) — thread count does not affect bits — so cmd/spmv-load -verify
// rebuilds the server's matrix from the same spec and the geometry
// reported at registration, replays every request on a local reference
// cluster, and compares float-for-float. Batching, pooling, tenant
// interleaving and supervised world restarts must not change a single
// ulp; the bench snapshot (the serving columns of BENCH_8.json onward)
// and the serve-smoke CI job treat a verification failure as a hard
// error, not a data point.
package repro
