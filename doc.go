// Package repro is a Go reproduction of "Parallel sparse matrix-vector
// multiplication as a test case for hybrid MPI+OpenMP programming"
// (Schubert, Hager, Fehske, Wellein; arXiv:1101.0091).
//
// The library lives under internal/: the distributed hybrid SpMV kernels
// (internal/core) run for real on an in-process message-passing runtime
// (internal/chanmpi) and are re-enacted, with the paper's MPI progress
// semantics and calibrated ccNUMA/network models, on a discrete-event
// cluster simulator (internal/des, fluid, machine, netmodel, simmpi,
// simexec) that regenerates every figure of the evaluation. See README.md
// and DESIGN.md.
package repro
