// Benchmark harness: one benchmark per figure/experiment of the paper's
// evaluation, plus kernel microbenchmarks. Figure benchmarks run at Small
// scale so the whole suite completes in minutes; the cmd/ tools regenerate
// the same experiments at medium or full (paper) scale.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/formats"
	"repro/internal/genmat"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/perfmodel"
	"repro/internal/rcm"
	"repro/internal/simexec"
	"repro/internal/solver"
	"repro/internal/spmv"
	"repro/internal/stream"
)

// ---- shared fixtures -------------------------------------------------

var (
	hmePSmall *matrix.CSR
	samgSmall *matrix.CSR
)

func holsteinSmall(b *testing.B, o genmat.Ordering) *matrix.CSR {
	b.Helper()
	if o == genmat.HMeP && hmePSmall != nil {
		return hmePSmall
	}
	h, err := expt.HolsteinSource(o, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Materialize(h)
	if o == genmat.HMeP {
		hmePSmall = a
	}
	return a
}

func poissonSmall(b *testing.B) *matrix.CSR {
	b.Helper()
	if samgSmall != nil {
		return samgSmall
	}
	p, err := expt.PoissonSource(expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	samgSmall = matrix.Materialize(p)
	return samgSmall
}

func randomX(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// reportSpmv attaches GFlop/s to a kernel benchmark.
func reportSpmv(b *testing.B, nnz int64) {
	b.ReportMetric(2*float64(nnz)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

// ---- node-level kernels (host-real, Fig. 3 companions) ----------------

func BenchmarkSpMVSerialHMeP(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.Serial(y, a, x)
	}
	reportSpmv(b, a.Nnz())
}

func BenchmarkSpMVSerialSAMG(b *testing.B) {
	b.ReportAllocs()
	a := poissonSmall(b)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.Serial(y, a, x)
	}
	reportSpmv(b, a.Nnz())
}

func BenchmarkSpMVParallel(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(workers)
			defer team.Close()
			p := spmv.NewParallel(a, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MulVec(team, y, x)
			}
			reportSpmv(b, a.Nnz())
		})
	}
}

// BenchmarkSplitPenalty measures the §3.1 effect on the host: the split
// (local+remote) kernel writes the result twice and runs measurably slower
// than the monolithic kernel (Eq. 2 vs Eq. 1 predicts 8–15%).
func BenchmarkSplitPenalty(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	split := spmv.NewSplit(a, a.NumCols/2).AsFormatSplit()
	team := spmv.NewTeam(4)
	defer team.Close()
	localChunks := split.LocalChunks(4)
	remoteChunks := split.RemoteChunks(4)
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		p := spmv.NewParallel(a, 4)
		for i := 0; i < b.N; i++ {
			p.MulVec(team, y, x)
		}
		reportSpmv(b, a.Nnz())
	})
	b.Run("split", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			split.MulVecLocal(team, localChunks, y, x)
			split.MulVecRemoteAdd(team, remoteChunks, y, x)
		}
		reportSpmv(b, a.Nnz())
	})
}

// BenchmarkFormats compares CRS against ELLPACK and JDS on the HMeP
// matrix — substantiating §1.2's choice of CRS as "the most efficient
// format for general sparse matrices on cache-based microprocessors".
func BenchmarkFormats(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	b.Run("CRS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spmv.Serial(y, a, x)
		}
		reportSpmv(b, a.Nnz())
	})
	b.Run("ELLPACK", func(b *testing.B) {
		b.ReportAllocs()
		e, err := formats.NewELLPACK(a, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e.PaddingRatio(a.Nnz()), "padding-ratio")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.MulVec(y, x)
		}
		reportSpmv(b, a.Nnz())
	})
	b.Run("JDS", func(b *testing.B) {
		b.ReportAllocs()
		j := formats.NewJDS(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.MulVec(y, x)
		}
		reportSpmv(b, a.Nnz())
	})
	b.Run("SELL-32-256", func(b *testing.B) {
		b.ReportAllocs()
		s, err := formats.NewSELLCSigma(a, 32, 256)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.PaddingRatio(), "padding-ratio")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.MulVec(y, x)
		}
		reportSpmv(b, a.Nnz())
	})
}

// BenchmarkSellCSigma measures the SELL-C-σ kernel on the Holstein HMeP
// fixture for several chunk heights, serial and on the team, verifying the
// result stays bit-identical to the serial CRS kernel.
func BenchmarkSellCSigma(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	want := make([]float64, a.NumRows)
	spmv.Serial(want, a, x)
	for _, cfg := range []struct{ c, sigma int }{{8, 64}, {32, 256}, {64, 512}} {
		s, err := formats.NewSELLCSigma(a, cfg.c, cfg.sigma)
		if err != nil {
			b.Fatal(err)
		}
		y := make([]float64, a.NumRows)
		s.MulVec(y, x)
		for i := range want {
			if y[i] != want[i] {
				b.Fatalf("C=%d σ=%d: not bit-identical to serial CRS at row %d", cfg.c, cfg.sigma, i)
			}
		}
		b.Run(fmt.Sprintf("C=%d/sigma=%d/serial", cfg.c, cfg.sigma), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(s.PaddingRatio(), "padding-ratio")
			for i := 0; i < b.N; i++ {
				s.MulVec(y, x)
			}
			reportSpmv(b, a.Nnz())
		})
		b.Run(fmt.Sprintf("C=%d/sigma=%d/workers=4", cfg.c, cfg.sigma), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(4)
			defer team.Close()
			p := spmv.NewParallelFormat(s, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MulVec(team, y, x)
			}
			reportSpmv(b, a.Nnz())
		})
	}
}

// BenchmarkTeamBarrier isolates the per-parallel-region dispatch overhead of
// the worker team — the cost the sense-reversing barrier attacks. The body
// is empty, so ns/op is pure fork/join latency. The ad-hoc Run path
// allocates one region descriptor + closure per region; the compiled path
// (what the resident distributed workers use) restarts a precompiled
// region and allocates nothing.
func BenchmarkTeamBarrier(b *testing.B) {
	b.ReportAllocs()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(workers)
			defer team.Close()
			noop := func(int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				team.Run(noop)
			}
		})
		b.Run(fmt.Sprintf("workers=%d/compiled", workers), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(workers)
			defer team.Close()
			region := team.Compile(workers, func(int) {})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				team.Exec(region)
			}
		})
	}
}

// BenchmarkSymmetricKernel measures the §1.3.1 symmetric-storage variant:
// roughly half the matrix traffic against the full CRS kernel, at the cost
// of the scatter-reduction — the routine the paper said was missing for
// shared memory.
func BenchmarkSymmetricKernel(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	s, err := spmv.NewSymmetricFromFull(a, 1e-12)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("full/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(workers)
			defer team.Close()
			p := spmv.NewParallel(a, workers)
			for i := 0; i < b.N; i++ {
				p.MulVec(team, y, x)
			}
			reportSpmv(b, a.Nnz())
		})
		b.Run(fmt.Sprintf("symmetric/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			team := spmv.NewTeam(workers)
			defer team.Close()
			sp := spmv.NewSymmetricParallel(s, workers)
			b.ReportMetric(float64(s.Nnz())/float64(a.Nnz()), "stored-fraction")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.MulVec(team, y, x)
			}
			reportSpmv(b, a.Nnz())
		})
	}
}

// BenchmarkAblationTorusFragmentation quantifies the paper's "job topology
// and machine load" observation: the same XE6 job, compact vs scattered.
func BenchmarkAblationTorusFragmentation(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	wc := expt.NewWorkloadCache("HMeP", h, 2.5)
	wl, err := wc.For(16)
	if err != nil {
		b.Fatal(err)
	}
	run := func(occupancy float64) float64 {
		res, err := simexec.Run(simexec.Config{
			Cluster: machine.CrayXE6(), Nodes: 16, Layout: simexec.ProcPerNode,
			Mode: core.VectorNoOverlap, Iters: 8, TorusOccupancy: occupancy,
		}, wl)
		if err != nil {
			b.Fatal(err)
		}
		return res.GFlops
	}
	var compact, scattered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compact = run(1.0)
		scattered = run(0.2)
	}
	b.ReportMetric(compact, "compact-GFlop/s")
	b.ReportMetric(scattered, "scattered-GFlop/s")
}

func BenchmarkSTREAMTriad(b *testing.B) {
	b.ReportAllocs()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var r stream.Result
			for i := 0; i < b.N; i++ {
				r = stream.Triad(1<<22, 1, workers)
			}
			b.ReportMetric(r.BytesPerSec/1e9, "GB/s")
		})
	}
}

// ---- distributed kernels on the real message-passing runtime ----------

func BenchmarkDistributedModes(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	part := core.PartitionByNnz(a, 4)
	plan, err := core.BuildPlan(a, part, true)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := core.NewCluster(plan, core.WithThreads(2))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, mode := range core.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			if err := cl.SetMode(mode); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Mul(y, x, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportSpmv(b, a.Nnz())
		})
	}
}

// BenchmarkDistributedModesSELL is BenchmarkDistributedModes on a
// SELL-C-σ-converted session: the full local matrix and the split's local
// half run in SELL-32-256 in every mode, the compacted remote pass stays
// CSR. CI's benchmark smoke runs the overlap-mode cases so the
// format-generic split pipeline is exercised on every push.
func BenchmarkDistributedModesSELL(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	x := randomX(a.NumCols)
	y := make([]float64, a.NumRows)
	part := core.PartitionByNnz(a, 4)
	plan, err := core.BuildPlan(a, part, true)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := core.NewCluster(plan, core.WithThreads(2),
		core.WithFormat(formats.SELLBuilder{C: 32, Sigma: 256}))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, mode := range core.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			if err := cl.SetMode(mode); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Mul(y, x, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportSpmv(b, a.Nnz())
		})
	}
}

// BenchmarkClusterReuse quantifies what the session API buys: one
// multiplication on a resident core.Cluster (rank goroutines, teams, halo
// buffers reused) against the deprecated per-call path that spawns a fresh
// world + teams for every MulDistributed. The matrix is deliberately small
// so setup dominates — the shape of a solver iteration, where the
// multiplication itself is cheap and the runtime must already be there.
func BenchmarkClusterReuse(b *testing.B) {
	b.ReportAllocs()
	const n, ranks, threads = 2000, 4, 2
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: n, Bandwidth: 60, PerRow: 5, Seed: 7, Symmetric: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Materialize(g)
	x := randomX(n)
	y := make([]float64, n)
	plan, err := core.BuildPlan(a, core.PartitionByNnz(a, ranks), true)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("resident-cluster", func(b *testing.B) {
		b.ReportAllocs()
		cl, err := core.NewCluster(plan, core.WithMode(core.TaskMode), core.WithThreads(threads))
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.Mul(y, x, 1); err != nil {
				b.Fatal(err)
			}
		}
		reportSpmv(b, a.Nnz())
	})
	b.Run("per-call-world", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.MulDistributed(plan, x, core.TaskMode, threads, 1)
		}
		reportSpmv(b, a.Nnz())
	})
}

// ---- Fig. 1: sparsity pattern extraction ------------------------------

func BenchmarkFig1Occupancy(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		matrix.BlockOccupancy(h, 48)
	}
}

// ---- Fig. 3: node-level model ------------------------------------------

func BenchmarkFig3aModel(b *testing.B) {
	b.ReportAllocs()
	var rows []expt.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = expt.Fig3(machine.NehalemEP(), 15, 2.5)
	}
	// Report the socket-level anchor the paper measures: 2.25 GFlop/s.
	b.ReportMetric(rows[3].SpmvGFlops, "GFlop/s@4cores")
}

func BenchmarkFig3bModel(b *testing.B) {
	b.ReportAllocs()
	var wsm, amd []expt.Fig3Row
	for i := 0; i < b.N; i++ {
		wsm = expt.Fig3(machine.WestmereEP(), 15, 2.5)
		amd = expt.Fig3(machine.MagnyCours(), 15, 2.5)
	}
	b.ReportMetric(wsm[len(wsm)-1].SpmvGFlops, "Westmere-node-GFlop/s")
	b.ReportMetric(amd[len(amd)-1].SpmvGFlops, "MagnyCours-node-GFlop/s")
}

// ---- §2: κ via cache simulation ----------------------------------------

func BenchmarkKappaHMePvsHMEp(b *testing.B) {
	b.ReportAllocs()
	cache := cachesim.Config{SizeBytes: 128 << 10, Ways: 16, LineBytes: 64}
	aGood := holsteinSmall(b, genmat.HMeP)
	aBad := holsteinSmall(b, genmat.HMEp)
	var kGood, kBad float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trG, err := cachesim.SpMVTraffic(aGood, cache)
		if err != nil {
			b.Fatal(err)
		}
		trB, err := cachesim.SpMVTraffic(aBad, cache)
		if err != nil {
			b.Fatal(err)
		}
		kGood, kBad = trG.Kappa, trB.Kappa
	}
	b.ReportMetric(kGood, "kappa-HMeP")
	b.ReportMetric(kBad, "kappa-HMEp")
	if kBad <= kGood {
		b.Fatalf("κ ordering violated: HMEp %.3f ≤ HMeP %.3f", kBad, kGood)
	}
}

// ---- Figs. 5 and 6: strong scaling on the simulated clusters -----------

func scalingBench(b *testing.B, name string, kappa float64, src matrix.PatternSource) {
	wc := expt.NewWorkloadCache(name, src, kappa)
	study := &expt.ScalingStudy{
		Cluster:    machine.WestmereCluster(),
		NodeCounts: []int{1, 4, 16},
		Iters:      6,
	}
	var points []expt.ScalingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = study.Run(wc)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the 16-node task-mode vs no-overlap per-LD comparison — the
	// figure's headline.
	var task, noov float64
	for _, p := range points {
		if p.Nodes == 16 && p.Layout == simexec.ProcPerLD {
			switch p.Mode {
			case core.TaskMode:
				task = p.GFlops
			case core.VectorNoOverlap:
				noov = p.GFlops
			}
		}
	}
	b.ReportMetric(task, "task-GFlop/s@16")
	b.ReportMetric(noov, "noov-GFlop/s@16")
}

func BenchmarkFig5ScalingHMeP(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	scalingBench(b, "HMeP", expt.PaperKappa("HMeP"), h)
}

func BenchmarkFig6ScalingSAMG(b *testing.B) {
	b.ReportAllocs()
	p, err := expt.PoissonSource(expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	scalingBench(b, "sAMG", expt.PaperKappa("sAMG"), p)
}

// BenchmarkCrayReference simulates the XE6 best-variant sweep (the "best
// Cray" line of Figs. 5/6).
func BenchmarkCrayReference(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	wc := expt.NewWorkloadCache("HMeP", h, expt.PaperKappa("HMeP"))
	study := &expt.ScalingStudy{
		Cluster:    machine.CrayXE6(),
		NodeCounts: []int{1, 8},
		Iters:      6,
	}
	var best map[int]expt.ScalingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := study.Run(wc)
		if err != nil {
			b.Fatal(err)
		}
		best = expt.BestPerNodeCount(points)
	}
	b.ReportMetric(best[8].GFlops, "bestCray-GFlop/s@8")
}

// ---- ablations ----------------------------------------------------------

// BenchmarkAblationAsyncProgress quantifies the §5 outlook: an MPI library
// with a progress thread rescues naive overlap.
func BenchmarkAblationAsyncProgress(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	cluster := machine.WestmereCluster()
	cluster.Net.EagerThreshold = 0
	wc := expt.NewWorkloadCache("HMeP", h, 2.5)
	wl, err := wc.For(16)
	if err != nil {
		b.Fatal(err)
	}
	run := func(async bool) float64 {
		res, err := simexec.Run(simexec.Config{
			Cluster: cluster, Nodes: 8, Layout: simexec.ProcPerLD,
			Mode: core.VectorNaiveOverlap, Iters: 8, AsyncProgress: async,
		}, wl)
		if err != nil {
			b.Fatal(err)
		}
		return res.GFlops
	}
	var plain, async float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain = run(false)
		async = run(true)
	}
	b.ReportMetric(plain, "std-GFlop/s")
	b.ReportMetric(async, "async-GFlop/s")
}

// BenchmarkAblationPartitioning compares nonzero-balanced against naive
// row-balanced partitioning (§3.1 footnote 2).
func BenchmarkAblationPartitioning(b *testing.B) {
	b.ReportAllocs()
	h, err := expt.HolsteinSource(genmat.HMeP, expt.Small)
	if err != nil {
		b.Fatal(err)
	}
	rows, _ := h.Dims()
	var byNnz, byRows float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		byNnz = core.PartitionByNnz(h, 16).Imbalance(h)
		byRows = core.PartitionByRows(rows, 16).Imbalance(h)
	}
	b.ReportMetric(byNnz, "imbalance-nnz")
	b.ReportMetric(byRows, "imbalance-rows")
}

// ---- §1.3.1: RCM -----------------------------------------------------

func BenchmarkRCM(b *testing.B) {
	b.ReportAllocs()
	a := poissonSmall(b)
	var p *rcm.Permutation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = rcm.ReverseCuthillMcKee(a)
	}
	bw := rcm.Bandwidth(rcm.ApplySymmetric(a, p))
	b.ReportMetric(float64(bw), "bandwidth-after")
	b.ReportMetric(float64(rcm.Bandwidth(a)), "bandwidth-before")
}

// ---- application solvers ------------------------------------------------

func BenchmarkLanczosGroundState(b *testing.B) {
	b.ReportAllocs()
	a := holsteinSmall(b, genmat.HMeP)
	op := solver.CSROperator{A: a}
	var e0 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		e0, err = solver.GroundState(op, 40, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(e0, "E0")
}

func BenchmarkCGPoisson(b *testing.B) {
	b.ReportAllocs()
	a := poissonSmall(b)
	n := a.NumRows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	op := solver.CSROperator{A: a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := solver.CG(op, rhs, x, 1e-6, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- model sanity anchor -------------------------------------------------

func BenchmarkModelAnchors(b *testing.B) {
	b.ReportAllocs()
	var kappa float64
	for i := 0; i < b.N; i++ {
		kappa = perfmodel.KappaFromMeasurement(18.1e9, 2.25e9, 15)
	}
	b.ReportMetric(kappa, "paper-kappa")
}
