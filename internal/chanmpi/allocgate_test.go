package chanmpi

import (
	"testing"
)

// The AllocGate tests pin the steady-state zero-allocation contract of the
// persistent-channel path (doc.go "Steady-state performance contract").
// CI runs them as a dedicated step (go test -run AllocGate ./...), so a
// regression — a request object per message, a fresh payload copy per
// frame — fails fast rather than surfacing as a slow benchmark drift.

// TestAllocGateHaloExchangePersistent drives a two-rank bidirectional
// exchange — the shape of one halo iteration: post both receives, start
// both sends, wait both receives — over persistent channels and asserts
// the steady state allocates nothing per round.
func TestAllocGateHaloExchangePersistent(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := w.Comm(1)
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	out0, out1 := make([]float64, n), make([]float64, n)
	in0, in1 := make([]float64, n), make([]float64, n)
	for i := range out0 {
		out0[i] = float64(i)
		out1[i] = float64(-i)
	}
	send0, err := c0.SendInit(1, 0, out0)
	if err != nil {
		t.Fatal(err)
	}
	send1, err := c1.SendInit(0, 0, out1)
	if err != nil {
		t.Fatal(err)
	}
	recv0, err := c0.RecvInit(1, 0, in0)
	if err != nil {
		t.Fatal(err)
	}
	recv1, err := c1.RecvInit(0, 0, in1)
	if err != nil {
		t.Fatal(err)
	}

	round := func() {
		if err := recv0.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv1.Start(); err != nil {
			t.Fatal(err)
		}
		if err := send0.Start(); err != nil {
			t.Fatal(err)
		}
		if err := send1.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv0.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := recv1.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	round() // steady the mailbox slice capacities
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("persistent halo exchange allocates %.1f objects per round, want 0", allocs)
	}
	if in0[3] != out1[3] || in1[3] != out0[3] {
		t.Fatal("exchange delivered wrong data")
	}
}

// TestAllocGateHaloExchangeUnmatchedSend covers the other steady-state
// order — the send fires before the receive is posted, staging through the
// persistent send's resident copy — which must be allocation-free too.
func TestAllocGateHaloExchangeUnmatchedSend(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)

	const n = 32
	out := make([]float64, n)
	in := make([]float64, n)
	send, err := c0.SendInit(1, 3, out)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := c1.RecvInit(0, 3, in)
	if err != nil {
		t.Fatal(err)
	}
	round := func() {
		if err := send.Start(); err != nil { // buffers into the staging copy
			t.Fatal(err)
		}
		if err := recv.Start(); err != nil { // matches the buffered message
			t.Fatal(err)
		}
		if err := recv.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	round()
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("unmatched-send persistent exchange allocates %.1f objects per round, want 0", allocs)
	}
}

// TestAllocGateScalarAllreduce pins the scalar reduction — the per-
// iteration dot products of the distributed solvers — at zero steady-state
// allocations per round on a multi-rank world.
func TestAllocGateScalarAllreduce(t *testing.T) {
	const ranks = 4
	w, err := NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cs := make([]*Comm, ranks)
	for r := range cs {
		if cs[r], err = w.Comm(r); err != nil {
			t.Fatal(err)
		}
	}
	// Lockstep rounds driven from goroutines; the measured function runs
	// whole rounds, so every participant's allocations land inside it.
	start := make(chan struct{})
	done := make(chan float64, ranks-1)
	stop := make(chan struct{})
	for r := 1; r < ranks; r++ {
		go func(c *Comm) {
			for {
				select {
				case <-stop:
					return
				case <-start:
				}
				v, err := c.AllreduceScalar(OpSum, 1)
				if err != nil {
					v = -1
				}
				done <- v
			}
		}(cs[r])
	}
	defer close(stop)
	round := func() {
		for r := 1; r < ranks; r++ {
			start <- struct{}{}
		}
		v, err := cs[0].AllreduceScalar(OpSum, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != ranks {
			t.Fatalf("sum = %g, want %d", v, ranks)
		}
		for r := 1; r < ranks; r++ {
			if got := <-done; got != ranks {
				t.Fatalf("peer sum = %g, want %d", got, ranks)
			}
		}
	}
	round()
	round()
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("scalar allreduce allocates %.1f objects per round, want 0", allocs)
	}
}
