package chanmpi

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			buf := make([]float64, 3)
			n := c.Recv(1, 8, buf)
			if n != 3 || buf[0] != 2 || buf[1] != 4 || buf[2] != 6 {
				t.Errorf("rank 0 got %v (n=%d)", buf, n)
			}
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			for i := range buf {
				buf[i] *= 2
			}
			c.Send(0, 8, buf)
		}
	})
}

func TestIrecvBeforeIsend(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]float64, 4)
			req := c.Irecv(1, 1, buf)
			if req.Done() {
				t.Error("receive complete before matching send")
			}
			n := req.Wait()
			if n != 2 || buf[0] != 5 || buf[1] != 6 {
				t.Errorf("got %v (n=%d)", buf[:n], n)
			}
		} else {
			time.Sleep(10 * time.Millisecond) // let the receive post first
			c.Isend(0, 1, []float64{5, 6}).Wait()
		}
	})
}

func TestMessageOrderingSameTag(t *testing.T) {
	// Non-overtaking: two messages with the same (src, tag) arrive in
	// posting order.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 3, []float64{1})
			c.Isend(1, 3, []float64{2})
		} else {
			a := make([]float64, 1)
			b := make([]float64, 1)
			ra := c.Irecv(0, 3, a)
			rb := c.Irecv(0, 3, b)
			Waitall(ra, rb)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("message overtaking: got %v then %v", a[0], b[0])
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 10, []float64{10})
			c.Isend(1, 20, []float64{20})
		} else {
			b20 := make([]float64, 1)
			b10 := make([]float64, 1)
			// Receive tag 20 first even though tag 10 was sent first.
			c.Recv(0, 20, b20)
			c.Recv(0, 10, b10)
			if b20[0] != 20 || b10[0] != 10 {
				t.Errorf("tag matching wrong: %v %v", b20[0], b10[0])
			}
		}
	})
}

func TestSendBufferReusableImmediately(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Isend(1, 0, buf)
			buf[0] = 0 // buffered semantics: mutation after Isend is safe
			c.Barrier()
		} else {
			c.Barrier()
			got := make([]float64, 1)
			c.Recv(0, 0, got)
			if got[0] != 42 {
				t.Errorf("got %v, want 42 (send not buffered)", got[0])
			}
		}
	})
}

func TestTruncationPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("truncated receive did not panic")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, []float64{1, 2, 3})
		} else {
			c.Recv(0, 0, make([]float64, 1))
		}
	})
}

// TestTruncationFailsWorldCleanly checks that a truncated exchange panics
// out of Run on the affected ranks while the destination mailbox stays
// usable. Before the fix, deliver panicked while Isend/Irecv still held the
// mailbox lock, so any other rank touching that mailbox deadlocked instead
// of the error propagating.
func TestTruncationFailsWorldCleanly(t *testing.T) {
	run := func(t *testing.T, body func(c *Comm, posted, attempted chan struct{})) {
		t.Helper()
		posted := make(chan struct{})
		attempted := make(chan struct{})
		result := make(chan any, 1)
		go func() {
			var p any
			func() {
				defer func() { p = recover() }()
				NewWorld(3).Run(func(c *Comm) { body(c, posted, attempted) })
			}()
			result <- p
		}()
		select {
		case p := <-result:
			if p == nil || !strings.Contains(fmt.Sprint(p), "truncated") {
				t.Fatalf("world did not fail with a truncation error: %v", p)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("world deadlocked after truncation")
		}
	}

	t.Run("recv-posted-first", func(t *testing.T) {
		// Truncation is detected inside the sender's Isend.
		run(t, func(c *Comm, posted, attempted chan struct{}) {
			switch c.Rank() {
			case 0:
				<-posted
				defer close(attempted) // runs during the panic unwind
				c.Isend(1, 0, make([]float64, 8))
			case 1:
				req := c.Irecv(0, 0, make([]float64, 3))
				close(posted)
				req.Wait() // observes the same failure
			case 2:
				// Bystander: must still get through rank 1's mailbox after
				// the failed delivery released its lock.
				<-attempted
				c.Isend(1, 1, []float64{1})
			}
		})
	})

	t.Run("send-buffered-first", func(t *testing.T) {
		// Truncation is detected inside the receiver's Irecv.
		run(t, func(c *Comm, posted, attempted chan struct{}) {
			switch c.Rank() {
			case 0:
				c.Isend(1, 0, make([]float64, 8))
				close(posted)
			case 1:
				<-posted
				defer close(attempted)
				c.Irecv(0, 0, make([]float64, 3))
			case 2:
				<-attempted
				c.Isend(1, 1, []float64{1})
			}
		})
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 8
	w := NewWorld(ranks)
	var before, after int64
	w.Run(func(c *Comm) {
		atomic.AddInt64(&before, 1)
		c.Barrier()
		if atomic.LoadInt64(&before) != ranks {
			t.Error("barrier released before all ranks arrived")
		}
		atomic.AddInt64(&after, 1)
	})
	if after != ranks {
		t.Errorf("after = %d, want %d", after, ranks)
	}
}

func TestBarrierReusable(t *testing.T) {
	const ranks, rounds = 5, 50
	w := NewWorld(ranks)
	var counter int64
	w.Run(func(c *Comm) {
		for round := 0; round < rounds; round++ {
			atomic.AddInt64(&counter, 1)
			c.Barrier()
			want := int64((round + 1) * ranks)
			if atomic.LoadInt64(&counter) != want {
				t.Errorf("round %d: counter %d, want %d", round, counter, want)
			}
			c.Barrier()
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	const ranks = 6
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		got := c.AllreduceScalar(OpSum, float64(c.Rank()+1))
		if got != 21 { // 1+2+...+6
			t.Errorf("rank %d: sum = %g, want 21", c.Rank(), got)
		}
	})
}

func TestAllreduceMaxMinVector(t *testing.T) {
	const ranks = 4
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		in := []float64{float64(c.Rank()), -float64(c.Rank())}
		mx := c.Allreduce(OpMax, in)
		if mx[0] != 3 || mx[1] != 0 {
			t.Errorf("max = %v", mx)
		}
		mn := c.Allreduce(OpMin, in)
		if mn[0] != 0 || mn[1] != -3 {
			t.Errorf("min = %v", mn)
		}
	})
}

func TestAllreduceRepeated(t *testing.T) {
	const ranks = 3
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		for round := 1; round <= 30; round++ {
			got := c.AllreduceScalar(OpSum, float64(round))
			if math.Abs(got-float64(3*round)) > 0 {
				t.Errorf("round %d: %g", round, got)
			}
		}
	})
}

func TestAllgatherInt64(t *testing.T) {
	const ranks = 5
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		got := c.AllgatherInt64(int64(c.Rank() * 10))
		for r := 0; r < ranks; r++ {
			if got[r] != int64(r*10) {
				t.Errorf("gather[%d] = %d", r, got[r])
			}
		}
	})
}

func TestManyRanksHaloExchangePattern(t *testing.T) {
	// Ring halo exchange across 16 ranks, 20 iterations — the communication
	// pattern of the distributed SpMV.
	const ranks, iters = 16, 20
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		left := (c.Rank() + ranks - 1) % ranks
		right := (c.Rank() + 1) % ranks
		val := float64(c.Rank())
		for it := 0; it < iters; it++ {
			fromLeft := make([]float64, 1)
			fromRight := make([]float64, 1)
			rl := c.Irecv(left, 100+it, fromLeft)
			rr := c.Irecv(right, 100+it, fromRight)
			c.Isend(left, 100+it, []float64{val})
			c.Isend(right, 100+it, []float64{val})
			Waitall(rl, rr)
			val = (fromLeft[0] + fromRight[0]) / 2
		}
		// Averaging converges toward the global mean (7.5).
		if val < 0 || val > float64(ranks) {
			t.Errorf("rank %d diverged: %g", c.Rank(), val)
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Error("rank panic not propagated")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestInvalidRanks(t *testing.T) {
	w := NewWorld(2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	c := w.Comm(0)
	mustPanic("Isend", func() { c.Isend(5, 0, nil) })
	mustPanic("Irecv", func() { c.Irecv(-1, 0, nil) })
	mustPanic("Comm", func() { w.Comm(9) })
	mustPanic("NewWorld", func() { NewWorld(0) })
}

func TestNilRequestWait(t *testing.T) {
	var typed *request
	if typed.Wait() != 0 || !typed.Done() {
		t.Error("nil request should be trivially complete")
	}
	var iface Request
	Waitall(iface, typed) // nil interface and typed nil both trivially complete
}
