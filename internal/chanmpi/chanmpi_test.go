package chanmpi

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestWorld builds a world or fails the test.
func newTestWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// run executes body on every rank and fails the test on a world error.
func run(t *testing.T, w *World, body func(c *Comm) error) {
	t.Helper()
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestPingPong(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []float64{1, 2, 3}); err != nil {
				return err
			}
			buf := make([]float64, 3)
			n, err := c.Recv(1, 8, buf)
			if err != nil {
				return err
			}
			if n != 3 || buf[0] != 2 || buf[1] != 4 || buf[2] != 6 {
				t.Errorf("rank 0 got %v (n=%d)", buf, n)
			}
		} else {
			buf := make([]float64, 3)
			if _, err := c.Recv(0, 7, buf); err != nil {
				return err
			}
			for i := range buf {
				buf[i] *= 2
			}
			if err := c.Send(0, 8, buf); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestBlockingSendRecvHelpers(t *testing.T) {
	// Direct coverage of the blocking helpers: short messages report their
	// true element count, misuse surfaces as typed errors, and a truncated
	// blocking receive returns the truncation instead of panicking.
	t.Run("count", func(t *testing.T) {
		w := newTestWorld(t, 2)
		run(t, w, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, []float64{9, 8})
			}
			buf := make([]float64, 5) // roomier than the message
			n, err := c.Recv(0, 0, buf)
			if err != nil {
				return err
			}
			if n != 2 || buf[0] != 9 || buf[1] != 8 {
				t.Errorf("Recv got n=%d buf=%v, want n=2 [9 8 ...]", n, buf)
			}
			return nil
		})
	})
	t.Run("invalid-rank", func(t *testing.T) {
		w := newTestWorld(t, 2)
		c, err := w.Comm(0)
		if err != nil {
			t.Fatal(err)
		}
		var rankErr *RankError
		if err := c.Send(7, 0, []float64{1}); !errors.As(err, &rankErr) {
			t.Errorf("Send to invalid rank returned %v, want *RankError", err)
		}
		if _, err := c.Recv(-1, 0, make([]float64, 1)); !errors.As(err, &rankErr) {
			t.Errorf("Recv from invalid rank returned %v, want *RankError", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		w := newTestWorld(t, 2)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, []float64{1, 2, 3})
			}
			_, err := c.Recv(0, 0, make([]float64, 1))
			return err
		})
		var trunc *TruncationError
		if !errors.As(err, &trunc) {
			t.Fatalf("truncated blocking Recv: got %v, want *TruncationError", err)
		}
	})
}

func TestIrecvBeforeIsend(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]float64, 4)
			req, err := c.Irecv(1, 1, buf)
			if err != nil {
				return err
			}
			if req.Done() {
				t.Error("receive complete before matching send")
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if buf[0] != 5 || buf[1] != 6 {
				t.Errorf("got %v", buf[:2])
			}
		} else {
			time.Sleep(10 * time.Millisecond) // let the receive post first
			req, err := c.Isend(0, 1, []float64{5, 6})
			if err != nil {
				return err
			}
			return req.Wait()
		}
		return nil
	})
}

func TestMessageOrderingSameTag(t *testing.T) {
	// Non-overtaking: two messages with the same (src, tag) arrive in
	// posting order.
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Isend(1, 3, []float64{1}); err != nil {
				return err
			}
			if _, err := c.Isend(1, 3, []float64{2}); err != nil {
				return err
			}
		} else {
			a := make([]float64, 1)
			b := make([]float64, 1)
			ra, err := c.Irecv(0, 3, a)
			if err != nil {
				return err
			}
			rb, err := c.Irecv(0, 3, b)
			if err != nil {
				return err
			}
			if err := Waitall(ra, rb); err != nil {
				return err
			}
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("message overtaking: got %v then %v", a[0], b[0])
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Isend(1, 10, []float64{10}); err != nil {
				return err
			}
			if _, err := c.Isend(1, 20, []float64{20}); err != nil {
				return err
			}
		} else {
			b20 := make([]float64, 1)
			b10 := make([]float64, 1)
			// Receive tag 20 first even though tag 10 was sent first.
			if _, err := c.Recv(0, 20, b20); err != nil {
				return err
			}
			if _, err := c.Recv(0, 10, b10); err != nil {
				return err
			}
			if b20[0] != 20 || b10[0] != 10 {
				t.Errorf("tag matching wrong: %v %v", b20[0], b10[0])
			}
		}
		return nil
	})
}

func TestSendBufferReusableImmediately(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if _, err := c.Isend(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 0 // buffered semantics: mutation after Isend is safe
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		got := make([]float64, 1)
		if _, err := c.Recv(0, 0, got); err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("got %v, want 42 (send not buffered)", got[0])
		}
		return nil
	})
}

func TestTruncationReturnsError(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Isend(1, 0, []float64{1, 2, 3})
			return err
		}
		_, err := c.Recv(0, 0, make([]float64, 1))
		return err
	})
	var trunc *TruncationError
	if !errors.As(err, &trunc) {
		t.Fatalf("truncated receive: got %v, want *TruncationError", err)
	}
	if trunc.Len != 3 || trunc.Cap != 1 {
		t.Errorf("truncation recorded %d into %d, want 3 into 1", trunc.Len, trunc.Cap)
	}
}

// TestTruncationFailsWorldCleanly checks that a truncated exchange errors
// out of Run on the affected ranks while the destination mailbox stays
// usable: a bystander rank touching the same mailbox afterwards observes
// the failed world instead of deadlocking on a poisoned lock.
func TestTruncationFailsWorldCleanly(t *testing.T) {
	runCase := func(t *testing.T, body func(c *Comm, posted, attempted chan struct{}) error) {
		t.Helper()
		posted := make(chan struct{})
		attempted := make(chan struct{})
		result := make(chan error, 1)
		w := newTestWorld(t, 3)
		go func() {
			result <- w.Run(func(c *Comm) error { return body(c, posted, attempted) })
		}()
		select {
		case err := <-result:
			var trunc *TruncationError
			if !errors.As(err, &trunc) {
				t.Fatalf("world did not fail with a truncation error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("world deadlocked after truncation")
		}
	}

	t.Run("recv-posted-first", func(t *testing.T) {
		// Truncation is detected inside the sender's Isend.
		runCase(t, func(c *Comm, posted, attempted chan struct{}) error {
			switch c.Rank() {
			case 0:
				<-posted
				defer close(attempted)
				_, err := c.Isend(1, 0, make([]float64, 8))
				return err
			case 1:
				req, err := c.Irecv(0, 0, make([]float64, 3))
				if err != nil {
					return err
				}
				close(posted)
				return req.Wait() // observes the same failure
			default:
				// Bystander: must still get through rank 1's mailbox after
				// the failed delivery released its lock. On the now-failed
				// world the send reports a WorldError rather than wedging.
				<-attempted
				_, err := c.Isend(1, 1, []float64{1})
				return err
			}
		})
	})

	t.Run("send-buffered-first", func(t *testing.T) {
		// Truncation is detected inside the receiver's Irecv.
		runCase(t, func(c *Comm, posted, attempted chan struct{}) error {
			switch c.Rank() {
			case 0:
				_, err := c.Isend(1, 0, make([]float64, 8))
				close(posted)
				return err
			case 1:
				<-posted
				defer close(attempted)
				_, err := c.Irecv(0, 0, make([]float64, 3))
				return err
			default:
				<-attempted
				_, err := c.Isend(1, 1, []float64{1})
				return err
			}
		})
	})
}

// TestFailedRankFailsWorldCleanly is the regression test of the v2 failure
// contract: a rank that errors out of Run releases every peer blocked on
// it — in a pending Wait, in Barrier, and in Allreduce — with a
// *WorldError, and Run reports the original cause, not the secondary
// world-failure reports.
func TestFailedRankFailsWorldCleanly(t *testing.T) {
	cause := errors.New("rank 2 exploded")
	w := newTestWorld(t, 4)
	var unwedged atomic.Int64
	result := make(chan error, 1)
	go func() {
		result <- w.Run(func(c *Comm) error {
			switch c.Rank() {
			case 0:
				// Blocked in a receive nobody will ever send.
				req, err := c.Irecv(2, 99, make([]float64, 1))
				if err != nil {
					return err
				}
				err = req.Wait()
				var we *WorldError
				if !errors.As(err, &we) {
					t.Errorf("pending Wait returned %v, want *WorldError", err)
				}
				unwedged.Add(1)
				return err
			case 1:
				err := c.Barrier()
				var we *WorldError
				if !errors.As(err, &we) {
					t.Errorf("blocked Barrier returned %v, want *WorldError", err)
				}
				unwedged.Add(1)
				return err
			case 2:
				time.Sleep(20 * time.Millisecond) // let the peers block first
				return cause
			default:
				_, err := c.AllreduceScalar(OpSum, 1)
				var we *WorldError
				if !errors.As(err, &we) {
					t.Errorf("blocked Allreduce returned %v, want *WorldError", err)
				}
				unwedged.Add(1)
				return err
			}
		})
	}()
	select {
	case err := <-result:
		if !errors.Is(err, cause) && err != cause {
			t.Fatalf("Run returned %v, want the original cause %v", err, cause)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peers stayed wedged after a rank failed")
	}
	if got := unwedged.Load(); got != 3 {
		t.Fatalf("%d of 3 blocked peers unwedged", got)
	}
	// The failed world refuses further operations with the same cause.
	c, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Isend(1, 0, []float64{1}); !errors.Is(err, cause) {
		t.Fatalf("Isend on failed world returned %v, want wrapped cause", err)
	}
}

func TestAllreduceLengthMismatchFailsWorld(t *testing.T) {
	// The offending rank gets the MismatchError; the rank already blocked
	// in the round gets a WorldError instead of wedging; Run reports the
	// mismatch as the primary cause.
	w := newTestWorld(t, 2)
	result := make(chan error, 1)
	go func() {
		result <- w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				_, err := c.Allreduce(OpSum, []float64{1, 2, 3})
				return err
			}
			time.Sleep(10 * time.Millisecond) // rank 0 opens the round
			_, err := c.Allreduce(OpSum, []float64{1})
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Errorf("mismatched rank got %v, want *MismatchError", err)
			}
			return err
		})
	}()
	select {
	case err := <-result:
		var mm *MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("Run returned %v, want *MismatchError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked on Allreduce length mismatch")
	}
}

func TestWorldClose(t *testing.T) {
	w := newTestWorld(t, 2)
	c, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Isend(1, 0, []float64{1}); !errors.Is(err, ErrWorldClosed) {
		t.Errorf("Isend on closed world returned %v, want ErrWorldClosed", err)
	}
	if err := c.Barrier(); !errors.Is(err, ErrWorldClosed) {
		t.Errorf("Barrier on closed world returned %v, want ErrWorldClosed", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 8
	w := newTestWorld(t, ranks)
	var before, after int64
	run(t, w, func(c *Comm) error {
		atomic.AddInt64(&before, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if atomic.LoadInt64(&before) != ranks {
			t.Error("barrier released before all ranks arrived")
		}
		atomic.AddInt64(&after, 1)
		return nil
	})
	if after != ranks {
		t.Errorf("after = %d, want %d", after, ranks)
	}
}

func TestBarrierReusable(t *testing.T) {
	const ranks, rounds = 5, 50
	w := newTestWorld(t, ranks)
	var counter int64
	run(t, w, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			atomic.AddInt64(&counter, 1)
			if err := c.Barrier(); err != nil {
				return err
			}
			want := int64((round + 1) * ranks)
			if atomic.LoadInt64(&counter) != want {
				t.Errorf("round %d: counter %d, want %d", round, counter, want)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestAllreduceSum(t *testing.T) {
	const ranks = 6
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		got, err := c.AllreduceScalar(OpSum, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		if got != 21 { // 1+2+...+6
			t.Errorf("rank %d: sum = %g, want 21", c.Rank(), got)
		}
		return nil
	})
}

func TestAllreduceMaxMinVector(t *testing.T) {
	const ranks = 4
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		in := []float64{float64(c.Rank()), -float64(c.Rank())}
		mx, err := c.Allreduce(OpMax, in)
		if err != nil {
			return err
		}
		if mx[0] != 3 || mx[1] != 0 {
			t.Errorf("max = %v", mx)
		}
		mn, err := c.Allreduce(OpMin, in)
		if err != nil {
			return err
		}
		if mn[0] != 0 || mn[1] != -3 {
			t.Errorf("min = %v", mn)
		}
		return nil
	})
}

func TestAllreduceScalarMinMax(t *testing.T) {
	// Direct coverage of the scalar reductions under OpMin/OpMax, including
	// negative values and the single-rank identity case.
	const ranks = 5
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		v := float64(c.Rank()) - 2 // -2 .. 2
		mx, err := c.AllreduceScalar(OpMax, v)
		if err != nil {
			return err
		}
		if mx != 2 {
			t.Errorf("rank %d: max = %g, want 2", c.Rank(), mx)
		}
		mn, err := c.AllreduceScalar(OpMin, v)
		if err != nil {
			return err
		}
		if mn != -2 {
			t.Errorf("rank %d: min = %g, want -2", c.Rank(), mn)
		}
		return nil
	})
	single := newTestWorld(t, 1)
	run(t, single, func(c *Comm) error {
		for _, op := range []ReduceOp{OpSum, OpMax, OpMin} {
			got, err := c.AllreduceScalar(op, -7.5)
			if err != nil {
				return err
			}
			if got != -7.5 {
				t.Errorf("op %v on single rank: %g, want -7.5", op, got)
			}
		}
		return nil
	})
}

func TestAllreduceRepeated(t *testing.T) {
	const ranks = 3
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		for round := 1; round <= 30; round++ {
			got, err := c.AllreduceScalar(OpSum, float64(round))
			if err != nil {
				return err
			}
			if math.Abs(got-float64(3*round)) > 0 {
				t.Errorf("round %d: %g", round, got)
			}
		}
		return nil
	})
}

func TestAllgatherInt64(t *testing.T) {
	const ranks = 5
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		got, err := c.AllgatherInt64(int64(c.Rank() * 10))
		if err != nil {
			return err
		}
		for r := 0; r < ranks; r++ {
			if got[r] != int64(r*10) {
				t.Errorf("gather[%d] = %d", r, got[r])
			}
		}
		return nil
	})
}

func TestManyRanksHaloExchangePattern(t *testing.T) {
	// Ring halo exchange across 16 ranks, 20 iterations — the communication
	// pattern of the distributed SpMV.
	const ranks, iters = 16, 20
	w := newTestWorld(t, ranks)
	run(t, w, func(c *Comm) error {
		left := (c.Rank() + ranks - 1) % ranks
		right := (c.Rank() + 1) % ranks
		val := float64(c.Rank())
		for it := 0; it < iters; it++ {
			fromLeft := make([]float64, 1)
			fromRight := make([]float64, 1)
			rl, err := c.Irecv(left, 100+it, fromLeft)
			if err != nil {
				return err
			}
			rr, err := c.Irecv(right, 100+it, fromRight)
			if err != nil {
				return err
			}
			if _, err := c.Isend(left, 100+it, []float64{val}); err != nil {
				return err
			}
			if _, err := c.Isend(right, 100+it, []float64{val}); err != nil {
				return err
			}
			if err := Waitall(rl, rr); err != nil {
				return err
			}
			val = (fromLeft[0] + fromRight[0]) / 2
		}
		// Averaging converges toward the global mean (7.5).
		if val < 0 || val > float64(ranks) {
			t.Errorf("rank %d diverged: %g", c.Rank(), val)
		}
		return nil
	})
}

func TestRunConvertsPanicToError(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("rank panic not reported: %v", err)
	}
}

func TestInvalidRanks(t *testing.T) {
	w := newTestWorld(t, 2)
	c, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	var rankErr *RankError
	if _, err := c.Isend(5, 0, nil); !errors.As(err, &rankErr) {
		t.Errorf("Isend: got %v, want *RankError", err)
	}
	if _, err := c.Irecv(-1, 0, nil); !errors.As(err, &rankErr) {
		t.Errorf("Irecv: got %v, want *RankError", err)
	}
	if _, err := w.Comm(9); !errors.As(err, &rankErr) {
		t.Errorf("Comm: got %v, want *RankError", err)
	}
	if _, err := NewWorld(0); err == nil {
		t.Error("NewWorld(0): no error")
	}
}

func TestNilRequestWait(t *testing.T) {
	var typed *request
	if typed.Wait() != nil || !typed.Done() {
		t.Error("nil request should be trivially complete")
	}
	var iface Request
	if err := Waitall(iface, typed); err != nil { // nil interface and typed nil both trivially complete
		t.Errorf("Waitall of nil requests: %v", err)
	}
}
