package chanmpi

import "fmt"

// Persistent communication channels, the in-process analogue of
// MPI_Send_init / MPI_Recv_init: the (peer, tag, buffer) triple of a
// recurring exchange is bound ONCE, and each iteration merely restarts the
// resident request with Start and completes it with Wait. All per-message
// bookkeeping — the request object, its completion channel, the send-side
// staging copy — is allocated at init time and reused forever, so a
// steady-state halo exchange performs zero allocations per iteration
// (TestAllocGateHaloExchangePersistent pins this down).
//
// Matching is the ordinary posting-order (source, tag) discipline;
// persistent and one-shot operations interleave freely on the same tag.

// PersistentRequest is a restartable communication channel bound to a
// fixed peer, tag and buffer (MPI persistent request semantics). Start
// initiates one transfer; Wait blocks until it completes and returns its
// error. Each Start must be matched by a Wait before the next Start; for
// sends, Wait is trivially immediate under the runtime's buffered
// semantics. Start after a world failure returns a *WorldError.
type PersistentRequest interface {
	// Start initiates one transfer over the channel. For a receive it
	// (re)posts the resident request; for a send it delivers or stages the
	// current buffer contents. An error detectable at initiation time
	// (world failure, truncation on an immediate match) is returned here.
	Start() error
	// Wait blocks until the transfer initiated by the last Start completes
	// and returns its error. One Wait per Start.
	Wait() error
}

// precv is a persistent receive channel: one resident request, restarted
// into the owner's mailbox by each Start.
type precv struct {
	c   *Comm
	req *request
}

// RecvInit creates a persistent receive channel for messages from rank src
// with the given tag, delivering into buf (MPI_Recv_init). The channel is
// inert until its first Start.
func (c *Comm) RecvInit(src, tag int, buf []float64) (PersistentRequest, error) {
	if src < 0 || src >= c.world.size {
		return nil, &RankError{Op: "RecvInit", Rank: src, Size: c.world.size}
	}
	return &precv{
		c: c,
		req: &request{
			done:       make(chan struct{}, 1),
			fail:       c.world.failure,
			src:        src,
			tag:        tag,
			buf:        buf,
			persistent: true,
		},
	}, nil
}

func (p *precv) Start() error {
	c := p.c
	r := p.req
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	if err := c.world.failure.Err(); err != nil {
		box.mu.Unlock()
		return &WorldError{Cause: err}
	}
	if r.queued && !r.matched {
		box.mu.Unlock()
		return fmt.Errorf("chanmpi: Start on a persistent receive still in flight (Wait it first)")
	}
	// Drain a completion token the caller never waited for: restarting
	// abandons the previous round's completion.
	select {
	case <-r.done:
	default:
	}
	r.matched, r.err, r.n, r.queued = false, nil, 0, true
	// Same matching rule as Irecv, through the shared helper.
	if ok, err := box.takeBufferedLocked(r); ok {
		box.mu.Unlock()
		if err != nil {
			c.world.Fail(err)
		}
		return err
	}
	box.recvs = append(box.recvs, r)
	box.mu.Unlock()
	return nil
}

//repro:noalloc
func (p *precv) Wait() error { return p.req.Wait() }

// psend is a persistent send channel. It owns a resident staging copy
// (stage) used when no matching receive is posted yet, so the unmatched
// path buffers without allocating; when the receive is already posted —
// the steady-state order of the halo exchange, which posts all receives
// before gathering — delivery goes straight from the bound buffer into the
// receiver's.
type psend struct {
	c        *Comm
	dst, tag int
	buf      []float64
	stage    *inflight // pending flag guarded by the destination mailbox lock
	lastErr  error
}

// SendInit creates a persistent send channel to rank dst with the given
// tag, transmitting the CURRENT contents of buf on each Start
// (MPI_Send_init — the caller refills buf between Starts).
func (c *Comm) SendInit(dst, tag int, buf []float64) (PersistentRequest, error) {
	if dst < 0 || dst >= c.world.size {
		return nil, &RankError{Op: "SendInit", Rank: dst, Size: c.world.size}
	}
	return &psend{
		c:     c,
		dst:   dst,
		tag:   tag,
		buf:   buf,
		stage: &inflight{src: c.rank, tag: tag},
	}, nil
}

func (p *psend) Start() error {
	c := p.c
	if err := c.world.failure.Err(); err != nil {
		p.lastErr = &WorldError{Cause: err}
		return p.lastErr
	}
	box := c.world.boxes[p.dst]
	box.mu.Lock()
	// Same matching rule as Isend, through the shared helper: deliver
	// directly from the bound buffer, no staging copy.
	if ok, err := box.deliverToPostedLocked(c.rank, p.tag, p.buf); ok {
		box.mu.Unlock()
		p.lastErr = err
		if err != nil {
			c.world.Fail(err)
		}
		return err
	}
	// No receive posted yet: buffer through the resident staging copy. If
	// the previous round's message is somehow still unconsumed (a pattern
	// the lock-stepped halo exchange cannot produce), fall back to a fresh
	// copy rather than corrupting it.
	st := p.stage
	if st.pending {
		box.sends = append(box.sends, &inflight{src: c.rank, tag: p.tag, data: append([]float64(nil), p.buf...)})
	} else {
		if cap(st.data) < len(p.buf) {
			st.data = make([]float64, len(p.buf))
		}
		st.data = st.data[:len(p.buf)]
		copy(st.data, p.buf)
		st.pending = true
		box.sends = append(box.sends, st)
	}
	box.mu.Unlock()
	p.lastErr = nil
	return nil
}

// Wait reports the outcome of the last Start. Sends are buffered, so a
// successfully started transfer is already complete.
//
//repro:noalloc
func (p *psend) Wait() error { return p.lastErr }
