package chanmpi

import (
	"errors"
	"fmt"
)

// The typed errors of the message-passing contract. Every failure that used
// to panic — invalid ranks, truncated receives, length-mismatched reductions,
// operations on a failed world — now surfaces as one of these, so transports
// and the distributed runtime can report them through normal error returns
// (and a wire-level backend can map its own failures onto the same taxonomy).

// ErrWorldClosed is the failure cause recorded when a world is shut down via
// Close; operations attempted afterwards return a *WorldError wrapping it.
var ErrWorldClosed = errors.New("chanmpi: world closed")

// RankError reports a point-to-point operation addressing a rank outside
// [0, Size).
type RankError struct {
	Op   string // "Isend", "Irecv", "Comm", ...
	Rank int
	Size int
}

func (e *RankError) Error() string {
	return fmt.Sprintf("chanmpi: %s rank %d outside [0,%d)", e.Op, e.Rank, e.Size)
}

// TruncationError reports a message longer than the posted receive buffer
// (MPI_ERR_TRUNCATE). Both endpoints of the exchange observe it, and the
// world fails so ranks blocked on the broken exchange unwedge.
type TruncationError struct {
	Len, Cap int // message elements, receive-buffer capacity
	Src, Tag int
}

func (e *TruncationError) Error() string {
	return fmt.Sprintf("chanmpi: message of %d elements truncated by %d-element buffer (src %d, tag %d)",
		e.Len, e.Cap, e.Src, e.Tag)
}

// MismatchError reports ranks disagreeing on the vector length of an
// Allreduce round. The offending rank receives it directly and the world
// fails, so peers already blocked in the round observe a *WorldError
// instead of wedging.
type MismatchError struct {
	Got, Want int
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("chanmpi: Allreduce length mismatch: %d vs %d", e.Got, e.Want)
}

// WorldError reports an operation attempted on (or interrupted by) a failed
// world; Cause is the first failure. It unwraps to the cause, so
// errors.Is(err, ErrWorldClosed) and friends see through it.
type WorldError struct {
	Cause error
}

func (e *WorldError) Error() string {
	return fmt.Sprintf("chanmpi: world failed: %v", e.Cause)
}

// Unwrap exposes the first failure.
func (e *WorldError) Unwrap() error { return e.Cause }
