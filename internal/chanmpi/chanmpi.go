// Package chanmpi is an in-process message-passing runtime with MPI-like
// semantics: a fixed set of ranks (goroutines), nonblocking point-to-point
// sends and receives matched by (source, tag) in posting order, and the
// collectives the distributed SpMV needs (Barrier, Allreduce, Allgather).
//
// It is the functional substitute for MPI in this reproduction: the
// distributed kernels in internal/core run unchanged on top of it and are
// verified numerically. Timing semantics (the paper's "no asynchronous
// progress" observation) are modeled separately by internal/simmpi on the
// discrete-event simulator; chanmpi is always asynchronous, as a perfect
// progress engine would be.
package chanmpi

import (
	"fmt"
	"sync"
)

// World owns the shared state of a set of communicating ranks.
type World struct {
	size     int
	boxes    []*mailbox
	barrier  *barrier
	reducer  *reducer
	gatherer *gatherer
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("chanmpi: world size %d < 1", size))
	}
	w := &World{
		size:     size,
		boxes:    make([]*mailbox, size),
		barrier:  newBarrier(size),
		reducer:  newReducer(size),
		gatherer: newGatherer(size),
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator handle of the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("chanmpi: rank %d outside [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run spawns one goroutine per rank executing body and blocks until all
// ranks return. Panics inside ranks are collected and re-raised.
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = p
				}
			}()
			body(w.Comm(r))
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("chanmpi: rank %d panicked: %v", r, p))
		}
	}
}

// Comm is one rank's communicator handle.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Request is the handle of a nonblocking operation. A send request completes
// when the message has been handed to the runtime (buffered semantics); a
// receive request completes when a matching message has been copied into its
// buffer. Request is an interface so that alternative transports (a real
// multi-process backend, the simulator re-enactment) can hand out their own
// request handles behind the same core.Comm contract.
type Request interface {
	// Wait blocks until the operation completes and returns the element
	// count (zero for sends). Wait panics if the operation failed
	// (truncation).
	Wait() int
	// Done reports whether the operation has completed without blocking
	// (MPI_Test).
	Done() bool
}

// request is the chanmpi-backed Request implementation.
type request struct {
	done chan struct{}
	// For receives: number of elements delivered.
	n int
	// Identity for matching (receives queued at the destination).
	src, tag int
	buf      []float64
	isRecv   bool
	matched  bool
	// err records a delivery error (truncation); Wait re-raises it so both
	// endpoints observe the failure, as an MPI error would abort both.
	err string
}

func (r *request) Wait() int {
	if r == nil {
		return 0
	}
	<-r.done
	if r.err != "" {
		panic(r.err)
	}
	return r.n
}

func (r *request) Done() bool {
	if r == nil {
		return true
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Waitall waits for every request (MPI_Waitall). Nil requests are trivially
// complete.
func Waitall(reqs ...Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Waitall waits for every request (MPI_Waitall), as a method so the
// communicator handle alone carries the full point-to-point contract.
func (c *Comm) Waitall(reqs ...Request) { Waitall(reqs...) }

// mailbox holds the unmatched messages and posted receives of one rank.
type mailbox struct {
	mu sync.Mutex
	// recvs are posted, unmatched receive requests in posting order.
	recvs []*request
	// sends are arrived, unmatched messages in arrival order.
	sends []*inflight
}

type inflight struct {
	src, tag int
	data     []float64
}

// Isend starts a nonblocking send of data to rank dst with the given tag.
// The runtime copies the payload immediately (buffered send), so the caller
// may reuse data as soon as Isend returns; the returned request is already
// complete and exists for symmetry with MPI call sites.
func (c *Comm) Isend(dst, tag int, data []float64) Request {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("chanmpi: Isend to invalid rank %d", dst))
	}
	req := &request{done: make(chan struct{})}
	box := c.world.boxes[dst]
	box.mu.Lock()
	// Match the earliest posted receive with the same (src, tag).
	for _, rr := range box.recvs {
		if rr.matched || rr.src != c.rank || rr.tag != tag {
			continue
		}
		errMsg := deliver(rr, data)
		box.compactLocked()
		box.mu.Unlock()
		close(req.done)
		if errMsg != "" {
			panic(errMsg)
		}
		return req
	}
	// No receive posted yet: buffer a copy.
	box.sends = append(box.sends, &inflight{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
	box.mu.Unlock()
	close(req.done)
	return req
}

// Irecv posts a nonblocking receive into buf for a message from rank src
// with the given tag. The message length must not exceed len(buf); a longer
// message is a truncation error and panics, matching MPI's error semantics.
func (c *Comm) Irecv(src, tag int, buf []float64) Request {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("chanmpi: Irecv from invalid rank %d", src))
	}
	req := &request{done: make(chan struct{}), src: src, tag: tag, buf: buf, isRecv: true}
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	// Match the earliest buffered message with the same (src, tag).
	for i, m := range box.sends {
		if m == nil || m.src != src || m.tag != tag {
			continue
		}
		box.sends[i] = nil
		errMsg := deliver(req, m.data)
		box.compactLocked()
		box.mu.Unlock()
		if errMsg != "" {
			panic(errMsg)
		}
		return req
	}
	box.recvs = append(box.recvs, req)
	box.mu.Unlock()
	return req
}

// deliver copies data into the receive buffer and completes the request.
// Callers hold the destination mailbox lock. On truncation the request is
// completed with an error (so a rank blocked in Wait observes the failure)
// and the error is returned; the caller must RELEASE the mailbox lock
// before panicking on it — panicking under the lock would leave the
// mailbox poisoned and deadlock every other rank touching it instead of
// propagating the failure through World.Run.
func deliver(r *request, data []float64) (errMsg string) {
	if len(data) > len(r.buf) {
		msg := fmt.Sprintf("chanmpi: message of %d elements truncated by %d-element buffer (src %d, tag %d)",
			len(data), len(r.buf), r.src, r.tag)
		r.err = msg
		r.matched = true
		close(r.done)
		return msg
	}
	copy(r.buf, data)
	r.n = len(data)
	r.matched = true
	close(r.done)
	return ""
}

// compactLocked removes matched receives and consumed sends.
func (b *mailbox) compactLocked() {
	recvs := b.recvs[:0]
	for _, r := range b.recvs {
		if !r.matched {
			recvs = append(recvs, r)
		}
	}
	b.recvs = recvs
	sends := b.sends[:0]
	for _, s := range b.sends {
		if s != nil {
			sends = append(sends, s)
		}
	}
	b.sends = sends
}

// Send is a blocking send (trivially complete under buffered semantics).
func (c *Comm) Send(dst, tag int, data []float64) {
	c.Isend(dst, tag, data).Wait()
}

// Recv is a blocking receive; it returns the element count.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	return c.Irecv(src, tag, buf).Wait()
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() { c.world.barrier.await() }

// ReduceOp selects the combining operation of Allreduce.
type ReduceOp int

const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// Allreduce combines in-vectors elementwise across all ranks and returns
// the combined vector (the same backing array is returned to every rank;
// callers must treat it as read-only).
func (c *Comm) Allreduce(op ReduceOp, in []float64) []float64 {
	return c.world.reducer.allreduce(op, in)
}

// AllreduceScalar combines a single value across all ranks.
func (c *Comm) AllreduceScalar(op ReduceOp, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}

// AllgatherInt64 gathers one int64 from every rank; the result is indexed
// by rank and shared read-only across ranks.
func (c *Comm) AllgatherInt64(v int64) []int64 {
	return c.world.gatherer.gather(c.rank, v)
}

// barrier is a reusable generation-counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// reducer implements Allreduce with one shared accumulator per round.
// A round cannot overlap the next because every rank participates exactly
// once per round.
type reducer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
	acc   []float64
	res   []float64
}

func newReducer(size int) *reducer {
	r := &reducer{size: size}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *reducer) allreduce(op ReduceOp, in []float64) []float64 {
	r.mu.Lock()
	if r.count == 0 {
		r.acc = append([]float64(nil), in...)
	} else {
		if len(in) != len(r.acc) {
			panic(fmt.Sprintf("chanmpi: Allreduce length mismatch: %d vs %d", len(in), len(r.acc)))
		}
		for i, v := range in {
			r.acc[i] = op.combine(r.acc[i], v)
		}
	}
	r.count++
	if r.count == r.size {
		r.count = 0
		r.res = r.acc
		r.acc = nil
		r.gen++
		r.cond.Broadcast()
		res := r.res
		r.mu.Unlock()
		return res
	}
	gen := r.gen
	for gen == r.gen {
		r.cond.Wait()
	}
	res := r.res
	r.mu.Unlock()
	return res
}

// gatherer implements AllgatherInt64 analogously.
type gatherer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
	acc   []int64
	res   []int64
}

func newGatherer(size int) *gatherer {
	g := &gatherer{size: size}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gatherer) gather(rank int, v int64) []int64 {
	g.mu.Lock()
	if g.count == 0 {
		g.acc = make([]int64, g.size)
	}
	g.acc[rank] = v
	g.count++
	if g.count == g.size {
		g.count = 0
		g.res = g.acc
		g.acc = nil
		g.gen++
		g.cond.Broadcast()
		res := g.res
		g.mu.Unlock()
		return res
	}
	gen := g.gen
	for gen == g.gen {
		g.cond.Wait()
	}
	res := g.res
	g.mu.Unlock()
	return res
}
