// Package chanmpi is an in-process message-passing runtime with MPI-like
// semantics: a fixed set of ranks (goroutines), nonblocking point-to-point
// sends and receives matched by (source, tag) in posting order, persistent
// communication channels (SendInit/RecvInit, the MPI_Send_init/Recv_init
// analogue — see persistent.go) whose steady-state Start/Wait cycle
// allocates nothing, and the collectives the distributed SpMV needs
// (Barrier, Allreduce, Allgather) on resident buffers.
//
// It is the functional substitute for MPI in this reproduction: the
// distributed kernels in internal/core run unchanged on top of it and are
// verified numerically. Timing semantics (the paper's "no asynchronous
// progress" observation) are modeled separately by internal/simmpi on the
// discrete-event simulator; chanmpi is always asynchronous, as a perfect
// progress engine would be.
//
// The contract is error-first: misuse (invalid rank, Allreduce length
// mismatch) and transport failures (truncation) return typed errors — see
// errors.go — instead of panicking. A failure that breaks an in-flight
// exchange fails the whole world: blocked peers wake with a *WorldError
// wrapping the first cause rather than wedging, the way an MPI error
// aborts the job.
package chanmpi

import (
	"errors"
	"fmt"
	"sync"
)

// World owns the shared state of a set of communicating ranks.
type World struct {
	size     int
	boxes    []*mailbox
	barrier  *barrier
	reducer  *reducer
	gatherer *gatherer
	failure  *failure
}

// failure is the write-once failure state of a world. The first fail wins;
// its cause is what every subsequent or interrupted operation reports.
type failure struct {
	mu  sync.Mutex
	err error
	ch  chan struct{} // closed on first failure; selected on by blocked waits
}

func (f *failure) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
		close(f.ch)
	}
}

// Err returns the first failure, or nil while the world is healthy.
func (f *failure) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("chanmpi: world size %d < 1", size)
	}
	w := &World{
		size:     size,
		boxes:    make([]*mailbox, size),
		barrier:  newBarrier(size),
		reducer:  newReducer(size),
		gatherer: newGatherer(size),
		failure:  &failure{ch: make(chan struct{})},
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Err returns the world's first failure, or nil while it is healthy.
func (w *World) Err() error { return w.failure.Err() }

// Fail poisons the world with the given cause: every blocked operation
// wakes with a *WorldError and every subsequent operation returns one.
// The first cause wins; later calls are no-ops.
func (w *World) Fail(err error) {
	w.failure.fail(err)
	// Wake collective waiters. Broadcasting under each collective's lock
	// closes the race against a waiter that checked Err just before
	// entering cond.Wait (Wait releases the lock atomically, so holding it
	// here means the waiter is either before the check or already parked).
	w.barrier.mu.Lock()
	w.barrier.cond.Broadcast()
	w.barrier.mu.Unlock()
	w.reducer.mu.Lock()
	w.reducer.cond.Broadcast()
	w.reducer.mu.Unlock()
	w.gatherer.mu.Lock()
	w.gatherer.cond.Broadcast()
	w.gatherer.mu.Unlock()
	// Point-to-point waiters select on failure.ch directly.
}

// Close fails the world with ErrWorldClosed, releasing anything still
// blocked in it. Closing an already-failed or closed world is a no-op.
func (w *World) Close() error {
	w.Fail(ErrWorldClosed)
	return nil
}

// Comm returns the communicator handle of the given rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, &RankError{Op: "Comm", Rank: rank, Size: w.size}
	}
	return &Comm{world: w, rank: rank}, nil
}

// Run spawns one goroutine per rank executing body and blocks until all
// ranks return. A rank that returns an error (or panics; panics are
// recovered into errors) fails the world, so peers blocked on it unwedge
// with a *WorldError instead of deadlocking. Run returns the primary
// failure: the first rank error that is not itself a secondary
// world-failure report.
func (w *World) Run(body func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("chanmpi: rank %d panicked: %v", r, p)
				}
				if errs[r] != nil {
					w.Fail(errs[r])
				}
			}()
			errs[r] = body(&Comm{world: w, rank: r})
		}(r)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var we *WorldError
		if !errors.As(err, &we) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Comm is one rank's communicator handle.
type Comm struct {
	world *World
	rank  int
	// scalarBuf is the resident one-element vector AllreduceScalar
	// contributes through, so the scalar reductions on every solver
	// iteration's hot path allocate nothing. A Comm handle belongs to one
	// rank goroutine; collectives on it are never concurrent.
	scalarBuf [1]float64
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Request is the handle of a nonblocking operation. A send request completes
// when the message has been handed to the runtime (buffered semantics); a
// receive request completes when a matching message has been copied into its
// buffer. Request is an interface so that alternative transports (the
// multi-process TCP backend in internal/tcpmpi, a simulator re-enactment)
// can hand out their own request handles behind the same core.Comm contract.
type Request interface {
	// Wait blocks until the operation completes and returns its error:
	// nil on success, a *TruncationError if the exchange was truncated, or
	// a *WorldError if the world failed before completion.
	Wait() error
	// Done reports whether the operation has completed without blocking
	// (MPI_Test).
	Done() bool
}

// request is the chanmpi-backed Request implementation.
type request struct {
	done chan struct{}
	fail *failure
	// For receives: number of elements delivered.
	n int
	// Identity for matching (receives queued at the destination).
	src, tag int
	buf      []float64
	matched  bool
	// queued marks a persistent receive as having been Started at least
	// once; with matched it distinguishes "still in flight" (queued, not
	// matched) from "restartable" (guarded by the mailbox lock).
	queued bool
	// persistent marks a restartable request (RecvInit): completion sends a
	// token on the buffered done channel instead of closing it, so the same
	// request object restarts forever without reallocating.
	persistent bool
	// err records a delivery error (truncation); Wait returns it so both
	// endpoints observe the failure, as an MPI error would abort both.
	err error
}

// signalDone completes the request: one token for a persistent request
// (consumed by its single Wait, making the channel reusable), a close for
// a one-shot one.
func (r *request) signalDone() {
	if r.persistent {
		r.done <- struct{}{}
	} else {
		close(r.done)
	}
}

func (r *request) Wait() error {
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
		return r.err
	case <-r.fail.ch:
		// The world failed; the match may never arrive. A completion that
		// raced the failure still counts.
		select {
		case <-r.done:
			return r.err
		default:
			return &WorldError{Cause: r.fail.Err()}
		}
	}
}

func (r *request) Done() bool {
	if r == nil {
		return true
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Waitall waits for every request (MPI_Waitall) and returns the first
// error observed, after all requests have been waited on. Nil requests are
// trivially complete.
func Waitall(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Waitall waits for every request (MPI_Waitall), as a method so the
// communicator handle alone carries the full point-to-point contract.
func (c *Comm) Waitall(reqs ...Request) error { return Waitall(reqs...) }

// mailbox holds the unmatched messages and posted receives of one rank.
type mailbox struct {
	mu sync.Mutex
	// recvs are posted, unmatched receive requests in posting order.
	recvs []*request
	// sends are arrived, unmatched messages in arrival order.
	sends []*inflight
}

// deliverToPostedLocked delivers data to the earliest posted receive with
// the same (src, tag) — the single matching rule shared by one-shot Isend
// and persistent psend.Start. Returns whether a receive matched and the
// delivery error; callers hold the mailbox lock and must release it before
// failing the world on the error.
func (b *mailbox) deliverToPostedLocked(src, tag int, data []float64) (bool, error) {
	for _, rr := range b.recvs {
		if rr.matched || rr.src != src || rr.tag != tag {
			continue
		}
		err := deliver(rr, data)
		b.compactLocked()
		return true, err
	}
	return false, nil
}

// takeBufferedLocked consumes the earliest buffered message with req's
// (src, tag) and delivers it — the single matching rule shared by one-shot
// Irecv and persistent precv.Start. Returns whether a message matched and
// the delivery error; same locking contract as deliverToPostedLocked.
func (b *mailbox) takeBufferedLocked(req *request) (bool, error) {
	for i, m := range b.sends {
		if m == nil || m.src != req.src || m.tag != req.tag {
			continue
		}
		b.sends[i] = nil
		m.pending = false
		err := deliver(req, m.data)
		b.compactLocked()
		return true, err
	}
	return false, nil
}

type inflight struct {
	src, tag int
	data     []float64
	// pending marks a persistent send's resident staging copy as still
	// buffered in a mailbox; cleared (under the mailbox lock) when the
	// message is consumed, so the owning SendInit request can reuse it.
	pending bool
}

// Isend starts a nonblocking send of data to rank dst with the given tag.
// The runtime copies the payload immediately (buffered send), so the caller
// may reuse data as soon as Isend returns; the returned request is already
// complete and exists for symmetry with MPI call sites. A truncation
// detected at match time is returned immediately (and recorded on the
// request), and fails the world.
func (c *Comm) Isend(dst, tag int, data []float64) (Request, error) {
	if dst < 0 || dst >= c.world.size {
		return nil, &RankError{Op: "Isend", Rank: dst, Size: c.world.size}
	}
	if err := c.world.failure.Err(); err != nil {
		return nil, &WorldError{Cause: err}
	}
	req := &request{done: make(chan struct{}), fail: c.world.failure}
	box := c.world.boxes[dst]
	box.mu.Lock()
	if ok, err := box.deliverToPostedLocked(c.rank, tag, data); ok {
		box.mu.Unlock()
		req.err = err
		close(req.done)
		if err != nil {
			// Fail outside the mailbox lock: poisoning the mailbox while
			// holding it would deadlock every other rank touching it
			// instead of propagating the failure.
			c.world.Fail(err)
		}
		return req, err
	}
	// No receive posted yet: buffer a copy.
	box.sends = append(box.sends, &inflight{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
	box.mu.Unlock()
	close(req.done)
	return req, nil
}

// Irecv posts a nonblocking receive into buf for a message from rank src
// with the given tag. The message length must not exceed len(buf); a longer
// message is a truncation error, reported through the request (and, when
// matched immediately, from Irecv itself) and failing the world, matching
// MPI's error semantics.
func (c *Comm) Irecv(src, tag int, buf []float64) (Request, error) {
	if src < 0 || src >= c.world.size {
		return nil, &RankError{Op: "Irecv", Rank: src, Size: c.world.size}
	}
	if err := c.world.failure.Err(); err != nil {
		return nil, &WorldError{Cause: err}
	}
	req := &request{done: make(chan struct{}), fail: c.world.failure, src: src, tag: tag, buf: buf}
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	if ok, err := box.takeBufferedLocked(req); ok {
		box.mu.Unlock()
		if err != nil {
			c.world.Fail(err)
		}
		return req, err
	}
	box.recvs = append(box.recvs, req)
	box.mu.Unlock()
	return req, nil
}

// deliver copies data into the receive buffer and completes the request.
// Callers hold the destination mailbox lock; on a truncation error they
// must RELEASE it before failing the world.
func deliver(r *request, data []float64) error {
	if len(data) > len(r.buf) {
		err := &TruncationError{Len: len(data), Cap: len(r.buf), Src: r.src, Tag: r.tag}
		r.err = err
		r.matched = true
		r.signalDone()
		return err
	}
	copy(r.buf, data)
	r.n = len(data)
	r.matched = true
	r.signalDone()
	return nil
}

// compactLocked removes matched receives and consumed sends.
func (b *mailbox) compactLocked() {
	recvs := b.recvs[:0]
	for _, r := range b.recvs {
		if !r.matched {
			recvs = append(recvs, r)
		}
	}
	b.recvs = recvs
	sends := b.sends[:0]
	for _, s := range b.sends {
		if s != nil {
			sends = append(sends, s)
		}
	}
	b.sends = sends
}

// Send is a blocking send (trivially complete under buffered semantics).
func (c *Comm) Send(dst, tag int, data []float64) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	return req.Wait()
}

// Recv is a blocking receive; it returns the element count.
func (c *Comm) Recv(src, tag int, buf []float64) (int, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return 0, err
	}
	if err := req.Wait(); err != nil {
		return 0, err
	}
	return req.(*request).n, nil
}

// Barrier blocks until all ranks have entered it. On a failed world it
// returns a *WorldError instead of blocking forever.
func (c *Comm) Barrier() error {
	return c.world.barrier.await(c.world.failure)
}

// ReduceOp selects the combining operation of Allreduce.
type ReduceOp int

const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Combine applies the reduction pairwise. Exported so every transport
// (tcpmpi's tree reduction, future backends) folds with the identical
// operation table — a transport-private copy could silently diverge on a
// newly added op and break cross-transport bit-identity. Unknown ops sum.
func (op ReduceOp) Combine(a, b float64) float64 {
	switch op {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// Allreduce combines in-vectors elementwise across all ranks and returns
// the combined vector (the same backing array is returned to every rank;
// callers must treat it as read-only, and it stays valid only until this
// rank's next collective operation — the rounds reuse one resident result
// buffer, so the steady-state reduction path allocates nothing). The
// combine runs in canonical rank order 0,1,…,Size-1 once every rank has
// contributed, so the result is bit-deterministic across runs — and
// bit-identical to any other transport using the same canonical order
// (tcpmpi's tree reduction does). Ranks must agree on the vector length: a
// mismatch returns a *MismatchError to the offending rank and fails the
// world, so peers blocked in the round observe a *WorldError.
func (c *Comm) Allreduce(op ReduceOp, in []float64) ([]float64, error) {
	res, err := c.world.reducer.allreduce(op, in, c.rank, c.world.failure)
	if err != nil {
		if _, ok := err.(*MismatchError); ok {
			// Fail outside the reducer lock (allreduce has released it).
			c.world.Fail(err)
		}
		return nil, err
	}
	return res, nil
}

// AllreduceScalar combines a single value across all ranks. It contributes
// through the communicator's resident one-element buffer, so the scalar
// reductions riding every solver iteration allocate nothing.
func (c *Comm) AllreduceScalar(op ReduceOp, v float64) (float64, error) {
	c.scalarBuf[0] = v
	res, err := c.Allreduce(op, c.scalarBuf[:])
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// AllgatherInt64 gathers one int64 from every rank; the result is indexed
// by rank, shared read-only across ranks, and valid until this rank's next
// collective (the rounds alternate between two resident buffers).
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	return c.world.gatherer.gather(c.rank, v, c.world.failure)
}

// barrier is a reusable generation-counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(f *failure) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := f.Err(); err != nil {
		return &WorldError{Cause: err}
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen {
		b.cond.Wait()
		if err := f.Err(); err != nil {
			return &WorldError{Cause: err}
		}
	}
	return nil
}

// reducer implements Allreduce by collecting every rank's vector and
// combining them in canonical rank order when the round completes, so the
// floating-point result is bit-deterministic regardless of arrival order.
// A round cannot overlap the next because every rank participates exactly
// once per round. Both the per-rank collection buffers AND the result
// buffer persist across rounds (reductions sit on every solver iteration's
// hot path), so a steady-state round allocates nothing. Reusing the result
// is safe because every rank must contribute to round k+1 before its
// combine can overwrite the buffer, and a rank can only do so after it has
// consumed round k's result — hence the contract that the returned slice
// is valid only until the rank's next collective.
type reducer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
	refLn int // vector length of the round's first arrival
	vecs  [][]float64
	res   []float64
}

func newReducer(size int) *reducer {
	r := &reducer{size: size}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// allreduce returns the combined vector, a *MismatchError for the rank
// whose vector length disagrees with the round (the caller fails the world
// afterwards, outside the reducer lock), or a *WorldError if the world
// failed while this rank was blocked in the round.
//
//repro:noalloc
func (r *reducer) allreduce(op ReduceOp, in []float64, rank int, f *failure) ([]float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := f.Err(); err != nil {
		return nil, &WorldError{Cause: err}
	}
	if r.count == 0 {
		if r.vecs == nil {
			r.vecs = make([][]float64, r.size) //repro:alloc-ok once-per-world collection table
		}
		r.refLn = len(in)
	} else if len(in) != r.refLn {
		return nil, &MismatchError{Got: len(in), Want: r.refLn}
	}
	buf := r.vecs[rank]
	if cap(buf) < len(in) {
		buf = make([]float64, len(in)) //repro:alloc-ok grow-once resident buffer
	} else {
		buf = buf[:len(in)]
	}
	copy(buf, in)
	r.vecs[rank] = buf
	r.count++
	if r.count == r.size {
		// Canonical rank-order combine: 0 ⊕ 1 ⊕ … ⊕ size-1, into the
		// resident result buffer (distinct from the collection buffers).
		if cap(r.res) < len(in) {
			r.res = make([]float64, len(in)) //repro:alloc-ok grow-once resident buffer
		}
		acc := r.res[:len(in)]
		copy(acc, r.vecs[0])
		for q := 1; q < r.size; q++ {
			for i, v := range r.vecs[q] {
				acc[i] = op.Combine(acc[i], v)
			}
		}
		r.count = 0
		r.res = acc
		r.gen++
		r.cond.Broadcast()
		return r.res, nil
	}
	gen := r.gen
	for gen == r.gen {
		r.cond.Wait()
		if err := f.Err(); err != nil {
			return nil, &WorldError{Cause: err}
		}
	}
	return r.res, nil
}

// gatherer implements AllgatherInt64 analogously.
type gatherer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
	acc   []int64
	res   []int64
}

func newGatherer(size int) *gatherer {
	g := &gatherer{size: size}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gatherer) gather(rank int, v int64, f *failure) ([]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := f.Err(); err != nil {
		return nil, &WorldError{Cause: err}
	}
	if g.count == 0 && g.acc == nil {
		g.acc = make([]int64, g.size)
	}
	g.acc[rank] = v
	g.count++
	if g.count == g.size {
		g.count = 0
		// Swap the accumulator and the previous result: callers may still
		// read the last round's slice until their next collective, while
		// the next round collects into the other buffer.
		g.res, g.acc = g.acc, g.res
		g.gen++
		g.cond.Broadcast()
		return g.res, nil
	}
	gen := g.gen
	for gen == g.gen {
		g.cond.Wait()
		if err := f.Err(); err != nil {
			return nil, &WorldError{Cause: err}
		}
	}
	return g.res, nil
}
