package core_test

// The supervisor tests live in the external test package so they can
// drive recovery with the faultmpi transport decorator (which imports
// core — an in-package test would be an import cycle).

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
	"repro/internal/genmat"
	"repro/internal/matrix"
)

func supervisorPlan(t *testing.T, ranks int) (*matrix.CSR, *core.Plan) {
	t.Helper()
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 8, Ny: 7, Nz: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	part := core.PartitionByNnz(p, ranks)
	plan, err := core.BuildPlan(p, part, true)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

// TestSupervisorRetriesDialFailures pins the backoff-and-redial loop: a
// transport whose first dials fail transiently costs exactly that many
// retries, and the epoch that finally comes up does real work.
func TestSupervisorRetriesDialFailures(t *testing.T) {
	a, plan := supervisorPlan(t, 3)
	tr := &faultmpi.Transport{Sched: faultmpi.Schedule{DialFailures: 2}}
	var retries int
	s := &core.Supervisor{
		Transport:   func(epoch int) core.Transport { return tr },
		MaxRestarts: 5,
		Backoff:     time.Millisecond,
		OnRetry:     func(epoch int, cause error, delay time.Duration) { retries++ },
	}
	n := a.NumRows
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		return cl.Mul(y, x, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Fatalf("took %d retries, want 2 (one per injected dial failure)", retries)
	}
	want := make([]float64, n)
	a.MulVec(want, x)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

// TestSupervisorRecoversFromInjectedKill pins the restart path: a rank
// killed mid-job fails epoch 0 with a recoverable world failure, the
// schedule is consumed, and epoch 1 runs clean on a fresh world.
func TestSupervisorRecoversFromInjectedKill(t *testing.T) {
	_, plan := supervisorPlan(t, 3)
	tr := &faultmpi.Transport{Sched: faultmpi.Schedule{Kills: []faultmpi.Kill{{Rank: 1, AtOp: 4}}}}
	var causes []error
	s := &core.Supervisor{
		Transport: func(epoch int) core.Transport { return tr },
		Backoff:   time.Millisecond,
		OnRetry:   func(epoch int, cause error, delay time.Duration) { causes = append(causes, cause) },
	}
	epochs := 0
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		epochs++
		return cl.Run(func(w *core.Worker) error {
			for i := 0; i < 10; i++ {
				if err := w.Comm.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 2 {
		t.Fatalf("ran %d epochs, want 2 (killed, then recovered)", epochs)
	}
	if len(causes) != 1 {
		t.Fatalf("observed %d retries, want 1", len(causes))
	}
	var pe *core.PeerError
	if !errors.As(causes[0], &pe) || pe.RankLo != 1 {
		t.Fatalf("retry cause %v does not name the killed rank", causes[0])
	}
}

// TestSupervisorDoesNotRetryDeterministicErrors pins the recoverability
// policy: a body error that is not a world failure is final.
func TestSupervisorDoesNotRetryDeterministicErrors(t *testing.T) {
	_, plan := supervisorPlan(t, 2)
	boom := errors.New("deterministic failure")
	retried := false
	s := &core.Supervisor{
		Backoff: time.Millisecond,
		OnRetry: func(int, error, time.Duration) { retried = true },
	}
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the body's error", err)
	}
	if retried {
		t.Fatal("a deterministic error was retried")
	}
}

// TestSupervisorGivesUp pins the restart bound: MaxRestarts exhausted
// surfaces the last cause instead of retrying forever.
func TestSupervisorGivesUp(t *testing.T) {
	_, plan := supervisorPlan(t, 2)
	tr := &faultmpi.Transport{Sched: faultmpi.Schedule{DialFailures: 10}}
	s := &core.Supervisor{
		Transport:   func(epoch int) core.Transport { return tr },
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
	}
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("got %v, want a giving-up error", err)
	}
	if !strings.Contains(err.Error(), "injected dial failure") {
		t.Fatalf("got %v, want the last dial cause preserved", err)
	}
}

// TestSupervisorContextInterruptsEpoch pins the cancellation path: a
// context expiring mid-epoch interrupts the cluster (world closed, the
// blocked job unwedges) and Run returns the context's error — not a
// restart, not a hang.
func TestSupervisorContextInterruptsEpoch(t *testing.T) {
	_, plan := supervisorPlan(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s := &core.Supervisor{Backoff: time.Millisecond}
	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, plan, func(epoch int, cl *core.Cluster) error {
			return cl.Run(func(w *core.Worker) error {
				for { // spin until interrupted
					if err := w.Comm.Barrier(); err != nil {
						return err
					}
				}
			})
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("got %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not interrupt the epoch")
	}
}
