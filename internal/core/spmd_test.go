package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/chanmpi"
)

func TestRunSPMDBasics(t *testing.T) {
	a := randomSquare(21, 200, 60, 5)
	part := PartitionByNnz(a, 4)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	var visited int64
	RunSPMD(plan, 2, func(w *Worker) {
		atomic.AddInt64(&visited, 1)
		if w.Comm.Size() != 4 {
			t.Errorf("world size %d", w.Comm.Size())
		}
		if w.Plan.Rank != w.Comm.Rank() {
			t.Errorf("plan rank %d != comm rank %d", w.Plan.Rank, w.Comm.Rank())
		}
		if len(w.X) != w.Plan.VectorLen() || len(w.Y) != w.Plan.NLocal {
			t.Error("worker buffers missized")
		}
		// Collective round trip inside the SPMD body.
		sum, err := w.Comm.AllreduceScalar(chanmpi.OpSum, 1)
		if err != nil {
			t.Errorf("allreduce: %v", err)
		} else if sum != 4 {
			t.Errorf("allreduce = %g", sum)
		}
	})
	if visited != 4 {
		t.Fatalf("body ran on %d ranks, want 4", visited)
	}
}

func TestRunSPMDMultiplicationSequence(t *testing.T) {
	// Three consecutive multiplications inside one SPMD session must match
	// three serial multiplications (state is carried correctly between
	// Steps, including halo refreshes).
	a := randomSquare(23, 300, 100, 5)
	for i := range a.Val {
		a.Val[i] *= 0.05
	}
	x := randVec(24, 300)
	want := append([]float64(nil), x...)
	tmp := make([]float64, 300)
	for k := 0; k < 3; k++ {
		a.MulVec(tmp, want)
		copy(want, tmp)
	}

	part := PartitionByNnz(a, 5)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 300)
	for _, mode := range Modes {
		RunSPMD(plan, 2, func(w *Worker) {
			lo, hi := w.Plan.Rows.Lo, w.Plan.Rows.Hi
			copy(w.X[:w.Plan.NLocal], x[lo:hi])
			for k := 0; k < 3; k++ {
				w.Step(mode)
				copy(w.X[:w.Plan.NLocal], w.Y)
			}
			copy(got[lo:hi], w.Y)
		})
		if d := maxAbsDiff(want, got); d > 1e-12 {
			t.Errorf("mode %v: A³x differs by %g", mode, d)
		}
	}
}
