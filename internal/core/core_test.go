package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chanmpi"
	"repro/internal/formats"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/spmv"
)

func randomSquare(seed int64, n, band, perRow int) *matrix.CSR {
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: n, Bandwidth: band, PerRow: perRow, Seed: uint64(seed),
	})
	if err != nil {
		panic(err)
	}
	return matrix.Materialize(g)
}

func randVec(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestPartitionByNnzTiles(t *testing.T) {
	a := randomSquare(1, 500, 400, 6)
	p := PartitionByNnz(a, 7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumRanks() != 7 || p.Rows() != 500 {
		t.Fatalf("ranks=%d rows=%d", p.NumRanks(), p.Rows())
	}
	for row := 0; row < 500; row++ {
		r := p.Owner(row)
		if row < p.Ranks[r].Lo || row >= p.Ranks[r].Hi {
			t.Fatalf("Owner(%d) = %d but range is %+v", row, r, p.Ranks[r])
		}
	}
}

func TestPartitionBalanceBeatsRowSplit(t *testing.T) {
	// A matrix whose nnz are concentrated in the first rows: nnz balancing
	// must produce lower imbalance than naive row splitting.
	var entries []matrix.Coord
	n := 400
	for i := 0; i < n; i++ {
		entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i), Val: 1})
		if i < 50 {
			for j := 0; j < 20; j++ {
				entries = append(entries, matrix.Coord{Row: int32(i), Col: int32((i + j + 1) % n), Val: 1})
			}
		}
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	byNnz := PartitionByNnz(a, 4).Imbalance(a)
	byRows := PartitionByRows(n, 4).Imbalance(a)
	if byNnz >= byRows {
		t.Errorf("nnz balancing (%.3f) not better than row splitting (%.3f)", byNnz, byRows)
	}
	if byNnz > 1.6 {
		t.Errorf("nnz imbalance %.3f too high", byNnz)
	}
}

func TestPlanHaloInvariants(t *testing.T) {
	a := randomSquare(3, 300, 120, 5)
	part := PartitionByNnz(a, 5)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	for r, rp := range plan.Ranks {
		// Halo sorted, deduplicated, never owned by self.
		for i, c := range rp.HaloCols {
			if i > 0 && rp.HaloCols[i-1] >= c {
				t.Fatalf("rank %d halo not strictly ascending", r)
			}
			if int(c) >= rp.Rows.Lo && int(c) < rp.Rows.Hi {
				t.Fatalf("rank %d halo contains owned column %d", r, c)
			}
		}
		// Receive segments tile the halo and identify the right owners.
		off := 0
		for _, rx := range rp.RecvFrom {
			if rx.Offset != off {
				t.Fatalf("rank %d receive segments not contiguous", r)
			}
			for i := 0; i < rx.Count; i++ {
				if part.Owner(int(rp.HaloCols[rx.Offset+i])) != rx.Peer {
					t.Fatalf("rank %d halo element owned by wrong peer", r)
				}
			}
			off += rx.Count
		}
		if off != len(rp.HaloCols) {
			t.Fatalf("rank %d receive segments cover %d of %d halo", r, off, len(rp.HaloCols))
		}
		// Split conserves nonzeros and matches the recorded counts.
		if rp.Split.Local.Nnz() != rp.NnzLocal || rp.Split.Remote.Nnz() != rp.NnzRemote {
			t.Fatalf("rank %d nnz split mismatch: %d/%d vs %d/%d",
				r, rp.Split.Local.Nnz(), rp.Split.Remote.Nnz(), rp.NnzLocal, rp.NnzRemote)
		}
	}
	// Send lists mirror receive lists pairwise.
	for q, qp := range plan.Ranks {
		for _, rx := range qp.RecvFrom {
			found := false
			for _, tx := range plan.Ranks[rx.Peer].SendTo {
				if tx.Peer == q {
					found = true
					if tx.Count != rx.Count {
						t.Fatalf("send %d→%d count %d != recv count %d", rx.Peer, q, tx.Count, rx.Count)
					}
					// Gather indices must reference owned rows.
					for _, idx := range tx.Indices {
						if idx < 0 || int(idx) >= plan.Ranks[rx.Peer].NLocal {
							t.Fatalf("send %d→%d gather index %d out of range", rx.Peer, q, idx)
						}
					}
				}
			}
			if !found {
				t.Fatalf("recv %d←%d has no matching send", q, rx.Peer)
			}
		}
	}
	// Total nnz conserved across ranks.
	var total int64
	for _, rp := range plan.Ranks {
		total += rp.NnzLocal + rp.NnzRemote
	}
	if total != a.Nnz() {
		t.Fatalf("plan nnz %d != matrix nnz %d", total, a.Nnz())
	}
}

func TestAllModesMatchSerial(t *testing.T) {
	a := randomSquare(5, 400, 150, 6)
	x := randVec(6, 400)
	want := make([]float64, 400)
	a.MulVec(want, x)
	for _, ranks := range []int{1, 2, 4, 7} {
		part := PartitionByNnz(a, ranks)
		plan, err := BuildPlan(a, part, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range Modes {
			for _, threads := range []int{1, 3} {
				got := MulDistributed(plan, x, mode, threads, 1)
				if d := maxAbsDiff(want, got); d > 1e-12 {
					t.Errorf("ranks=%d mode=%v threads=%d: max diff %g", ranks, mode, threads, d)
				}
			}
		}
	}
}

func TestIteratedMultiplication(t *testing.T) {
	a := randomSquare(8, 200, 60, 4)
	// Scale down to keep powers bounded.
	for i := range a.Val {
		a.Val[i] *= 0.1
	}
	x := randVec(9, 200)
	want := append([]float64(nil), x...)
	tmp := make([]float64, 200)
	for k := 0; k < 4; k++ {
		a.MulVec(tmp, want)
		copy(want, tmp)
	}
	for _, mode := range Modes {
		part := PartitionByNnz(a, 3)
		plan, err := BuildPlan(a, part, true)
		if err != nil {
			t.Fatal(err)
		}
		got := MulDistributed(plan, x, mode, 2, 4)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Errorf("mode=%v: A⁴x max diff %g", mode, d)
		}
	}
}

func TestHolsteinDistributed(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.PhononsContiguous,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	n := a.NumRows
	x := randVec(10, n)
	want := make([]float64, n)
	a.MulVec(want, x)
	part := PartitionByNnz(h, 6)
	plan, err := BuildPlan(h, part, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes {
		got := MulDistributed(plan, x, mode, 2, 1)
		if d := maxAbsDiff(want, got); d > 1e-11 {
			t.Errorf("mode=%v on Holstein: max diff %g", mode, d)
		}
	}
}

func TestPoissonDistributed(t *testing.T) {
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 12, Ny: 10, Nz: 8, GradingZ: 1.05, PermWindow: 8, PermSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	n := a.NumRows
	x := randVec(11, n)
	want := make([]float64, n)
	a.MulVec(want, x)
	part := PartitionByNnz(p, 5)
	plan, err := BuildPlan(p, part, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes {
		got := MulDistributed(plan, x, mode, 3, 1)
		if d := maxAbsDiff(want, got); d > 1e-11 {
			t.Errorf("mode=%v on Poisson: max diff %g", mode, d)
		}
	}
}

func TestPatternOnlyPlan(t *testing.T) {
	a := randomSquare(13, 150, 50, 4)
	part := PartitionByNnz(a, 4)
	plan, err := BuildPlan(a, part, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range plan.Ranks {
		if rp.A != nil || rp.Split != nil {
			t.Error("pattern-only plan materialized matrices")
		}
		if rp.NnzLocal+rp.NnzRemote <= 0 {
			t.Error("pattern-only plan missing nnz counts")
		}
	}
	// Pattern-only and with-values plans agree on structure.
	plan2, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	for r := range plan.Ranks {
		if plan.Ranks[r].HaloSize() != plan2.Ranks[r].HaloSize() {
			t.Errorf("rank %d halo size differs pattern-only vs values", r)
		}
		if plan.Ranks[r].NnzLocal != plan2.Ranks[r].NnzLocal {
			t.Errorf("rank %d NnzLocal differs", r)
		}
	}
}

func TestBuildPlanErrors(t *testing.T) {
	a := randomSquare(17, 60, 20, 3)
	rect := a.ExtractRows(0, 30) // 30x60 rectangular
	if _, err := BuildPlan(rect, PartitionByRows(30, 2), true); err == nil {
		t.Error("rectangular matrix accepted")
	}
	bad := NewPartition([]spmv.Range{{Lo: 0, Hi: 10}}) // covers 10 of 60 rows
	if _, err := BuildPlan(a, bad, true); err == nil {
		t.Error("short partition accepted")
	}
	patternOnly := patternOnlySource{a}
	if _, err := BuildPlan(patternOnly, PartitionByNnz(a, 2), true); err == nil {
		t.Error("withValues accepted for pattern-only source")
	}
}

// patternOnlySource exposes only the PatternSource side of a CSR matrix.
type patternOnlySource struct{ a *matrix.CSR }

func (s patternOnlySource) Dims() (int, int) { return s.a.Dims() }
func (s patternOnlySource) AppendRow(i int, dst []int32) []int32 {
	return s.a.AppendRow(i, dst)
}

func TestDistributedProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		ranks := 1 + rng.Intn(6)
		mode := Modes[rng.Intn(len(Modes))]
		a := randomSquare(seed, n, 1+rng.Intn(n), 1+rng.Intn(6))
		x := randVec(seed+1, n)
		want := make([]float64, n)
		a.MulVec(want, x)
		part := PartitionByNnz(a, ranks)
		plan, err := BuildPlan(a, part, true)
		if err != nil {
			return false
		}
		got := MulDistributed(plan, x, mode, 1+rng.Intn(3), 1)
		return maxAbsDiff(want, got) < 1e-11
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMoreRanksThanRows(t *testing.T) {
	a := randomSquare(19, 3, 2, 2)
	part := PartitionByNnz(a, 5) // two empty ranks
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(20, 3)
	want := make([]float64, 3)
	a.MulVec(want, x)
	for _, mode := range Modes {
		got := MulDistributed(plan, x, mode, 2, 1)
		if d := maxAbsDiff(want, got); d > 1e-13 {
			t.Errorf("mode=%v with empty ranks: diff %g", mode, d)
		}
	}
}

func TestDistributedFormatMatchesCSR(t *testing.T) {
	a := randomSquare(51, 400, 120, 6)
	x := randVec(52, 400)
	part := PartitionByNnz(a, 3)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	want := MulDistributed(plan, x, VectorNoOverlap, 2, 1)
	if err := plan.ConvertFormat(formats.SELLBuilder{C: 16, Sigma: 64}); err != nil {
		t.Fatal(err)
	}
	got := MulDistributed(plan, x, VectorNoOverlap, 2, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SELL-C-σ distributed result differs from CSR at row %d: %v != %v", i, got[i], want[i])
		}
	}
	// Serial reference for good measure.
	serial := make([]float64, 400)
	a.MulVec(serial, x)
	if d := maxAbsDiff(serial, got); d > 1e-12 {
		t.Fatalf("distributed differs from serial by %g", d)
	}
}

func TestOverlapModesFormatBitIdentical(t *testing.T) {
	// The acceptance bar of the format-generic overlap engine: every mode ×
	// format combination reproduces the CSR result bit for bit, because the
	// split-local kernels preserve the CSR per-row accumulation order.
	a := randomSquare(55, 500, 160, 7)
	x := randVec(56, 500)
	part := PartitionByNnz(a, 4)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[Mode][]float64)
	for _, mode := range Modes {
		refs[mode] = MulDistributed(plan, x, mode, 3, 1)
	}
	builders := []matrix.FormatBuilder{
		matrix.CSRBuilder{},
		formats.SELLBuilder{C: 8, Sigma: 32},
		formats.SELLBuilder{C: 32, Sigma: 256},
	}
	for _, b := range builders {
		plan2, err := BuildPlan(a, part, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan2.ConvertFormat(b); err != nil {
			t.Fatal(err)
		}
		for _, mode := range Modes {
			got := MulDistributed(plan2, x, mode, 3, 1)
			for i := range got {
				if got[i] != refs[mode][i] {
					t.Fatalf("%s mode=%v row %d: %v != CSR %v", b.Name(), mode, i, got[i], refs[mode][i])
				}
			}
		}
	}
}

func TestIteratedMultiplicationFormats(t *testing.T) {
	// iters > 1 drives the X ← Y recycling across halo exchanges; every
	// mode × format combination must match the serial power iteration and
	// stay bit-identical to the CSR plan.
	a := randomSquare(57, 240, 80, 5)
	for i := range a.Val {
		a.Val[i] *= 0.1
	}
	x := randVec(58, 240)
	const iters = 3
	want := append([]float64(nil), x...)
	tmp := make([]float64, 240)
	for k := 0; k < iters; k++ {
		a.MulVec(tmp, want)
		copy(want, tmp)
	}
	part := PartitionByNnz(a, 3)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[Mode][]float64)
	for _, mode := range Modes {
		refs[mode] = MulDistributed(plan, x, mode, 2, iters)
		if d := maxAbsDiff(want, refs[mode]); d > 1e-10 {
			t.Errorf("CSR mode=%v: A³x max diff %g", mode, d)
		}
	}
	plan2, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan2.ConvertFormat(formats.SELLBuilder{C: 16, Sigma: 64}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes {
		got := MulDistributed(plan2, x, mode, 2, iters)
		for i := range got {
			if got[i] != refs[mode][i] {
				t.Fatalf("sell mode=%v row %d: %v != CSR %v", mode, i, got[i], refs[mode][i])
			}
		}
	}
}

// chunkImbalance returns max chunk weight over mean chunk weight, with
// chunk boundaries read against the given weight prefix.
func chunkImbalance(chunks []spmv.Range, prefix []int64) float64 {
	var max, total int64
	for _, r := range chunks {
		w := prefix[r.Hi] - prefix[r.Lo]
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(chunks)) / float64(total)
}

func TestSplitChunksBalancedOnSplitNnz(t *testing.T) {
	// Halo-skewed fixture: on rank 0 every row holds one local (diagonal)
	// entry, and the first 16 rows additionally couple to 40 halo columns
	// each. Balancing the split passes on the full-matrix RowPtr (the
	// pre-fix behavior) starves the early chunks of local work.
	const n, half, threads = 256, 128, 4
	var entries []matrix.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i), Val: 1})
		if i < 16 {
			for j := 0; j < 40; j++ {
				entries = append(entries, matrix.Coord{
					Row: int32(i), Col: int32(half + (i*7+j)%half), Val: 1,
				})
			}
		}
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(a, PartitionByRows(n, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	rp := plan.Ranks[0]
	world, err := chanmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	comm0, err := world.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(rp, comm0, threads)
	defer w.Close()

	// Sanity: the fixture is skewed enough that the old chunking is badly
	// imbalanced when measured in local-pass work.
	old := spmv.BalanceNnz(rp.A.RowPtr, threads)
	if got := chunkImbalance(old, rp.Split.Local.RowPtr); got < 2 {
		t.Fatalf("fixture not skewed enough: full-RowPtr chunking imbalance only %.2f", got)
	}
	if got := chunkImbalance(w.localChunks, rp.Split.Local.RowPtr); got > 1.1 {
		t.Errorf("local pass imbalance %.2f, want ~1 (balanced on Split.Local nnz)", got)
	}
	if got := chunkImbalance(w.remoteChunks, rp.Split.Remote.RowPtr); got > 1.35 {
		t.Errorf("remote pass imbalance %.2f, want ~1 (balanced on compacted remote nnz)", got)
	}
	// The skewed fixture still multiplies correctly in every mode.
	x := randVec(60, n)
	want := make([]float64, n)
	a.MulVec(want, x)
	for _, mode := range Modes {
		got := MulDistributed(plan, x, mode, threads, 1)
		if d := maxAbsDiff(want, got); d > 1e-12 {
			t.Errorf("mode=%v on skewed fixture: max diff %g", mode, d)
		}
	}
}

func TestWorkerRejectsHalfConvertedPlan(t *testing.T) {
	// A plan with only one of Format/SplitFormat set would run some modes
	// on the converted format and others on CSR — numerically equal but
	// silently different in speed. NewWorker must refuse it.
	newPlan := func() *Plan {
		a := randomSquare(59, 80, 30, 3)
		plan, err := BuildPlan(a, PartitionByNnz(a, 2), true)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	world, err := chanmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	comm0, err := world.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("full-only", func(t *testing.T) {
		rp := newPlan().Ranks[0]
		rp.Format = rp.A
		defer func() {
			if recover() == nil {
				t.Error("NewWorker accepted Format without SplitFormat")
			}
		}()
		NewWorker(rp, comm0, 2)
	})
	t.Run("split-only", func(t *testing.T) {
		rp := newPlan().Ranks[0]
		rp.SplitFormat = &spmv.FormatSplit{Local: rp.Split.Local, Remote: rp.Split.Remote, LocalCols: rp.NLocal}
		defer func() {
			if recover() == nil {
				t.Error("NewWorker accepted SplitFormat without Format")
			}
		}()
		NewWorker(rp, comm0, 2)
	})
}

func TestTaskModeStress(t *testing.T) {
	// Exercised with -race in CI: task mode's communication goroutine
	// (Waitall inside Step) runs concurrently with the compute team, and
	// iterated multiplication repeats the handoff every iteration.
	a := randomSquare(61, 300, 120, 5)
	for i := range a.Val {
		a.Val[i] *= 0.1
	}
	x := randVec(62, 300)
	const iters = 6
	want := append([]float64(nil), x...)
	tmp := make([]float64, 300)
	for k := 0; k < iters; k++ {
		a.MulVec(tmp, want)
		copy(want, tmp)
	}
	part := PartitionByNnz(a, 4)
	plan, err := BuildPlan(a, part, true)
	if err != nil {
		t.Fatal(err)
	}
	got := MulDistributed(plan, x, TaskMode, 3, iters)
	if d := maxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("task mode A⁶x max diff %g", d)
	}
	if err := plan.ConvertFormat(formats.SELLBuilder{C: 16, Sigma: 64}); err != nil {
		t.Fatal(err)
	}
	got2 := MulDistributed(plan, x, TaskMode, 3, iters)
	for i := range got2 {
		if got2[i] != got[i] {
			t.Fatalf("sell task mode differs from CSR at row %d: %v != %v", i, got2[i], got[i])
		}
	}
}

func TestConvertFormatRequiresValues(t *testing.T) {
	a := randomSquare(53, 100, 30, 4)
	plan, err := BuildPlan(a, PartitionByNnz(a, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	err = plan.ConvertFormat(matrix.CSRBuilder{})
	if err == nil {
		t.Fatal("ConvertFormat accepted a pattern-only plan")
	}
}
