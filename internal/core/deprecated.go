package core

import "fmt"

// Deprecated entry points from the tear-down-per-call era. Each is a thin
// shim over a throwaway Cluster, so results are bit-identical to the session
// API; unlike the Cluster methods they keep the historical panic-on-misuse
// behavior. New code should hold a Cluster for the lifetime of its workload.

// NewWorker prepares the execution state of one rank.
//
// Deprecated: workers are owned by a Cluster; use NewCluster, whose
// validation surfaces these panics as errors.
func NewWorker(rp *RankPlan, comm Comm, threads int) *Worker {
	w, err := newWorker(rp, comm, threads)
	if err != nil {
		panic(err.Error())
	}
	return w
}

// RunSPMD executes body once per rank with a fully initialized Worker.
//
// Deprecated: use NewCluster + Cluster.Run, which keeps the ranks resident
// across submissions instead of re-spawning the world per call, and whose
// error-first bodies surface communication failures instead of panicking.
func RunSPMD(plan *Plan, threads int, body func(w *Worker)) {
	c, err := NewCluster(plan, WithThreads(threads))
	if err != nil {
		panic(err.Error())
	}
	defer c.Close()
	if err := c.Run(func(w *Worker) error { body(w); return nil }); err != nil {
		panic(err.Error())
	}
}

// MulDistributed runs iters distributed multiplications y = A^iters·x
// spread over the plan's ranks and returns the gathered global result.
//
// Deprecated: use NewCluster + Cluster.Mul, which reuses one resident
// runtime across multiplications instead of paying world + team spawn per
// call.
func MulDistributed(plan *Plan, x []float64, mode Mode, threads, iters int) []float64 {
	c, err := NewCluster(plan, WithMode(mode), WithThreads(threads))
	if err != nil {
		panic(err.Error())
	}
	defer c.Close()
	rows := plan.Part.Rows()
	if len(x) != rows {
		panic(fmt.Sprintf("core: len(x)=%d, matrix has %d rows", len(x), rows))
	}
	y := make([]float64, rows)
	if iters < 1 {
		// Historical behavior: zero multiplications yield the zero vector
		// (Cluster.Mul instead rejects iters < 1 as an error).
		return y
	}
	if err := c.Mul(y, x, iters); err != nil {
		panic(err.Error())
	}
	return y
}
