package core_test

// Deadline-contract tests: MulContext/RunContext arm an end-to-end
// deadline over a resident job, cut it loose through the Interrupt path,
// and surface a typed *core.DeadlineError that is final for the request —
// non-poisoning when it fired before dispatch, world-poisoning (but
// supervisor-rebuildable) when it fired mid-job.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMulContextPreDispatchExpiry pins the non-poisoning reject: a
// request whose deadline passed before dispatch never touches the world,
// the cluster stays healthy, and the next multiplication is bit-identical
// to one on an untouched cluster.
func TestMulContextPreDispatchExpiry(t *testing.T) {
	a, plan := supervisorPlan(t, 3)
	cl, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	n := a.NumRows
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead at admission
	err = cl.MulContext(ctx, y, x, 1)
	var de *core.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("expired context returned %v, want a *core.DeadlineError", err)
	}
	if de.Op != "Mul" || !errors.Is(err, context.Canceled) {
		t.Fatalf("DeadlineError = {Op:%q, Err:%v}, want Op Mul wrapping context.Canceled", de.Op, de.Err)
	}
	if failed := cl.Failed(); failed != nil {
		t.Fatalf("pre-dispatch expiry poisoned the cluster: %v", failed)
	}

	// The cluster is still usable and the traffic after the reject is
	// bit-identical to a reference multiplication.
	if err := cl.Mul(y, x, 1); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	a.MulVec(want, x)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("post-reject y[%d] = %g, want %g (traffic after a deadline reject must be untouched)", i, y[i], want[i])
		}
	}
}

// TestRunContextMidJobDeadline pins the mid-flight cut: a deadline firing
// while ranks are inside the job closes the world through Interrupt, the
// blocked ranks unwedge, RunContext returns a *DeadlineError wrapping
// context.DeadlineExceeded, and the world is poisoned as by any
// interrupt — visible via Cluster.Failed.
func TestRunContextMidJobDeadline(t *testing.T) {
	_, plan := supervisorPlan(t, 3)
	cl, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = cl.RunContext(ctx, func(w *core.Worker) error {
		for { // spin in collectives until the deadline cuts the world
			if err := w.Comm.Barrier(); err != nil {
				return err
			}
		}
	})
	elapsed := time.Since(start)
	var de *core.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("mid-job deadline returned %v, want a *core.DeadlineError", err)
	}
	if de.Op != "Run" || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError = {Op:%q, Err:%v}, want Op Run wrapping context.DeadlineExceeded", de.Op, de.Err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to cut the job loose", elapsed)
	}
	if cl.Failed() == nil {
		t.Fatal("mid-job interrupt should poison the world (Failed() == nil)")
	}
	// Final for the request: the supervisor would not re-run it.
	if core.Recoverable(err) {
		t.Fatal("a DeadlineError must not be Recoverable")
	}
}

// TestRecoverableDeadlineOverride pins the policy ordering: a chain that
// contains BOTH a world failure and a DeadlineError (the mid-job cut
// manufactures exactly that) is non-recoverable — the deadline verdict
// wins over the world failure it caused.
func TestRecoverableDeadlineOverride(t *testing.T) {
	we := &core.WorldError{Cause: errors.New("world closed")}
	if !core.Recoverable(we) {
		t.Fatal("a bare WorldError must stay recoverable")
	}
	de := &core.DeadlineError{Op: "Mul", Err: context.DeadlineExceeded}
	if core.Recoverable(de) {
		t.Fatal("a bare DeadlineError must not be recoverable")
	}
	both := &core.DeadlineError{Op: "Mul", Err: we}
	if core.Recoverable(both) {
		t.Fatal("a DeadlineError wrapping a WorldError must not be recoverable")
	}
}

// TestSupervisorBackoffJitterDeterministic pins the seeded ±25% jitter:
// the delay sequence is a pure function of (Seed, restart count), so two
// runs with the same seed observe identical delays, each within ±25% of
// its nominal doubled backoff, and a different seed observes a different
// sequence.
func TestSupervisorBackoffJitterDeterministic(t *testing.T) {
	_, plan := supervisorPlan(t, 2)
	delaySeq := func(seed int64) []time.Duration {
		tr := &faultmpiDialFailer{failures: 5} // one more than MaxRestarts: exhausts the budget
		var delays []time.Duration
		s := &core.Supervisor{
			Transport:   func(int) core.Transport { return tr },
			MaxRestarts: 4,
			Backoff:     100 * time.Millisecond,
			BackoffMax:  400 * time.Millisecond,
			Seed:        seed,
			OnRetry:     func(_ int, _ error, d time.Duration) { delays = append(delays, d) },
		}
		err := s.Run(context.Background(), plan, func(int, *core.Cluster) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "giving up") {
			t.Fatalf("got %v, want a giving-up error", err)
		}
		return delays
	}
	first := delaySeq(42)
	second := delaySeq(42)
	other := delaySeq(43)
	if len(first) != 4 {
		t.Fatalf("observed %d delays, want 4", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delay[%d] differs across runs with the same seed: %v vs %v", i, first[i], second[i])
		}
	}
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical jitter sequences")
	}
	// Each delay within ±25% of its nominal exponential value.
	nominal := []time.Duration{100, 200, 400, 400} // ms, doubling capped at BackoffMax
	for i, d := range first {
		lo := nominal[i] * time.Millisecond * 3 / 4
		hi := nominal[i] * time.Millisecond * 5 / 4
		if d < lo || d > hi {
			t.Fatalf("delay[%d] = %v outside ±25%% of %v ms", i, d, nominal[i])
		}
	}
}

// faultmpiDialFailer is a minimal transport whose first N dials fail —
// enough to drive the backoff loop without a world ever coming up.
type faultmpiDialFailer struct{ failures int }

func (f *faultmpiDialFailer) Dial(ctx context.Context, ranks int) (core.World, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("injected dial failure")
	}
	return core.ChanTransport{}.Dial(ctx, ranks)
}

// TestSupervisorGiveUpSurfacesFirstCause pins the exhaustion diagnosis:
// when MaxRestarts is burnt, the returned error wraps the FIRST epoch's
// cause — the failure that started the chain — not whatever the final
// backoff attempt happened to die of.
func TestSupervisorGiveUpSurfacesFirstCause(t *testing.T) {
	_, plan := supervisorPlan(t, 2)
	firstWound := errors.New("rank 1 went dark")
	laterWound := errors.New("rendezvous timed out")
	s := &core.Supervisor{
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
	}
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		wound := firstWound
		if epoch > 0 {
			wound = laterWound
		}
		// Recoverable (a PeerError) so every epoch is retried until the
		// restart budget runs out.
		return &core.PeerError{RankLo: 1, RankHi: 2, Phase: core.PhaseSend, Err: wound}
	})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("got %v, want a giving-up error", err)
	}
	if !errors.Is(err, firstWound) {
		t.Fatalf("give-up error %v does not wrap the first epoch's cause", err)
	}
	if errors.Is(err, laterWound) {
		t.Fatalf("give-up error %v wraps the last attempt's error instead of reporting it as context", err)
	}
	if !strings.Contains(err.Error(), "rendezvous timed out") {
		t.Fatalf("give-up error %v should still mention the last attempt for context", err)
	}
}
