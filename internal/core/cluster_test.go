package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chanmpi"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// newTestCluster builds a plan over a random square matrix and brings up a
// session, registering teardown with the test.
func newTestCluster(t *testing.T, seed int64, n, band, perRow, ranks int, opts ...Option) (*matrix.CSR, *Cluster) {
	t.Helper()
	a := randomSquare(seed, n, band, perRow)
	plan, err := BuildPlan(a, PartitionByNnz(a, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(plan, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return a, c
}

func TestClusterMulBitIdenticalToShims(t *testing.T) {
	// The resident session and the deprecated per-call shims must agree bit
	// for bit across every mode × format combination — the shims are proven
	// equivalent, and a migration cannot change numerics.
	a := randomSquare(71, 400, 140, 6)
	x := randVec(72, 400)
	builders := []matrix.FormatBuilder{
		matrix.CSRBuilder{},
		formats.SELLBuilder{C: 16, Sigma: 64},
	}
	for _, b := range builders {
		planShim, err := BuildPlan(a, PartitionByNnz(a, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := planShim.ConvertFormat(b); err != nil {
			t.Fatal(err)
		}
		planSess, err := BuildPlan(a, PartitionByNnz(a, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewCluster(planSess, WithThreads(3), WithFormat(b))
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, 400)
		for _, mode := range Modes {
			want := MulDistributed(planShim, x, mode, 3, 1)
			if err := cl.SetMode(mode); err != nil {
				t.Fatal(err)
			}
			if err := cl.Mul(y, x, 1); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("%s mode=%v row %d: cluster %v != shim %v", b.Name(), mode, i, y[i], want[i])
				}
			}
		}
		cl.Close()
	}
}

func TestClusterIteratedMulMatchesShim(t *testing.T) {
	a := randomSquare(73, 240, 80, 5)
	for i := range a.Val {
		a.Val[i] *= 0.1
	}
	x := randVec(74, 240)
	const iters = 4
	plan, err := BuildPlan(a, PartitionByNnz(a, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	sessPlan, err := BuildPlan(a, PartitionByNnz(a, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(sessPlan, WithThreads(2), WithMode(TaskMode))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want := MulDistributed(plan, x, TaskMode, 2, iters)
	y := make([]float64, 240)
	if err := cl.Mul(y, x, iters); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("iterated cluster Mul differs from shim at row %d: %v != %v", i, y[i], want[i])
		}
	}
}

func TestClusterLiveSetModeAndConvert(t *testing.T) {
	// One resident session, reconfigured live between jobs: every mode in
	// CSR, then Convert to SELL-C-σ on the same runtime, then every mode
	// again — each result bit-identical to a fresh per-call reference.
	x := randVec(76, 300)
	a, cl := newTestCluster(t, 75, 300, 100, 5, 4, WithThreads(2))

	refPlan := func(b matrix.FormatBuilder) *Plan {
		p, err := BuildPlan(a, PartitionByNnz(a, 4), true)
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			if err := p.ConvertFormat(b); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	check := func(stage string, ref *Plan) {
		y := make([]float64, 300)
		for _, mode := range Modes {
			if err := cl.SetMode(mode); err != nil {
				t.Fatal(err)
			}
			if got := cl.Mode(); got != mode {
				t.Fatalf("%s: Mode() = %v after SetMode(%v)", stage, got, mode)
			}
			if err := cl.Mul(y, x, 1); err != nil {
				t.Fatal(err)
			}
			want := MulDistributed(ref, x, mode, 2, 1)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("%s mode=%v row %d: %v != %v", stage, mode, i, y[i], want[i])
				}
			}
		}
	}
	check("csr", refPlan(nil))
	if err := cl.Convert(formats.SELLBuilder{C: 8, Sigma: 32}); err != nil {
		t.Fatal(err)
	}
	check("sell-8-32", refPlan(formats.SELLBuilder{C: 8, Sigma: 32}))
	// A second conversion on the same session (SELL → SELL with different
	// geometry) must also take effect cleanly.
	if err := cl.Convert(formats.SELLBuilder{C: 32, Sigma: 128}); err != nil {
		t.Fatal(err)
	}
	check("sell-32-128", refPlan(formats.SELLBuilder{C: 32, Sigma: 128}))
}

func TestClusterRunSPMDCollectives(t *testing.T) {
	_, cl := newTestCluster(t, 77, 200, 60, 5, 4, WithThreads(2))
	var visited int64
	err := cl.Run(func(w *Worker) error {
		atomic.AddInt64(&visited, 1)
		// Mode is lock-free and therefore the one Cluster method a job
		// body may call back into (the others self-deadlock).
		if m := cl.Mode(); m != VectorNoOverlap {
			t.Errorf("Mode() inside body = %v", m)
		}
		if w.Comm.Size() != 4 {
			t.Errorf("world size %d", w.Comm.Size())
		}
		if w.Plan.Rank != w.Comm.Rank() {
			t.Errorf("plan rank %d != comm rank %d", w.Plan.Rank, w.Comm.Rank())
		}
		sum, err := w.Comm.AllreduceScalar(OpSum, 1)
		if err != nil {
			return err
		}
		if sum != 4 {
			t.Errorf("allreduce = %g", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 4 {
		t.Fatalf("body ran on %d ranks, want 4", visited)
	}
	// The same resident ranks serve the next submission.
	visited = 0
	if err := cl.Run(func(w *Worker) error { atomic.AddInt64(&visited, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 4 {
		t.Fatalf("second job ran on %d ranks, want 4", visited)
	}
}

func TestClusterDoubleCloseAndUseAfterClose(t *testing.T) {
	_, cl := newTestCluster(t, 79, 100, 30, 4, 3)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	y := make([]float64, 100)
	x := make([]float64, 100)
	if err := cl.Mul(y, x, 1); err == nil {
		t.Error("Mul on closed cluster succeeded")
	}
	if err := cl.Run(func(*Worker) error { return nil }); err == nil {
		t.Error("Run on closed cluster succeeded")
	}
	if err := cl.SetMode(TaskMode); err == nil {
		t.Error("SetMode on closed cluster succeeded")
	}
	if err := cl.Convert(formats.SELLBuilder{C: 8, Sigma: 8}); err == nil {
		t.Error("Convert on closed cluster succeeded")
	}
}

func TestClusterSequentialJobStress(t *testing.T) {
	// Exercised with -race in CI: many back-to-back submissions on the same
	// resident runtime — multiplications in rotating modes interleaved with
	// SPMD bodies doing collectives — reusing rank goroutines, teams and
	// halo buffers every time.
	a, cl := newTestCluster(t, 81, 250, 90, 5, 4, WithThreads(3))
	x := randVec(82, 250)
	want := make([]float64, 250)
	a.MulVec(want, x)
	y := make([]float64, 250)
	for it := 0; it < 30; it++ {
		mode := Modes[it%len(Modes)]
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		if err := cl.Mul(y, x, 1); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(want, y); d > 1e-12 {
			t.Fatalf("iteration %d mode %v: max diff %g", it, mode, d)
		}
		if it%5 == 4 {
			if err := cl.Run(func(w *Worker) error {
				got, err := w.Comm.AllreduceScalar(OpSum, float64(w.Comm.Rank()))
				if err != nil {
					return err
				}
				if got != 6 {
					t.Errorf("allreduce of ranks = %g, want 6", got)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClusterRunPanicBecomesError(t *testing.T) {
	_, cl := newTestCluster(t, 83, 60, 20, 3, 3)
	err := cl.Run(func(w *Worker) error {
		panic(fmt.Sprintf("boom on rank %d", w.Comm.Rank()))
	})
	if err == nil {
		t.Fatal("panicking job reported no error")
	}
	if !strings.Contains(err.Error(), "boom on rank") {
		t.Fatalf("error %q does not carry the panic", err)
	}
	// A failed job is fatal to the world (fail-stop): further submissions
	// refuse with the original cause, and Close still works.
	y := make([]float64, 60)
	x := make([]float64, 60)
	if err := cl.Mul(y, x, 1); err == nil || !strings.Contains(err.Error(), "boom on rank") {
		t.Fatalf("Mul after failed job: %v, want refusal carrying the cause", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close after failed job: %v", err)
	}
}

func TestNewClusterErrors(t *testing.T) {
	a := randomSquare(85, 80, 30, 3)
	plan, err := BuildPlan(a, PartitionByNnz(a, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(nil); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewCluster(plan, WithThreads(0)); err == nil {
		t.Error("threads = 0 accepted")
	}
	if _, err := NewCluster(plan, WithMode(Mode(42))); err == nil {
		t.Error("unknown mode accepted")
	}
	patternOnly, err := BuildPlan(a, PartitionByNnz(a, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(patternOnly); err == nil {
		t.Error("pattern-only plan accepted")
	}
	if _, err := NewCluster(patternOnly, WithFormat(matrix.CSRBuilder{})); err == nil {
		t.Error("WithFormat on pattern-only plan accepted")
	}
	// Half-converted plan: Format set without SplitFormat.
	half, err := BuildPlan(a, PartitionByNnz(a, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	half.Ranks[0].Format = half.Ranks[0].A
	if _, err := NewCluster(half); err == nil {
		t.Error("half-converted plan accepted")
	}
	// Bad format geometry surfaces through NewCluster, not a panic.
	if _, err := NewCluster(plan, WithFormat(formats.SELLBuilder{C: 0, Sigma: 8})); err == nil {
		t.Error("invalid SELL geometry accepted")
	}
}

func TestClusterSetModeValidation(t *testing.T) {
	_, cl := newTestCluster(t, 87, 50, 20, 3, 2)
	if err := cl.SetMode(Mode(9)); err == nil {
		t.Error("SetMode accepted an unknown mode")
	}
	if got := cl.Mode(); got != VectorNoOverlap {
		t.Errorf("failed SetMode changed the mode to %v", got)
	}
}

func TestClusterMulValidation(t *testing.T) {
	_, cl := newTestCluster(t, 89, 50, 20, 3, 2)
	y := make([]float64, 50)
	x := make([]float64, 50)
	if err := cl.Mul(y, x[:49], 1); err == nil {
		t.Error("short x accepted")
	}
	if err := cl.Mul(y[:49], x, 1); err == nil {
		t.Error("short y accepted")
	}
	if err := cl.Mul(y, x, 0); err == nil {
		t.Error("iters = 0 accepted")
	}
}

func TestClusterAccessors(t *testing.T) {
	_, cl := newTestCluster(t, 91, 90, 30, 4, 3, WithThreads(2), WithMode(TaskMode))
	if cl.Ranks() != 3 {
		t.Errorf("Ranks() = %d, want 3", cl.Ranks())
	}
	if cl.Threads() != 2 {
		t.Errorf("Threads() = %d, want 2", cl.Threads())
	}
	if cl.Rows() != 90 {
		t.Errorf("Rows() = %d, want 90", cl.Rows())
	}
	if cl.Mode() != TaskMode {
		t.Errorf("Mode() = %v, want task mode", cl.Mode())
	}
	if cl.Plan() == nil || cl.Plan().Part.NumRanks() != 3 {
		t.Error("Plan() accessor broken")
	}
}

func TestClusterCustomTransport(t *testing.T) {
	// WithTransport swaps the backend; a counting wrapper around the default
	// proves the modes run through the injected Comms, not a hidden world.
	ct := &countingTransport{}
	a, cl := newTestCluster(t, 93, 120, 40, 4, 3, WithTransport(ct), WithMode(VectorNaiveOverlap))
	if ct.dials != 1 {
		t.Fatalf("transport dialed %d times, want 1", ct.dials)
	}
	x := randVec(94, 120)
	want := make([]float64, 120)
	a.MulVec(want, x)
	y := make([]float64, 120)
	if err := cl.Mul(y, x, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(want, y); d > 1e-12 {
		t.Fatalf("max diff %g over custom transport", d)
	}
	if ct.sends.Load() == 0 {
		t.Error("no halo traffic went through the injected transport")
	}
}

func TestClusterClosesWorld(t *testing.T) {
	ct := &closableTransport{}
	_, cl := newTestCluster(t, 97, 60, 20, 3, 2, WithTransport(ct))
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ct.closes.Load(); got != 1 {
		t.Fatalf("world closed %d times, want 1", got)
	}
	// Idempotent Close must not re-close the world.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ct.closes.Load(); got != 1 {
		t.Fatalf("double Close reached the world (%d closes)", got)
	}
}

// closableTransport hands out worlds that record Close calls from
// Cluster.Close.
type closableTransport struct {
	closes atomic.Int64
}

func (ct *closableTransport) Dial(ctx context.Context, size int) (World, error) {
	w, err := ChanTransport{}.Dial(ctx, size)
	if err != nil {
		return nil, err
	}
	return &closableWorld{World: w, closes: &ct.closes}, nil
}

type closableWorld struct {
	World
	closes *atomic.Int64
}

func (cw *closableWorld) Close() error {
	cw.closes.Add(1)
	return cw.World.Close()
}

func TestNewClusterFailureLeavesPlanUnconverted(t *testing.T) {
	// Construction failure must not have the durable side effect of
	// converting the caller's plan: the cheap option checks run before
	// WithFormat does.
	a := randomSquare(99, 60, 20, 3)
	plan, err := BuildPlan(a, PartitionByNnz(a, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(plan, WithFormat(formats.SELLBuilder{C: 8, Sigma: 16}), WithThreads(0)); err == nil {
		t.Fatal("threads = 0 accepted")
	}
	for r, rp := range plan.Ranks {
		if rp.Format != nil || rp.SplitFormat != nil {
			t.Fatalf("failed NewCluster converted rank %d of the caller's plan", r)
		}
	}
}

// countingTransport wraps ChanTransport, counting Dials and Isends.
type countingTransport struct {
	dials int
	sends atomic.Int64
}

func (ct *countingTransport) Dial(ctx context.Context, size int) (World, error) {
	ct.dials++
	w, err := ChanTransport{}.Dial(ctx, size)
	if err != nil {
		return nil, err
	}
	return &countingWorld{World: w, sends: &ct.sends}, nil
}

type countingWorld struct {
	World
	sends *atomic.Int64
}

func (cw *countingWorld) Comm(rank int) (Comm, error) {
	c, err := cw.World.Comm(rank)
	if err != nil {
		return nil, err
	}
	return &countingComm{Comm: c, sends: cw.sends}, nil
}

type countingComm struct {
	Comm
	sends *atomic.Int64
}

func (cc *countingComm) Isend(dst, tag int, data []float64) (Request, error) {
	cc.sends.Add(1)
	return cc.Comm.Isend(dst, tag, data)
}

// SendInit wraps the persistent send channel so every restarted halo send
// is counted too — the workers compile their schedule into persistent
// channels, so steady-state traffic flows through Start, not Isend.
func (cc *countingComm) SendInit(dst, tag int, buf []float64) (PersistentRequest, error) {
	pr, err := cc.Comm.SendInit(dst, tag, buf)
	if err != nil {
		return nil, err
	}
	return &countingPersistent{PersistentRequest: pr, sends: cc.sends}, nil
}

type countingPersistent struct {
	PersistentRequest
	sends *atomic.Int64
}

func (cp *countingPersistent) Start() error {
	cp.sends.Add(1)
	return cp.PersistentRequest.Start()
}

func TestClusterRunBodyErrorSurfaces(t *testing.T) {
	// Comm v2's error-first contract end to end: a body error (not a panic)
	// comes back from Run tagged with its rank.
	_, cl := newTestCluster(t, 101, 80, 30, 3, 3)
	bodyErr := fmt.Errorf("rank refused")
	err := cl.Run(func(w *Worker) error {
		if w.Comm.Rank() == 1 {
			return bodyErr
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "rank refused") {
		t.Fatalf("Run returned %v, want rank-tagged body error", err)
	}
}

func TestClusterFailedRankUnwedgesBlockedPeers(t *testing.T) {
	// The fail-stop regression: one rank's body errors out while its peers
	// sit in a collective waiting for it. The failure must fail the world —
	// peers wake with a WorldError instead of wedging the job (and Close)
	// forever — and Run must report the PRIMARY cause with the right rank,
	// not a bystander's secondary world-failure error.
	_, cl := newTestCluster(t, 107, 80, 30, 3, 4)
	done := make(chan error, 1)
	go func() {
		done <- cl.Run(func(w *Worker) error {
			if w.Comm.Rank() == 2 {
				return fmt.Errorf("rank 2 bailed")
			}
			return w.Comm.Barrier() // abandoned by rank 2
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "bailed") {
			t.Fatalf("Run returned %v, want the primary rank 2 failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peers stayed wedged in the abandoned collective")
	}
	if err := cl.Run(func(*Worker) error { return nil }); err == nil {
		t.Fatal("failed cluster accepted another job")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close after failed job: %v", err)
	}
}

func TestClusterLocalRanks(t *testing.T) {
	_, cl := newTestCluster(t, 103, 90, 30, 4, 3)
	got := cl.LocalRanks()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("LocalRanks() = %v, want [0 1 2] on the all-local chan world", got)
	}
	// The accessor hands out a copy, not the cluster's own slice.
	got[0] = 99
	if again := cl.LocalRanks(); again[0] != 0 {
		t.Error("LocalRanks() exposes internal state")
	}
}

func TestParseFormat(t *testing.T) {
	if b, err := ParseFormat("crs"); err != nil || b.Name() != "crs" {
		t.Errorf("ParseFormat(crs) = %v, %v", b, err)
	}
	if b, err := ParseFormat(" CSR "); err != nil || b.Name() != "crs" {
		t.Errorf("ParseFormat(CSR) = %v, %v", b, err)
	}
	b, err := ParseFormat("sell-32-256")
	if err != nil {
		t.Fatalf("ParseFormat(sell-32-256): %v", err)
	}
	sb, ok := b.(formats.SELLBuilder)
	if !ok || sb.C != 32 || sb.Sigma != 256 {
		t.Errorf("ParseFormat(sell-32-256) = %#v", b)
	}
	// Round trip: the builder's canonical name parses back to itself.
	if rb, err := ParseFormat(sb.Name()); err != nil || rb != b {
		t.Errorf("ParseFormat(%q) = %v, %v", sb.Name(), rb, err)
	}
	for _, bad := range []string{"", "ellpack", "sell", "sell-32", "sell-0-8", "sell-x-y", "sell-8-"} {
		if _, err := ParseFormat(bad); err == nil {
			t.Errorf("ParseFormat(%q) accepted", bad)
		}
	}
	// A parsed format drives a real conversion: cluster results stay
	// bit-identical to the explicitly constructed builder.
	parsed, err := ParseFormat("sell-8-32")
	if err != nil {
		t.Fatal(err)
	}
	a, cl := newTestCluster(t, 105, 150, 50, 5, 3, WithFormat(parsed))
	x := randVec(106, 150)
	y := make([]float64, 150)
	if err := cl.Mul(y, x, 1); err != nil {
		t.Fatal(err)
	}
	refPlan, err := BuildPlan(a, PartitionByNnz(a, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := refPlan.ConvertFormat(formats.SELLBuilder{C: 8, Sigma: 32}); err != nil {
		t.Fatal(err)
	}
	want := MulDistributed(refPlan, x, VectorNoOverlap, 1, 1)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("parsed-format cluster differs at row %d: %v != %v", i, y[i], want[i])
		}
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{
		"vector-no-overlap":    VectorNoOverlap,
		"vector":               VectorNoOverlap,
		"no-overlap":           VectorNoOverlap,
		"vector-naive-overlap": VectorNaiveOverlap,
		"naive":                VectorNaiveOverlap,
		"Task-Mode":            TaskMode,
		" task ":               TaskMode,
	}
	for s, want := range cases {
		got, err := ParseMode(s)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		} else if got != want {
			t.Errorf("ParseMode(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMode("openmp"); err == nil {
		t.Error("ParseMode accepted an unknown name")
	}
	// Round trip: every defined mode parses from its own String().
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
}

func TestDeprecatedShimsStillPanicOnMisuse(t *testing.T) {
	a := randomSquare(95, 60, 20, 3)
	plan, err := BuildPlan(a, PartitionByNnz(a, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MulDistributed short x", func() { MulDistributed(plan, make([]float64, 10), TaskMode, 2, 1) })
	// Historical iters < 1 behavior: zero multiplications, zero vector —
	// not the Cluster.Mul error.
	for _, v := range MulDistributed(plan, make([]float64, 60), TaskMode, 2, 0) {
		if v != 0 {
			t.Error("MulDistributed with iters=0 must return the zero vector")
			break
		}
	}
	mustPanic("MulDistributed bad threads", func() { MulDistributed(plan, make([]float64, 60), TaskMode, 0, 1) })
	mustPanic("RunSPMD bad threads", func() { RunSPMD(plan, 0, func(*Worker) {}) })
	world, err := chanmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	comm0, err := world.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("NewWorker bad threads", func() { NewWorker(plan.Ranks[0], comm0, 0) })
	patternOnly, err := BuildPlan(a, PartitionByNnz(a, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("NewWorker pattern-only", func() { NewWorker(patternOnly.Ranks[0], comm0, 1) })
}
