package core

import (
	"fmt"

	"repro/internal/chanmpi"
)

// Request and ReduceOp are the transport-neutral contract types of the
// distributed runtime. They alias the chanmpi definitions — pure interface
// and enum, with none of the in-process runtime attached — so that
// *chanmpi.Comm satisfies Comm directly while alternative backends only
// have to implement two tiny methods per request handle.
type Request = chanmpi.Request

// ReduceOp selects the combining operation of Allreduce.
type ReduceOp = chanmpi.ReduceOp

// Reduction operations understood by every transport.
const (
	OpSum = chanmpi.OpSum
	OpMax = chanmpi.OpMax
	OpMin = chanmpi.OpMin
)

// Comm is one rank's communicator: the complete message-passing surface the
// kernel modes and the SPMD solvers consume. It decouples internal/core from
// the concrete runtime — *chanmpi.Comm satisfies it as-is, and a future
// backend (a simmpi re-enactment, a TCP multi-process transport) plugs in
// behind a Transport without touching the modes.
type Comm interface {
	// Rank returns this rank's id in [0, Size).
	Rank() int
	// Size returns the world size.
	Size() int
	// Isend starts a nonblocking send of data to rank dst with the given
	// tag. Buffered semantics: the caller may reuse data on return.
	Isend(dst, tag int, data []float64) Request
	// Irecv posts a nonblocking receive into buf for a message from rank
	// src with the given tag.
	Irecv(src, tag int, buf []float64) Request
	// Waitall blocks until every request has completed (MPI_Waitall).
	Waitall(reqs ...Request)
	// Barrier blocks until all ranks have entered it.
	Barrier()
	// Allreduce combines in-vectors elementwise across all ranks; the
	// returned slice is shared across ranks and must be treated read-only.
	Allreduce(op ReduceOp, in []float64) []float64
	// AllreduceScalar combines a single value across all ranks.
	AllreduceScalar(op ReduceOp, v float64) float64
	// AllgatherInt64 gathers one int64 from every rank, indexed by rank;
	// the result is shared read-only across ranks.
	AllgatherInt64(v int64) []int64
}

// Transport brings up the message-passing world a Cluster runs on.
//
// A transport whose world holds external resources (sockets, processes)
// should additionally implement io.Closer: Cluster.Close calls Close once
// after the rank goroutines have drained. A Transport shared across
// clusters must tolerate that call per cluster.
type Transport interface {
	// Connect establishes a world of the given size and returns one
	// communicator per rank. The communicators stay valid until the
	// Cluster is closed.
	Connect(size int) ([]Comm, error)
}

// ChanTransport is the default Transport: the in-process chanmpi runtime,
// one goroutine-backed rank per communicator.
type ChanTransport struct{}

// Connect creates a chanmpi world and hands out its rank communicators.
func (ChanTransport) Connect(size int) ([]Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: world size %d < 1", size)
	}
	w := chanmpi.NewWorld(size)
	comms := make([]Comm, size)
	for r := range comms {
		comms[r] = w.Comm(r)
	}
	return comms, nil
}

// Interface satisfaction check: the in-process runtime is a valid backend.
var _ Comm = (*chanmpi.Comm)(nil)
