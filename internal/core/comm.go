package core

import (
	"context"
	"fmt"

	"repro/internal/chanmpi"
)

// Request and ReduceOp are the transport-neutral contract types of the
// distributed runtime. They alias the chanmpi definitions — pure interface
// and enum, with none of the in-process runtime attached — so that
// *chanmpi.Comm satisfies Comm directly while alternative backends only
// have to implement two tiny methods per request handle.
type Request = chanmpi.Request

// PersistentRequest is a restartable communication channel bound to a
// fixed (peer, tag, buffer) triple — the MPI_Send_init / MPI_Recv_init
// persistent-request idea. Compile a recurring exchange into persistent
// channels once, then each iteration is Start + Wait with zero per-message
// allocation; the resident Workers compile their whole halo schedule this
// way at construction time.
type PersistentRequest = chanmpi.PersistentRequest

// ReduceOp selects the combining operation of Allreduce.
type ReduceOp = chanmpi.ReduceOp

// Reduction operations understood by every transport.
const (
	OpSum = chanmpi.OpSum
	OpMax = chanmpi.OpMax
	OpMin = chanmpi.OpMin
)

// The shared error taxonomy of the transport contract, aliased from the
// in-process runtime so every backend reports the same typed failures:
// addressing a rank outside the world (RankError), a message longer than
// its receive buffer (TruncationError), ranks disagreeing on an Allreduce
// length (MismatchError), and any operation on a failed world
// (WorldError, which unwraps to the first cause).
type (
	RankError       = chanmpi.RankError
	TruncationError = chanmpi.TruncationError
	MismatchError   = chanmpi.MismatchError
	WorldError      = chanmpi.WorldError
)

// Comm is one rank's communicator: the complete message-passing surface the
// kernel modes and the SPMD solvers consume. It decouples internal/core from
// the concrete runtime — *chanmpi.Comm satisfies it as-is, and a wire-level
// backend (internal/tcpmpi, a simmpi re-enactment) plugs in behind a
// Transport without touching the modes.
//
// The contract is error-first: misuse and transport failures return errors
// instead of panicking, so a network backend can report a lost peer the
// same way the in-process runtime reports a truncated exchange. Errors
// surface through the Cluster and solver entry points; no implementation
// may panic on the paths reachable through this interface.
type Comm interface {
	// Rank returns this rank's id in [0, Size).
	Rank() int
	// Size returns the world size.
	Size() int
	// Isend starts a nonblocking send of data to rank dst with the given
	// tag. Buffered semantics: the caller may reuse data on return.
	Isend(dst, tag int, data []float64) (Request, error)
	// Irecv posts a nonblocking receive into buf for a message from rank
	// src with the given tag.
	Irecv(src, tag int, buf []float64) (Request, error)
	// SendInit creates a persistent send channel to rank dst: each Start
	// transmits the CURRENT contents of buf (MPI_Send_init). The channel
	// is inert until its first Start.
	SendInit(dst, tag int, buf []float64) (PersistentRequest, error)
	// RecvInit creates a persistent receive channel for messages from rank
	// src, delivering into buf on each Start/Wait cycle (MPI_Recv_init).
	RecvInit(src, tag int, buf []float64) (PersistentRequest, error)
	// Waitall blocks until every request has completed (MPI_Waitall) and
	// returns the first error observed.
	Waitall(reqs ...Request) error
	// Barrier blocks until all ranks have entered it.
	Barrier() error
	// Allreduce combines in-vectors elementwise across all ranks; the
	// returned slice may be shared across ranks and must be treated
	// read-only.
	Allreduce(op ReduceOp, in []float64) ([]float64, error)
	// AllreduceScalar combines a single value across all ranks.
	AllreduceScalar(op ReduceOp, v float64) (float64, error)
	// AllgatherInt64 gathers one int64 from every rank, indexed by rank;
	// the result may be shared and must be treated read-only.
	AllgatherInt64(v int64) ([]int64, error)
}

// World is an established message-passing world of Size ranks, of which
// this process owns LocalRanks. The all-local chan world owns every rank;
// a multi-process backend like tcpmpi owns a subset, with the remaining
// ranks living in peer OS processes.
type World interface {
	// Size returns the total number of ranks in the world, across all
	// participating processes.
	Size() int
	// LocalRanks lists the ranks this process owns, ascending. The Cluster
	// spins one resident rank goroutine per local rank; remote ranks are
	// driven by their own processes.
	LocalRanks() []int
	// Comm returns the communicator of a local rank. Asking for a rank
	// this process does not own is an error.
	Comm(rank int) (Comm, error)
	// Fail poisons the world with the given cause: ranks blocked in its
	// communication wake with a *WorldError and subsequent operations
	// refuse. The Cluster calls it when a job body fails on one rank, so
	// peers blocked on that rank unwedge instead of deadlocking. The
	// first cause wins; later calls are no-ops.
	Fail(err error)
	// Close releases the world's resources (goroutines, sockets). Ranks
	// still blocked in it observe a failure rather than wedging. Close is
	// idempotent.
	Close() error
}

// Transport brings up the message-passing world a Cluster runs on.
type Transport interface {
	// Dial establishes (or joins) a world with the given total rank count.
	// It blocks until the world is fully connected — for a multi-process
	// backend, until every peer process has joined — or ctx expires. The
	// world stays valid until its Close.
	Dial(ctx context.Context, size int) (World, error)
}

// ChanTransport is the default Transport: the in-process chanmpi runtime,
// one goroutine-backed rank per communicator, all ranks local.
type ChanTransport struct{}

// Dial creates a chanmpi world owning every rank.
func (ChanTransport) Dial(_ context.Context, size int) (World, error) {
	w, err := chanmpi.NewWorld(size)
	if err != nil {
		return nil, err
	}
	return &chanWorld{w: w}, nil
}

// chanWorld adapts *chanmpi.World to the transport-neutral World contract.
type chanWorld struct {
	w *chanmpi.World
}

func (cw *chanWorld) Size() int { return cw.w.Size() }

func (cw *chanWorld) LocalRanks() []int {
	ranks := make([]int, cw.w.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

func (cw *chanWorld) Comm(rank int) (Comm, error) {
	c, err := cw.w.Comm(rank)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (cw *chanWorld) Fail(err error) { cw.w.Fail(err) }

func (cw *chanWorld) Close() error { return cw.w.Close() }

// validLocalRanks checks a world's local rank list against its size:
// non-empty, strictly ascending, in range.
func validLocalRanks(local []int, size int) error {
	if len(local) == 0 {
		return fmt.Errorf("core: world owns no local ranks")
	}
	for i, r := range local {
		if r < 0 || r >= size {
			return fmt.Errorf("core: local rank %d outside [0,%d)", r, size)
		}
		if i > 0 && local[i-1] >= r {
			return fmt.Errorf("core: local ranks not strictly ascending at %d", r)
		}
	}
	return nil
}

// Interface satisfaction check: the in-process runtime is a valid backend.
var _ Comm = (*chanmpi.Comm)(nil)
