package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Cluster is the persistent distributed runtime behind every multiplication,
// solve and sweep: rank goroutines, compute teams, communicators and halo
// buffers are brought up once by NewCluster and stay resident until Close.
// Between submissions the rank goroutines block on a job queue, so
// sequential solves and benchmark sweeps reuse the same runtime instead of
// paying the world + team spawn per call — the paper's long-running
// application shape (exact diagonalization, CG), where threads and
// communicators persist across thousands of spMVM iterations.
//
// The cluster drives only the ranks its World owns locally. On the default
// ChanTransport that is every rank; on a multi-process transport (tcpmpi)
// each OS process holds its own Cluster over the same plan and drives its
// own rank subset, so submissions are SPMD across processes: every process
// must submit the same sequence of jobs (Mul, Run, Convert) for the
// cross-rank collectives inside them to line up.
//
// Jobs (Mul, Run, Convert's refresh) are serialized: a second submission
// queues until the current one drains. Live reconfiguration between jobs
// goes through SetMode and Convert. A Cluster must be closed to release its
// worker teams; Close is idempotent.
//
// Because submissions hold the cluster's lock until the job drains, a job
// body must not call back into Mul, Run, SetMode, Convert or Close — doing
// so self-deadlocks. Mode is the exception: it is lock-free and safe from
// inside a body.
type Cluster struct {
	plan    *Plan
	threads int
	world   World

	localRanks []int     // the ranks this process drives, ascending
	workers    []*Worker // parallel to localRanks
	jobs       []chan *job
	done       sync.WaitGroup // rank-goroutine exit

	mode atomic.Int32 // current Mode; lock-free so job bodies may read it

	mu     sync.Mutex // serializes submissions and reconfiguration
	closed bool
	failed error // first job failure; the world is poisoned, rebuild to recover

	// The resident Mul job: one reusable job whose body reads mulArgs, so a
	// steady-state Mul on a warm cluster allocates nothing — no per-call
	// closure, job object or error slice. mulArgs is written under mu before
	// submission and read by the rank goroutines during the job (the job
	// queue's channel handoff orders the accesses).
	mulJob  *job
	mulArgs struct {
		y, x  []float64
		iters int
		mode  Mode
	}
}

// job is one SPMD submission: every local rank runs body on its resident
// Worker. Body errors and recovered panics are collected per rank.
type job struct {
	body func(*Worker) error
	wg   sync.WaitGroup
	errs []error // per-local-rank failures
}

// Option configures a Cluster at construction.
type Option func(*clusterConfig)

type clusterConfig struct {
	mode      Mode
	threads   int
	format    matrix.FormatBuilder
	transport Transport
	ctx       context.Context
}

// WithMode selects the kernel mode multiplications run in (default
// VectorNoOverlap); SetMode changes it later without rebuilding.
func WithMode(m Mode) Option { return func(c *clusterConfig) { c.mode = m } }

// WithThreads sets the compute-team size per rank (default 1) — the paper's
// "worker threads"; in task mode the rank's own goroutine plays the
// dedicated communication thread on top of them.
func WithThreads(n int) Option { return func(c *clusterConfig) { c.threads = n } }

// WithFormat converts the plan's local matrices to the builder's storage
// scheme (e.g. formats.SELLBuilder) before the workers spin up — equivalent
// to Plan.ConvertFormat followed by NewCluster.
func WithFormat(b matrix.FormatBuilder) Option { return func(c *clusterConfig) { c.format = b } }

// WithTransport substitutes the message-passing backend (default
// ChanTransport, the in-process chanmpi runtime).
func WithTransport(t Transport) Option { return func(c *clusterConfig) { c.transport = t } }

// WithDialContext bounds the transport's world bring-up: a multi-process
// Dial blocks until every peer has joined, and the context's deadline or
// cancellation aborts the wait. Default context.Background().
func WithDialContext(ctx context.Context) Option { return func(c *clusterConfig) { c.ctx = ctx } }

// NewCluster validates the plan and options once, dials the transport, and
// spins up one resident rank goroutine (with Worker, compute team and halo
// buffers) per LOCAL rank of the dialed world — every rank on the default
// chan transport, this process's subset on a multi-process one. All misuse
// that the deprecated shims still panic on — pattern-only plan, threads < 1,
// half-converted plan, unknown mode — surfaces here as an error.
func NewCluster(plan *Plan, opts ...Option) (*Cluster, error) {
	if plan == nil || plan.Part == nil {
		return nil, fmt.Errorf("core: NewCluster needs a non-nil plan")
	}
	cfg := clusterConfig{mode: VectorNoOverlap, threads: 1, transport: ChanTransport{}, ctx: context.Background()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.mode.valid() {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.mode)
	}
	if cfg.threads < 1 {
		// Checked before WithFormat runs: construction must fail without
		// the durable side effect of converting the caller's plan.
		return nil, fmt.Errorf("core: threads %d < 1", cfg.threads)
	}
	if cfg.format != nil {
		if err := plan.ConvertFormat(cfg.format); err != nil {
			return nil, err
		}
	}
	ranks := plan.Part.NumRanks()
	world, err := cfg.transport.Dial(cfg.ctx, ranks)
	if err != nil {
		return nil, err
	}
	if world.Size() != ranks {
		world.Close()
		return nil, fmt.Errorf("core: transport dialed a %d-rank world, plan has %d", world.Size(), ranks)
	}
	local := append([]int(nil), world.LocalRanks()...)
	if err := validLocalRanks(local, ranks); err != nil {
		world.Close()
		return nil, err
	}

	c := &Cluster{
		plan:       plan,
		threads:    cfg.threads,
		world:      world,
		localRanks: local,
		workers:    make([]*Worker, len(local)),
		jobs:       make([]chan *job, len(local)),
	}
	c.mode.Store(int32(cfg.mode))
	for i, r := range local {
		comm, err := world.Comm(r)
		if err == nil && comm.Rank() != r {
			err = fmt.Errorf("core: world handed rank %d a communicator for rank %d", r, comm.Rank())
		}
		var w *Worker
		if err == nil {
			w, err = newWorker(plan.Ranks[r], comm, cfg.threads)
		}
		if err != nil {
			for _, built := range c.workers[:i] {
				built.Close()
			}
			world.Close()
			return nil, err
		}
		c.workers[i] = w
		c.jobs[i] = make(chan *job)
	}
	c.mulJob = &job{errs: make([]error, len(local)), body: func(w *Worker) error {
		a := &c.mulArgs
		rp := w.Plan
		copy(w.X[:rp.NLocal], a.x[rp.Rows.Lo:rp.Rows.Hi])
		for it := 0; it < a.iters; it++ {
			if err := w.Step(a.mode); err != nil {
				return err
			}
			if it < a.iters-1 {
				// Next iteration multiplies the previous result.
				copy(w.X[:rp.NLocal], w.Y)
			}
		}
		copy(a.y[rp.Rows.Lo:rp.Rows.Hi], w.Y)
		return nil
	}}
	for i := range local {
		c.done.Add(1)
		go c.rankLoop(i)
	}
	return c, nil
}

// rankLoop is the resident rank goroutine: block on the job queue, run each
// job on this rank's Worker, release the team on shutdown. In task mode this
// goroutine doubles as the dedicated communication thread (it sits inside
// Waitall while the team computes).
func (c *Cluster) rankLoop(i int) {
	defer c.done.Done()
	w := c.workers[i]
	defer w.Close()
	for j := range c.jobs[i] {
		c.runJob(j, i, w)
	}
}

// runJob executes one job body on one rank, recording its error and
// converting a panic into a recorded per-rank failure so the submitter can
// report it as an error. A failure immediately fails the world
// (MPI_ERRORS_ARE_FATAL): peers blocked on a collective or receive this
// rank abandoned wake with a *WorldError instead of wedging the job
// forever — on a multi-process transport the teardown reaches the peer
// processes too.
func (c *Cluster) runJob(j *job, i int, w *Worker) {
	defer j.wg.Done()
	rank := c.localRanks[i]
	defer func() {
		if p := recover(); p != nil {
			j.errs[i] = fmt.Errorf("core: rank %d panicked: %v", rank, p)
		}
		if j.errs[i] != nil {
			c.world.Fail(j.errs[i])
		}
	}()
	if err := j.body(w); err != nil {
		j.errs[i] = fmt.Errorf("core: rank %d: %w", rank, err)
	}
}

// Ranks returns the total number of message-passing ranks in the world,
// including ranks driven by peer processes.
func (c *Cluster) Ranks() int { return c.plan.Part.NumRanks() }

// LocalRanks returns the ranks this cluster drives, ascending — all of them
// on the default chan transport, this process's subset on a multi-process
// one.
func (c *Cluster) LocalRanks() []int { return append([]int(nil), c.localRanks...) }

// Threads returns the compute-team size per rank.
func (c *Cluster) Threads() int { return c.threads }

// Rows returns the global matrix dimension.
func (c *Cluster) Rows() int { return c.plan.Part.Rows() }

// Plan returns the communication plan the cluster executes. Mutating it
// while jobs run is a race; use Convert for live format changes.
func (c *Cluster) Plan() *Plan { return c.plan }

// Mode returns the kernel mode multiplications currently run in. It is
// lock-free, so — unlike every other Cluster method — it may be called from
// inside a Run job body.
func (c *Cluster) Mode() Mode { return Mode(c.mode.Load()) }

// Failed returns the error of the job that poisoned the cluster's world,
// or nil while the cluster is healthy. Session pools (internal/serve) use
// it to decide whether a resident cluster can take further work without
// paying a probe job. It takes the cluster lock, so — like every method
// except Mode — it must not be called from inside a job body.
func (c *Cluster) Failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// SetMode switches the kernel mode for subsequent multiplications, without
// touching the resident runtime. It takes effect after in-flight jobs drain.
func (c *Cluster) SetMode(m Mode) error {
	if !m.valid() {
		return fmt.Errorf("core: unknown mode %v", m)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: SetMode on closed cluster")
	}
	c.mode.Store(int32(m))
	return nil
}

// Convert switches the plan's local matrices to the builder's storage scheme
// between jobs (see Plan.ConvertFormat) and refreshes every resident
// worker's kernels and chunking. The refresh rides the job queue, so it is
// ordered after any in-flight job.
func (c *Cluster) Convert(b matrix.FormatBuilder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Convert on closed cluster")
	}
	if c.failed != nil {
		// Checked before ConvertFormat runs: a refused Convert must not
		// have the durable side effect of converting the caller's plan
		// while the resident workers are never refreshed.
		return fmt.Errorf("core: cluster failed by an earlier job (%v); close and rebuild", c.failed)
	}
	if err := c.plan.ConvertFormat(b); err != nil {
		return err
	}
	return c.submitLocked(func(w *Worker) error { w.refresh(); return nil })
}

// Run executes body once per local rank on the resident Workers — the SPMD
// entry point entire iterative algorithms (CG, Lanczos, …) run on. body
// runs concurrently on all local ranks; cross-rank coordination goes
// through w.Comm. Run returns after every local rank's body has finished.
//
// A body error or panic on any rank is fatal to the world, as an MPI error
// is to an MPI job: the failing rank's error poisons the world, peers
// blocked on a collective or receive it abandoned wake with a *WorldError
// instead of wedging, Run returns the primary cause, and the cluster
// refuses further submissions (Close and rebuild to recover). A condition
// an algorithm detects in lockstep on every rank (e.g. CG breakdown on a
// globally reduced scalar) should therefore be recorded out-of-band and
// returned after Run, not through the body error. body must not call back
// into Mul, Run, SetMode, Convert or Close (self-deadlock); Mode is safe.
func (c *Cluster) Run(body func(w *Worker) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Run on closed cluster")
	}
	return c.submitLocked(body)
}

// submitLocked broadcasts one ephemeral job body to every local rank queue
// and waits for it to drain. Caller holds c.mu.
func (c *Cluster) submitLocked(body func(w *Worker) error) error {
	return c.submitJobLocked(&job{body: body, errs: make([]error, len(c.workers))})
}

// submitJobLocked runs one (possibly reused) job on every local rank —
// refusing outright on a cluster a previous job already failed — and
// returns its primary failure: the first rank error in rank order that is
// not a secondary *WorldError report of a failure that originated
// elsewhere. A failure marks the cluster failed, since the world is
// poisoned. Caller holds c.mu and guarantees j.errs is clean.
func (c *Cluster) submitJobLocked(j *job) error {
	if c.failed != nil {
		return fmt.Errorf("core: cluster failed by an earlier job (%v); close and rebuild", c.failed)
	}
	j.wg.Add(len(c.workers))
	for _, q := range c.jobs {
		q <- j
	}
	j.wg.Wait()
	var first error
	for _, err := range j.errs {
		if err == nil {
			continue
		}
		var we *WorldError
		if !errors.As(err, &we) {
			first = err
			break
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		c.failed = first
	}
	return first
}

// Mul runs iters distributed multiplications y = A^iters·x in the cluster's
// current mode and gathers the result rows of the LOCAL ranks into y. x and
// y are global vectors of length Rows; they may alias. On an all-local
// world y is the complete global result; on a multi-process world each
// process obtains the rows its ranks own (every process must call Mul with
// the same x for the halo exchanges to agree).
func (c *Cluster) Mul(y, x []float64, iters int) error {
	rows := c.plan.Part.Rows()
	if len(x) != rows || len(y) != rows {
		return fmt.Errorf("core: Mul dimension mismatch (matrix %d rows, len(x)=%d, len(y)=%d)", rows, len(x), len(y))
	}
	if iters < 1 {
		return fmt.Errorf("core: Mul needs iters ≥ 1, got %d", iters)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Mul on closed cluster")
	}
	return c.mulLocked(y, x, iters)
}

// mulLocked dispatches the resident Mul job. Caller holds c.mu.
func (c *Cluster) mulLocked(y, x []float64, iters int) error {
	// Steady-state path: the resident Mul job is reused across calls, so a
	// multiplication on a warm cluster performs zero allocations.
	c.mulArgs.y, c.mulArgs.x, c.mulArgs.iters, c.mulArgs.mode = y, x, iters, c.Mode()
	for i := range c.mulJob.errs {
		c.mulJob.errs[i] = nil
	}
	err := c.submitJobLocked(c.mulJob)
	c.mulArgs.y, c.mulArgs.x = nil, nil // don't pin the caller's vectors
	return err
}

// MulContext is Mul with an end-to-end deadline: the context's expiry or
// cancellation abandons the multiplication instead of letting it run (or
// queue) forever, surfacing a typed *DeadlineError.
//
// Two regimes, distinguished by when the context dies:
//
//   - Before dispatch — the deadline passed while the request waited for
//     the cluster (e.g. queued behind a long job on the submission lock).
//     The job never starts, the world is NEVER touched, and the cluster
//     stays healthy for the next submission: the non-poisoning fast
//     reject of a request that is already too late.
//   - Mid-job — the context fires while ranks are inside the job. The
//     interrupt hook (Cluster.Interrupt, the same path a supervisor's
//     cancellation takes) closes the world, the blocked ranks unwedge,
//     and MulContext returns a *DeadlineError. The world is poisoned as
//     by any interrupt; a Supervisor rebuilds it on the next epoch, but
//     the DeadlineError itself is non-recoverable — re-running expired
//     work would just miss the deadline again.
//
// Like Mul, MulContext takes the cluster lock and therefore must not be
// called from inside a job body.
func (c *Cluster) MulContext(ctx context.Context, y, x []float64, iters int) error {
	rows := c.plan.Part.Rows()
	if len(x) != rows || len(y) != rows {
		return fmt.Errorf("core: Mul dimension mismatch (matrix %d rows, len(x)=%d, len(y)=%d)", rows, len(x), len(y))
	}
	if iters < 1 {
		return fmt.Errorf("core: Mul needs iters ≥ 1, got %d", iters)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Mul on closed cluster")
	}
	if err := ctx.Err(); err != nil {
		return &DeadlineError{Op: "Mul", Err: err}
	}
	stop := context.AfterFunc(ctx, c.Interrupt)
	err := c.mulLocked(y, x, iters)
	stop()
	if err != nil && ctx.Err() != nil {
		return &DeadlineError{Op: "Mul", Err: ctx.Err()}
	}
	return err
}

// RunContext is Run with an end-to-end deadline: the context's expiry or
// cancellation abandons the job instead of letting it run (or queue)
// forever, surfacing a typed *DeadlineError. The two regimes of MulContext
// apply unchanged: a context already dead before dispatch rejects the job
// without touching the world (the cluster stays healthy), while a context
// firing mid-job closes the world through Cluster.Interrupt — poisoned as
// by any interrupt, rebuilt by the next supervised epoch, but the
// DeadlineError itself is final for the request.
//
// Like Run, RunContext takes the cluster lock and therefore must not be
// called from inside a job body.
func (c *Cluster) RunContext(ctx context.Context, body func(w *Worker) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Run on closed cluster")
	}
	if err := ctx.Err(); err != nil {
		return &DeadlineError{Op: "Run", Err: err}
	}
	stop := context.AfterFunc(ctx, c.Interrupt)
	err := c.submitLocked(body)
	stop()
	if err != nil && ctx.Err() != nil {
		return &DeadlineError{Op: "Run", Err: ctx.Err()}
	}
	return err
}

// Interrupt aborts any in-flight job by closing the transport's world —
// the graceful-departure path: on the TCP backend the BYE announcement is
// flushed to every peer, then the local world fails with its closed-world
// error, unwedging every rank blocked in a collective or receive so the
// job returns with a *WorldError. Unlike Close it takes no lock and does
// not wait for the rank goroutines, so it is safe to call concurrently
// with a running job — it is how a SIGTERM handler or a supervisor's
// context cancellation stops a resident solve. The cluster is failed
// afterwards; Close it and rebuild to continue.
func (c *Cluster) Interrupt() { c.world.Close() }

// Close shuts the rank goroutines down, releases the compute teams, and
// closes the transport's world (sockets, peer goroutines). Close is
// idempotent and safe after partial use; jobs submitted after Close fail
// with an error.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, q := range c.jobs {
		close(q)
	}
	c.mu.Unlock()
	c.done.Wait()
	return c.world.Close()
}
