package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Cluster is the persistent distributed runtime behind every multiplication,
// solve and sweep: rank goroutines, compute teams, communicators and halo
// buffers are brought up once by NewCluster and stay resident until Close.
// Between submissions the rank goroutines block on a job queue, so
// sequential solves and benchmark sweeps reuse the same runtime instead of
// paying the world + team spawn per call — the paper's long-running
// application shape (exact diagonalization, CG), where threads and
// communicators persist across thousands of spMVM iterations.
//
// Jobs (Mul, Run, Convert's refresh) are serialized: a second submission
// queues until the current one drains. Live reconfiguration between jobs
// goes through SetMode and Convert. A Cluster must be closed to release its
// worker teams; Close is idempotent.
//
// Because submissions hold the cluster's lock until the job drains, a job
// body must not call back into Mul, Run, SetMode, Convert or Close — doing
// so self-deadlocks. Mode is the exception: it is lock-free and safe from
// inside a body.
type Cluster struct {
	plan      *Plan
	threads   int
	transport Transport

	workers []*Worker
	jobs    []chan *job
	done    sync.WaitGroup // rank-goroutine exit

	mode atomic.Int32 // current Mode; lock-free so job bodies may read it

	mu     sync.Mutex // serializes submissions and reconfiguration
	closed bool
}

// job is one SPMD submission: every rank runs body on its resident Worker.
type job struct {
	body   func(*Worker)
	wg     sync.WaitGroup
	panics []any // per-rank recovered panics
}

// Option configures a Cluster at construction.
type Option func(*clusterConfig)

type clusterConfig struct {
	mode      Mode
	threads   int
	format    matrix.FormatBuilder
	transport Transport
}

// WithMode selects the kernel mode multiplications run in (default
// VectorNoOverlap); SetMode changes it later without rebuilding.
func WithMode(m Mode) Option { return func(c *clusterConfig) { c.mode = m } }

// WithThreads sets the compute-team size per rank (default 1) — the paper's
// "worker threads"; in task mode the rank's own goroutine plays the
// dedicated communication thread on top of them.
func WithThreads(n int) Option { return func(c *clusterConfig) { c.threads = n } }

// WithFormat converts the plan's local matrices to the builder's storage
// scheme (e.g. formats.SELLBuilder) before the workers spin up — equivalent
// to Plan.ConvertFormat followed by NewCluster.
func WithFormat(b matrix.FormatBuilder) Option { return func(c *clusterConfig) { c.format = b } }

// WithTransport substitutes the message-passing backend (default
// ChanTransport, the in-process chanmpi runtime).
func WithTransport(t Transport) Option { return func(c *clusterConfig) { c.transport = t } }

// NewCluster validates the plan and options once, spins up one resident
// rank goroutine (with Worker, compute team and halo buffers) per plan rank,
// and returns the running Cluster. All misuse that the deprecated shims
// still panic on — pattern-only plan, threads < 1, half-converted plan,
// unknown mode — surfaces here as an error.
func NewCluster(plan *Plan, opts ...Option) (*Cluster, error) {
	if plan == nil || plan.Part == nil {
		return nil, fmt.Errorf("core: NewCluster needs a non-nil plan")
	}
	cfg := clusterConfig{mode: VectorNoOverlap, threads: 1, transport: ChanTransport{}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.mode.valid() {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.mode)
	}
	if cfg.threads < 1 {
		// Checked before WithFormat runs: construction must fail without
		// the durable side effect of converting the caller's plan.
		return nil, fmt.Errorf("core: threads %d < 1", cfg.threads)
	}
	if cfg.format != nil {
		if err := plan.ConvertFormat(cfg.format); err != nil {
			return nil, err
		}
	}
	ranks := plan.Part.NumRanks()
	comms, err := cfg.transport.Connect(ranks)
	if err != nil {
		return nil, err
	}
	if len(comms) != ranks {
		return nil, fmt.Errorf("core: transport connected %d ranks, plan has %d", len(comms), ranks)
	}

	c := &Cluster{
		plan:      plan,
		threads:   cfg.threads,
		transport: cfg.transport,
		workers:   make([]*Worker, ranks),
		jobs:      make([]chan *job, ranks),
	}
	c.mode.Store(int32(cfg.mode))
	for r := 0; r < ranks; r++ {
		w, err := newWorker(plan.Ranks[r], comms[r], cfg.threads)
		if err != nil {
			for _, built := range c.workers[:r] {
				built.Close()
			}
			return nil, err
		}
		c.workers[r] = w
		c.jobs[r] = make(chan *job)
	}
	for r := 0; r < ranks; r++ {
		c.done.Add(1)
		go c.rankLoop(r)
	}
	return c, nil
}

// rankLoop is the resident rank goroutine: block on the job queue, run each
// job on this rank's Worker, release the team on shutdown. In task mode this
// goroutine doubles as the dedicated communication thread (it sits inside
// Waitall while the team computes).
func (c *Cluster) rankLoop(r int) {
	defer c.done.Done()
	w := c.workers[r]
	defer w.Close()
	for j := range c.jobs[r] {
		runJob(j, r, w)
	}
}

// runJob executes one job body on one rank, converting a panic into a
// recorded per-rank failure so the submitter can report it as an error.
func runJob(j *job, r int, w *Worker) {
	defer j.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			j.panics[r] = p
		}
	}()
	j.body(w)
}

// Ranks returns the number of message-passing ranks.
func (c *Cluster) Ranks() int { return len(c.workers) }

// Threads returns the compute-team size per rank.
func (c *Cluster) Threads() int { return c.threads }

// Rows returns the global matrix dimension.
func (c *Cluster) Rows() int { return c.plan.Part.Rows() }

// Plan returns the communication plan the cluster executes. Mutating it
// while jobs run is a race; use Convert for live format changes.
func (c *Cluster) Plan() *Plan { return c.plan }

// Mode returns the kernel mode multiplications currently run in. It is
// lock-free, so — unlike every other Cluster method — it may be called from
// inside a Run job body.
func (c *Cluster) Mode() Mode { return Mode(c.mode.Load()) }

// SetMode switches the kernel mode for subsequent multiplications, without
// touching the resident runtime. It takes effect after in-flight jobs drain.
func (c *Cluster) SetMode(m Mode) error {
	if !m.valid() {
		return fmt.Errorf("core: unknown mode %v", m)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: SetMode on closed cluster")
	}
	c.mode.Store(int32(m))
	return nil
}

// Convert switches the plan's local matrices to the builder's storage scheme
// between jobs (see Plan.ConvertFormat) and refreshes every resident
// worker's kernels and chunking. The refresh rides the job queue, so it is
// ordered after any in-flight job.
func (c *Cluster) Convert(b matrix.FormatBuilder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Convert on closed cluster")
	}
	if err := c.plan.ConvertFormat(b); err != nil {
		return err
	}
	return c.submitLocked(func(w *Worker) { w.refresh() })
}

// Run executes body once per rank on the resident Workers — the SPMD entry
// point entire iterative algorithms (CG, Lanczos, …) run on. body runs
// concurrently on all ranks; cross-rank coordination goes through w.Comm.
// Run returns after every rank's body has finished; a panic on any rank is
// returned as an error (after all ranks finish — a rank blocked on a
// collective its peers abandoned will hang, exactly as in MPI). body must
// not call back into Mul, Run, SetMode, Convert or Close (self-deadlock);
// Mode is safe.
func (c *Cluster) Run(body func(w *Worker)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Run on closed cluster")
	}
	return c.submitLocked(body)
}

// submitLocked broadcasts one job to every rank queue and waits for it to
// drain. Caller holds c.mu.
func (c *Cluster) submitLocked(body func(w *Worker)) error {
	j := &job{body: body, panics: make([]any, len(c.workers))}
	j.wg.Add(len(c.workers))
	for _, q := range c.jobs {
		q <- j
	}
	j.wg.Wait()
	for r, p := range j.panics {
		if p != nil {
			return fmt.Errorf("core: rank %d panicked: %v", r, p)
		}
	}
	return nil
}

// Mul runs iters distributed multiplications y = A^iters·x in the cluster's
// current mode and gathers the global result into y. x and y are global
// vectors of length Rows; they may alias.
func (c *Cluster) Mul(y, x []float64, iters int) error {
	rows := c.plan.Part.Rows()
	if len(x) != rows || len(y) != rows {
		return fmt.Errorf("core: Mul dimension mismatch (matrix %d rows, len(x)=%d, len(y)=%d)", rows, len(x), len(y))
	}
	if iters < 1 {
		return fmt.Errorf("core: Mul needs iters ≥ 1, got %d", iters)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("core: Mul on closed cluster")
	}
	mode := c.Mode()
	return c.submitLocked(func(w *Worker) {
		rp := w.Plan
		copy(w.X[:rp.NLocal], x[rp.Rows.Lo:rp.Rows.Hi])
		for it := 0; it < iters; it++ {
			w.Step(mode)
			if it < iters-1 {
				// Next iteration multiplies the previous result.
				copy(w.X[:rp.NLocal], w.Y)
			}
		}
		copy(y[rp.Rows.Lo:rp.Rows.Hi], w.Y)
	})
}

// Close shuts the rank goroutines down, releases the compute teams, and —
// if the transport implements io.Closer — closes the transport's world.
// Close is idempotent and safe after partial use; jobs submitted after
// Close fail with an error.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, q := range c.jobs {
		close(q)
	}
	c.mu.Unlock()
	c.done.Wait()
	if cl, ok := c.transport.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}
