package core

import "fmt"

// DeadlineError reports that a per-request deadline (or cancellation) cut
// a cluster job short: the context expired, so the job was abandoned —
// before dispatch when the deadline was already past (the request died in
// a queue), or mid-flight through Cluster.Interrupt.
//
// A DeadlineError is FINAL for the request that carried the deadline and
// deliberately outside the Supervisor's recovery policy: Recoverable
// returns false for it, because re-running the same work against an
// already-expired deadline just fails again. It does not condemn the
// cluster, though — a deadline that fired before dispatch never touched
// the world at all, and one that fired mid-job closed the world through
// the ordinary interrupt path, which the next supervised epoch rebuilds.
// Which of the two happened is visible to the owner of the cluster via
// Cluster.Failed: nil means the world was never poisoned.
type DeadlineError struct {
	// Op names the interrupted entry point ("Mul", "Run", "DistCG", ...).
	Op string
	// Err is the context's verdict: context.DeadlineExceeded or
	// context.Canceled. errors.Is(e, context.DeadlineExceeded) therefore
	// works through a DeadlineError.
	Err error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("core: %s abandoned at its deadline: %v", e.Op, e.Err)
}

// Unwrap exposes the context's error.
func (e *DeadlineError) Unwrap() error { return e.Err }
