package core

import (
	"testing"
)

// The AllocGate tests pin the zero-allocation steady state of the resident
// distributed iteration (doc.go "Steady-state performance contract"): on a
// warm cluster over the chan transport, a whole Cluster.Mul — job
// submission, halo exchange over persistent channels, compiled kernel
// regions in every mode — performs zero allocations. CI runs these as a
// dedicated step (go test -run AllocGate ./...).

// TestAllocGateClusterMulModes asserts zero allocations per steady-state
// multiplication in all three kernel modes, which covers Worker.Step's
// no-overlap, naive-overlap and resident task-mode paths.
func TestAllocGateClusterMulModes(t *testing.T) {
	_, cl := newTestCluster(t, 55, 300, 100, 5, 4, WithThreads(2))
	x := randVec(56, 300)
	y := make([]float64, 300)
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			if err := cl.SetMode(mode); err != nil {
				t.Fatal(err)
			}
			mul := func() {
				if err := cl.Mul(y, x, 1); err != nil {
					t.Fatal(err)
				}
			}
			mul() // steady the mailbox and queue capacities
			mul()
			if allocs := testing.AllocsPerRun(30, mul); allocs != 0 {
				t.Fatalf("%v: Mul allocates %.1f objects per multiplication, want 0", mode, allocs)
			}
		})
	}
}

// TestAllocGateClusterMulIterated asserts the per-iteration cost inside
// one Mul call is also allocation-free: a 33-iteration multiplication
// allocates exactly as much as a 1-iteration one (namely, nothing).
func TestAllocGateClusterMulIterated(t *testing.T) {
	_, cl := newTestCluster(t, 57, 240, 80, 4, 3, WithThreads(2), WithMode(TaskMode))
	x := randVec(58, 240)
	y := make([]float64, 240)
	for _, iters := range []int{1, 33} {
		f := func() {
			if err := cl.Mul(y, x, iters); err != nil {
				t.Fatal(err)
			}
		}
		f()
		if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
			t.Fatalf("Mul with %d iterations allocates %.1f objects per call, want 0", iters, allocs)
		}
	}
}

// TestClusterTaskModeRepeatedStepsStress hammers the resident task-mode
// executor — the compiled local-pass region launched asynchronously while
// the rank goroutine waits out the halo — across many back-to-back steps.
// Run under -race (CI does), it guards the Start/Join rendezvous that
// replaced the per-step goroutine + channel.
func TestClusterTaskModeRepeatedStepsStress(t *testing.T) {
	a, cl := newTestCluster(t, 59, 180, 60, 4, 3, WithThreads(3), WithMode(TaskMode))
	x := randVec(60, 180)
	serial := make([]float64, 180)
	a.MulVec(serial, x)
	want := make([]float64, 180)
	if err := cl.Mul(want, x, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(serial, want); d > 1e-12 {
		t.Fatalf("task-mode result off by %g from the serial kernel", d)
	}
	y := make([]float64, 180)
	steps := 400
	if testing.Short() {
		steps = 50
	}
	for i := 0; i < steps; i++ {
		if err := cl.Mul(y, x, 1); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(want, y); d != 0 {
			t.Fatalf("step %d: task-mode result not bit-stable across steps (drift %g)", i, d)
		}
	}
	// Interleave mode switches mid-stream: the compiled regions of all
	// three passes share one team and must hand over cleanly.
	for i := 0; i < 60; i++ {
		if err := cl.SetMode(Modes[i%len(Modes)]); err != nil {
			t.Fatal(err)
		}
		if err := cl.Mul(y, x, 2); err != nil {
			t.Fatal(err)
		}
	}
}
