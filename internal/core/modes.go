package core

import (
	"fmt"
	"strings"

	"repro/internal/matrix"
	"repro/internal/spmv"
)

// Mode selects the kernel organization of the distributed SpMV (Fig. 4).
type Mode int

const (
	// VectorNoOverlap exchanges the full halo, then runs the entire local
	// SpMV (Fig. 4a). Communication and computation are serialized.
	VectorNoOverlap Mode = iota
	// VectorNaiveOverlap posts nonblocking communication, computes the
	// local-only part, waits, then finishes the halo part (Fig. 4b). The
	// result vector is written twice (Eq. 2). With standard MPI progress
	// semantics the "overlap" does not actually overlap — the paper's
	// central observation.
	VectorNaiveOverlap
	// TaskMode dedicates one thread to communication while the remaining
	// threads compute the local part, then all threads finish the halo part
	// (Fig. 4c). Communication genuinely overlaps computation because the
	// communication thread sits inside MPI the whole time.
	TaskMode
)

func (m Mode) String() string {
	switch m {
	case VectorNoOverlap:
		return "vector-no-overlap"
	case VectorNaiveOverlap:
		return "vector-naive-overlap"
	case TaskMode:
		return "task-mode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all kernel modes in presentation order.
var Modes = []Mode{VectorNoOverlap, VectorNaiveOverlap, TaskMode}

// valid reports whether m is one of the defined kernel modes.
func (m Mode) valid() bool {
	return m == VectorNoOverlap || m == VectorNaiveOverlap || m == TaskMode
}

// modeTokens is the single source of truth for every spelling ParseMode
// accepts: the canonical String() name of each mode first, its short
// aliases after it. ParseMode's error enumerates exactly this table, so a
// bad -mode flag or HTTP parameter names every valid token.
var modeTokens = []struct {
	tok  string
	mode Mode
}{
	{"vector-no-overlap", VectorNoOverlap},
	{"vector", VectorNoOverlap},
	{"no-overlap", VectorNoOverlap},
	{"vector-naive-overlap", VectorNaiveOverlap},
	{"naive", VectorNaiveOverlap},
	{"naive-overlap", VectorNaiveOverlap},
	{"task-mode", TaskMode},
	{"task", TaskMode},
}

// ModeTokens returns every spelling ParseMode accepts, canonical names
// first — the list command-line help and API error messages enumerate.
func ModeTokens() []string {
	out := make([]string, len(modeTokens))
	for i, e := range modeTokens {
		out[i] = e.tok
	}
	return out
}

// ParseMode maps a mode name to its Mode value. It accepts the canonical
// String() names ("vector-no-overlap", "vector-naive-overlap", "task-mode")
// and the short aliases listed by ModeTokens; an unknown name yields an
// error that enumerates every valid token.
func ParseMode(s string) (Mode, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, e := range modeTokens {
		if e.tok == name {
			return e.mode, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (valid: %s)", s, strings.Join(ModeTokens(), ", "))
}

// haloTag is the message tag of halo exchanges. Matching is FIFO per
// (source, tag), so a single tag is sufficient across iterations.
const haloTag = 0

// Worker is the per-rank execution state of the distributed SpMV.
// X holds the owned RHS elements in [0, NLocal) and the halo in
// [NLocal, VectorLen); Y holds the owned result rows.
type Worker struct {
	Plan *RankPlan
	Comm Comm
	Team *spmv.Team

	X []float64
	Y []float64

	local matrix.Format     // full local matrix (Plan.Format or Plan.A)
	split *spmv.FormatSplit // column split (Plan.SplitFormat or Plan.Split)

	// The three passes are chunked independently, each balanced on its own
	// work: fullChunks on the full matrix's blocks (no-overlap), localChunks
	// on the split-local blocks, remoteChunks on the compacted remote's
	// stored rows. Balancing the split passes on the full RowPtr would
	// load-imbalance the local pass whenever remote nnz is skewed across
	// rows.
	localChunks  []spmv.Range
	remoteChunks []spmv.Range
	fullChunks   []spmv.Range

	sendBufs [][]float64

	// The halo schedule compiled into persistent channels (MPI_Send_init /
	// MPI_Recv_init): one restartable receive per halo segment, delivering
	// straight into X's halo region, and one restartable send per peer,
	// bound to its gather buffer. postRecvs/gatherAndSend are then pure
	// restart loops — the steady-state exchange allocates nothing.
	recvReqs []PersistentRequest
	sendReqs []PersistentRequest

	// The kernel passes compiled into restartable team regions, one per
	// pass; their bodies read the chunking through w, so refresh only has
	// to rebalance the chunk slices.
	fullRegion   *spmv.Region
	localRegion  *spmv.Region
	remoteRegion *spmv.Region
}

// newWorker prepares the execution state of one rank. threads is the size
// of the compute team (the paper's "worker threads"); in task mode the
// communication role is played by the rank's own goroutine, mirroring the
// dedicated communication thread that may run on a virtual core.
func newWorker(rp *RankPlan, comm Comm, threads int) (*Worker, error) {
	if rp.A == nil {
		return nil, fmt.Errorf("core: rank %d has no local matrix (plan must be built with values)", rp.Rank)
	}
	if threads < 1 {
		return nil, fmt.Errorf("core: threads %d < 1", threads)
	}
	if (rp.Format == nil) != (rp.SplitFormat == nil) {
		// A half-set conversion would run some modes on the converted format
		// and others on CSR — numerically equal but silently different in
		// speed. Plan.ConvertFormat always sets both.
		return nil, fmt.Errorf("core: rank %d plan converted for only some modes (Format and SplitFormat must be set together; use Plan.ConvertFormat)", rp.Rank)
	}
	w := &Worker{
		Plan: rp,
		Comm: comm,
		Team: spmv.NewTeam(threads),
		X:    make([]float64, rp.VectorLen()),
		Y:    make([]float64, rp.NLocal),
	}
	w.refresh()
	w.sendBufs = make([][]float64, len(rp.SendTo))
	for i, tx := range rp.SendTo {
		w.sendBufs[i] = make([]float64, tx.Count)
	}

	// Compile the halo schedule into persistent channels: receives bound to
	// the contiguous halo segments of X, sends bound to the gather buffers.
	w.recvReqs = make([]PersistentRequest, len(rp.RecvFrom))
	for i, rx := range rp.RecvFrom {
		seg := w.X[rp.NLocal+rx.Offset : rp.NLocal+rx.Offset+rx.Count]
		req, err := comm.RecvInit(rx.Peer, haloTag, seg)
		if err != nil {
			w.Team.Close()
			return nil, err
		}
		w.recvReqs[i] = req
	}
	w.sendReqs = make([]PersistentRequest, len(rp.SendTo))
	for i, tx := range rp.SendTo {
		req, err := comm.SendInit(tx.Peer, haloTag, w.sendBufs[i])
		if err != nil {
			w.Team.Close()
			return nil, err
		}
		w.sendReqs[i] = req
	}

	// Compile the kernel passes into restartable team regions. Each pass is
	// chunked to exactly `threads` ranges, and the bodies read the current
	// chunking and storage format through w, so a refresh (live format
	// conversion) needs no recompilation.
	w.fullRegion = w.Team.Compile(threads, func(t int) {
		r := w.fullChunks[t]
		w.local.MulVecBlocks(w.Y, w.X, r.Lo, r.Hi)
	})
	w.localRegion = w.Team.Compile(threads, func(t int) {
		r := w.localChunks[t]
		w.split.Local.MulVecBlocks(w.Y, w.X, r.Lo, r.Hi)
	})
	w.remoteRegion = w.Team.Compile(threads, func(t int) {
		r := w.remoteChunks[t]
		w.split.Remote.MulStoredRowsAdd(w.Y, w.X, r.Lo, r.Hi)
	})
	return w, nil
}

// refresh re-reads the plan's storage formats and rebalances the kernel
// chunking — the hook Cluster.Convert uses to apply a live ConvertFormat to
// already-resident workers. Must not run concurrently with Step.
func (w *Worker) refresh() {
	rp := w.Plan
	threads := w.Team.Size()
	w.local = rp.A
	w.split = rp.Split.AsFormatSplit()
	if rp.Format != nil {
		w.local = rp.Format
		w.split = rp.SplitFormat
	}
	w.localChunks = w.split.LocalChunks(threads)
	w.remoteChunks = w.split.RemoteChunks(threads)
	w.fullChunks = spmv.BalanceNnz(w.local.BlockNnzPrefix(), threads)
}

// Close releases the worker's compute team.
func (w *Worker) Close() { w.Team.Close() }

// postRecvs restarts the persistent receive of every halo segment — the
// compiled equivalent of posting one Irecv per peer, with no per-step
// request allocation (segments deliver directly into X's halo region).
//
//repro:noalloc
func (w *Worker) postRecvs() error {
	for _, r := range w.recvReqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// gatherAndSend copies the owned elements each peer needs into the bound
// send buffers and restarts the persistent sends. The local gather may be
// done after the receives are initiated, potentially hiding the copy cost
// (§3.1).
//
//repro:noalloc
func (w *Worker) gatherAndSend() error {
	for i, tx := range w.Plan.SendTo {
		buf := w.sendBufs[i]
		for j, idx := range tx.Indices {
			buf[j] = w.X[idx]
		}
		if err := w.sendReqs[i].Start(); err != nil {
			return err
		}
	}
	return nil
}

// waitHalo blocks until every halo segment has arrived, waiting out every
// persistent receive AND send (the MPI_Waitall discipline: all requests
// are waited even after a failure; the send waits also discharge the
// one-Wait-per-Start contract, so the next step may legally refill the
// bound send buffers) and returns the first error observed.
//
//repro:noalloc
func (w *Worker) waitHalo() error {
	var first error
	for _, r := range w.recvReqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range w.sendReqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Step performs one distributed multiplication Y = A·X in the given mode.
// The caller must have filled X[0:NLocal] with the owned RHS elements. A
// transport failure during the halo exchange is returned as an error (and
// the cluster submission carrying the Step reports it).
func (w *Worker) Step(mode Mode) error {
	switch mode {
	case VectorNoOverlap:
		return w.stepNoOverlap()
	case VectorNaiveOverlap:
		return w.stepNaiveOverlap()
	case TaskMode:
		return w.stepTaskMode()
	default:
		return fmt.Errorf("core: unknown mode %v", mode)
	}
}

//repro:noalloc
func (w *Worker) stepNoOverlap() error {
	if err := w.postRecvs(); err != nil {
		return err
	}
	if err := w.gatherAndSend(); err != nil {
		return err
	}
	if err := w.waitHalo(); err != nil {
		return err
	}
	// Full kernel: one pass, result written once (code balance Eq. 1). Runs
	// on whatever storage format the plan carries (CSR by default).
	w.Team.Exec(w.fullRegion)
	return nil
}

// localPass computes the split-local half Y = A_local·X on the team, in
// whatever storage format the plan carries (CSR by default, the converted
// format after Plan.ConvertFormat).
//
//repro:noalloc
func (w *Worker) localPass() {
	w.Team.Exec(w.localRegion)
}

// remotePass computes Y += A_remote·X on the compacted remote matrix: only
// halo-coupled rows are touched, so the Eq. (2) write-twice penalty scales
// with the halo.
//
//repro:noalloc
func (w *Worker) remotePass() {
	w.Team.Exec(w.remoteRegion)
}

//repro:noalloc
func (w *Worker) stepNaiveOverlap() error {
	if err := w.postRecvs(); err != nil {
		return err
	}
	if err := w.gatherAndSend(); err != nil {
		return err
	}
	// Local part first — intended to overlap the transfers, but with
	// standard MPI progress semantics nothing moves until waitHalo.
	w.localPass()
	if err := w.waitHalo(); err != nil {
		return err
	}
	w.remotePass()
	return nil
}

//repro:noalloc
func (w *Worker) stepTaskMode() error {
	if err := w.postRecvs(); err != nil {
		return err
	}
	if err := w.gatherAndSend(); err != nil {
		return err
	}
	// Functional decomposition on the resident executor: the compiled
	// local-pass region is launched asynchronously on the team while this
	// goroutine — the dedicated communication thread — sits inside the halo
	// wait, driving progress. No per-step goroutine or channel: the
	// rendezvous is the team's own sense-reversing barrier, restarted.
	w.Team.Start(w.localRegion)
	err := w.waitHalo()
	w.Team.Join() // the omp_barrier of Fig. 4c
	if err != nil {
		return err
	}
	w.remotePass()
	return nil
}
