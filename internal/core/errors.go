package core

import "fmt"

// PeerError identifies the SUSPECT of a world failure: the rank (or the
// contiguous rank range owned by one OS process) believed to have died or
// hung, and the phase in which the suspicion arose. It typically appears
// as the Cause of a *WorldError, so a chaos-run failure log pinpoints who
// died instead of reporting an anonymous connection loss:
//
//	world failed: rank 2 suspected dead or hung during collective: ...
//
// The transports thread it through every detection path: tcpmpi's
// EOF-without-BYE reader loop (PhaseFrameRead), its heartbeat monitor
// (PhaseHeartbeat), the optional per-collective deadline (PhaseCollective),
// the mesh bring-up (PhaseHandshake), and faultmpi's injected kills
// (PhaseSend). The Supervisor treats any error chain containing a
// PeerError or WorldError as recoverable.
type PeerError struct {
	// RankLo, RankHi delimit the suspect rank range [RankLo, RankHi) —
	// a single rank when RankHi == RankLo+1, a whole process's range when
	// the suspicion is connection-level (a dead process takes all its
	// ranks with it).
	RankLo, RankHi int
	// Phase names the detection site: one of the Phase* constants.
	Phase string
	// Err is the underlying observation (EOF, deadline, injected fault).
	Err error
}

// Detection phases of a PeerError.
const (
	PhaseHandshake  = "handshake"  // world bring-up: rendezvous or mesh
	PhaseFrameRead  = "frame read" // a peer connection died mid-world (EOF without BYE)
	PhaseHeartbeat  = "heartbeat"  // no traffic within the heartbeat timeout
	PhaseCollective = "collective" // a rank missed a collective deadline
	PhaseSend       = "send"       // an outbound operation failed (or was fault-injected)
	PhaseSlow       = "slow"       // gray failure: the peer is alive but degraded past the slow-peer threshold
)

func (e *PeerError) Error() string {
	who := fmt.Sprintf("rank %d", e.RankLo)
	if e.RankHi > e.RankLo+1 {
		who = fmt.Sprintf("ranks [%d,%d)", e.RankLo, e.RankHi)
	}
	if e.Phase == PhaseSlow {
		return fmt.Sprintf("core: %s suspected slow (alive but degraded): %v", who, e.Err)
	}
	return fmt.Sprintf("core: %s suspected dead or hung during %s: %v", who, e.Phase, e.Err)
}

// Unwrap exposes the underlying observation.
func (e *PeerError) Unwrap() error { return e.Err }
