package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// FormatTokens returns the grammar of every name ParseFormat accepts —
// the concrete tokens plus the SELL-C-σ pattern — for command-line help
// and API error messages. The pattern entry is a template, not a literal
// token: any "sell-<C>-<sigma>" with positive integers parses.
func FormatTokens() []string {
	return []string{"crs", "csr", "sell-<C>-<sigma> (e.g. sell-32-256)"}
}

// ParseFormat maps a storage-format name to its FormatBuilder — the format
// counterpart of ParseMode, so command-line sweeps can be restricted to one
// scheme. It accepts the builders' canonical Name() spellings:
//
//	"crs" (alias "csr")      → matrix.CSRBuilder{}
//	"sell-<C>-<sigma>"       → formats.SELLBuilder{C, Sigma}, e.g. "sell-32-256"
//
// An unknown or malformed name yields an error that enumerates the valid
// tokens (FormatTokens).
func ParseFormat(s string) (matrix.FormatBuilder, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	switch name {
	case "crs", "csr":
		return matrix.CSRBuilder{}, nil
	}
	if rest, ok := strings.CutPrefix(name, "sell-"); ok {
		cStr, sigmaStr, ok := strings.Cut(rest, "-")
		if ok {
			c, errC := strconv.Atoi(cStr)
			sigma, errS := strconv.Atoi(sigmaStr)
			if errC == nil && errS == nil && c > 0 && sigma > 0 {
				return formats.SELLBuilder{C: c, Sigma: sigma}, nil
			}
		}
		return nil, fmt.Errorf("core: malformed SELL-C-σ format %q (want sell-<C>-<sigma> with positive integers, e.g. sell-32-256)", s)
	}
	return nil, fmt.Errorf("core: unknown format %q (valid: %s)", s, strings.Join(FormatTokens(), ", "))
}
