// Package core implements the paper's contribution: distributed-memory
// parallel sparse matrix-vector multiplication with three kernel
// organizations — vector mode without overlap, vector mode with naive
// nonblocking overlap, and task mode with a dedicated communication thread
// (Fig. 4) — on top of an nonzero-balanced row partition and a
// precomputed halo-exchange communication plan.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/matrix"
	"repro/internal/spmv"
)

// Partition assigns contiguous row blocks to ranks, balancing the nonzero
// count per rank (the paper distributes nonzeros, not rows; §3.1 footnote).
type Partition struct {
	Ranks  []spmv.Range // Ranks[r] = rows owned by rank r
	starts []int        // starts[r] = first row of rank r, plus sentinel
}

// NewPartition wraps explicit row ranges (must tile [0, rows)).
func NewPartition(ranges []spmv.Range) *Partition {
	p := &Partition{Ranks: ranges, starts: make([]int, len(ranges)+1)}
	for r, rg := range ranges {
		p.starts[r] = rg.Lo
	}
	if len(ranges) > 0 {
		p.starts[len(ranges)] = ranges[len(ranges)-1].Hi
	}
	return p
}

// PartitionByNnz streams the pattern once and splits the rows into `ranks`
// contiguous blocks of approximately equal nonzero count.
func PartitionByNnz(src matrix.PatternSource, ranks int) *Partition {
	if ranks < 1 {
		panic(fmt.Sprintf("core: ranks %d < 1", ranks))
	}
	counts := matrix.RowNnzCounts(src)
	prefix := make([]int64, len(counts)+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
	}
	return NewPartition(spmv.BalanceNnz(prefix, ranks))
}

// PartitionByRows splits rows into equal-count blocks regardless of
// nonzeros; used as the load-imbalanced baseline in ablation benchmarks.
func PartitionByRows(rows, ranks int) *Partition {
	if ranks < 1 {
		panic(fmt.Sprintf("core: ranks %d < 1", ranks))
	}
	ranges := make([]spmv.Range, ranks)
	for r := 0; r < ranks; r++ {
		ranges[r] = spmv.Range{Lo: r * rows / ranks, Hi: (r + 1) * rows / ranks}
	}
	return NewPartition(ranges)
}

// NumRanks returns the number of ranks.
func (p *Partition) NumRanks() int { return len(p.Ranks) }

// Rows returns the total row count.
func (p *Partition) Rows() int {
	if len(p.Ranks) == 0 {
		return 0
	}
	return p.Ranks[len(p.Ranks)-1].Hi
}

// Owner returns the rank owning the given row.
func (p *Partition) Owner(row int) int {
	if row < 0 || row >= p.Rows() {
		panic(fmt.Sprintf("core: row %d outside [0,%d)", row, p.Rows()))
	}
	// Find the last start ≤ row. Empty ranges make starts non-strictly
	// monotone; the search still lands on the unique non-empty owner.
	r := sort.Search(len(p.Ranks), func(r int) bool { return p.starts[r+1] > row })
	return r
}

// Validate checks that the ranges tile [0, rows).
func (p *Partition) Validate() error {
	lo := 0
	for r, rg := range p.Ranks {
		if rg.Lo != lo || rg.Hi < rg.Lo {
			return fmt.Errorf("core: rank %d range %+v does not continue at %d", r, rg, lo)
		}
		lo = rg.Hi
	}
	return nil
}

// Imbalance returns maxNnz/avgNnz over ranks for the given pattern — the
// load-balance metric of the evaluation.
func (p *Partition) Imbalance(src matrix.PatternSource) float64 {
	counts := matrix.RowNnzCounts(src)
	var total, maxR int64
	for _, rg := range p.Ranks {
		var n int64
		for i := rg.Lo; i < rg.Hi; i++ {
			n += counts[i]
		}
		total += n
		if n > maxR {
			maxR = n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxR) * float64(len(p.Ranks)) / float64(total)
}

// concurrentRanks bounds plan-building parallelism.
var concurrentRanks = 8

// forEachRank runs fn(rank) for every rank, a few in parallel. Pattern
// sources are required to support concurrent reads of disjoint rows.
func forEachRank(ranks int, fn func(r int)) {
	sem := make(chan struct{}, concurrentRanks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(r)
		}(r)
	}
	wg.Wait()
}
