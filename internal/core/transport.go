package core

import (
	"fmt"
	"strings"
)

// TransportKind names one of the runtime's World transports. It completes
// the ParseMode/ParseFormat family for command lines and HTTP parameters;
// mapping a kind to a concrete Transport happens in the binaries, because
// core cannot import the transport packages that import it.
type TransportKind int

const (
	// TransportChan is the in-process channel transport (chanmpi): every
	// rank a goroutine, zero-copy delivery, the conformance baseline.
	TransportChan TransportKind = iota
	// TransportTCP is the socket transport (tcpmpi): ranks spread across
	// OS processes or hosts, framed wire protocol, heartbeats.
	TransportTCP
	// TransportSim is the simulated transport (simnet): every rank local,
	// data moves for real but time is virtual — capacity planning at rank
	// counts no real host could run.
	TransportSim
)

func (k TransportKind) String() string {
	switch k {
	case TransportChan:
		return "chan"
	case TransportTCP:
		return "tcp"
	case TransportSim:
		return "sim"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// TransportKinds lists all transports in presentation order.
var TransportKinds = []TransportKind{TransportChan, TransportTCP, TransportSim}

// transportTokens is the single source of truth for every spelling
// ParseTransport accepts: the canonical String() name of each kind first,
// its package-name alias after it. ParseTransport's error enumerates
// exactly this table.
var transportTokens = []struct {
	tok  string
	kind TransportKind
}{
	{"chan", TransportChan},
	{"chanmpi", TransportChan},
	{"tcp", TransportTCP},
	{"tcpmpi", TransportTCP},
	{"sim", TransportSim},
	{"simnet", TransportSim},
}

// TransportTokens returns every spelling ParseTransport accepts, canonical
// names first — the list command-line help and error messages enumerate.
func TransportTokens() []string {
	out := make([]string, len(transportTokens))
	for i, e := range transportTokens {
		out[i] = e.tok
	}
	return out
}

// ParseTransport maps a transport name to its TransportKind. It accepts
// the canonical String() names ("chan", "tcp", "sim") and the package-name
// aliases listed by TransportTokens; an unknown name yields an error that
// enumerates every valid token.
func ParseTransport(s string) (TransportKind, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, e := range transportTokens {
		if e.tok == name {
			return e.kind, nil
		}
	}
	return 0, fmt.Errorf("core: unknown transport %q (valid: %s)", s, strings.Join(TransportTokens(), ", "))
}
