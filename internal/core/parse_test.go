package core

import (
	"strings"
	"testing"
)

// Every token ModeTokens advertises must parse, and the canonical name of
// each mode must round-trip through ParseMode.
func TestParseModeAcceptsEveryToken(t *testing.T) {
	for _, tok := range ModeTokens() {
		if _, err := ParseMode(tok); err != nil {
			t.Errorf("ParseMode(%q): %v", tok, err)
		}
	}
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m, err)
		}
		if got != m {
			t.Errorf("ParseMode(%q) = %v", m, got)
		}
	}
	if _, err := ParseMode("  Task "); err != nil {
		t.Errorf("ParseMode should trim and lowercase: %v", err)
	}
}

// A bad mode must name every valid spelling — the error doubles as the
// help text for the -mode flag and the serving API's 400 response.
func TestParseModeErrorEnumeratesTokens(t *testing.T) {
	_, err := ParseMode("bogus")
	if err == nil {
		t.Fatal("ParseMode(bogus) succeeded")
	}
	for _, tok := range ModeTokens() {
		if !strings.Contains(err.Error(), tok) {
			t.Errorf("error %q does not mention token %q", err, tok)
		}
	}
}

// Every token TransportTokens advertises must parse, and the canonical
// name of each kind must round-trip through ParseTransport.
func TestParseTransportAcceptsEveryToken(t *testing.T) {
	for _, tok := range TransportTokens() {
		if _, err := ParseTransport(tok); err != nil {
			t.Errorf("ParseTransport(%q): %v", tok, err)
		}
	}
	for _, k := range TransportKinds {
		got, err := ParseTransport(k.String())
		if err != nil {
			t.Fatalf("ParseTransport(%q): %v", k, err)
		}
		if got != k {
			t.Errorf("ParseTransport(%q) = %v", k, got)
		}
	}
	if _, err := ParseTransport("  Simnet "); err != nil {
		t.Errorf("ParseTransport should trim and lowercase: %v", err)
	}
}

// A bad transport must name every valid spelling — the error doubles as
// the help text for the -transport flag.
func TestParseTransportErrorEnumeratesTokens(t *testing.T) {
	_, err := ParseTransport("bogus")
	if err == nil {
		t.Fatal("ParseTransport(bogus) succeeded")
	}
	for _, tok := range TransportTokens() {
		if !strings.Contains(err.Error(), tok) {
			t.Errorf("error %q does not mention token %q", err, tok)
		}
	}
}

func TestParseFormatErrorEnumeratesTokens(t *testing.T) {
	_, err := ParseFormat("bogus")
	if err == nil {
		t.Fatal("ParseFormat(bogus) succeeded")
	}
	for _, tok := range FormatTokens() {
		if !strings.Contains(err.Error(), tok) {
			t.Errorf("error %q does not mention token %q", err, tok)
		}
	}
	// The SELL template is a pattern, not a literal token: concrete
	// instances parse, the template itself does not.
	if _, err := ParseFormat("sell-8-64"); err != nil {
		t.Errorf("ParseFormat(sell-8-64): %v", err)
	}
	if _, err := ParseFormat("csr"); err != nil {
		t.Errorf("ParseFormat(csr): %v", err)
	}
	if _, err := ParseFormat("sell-0-64"); err == nil {
		t.Error("ParseFormat(sell-0-64) should fail")
	}
}
