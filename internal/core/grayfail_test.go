package core_test

// The end-to-end gray-failure drill: one rank's outbound halo frames are
// made persistently late through a deterministic faultmpi Slowdown — the
// rank is alive, its messages arrive, just slowly. A request with a
// deadline shorter than the injected latency misses it with a typed
// *core.DeadlineError; a request without one rides the slowness out and
// still computes the exact answer; and after a rebuild on a healthy
// transport (the supervisor's move: leave the degraded environment
// behind) later traffic is bit-identical to the reference product.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
)

func TestMulContextDeadlineUnderInjectedSlowRank(t *testing.T) {
	const injected = 250 * time.Millisecond
	a, plan := supervisorPlan(t, 3)
	slowTr := &faultmpi.Transport{Sched: faultmpi.Schedule{Slowdowns: []faultmpi.Slowdown{
		{Src: 1, Dst: faultmpi.Any, Tag: faultmpi.Any, Delay: injected},
	}}}
	cl, err := core.NewCluster(plan, core.WithTransport(slowTr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	n := a.NumRows
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%11) - 5
	}
	want := make([]float64, n)
	a.MulVec(want, x)

	// An unaffected request — no deadline — completes exactly despite the
	// slow rank: gray failures degrade latency, never correctness.
	if err := cl.Mul(y, x, 1); err != nil {
		t.Fatalf("deadline-free Mul on the slowed cluster: %v", err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("slowed y[%d] = %g, want %g (slowness must not change the numerics)", i, y[i], want[i])
		}
	}

	// The affected request: a deadline far below the injected latency.
	// Only THIS request fails, and with the typed final error.
	ctx, cancel := context.WithTimeout(context.Background(), injected/5)
	defer cancel()
	err = cl.MulContext(ctx, y, x, 1)
	var de *core.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("deadlined Mul against the slow rank returned %v, want a *core.DeadlineError", err)
	}
	if de.Op != "Mul" || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError = {Op:%q, Err:%v}, want Op Mul wrapping context.DeadlineExceeded", de.Op, de.Err)
	}
	if core.Recoverable(err) {
		t.Fatal("the deadline verdict is final for the request — must not be Recoverable")
	}
	// The mid-job cut poisoned the world, as any interrupt does; the
	// supervisor would rebuild for the NEXT request, not replay this one.
	if cl.Failed() == nil {
		t.Fatal("mid-job deadline should leave the cluster poisoned (Failed() == nil)")
	}

	// Rebuild on a healthy transport — the restart that leaves the
	// degraded peer behind — and verify later traffic is bit-identical.
	fresh, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for i := range y {
		y[i] = 0
	}
	if err := fresh.Mul(y, x, 1); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("post-recovery y[%d] = %g, want %g (later traffic must be bit-identical)", i, y[i], want[i])
		}
	}
}
