package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Supervisor is the recovery layer of the runtime: it runs epochs of work
// on a resident Cluster and, when an epoch dies of a world failure — a
// peer crashed (EOF without BYE), a heartbeat timeout, a missed
// collective deadline, an injected fault — it dials a FRESH world,
// rebuilds the cluster from the same plan, and hands the next epoch to
// the body, which resumes from its latest checkpoint (the solver
// checkpoints are designed so the resumed trajectory is bit-identical to
// an uninterrupted run). Restarts are bounded and spaced by exponential
// backoff with deterministic jitter, so a permanently dead peer does not
// turn into a dial storm.
type Supervisor struct {
	// Transport returns the transport to dial for the given epoch. It is
	// called once per attempt, so a tcpmpi transport can re-rendezvous
	// with restarted peer processes; nil (or a nil return) means the
	// in-process ChanTransport.
	Transport func(epoch int) Transport
	// Options configure each epoch's cluster (mode, threads, format) on
	// top of the supervisor's own transport and dial-context options.
	Options []Option
	// MaxRestarts bounds recovery attempts across the Run (default 3).
	// Failed dials and failed epochs both count; the counter never
	// resets, so a world that keeps dying eventually surfaces its cause.
	MaxRestarts int
	// Backoff is the delay before the first restart (default 100ms),
	// doubled per consecutive restart up to BackoffMax (default 5s),
	// jittered ±25% deterministically from Seed.
	Backoff    time.Duration
	BackoffMax time.Duration
	Seed       int64
	// DialTimeout bounds each epoch's world bring-up (default 30s),
	// inside whatever deadline the Run context already carries.
	DialTimeout time.Duration
	// OnRetry, when non-nil, observes each recovery decision before the
	// backoff sleep — the hook for logging who died and when.
	OnRetry func(epoch int, cause error, delay time.Duration)
}

// EpochFunc runs one epoch of supervised work on a freshly built cluster.
// epoch counts from 0 and increments per attempt, so the body can tell a
// first run from a resumption and restore its latest checkpoint.
type EpochFunc func(epoch int, cl *Cluster) error

// Recoverable reports whether an error is a world-level failure — a
// *WorldError or *PeerError anywhere in its chain — i.e. the kind of
// death a fresh world and a checkpoint can recover from, as opposed to a
// deterministic error (bad dimensions, a solver breakdown) that would
// just fail again.
//
// A *DeadlineError anywhere in the chain overrides that: even though a
// mid-job deadline kills the world through the interrupt path (and the
// kill surfaces as a WorldError to the other ranks), re-running work
// whose deadline has already passed just misses it again, so the request
// that carried the deadline is final. The CLUSTER may still be worth
// rebuilding — that decision belongs to its owner (e.g. a serve session
// restarts the epoch for the batch-mates), not to the expired request.
func Recoverable(err error) bool {
	var de *DeadlineError
	if errors.As(err, &de) {
		return false
	}
	var we *WorldError
	var pe *PeerError
	return errors.As(err, &we) || errors.As(err, &pe)
}

// Run supervises body until it completes, fails unrecoverably, exhausts
// MaxRestarts, or ctx is cancelled. Each attempt dials a fresh world and
// builds a fresh cluster; ctx cancellation interrupts a running epoch
// (Cluster.Interrupt — the graceful BYE path), and the cluster is always
// closed before the next attempt.
func (s *Supervisor) Run(ctx context.Context, plan *Plan, body EpochFunc) error {
	maxRestarts := s.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 3
	}
	dialTimeout := s.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 30 * time.Second
	}
	jitter := uint64(s.Seed)*0x9e3779b97f4a7c15 + 0x1d8e4e27c47d124f

	restarts := 0
	var firstCause error // the failure that started the retry chain
	for epoch := 0; ; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var tr Transport
		if s.Transport != nil {
			tr = s.Transport(epoch)
		}
		if tr == nil {
			tr = ChanTransport{}
		}
		dialCtx, cancel := context.WithTimeout(ctx, dialTimeout)
		opts := make([]Option, 0, len(s.Options)+2)
		opts = append(opts, s.Options...)
		opts = append(opts, WithTransport(tr), WithDialContext(dialCtx))
		cl, err := NewCluster(plan, opts...)
		cancel()
		if err == nil {
			// The interrupt hook covers exactly the body's lifetime: a
			// cancellation mid-epoch closes the world (BYE flushed), the
			// blocked job returns a *WorldError, and the ctx check below
			// turns it into the context's error instead of a restart.
			stop := context.AfterFunc(ctx, cl.Interrupt)
			err = body(epoch, cl)
			stop()
			cl.Close()
			if err == nil {
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !Recoverable(err) {
				return err
			}
		}
		// A dial failure is always worth retrying (rendezvous with peers
		// that are themselves being restarted is inherently transient);
		// a body failure only when it is world-level.
		restarts++
		if firstCause == nil {
			firstCause = err
		}
		if restarts > maxRestarts {
			// Surface the FIRST epoch's cause, not whatever the final
			// backoff attempt happened to die of: once every restart has
			// been burnt, the original failure is the diagnosis; the last
			// error is usually just a rendezvous timeout against peers that
			// gave up too.
			if !errors.Is(err, firstCause) && err != nil {
				return fmt.Errorf("core: supervisor giving up after %d restarts (last attempt: %v): %w", restarts-1, err, firstCause)
			}
			return fmt.Errorf("core: supervisor giving up after %d restarts: %w", restarts-1, firstCause)
		}
		delay := s.Backoff
		if delay <= 0 {
			delay = 100 * time.Millisecond
		}
		maxDelay := s.BackoffMax
		if maxDelay <= 0 {
			maxDelay = 5 * time.Second
		}
		for i := 1; i < restarts && delay < maxDelay; i++ {
			delay *= 2
		}
		if delay > maxDelay {
			delay = maxDelay
		}
		// ±25% deterministic jitter (splitmix64), so restarting processes
		// with different seeds don't re-rendezvous in lockstep.
		jitter += 0x9e3779b97f4a7c15
		z := jitter
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		delay = delay*3/4 + time.Duration(z%uint64(delay/2+1))
		if s.OnRetry != nil {
			s.OnRetry(epoch, err, delay)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}
