package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/matrix"
	"repro/internal/spmv"
)

// Exchange describes one halo segment exchanged with a peer rank.
type Exchange struct {
	Peer int
	// Count is the number of vector elements in the segment.
	Count int
	// Offset locates the segment: for receives, the offset into the halo
	// region of the local RHS vector; for sends, the offset into the
	// per-peer gather index list (always 0..Count of Indices).
	Offset int
	// Indices are, for sends, the local indices (relative to the owned row
	// block) of the elements to gather into the send buffer. Nil for
	// receives: halo segments are received contiguously in place.
	Indices []int32
}

// RankPlan is everything one rank needs to run the distributed SpMV:
// its owned rows, the renumbered local matrix (and its local/remote column
// split), and the send/receive schedule.
//
// Column renumbering: owned columns map to [0, NLocal); halo columns map to
// NLocal + position in the sorted halo list. Because row ownership is
// contiguous and the halo list is sorted by global index, each peer's halo
// entries form one contiguous segment — receives land directly in the RHS
// vector without a scatter pass.
type RankPlan struct {
	Rank   int
	Rows   spmv.Range
	NLocal int

	// HaloCols lists the global column indices of the halo, ascending.
	HaloCols []int32

	// RecvFrom and SendTo are ordered by peer rank.
	RecvFrom []Exchange
	SendTo   []Exchange

	// A is the full renumbered local matrix (vector mode without overlap
	// runs one kernel over it). Split is the same matrix divided at column
	// NLocal into local and remote parts (used by both overlap modes); its
	// remote half is compacted to the halo-coupled rows. Both are nil when
	// the plan was built pattern-only.
	A     *matrix.CSR
	Split *spmv.Split

	// Format, when non-nil, is an alternative storage scheme for the full
	// local matrix; the no-overlap mode then runs its kernel instead of the
	// CSR one. SplitFormat is the matching format-generic split (local half
	// in the same scheme, remote half the shared compacted CSR) that the
	// overlap and task modes run on. Plan.ConvertFormat sets both together;
	// NewWorker rejects a plan with only one of them set, so the modes can
	// never silently disagree on storage.
	Format      matrix.Format
	SplitFormat *spmv.FormatSplit

	// NnzLocal and NnzRemote count the entries touching owned and halo
	// columns, available even for pattern-only plans.
	NnzLocal, NnzRemote int64
}

// HaloSize returns the number of halo elements this rank receives.
func (rp *RankPlan) HaloSize() int { return len(rp.HaloCols) }

// VectorLen returns the length of the local RHS vector (owned + halo).
func (rp *RankPlan) VectorLen() int { return rp.NLocal + len(rp.HaloCols) }

// Plan is the full communication plan for a partition.
type Plan struct {
	Part  *Partition
	Ranks []*RankPlan
}

// Bytes estimates the plan's resident heap footprint: every rank's
// renumbered local matrix, its column split (the same entries again,
// divided into a local half and the compacted remote), any converted
// storage format, and the halo metadata. It is an accounting estimate for
// residency budgets (the serving registry evicts against it), not an
// exact heap measurement.
func (p *Plan) Bytes() int64 {
	var total int64
	for _, rp := range p.Ranks {
		total += 4 * int64(len(rp.HaloCols))
		for _, tx := range rp.SendTo {
			total += 4 * int64(len(tx.Indices))
		}
		if rp.A == nil {
			continue
		}
		// CSR storage: 8-byte value + 4-byte column index per entry, plus
		// the row-pointer array.
		csr := 12*rp.A.Nnz() + 8*int64(rp.A.NumRows+1)
		total += csr // full local matrix
		total += csr // column split: local half + compacted remote ≈ the same entries
		if rp.Format != nil {
			if _, isCSR := rp.Format.(*matrix.CSR); !isCSR {
				total += 2 * csr // converted full matrix + converted split-local half
			}
		}
	}
	return total
}

// BuildPlan constructs the communication plan for every rank. When src also
// implements matrix.ValueSource and withValues is true, the renumbered local
// matrices are materialized so the plan can execute real multiplications;
// otherwise the plan carries structure only (enough for the simulator).
func BuildPlan(src matrix.PatternSource, part *Partition, withValues bool) (*Plan, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	rows, cols := src.Dims()
	if part.Rows() != rows {
		return nil, fmt.Errorf("core: partition covers %d rows, matrix has %d", part.Rows(), rows)
	}
	if rows != cols {
		return nil, fmt.Errorf("core: distributed SpMV requires a square matrix, got %dx%d", rows, cols)
	}
	var vsrc matrix.ValueSource
	if withValues {
		var ok bool
		vsrc, ok = src.(matrix.ValueSource)
		if !ok {
			return nil, fmt.Errorf("core: withValues requires a matrix.ValueSource")
		}
	}

	plan := &Plan{Part: part, Ranks: make([]*RankPlan, part.NumRanks())}
	errs := make([]error, part.NumRanks())
	forEachRank(part.NumRanks(), func(r int) {
		rp, err := buildRankPlan(src, vsrc, part, r)
		plan.Ranks[r] = rp
		errs[r] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Invert the receive lists into send lists: rank p must send to q the
	// elements of q's halo that p owns.
	for q, qp := range plan.Ranks {
		for _, rx := range qp.RecvFrom {
			p := rx.Peer
			seg := qp.HaloCols[rx.Offset : rx.Offset+rx.Count]
			idx := make([]int32, len(seg))
			base := int32(part.Ranks[p].Lo)
			for i, g := range seg {
				idx[i] = g - base
			}
			plan.Ranks[p].SendTo = append(plan.Ranks[p].SendTo, Exchange{
				Peer: q, Count: len(idx), Indices: idx,
			})
		}
	}
	for _, rp := range plan.Ranks {
		sort.Slice(rp.SendTo, func(i, j int) bool { return rp.SendTo[i].Peer < rp.SendTo[j].Peer })
	}
	return plan, nil
}

// ConvertFormat converts every rank's local matrix to the builder's storage
// scheme (e.g. formats.SELLBuilder) — both the full matrix the no-overlap
// kernel runs on and the local half of the column split the overlap and
// task modes run on. The split's local half is built directly from the full
// local matrix restricted to the owned columns [0, NLocal); the compacted
// remote half is shared with the CSR split (it stays a CompactCSR — its
// halo-coupled rows are short and scattered, where chunked formats have
// nothing to offer). Every mode therefore runs on the converted format; a
// plan can never end up with modes disagreeing on storage. The plan must
// have been built with values.
func (p *Plan) ConvertFormat(b matrix.FormatBuilder) error {
	// Convert everything first, assign only on full success: a mid-loop
	// failure must not leave the plan half-converted.
	full := make([]matrix.Format, len(p.Ranks))
	split := make([]*spmv.FormatSplit, len(p.Ranks))
	for i, rp := range p.Ranks {
		if rp.A == nil {
			return fmt.Errorf("core: rank %d has no local matrix (pattern-only plan)", rp.Rank)
		}
		f, err := b.Build(rp.A)
		if err != nil {
			return fmt.Errorf("core: rank %d %s conversion: %w", rp.Rank, b.Name(), err)
		}
		full[i] = f
		if csr, ok := f.(*matrix.CSR); ok && csr == rp.A {
			// Identity conversion (matrix.CSRBuilder): the plan's split
			// already is the column-restricted local half; don't copy it.
			split[i] = rp.Split.AsFormatSplit()
			continue
		}
		local, err := b.BuildColRange(rp.A, 0, rp.NLocal)
		if err != nil {
			return fmt.Errorf("core: rank %d %s split conversion: %w", rp.Rank, b.Name(), err)
		}
		split[i] = &spmv.FormatSplit{Local: local, Remote: rp.Split.Remote, LocalCols: rp.NLocal}
	}
	for i, rp := range p.Ranks {
		rp.Format = full[i]
		rp.SplitFormat = split[i]
	}
	return nil
}

// buildRankPlan streams this rank's rows, computes the halo, renumbers
// columns, and optionally materializes the local matrix.
func buildRankPlan(src matrix.PatternSource, vsrc matrix.ValueSource, part *Partition, rank int) (*RankPlan, error) {
	rg := part.Ranks[rank]
	rp := &RankPlan{Rank: rank, Rows: rg, NLocal: rg.Len()}

	// Pass 1: collect the distinct nonlocal columns. Duplicates are
	// appended and squeezed out after one concrete-typed sort — a set map
	// here (one hash per remote nonzero) dominated full-scale plan builds.
	lo32, hi32 := int32(rg.Lo), int32(rg.Hi)
	var halo, buf []int32
	for i := rg.Lo; i < rg.Hi; i++ {
		buf = src.AppendRow(i, buf[:0])
		for _, c := range buf {
			if c < lo32 || c >= hi32 {
				halo = append(halo, c)
			} else {
				rp.NnzLocal++
			}
		}
		rp.NnzRemote += int64(len(buf))
	}
	rp.NnzRemote -= rp.NnzLocal

	slices.Sort(halo)
	rp.HaloCols = slices.Compact(halo)

	// Group the sorted halo by owner rank; ownership is contiguous, so each
	// peer occupies one contiguous segment.
	for s := 0; s < len(rp.HaloCols); {
		owner := part.Owner(int(rp.HaloCols[s]))
		e := s
		ownerHi := int32(part.Ranks[owner].Hi)
		for e < len(rp.HaloCols) && rp.HaloCols[e] < ownerHi {
			e++
		}
		rp.RecvFrom = append(rp.RecvFrom, Exchange{Peer: owner, Count: e - s, Offset: s})
		s = e
	}

	if vsrc == nil {
		return rp, nil
	}

	// Pass 2: materialize the renumbered local matrix.
	a := &matrix.CSR{
		NumRows: rp.NLocal,
		NumCols: rp.VectorLen(),
		RowPtr:  make([]int64, rp.NLocal+1),
	}
	var cbuf []int32
	var vbuf []float64
	for i := rg.Lo; i < rg.Hi; i++ {
		cbuf, vbuf = vsrc.AppendRowValues(i, cbuf[:0], vbuf[:0])
		for k, c := range cbuf {
			var local int32
			if c >= lo32 && c < hi32 {
				local = c - lo32
			} else {
				h := sort.Search(len(rp.HaloCols), func(j int) bool { return rp.HaloCols[j] >= c })
				local = int32(rp.NLocal + h)
			}
			a.ColIdx = append(a.ColIdx, local)
			a.Val = append(a.Val, vbuf[k])
		}
		a.RowPtr[i-rg.Lo+1] = int64(len(a.ColIdx))
	}
	a.SortRows()
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: rank %d local matrix: %w", rank, err)
	}
	rp.A = a
	rp.Split = spmv.NewSplit(a, rp.NLocal)
	return rp, nil
}
