// Package stream implements the STREAM kernels (McCalpin) used by the paper
// as the practical upper bandwidth limit for the spMVM (§2, Fig. 3). The
// triad a(i) = b(i) + s·c(i) is the reference; reported bandwidths include
// the write-allocate transfer on the store stream (the paper scales its
// numbers by 4/3 for the same reason).
package stream

import (
	"fmt"
	"time"

	"repro/internal/spmv"
)

// Result is one STREAM measurement.
type Result struct {
	Kernel      string
	N           int
	Workers     int
	BytesPerSec float64 // effective bandwidth including write-allocate
	BestTime    float64 // seconds for one sweep
}

// Triad measures a(i) = b(i) + s·c(i) over n elements with the given worker
// team, taking the best of `reps` sweeps. Counted traffic per element:
// 8 (load b) + 8 (load c) + 8 (write-allocate a) + 8 (store a) = 32 bytes.
func Triad(n, reps, workers int) Result {
	return run("triad", n, reps, workers, 32, func(a, b, c []float64, lo, hi int) {
		const s = 3.0
		for i := lo; i < hi; i++ {
			a[i] = b[i] + s*c[i]
		}
	})
}

// Copy measures a(i) = b(i). Traffic: 8 + 8 + 8 = 24 bytes per element.
func Copy(n, reps, workers int) Result {
	return run("copy", n, reps, workers, 24, func(a, b, c []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i]
		}
	})
}

// Add measures a(i) = b(i) + c(i). Traffic: 32 bytes per element.
func Add(n, reps, workers int) Result {
	return run("add", n, reps, workers, 32, func(a, b, c []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i] + c[i]
		}
	})
}

func run(kernel string, n, reps, workers, bytesPerElem int, body func(a, b, c []float64, lo, hi int)) Result {
	if n < 1 || reps < 1 || workers < 1 {
		panic(fmt.Sprintf("stream: invalid parameters n=%d reps=%d workers=%d", n, reps, workers))
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	team := spmv.NewTeam(workers)
	defer team.Close()
	chunk := func(w int) (int, int) {
		return w * n / workers, (w + 1) * n / workers
	}
	// Warm-up sweep (faults pages, fills caches).
	team.Run(func(w int) {
		lo, hi := chunk(w)
		body(a, b, c, lo, hi)
	})
	best := float64(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		team.Run(func(w int) {
			lo, hi := chunk(w)
			body(a, b, c, lo, hi)
		})
		dt := time.Since(t0).Seconds()
		if best == 0 || dt < best {
			best = dt
		}
	}
	return Result{
		Kernel:      kernel,
		N:           n,
		Workers:     workers,
		BytesPerSec: float64(n) * float64(bytesPerElem) / best,
		BestTime:    best,
	}
}
