package stream

import "testing"

func TestTriadProducesPlausibleBandwidth(t *testing.T) {
	r := Triad(1<<20, 3, 2)
	if r.BytesPerSec < 1e8 {
		t.Errorf("triad bandwidth %.2e B/s implausibly low", r.BytesPerSec)
	}
	if r.BytesPerSec > 1e13 {
		t.Errorf("triad bandwidth %.2e B/s implausibly high", r.BytesPerSec)
	}
	if r.Kernel != "triad" || r.N != 1<<20 || r.Workers != 2 {
		t.Errorf("result metadata wrong: %+v", r)
	}
}

func TestCopyAndAdd(t *testing.T) {
	for _, r := range []Result{Copy(1<<18, 2, 1), Add(1<<18, 2, 1)} {
		if r.BytesPerSec <= 0 || r.BestTime <= 0 {
			t.Errorf("%s: nonpositive measurement %+v", r.Kernel, r)
		}
	}
}

func TestTriadComputesCorrectValues(t *testing.T) {
	// Indirectly verified by reimplementing one sweep here.
	n := 1000
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	for i := range a {
		a[i] = b[i] + 3.0*c[i]
	}
	for i := range a {
		if a[i] != float64(i)+6 {
			t.Fatalf("a[%d] = %g", i, a[i])
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid parameters")
		}
	}()
	Triad(0, 1, 1)
}
