package solver

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual compares float64 slices for exact bit equality — restore
// correctness is defined as bit-identity, not closeness.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDistCGCheckpointRestoreBitIdentical pins the recovery contract end
// to end in-process: a solve snapshotting every k iterations, then a
// SECOND solve on a FRESH cluster restored from the latest snapshot, must
// converge to the bit-identical solution with the bit-identical residual
// history and the same iteration and MVM counts as an uninterrupted
// reference run — the restored trajectory IS the original trajectory.
func TestDistCGCheckpointRestoreBitIdentical(t *testing.T) {
	const tol, maxIter, every = 1e-10, 5000, 20
	a, cl := poissonCluster(t, 5)
	n := a.NumRows
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// Uninterrupted reference.
	xRef := make([]float64, n)
	ref, err := DistCG(cl, b, xRef, tol, maxIter)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Iterations <= 2*every {
		t.Fatalf("reference run unusable for the test: converged=%v in %d iterations (need > %d)",
			ref.Converged, ref.Iterations, 2*every)
	}

	// Checkpointing run: snapshots must not perturb the solve.
	ck := NewCGCheckpoint(cl, maxIter)
	snapshots := 0
	xCkpt := make([]float64, n)
	got, err := DistCGOpt(cl, b, xCkpt, CGOptions{
		Tol: tol, MaxIter: maxIter,
		CheckpointEvery: every, Checkpoint: ck,
		OnCheckpoint: func(c *CGCheckpoint) error { snapshots++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(xCkpt, xRef) || got.Iterations != ref.Iterations {
		t.Fatal("checkpointing perturbed the solve")
	}
	if snapshots == 0 || !ck.Valid() {
		t.Fatalf("no snapshot sealed (%d hooks, valid=%v)", snapshots, ck.Valid())
	}
	if ck.Iter%every != 0 || ck.Iter >= ref.Iterations {
		t.Fatalf("latest snapshot at iteration %d, want a pre-convergence multiple of %d", ck.Iter, every)
	}

	// Restore on a fresh cluster — the crash-recovery path: nothing of the
	// original solve survives except the checkpoint.
	_, cl2 := poissonCluster(t, 5)
	xRec := make([]float64, n) // zeros: the restore must not read x
	rec, err := DistCGOpt(cl2, b, xRec, CGOptions{Tol: tol, MaxIter: maxIter, Restore: ck})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged {
		t.Fatal("restored run did not converge")
	}
	if !bitsEqual(xRec, xRef) {
		t.Fatal("restored solution is not bit-identical to the uninterrupted run")
	}
	if rec.Iterations != ref.Iterations || rec.MVMs != ref.MVMs {
		t.Fatalf("restored run: %d iterations / %d MVMs, reference: %d / %d",
			rec.Iterations, rec.MVMs, ref.Iterations, ref.MVMs)
	}
	if !bitsEqual(rec.History, ref.History) {
		t.Fatal("restored residual history is not bit-identical to the reference")
	}
}

// TestDistLanczosCheckpointRestoreBitIdentical is the Lanczos analogue:
// basis and tridiagonal coefficients restored on a fresh cluster
// reproduce the uninterrupted Ritz values bit for bit.
func TestDistLanczosCheckpointRestoreBitIdentical(t *testing.T) {
	const m, seed, every = 40, int64(11), 10
	_, cl := poissonCluster(t, 4)

	ref, err := DistLanczos(cl, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Steps <= every {
		t.Fatalf("reference took %d steps, need > %d", ref.Steps, every)
	}

	ck := NewLanczosCheckpoint(cl, m)
	got, err := DistLanczosOpt(cl, m, seed, LanczosOptions{CheckpointEvery: every, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Eigenvalues, ref.Eigenvalues) {
		t.Fatal("checkpointing perturbed the iteration")
	}
	if !ck.Valid() || ck.Step%every != 0 {
		t.Fatalf("latest snapshot invalid or off-cadence (valid=%v, step=%d)", ck.Valid(), ck.Step)
	}

	_, cl2 := poissonCluster(t, 4)
	rec, err := DistLanczosOpt(cl2, m, seed, LanczosOptions{Restore: ck})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Steps != ref.Steps || rec.MVMs != ref.MVMs {
		t.Fatalf("restored run: %d steps / %d MVMs, reference: %d / %d", rec.Steps, rec.MVMs, ref.Steps, ref.MVMs)
	}
	if !bitsEqual(rec.Eigenvalues, ref.Eigenvalues) {
		t.Fatal("restored Ritz values are not bit-identical to the reference")
	}
}

// TestCheckpointOptionValidation pins the misuse errors: a cadence with
// no buffer, a restore from an empty snapshot, and a snapshot whose row
// span belongs to a different cluster shape.
func TestCheckpointOptionValidation(t *testing.T) {
	a, cl := poissonCluster(t, 4)
	n := a.NumRows
	b := make([]float64, n)
	b[0] = 1
	x := make([]float64, n)

	if _, err := DistCGOpt(cl, b, x, CGOptions{Tol: 1e-8, MaxIter: 10, CheckpointEvery: 2}); err == nil {
		t.Fatal("cadence without a buffer accepted")
	}
	if _, err := DistCGOpt(cl, b, x, CGOptions{Tol: 1e-8, MaxIter: 10, Restore: NewCGCheckpoint(cl, 10)}); err == nil {
		t.Fatal("restore from an empty checkpoint accepted")
	}
	bad := NewCGCheckpoint(cl, 10)
	bad.Hi = bad.Hi - 1
	bad.Seal()
	if _, err := DistCGOpt(cl, b, x, CGOptions{Tol: 1e-8, MaxIter: 10, Restore: bad}); err == nil {
		t.Fatal("restore with a mismatched row span accepted")
	}
	if _, err := DistLanczosOpt(cl, 10, 1, LanczosOptions{CheckpointEvery: 2}); err == nil {
		t.Fatal("Lanczos cadence without a buffer accepted")
	}
	if _, err := DistLanczosOpt(cl, 10, 1, LanczosOptions{Restore: NewLanczosCheckpoint(cl, 10)}); err == nil {
		t.Fatal("Lanczos restore from an empty checkpoint accepted")
	}
}
