package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// This file implements fully distributed solvers in SPMD style on a
// resident core.Cluster: every rank owns a contiguous slice of each vector,
// every multiplication is one halo exchange + kernel in the cluster's mode,
// and scalar reductions ride the runtime's Allreduce — the structure of the
// paper's application codes, where spMVM dominates and a handful of dot
// products per iteration ride along. The cluster's rank goroutines, teams
// and halo buffers persist across the whole solve (and across consecutive
// solves on the same cluster); nothing is re-spawned per multiplication.
//
// The solvers run on whatever rank subset the cluster drives locally: on
// the default chan transport that is every rank (and the full solution is
// written back); on a multi-process transport each process computes the
// rows its local ranks own, while iteration counts and residuals — derived
// entirely from global reductions — are identical on every process.
//
// Both solvers are storage-format generic in every mode: bring the cluster
// up with core.WithFormat (or call Cluster.Convert between solves) and the
// no-overlap kernel, the overlap local pass and the task-mode local pass
// all run on the converted format, with the compacted remote pass staying
// on the CompactCSR. Each distributed multiplication is bit-identical to
// its CSR counterpart, and reductions combine in canonical rank order on
// every transport, so whole solves are bit-reproducible across runs and
// across transports (the tcpmpi acceptance tests rely on this).
//
// Both solvers preallocate every per-iteration vector and coefficient
// buffer up front (History to maxIter, the Lanczos basis to m vectors), so
// a steady-state iteration — multiplication, axpys, scalar reductions —
// performs zero allocations on the chan transport
// (TestAllocGateDistCGIteration pins this down).

// distDot computes the global dot product of two distributed vectors.
func distDot(c core.Comm, a, b []float64) (float64, error) {
	return c.AllreduceScalar(core.OpSum, Dot(a, b))
}

// runBody dispatches one SPMD body, under a deadline when the options
// carry a context. A cut-short run is re-labelled with the solver's own
// entry point, so callers see Op "DistCG"/"DistLanczos" rather than the
// cluster-level "Run".
func runBody(cl *core.Cluster, ctx context.Context, op string, body func(*core.Worker) error) error {
	if ctx == nil {
		return cl.Run(body)
	}
	err := cl.RunContext(ctx, body)
	var de *core.DeadlineError
	if errors.As(err, &de) {
		return &core.DeadlineError{Op: op, Err: de.Err}
	}
	return err
}

// CGOptions configures DistCGOpt beyond the required tolerance and
// iteration cap: checkpoint cadence and buffers, and a snapshot to
// resume from.
type CGOptions struct {
	Tol     float64
	MaxIter int
	// Context, when non-nil, arms an end-to-end deadline over the whole
	// solve via Cluster.RunContext: expiry or cancellation abandons the
	// solve and surfaces a *core.DeadlineError with Op "DistCG" (final
	// for this request — see the core package's deadline contract).
	Context context.Context
	// CheckpointEvery snapshots the solve state into Checkpoint every k
	// iterations (0 disables). Snapshots happen at the top-of-iteration
	// boundary, overwriting the previous snapshot in place.
	CheckpointEvery int
	// Checkpoint receives the snapshots; required when CheckpointEvery is
	// set, sized by NewCGCheckpoint on the same cluster.
	Checkpoint *CGCheckpoint
	// OnCheckpoint, when non-nil, runs once per completed snapshot —
	// after the last local rank has copied its rows — e.g. to persist it
	// to disk. It runs on a rank goroutine; an error fails the solve.
	OnCheckpoint func(*CGCheckpoint) error
	// Restore, when non-nil, resumes the solve from the snapshot instead
	// of starting from x: the iterated state (x, r, p, rᵀr) is loaded
	// verbatim and the loop continues at the snapshot's iteration,
	// reproducing the uninterrupted run bit for bit.
	Restore *CGCheckpoint
}

// DistCG solves A·x = b with conjugate gradients on the cluster's resident
// distributed kernel. b and x are global vectors; the solve runs SPMD across
// the cluster's ranks in its current mode and writes the solution rows of
// the locally driven ranks back into x. All ranks see identical reduced
// scalars, so the iteration count is deterministic (and identical across
// the processes of a multi-process world).
func DistCG(cl *core.Cluster, b, x []float64, tol float64, maxIter int) (CGResult, error) {
	return DistCGOpt(cl, b, x, CGOptions{Tol: tol, MaxIter: maxIter})
}

// DistCGOpt is DistCG with checkpointing and restore (see CGOptions).
func DistCGOpt(cl *core.Cluster, b, x []float64, opt CGOptions) (CGResult, error) {
	if cl == nil {
		return CGResult{}, fmt.Errorf("solver: DistCG needs a cluster")
	}
	n := cl.Rows()
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("solver: DistCG dimension mismatch (n=%d, b=%d, x=%d)", n, len(b), len(x))
	}
	tol, maxIter := opt.Tol, opt.MaxIter
	if tol <= 0 || maxIter < 1 {
		return CGResult{}, fmt.Errorf("solver: DistCG needs tol > 0 and maxIter ≥ 1")
	}
	numLocal := len(cl.LocalRanks())
	if opt.CheckpointEvery > 0 {
		if opt.Checkpoint == nil {
			return CGResult{}, fmt.Errorf("solver: CheckpointEvery set without a Checkpoint buffer")
		}
		if err := checkSpan(cl, opt.Checkpoint, "CG checkpoint"); err != nil {
			return CGResult{}, err
		}
		opt.Checkpoint.pending.Store(int32(numLocal))
	}
	if opt.Restore != nil {
		if !opt.Restore.Valid() {
			return CGResult{}, fmt.Errorf("solver: Restore from an empty CG checkpoint")
		}
		if err := checkSpan(cl, opt.Restore, "CG restore"); err != nil {
			return CGResult{}, err
		}
	}
	mode := cl.Mode()
	results := make([]CGResult, cl.Ranks())
	breakdowns := make([]error, cl.Ranks())

	err := runBody(cl, opt.Context, "DistCG", func(w *core.Worker) error {
		c := w.Comm
		rank := c.Rank()
		lo, hi := w.Plan.Rows.Lo, w.Plan.Rows.Hi
		nl := w.Plan.NLocal

		bl := append([]float64(nil), b[lo:hi]...)
		xl := append([]float64(nil), x[lo:hi]...)
		res := &results[rank]
		// The convergence history grows to at most maxIter entries;
		// reserving them here keeps the iteration loop allocation-free.
		res.History = make([]float64, 0, maxIter)

		// b's norm is re-derived even on a restore: it comes from the
		// canonical-rank-order reduction, so the restored run sees the
		// very same bits the original did.
		bNorm2, err := distDot(c, bl, bl)
		if err != nil {
			return err
		}
		if bNorm2 == 0 {
			for i := range xl {
				xl[i] = 0
			}
			copy(x[lo:hi], xl)
			res.Converged = true
			return nil
		}
		bNorm := math.Sqrt(bNorm2)

		apply := func(dst, src []float64) error {
			copy(w.X[:nl], src)
			if err := w.Step(mode); err != nil {
				return err
			}
			copy(dst, w.Y)
			res.MVMs++
			return nil
		}

		r := make([]float64, nl)
		p := make([]float64, nl)
		ap := make([]float64, nl)
		var rr float64
		startIter := 0
		if rst := opt.Restore; rst != nil {
			// Resume: load the iterated state verbatim. The residual is
			// NOT recomputed as b − A·x — the recomputation differs from
			// the iterated r in floating point, which would fork the
			// trajectory from the uninterrupted run.
			off := lo - rst.Lo
			copy(xl, rst.X[off:off+nl])
			copy(r, rst.R[off:off+nl])
			copy(p, rst.P[off:off+nl])
			rr = rst.RR
			startIter = rst.Iter
			res.MVMs = rst.MVMs
			res.Iterations = rst.Iter
			res.History = append(res.History, rst.History...)
			if len(res.History) > 0 {
				res.Residual = res.History[len(res.History)-1]
			}
		} else {
			if err := apply(ap, xl); err != nil {
				return err
			}
			for i := range r {
				r[i] = bl[i] - ap[i]
			}
			copy(p, r)
			if rr, err = distDot(c, r, r); err != nil {
				return err
			}
		}

		for k := startIter; k < maxIter; k++ {
			if err := apply(ap, p); err != nil {
				return err
			}
			pap, err := distDot(c, p, ap)
			if err != nil {
				return err
			}
			if pap <= 0 {
				// pap is a global reduction, so every rank detects the
				// breakdown identically and returns in lockstep. Recorded
				// out-of-band rather than as a body error: a body error is
				// fatal to the world (fail-stop), while a lockstep
				// breakdown leaves the resident cluster perfectly usable
				// for the next solve.
				breakdowns[rank] = fmt.Errorf("solver: DistCG broke down (pᵀAp = %g ≤ 0)", pap)
				return nil
			}
			alpha := rr / pap
			Axpy(alpha, p, xl)
			Axpy(-alpha, ap, r)
			rrNew, err := distDot(c, r, r)
			if err != nil {
				return err
			}
			res.Iterations = k + 1
			rel := math.Sqrt(rrNew) / bNorm
			res.History = append(res.History, rel)
			res.Residual = rel
			if rel < tol {
				res.Converged = true
				break
			}
			beta := rrNew / rr
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
			rr = rrNew
			if every := opt.CheckpointEvery; every > 0 && (k+1)%every == 0 && k+1 < maxIter {
				// The state here — after the direction update, before the
				// next multiplication — is exactly "top of iteration k+1".
				// Every rank copies its own rows (disjoint), and the last
				// one to arrive seals the scalars and runs the hook; the
				// next snapshot is a full cadence of reductions away, so
				// the sealing rank cannot be raced.
				ck := opt.Checkpoint
				off := lo - ck.Lo
				copy(ck.X[off:off+nl], xl)
				copy(ck.R[off:off+nl], r)
				copy(ck.P[off:off+nl], p)
				if ck.pending.Add(-1) == 0 {
					ck.pending.Store(int32(numLocal))
					ck.Iter = k + 1
					ck.MVMs = res.MVMs
					ck.RR = rr
					ck.History = append(ck.History[:0], res.History...)
					ck.valid = true
					if opt.OnCheckpoint != nil {
						if err := opt.OnCheckpoint(ck); err != nil {
							return err
						}
					}
				}
			}
		}
		copy(x[lo:hi], xl)
		return nil
	})
	if err != nil {
		return CGResult{}, err
	}
	// Convergence history, counts and breakdowns derive from global
	// reductions, so any locally driven rank's record is the world's record.
	first := cl.LocalRanks()[0]
	if breakdowns[first] != nil {
		return CGResult{}, breakdowns[first]
	}
	return results[first], nil
}

// LanczosOptions configures DistLanczosOpt: checkpoint cadence and
// buffers, and a snapshot to resume from (see CGOptions for the shared
// semantics).
type LanczosOptions struct {
	CheckpointEvery int
	Checkpoint      *LanczosCheckpoint
	OnCheckpoint    func(*LanczosCheckpoint) error
	Restore         *LanczosCheckpoint
	// Context arms an end-to-end deadline over the sweep (see
	// CGOptions.Context); a cut-short sweep surfaces a
	// *core.DeadlineError with Op "DistLanczos".
	Context context.Context
}

// DistLanczos runs the symmetric Lanczos iteration SPMD across the
// cluster's ranks with full reorthogonalization against the distributed
// basis, and returns the Ritz values — the distributed version of the
// paper's exact-diagonalization workload.
func DistLanczos(cl *core.Cluster, m int, seed int64) (LanczosResult, error) {
	return DistLanczosOpt(cl, m, seed, LanczosOptions{})
}

// DistLanczosOpt is DistLanczos with checkpointing and restore.
func DistLanczosOpt(cl *core.Cluster, m int, seed int64, opt LanczosOptions) (LanczosResult, error) {
	if cl == nil {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos needs a cluster")
	}
	n := cl.Rows()
	if n == 0 {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos on empty operator")
	}
	if m < 1 {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos needs m ≥ 1")
	}
	if m > n {
		m = n
	}
	numLocal := len(cl.LocalRanks())
	if opt.CheckpointEvery > 0 {
		if opt.Checkpoint == nil {
			return LanczosResult{}, fmt.Errorf("solver: CheckpointEvery set without a Checkpoint buffer")
		}
		if err := checkSpan(cl, opt.Checkpoint, "Lanczos checkpoint"); err != nil {
			return LanczosResult{}, err
		}
		opt.Checkpoint.pending.Store(int32(numLocal))
	}
	if opt.Restore != nil {
		if !opt.Restore.Valid() {
			return LanczosResult{}, fmt.Errorf("solver: Restore from an empty Lanczos checkpoint")
		}
		if err := checkSpan(cl, opt.Restore, "Lanczos restore"); err != nil {
			return LanczosResult{}, err
		}
	}
	mode := cl.Mode()
	// The start vector is generated globally so results are independent of
	// the rank count.
	start := make([]float64, n)
	rngFill(start, seed)

	firstLocal := cl.LocalRanks()[0]
	results := make([]LanczosResult, cl.Ranks())
	var alphas, betas []float64 // written by the first local rank only

	err := runBody(cl, opt.Context, "DistLanczos", func(w *core.Worker) error {
		c := w.Comm
		rank := c.Rank()
		lo, hi := w.Plan.Rows.Lo, w.Plan.Rows.Hi
		nl := w.Plan.NLocal
		res := &results[rank]

		// All m basis vectors live in one backing array reserved up front,
		// and the tridiagonal coefficients get their full capacity — the
		// iteration loop then allocates nothing.
		la := make([]float64, 0, m)
		lb := make([]float64, 0, m)
		basisBuf := make([]float64, m*nl)
		basis := make([][]float64, 0, m)
		wv := make([]float64, nl)
		apply := func(dst, src []float64) error {
			copy(w.X[:nl], src)
			if err := w.Step(mode); err != nil {
				return err
			}
			copy(dst, w.Y)
			res.MVMs++
			return nil
		}

		startStep := 0
		if rst := opt.Restore; rst != nil {
			// Resume: the basis and the tridiagonal coefficients are loaded
			// verbatim (the start-vector normalization — a collective — is
			// skipped on every rank alike). wv is not part of the state:
			// the next step overwrites it before reading it.
			off := lo - rst.Lo
			span := rst.Hi - rst.Lo
			la = append(la, rst.Alphas...)
			lb = append(lb, rst.Betas...)
			for vi := 0; vi <= rst.Step; vi++ {
				dst := basisBuf[vi*nl : (vi+1)*nl]
				copy(dst, rst.Basis[vi*span+off:vi*span+off+nl])
				basis = append(basis, dst)
			}
			startStep = rst.Step
			res.MVMs = rst.MVMs
			res.Steps = rst.Step
		} else {
			v := append([]float64(nil), start[lo:hi]...)
			vv, err := distDot(c, v, v)
			if err != nil {
				return err
			}
			Scale(1/math.Sqrt(vv), v)
			copy(basisBuf[:nl], v)
			basis = append(basis, basisBuf[:nl])
		}

		for j := startStep; j < m; j++ {
			if err := apply(wv, basis[j]); err != nil {
				return err
			}
			alpha, err := distDot(c, basis[j], wv)
			if err != nil {
				return err
			}
			la = append(la, alpha)
			Axpy(-alpha, basis[j], wv)
			if j > 0 {
				Axpy(-lb[j-1], basis[j-1], wv)
			}
			for _, u := range basis {
				uw, err := distDot(c, u, wv)
				if err != nil {
					return err
				}
				Axpy(-uw, u, wv)
			}
			ww, err := distDot(c, wv, wv)
			if err != nil {
				return err
			}
			beta := math.Sqrt(ww)
			res.Steps = j + 1
			if beta < 1e-12 || j == m-1 {
				break
			}
			lb = append(lb, beta)
			next := basisBuf[len(basis)*nl : (len(basis)+1)*nl]
			copy(next, wv)
			Scale(1/beta, next)
			basis = append(basis, next)
			if every := opt.CheckpointEvery; every > 0 && (j+1)%every == 0 && j+1 < m {
				// Top-of-step-j+1 state: the full basis and coefficient
				// prefix. Same disjoint-rows + last-rank-seals discipline
				// as the CG snapshot.
				ck := opt.Checkpoint
				off := lo - ck.Lo
				span := ck.Hi - ck.Lo
				for vi, u := range basis {
					copy(ck.Basis[vi*span+off:vi*span+off+nl], u)
				}
				if ck.pending.Add(-1) == 0 {
					ck.pending.Store(int32(numLocal))
					ck.Step = j + 1
					ck.MVMs = res.MVMs
					ck.Alphas = append(ck.Alphas[:0], la...)
					ck.Betas = append(ck.Betas[:0], lb...)
					ck.valid = true
					if opt.OnCheckpoint != nil {
						if err := opt.OnCheckpoint(ck); err != nil {
							return err
						}
					}
				}
			}
		}
		if rank == firstLocal {
			// The tridiagonal coefficients come from global reductions, so
			// every rank holds identical copies; the first locally driven
			// rank publishes them.
			alphas, betas = la, lb
		}
		return nil
	})
	if err != nil {
		return LanczosResult{}, err
	}

	res := results[firstLocal]
	eigs, err := SymTridiagEigenvalues(alphas, betas)
	if err != nil {
		return res, err
	}
	res.Eigenvalues = eigs
	return res, nil
}

// rngFill deterministically fills a vector with standard normals.
func rngFill(x []float64, seed int64) {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545F4914F6CDD1D
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11)/float64(1<<53) - 0.5
	}
	for i := range x {
		x[i] = next()
	}
}
