package solver

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// This file implements fully distributed solvers in SPMD style on a
// resident core.Cluster: every rank owns a contiguous slice of each vector,
// every multiplication is one halo exchange + kernel in the cluster's mode,
// and scalar reductions ride the runtime's Allreduce — the structure of the
// paper's application codes, where spMVM dominates and a handful of dot
// products per iteration ride along. The cluster's rank goroutines, teams
// and halo buffers persist across the whole solve (and across consecutive
// solves on the same cluster); nothing is re-spawned per multiplication.
//
// Both solvers are storage-format generic in every mode: bring the cluster
// up with core.WithFormat (or call Cluster.Convert between solves) and the
// no-overlap kernel, the overlap local pass and the task-mode local pass
// all run on the converted format, with the compacted remote pass staying
// on the CompactCSR. Each distributed multiplication is bit-identical to
// its CSR counterpart; only the Allreduce combine order (rank arrival) is
// nondeterministic across runs.

// distDot computes the global dot product of two distributed vectors.
func distDot(c core.Comm, a, b []float64) float64 {
	return c.AllreduceScalar(core.OpSum, Dot(a, b))
}

// DistCG solves A·x = b with conjugate gradients on the cluster's resident
// distributed kernel. b and x are global vectors; the solve runs SPMD across
// the cluster's ranks in its current mode and writes the solution back into
// x. All ranks see identical reduced scalars, so the iteration count is
// deterministic.
func DistCG(cl *core.Cluster, b, x []float64, tol float64, maxIter int) (CGResult, error) {
	if cl == nil {
		return CGResult{}, fmt.Errorf("solver: DistCG needs a cluster")
	}
	n := cl.Rows()
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("solver: DistCG dimension mismatch (n=%d, b=%d, x=%d)", n, len(b), len(x))
	}
	if tol <= 0 || maxIter < 1 {
		return CGResult{}, fmt.Errorf("solver: DistCG needs tol > 0 and maxIter ≥ 1")
	}
	mode := cl.Mode()
	results := make([]CGResult, cl.Ranks())
	var globalErr error

	err := cl.Run(func(w *core.Worker) {
		c := w.Comm
		rank := c.Rank()
		lo, hi := w.Plan.Rows.Lo, w.Plan.Rows.Hi
		nl := w.Plan.NLocal

		bl := append([]float64(nil), b[lo:hi]...)
		xl := append([]float64(nil), x[lo:hi]...)
		res := &results[rank]

		bNorm2 := distDot(c, bl, bl)
		if bNorm2 == 0 {
			for i := range xl {
				xl[i] = 0
			}
			copy(x[lo:hi], xl)
			res.Converged = true
			return
		}
		bNorm := math.Sqrt(bNorm2)

		apply := func(dst, src []float64) {
			copy(w.X[:nl], src)
			w.Step(mode)
			copy(dst, w.Y)
			res.MVMs++
		}

		r := make([]float64, nl)
		ap := make([]float64, nl)
		apply(ap, xl)
		for i := range r {
			r[i] = bl[i] - ap[i]
		}
		p := append([]float64(nil), r...)
		rr := distDot(c, r, r)

		for k := 0; k < maxIter; k++ {
			apply(ap, p)
			pap := distDot(c, p, ap)
			if pap <= 0 {
				if rank == 0 && globalErr == nil {
					globalErr = fmt.Errorf("solver: DistCG broke down (pᵀAp = %g ≤ 0)", pap)
				}
				return
			}
			alpha := rr / pap
			Axpy(alpha, p, xl)
			Axpy(-alpha, ap, r)
			rrNew := distDot(c, r, r)
			res.Iterations = k + 1
			rel := math.Sqrt(rrNew) / bNorm
			res.History = append(res.History, rel)
			res.Residual = rel
			if rel < tol {
				res.Converged = true
				break
			}
			beta := rrNew / rr
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
			rr = rrNew
		}
		copy(x[lo:hi], xl)
	})
	if err != nil {
		return CGResult{}, err
	}
	if globalErr != nil {
		return CGResult{}, globalErr
	}
	return results[0], nil
}

// DistLanczos runs the symmetric Lanczos iteration SPMD across the
// cluster's ranks with full reorthogonalization against the distributed
// basis, and returns the Ritz values — the distributed version of the
// paper's exact-diagonalization workload.
func DistLanczos(cl *core.Cluster, m int, seed int64) (LanczosResult, error) {
	if cl == nil {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos needs a cluster")
	}
	n := cl.Rows()
	if n == 0 {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos on empty operator")
	}
	if m < 1 {
		return LanczosResult{}, fmt.Errorf("solver: DistLanczos needs m ≥ 1")
	}
	if m > n {
		m = n
	}
	mode := cl.Mode()
	// The start vector is generated globally so results are independent of
	// the rank count.
	start := make([]float64, n)
	rngFill(start, seed)

	results := make([]LanczosResult, cl.Ranks())
	var alphas, betas []float64 // written by rank 0 only

	err := cl.Run(func(w *core.Worker) {
		c := w.Comm
		rank := c.Rank()
		lo, hi := w.Plan.Rows.Lo, w.Plan.Rows.Hi
		nl := w.Plan.NLocal
		res := &results[rank]

		v := append([]float64(nil), start[lo:hi]...)
		norm := math.Sqrt(distDot(c, v, v))
		Scale(1/norm, v)

		var la, lb []float64
		basis := [][]float64{append([]float64(nil), v...)}
		wv := make([]float64, nl)
		apply := func(dst, src []float64) {
			copy(w.X[:nl], src)
			w.Step(mode)
			copy(dst, w.Y)
			res.MVMs++
		}

		for j := 0; j < m; j++ {
			apply(wv, basis[j])
			alpha := distDot(c, basis[j], wv)
			la = append(la, alpha)
			Axpy(-alpha, basis[j], wv)
			if j > 0 {
				Axpy(-lb[j-1], basis[j-1], wv)
			}
			for _, u := range basis {
				Axpy(-distDot(c, u, wv), u, wv)
			}
			beta := math.Sqrt(distDot(c, wv, wv))
			res.Steps = j + 1
			if beta < 1e-12 || j == m-1 {
				break
			}
			lb = append(lb, beta)
			next := append([]float64(nil), wv...)
			Scale(1/beta, next)
			basis = append(basis, next)
		}
		if rank == 0 {
			alphas, betas = la, lb
		}
	})
	if err != nil {
		return LanczosResult{}, err
	}

	res := results[0]
	eigs, err := SymTridiagEigenvalues(alphas, betas)
	if err != nil {
		return res, err
	}
	res.Eigenvalues = eigs
	return res, nil
}

// rngFill deterministically fills a vector with standard normals.
func rngFill(x []float64, seed int64) {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545F4914F6CDD1D
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11)/float64(1<<53) - 0.5
	}
	for i := range x {
		x[i] = next()
	}
}
