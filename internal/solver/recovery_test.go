package solver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
)

// TestSupervisedCGRecoveryBitIdentical is the whole recovery stack in one
// process: a CG solve checkpointing every 10 iterations is killed mid-run
// by an injected rank death, the supervisor re-dials a fresh world,
// rebuilds the cluster from the same plan, the body restores the latest
// checkpoint — and the recovered solve converges to the bit-identical
// solution, history, and MVM count of an uninterrupted reference run.
// (The OS-process variant, with a real SIGKILL and on-disk checkpoints,
// lives in internal/tcpmpi's recovery test.)
func TestSupervisedCGRecoveryBitIdentical(t *testing.T) {
	const tol, maxIter, every = 1e-10, 5000, 10
	a, plan := poissonPlan(t, 4)
	n := a.NumRows
	rng := rand.New(rand.NewSource(21))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// Uninterrupted reference.
	refCl, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	xRef := make([]float64, n)
	ref, err := DistCG(refCl, b, xRef, tol, maxIter)
	refCl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Iterations < 5*every {
		t.Fatalf("reference unusable: converged=%v in %d iterations", ref.Converged, ref.Iterations)
	}

	// Supervised run: rank 2 dies at its 200th communication operation —
	// comfortably past the first snapshot, comfortably before convergence.
	tr := &faultmpi.Transport{Sched: faultmpi.Schedule{Kills: []faultmpi.Kill{{Rank: 2, AtOp: 200}}}}
	s := &core.Supervisor{
		Transport: func(epoch int) core.Transport { return tr },
		Backoff:   time.Millisecond,
	}
	var ck *CGCheckpoint
	var rec CGResult
	epochs := 0
	xRec := make([]float64, n)
	err = s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		epochs++
		if ck == nil {
			ck = NewCGCheckpoint(cl, maxIter)
		}
		opt := CGOptions{Tol: tol, MaxIter: maxIter, CheckpointEvery: every, Checkpoint: ck}
		if ck.Valid() {
			// Resuming a later epoch from the snapshot the previous one
			// sealed; Restore and Checkpoint may be the same object (the
			// restore copies happen before any new snapshot overwrites it).
			opt.Restore = ck
		}
		var err error
		rec, err = DistCGOpt(cl, b, xRec, opt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 2 {
		t.Fatalf("ran %d epochs, want 2 (killed, then recovered from checkpoint)", epochs)
	}
	if !rec.Converged {
		t.Fatal("recovered run did not converge")
	}
	if !bitsEqual(xRec, xRef) {
		t.Fatal("recovered solution is not bit-identical to the uninterrupted run")
	}
	if rec.Iterations != ref.Iterations || rec.MVMs != ref.MVMs {
		t.Fatalf("recovered run: %d iterations / %d MVMs, reference: %d / %d",
			rec.Iterations, rec.MVMs, ref.Iterations, ref.MVMs)
	}
	if !bitsEqual(rec.History, ref.History) {
		t.Fatal("recovered residual history is not bit-identical to the reference")
	}
}
