package solver

import (
	"fmt"
	"math"
	"math/rand"
)

// DavidsonResult reports the outcome of a Davidson eigensolve.
type DavidsonResult struct {
	Eigenvalue  float64
	Eigenvector []float64
	Iterations  int
	MVMs        int
	Residual    float64
	Converged   bool
}

// Davidson computes the lowest eigenpair of a symmetric operator with the
// diagonally preconditioned Davidson method — the Jacobi–Davidson-family
// solver the paper names alongside Lanczos as the eigensolvers driving its
// spMVM workload (§1.3.1). diag must hold the operator's diagonal (the
// preconditioner); maxSubspace bounds the search space before a restart.
func Davidson(op Operator, diag []float64, maxSubspace, maxIter int, tol float64, seed int64) (DavidsonResult, error) {
	n := op.Dim()
	if len(diag) != n {
		return DavidsonResult{}, fmt.Errorf("solver: diagonal length %d, operator dim %d", len(diag), n)
	}
	if maxSubspace < 2 || maxIter < 1 || tol <= 0 {
		return DavidsonResult{}, fmt.Errorf("solver: invalid Davidson parameters")
	}
	if maxSubspace > n {
		maxSubspace = n
	}

	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	Scale(1/Norm2(v), v)

	var V, W [][]float64 // search basis and A·basis
	res := DavidsonResult{}
	appendVec := func(t []float64) bool {
		// Orthogonalize against V (twice, for stability) and normalize.
		for pass := 0; pass < 2; pass++ {
			for _, u := range V {
				Axpy(-Dot(u, t), u, t)
			}
		}
		norm := Norm2(t)
		if norm < 1e-10 {
			return false
		}
		Scale(1/norm, t)
		w := make([]float64, n)
		op.Apply(w, t)
		res.MVMs++
		V = append(V, append([]float64(nil), t...))
		W = append(W, w)
		return true
	}
	if !appendVec(v) {
		return res, fmt.Errorf("solver: degenerate start vector")
	}

	x := make([]float64, n)
	r := make([]float64, n)
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		m := len(V)
		// Rayleigh–Ritz: H = VᵀAV, smallest eigenpair of H.
		H := make([]float64, m*m)
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				h := Dot(V[i], W[j])
				H[i*m+j] = h
				H[j*m+i] = h
			}
		}
		theta, y, err := smallestEigSym(H, m)
		if err != nil {
			return res, err
		}
		// Ritz vector and residual r = A x - θ x.
		for i := range x {
			x[i] = 0
			r[i] = 0
		}
		for k := 0; k < m; k++ {
			Axpy(y[k], V[k], x)
			Axpy(y[k], W[k], r)
		}
		Axpy(-theta, x, r)
		res.Eigenvalue = theta
		res.Residual = Norm2(r)
		if res.Residual < tol {
			res.Converged = true
			res.Eigenvector = append([]float64(nil), x...)
			return res, nil
		}
		// Restart: collapse to the current Ritz vector.
		if m >= maxSubspace {
			V, W = nil, nil
			if !appendVec(append([]float64(nil), x...)) {
				return res, fmt.Errorf("solver: restart failed")
			}
			continue
		}
		// Davidson correction: t = -r / (diag - θ), guarded.
		t := make([]float64, n)
		for i := range t {
			d := diag[i] - theta
			if math.Abs(d) < 1e-8 {
				d = math.Copysign(1e-8, d)
				if d == 0 {
					d = 1e-8
				}
			}
			t[i] = -r[i] / d
		}
		if !appendVec(t) {
			// Correction linearly dependent: fall back to a random vector.
			for i := range t {
				t[i] = rng.NormFloat64()
			}
			if !appendVec(t) {
				return res, fmt.Errorf("solver: search space exhausted")
			}
		}
	}
	res.Eigenvector = append([]float64(nil), x...)
	return res, nil
}

// OperatorDiagonal extracts the diagonal of an operator by applying it to
// unit vectors — O(n) applications; use matrix-aware extraction when
// available.
func OperatorDiagonal(op Operator) []float64 {
	n := op.Dim()
	d := make([]float64, n)
	e := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		e[i] = 1
		op.Apply(y, e)
		d[i] = y[i]
		e[i] = 0
	}
	return d
}

// smallestEigSym returns the smallest eigenvalue and its eigenvector of the
// dense symmetric m×m matrix H (row-major), via the cyclic Jacobi rotation
// method — adequate for the small Davidson subspaces used here.
func smallestEigSym(H []float64, m int) (float64, []float64, error) {
	if m == 1 {
		return H[0], []float64{1}, nil
	}
	a := append([]float64(nil), H...)
	// Eigenvector accumulation.
	q := make([]float64, m*m)
	for i := 0; i < m; i++ {
		q[i*m+i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				off += a[i*m+j] * a[i*m+j]
			}
		}
		if off < 1e-24 {
			break
		}
		if sweep == 99 {
			return 0, nil, fmt.Errorf("solver: Jacobi eigensolver did not converge (off=%g)", off)
		}
		for p := 0; p < m; p++ {
			for r := p + 1; r < m; r++ {
				apr := a[p*m+r]
				if math.Abs(apr) < 1e-18 {
					continue
				}
				app, arr := a[p*m+p], a[r*m+r]
				phi := 0.5 * math.Atan2(2*apr, arr-app)
				c, s := math.Cos(phi), math.Sin(phi)
				for k := 0; k < m; k++ {
					akp, akr := a[k*m+p], a[k*m+r]
					a[k*m+p] = c*akp - s*akr
					a[k*m+r] = s*akp + c*akr
				}
				for k := 0; k < m; k++ {
					apk, ark := a[p*m+k], a[r*m+k]
					a[p*m+k] = c*apk - s*ark
					a[r*m+k] = s*apk + c*ark
				}
				for k := 0; k < m; k++ {
					qkp, qkr := q[k*m+p], q[k*m+r]
					q[k*m+p] = c*qkp - s*qkr
					q[k*m+r] = s*qkp + c*qkr
				}
			}
		}
	}
	best := 0
	for i := 1; i < m; i++ {
		if a[i*m+i] < a[best*m+best] {
			best = i
		}
	}
	vec := make([]float64, m)
	for k := 0; k < m; k++ {
		vec[k] = q[k*m+best]
	}
	return a[best*m+best], vec, nil
}
