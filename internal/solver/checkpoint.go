package solver

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Checkpointing: the distributed solvers can snapshot their complete
// iteration state into a caller-owned checkpoint every k iterations, at a
// collective boundary, and later resume from such a snapshot on a FRESH
// cluster — the recovery path of core.Supervisor after a world failure.
//
// The crucial property is bit-identity: a restored solve must reproduce
// the uninterrupted run's iterates exactly. Two design points make that
// hold. First, the snapshot is taken at the top-of-iteration boundary and
// restores everything the loop carries across iterations — for CG the
// iterated residual r is restored, never recomputed as b − A·x, because
// the recomputation differs from the iterated r in floating point even
// though both are "the residual". Second, every scalar the loop derives
// (dot products, norms) comes from the runtime's canonical-rank-order
// reductions, which are bit-identical across transports and across rank
// counts per process — so re-deriving b's norm after a restore lands on
// the very same bits the original run saw.
//
// A checkpoint covers the rows of the ranks one process drives, so on a
// multi-process world each process checkpoints its own row span and the
// set of per-process checkpoints at the same iteration forms a consistent
// global snapshot: ranks advance in lockstep (every iteration has global
// reductions), so snapshots of the same cadence are taken at the same
// iteration everywhere — after a crash, processes agree on the newest
// COMMON iteration (see ckpt.Agree) and restore it.

// Checkpoint is what a solver snapshot must expose to the generic
// machinery (the ckpt file codec, the supervisor's bookkeeping).
type Checkpoint interface {
	// Valid reports whether the checkpoint holds a complete snapshot.
	Valid() bool
	// Iteration returns the iteration the snapshot resumes at.
	Iteration() int
	// RowRange returns the global row span [lo, hi) the snapshot covers.
	RowRange() (lo, hi int)
}

// localRowSpan returns the contiguous global row span of the cluster's
// locally driven ranks.
func localRowSpan(cl *core.Cluster) (lo, hi int) {
	plan := cl.Plan()
	local := cl.LocalRanks()
	lo = plan.Ranks[local[0]].Rows.Lo
	hi = plan.Ranks[local[len(local)-1]].Rows.Hi
	return lo, hi
}

// CGCheckpoint is the complete state of a DistCG solve at the top of
// iteration Iter, covering rows [Lo, Hi): the iterate X, the ITERATED
// residual R, the search direction P, the scalar rᵀr, and the result
// bookkeeping (MVM count, convergence history) needed to make a resumed
// run's CGResult equal the uninterrupted one's.
type CGCheckpoint struct {
	Lo, Hi  int
	Iter    int
	MVMs    int
	RR      float64
	History []float64 // relative residuals of iterations [0, Iter)
	X, R, P []float64 // rows [Lo, Hi)

	valid bool
	// pending counts the cluster ranks still to copy their rows into the
	// current snapshot; the rank that decrements it to zero seals the
	// scalars and runs the OnCheckpoint hook. Safe without further
	// synchronization: the next snapshot is a full cadence of global
	// reductions away, so no rank can race a new copy into these buffers
	// while the sealing rank is still writing.
	pending atomic.Int32
}

// NewCGCheckpoint sizes a checkpoint for DistCG solves on the cluster
// (its locally driven row span and a history up to maxIter entries).
func NewCGCheckpoint(cl *core.Cluster, maxIter int) *CGCheckpoint {
	lo, hi := localRowSpan(cl)
	n := hi - lo
	return &CGCheckpoint{
		Lo: lo, Hi: hi,
		History: make([]float64, 0, maxIter),
		X:       make([]float64, n),
		R:       make([]float64, n),
		P:       make([]float64, n),
	}
}

func (c *CGCheckpoint) Valid() bool            { return c != nil && c.valid }
func (c *CGCheckpoint) Iteration() int         { return c.Iter }
func (c *CGCheckpoint) RowRange() (lo, hi int) { return c.Lo, c.Hi }

// Seal marks a checkpoint assembled by an external loader (the ckpt file
// codec) as complete.
func (c *CGCheckpoint) Seal() { c.valid = true }

// LanczosCheckpoint is the complete state of a DistLanczos iteration at
// the top of step Step, covering rows [Lo, Hi): the orthonormal basis
// built so far (Step+1 vectors of Hi−Lo local rows each, flattened),
// the tridiagonal coefficients, and the MVM count.
type LanczosCheckpoint struct {
	Lo, Hi int
	Step   int
	MVMs   int
	Alphas []float64 // Step entries
	Betas  []float64 // Step entries
	Basis  []float64 // (Step+1) × (Hi−Lo), vector-major

	valid   bool
	pending atomic.Int32
}

// NewLanczosCheckpoint sizes a checkpoint for DistLanczos solves of up to
// m steps on the cluster.
func NewLanczosCheckpoint(cl *core.Cluster, m int) *LanczosCheckpoint {
	lo, hi := localRowSpan(cl)
	n := hi - lo
	return &LanczosCheckpoint{
		Lo: lo, Hi: hi,
		Alphas: make([]float64, 0, m),
		Betas:  make([]float64, 0, m),
		Basis:  make([]float64, m*n),
	}
}

func (c *LanczosCheckpoint) Valid() bool            { return c != nil && c.valid }
func (c *LanczosCheckpoint) Iteration() int         { return c.Step }
func (c *LanczosCheckpoint) RowRange() (lo, hi int) { return c.Lo, c.Hi }

// Seal marks an externally assembled checkpoint complete.
func (c *LanczosCheckpoint) Seal() { c.valid = true }

// checkSpan validates that a checkpoint's row span matches the cluster's.
func checkSpan(cl *core.Cluster, ck Checkpoint, what string) error {
	lo, hi := localRowSpan(cl)
	clo, chi := ck.RowRange()
	if clo != lo || chi != hi {
		return fmt.Errorf("solver: %s covers rows [%d,%d), cluster drives [%d,%d)", what, clo, chi, lo, hi)
	}
	return nil
}

// Interface satisfaction checks.
var (
	_ Checkpoint = (*CGCheckpoint)(nil)
	_ Checkpoint = (*LanczosCheckpoint)(nil)
)
