package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/genmat"
	"repro/internal/matrix"
)

func poissonPlan(t *testing.T, ranks int) (*matrix.CSR, *core.Plan) {
	t.Helper()
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 12, Ny: 10, Nz: 9, GradingZ: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	part := core.PartitionByNnz(p, ranks)
	plan, err := core.BuildPlan(p, part, true)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

// poissonCluster brings up a resident session over a fresh Poisson plan and
// registers its teardown with the test.
func poissonCluster(t *testing.T, ranks int, opts ...core.Option) (*matrix.CSR, *core.Cluster) {
	t.Helper()
	a, plan := poissonPlan(t, ranks)
	cl, err := core.NewCluster(plan, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return a, cl
}

func TestDistCGMatchesSerialCG(t *testing.T) {
	// One resident cluster serves every mode: the solver session persists
	// and SetMode reconfigures the kernel between solves.
	a, cl := poissonCluster(t, 5, core.WithThreads(2))
	n := a.NumRows
	rng := rand.New(rand.NewSource(3))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)

	for _, mode := range core.Modes {
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := DistCG(cl, b, x, 1e-10, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("mode %v: DistCG not converged (res %g)", mode, res.Residual)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("mode %v: x[%d] = %.9f, want %.9f", mode, i, x[i], xTrue[i])
			}
		}
		// Iteration count matches the serial algorithm (same reductions).
		xs := make([]float64, n)
		serial, err := CG(CSROperator{a}, b, xs, 1e-10, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if absInt(res.Iterations-serial.Iterations) > 2 {
			t.Errorf("mode %v: %d iterations vs serial %d", mode, res.Iterations, serial.Iterations)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestDistCGRankCountInvariance(t *testing.T) {
	a, _ := poissonPlan(t, 2)
	n := a.NumRows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.01)
	}
	var ref []float64
	for _, ranks := range []int{1, 3, 7} {
		_, cl := poissonCluster(t, ranks, core.WithMode(core.TaskMode), core.WithThreads(2))
		x := make([]float64, n)
		res, err := DistCG(cl, b, x, 1e-11, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: not converged", ranks)
		}
		if ref == nil {
			ref = append([]float64(nil), x...)
			continue
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-7 {
				t.Fatalf("ranks=%d: solution differs at %d: %g vs %g", ranks, i, x[i], ref[i])
			}
		}
	}
}

func TestDistCGZeroRHS(t *testing.T) {
	_, cl := poissonCluster(t, 3)
	n := cl.Rows()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	res, err := DistCG(cl, make([]float64, n), x, 1e-10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS should converge immediately")
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatal("zero RHS must give zero solution")
		}
	}
}

func TestDistCGFormatGeneric(t *testing.T) {
	// DistCG on a SELL-C-σ-converted session: every mode — including the
	// overlap modes, whose local pass runs on the converted split — must
	// converge to the same solution in essentially the same iterations.
	// The conversion is applied live with Cluster.Convert between solves.
	a, cl := poissonCluster(t, 4, core.WithThreads(2))
	n := a.NumRows
	rng := rand.New(rand.NewSource(9))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	if err := cl.Convert(formats.SELLBuilder{C: 16, Sigma: 64}); err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	serial, err := CG(CSROperator{a}, b, xs, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range core.Modes {
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := DistCG(cl, b, x, 1e-10, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("mode %v on SELL session: not converged (res %g)", mode, res.Residual)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("mode %v on SELL session: x[%d] = %.9f, want %.9f", mode, i, x[i], xTrue[i])
			}
		}
		if absInt(res.Iterations-serial.Iterations) > 2 {
			t.Errorf("mode %v on SELL session: %d iterations vs serial %d", mode, res.Iterations, serial.Iterations)
		}
	}
}

func TestDistLanczosFormatGeneric(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	part := core.PartitionByNnz(h, 4)
	plan, err := core.BuildPlan(h, part, true)
	if err != nil {
		t.Fatal(err)
	}
	// WithFormat converts at session bring-up, before the workers spin.
	cl, err := core.NewCluster(plan,
		core.WithThreads(2), core.WithFormat(formats.SELLBuilder{C: 32, Sigma: 128}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	serial, err := GroundState(CSROperator{a}, 70, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range core.Modes {
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		dist, err := DistLanczos(cl, 70, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(dist.Eigenvalues) == 0 {
			t.Fatal("no Ritz values")
		}
		if math.Abs(dist.Eigenvalues[0]-serial) > 1e-8 {
			t.Errorf("mode %v on SELL session: E₀ %.10f vs serial %.10f", mode, dist.Eigenvalues[0], serial)
		}
	}
}

func TestDistCGInvalid(t *testing.T) {
	_, cl := poissonCluster(t, 2, core.WithMode(core.TaskMode))
	n := cl.Rows()
	if _, err := DistCG(cl, make([]float64, n-1), make([]float64, n), 1e-8, 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := DistCG(cl, make([]float64, n), make([]float64, n), 0, 10); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := DistCG(nil, make([]float64, n), make([]float64, n), 1e-8, 10); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := DistLanczos(nil, 10, 1); err == nil {
		t.Error("nil cluster accepted by DistLanczos")
	}
	if _, err := DistLanczos(cl, 0, 1); err == nil {
		t.Error("m = 0 accepted by DistLanczos")
	}
}

func TestDistSolversOnClosedCluster(t *testing.T) {
	_, cl := poissonCluster(t, 2)
	n := cl.Rows()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DistCG(cl, make([]float64, n), make([]float64, n), 1e-8, 10); err == nil {
		t.Error("DistCG ran on a closed cluster")
	}
	if _, err := DistLanczos(cl, 5, 1); err == nil {
		t.Error("DistLanczos ran on a closed cluster")
	}
}

func TestDistLanczosMatchesSerial(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	part := core.PartitionByNnz(h, 4)
	plan, err := core.BuildPlan(h, part, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(plan, core.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	serial, err := GroundState(CSROperator{a}, 70, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range core.Modes {
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		dist, err := DistLanczos(cl, 70, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(dist.Eigenvalues) == 0 {
			t.Fatal("no Ritz values")
		}
		if math.Abs(dist.Eigenvalues[0]-serial) > 1e-8 {
			t.Errorf("mode %v: distributed E₀ %.10f vs serial %.10f", mode, dist.Eigenvalues[0], serial)
		}
		if dist.MVMs != dist.Steps {
			t.Errorf("MVMs %d != steps %d", dist.MVMs, dist.Steps)
		}
	}
}

func TestDistLanczosRankInvariance(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 1, NumDown: 1, MaxPhonons: 4,
		T: 1, U: 3, Omega: 1, G: 0.8, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	for _, ranks := range []int{1, 2, 5} {
		part := core.PartitionByNnz(h, ranks)
		plan, err := core.BuildPlan(h, part, true)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := core.NewCluster(plan, core.WithMode(core.VectorNaiveOverlap))
		if err != nil {
			t.Fatal(err)
		}
		res, err := DistLanczos(cl, 50, 9)
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		e0 := res.Eigenvalues[0]
		if ranks == 1 {
			ref = e0
			continue
		}
		if math.Abs(e0-ref) > 1e-9 {
			t.Errorf("ranks=%d: E₀ %.12f differs from 1-rank %.12f", ranks, e0, ref)
		}
	}
}
