// Package solver implements the iterative algorithms that motivate the
// paper's spMVM kernel (§1, §1.3.1): Lanczos for extremal eigenvalues of
// the Hamiltonian matrices, conjugate gradients for the Poisson systems,
// and the kernel polynomial method (Chebyshev expansion) for spectral
// densities. All algorithms run against an abstract operator, so the same
// code executes on the serial kernel, the node-parallel kernel, or the
// distributed hybrid kernels.
package solver

import (
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/spmv"
)

// Operator is a linear operator y = A·x on vectors of fixed dimension.
type Operator interface {
	Dim() int
	Apply(y, x []float64)
}

// CSROperator applies a CSR matrix with the serial kernel.
type CSROperator struct{ A *matrix.CSR }

// Dim returns the operator dimension.
func (o CSROperator) Dim() int { return o.A.NumRows }

// Apply computes y = A·x.
func (o CSROperator) Apply(y, x []float64) { o.A.MulVec(y, x) }

// TeamOperator applies a sparse matrix — in any storage format — with the
// node-parallel kernel on a worker team (the paper's OpenMP-parallel
// baseline).
type TeamOperator struct {
	P    *spmv.Parallel
	Team *spmv.Team
}

// NewTeamOperator chunks a CSR matrix for the team.
func NewTeamOperator(a *matrix.CSR, team *spmv.Team) *TeamOperator {
	return &TeamOperator{P: spmv.NewParallel(a, team.Size()), Team: team}
}

// NewFormatOperator chunks a matrix in any storage format (e.g. SELL-C-σ)
// for the team, so CG, Lanczos and KPM run unchanged on top of it.
func NewFormatOperator(f matrix.Format, team *spmv.Team) *TeamOperator {
	return &TeamOperator{P: spmv.NewParallelFormat(f, team.Size()), Team: team}
}

// Dim returns the operator dimension.
func (o *TeamOperator) Dim() int { return o.P.Rows() }

// Apply computes y = A·x on the team.
func (o *TeamOperator) Apply(y, x []float64) { o.P.MulVec(o.Team, y, x) }

// DistOperator applies the distributed hybrid kernel on a resident
// core.Cluster: each Apply performs a full halo exchange and multiplication
// across the cluster's ranks in its current mode, reusing the same rank
// goroutines, teams and halo buffers call after call.
type DistOperator struct {
	Cluster *core.Cluster
}

// Dim returns the operator dimension.
func (o *DistOperator) Dim() int { return o.Cluster.Rows() }

// Apply computes y = A·x with the distributed kernel. Operator.Apply has
// no error channel, so a Cluster.Mul failure (misuse, or a transport
// failure on a wire backend) panics; error-first callers should drive the
// cluster directly (Cluster.Mul, solver.DistCG, solver.DistLanczos).
func (o *DistOperator) Apply(y, x []float64) {
	if err := o.Cluster.Mul(y, x, 1); err != nil {
		panic(err.Error())
	}
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
