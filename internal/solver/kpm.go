package solver

import (
	"fmt"
	"math"
	"math/rand"
)

// mathSqrt is an alias so cg.go avoids an extra import block churn.
var mathSqrt = math.Sqrt

// KPMResult carries Chebyshev moments and a reconstructed spectral density.
type KPMResult struct {
	// Moments are the Jackson-damped Chebyshev moments μ_n.
	Moments []float64
	// Energies and Density sample the reconstructed density of states on
	// the rescaled interval, mapped back to [Min, Max].
	Energies []float64
	Density  []float64
	MVMs     int
}

// KPMDOS estimates the spectral density of a symmetric operator with the
// kernel polynomial method — the polynomial-expansion application the paper
// cites ([10], [11]) as a major spMVM consumer. The spectrum must lie in
// (min, max); moments Chebyshev moments are computed from `samples` random
// vectors, Jackson-damped, and evaluated at `points` energies.
func KPMDOS(op Operator, min, max float64, moments, samples, points int, seed int64) (KPMResult, error) {
	n := op.Dim()
	if n == 0 || moments < 2 || samples < 1 || points < 2 {
		return KPMResult{}, fmt.Errorf("solver: invalid KPM parameters (dim=%d, moments=%d, samples=%d, points=%d)",
			n, moments, samples, points)
	}
	if min >= max {
		return KPMResult{}, fmt.Errorf("solver: KPM needs min < max, got [%g, %g]", min, max)
	}
	// Rescale H to H̃ with spectrum in (-1, 1): H̃ = (H - b)/a.
	a := (max - min) / (2 - 0.02)
	b := (max + min) / 2

	rng := rand.New(rand.NewSource(seed))
	mu := make([]float64, moments)
	res := KPMResult{}

	r0 := make([]float64, n) // the random probe vector, kept intact
	t0 := make([]float64, n)
	t1 := make([]float64, n)
	t2 := make([]float64, n)
	h := make([]float64, n)
	applyScaled := func(dst, src []float64) {
		op.Apply(h, src)
		res.MVMs++
		for i := range dst {
			dst[i] = (h[i] - b*src[i]) / a
		}
	}

	for s := 0; s < samples; s++ {
		// Random ±1 vector (standard KPM stochastic trace estimator).
		for i := range r0 {
			if rng.Intn(2) == 0 {
				r0[i] = 1
			} else {
				r0[i] = -1
			}
		}
		copy(t0, r0)
		mu[0] += Dot(r0, t0)
		applyScaled(t1, t0)
		mu[1] += Dot(r0, t1)
		for m := 2; m < moments; m++ {
			// T_m = 2·H̃·T_{m-1} - T_{m-2}
			applyScaled(t2, t1)
			for i := range t2 {
				t2[i] = 2*t2[i] - t0[i]
			}
			mu[m] += Dot(r0, t2)
			t0, t1, t2 = t1, t2, t0
		}
	}
	norm := float64(samples) * float64(n)
	for m := range mu {
		mu[m] /= norm
	}

	// Jackson kernel damping.
	M := float64(moments)
	for m := range mu {
		mf := float64(m)
		g := ((M-mf+1)*math.Cos(math.Pi*mf/(M+1)) +
			math.Sin(math.Pi*mf/(M+1))/math.Tan(math.Pi/(M+1))) / (M + 1)
		mu[m] *= g
	}
	res.Moments = mu

	// Reconstruct ρ(x) = (μ₀ + 2 Σ μ_m T_m(x)) / (π √(1-x²)).
	res.Energies = make([]float64, points)
	res.Density = make([]float64, points)
	for k := 0; k < points; k++ {
		x := math.Cos(math.Pi * (float64(k) + 0.5) / float64(points))
		sum := mu[0]
		for m := 1; m < moments; m++ {
			sum += 2 * mu[m] * math.Cos(float64(m)*math.Acos(x))
		}
		res.Energies[k] = a*x + b
		res.Density[k] = sum / (math.Pi * math.Sqrt(1-x*x) * a)
	}
	// Ascending energies for plotting.
	for i, j := 0, points-1; i < j; i, j = i+1, j-1 {
		res.Energies[i], res.Energies[j] = res.Energies[j], res.Energies[i]
		res.Density[i], res.Density[j] = res.Density[j], res.Density[i]
	}
	return res, nil
}

// ChebyshevTimeEvolution propagates |ψ(t)⟩ = e^{-iHt}|ψ(0)⟩ via the
// Chebyshev expansion, tracking only the real representation's accuracy
// proxy: it returns the number of matrix-vector products needed for the
// requested expansion order — the quantity relevant to the paper (time
// evolution as an spMVM workload, [11]). The actual complex arithmetic is
// carried in interleaved real/imaginary vectors.
func ChebyshevTimeEvolution(op Operator, psiRe, psiIm []float64, min, max, t float64, order int) (int, error) {
	n := op.Dim()
	if len(psiRe) != n || len(psiIm) != n {
		return 0, fmt.Errorf("solver: state dimension mismatch")
	}
	if order < 2 {
		return 0, fmt.Errorf("solver: expansion order %d < 2", order)
	}
	if min >= max {
		return 0, fmt.Errorf("solver: need min < max")
	}
	a := (max - min) / 2
	b := (max + min) / 2

	// Bessel coefficients c_m = (2-δ_{m0}) (-i)^m J_m(a·t); we fold the
	// phase e^{-i b t} into the final state.
	mvms := 0
	h := make([]float64, n)
	applyScaled := func(dstRe, srcRe []float64) {
		op.Apply(h, srcRe)
		mvms++
		for i := range dstRe {
			dstRe[i] = (h[i] - b*srcRe[i]) / a
		}
	}

	// Chebyshev recursion on the complex state, component-wise.
	t0Re := append([]float64(nil), psiRe...)
	t0Im := append([]float64(nil), psiIm...)
	t1Re := make([]float64, n)
	t1Im := make([]float64, n)
	applyScaled(t1Re, t0Re)
	applyScaled(t1Im, t0Im)

	outRe := make([]float64, n)
	outIm := make([]float64, n)
	addTerm := func(m int, re, im []float64) {
		cm := 2 * besselJ(m, a*t)
		if m == 0 {
			cm = besselJ(0, a*t)
		}
		// (-i)^m cycles 1, -i, -1, i.
		switch m % 4 {
		case 0:
			Axpy(cm, re, outRe)
			Axpy(cm, im, outIm)
		case 1:
			Axpy(cm, im, outRe)
			Axpy(-cm, re, outIm)
		case 2:
			Axpy(-cm, re, outRe)
			Axpy(-cm, im, outIm)
		case 3:
			Axpy(-cm, im, outRe)
			Axpy(cm, re, outIm)
		}
	}
	addTerm(0, t0Re, t0Im)
	addTerm(1, t1Re, t1Im)
	t2Re := make([]float64, n)
	t2Im := make([]float64, n)
	for m := 2; m < order; m++ {
		applyScaled(t2Re, t1Re)
		applyScaled(t2Im, t1Im)
		for i := range t2Re {
			t2Re[i] = 2*t2Re[i] - t0Re[i]
			t2Im[i] = 2*t2Im[i] - t0Im[i]
		}
		addTerm(m, t2Re, t2Im)
		t0Re, t1Re, t2Re = t1Re, t2Re, t0Re
		t0Im, t1Im, t2Im = t1Im, t2Im, t0Im
	}
	// Global phase e^{-i b t}.
	c, s := math.Cos(-b*t), math.Sin(-b*t)
	for i := range outRe {
		re := outRe[i]*c - outIm[i]*s
		im := outRe[i]*s + outIm[i]*c
		psiRe[i], psiIm[i] = re, im
	}
	return mvms, nil
}

// besselJ computes the Bessel function J_m(x) by downward recurrence
// (Miller's algorithm), sufficient for the moderate orders used here.
func besselJ(m int, x float64) float64 {
	if m < 0 {
		panic("solver: negative Bessel order")
	}
	if x == 0 {
		if m == 0 {
			return 1
		}
		return 0
	}
	if m == 0 {
		return math.J0(x)
	}
	if m == 1 {
		return math.J1(x)
	}
	return math.Jn(m, x)
}
