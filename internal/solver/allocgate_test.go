package solver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/matrix"
)

// TestAllocGateDistCGIteration pins the zero-allocation steady state of a
// DistCG iteration on the chan transport. Per-solve setup (local vector
// copies, the preallocated History, the Run closure) allocates a CONSTANT
// amount regardless of the iteration count, so a long solve must allocate
// exactly as much as a short one — i.e. the iteration loop itself
// (multiplication over persistent halo channels, axpys, scalar reductions
// on resident buffers) allocates nothing.
func TestAllocGateDistCGIteration(t *testing.T) {
	const n, ranks, threads = 300, 4, 2
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: n, Bandwidth: 40, PerRow: 5, Seed: 11, Symmetric: true, SPD: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(g)
	plan, err := core.BuildPlan(a, core.PartitionByNnz(a, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(plan, core.WithThreads(threads), core.WithMode(core.TaskMode))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(i+1)
	}
	x := make([]float64, n)
	// tol unreachable: every solve runs its full maxIter iterations, so the
	// two measurements differ ONLY in iteration count.
	solve := func(maxIter int) func() {
		return func() {
			for i := range x {
				x[i] = 0
			}
			if _, err := DistCG(cl, b, x, 1e-300, maxIter); err != nil {
				t.Fatal(err)
			}
		}
	}
	short, long := solve(2), solve(34)
	short()
	long()
	allocsShort := testing.AllocsPerRun(10, short)
	allocsLong := testing.AllocsPerRun(10, long)
	if allocsLong > allocsShort {
		t.Fatalf("DistCG allocates per iteration: %d-iter solve = %.1f allocs, %d-iter solve = %.1f allocs (want equal)",
			2, allocsShort, 34, allocsLong)
	}
}
