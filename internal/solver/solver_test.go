package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/spmv"
)

// laplacian1D returns the n×n tridiagonal [-1, 2, -1] matrix with known
// eigenvalues 2 - 2cos(kπ/(n+1)).
func laplacian1D(n int) *matrix.CSR {
	var entries []matrix.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i), Val: 2})
		if i > 0 {
			entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i - 1), Val: -1})
		}
		if i < n-1 {
			entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i + 1), Val: -1})
		}
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		panic(err)
	}
	return a
}

func TestSymTridiagEigenvaluesKnown(t *testing.T) {
	// Laplacian tridiagonal: analytic spectrum.
	n := 12
	diag := make([]float64, n)
	off := make([]float64, n-1)
	for i := range diag {
		diag[i] = 2
	}
	for i := range off {
		off[i] = -1
	}
	eigs, err := SymTridiagEigenvalues(diag, off)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(float64(k+1)*math.Pi/float64(n+1))
		if math.Abs(eigs[k]-want) > 1e-10 {
			t.Errorf("λ[%d] = %.12f, want %.12f", k, eigs[k], want)
		}
	}
}

func TestSymTridiagDiagonalOnly(t *testing.T) {
	eigs, err := SymTridiagEigenvalues([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-14 {
			t.Errorf("eigs = %v, want %v", eigs, want)
		}
	}
}

func TestLanczosGroundStateLaplacianExact(t *testing.T) {
	// m = n spans the full Krylov space: the Ritz values are the exact
	// spectrum (up to round-off).
	n := 100
	a := laplacian1D(n)
	want := 2 - 2*math.Cos(math.Pi/float64(n+1))
	e0, err := GroundState(CSROperator{a}, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e0-want) > 1e-8 {
		t.Errorf("E₀ = %.12f, want %.12f", e0, want)
	}
}

func TestLanczosConvergesMonotonically(t *testing.T) {
	// More steps give a lower (better) ground-state estimate — the
	// variational property of the Lanczos subspace.
	n := 400
	a := laplacian1D(n)
	var prev float64 = math.Inf(1)
	for _, m := range []int{20, 60, 150} {
		e0, err := GroundState(CSROperator{a}, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if e0 > prev+1e-12 {
			t.Errorf("E₀(m=%d) = %.9g above previous %.9g", m, e0, prev)
		}
		prev = e0
	}
	// The Laplacian's clustered low end converges slowly; require the
	// estimate to be within the right order of magnitude by m = 150.
	want := 2 - 2*math.Cos(math.Pi/float64(n+1))
	if prev > want*10 || prev < want-1e-12 {
		t.Errorf("E₀(m=150) = %.9g, want near %.9g (variational from above)", prev, want)
	}
}

func TestLanczosExtremalEigsBothEnds(t *testing.T) {
	n := 100
	a := laplacian1D(n)
	r, err := Lanczos(CSROperator{a}, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	top := r.Eigenvalues[len(r.Eigenvalues)-1]
	wantTop := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	if math.Abs(top-wantTop) > 1e-8 {
		t.Errorf("λ_max = %.12f, want %.12f", top, wantTop)
	}
	if r.MVMs != r.Steps {
		t.Errorf("MVMs %d != steps %d", r.MVMs, r.Steps)
	}
}

func TestLanczosOnHolsteinMatchesDense(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 1, NumDown: 1, MaxPhonons: 2,
		T: 1, U: 3, Omega: 1, G: 0.7, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	// Reference: power iteration on the shifted operator (dimension 160).
	n := a.NumRows
	shift := 60.0
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for it := 0; it < 3000; it++ {
		a.MulVec(y, x)
		for i := range y {
			y[i] = shift*x[i] - y[i]
		}
		Scale(1/Norm2(y), y)
		copy(x, y)
	}
	a.MulVec(y, x)
	want := Dot(x, y)

	e0, err := GroundState(CSROperator{a}, 70, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e0-want) > 1e-7 {
		t.Errorf("Lanczos E₀ = %.10f, power iteration %.10f", e0, want)
	}
}

func TestLanczosDistributedOperatorAgrees(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 2,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	serial, err := GroundState(CSROperator{a}, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	part := core.PartitionByNnz(h, 4)
	plan, err := core.BuildPlan(h, part, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(plan, core.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, mode := range core.Modes {
		if err := cl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		dist, err := GroundState(&DistOperator{Cluster: cl}, 50, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dist-serial) > 1e-9 {
			t.Errorf("mode %v: distributed E₀ %.12f != serial %.12f", mode, dist, serial)
		}
	}
}

func TestCGSolvesPoisson(t *testing.T) {
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 10, Ny: 10, Nz: 10, GradingZ: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	n := a.NumRows
	rng := rand.New(rand.NewSource(4))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	res, err := CG(CSROperator{a}, b, x, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %.9f, want %.9f", i, x[i], xTrue[i])
		}
	}
	// Residual history is monotone-ish and recorded each iteration.
	if len(res.History) != res.Iterations {
		t.Errorf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
}

func TestCGWithTeamOperator(t *testing.T) {
	p, _ := genmat.NewPoisson(genmat.PoissonConfig{Nx: 8, Ny: 8, Nz: 8})
	a := matrix.Materialize(p)
	n := a.NumRows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	team := spmv.NewTeam(4)
	defer team.Close()
	x := make([]float64, n)
	res, err := CG(NewTeamOperator(a, team), b, x, 1e-8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("team CG did not converge (res %g)", res.Residual)
	}
	// Check the residual independently with the serial kernel.
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if Norm2(r)/Norm2(b) > 1e-7 {
		t.Errorf("true residual %g too large", Norm2(r)/Norm2(b))
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	a := matrix.NewCSRFromDense([][]float64{{-1, 0}, {0, -1}})
	b := []float64{1, 1}
	x := make([]float64, 2)
	if _, err := CG(CSROperator{a}, b, x, 1e-8, 10); err == nil {
		t.Error("CG accepted a negative definite operator")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	res, err := CG(CSROperator{a}, make([]float64, 10), x, 1e-10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS should converge instantly")
	}
	for i := range x {
		if x[i] != 0 {
			t.Error("zero RHS should produce zero solution")
		}
	}
}

func TestKPMDOSNormalization(t *testing.T) {
	// The DOS integrates to ≈ 1 (per state).
	a := laplacian1D(200)
	res, err := KPMDOS(CSROperator{a}, -0.5, 4.5, 64, 8, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for k := 1; k < len(res.Energies); k++ {
		dx := res.Energies[k] - res.Energies[k-1]
		integral += 0.5 * (res.Density[k] + res.Density[k-1]) * dx
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("DOS integral = %.4f, want ≈ 1", integral)
	}
	if res.Moments[0] <= 0.9 || res.Moments[0] > 1.01 {
		t.Errorf("μ₀ = %.4f, want ≈ 1", res.Moments[0])
	}
}

func TestKPMDOSLocatesSpectrum(t *testing.T) {
	// Density must be concentrated where the Laplacian spectrum lives
	// ([0, 4]) and near zero outside.
	a := laplacian1D(300)
	res, err := KPMDOS(CSROperator{a}, -2, 6, 128, 8, 512, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate (trapezoid) the density inside and outside the true
	// spectrum [0, 4]: outside weight must be a small Gibbs remnant.
	var inside, outside float64
	for k := 1; k < len(res.Energies); k++ {
		dx := res.Energies[k] - res.Energies[k-1]
		d := 0.5 * (math.Abs(res.Density[k]) + math.Abs(res.Density[k-1])) * dx
		mid := 0.5 * (res.Energies[k] + res.Energies[k-1])
		switch {
		case mid > -0.1 && mid < 4.1:
			inside += d
		case mid < -0.5 || mid > 4.5:
			outside += d
		}
	}
	if outside > inside*0.05 {
		t.Errorf("spectral weight outside the spectrum: %.4g vs %.4g inside", outside, inside)
	}
}

func TestChebyshevTimeEvolutionPreservesNorm(t *testing.T) {
	a := laplacian1D(128)
	n := 128
	rng := rand.New(rand.NewSource(8))
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
	}
	norm0 := math.Sqrt(Dot(re, re) + Dot(im, im))
	mvms, err := ChebyshevTimeEvolution(CSROperator{a}, re, im, -0.5, 4.5, 2.0, 48)
	if err != nil {
		t.Fatal(err)
	}
	norm1 := math.Sqrt(Dot(re, re) + Dot(im, im))
	if math.Abs(norm1-norm0)/norm0 > 1e-8 {
		t.Errorf("unitarity violated: ‖ψ‖ %.12f → %.12f", norm0, norm1)
	}
	if mvms < 48 {
		t.Errorf("MVM count %d below expansion order", mvms)
	}
}

func TestChebyshevEvolutionMatchesEigenphase(t *testing.T) {
	// Evolve an exact eigenvector: the state must only acquire a phase
	// e^{-i λ t}.
	n := 64
	a := laplacian1D(n)
	k := 3
	lambda := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = math.Sin(float64(k) * math.Pi * float64(i+1) / float64(n+1))
	}
	norm := Norm2(re)
	Scale(1/norm, re)
	orig := append([]float64(nil), re...)
	tEvolve := 1.7
	if _, err := ChebyshevTimeEvolution(CSROperator{a}, re, im, -0.5, 4.5, tEvolve, 64); err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(-lambda*tEvolve), math.Sin(-lambda*tEvolve)
	for i := range orig {
		if math.Abs(re[i]-c*orig[i]) > 1e-8 || math.Abs(im[i]-s*orig[i]) > 1e-8 {
			t.Fatalf("eigenstate evolution wrong at %d: (%.9f, %.9f) vs (%.9f, %.9f)",
				i, re[i], im[i], c*orig[i], s*orig[i])
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g", Norm2(x))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
	if Dot(x, x) != 25 {
		t.Errorf("Dot = %g", Dot(x, x))
	}
}

func TestLanczosInvalidInputs(t *testing.T) {
	a := laplacian1D(5)
	if _, err := Lanczos(CSROperator{a}, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := KPMDOS(CSROperator{a}, 3, 3, 16, 1, 16, 1); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := CG(CSROperator{a}, make([]float64, 4), make([]float64, 5), 1e-8, 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCGWithFormatOperator(t *testing.T) {
	p, _ := genmat.NewPoisson(genmat.PoissonConfig{Nx: 8, Ny: 8, Nz: 8})
	a := matrix.Materialize(p)
	n := a.NumRows
	sell, err := formats.NewSELLCSigma(a, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	team := spmv.NewTeam(4)
	defer team.Close()
	x := make([]float64, n)
	res, err := CG(NewFormatOperator(sell, team), b, x, 1e-8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SELL-C-σ CG did not converge (res %g)", res.Residual)
	}
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if Norm2(r)/Norm2(b) > 1e-7 {
		t.Errorf("true residual %g too large", Norm2(r)/Norm2(b))
	}
}

func TestLanczosWithFormatOperatorMatchesCSR(t *testing.T) {
	a := laplacian1D(300)
	sell, err := formats.NewSELLCSigma(a, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GroundState(CSROperator{A: a}, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	team := spmv.NewTeam(2)
	defer team.Close()
	got, err := GroundState(NewFormatOperator(sell, team), 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SELL-C-σ ground state %g differs from CSR %g", got, want)
	}
}
