package solver

import "fmt"

// CGResult reports the outcome of a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ‖b - Ax‖₂ / ‖b‖₂
	Converged  bool
	MVMs       int
	// History holds the relative residual after each iteration.
	History []float64
}

// CG solves A·x = b for symmetric positive definite A, starting from the
// given x (commonly zero), until the relative residual drops below tol or
// maxIter iterations elapse. This is the solver setting of the paper's
// sAMG test case (§1.3.1): Poisson systems where spMVM dominates run time.
func CG(op Operator, b, x []float64, tol float64, maxIter int) (CGResult, error) {
	n := op.Dim()
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("solver: CG dimension mismatch: op %d, b %d, x %d", n, len(b), len(x))
	}
	if tol <= 0 || maxIter < 1 {
		return CGResult{}, fmt.Errorf("solver: CG needs tol > 0 and maxIter ≥ 1")
	}
	bNorm := Norm2(b)
	if bNorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}, nil
	}

	r := make([]float64, n)
	ap := make([]float64, n)
	res := CGResult{}

	op.Apply(ap, x)
	res.MVMs++
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	p := append([]float64(nil), r...)
	rr := Dot(r, r)

	for k := 0; k < maxIter; k++ {
		op.Apply(ap, p)
		res.MVMs++
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("solver: CG broke down (pᵀAp = %g ≤ 0); operator not SPD?", pap)
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		res.Iterations = k + 1
		rel := sqrtNonneg(rrNew) / bNorm
		res.History = append(res.History, rel)
		res.Residual = rel
		if rel < tol {
			res.Converged = true
			return res, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return res, nil
}

func sqrtNonneg(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return mathSqrt(v)
}
