package solver

import (
	"math"
	"testing"

	"repro/internal/genmat"
	"repro/internal/matrix"
)

func csrDiagonal(a *matrix.CSR) []float64 {
	d := make([]float64, a.NumRows)
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if int(c) == i {
				d[i] = vals[k]
			}
		}
	}
	return d
}

func TestSmallestEigSymKnown(t *testing.T) {
	// H = [[2,-1],[-1,2]]: eigenvalues 1 and 3.
	lam, vec, err := smallestEigSym([]float64{2, -1, -1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-1) > 1e-10 {
		t.Errorf("λ = %.12f, want 1", lam)
	}
	// Eigenvector ∝ (1,1)/√2.
	if math.Abs(math.Abs(vec[0])-math.Sqrt2/2) > 1e-8 || math.Abs(vec[0]-vec[1]) > 1e-8 {
		t.Errorf("eigenvector %v, want ±(0.707, 0.707)", vec)
	}
}

func TestSmallestEigSymDiagonal(t *testing.T) {
	lam, vec, err := smallestEigSym([]float64{5, 0, 0, 0, -2, 0, 0, 0, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam+2) > 1e-12 {
		t.Errorf("λ = %g, want -2", lam)
	}
	if math.Abs(math.Abs(vec[1])-1) > 1e-8 {
		t.Errorf("eigenvector %v, want e₂", vec)
	}
}

func TestDavidsonLaplacian(t *testing.T) {
	// The Laplacian's constant diagonal neutralizes the preconditioner, so
	// convergence is slow; a modest size and tolerance keep the test honest
	// (λ error ≈ residual²/gap ≪ the assertion below).
	n := 100
	a := laplacian1D(n)
	want := 2 - 2*math.Cos(math.Pi/float64(n+1))
	res, err := Davidson(CSROperator{a}, csrDiagonal(a), 30, 2000, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Davidson did not converge: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	if math.Abs(res.Eigenvalue-want) > 1e-8 {
		t.Errorf("λ₀ = %.10f, want %.10f", res.Eigenvalue, want)
	}
	// The eigenvector satisfies A x ≈ λ x to the residual tolerance.
	y := make([]float64, n)
	a.MulVec(y, res.Eigenvector)
	for i := range y {
		if math.Abs(y[i]-res.Eigenvalue*res.Eigenvector[i]) > 1e-5 {
			t.Fatalf("eigen residual at %d too large", i)
		}
	}
}

func TestDavidsonMatchesLanczosOnHolstein(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 0.9, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	lan, err := GroundState(CSROperator{a}, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	dav, err := Davidson(CSROperator{a}, csrDiagonal(a), 30, 500, 1e-9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !dav.Converged {
		t.Fatalf("Davidson not converged (res %g)", dav.Residual)
	}
	if math.Abs(dav.Eigenvalue-lan) > 1e-6 {
		t.Errorf("Davidson %.10f vs Lanczos %.10f", dav.Eigenvalue, lan)
	}
}

func TestDavidsonRestartPath(t *testing.T) {
	// Tiny max subspace forces restarts. Davidson's diagonal preconditioner
	// needs a varied diagonal to be effective (on a constant diagonal it
	// degenerates to steepest descent), so use a graded diagonal matrix
	// with weak couplings — the regime the method was designed for.
	n := 150
	var entries []matrix.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i), Val: float64(i + 1)})
		if i+1 < n {
			entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i + 1), Val: 0.3})
			entries = append(entries, matrix.Coord{Row: int32(i + 1), Col: int32(i), Val: 0.3})
		}
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Davidson(CSROperator{a}, csrDiagonal(a), 4, 2000, 1e-9, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted Davidson did not converge (res %g)", res.Residual)
	}
	// Reference from a generous Lanczos run.
	want, err := GroundState(CSROperator{a}, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalue-want) > 1e-7 {
		t.Errorf("λ₀ = %.10f, want %.10f", res.Eigenvalue, want)
	}
}

func TestDavidsonInvalidInputs(t *testing.T) {
	a := laplacian1D(10)
	if _, err := Davidson(CSROperator{a}, make([]float64, 5), 5, 10, 1e-8, 1); err == nil {
		t.Error("wrong diagonal length accepted")
	}
	if _, err := Davidson(CSROperator{a}, csrDiagonal(a), 1, 10, 1e-8, 1); err == nil {
		t.Error("subspace of 1 accepted")
	}
	if _, err := Davidson(CSROperator{a}, csrDiagonal(a), 5, 10, 0, 1); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestOperatorDiagonal(t *testing.T) {
	a := laplacian1D(20)
	d := OperatorDiagonal(CSROperator{a})
	for i, v := range d {
		if v != 2 {
			t.Fatalf("diag[%d] = %g, want 2", i, v)
		}
	}
}
