package solver

import (
	"fmt"
	"math"
	"math/rand"
)

// LanczosResult reports extremal Ritz values after m Lanczos steps.
type LanczosResult struct {
	// Eigenvalues are the Ritz values in ascending order (length ≤ m).
	Eigenvalues []float64
	// Steps is the number of Lanczos iterations actually performed
	// (early breakdown terminates the recursion).
	Steps int
	// MVMs counts matrix-vector multiplications, the paper's dominant cost.
	MVMs int
}

// Lanczos runs m steps of the symmetric Lanczos iteration with full
// reorthogonalization (adequate at the moderate m the examples use) and
// returns the Ritz values. The operator must be symmetric.
func Lanczos(op Operator, m int, seed int64) (LanczosResult, error) {
	n := op.Dim()
	if n == 0 {
		return LanczosResult{}, fmt.Errorf("solver: Lanczos on empty operator")
	}
	if m < 1 {
		return LanczosResult{}, fmt.Errorf("solver: Lanczos needs m ≥ 1, got %d", m)
	}
	if m > n {
		m = n
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	Scale(1/Norm2(v), v)

	var alphas, betas []float64
	basis := [][]float64{append([]float64(nil), v...)}
	w := make([]float64, n)
	res := LanczosResult{}

	for j := 0; j < m; j++ {
		op.Apply(w, basis[j])
		res.MVMs++
		alpha := Dot(basis[j], w)
		alphas = append(alphas, alpha)
		Axpy(-alpha, basis[j], w)
		if j > 0 {
			Axpy(-betas[j-1], basis[j-1], w)
		}
		// Full reorthogonalization against the whole basis.
		for _, u := range basis {
			Axpy(-Dot(u, w), u, w)
		}
		beta := Norm2(w)
		res.Steps = j + 1
		if beta < 1e-12 || j == m-1 {
			break
		}
		betas = append(betas, beta)
		next := append([]float64(nil), w...)
		Scale(1/beta, next)
		basis = append(basis, next)
	}

	eigs, err := SymTridiagEigenvalues(alphas, betas)
	if err != nil {
		return res, err
	}
	res.Eigenvalues = eigs
	return res, nil
}

// GroundState returns the lowest Ritz value after m Lanczos steps — the
// quantity the exact-diagonalization application computes (§1.3.1).
func GroundState(op Operator, m int, seed int64) (float64, error) {
	r, err := Lanczos(op, m, seed)
	if err != nil {
		return 0, err
	}
	if len(r.Eigenvalues) == 0 {
		return 0, fmt.Errorf("solver: Lanczos produced no Ritz values")
	}
	return r.Eigenvalues[0], nil
}

// SymTridiagEigenvalues returns the eigenvalues of the symmetric
// tridiagonal matrix with the given diagonal and off-diagonal, ascending.
// It implements the implicit QL iteration with Wilkinson shifts (tql1).
func SymTridiagEigenvalues(diag, off []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, nil
	}
	if len(off) < n-1 {
		return nil, fmt.Errorf("solver: off-diagonal length %d < %d", len(off), n-1)
	}
	d := append([]float64(nil), diag...)
	e := make([]float64, n)
	copy(e, off[:n-1])

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return nil, fmt.Errorf("solver: QL iteration did not converge at row %d", l)
			}
			// Find a small subdiagonal element.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			// Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	sortFloats(d)
	return d, nil
}

func sortFloats(x []float64) {
	// Insertion sort: n is small (Lanczos subspace size).
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
