package genmat

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// RandomBandConfig describes a random band matrix: each row holds the
// diagonal plus entries at random offsets within ±Bandwidth. Used by tests
// and as a configurable synthetic workload for the benchmark harness.
type RandomBandConfig struct {
	N         int
	Bandwidth int // maximum |i-j| of off-diagonal entries
	PerRow    int // target off-diagonal entries per row
	Seed      uint64
	Symmetric bool // mirror entries to keep the matrix symmetric
	SPD       bool // make the diagonal dominant (implies usable with CG)
}

// RandomBand is a streaming random band matrix implementing
// matrix.ValueSource. Rows are generated deterministically from the seed,
// so the same configuration always yields the same matrix; generation is
// safe for concurrent use.
type RandomBand struct {
	cfg RandomBandConfig
}

// NewRandomBand validates the configuration.
func NewRandomBand(cfg RandomBandConfig) (*RandomBand, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("genmat: invalid random band size %d", cfg.N)
	}
	if cfg.Bandwidth < 0 || cfg.PerRow < 0 {
		return nil, fmt.Errorf("genmat: negative bandwidth or per-row count")
	}
	return &RandomBand{cfg: cfg}, nil
}

// Dims implements matrix.PatternSource.
func (g *RandomBand) Dims() (rows, cols int) { return g.cfg.N, g.cfg.N }

// AppendRow implements matrix.PatternSource.
func (g *RandomBand) AppendRow(i int, dst []int32) []int32 {
	cols, _ := g.row(i, dst, nil, false)
	return cols
}

// AppendRowValues implements matrix.ValueSource.
func (g *RandomBand) AppendRowValues(i int, cols []int32, vals []float64) ([]int32, []float64) {
	return g.row(i, cols, vals, true)
}

// pairValue returns the deterministic value of entry (i,j); symmetric
// configurations use the unordered pair so A[i][j] == A[j][i].
func (g *RandomBand) pairValue(i, j int) float64 {
	a, b := i, j
	if g.cfg.Symmetric && a > b {
		a, b = b, a
	}
	h := splitmix(uint64(a)*0x1000003 + uint64(b)*31 + g.cfg.Seed*0x9e3779b97f4a7c15)
	// Map to (-1, 1), avoiding 0.
	v := float64(int64(h>>11))/float64(1<<52) - 1
	if v == 0 {
		v = 0.5
	}
	return v
}

// pairPresent reports whether the off-diagonal entry (i,j) exists.
func (g *RandomBand) pairPresent(i, j int) bool {
	a, b := i, j
	if g.cfg.Symmetric && a > b {
		a, b = b, a
	}
	if a == b {
		return true
	}
	d := b - a
	if d < 0 {
		d = -d
	}
	if d > g.cfg.Bandwidth {
		return false
	}
	// Bernoulli draw with probability PerRow / (2·Bandwidth), hashed from
	// the unordered pair so symmetry is automatic.
	if g.cfg.Bandwidth == 0 {
		return false
	}
	p := float64(g.cfg.PerRow) / float64(2*g.cfg.Bandwidth)
	if p > 1 {
		p = 1
	}
	h := splitmix(uint64(a)*0x9E3779B1 + uint64(b) + g.cfg.Seed)
	return float64(h>>11)/float64(1<<53) < p
}

func (g *RandomBand) row(i int, cols []int32, vals []float64, withVals bool) ([]int32, []float64) {
	lo := i - g.cfg.Bandwidth
	if lo < 0 {
		lo = 0
	}
	hi := i + g.cfg.Bandwidth
	if hi > g.cfg.N-1 {
		hi = g.cfg.N - 1
	}
	var offSum float64
	for j := lo; j <= hi; j++ {
		if j == i || !g.pairPresent(i, j) {
			continue
		}
		cols = append(cols, int32(j))
		if withVals {
			v := g.pairValue(i, j)
			vals = append(vals, v)
			offSum += math.Abs(v)
		}
	}
	cols = append(cols, int32(i))
	if withVals {
		d := g.pairValue(i, i)
		if g.cfg.SPD {
			d = offSum + 1 // strict diagonal dominance → SPD when symmetric
		}
		vals = append(vals, d)
	}
	return cols, vals
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

var _ matrix.ValueSource = (*RandomBand)(nil)
