package genmat

import (
	"fmt"
	"math/bits"
)

// FermionBasis enumerates the occupation-number basis of n spinless fermions
// on a ring of `sites` sites and precomputes all nearest-neighbour hopping
// matrix elements with the correct Jordan–Wigner signs. One basis per spin
// species; the Hubbard basis is the tensor product of an up and a down copy.
//
// The paper's electronic subspace (six electrons on six sites, dimension 400)
// is FermionBasis{Sites: 6, N: 3}² = 20² = 400.
type FermionBasis struct {
	Sites, N int
	// Masks lists the occupation bitmasks in ascending order; the position
	// in this slice is the basis index.
	Masks []uint32
	index map[uint32]int32
	// hops[s] lists the states reachable from state s by one
	// nearest-neighbour hop, with amplitudes ±1 (the fermionic sign).
	hops [][]Hop
}

// Hop is a single hopping matrix element <to| c†_b c_a |from> = Sign.
type Hop struct {
	To   int32
	Sign int8
}

// NewFermionBasis enumerates the basis and hop table for n fermions on a
// periodic ring.
func NewFermionBasis(sites, n int) (*FermionBasis, error) {
	if sites < 1 || sites > 30 || n < 0 || n > sites {
		return nil, fmt.Errorf("genmat: invalid fermion basis (sites=%d, n=%d)", sites, n)
	}
	b := &FermionBasis{Sites: sites, N: n, index: make(map[uint32]int32)}
	for mask := uint32(0); mask < 1<<sites; mask++ {
		if bits.OnesCount32(mask) == n {
			b.index[mask] = int32(len(b.Masks))
			b.Masks = append(b.Masks, mask)
		}
	}
	b.hops = make([][]Hop, len(b.Masks))
	// Ring bonds (a, a+1 mod sites). On a two-site ring the wrap bond (1,0)
	// coincides with bond (0,1), so it is skipped to avoid double counting.
	bonds := sites
	if sites == 2 {
		bonds = 1
	}
	if sites == 1 {
		bonds = 0
	}
	for s, mask := range b.Masks {
		for a := 0; a < bonds; a++ {
			bSite := (a + 1) % sites
			for _, pair := range [2][2]int{{a, bSite}, {bSite, a}} {
				from, to := pair[0], pair[1]
				if mask&(1<<from) == 0 || mask&(1<<to) != 0 {
					continue
				}
				newMask := mask&^(1<<from) | 1<<to
				sign := hopSign(mask, from, to)
				b.hops[s] = append(b.hops[s], Hop{To: b.index[newMask], Sign: sign})
			}
		}
	}
	return b, nil
}

// hopSign computes the fermionic sign of c†_to c_from acting on mask:
// the parity of the number of occupied sites the operator string crosses.
func hopSign(mask uint32, from, to int) int8 {
	// sign(c_from): (-1)^(occupied sites below from)
	s := bits.OnesCount32(mask & (1<<from - 1))
	// After annihilation:
	m2 := mask &^ (1 << from)
	// sign(c†_to): (-1)^(occupied sites below to)
	s += bits.OnesCount32(m2 & (1<<to - 1))
	if s%2 == 0 {
		return 1
	}
	return -1
}

// Dim returns the number of basis states, C(Sites, N).
func (b *FermionBasis) Dim() int { return len(b.Masks) }

// Index returns the basis index of the given occupation mask, or -1 if the
// mask has the wrong particle number.
func (b *FermionBasis) Index(mask uint32) int32 {
	if i, ok := b.index[mask]; ok {
		return i
	}
	return -1
}

// Hops returns the hop list of basis state s. Callers must not modify it.
func (b *FermionBasis) Hops(s int) []Hop { return b.hops[s] }

// Occupied reports whether site i is occupied in basis state s.
func (b *FermionBasis) Occupied(s, i int) bool {
	return b.Masks[s]&(1<<i) != 0
}
