package genmat

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func tinyHolstein(t *testing.T, o Ordering) *Holstein {
	t.Helper()
	h, err := NewHolstein(HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 0.8, Ordering: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHolsteinPaperDimensions(t *testing.T) {
	h, err := NewHolstein(PaperConfig(PhononsContiguous))
	if err != nil {
		t.Fatal(err)
	}
	if h.ElectronDim() != 400 {
		t.Errorf("electron dim = %d, want 400", h.ElectronDim())
	}
	if h.PhononDim() != 15504 {
		t.Errorf("phonon dim = %d, want 15504", h.PhononDim())
	}
	rows, cols := h.Dims()
	if rows != 6201600 || cols != 6201600 {
		t.Errorf("dims = %dx%d, want 6201600 (paper's N)", rows, cols)
	}
}

func TestHolsteinSymmetric(t *testing.T) {
	for _, o := range []Ordering{ElectronsContiguous, PhononsContiguous} {
		h := tinyHolstein(t, o)
		a := matrix.Materialize(h)
		if err := a.Validate(); err != nil {
			t.Fatalf("%v: invalid CSR: %v", o, err)
		}
		if !a.IsSymmetric(1e-12) {
			t.Errorf("%v: Hamiltonian not symmetric", o)
		}
	}
}

func TestHolsteinOrderingsArePermutations(t *testing.T) {
	// HMEp and HMeP are the same operator under a permutation of the basis;
	// eigen-invariants like the trace and Frobenius norm must agree.
	a := matrix.Materialize(tinyHolstein(t, ElectronsContiguous))
	b := matrix.Materialize(tinyHolstein(t, PhononsContiguous))
	if a.Nnz() != b.Nnz() {
		t.Fatalf("nnz differ: %d vs %d", a.Nnz(), b.Nnz())
	}
	trace := func(m *matrix.CSR) float64 {
		var tr float64
		for i := 0; i < m.NumRows; i++ {
			cols, vals := m.Row(i)
			for k, c := range cols {
				if int(c) == i {
					tr += vals[k]
				}
			}
		}
		return tr
	}
	frob := func(m *matrix.CSR) float64 {
		var s float64
		for _, v := range m.Val {
			s += v * v
		}
		return math.Sqrt(s)
	}
	if math.Abs(trace(a)-trace(b)) > 1e-9 {
		t.Errorf("traces differ: %g vs %g", trace(a), trace(b))
	}
	if math.Abs(frob(a)-frob(b)) > 1e-9 {
		t.Errorf("Frobenius norms differ: %g vs %g", frob(a), frob(b))
	}
}

func TestHolsteinExplicitPermutation(t *testing.T) {
	// Check entry-by-entry: A_HMEp[p·Ne+e, p'·Ne+e'] == A_HMeP[e·Np+p, e'·Np+p'].
	ha := tinyHolstein(t, ElectronsContiguous)
	hb := tinyHolstein(t, PhononsContiguous)
	a := matrix.Materialize(ha).Dense()
	b := matrix.Materialize(hb).Dense()
	ne := ha.ElectronDim()
	np := int(ha.PhononDim())
	for e := 0; e < ne; e++ {
		for p := 0; p < np; p++ {
			for e2 := 0; e2 < ne; e2++ {
				for p2 := 0; p2 < np; p2++ {
					va := a[p*ne+e][p2*ne+e2]
					vb := b[e*np+p][e2*np+p2]
					if va != vb {
						t.Fatalf("permutation mismatch at e=%d p=%d e2=%d p2=%d: %g vs %g",
							e, p, e2, p2, va, vb)
					}
				}
			}
		}
	}
}

func TestHolsteinDiagonal(t *testing.T) {
	h := tinyHolstein(t, PhononsContiguous)
	a := matrix.Materialize(h)
	// Row 0: electron state 0 ⊗ phonon vacuum. Diagonal = U·docc + 0.
	// Row for phonon rank r has diagonal U·docc + ω₀·total(m).
	m := make([]int, h.fock.Modes)
	for p := int64(0); p < h.PhononDim(); p++ {
		h.fock.Unrank(p, m)
		row := int(p) // electron state 0, PhononsContiguous
		cols, vals := a.Row(row)
		var diag float64
		found := false
		for k, c := range cols {
			if int(c) == row {
				diag = vals[k]
				found = true
			}
		}
		if !found {
			t.Fatalf("row %d has no diagonal", row)
		}
		want := h.diagEl[0] + h.cfg.Omega*float64(Total(m))
		if math.Abs(diag-want) > 1e-12 {
			t.Errorf("diag(p=%d) = %g, want %g", p, diag, want)
		}
	}
}

func TestHolsteinHubbardOnlyLimit(t *testing.T) {
	// With zero phonon coupling and zero phonon budget the matrix reduces to
	// the plain Hubbard model on the electronic space.
	h, err := NewHolstein(HolsteinConfig{
		Sites: 4, NumUp: 1, NumDown: 1, MaxPhonons: 0,
		T: 1, U: 7, Omega: 1, G: 0, Ordering: PhononsContiguous,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	rows, _ := a.Dims()
	if rows != 16 {
		t.Fatalf("dims = %d, want 16 (4x4 electronic only)", rows)
	}
	// Trace = U × (number of doubly-occupied basis states) = 7 × 4 sites.
	var tr float64
	for i := 0; i < rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if int(c) == i {
				tr += vals[k]
			}
		}
	}
	if math.Abs(tr-28) > 1e-12 {
		t.Errorf("Hubbard trace = %g, want 28", tr)
	}
}

func TestHolsteinPatternMatchesValues(t *testing.T) {
	h := tinyHolstein(t, ElectronsContiguous)
	rows, _ := h.Dims()
	var pc []int32
	var vc []int32
	var vv []float64
	for i := 0; i < rows; i += 7 {
		pc = h.AppendRow(i, pc[:0])
		vc, vv = h.AppendRowValues(i, vc[:0], vv[:0])
		if len(pc) != len(vc) || len(vc) != len(vv) {
			t.Fatalf("row %d: pattern %d cols, values %d cols", i, len(pc), len(vc))
		}
		for k := range pc {
			if pc[k] != vc[k] {
				t.Fatalf("row %d: pattern col %d != value col %d", i, pc[k], vc[k])
			}
		}
	}
}

func TestHolsteinNnzrReasonable(t *testing.T) {
	// The scaled-down matrix keeps the paper's order of magnitude Nnzr≈15.
	h := tinyHolstein(t, PhononsContiguous)
	s := matrix.ComputeStats(h)
	if s.NnzRowAvg < 5 || s.NnzRowAvg > 25 {
		t.Errorf("Nnzr = %.2f, outside plausible band", s.NnzRowAvg)
	}
	if s.Diagonal != int64(s.Rows) {
		t.Errorf("missing diagonal entries: %d of %d", s.Diagonal, s.Rows)
	}
}

func TestHolsteinGroundStateEnergySanity(t *testing.T) {
	// Power iteration on (shift·I - H) converges to the lowest eigenpair of
	// the tiny model; check the Rayleigh quotient is below the minimum
	// diagonal (variational bound says E0 ≤ min diag for this model).
	h := tinyHolstein(t, PhononsContiguous)
	a := matrix.Materialize(h)
	n := a.NumRows
	shift := 50.0
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for iter := 0; iter < 400; iter++ {
		a.MulVec(y, x)
		for i := range y {
			y[i] = shift*x[i] - y[i]
		}
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	a.MulVec(y, x)
	var rq float64
	for i := range x {
		rq += x[i] * y[i]
	}
	minDiag := math.Inf(1)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if int(c) == i && vals[k] < minDiag {
				minDiag = vals[k]
			}
		}
	}
	if rq >= minDiag {
		t.Errorf("ground state energy %.6f not below min diagonal %.6f", rq, minDiag)
	}
}

func TestHolsteinInvalidConfigs(t *testing.T) {
	bad := []HolsteinConfig{
		{Sites: 1, NumUp: 0, NumDown: 0, MaxPhonons: 1},
		{Sites: 4, NumUp: 5, NumDown: 0, MaxPhonons: 1},
		{Sites: 4, NumUp: 1, NumDown: 1, MaxPhonons: -1},
	}
	for i, cfg := range bad {
		if _, err := NewHolstein(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
