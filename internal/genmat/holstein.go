package genmat

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Ordering selects how the tensor-product basis |electron⟩⊗|phonon⟩ is
// numbered, producing the paper's two sparsity patterns (Fig. 1a/1b).
//
// Naming follows the paper: in "HMEp" the capital E marks the electronic
// index as the slowly varying (outer, block) index, so the *phononic* basis
// elements are numbered contiguously (Fig. 1a); in "HMeP" the phononic
// index is outer and the *electronic* elements are contiguous (Fig. 1b).
// HMeP is the study's reference problem (κ ≈ 2.5); HMEp has the worse RHS
// locality (κ ≈ 3.79, ≈ 50% more excess B(:) traffic, ≈ 10% slower).
type Ordering int

const (
	// ElectronsContiguous numbers electronic basis elements contiguously:
	// global index = p·Ne + e. This is the paper's HMeP pattern (Fig. 1b).
	ElectronsContiguous Ordering = iota
	// PhononsContiguous numbers phononic basis elements contiguously:
	// global index = e·Np + p. This is the paper's HMEp pattern (Fig. 1a).
	PhononsContiguous
)

func (o Ordering) String() string {
	switch o {
	case ElectronsContiguous:
		return "HMeP"
	case PhononsContiguous:
		return "HMEp"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// HMeP is the paper's reference ordering (electronic elements contiguous).
const HMeP = ElectronsContiguous

// HMEp is the ordering with worse RHS locality (phononic elements contiguous).
const HMEp = PhononsContiguous

// HolsteinConfig describes a Holstein–Hubbard Hamiltonian
//
//	H = -t Σ_{⟨i,j⟩σ} c†_{iσ}c_{jσ} + U Σ_i n_{i↑}n_{i↓}
//	    + ω₀ Σ_k b†_k b_k - g ω₀ Σ_k λ_k(n) (b†_k + b_k)
//
// on a periodic ring, with phonons expressed in the Sites-1 non-uniform real
// normal modes (the uniform mode couples only to the conserved total
// electron number and is dropped, exactly as in exact-diagonalization
// practice) and a cutoff on the total phonon number.
type HolsteinConfig struct {
	Sites   int // lattice sites on the ring
	NumUp   int // spin-up electrons
	NumDown int // spin-down electrons

	MaxPhonons int // cutoff on the total phonon quantum number

	T     float64 // hopping amplitude t
	U     float64 // on-site Hubbard repulsion
	Omega float64 // phonon frequency ω₀
	G     float64 // dimensionless electron-phonon coupling g

	Ordering Ordering
}

// PaperConfig returns the full-scale configuration of the paper:
// six electrons on six sites (electronic dimension 400) coupled to
// 15 phonons (phononic dimension 15504), N = 6,201,600.
func PaperConfig(o Ordering) HolsteinConfig {
	return HolsteinConfig{
		Sites: 6, NumUp: 3, NumDown: 3,
		MaxPhonons: 15,
		T:          1, U: 4, Omega: 1, G: 1,
		Ordering: o,
	}
}

// SmallConfig returns a reduced configuration (N = 50,400) with the same
// lattice and tensor structure as the paper's matrix, sized for unit tests
// and host-scale benchmarks.
func SmallConfig(o Ordering) HolsteinConfig {
	c := PaperConfig(o)
	c.MaxPhonons = 4 // phononic dimension C(9,5) = 126 → N = 50,400
	return c
}

// Holstein is a Holstein–Hubbard Hamiltonian exposed as a streaming
// matrix.ValueSource: rows are generated on demand and never stored, which
// lets the full-scale N = 6.2M matrix be consumed structurally without
// materializing its ~1.5 GB of CSR data.
//
// The matrix is real symmetric. Row generation is safe for concurrent use.
type Holstein struct {
	cfg  HolsteinConfig
	up   *FermionBasis
	down *FermionBasis
	fock *FockSpace

	ne int   // electronic dimension = up.Dim()*down.Dim()
	np int64 // phononic dimension

	// coupling[k][e] = λ_k for electron state e and mode k:
	// Σ_i φ_k(i)·n_i(e), premultiplied by -G·Omega.
	coupling [][]float64
	// diagEl[e] = U · (double occupancies in e)
	diagEl []float64
	// sqrtTab[n] = √n for phonon ladder amplitudes.
	sqrtTab []float64
}

// NewHolstein validates the configuration and precomputes the electronic
// bases, mode shapes and coupling tables.
func NewHolstein(cfg HolsteinConfig) (*Holstein, error) {
	if cfg.Sites < 2 {
		return nil, fmt.Errorf("genmat: Holstein needs ≥ 2 sites, got %d", cfg.Sites)
	}
	up, err := NewFermionBasis(cfg.Sites, cfg.NumUp)
	if err != nil {
		return nil, err
	}
	down, err := NewFermionBasis(cfg.Sites, cfg.NumDown)
	if err != nil {
		return nil, err
	}
	fock, err := NewFockSpace(cfg.Sites-1, cfg.MaxPhonons)
	if err != nil {
		return nil, err
	}
	h := &Holstein{
		cfg: cfg, up: up, down: down, fock: fock,
		ne: up.Dim() * down.Dim(),
		np: fock.Dim(),
	}
	// Column indices are int32 throughout the library (Eq. 1 counts 4-byte
	// index traffic), so the global dimension must fit in int32.
	if int64(h.ne)*h.np > math.MaxInt32 {
		return nil, fmt.Errorf("genmat: Holstein dimension %d exceeds int32 indexing", int64(h.ne)*h.np)
	}

	modes := normalModes(cfg.Sites)
	h.coupling = make([][]float64, len(modes))
	h.diagEl = make([]float64, h.ne)
	for e := 0; e < h.ne; e++ {
		iu, id := e/down.Dim(), e%down.Dim()
		var docc float64
		for i := 0; i < cfg.Sites; i++ {
			if up.Occupied(iu, i) && down.Occupied(id, i) {
				docc++
			}
		}
		h.diagEl[e] = cfg.U * docc
	}
	for k, phi := range modes {
		h.coupling[k] = make([]float64, h.ne)
		for e := 0; e < h.ne; e++ {
			iu, id := e/down.Dim(), e%down.Dim()
			var lam float64
			for i := 0; i < cfg.Sites; i++ {
				var n float64
				if up.Occupied(iu, i) {
					n++
				}
				if down.Occupied(id, i) {
					n++
				}
				lam += phi[i] * n
			}
			h.coupling[k][e] = -cfg.G * cfg.Omega * lam
		}
	}
	h.sqrtTab = make([]float64, cfg.MaxPhonons+2)
	for n := range h.sqrtTab {
		h.sqrtTab[n] = math.Sqrt(float64(n))
	}
	return h, nil
}

// normalModes returns the Sites-1 orthonormal real normal modes of a ring,
// excluding the uniform (q=0) mode: cosine and sine running waves plus, for
// even site counts, the alternating mode.
func normalModes(sites int) [][]float64 {
	var modes [][]float64
	norm := math.Sqrt(2 / float64(sites))
	for q := 1; 2*q < sites; q++ {
		cosM := make([]float64, sites)
		sinM := make([]float64, sites)
		for i := 0; i < sites; i++ {
			th := 2 * math.Pi * float64(q) * float64(i) / float64(sites)
			cosM[i] = norm * math.Cos(th)
			sinM[i] = norm * math.Sin(th)
		}
		modes = append(modes, cosM, sinM)
	}
	if sites%2 == 0 {
		alt := make([]float64, sites)
		for i := 0; i < sites; i++ {
			alt[i] = math.Pow(-1, float64(i)) / math.Sqrt(float64(sites))
		}
		modes = append(modes, alt)
	}
	return modes
}

// Config returns the generator configuration.
func (h *Holstein) Config() HolsteinConfig { return h.cfg }

// ElectronDim returns the dimension of the electronic subspace.
func (h *Holstein) ElectronDim() int { return h.ne }

// PhononDim returns the dimension of the phononic subspace.
func (h *Holstein) PhononDim() int64 { return h.np }

// Dims implements matrix.PatternSource.
func (h *Holstein) Dims() (rows, cols int) {
	n := int(int64(h.ne) * h.np)
	return n, n
}

// decode splits a global row index into (electron state, phonon rank)
// according to the configured ordering.
func (h *Holstein) decode(r int) (e int, p int64) {
	switch h.cfg.Ordering {
	case PhononsContiguous:
		return r / int(h.np), int64(r % int(h.np))
	default: // ElectronsContiguous
		return r % h.ne, int64(r / h.ne)
	}
}

// encode is the inverse of decode.
func (h *Holstein) encode(e int, p int64) int32 {
	switch h.cfg.Ordering {
	case PhononsContiguous:
		return int32(int64(e)*h.np + p)
	default:
		return int32(p*int64(h.ne) + int64(e))
	}
}

// AppendRow implements matrix.PatternSource.
func (h *Holstein) AppendRow(i int, dst []int32) []int32 {
	cols, _ := h.row(i, dst, nil, false)
	return cols
}

// AppendRowValues implements matrix.ValueSource.
func (h *Holstein) AppendRowValues(i int, cols []int32, vals []float64) ([]int32, []float64) {
	return h.row(i, cols, vals, true)
}

// row generates one Hamiltonian row. The phonon occupation vector lives in a
// fixed-size stack array so concurrent calls do not share state.
func (h *Holstein) row(r int, cols []int32, vals []float64, withVals bool) ([]int32, []float64) {
	e, p := h.decode(r)
	var mArr [32]int
	m := mArr[:h.fock.Modes]
	h.fock.Unrank(p, m)
	total := Total(m)

	// Diagonal: Hubbard repulsion + phonon energy.
	cols = append(cols, int32(r))
	if withVals {
		vals = append(vals, h.diagEl[e]+h.cfg.Omega*float64(total))
	}

	// Hopping: off-diagonal in the electronic index, diagonal in phonons.
	iu, id := e/h.down.Dim(), e%h.down.Dim()
	for _, hop := range h.up.Hops(iu) {
		e2 := int(hop.To)*h.down.Dim() + id
		cols = append(cols, h.encode(e2, p))
		if withVals {
			vals = append(vals, -h.cfg.T*float64(hop.Sign))
		}
	}
	for _, hop := range h.down.Hops(id) {
		e2 := iu*h.down.Dim() + int(hop.To)
		cols = append(cols, h.encode(e2, p))
		if withVals {
			vals = append(vals, -h.cfg.T*float64(hop.Sign))
		}
	}

	// Electron-phonon coupling: diagonal in the electronic index,
	// one quantum up/down in a single mode.
	for k := 0; k < h.fock.Modes; k++ {
		lam := h.coupling[k][e]
		if lam == 0 {
			continue
		}
		if m[k] > 0 { // lowering: b_k
			m[k]--
			cols = append(cols, h.encode(e, h.fock.Rank(m)))
			m[k]++
			if withVals {
				vals = append(vals, lam*h.sqrtTab[m[k]])
			}
		}
		if total < h.cfg.MaxPhonons { // raising: b†_k
			m[k]++
			cols = append(cols, h.encode(e, h.fock.Rank(m)))
			m[k]--
			if withVals {
				vals = append(vals, lam*h.sqrtTab[m[k]+1])
			}
		}
	}
	return cols, vals
}

var _ matrix.ValueSource = (*Holstein)(nil)
