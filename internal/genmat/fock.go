// Package genmat generates the study's test matrices: the Holstein–Hubbard
// exact-diagonalization Hamiltonian (the paper's HMEp/HMeP matrices), an
// sAMG-like Poisson operator (substitute for the proprietary car-geometry
// matrix), and random matrices for testing.
package genmat

import "fmt"

// FockSpace enumerates bosonic occupation vectors m ∈ ℕ^Modes with
// Σ m ≤ MaxTotal, in lexicographic order. This is the phonon basis of the
// Holstein–Hubbard Hamiltonian: the paper's configuration (15 phonons on a
// six-site lattice) corresponds to 5 coupled normal modes (the uniform mode
// decouples for a fixed electron number) and MaxTotal = 15, giving
// dimension C(20,5) = 15504 and the paper's N = 400 × 15504 = 6,201,600.
type FockSpace struct {
	Modes    int
	MaxTotal int
	// binom[k][b] = C(b+k, k) = number of occupation vectors of length k
	// with total ≤ b, for k ≤ Modes, b ≤ MaxTotal.
	binom [][]int64
}

// NewFockSpace builds the enumeration tables for the given mode count and
// total-quantum cutoff.
func NewFockSpace(modes, maxTotal int) (*FockSpace, error) {
	if modes < 0 || maxTotal < 0 {
		return nil, fmt.Errorf("genmat: invalid Fock space (%d modes, max %d)", modes, maxTotal)
	}
	f := &FockSpace{Modes: modes, MaxTotal: maxTotal}
	f.binom = make([][]int64, modes+1)
	for k := 0; k <= modes; k++ {
		f.binom[k] = make([]int64, maxTotal+1)
		for b := 0; b <= maxTotal; b++ {
			if k == 0 {
				f.binom[k][b] = 1 // only the empty vector
				continue
			}
			// C(b+k,k) = C(b-1+k,k) + C(b+k-1,k-1)
			v := f.binom[k-1][b]
			if b > 0 {
				v += f.binom[k][b-1]
			}
			f.binom[k][b] = v
			if v < 0 {
				return nil, fmt.Errorf("genmat: Fock dimension overflow at modes=%d max=%d", modes, maxTotal)
			}
		}
	}
	return f, nil
}

// Dim returns the number of basis states, C(MaxTotal+Modes, Modes).
func (f *FockSpace) Dim() int64 {
	return f.binom[f.Modes][f.MaxTotal]
}

// countLE returns the number of occupation vectors with k modes and total ≤ b.
func (f *FockSpace) countLE(k, b int) int64 {
	if b < 0 {
		return 0
	}
	return f.binom[k][b]
}

// Rank returns the lexicographic index of occupation vector m.
// It panics if m is outside the space.
func (f *FockSpace) Rank(m []int) int64 {
	if len(m) != f.Modes {
		panic(fmt.Sprintf("genmat: Rank on vector of length %d, want %d", len(m), f.Modes))
	}
	var r int64
	budget := f.MaxTotal
	for j, mj := range m {
		if mj < 0 || mj > budget {
			panic(fmt.Sprintf("genmat: occupation %v outside Fock space (mode %d)", m, j))
		}
		// States with smaller value at position j, any valid suffix.
		rest := f.Modes - j - 1
		for v := 0; v < mj; v++ {
			r += f.countLE(rest, budget-v)
		}
		budget -= mj
	}
	return r
}

// Unrank writes the occupation vector with lexicographic index r into m,
// which must have length Modes. It panics if r is out of range.
func (f *FockSpace) Unrank(r int64, m []int) {
	if len(m) != f.Modes {
		panic(fmt.Sprintf("genmat: Unrank into vector of length %d, want %d", len(m), f.Modes))
	}
	if r < 0 || r >= f.Dim() {
		panic(fmt.Sprintf("genmat: Unrank index %d outside [0,%d)", r, f.Dim()))
	}
	budget := f.MaxTotal
	for j := 0; j < f.Modes; j++ {
		rest := f.Modes - j - 1
		v := 0
		for {
			c := f.countLE(rest, budget-v)
			if r < c {
				break
			}
			r -= c
			v++
		}
		m[j] = v
		budget -= v
	}
}

// Total returns the total quantum number Σ m.
func Total(m []int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
