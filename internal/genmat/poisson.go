package genmat

import (
	"fmt"

	"repro/internal/matrix"
)

// PoissonConfig describes a 7-point finite-difference Poisson operator on a
// 3-D grid. This is the substitute for the paper's sAMG matrix: a Poisson
// problem discretized irregularly on a car geometry (N = 22,786,800,
// Nnzr ≈ 7). The 7-point stencil reproduces Nnzr ≈ 7 exactly; grading the
// mesh along z emulates the adaptive refinement; an optional windowed
// relabeling of the unknowns emulates the unstructured mesh numbering
// visible in the paper's Fig. 1(c).
type PoissonConfig struct {
	Nx, Ny, Nz int
	// GradingZ stretches the grid geometrically along z with the given
	// ratio between consecutive spacings. 1 (or 0) keeps a uniform grid.
	GradingZ float64
	// PermWindow > 1 relabels unknowns by deterministically shuffling
	// indices within consecutive windows of this size, mimicking an
	// unstructured mesh ordering while preserving locality.
	PermWindow int
	// PermSeed seeds the window shuffles.
	PermSeed uint64
}

// PaperPoissonConfig returns the full-scale substitute configuration:
// 330×276×250 = 22,770,000 unknowns (paper: 22,786,800; the exact count
// depends on the proprietary car mesh), graded along z, windowed relabeling.
func PaperPoissonConfig() PoissonConfig {
	return PoissonConfig{Nx: 330, Ny: 276, Nz: 250, GradingZ: 1.02, PermWindow: 64, PermSeed: 1}
}

// SmallPoissonConfig returns a reduced configuration (N = 46,656) for tests
// and host-scale benchmarks.
func SmallPoissonConfig() PoissonConfig {
	return PoissonConfig{Nx: 36, Ny: 36, Nz: 36, GradingZ: 1.02, PermWindow: 16, PermSeed: 1}
}

// Poisson is a streaming 7-point Poisson operator implementing
// matrix.ValueSource. The matrix is symmetric positive definite.
// Row generation is safe for concurrent use.
type Poisson struct {
	cfg PoissonConfig
	n   int
	// hz[k] is the grid spacing between planes k and k+1 (graded).
	hz []float64
	// fwd/inv materialize the windowed relabeling (fwd[cell] = unknown,
	// inv[unknown] = cell); nil when PermWindow ≤ 1. Costs 8 bytes per
	// unknown and makes full-scale streaming passes cheap.
	fwd, inv []int32
}

// NewPoisson validates the configuration.
func NewPoisson(cfg PoissonConfig) (*Poisson, error) {
	if cfg.Nx < 1 || cfg.Ny < 1 || cfg.Nz < 1 {
		return nil, fmt.Errorf("genmat: invalid Poisson grid %dx%dx%d", cfg.Nx, cfg.Ny, cfg.Nz)
	}
	if cfg.PermWindow < 0 {
		return nil, fmt.Errorf("genmat: negative PermWindow %d", cfg.PermWindow)
	}
	p := &Poisson{cfg: cfg, n: cfg.Nx * cfg.Ny * cfg.Nz}
	p.hz = make([]float64, cfg.Nz)
	h := 1.0
	ratio := cfg.GradingZ
	if ratio <= 0 {
		ratio = 1
	}
	for k := range p.hz {
		p.hz[k] = h
		h *= ratio
	}
	if cfg.PermWindow > 1 {
		if cfg.PermWindow > maxPermWindow {
			return nil, fmt.Errorf("genmat: PermWindow %d exceeds %d", cfg.PermWindow, maxPermWindow)
		}
		p.fwd = make([]int32, p.n)
		p.inv = make([]int32, p.n)
		var buf [maxPermWindow]int32
		for base := 0; base < p.n; base += cfg.PermWindow {
			size := cfg.PermWindow
			if base+size > p.n {
				size = p.n - base
			}
			windowPerm(buf[:size], uint64(base)^cfg.PermSeed*0x9e3779b97f4a7c15)
			for j := 0; j < size; j++ {
				p.fwd[base+j] = int32(base) + buf[j]
				p.inv[base+int(buf[j])] = int32(base + j)
			}
		}
	}
	return p, nil
}

// Dims implements matrix.PatternSource.
func (p *Poisson) Dims() (rows, cols int) { return p.n, p.n }

// perm maps a lattice cell index to its relabeled unknown index; permInv is
// the inverse. Identity when no relabeling is configured.
func (p *Poisson) perm(i int) int {
	if p.fwd == nil {
		return i
	}
	return int(p.fwd[i])
}

func (p *Poisson) permInv(i int) int {
	if p.inv == nil {
		return i
	}
	return int(p.inv[i])
}

// maxPermWindow bounds PermWindow so window shuffles fit on the stack.
const maxPermWindow = 1024

// windowPerm fills buf with a deterministic pseudo-random permutation of
// 0..len(buf)-1 derived from the seed (Fisher–Yates with a SplitMix64 RNG).
func windowPerm(buf []int32, seed uint64) {
	for j := range buf {
		buf[j] = int32(j)
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	for j := len(buf) - 1; j > 0; j-- {
		k := int(next() % uint64(j+1))
		buf[j], buf[k] = buf[k], buf[j]
	}
}

// AppendRow implements matrix.PatternSource.
func (p *Poisson) AppendRow(i int, dst []int32) []int32 {
	cols, _ := p.row(i, dst, nil, false)
	return cols
}

// AppendRowValues implements matrix.ValueSource.
func (p *Poisson) AppendRowValues(i int, cols []int32, vals []float64) ([]int32, []float64) {
	return p.row(i, cols, vals, true)
}

func (p *Poisson) row(r int, cols []int32, vals []float64, withVals bool) ([]int32, []float64) {
	cfg := p.cfg
	// Relabeled row r corresponds to lattice cell permInv(r).
	cell := p.permInv(r)
	x := cell % cfg.Nx
	y := (cell / cfg.Nx) % cfg.Ny
	z := cell / (cfg.Nx * cfg.Ny)

	var diag float64
	add := func(cx, cy, cz int, w float64) {
		c := (cz*cfg.Ny+cy)*cfg.Nx + cx
		cols = append(cols, int32(p.perm(c)))
		if withVals {
			vals = append(vals, -w)
		}
		diag += w
	}

	// x and y neighbours on a uniform unit grid.
	if x > 0 {
		add(x-1, y, z, 1)
	}
	if x < cfg.Nx-1 {
		add(x+1, y, z, 1)
	}
	if y > 0 {
		add(x, y-1, z, 1)
	}
	if y < cfg.Ny-1 {
		add(x, y+1, z, 1)
	}
	// z neighbours on the graded grid: weight 2/(h_k(h_k+h_{k+1}))-style FD
	// coefficients, simplified to 1/h² of the bond spacing.
	if z > 0 {
		h := p.hz[z-1]
		add(x, y, z-1, 1/(h*h))
	}
	if z < cfg.Nz-1 {
		h := p.hz[z]
		add(x, y, z+1, 1/(h*h))
	}
	// Dirichlet boundaries: add the missing bond weights to the diagonal so
	// the operator stays positive definite.
	if x == 0 || x == cfg.Nx-1 {
		diag++
	}
	if y == 0 || y == cfg.Ny-1 {
		diag++
	}
	if z == 0 {
		h := p.hz[0]
		diag += 1 / (h * h)
	}
	if z == cfg.Nz-1 {
		h := p.hz[cfg.Nz-1]
		diag += 1 / (h * h)
	}

	cols = append(cols, int32(r))
	if withVals {
		vals = append(vals, diag)
	}
	return cols, vals
}

var _ matrix.ValueSource = (*Poisson)(nil)
