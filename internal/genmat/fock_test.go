package genmat

import (
	"testing"
	"testing/quick"
)

func TestFockDimPaperScale(t *testing.T) {
	// The paper's phonon subspace: 5 modes, ≤ 15 quanta → C(20,5) = 15504.
	f, err := NewFockSpace(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dim() != 15504 {
		t.Errorf("Dim = %d, want 15504 (the paper's 1.55e4 phonon subspace)", f.Dim())
	}
}

func TestFockDimSmallCases(t *testing.T) {
	cases := []struct {
		modes, max int
		want       int64
	}{
		{0, 0, 1}, {0, 5, 1}, {1, 0, 1}, {1, 3, 4}, {2, 2, 6}, {3, 2, 10},
	}
	for _, c := range cases {
		f, err := NewFockSpace(c.modes, c.max)
		if err != nil {
			t.Fatal(err)
		}
		if f.Dim() != c.want {
			t.Errorf("Dim(modes=%d, max=%d) = %d, want %d", c.modes, c.max, f.Dim(), c.want)
		}
	}
}

func TestFockRankUnrankRoundTrip(t *testing.T) {
	f, err := NewFockSpace(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := make([]int, 4)
	seen := make(map[[4]int]bool)
	for r := int64(0); r < f.Dim(); r++ {
		f.Unrank(r, m)
		if Total(m) > 6 {
			t.Fatalf("Unrank(%d) = %v exceeds cutoff", r, m)
		}
		if got := f.Rank(m); got != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
		}
		var key [4]int
		copy(key[:], m)
		if seen[key] {
			t.Fatalf("duplicate state %v at rank %d", m, r)
		}
		seen[key] = true
	}
	if int64(len(seen)) != f.Dim() {
		t.Errorf("enumerated %d states, want %d", len(seen), f.Dim())
	}
}

func TestFockUnrankLexicographic(t *testing.T) {
	f, err := NewFockSpace(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 0}}
	m := make([]int, 2)
	for r, w := range want {
		f.Unrank(int64(r), m)
		if m[0] != w[0] || m[1] != w[1] {
			t.Errorf("Unrank(%d) = %v, want %v", r, m, w)
		}
	}
}

func TestFockPanics(t *testing.T) {
	f, _ := NewFockSpace(2, 3)
	mustPanic(t, "short vector", func() { f.Rank([]int{1}) })
	mustPanic(t, "over budget", func() { f.Rank([]int{2, 2}) })
	mustPanic(t, "negative rank", func() { f.Unrank(-1, make([]int, 2)) })
	mustPanic(t, "rank too large", func() { f.Unrank(f.Dim(), make([]int, 2)) })
}

func TestFockInvalidConfig(t *testing.T) {
	if _, err := NewFockSpace(-1, 3); err == nil {
		t.Error("negative modes accepted")
	}
	if _, err := NewFockSpace(2, -1); err == nil {
		t.Error("negative cutoff accepted")
	}
}

func TestFockRankMonotoneProperty(t *testing.T) {
	f, err := NewFockSpace(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{MaxCount: 200}
	prop := func(r1, r2 uint16) bool {
		a := int64(r1) % f.Dim()
		b := int64(r2) % f.Dim()
		if a > b {
			a, b = b, a
		}
		ma := make([]int, 3)
		mb := make([]int, 3)
		f.Unrank(a, ma)
		f.Unrank(b, mb)
		// Lexicographic order of vectors must match rank order.
		return a == b || lexLess(ma, mb)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
