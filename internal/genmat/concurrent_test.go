package genmat

import (
	"sync"
	"testing"
)

// The plan builder streams disjoint row ranges from multiple goroutines
// (core.forEachRank), so generators must be safe for concurrent reads.
// These tests verify that property under -race and check the results
// against a serial pass.

func concurrentRowsMatchSerial(t *testing.T, src interface {
	Dims() (int, int)
	AppendRow(int, []int32) []int32
}) {
	t.Helper()
	rows, _ := src.Dims()
	serial := make([][]int32, rows)
	var buf []int32
	for i := 0; i < rows; i++ {
		buf = src.AppendRow(i, buf[:0])
		serial[i] = append([]int32(nil), buf...)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []int32
			for i := w; i < rows; i += workers {
				local = src.AppendRow(i, local[:0])
				if len(local) != len(serial[i]) {
					errs[w] = "row length mismatch"
					return
				}
				for k := range local {
					if local[k] != serial[i][k] {
						errs[w] = "row content mismatch"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}

func TestHolsteinConcurrentRowAccess(t *testing.T) {
	h, err := NewHolstein(HolsteinConfig{
		Sites: 5, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	concurrentRowsMatchSerial(t, h)
}

func TestPoissonConcurrentRowAccess(t *testing.T) {
	p, err := NewPoisson(PoissonConfig{Nx: 14, Ny: 12, Nz: 10, GradingZ: 1.05, PermWindow: 16, PermSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	concurrentRowsMatchSerial(t, p)
}

func TestRandomBandConcurrentRowAccess(t *testing.T) {
	g, err := NewRandomBand(RandomBandConfig{N: 3000, Bandwidth: 100, PerRow: 6, Seed: 5, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	concurrentRowsMatchSerial(t, g)
}
