package genmat

import (
	"math/bits"
	"testing"
)

func TestFermionBasisDims(t *testing.T) {
	cases := []struct {
		sites, n, want int
	}{
		{6, 3, 20}, // the paper: C(6,3) = 20 per spin, 20² = 400 total
		{4, 2, 6},
		{2, 1, 2},
		{5, 0, 1},
		{5, 5, 1},
	}
	for _, c := range cases {
		b, err := NewFermionBasis(c.sites, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Dim() != c.want {
			t.Errorf("Dim(sites=%d,n=%d) = %d, want %d", c.sites, c.n, b.Dim(), c.want)
		}
	}
}

func TestFermionBasisInvalid(t *testing.T) {
	if _, err := NewFermionBasis(0, 0); err == nil {
		t.Error("0 sites accepted")
	}
	if _, err := NewFermionBasis(4, 5); err == nil {
		t.Error("too many fermions accepted")
	}
	if _, err := NewFermionBasis(31, 1); err == nil {
		t.Error("oversized lattice accepted")
	}
}

func TestFermionIndexRoundTrip(t *testing.T) {
	b, err := NewFermionBasis(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, mask := range b.Masks {
		if got := b.Index(mask); got != int32(i) {
			t.Errorf("Index(Masks[%d]) = %d", i, got)
		}
		if bits.OnesCount32(mask) != 3 {
			t.Errorf("mask %b has wrong particle number", mask)
		}
	}
	if b.Index(0b101100) == -1 {
		t.Error("valid mask rejected")
	}
	if b.Index(0b1) != -1 {
		t.Error("wrong particle number accepted")
	}
}

func TestHopsPreserveParticleNumber(t *testing.T) {
	b, err := NewFermionBasis(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := range b.Masks {
		for _, h := range b.Hops(s) {
			if bits.OnesCount32(b.Masks[h.To]) != 3 {
				t.Fatalf("hop from %d to %d changes particle number", s, h.To)
			}
			if h.Sign != 1 && h.Sign != -1 {
				t.Fatalf("hop sign %d", h.Sign)
			}
		}
	}
}

// TestHopsHermitian verifies that the hopping matrix built from the hop
// lists is symmetric: each hop s→s' with sign σ has a partner s'→s with the
// same sign (real Hamiltonian).
func TestHopsHermitian(t *testing.T) {
	for _, cfg := range []struct{ sites, n int }{{6, 3}, {5, 2}, {4, 2}, {2, 1}} {
		b, err := NewFermionBasis(cfg.sites, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		// Accumulate the dense hop matrix.
		d := make([][]int, b.Dim())
		for i := range d {
			d[i] = make([]int, b.Dim())
		}
		for s := range b.Masks {
			for _, h := range b.Hops(s) {
				d[s][h.To] += int(h.Sign)
			}
		}
		for i := range d {
			for j := range d[i] {
				if d[i][j] != d[j][i] {
					t.Fatalf("sites=%d n=%d: hop matrix asymmetric at (%d,%d): %d vs %d",
						cfg.sites, cfg.n, i, j, d[i][j], d[j][i])
				}
			}
		}
	}
}

func TestHopSignKnownCase(t *testing.T) {
	// Three fermions on a 4-ring. State |1110⟩ (sites 0,1,2 occupied).
	// Hop 2→3: c†_3 c_2 crosses no occupied sites between 2 and 3 → +1 after
	// the two Jordan-Wigner strings: c_2 gives (-1)^2, c†_3 gives (-1)^2.
	mask := uint32(0b0111)
	if got := hopSign(mask, 2, 3); got != 1 {
		t.Errorf("hopSign(0111, 2→3) = %d, want +1", got)
	}
	// Wrap hop 3→0 from |1101⟩ (sites 0,2,3): c_3 crosses sites 0,2 → (-1)²;
	// c†_0 crosses nothing → total +1.
	if got := hopSign(0b1101, 3, 1); got != -1 {
		// c_3: occupied below 3 in 1101 = sites 0,2 → +1. c†_1: occupied
		// below 1 in 0101 = site 0 → -1. Total -1.
		t.Errorf("hopSign(1101, 3→1) = %d, want -1", got)
	}
}

func TestHopCountsTwoSites(t *testing.T) {
	// One fermion on two sites: exactly one bond, two directed hops total,
	// one per state.
	b, err := NewFermionBasis(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := range b.Masks {
		if len(b.Hops(s)) != 1 {
			t.Errorf("state %d has %d hops, want 1 (single bond)", s, len(b.Hops(s)))
		}
	}
}

func TestOccupied(t *testing.T) {
	b, err := NewFermionBasis(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := int(b.Index(0b0101))
	for i, want := range []bool{true, false, true, false} {
		if b.Occupied(s, i) != want {
			t.Errorf("Occupied(%d, %d) = %v, want %v", s, i, !want, want)
		}
	}
}
