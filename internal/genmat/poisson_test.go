package genmat

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func tinyPoisson(t *testing.T, cfg PoissonConfig) *Poisson {
	t.Helper()
	p, err := NewPoisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoissonDims(t *testing.T) {
	p := tinyPoisson(t, PoissonConfig{Nx: 3, Ny: 4, Nz: 5})
	rows, cols := p.Dims()
	if rows != 60 || cols != 60 {
		t.Errorf("dims = %dx%d, want 60x60", rows, cols)
	}
}

func TestPoissonSymmetricAndValid(t *testing.T) {
	for _, cfg := range []PoissonConfig{
		{Nx: 4, Ny: 4, Nz: 4},
		{Nx: 4, Ny: 4, Nz: 4, GradingZ: 1.3},
		{Nx: 5, Ny: 3, Nz: 4, GradingZ: 1.1, PermWindow: 8, PermSeed: 9},
		{Nx: 1, Ny: 1, Nz: 1},
		{Nx: 7, Ny: 1, Nz: 1},
	} {
		a := matrix.Materialize(tinyPoisson(t, cfg))
		if err := a.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if !a.IsSymmetric(1e-12) {
			t.Errorf("%+v: not symmetric", cfg)
		}
	}
}

func TestPoissonNnzrNear7(t *testing.T) {
	// Interior-dominated grid: Nnzr approaches 7, matching the sAMG matrix.
	p := tinyPoisson(t, PoissonConfig{Nx: 20, Ny: 20, Nz: 20})
	s := matrix.ComputeStats(p)
	if s.NnzRowAvg < 6 || s.NnzRowAvg > 7 {
		t.Errorf("Nnzr = %.3f, want ≈ 7 (6..7 for a bounded grid)", s.NnzRowAvg)
	}
	if s.NnzRowMax != 7 {
		t.Errorf("max row nnz = %d, want 7", s.NnzRowMax)
	}
	if s.NnzRowMin != 4 {
		t.Errorf("min row nnz = %d, want 4 (corner cell)", s.NnzRowMin)
	}
}

func TestPoissonPositiveDefiniteByDominance(t *testing.T) {
	// Dirichlet closure makes the operator strictly diagonally dominant.
	a := matrix.Materialize(tinyPoisson(t, PoissonConfig{Nx: 5, Ny: 5, Nz: 5, GradingZ: 1.2}))
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		var diag, off float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag < off-1e-12 {
			t.Fatalf("row %d not diagonally dominant: %g < %g", i, diag, off)
		}
		if diag <= 0 {
			t.Fatalf("row %d nonpositive diagonal %g", i, diag)
		}
	}
}

func TestPoissonPermutationIsBijective(t *testing.T) {
	p := tinyPoisson(t, PoissonConfig{Nx: 6, Ny: 5, Nz: 4, PermWindow: 16, PermSeed: 3})
	n, _ := p.Dims()
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		j := p.perm(i)
		if j < 0 || j >= n {
			t.Fatalf("perm(%d) = %d out of range", i, j)
		}
		if seen[j] {
			t.Fatalf("perm not injective at %d", j)
		}
		seen[j] = true
		if p.permInv(j) != i {
			t.Fatalf("permInv(perm(%d)) = %d", i, p.permInv(j))
		}
	}
}

func TestPoissonPermutationPreservesOperator(t *testing.T) {
	// Permuted and unpermuted operators are similar: same Frobenius norm,
	// same trace, same row-value multiset sizes.
	base := matrix.Materialize(tinyPoisson(t, PoissonConfig{Nx: 4, Ny: 4, Nz: 4, GradingZ: 1.1}))
	perm := matrix.Materialize(tinyPoisson(t, PoissonConfig{Nx: 4, Ny: 4, Nz: 4, GradingZ: 1.1, PermWindow: 8, PermSeed: 5}))
	if base.Nnz() != perm.Nnz() {
		t.Fatalf("nnz differ: %d vs %d", base.Nnz(), perm.Nnz())
	}
	sum := func(m *matrix.CSR) (tr, fr float64) {
		for i := 0; i < m.NumRows; i++ {
			cols, vals := m.Row(i)
			for k, c := range cols {
				if int(c) == i {
					tr += vals[k]
				}
				fr += vals[k] * vals[k]
			}
		}
		return
	}
	tb, fb := sum(base)
	tp, fp := sum(perm)
	if math.Abs(tb-tp) > 1e-9 || math.Abs(fb-fp) > 1e-9 {
		t.Errorf("permutation changed invariants: trace %g vs %g, frob² %g vs %g", tb, tp, fb, fp)
	}
}

func TestPoissonNullVectorLaplacian(t *testing.T) {
	// Applying the operator to the constant vector measures only the
	// boundary closure: result must be strictly positive at boundary-coupled
	// cells and zero in the interior.
	p := tinyPoisson(t, PoissonConfig{Nx: 5, Ny: 5, Nz: 5})
	a := matrix.Materialize(p)
	n := a.NumRows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, n)
	a.MulVec(y, x)
	for cell := 0; cell < n; cell++ {
		cx := cell % 5
		cy := (cell / 5) % 5
		cz := cell / 25
		interior := cx > 0 && cx < 4 && cy > 0 && cy < 4 && cz > 0 && cz < 4
		if interior && math.Abs(y[cell]) > 1e-12 {
			t.Errorf("interior cell %d: A·1 = %g, want 0", cell, y[cell])
		}
		if !interior && y[cell] <= 0 {
			t.Errorf("boundary cell %d: A·1 = %g, want > 0", cell, y[cell])
		}
	}
}

func TestPoissonInvalid(t *testing.T) {
	if _, err := NewPoisson(PoissonConfig{Nx: 0, Ny: 1, Nz: 1}); err == nil {
		t.Error("zero-extent grid accepted")
	}
	if _, err := NewPoisson(PoissonConfig{Nx: 1, Ny: 1, Nz: 1, PermWindow: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestRandomBandSymmetricSPD(t *testing.T) {
	g, err := NewRandomBand(RandomBandConfig{N: 200, Bandwidth: 10, PerRow: 6, Seed: 1, Symmetric: true, SPD: true})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(g)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(0) {
		t.Error("symmetric random band not symmetric")
	}
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		var diag, off float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant", i)
		}
	}
}

func TestRandomBandDeterministic(t *testing.T) {
	cfg := RandomBandConfig{N: 100, Bandwidth: 8, PerRow: 4, Seed: 77}
	g1, _ := NewRandomBand(cfg)
	g2, _ := NewRandomBand(cfg)
	a := matrix.Materialize(g1)
	b := matrix.Materialize(g2)
	if !a.Equal(b) {
		t.Error("same seed produced different matrices")
	}
	cfg.Seed = 78
	g3, _ := NewRandomBand(cfg)
	if a.Equal(matrix.Materialize(g3)) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestRandomBandRespectsBandwidth(t *testing.T) {
	g, _ := NewRandomBand(RandomBandConfig{N: 300, Bandwidth: 5, PerRow: 4, Seed: 3})
	s := matrix.ComputeStats(g)
	if s.Bandwidth > 5 {
		t.Errorf("bandwidth %d exceeds configured 5", s.Bandwidth)
	}
	if s.Diagonal != 300 {
		t.Errorf("diagonal entries %d, want 300", s.Diagonal)
	}
}
