package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/solver"
)

// ring is a fixed-capacity FIFO of requests — one per tenant, preallocated
// at admission-queue depth so the steady-state dispatch path never
// allocates. All methods run under the server lock.
type ring struct {
	buf  []*Request
	head int
	n    int
}

func newRing(depth int) ring { return ring{buf: make([]*Request, depth)} }

//repro:noalloc
func (r *ring) push(x *Request) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = x
	r.n++
	return true
}

//repro:noalloc
func (r *ring) pop() *Request {
	x := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return x
}

//repro:noalloc
func (r *ring) peek() *Request { return r.buf[r.head] }

// tenant is one admission-controlled request stream: a bounded FIFO, an
// in-flight count the dispatcher gates on, a transparent-retry token
// bucket, and counters.
type tenant struct {
	name     string
	q        ring
	inflight int

	// retryTokens bounds how many supervised epoch retries this tenant's
	// requests may consume before they fail to their callers: one token
	// per transparent retry, replenished (up to Config.RetryBudget) by
	// each successful completion. A tenant whose every request poisons
	// the world drains its bucket and starts failing fast instead of
	// burning restart epochs that delay everyone sharing the pool.
	retryTokens int

	accepted, rejected, completed, failed, shed uint64
}

func newTenant(name string, depth, budget int) *tenant {
	return &tenant{name: name, q: newRing(depth), retryTokens: budget}
}

// batch is one dispatch unit: up to Config.BatchMax requests for the same
// matrix that ride consecutive operations on one warm cluster. Batches are
// preallocated per pool and recycled through a freelist, so batching
// itself allocates nothing in steady state.
type batch struct {
	reqs []*Request
	n    int
}

// pool owns a matrix's resident sessions: up to Config.Sessions
// supervisor-wrapped clusters over the shared read-only plan, spun up
// lazily as load arrives. The open batch and the freelist belong to the
// dispatcher (guarded by the server lock); sessions interact with the
// dispatcher only through their work channels and batch completion.
type pool struct {
	s    *Server
	name string
	plan *core.Plan
	mode core.Mode
	// transport supplies each session epoch's transport (nil → the
	// in-process chan transport); the fault-injection hook.
	transport func(epoch int) core.Transport

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// Dispatcher state, under s.mu. The freelist holds 2·Sessions+1
	// batches: at most one open, one buffered in each session's work
	// channel, and one executing per session — so a free batch always
	// exists whenever every dispatched request could be in flight.
	open     *batch
	free     []*batch
	nfree    int
	sessions []*session

	// Circuit breaker, under s.mu. Counts consecutive supervisor
	// give-ups (a whole restart budget exhausted); at
	// Config.BreakerThreshold the pool opens and admissions fail fast
	// with a *BreakerError instead of queueing behind a matrix that
	// cannot hold a world up. After Config.BreakerCooldown one probe
	// request is admitted (half-open); a served batch closes the
	// breaker, another give-up reopens it.
	brkState    int
	brkFails    int   // consecutive give-ups while closed/half-open
	brkOpenedNs int64 // wall clock of the transition to open
	brkProbe    bool  // half-open: the single probe slot is taken
}

const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// breakerAdmit gates one admission through the pool's circuit breaker.
// Caller holds s.mu.
//
//repro:noalloc
func (p *pool) breakerAdmit(nowNs int64) error {
	switch p.brkState {
	case brkClosed:
		return nil
	case brkOpen:
		if nowNs-p.brkOpenedNs < int64(p.s.cfg.BreakerCooldown) {
			return &BreakerError{Matrix: p.name, State: "open"} //repro:alloc-ok fail-fast path
		}
		p.brkState = brkHalfOpen
		p.brkProbe = false
		fallthrough
	default: // brkHalfOpen
		// One probe per cooldown window: if a probe neither serves nor
		// gives up (it was shed, timed out in queue, …), the next window
		// lets another through rather than wedging the pool half-open.
		if p.brkProbe && nowNs-p.brkOpenedNs < int64(p.s.cfg.BreakerCooldown) {
			return &BreakerError{Matrix: p.name, State: "half-open"} //repro:alloc-ok fail-fast path
		}
		p.brkProbe = true
		p.brkOpenedNs = nowNs
		return nil
	}
}

// noteGiveUp records a supervisor exhausting its restart budget. A
// give-up during the half-open probe reopens immediately; while closed,
// Config.BreakerThreshold consecutive give-ups open the breaker.
func (p *pool) noteGiveUp() {
	s := p.s
	s.mu.Lock()
	p.brkFails++
	if p.brkState == brkHalfOpen || p.brkFails >= s.cfg.BreakerThreshold {
		p.brkState = brkOpen
		p.brkOpenedNs = time.Now().UnixNano()
	}
	s.mu.Unlock()
}

// noteServedLocked records a batch served to completion without the
// supervisor giving up: the breaker closes and the failure streak
// resets. Caller holds s.mu.
//
//repro:noalloc
func (p *pool) noteServedLocked() {
	p.brkState = brkClosed
	p.brkFails = 0
	p.brkProbe = false
}

// breakerState renders the breaker for stats. Caller holds s.mu.
func (p *pool) breakerState() string {
	switch p.brkState {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newPool(s *Server, name string, plan *core.Plan, mode core.Mode) *pool {
	p := &pool{s: s, name: name, plan: plan, mode: mode}
	if s.cfg.Transport != nil {
		p.transport = s.cfg.Transport(name)
	}
	p.ctx, p.cancel = context.WithCancel(s.ctx)
	total := 2*s.cfg.Sessions + 1
	p.free = make([]*batch, total)
	for i := range p.free {
		p.free[i] = &batch{reqs: make([]*Request, s.cfg.BatchMax)}
	}
	p.nfree = total
	return p
}

// offer appends the request to the pool's open batch, taking a fresh batch
// from the freelist when none is open and handing a filled batch to a
// session. It reports false when the pool cannot make progress (full open
// batch no session can take, or — transiently — an exhausted freelist);
// the dispatcher then leaves the request queued. Caller holds s.mu.
//
//repro:noalloc
func (p *pool) offer(r *Request) bool {
	b := p.open
	if b != nil && b.n == len(b.reqs) {
		if !p.trySend(b) {
			return false
		}
		p.open = nil
		b = nil
	}
	if b == nil {
		if p.nfree == 0 {
			return false
		}
		p.nfree--
		b = p.free[p.nfree]
		b.n = 0
		p.open = b
	}
	b.reqs[b.n] = r
	b.n++
	return true
}

// trySend hands a batch to a warm session without blocking, spinning a new
// session up when every warm one is busy and the pool is below its session
// cap. Caller holds s.mu.
//
//repro:noalloc
func (p *pool) trySend(b *batch) bool {
	for _, ss := range p.sessions {
		select {
		case ss.work <- b:
			return true
		default:
		}
	}
	if len(p.sessions) < p.s.cfg.Sessions {
		// Lazy spin-up (the one allocating branch, taken at most
		// Sessions times per pool lifetime).
		ss := p.spawnSession()
		ss.work <- b // fresh capacity-1 channel: never blocks
		return true
	}
	return false
}

func (p *pool) spawnSession() *session {
	ss := &session{p: p, id: len(p.sessions), work: make(chan *batch, 1)}
	p.sessions = append(p.sessions, ss)
	p.wg.Add(1)
	go ss.loop()
	return ss
}

// shutdown cancels the pool's sessions and waits them out. In-flight
// epochs are interrupted via the supervisor's context hook; batches still
// queued on work channels fail with ErrClosed.
func (p *pool) shutdown() {
	p.cancel()
	p.wg.Wait()
}

// session is one resident supervised cluster serving batches for its
// pool's matrix.
type session struct {
	p    *pool
	id   int
	work chan *batch
	// pending is the batch currently executing; a world failure mid-batch
	// leaves it set, and the next supervised epoch retries it (finished
	// requests are skipped, so only the interrupted remainder reruns).
	pending *batch
}

// loop runs supervised epochs until the pool shuts down. One Supervisor
// covers one recovery episode (MaxRestarts transparent world restarts); if
// it gives up, the batch that killed it fails to its callers and a fresh
// supervisor — with a fresh restart budget — takes over, so one poisoned
// request cannot wedge the pool for later traffic.
func (ss *session) loop() {
	defer ss.p.wg.Done()
	p := ss.p
	cfg := p.s.cfg
	for {
		sup := &core.Supervisor{
			Transport:   p.transport,
			Options:     []core.Option{core.WithMode(p.mode), core.WithThreads(cfg.Threads)},
			MaxRestarts: cfg.MaxRestarts,
			Backoff:     5 * time.Millisecond,
			BackoffMax:  250 * time.Millisecond,
			Seed:        int64(ss.id + 1),
			OnRetry:     func(int, error, time.Duration) { p.s.noteRestart() },
		}
		err := sup.Run(p.ctx, p.plan, ss.serveEpoch)
		if err == nil || p.ctx.Err() != nil {
			// Clean shutdown (serveEpoch returns nil only on pool
			// cancellation). Fail whatever is still in our hands.
			ss.failPending(ErrClosed)
			ss.drainShutdown()
			return
		}
		p.noteGiveUp()
		hadPending := ss.pending != nil
		ss.failPending(err)
		if !hadPending {
			// The supervisor gave up without work in hand (e.g. persistent
			// dial failures); don't spin hot against a dead transport.
			select {
			case <-p.ctx.Done():
			case <-time.After(250 * time.Millisecond):
			}
		}
	}
}

// serveEpoch runs one supervised epoch on a freshly dialed cluster: retry
// the interrupted batch first, then serve the work channel until the pool
// shuts down or the world fails.
func (ss *session) serveEpoch(_ int, cl *core.Cluster) error {
	if b := ss.pending; b != nil {
		if err := ss.runBatch(cl, b); err != nil {
			return err
		}
		ss.pending = nil
		ss.complete(b, true)
	}
	for {
		select {
		case <-ss.p.ctx.Done():
			return nil
		case b := <-ss.work:
			ss.pending = b
			if err := ss.runBatch(cl, b); err != nil {
				return err
			}
			ss.pending = nil
			ss.complete(b, true)
		}
	}
}

// runBatch executes the batch's requests as consecutive operations on the
// warm cluster — the steady-state serving loop, riding the resident Mul
// job's zero-allocation path. A world failure returns the error so the
// supervisor can restart the epoch; requests that already finished are
// skipped on retry, and a request out of attempts (or retry tokens)
// fails to its caller while still triggering the restart (the world is
// poisoned either way).
//
// Deadlines follow the core contract: a request whose deadline already
// passed in the queue fails with Op "queue" without touching the
// cluster (non-poisoning — batch-mates proceed on the warm world), and
// a *core.DeadlineError from a running operation is final for that
// request, never retried, though the interrupt's world damage still
// restarts the epoch for the others.
//
//repro:noalloc
func (ss *session) runBatch(cl *core.Cluster, b *batch) error {
	for i := 0; i < b.n; i++ {
		r := b.reqs[i]
		if r.finished {
			continue
		}
		now := time.Now().UnixNano()
		if r.deadlineNs > 0 && now >= r.deadlineNs {
			if r.startedNs == 0 {
				r.startedNs = now
			}
			r.err = &core.DeadlineError{Op: "queue", Err: context.DeadlineExceeded} //repro:alloc-ok failure path
			r.finishedNs = now
			r.finished = true
			ss.p.s.noteDeadline()
			continue
		}
		if r.startedNs == 0 {
			r.startedNs = now
		}
		r.attempts++
		err, fatal := execute(ss.p.ctx, cl, r)
		var de *core.DeadlineError
		if errors.As(err, &de) {
			r.err = err
			r.finishedNs = time.Now().UnixNano()
			r.finished = true
			ss.p.s.noteDeadline()
			if werr := cl.Failed(); werr != nil {
				// The interrupt tore the world down mid-collective:
				// restart for the batch-mates (this request stays final).
				return werr
			}
			continue
		}
		if err != nil && fatal && r.attempts < ss.p.s.cfg.MaxAttempts && ss.p.s.takeRetryToken(r.tn) {
			return err
		}
		r.err = err
		r.finishedNs = time.Now().UnixNano()
		r.finished = true
		if err != nil && fatal {
			return err
		}
	}
	return nil
}

// execute runs one request on the cluster. fatal reports whether the error
// poisoned the world (the epoch must restart); a request-level error — a
// solver breakdown, a non-convergence — leaves the cluster warm and the
// rest of the batch proceeds. A request with a deadline runs under a
// context carrying it, so a gray-slow world surfaces a typed
// *core.DeadlineError instead of hanging the session.
func execute(ctx context.Context, cl *core.Cluster, r *Request) (err error, fatal bool) {
	rctx := ctx
	if r.deadlineNs > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithDeadline(ctx, time.Unix(0, r.deadlineNs))
		defer cancel()
	}
	switch r.Op {
	case OpSolve:
		// Deterministic retry: CG starts from the zero guess on every
		// attempt, so a rerun after a world failure is bit-identical to an
		// uninterrupted run.
		for i := range r.y {
			r.y[i] = 0
		}
		opt := solver.CGOptions{Tol: r.Tol, MaxIter: r.MaxIter}
		if r.deadlineNs > 0 {
			opt.Context = rctx
		}
		res, err := solver.DistCGOpt(cl, r.x, r.y, opt)
		if err != nil {
			return err, core.Recoverable(err) || cl.Failed() != nil
		}
		r.solveRes = res
		return nil, false
	default: // OpMul
		if r.deadlineNs > 0 {
			err = cl.MulContext(rctx, r.y, r.x, r.Iters)
		} else {
			err = cl.Mul(r.y, r.x, r.Iters)
		}
		if err != nil {
			return err, core.Recoverable(err) || cl.Failed() != nil
		}
		return nil, false
	}
}

// complete hands a finished batch back: callers are woken, tenant
// in-flight gates reopen, the batch returns to the freelist, and the
// dispatcher is signalled to refill the session. served distinguishes a
// batch the session ran to completion (closes the pool's breaker and
// lets successes replenish their tenant's retry tokens) from one failed
// wholesale by a dead epoch.
//
//repro:noalloc
func (ss *session) complete(b *batch, served bool) {
	s := ss.p.s
	s.mu.Lock()
	if served {
		ss.p.noteServedLocked()
	}
	for i := 0; i < b.n; i++ {
		r := b.reqs[i]
		b.reqs[i] = nil
		r.tn.inflight--
		if r.err != nil {
			r.tn.failed++
			s.failed++
		} else {
			r.tn.completed++
			s.completed++
			if r.tn.retryTokens < s.cfg.RetryBudget {
				r.tn.retryTokens++
			}
		}
		if r.attempts > 1 {
			s.retried++
		}
		close(r.done)
	}
	s.batches++
	s.batchedReqs += uint64(b.n)
	b.n = 0
	ss.p.free[ss.p.nfree] = b
	ss.p.nfree++
	s.dirty = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// failPending fails every unfinished request of the in-hand batch with
// cause and completes the batch. No-op when nothing is pending.
func (ss *session) failPending(cause error) {
	b := ss.pending
	if b == nil {
		return
	}
	ss.pending = nil
	now := time.Now().UnixNano()
	for i := 0; i < b.n; i++ {
		r := b.reqs[i]
		if r.finished {
			continue
		}
		if r.startedNs == 0 {
			r.startedNs = now
		}
		r.err = cause
		r.finishedNs = now
		r.finished = true
	}
	ss.complete(b, false)
}

// drainShutdown fails batches already queued on the work channel at
// shutdown. The dispatcher has exited (pool cancellation happens after
// the dispatch loop stops or the pool left the dispatch set), so no new
// batches arrive concurrently.
func (ss *session) drainShutdown() {
	for {
		select {
		case b := <-ss.work:
			ss.pending = b
			ss.failPending(ErrClosed)
		default:
			return
		}
	}
}
