package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/matrix"
)

// RegisterRequest is the wire form of POST /v1/register. Mode and Format
// default to the server's configuration; invalid tokens yield a 400 whose
// message enumerates the valid spellings (core.ParseMode / ParseFormat).
type RegisterRequest struct {
	Name   string `json:"name"`
	Spec   Spec   `json:"spec"`
	Mode   string `json:"mode,omitempty"`
	Format string `json:"format,omitempty"`
}

// OpRequest is the wire form of POST /v1/mul and /v1/solve.
type OpRequest struct {
	Tenant string    `json:"tenant"`
	Matrix string    `json:"matrix"`
	Seed   int64     `json:"seed"`
	X      []float64 `json:"x,omitempty"`
	// Mul parameters.
	Iters int `json:"iters,omitempty"`
	// Solve parameters.
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"maxiter,omitempty"`
	// Gray-failure parameters: end-to-end deadline from admission
	// (milliseconds, 0 = none) and brown-out shedding priority.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	Priority   int   `json:"priority,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/register        {name, spec, mode?, format?} → MatrixInfo
//	GET  /v1/matrix/{name}   → MatrixInfo
//	POST /v1/mul             OpRequest → Response (y = A^iters·x)
//	POST /v1/solve           OpRequest → Response (CG solution of A·x = b)
//	GET  /v1/stats           → Stats
//	GET  /healthz            → 200 "ok"
//
// Admission rejections map to 429, unknown matrices to 404, malformed
// requests to 400, a missed deadline to 504, and a closed or draining
// server, an open circuit breaker, or a brown-out shed to 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", s.handleRegister)
	mux.HandleFunc("GET /v1/matrix/{name}", s.handleMatrix)
	mux.HandleFunc("POST /v1/mul", s.handleOp(OpMul))
	mux.HandleFunc("POST /v1/solve", s.handleOp(OpSolve))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &ValidationError{Msg: "bad register body: " + err.Error()})
		return
	}
	mode := s.cfg.Mode
	if req.Mode != "" {
		m, err := core.ParseMode(req.Mode)
		if err != nil {
			writeError(w, &ValidationError{Msg: err.Error()})
			return
		}
		mode = m
	}
	var format matrix.FormatBuilder
	if req.Format != "" {
		f, err := core.ParseFormat(req.Format)
		if err != nil {
			writeError(w, &ValidationError{Msg: err.Error()})
			return
		}
		format = f
	}
	info, err := s.RegisterWith(req.Name, req.Spec, mode, format)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	info, err := s.Matrix(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleOp(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var or OpRequest
		if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
			writeError(w, &ValidationError{Msg: "bad " + op.String() + " body: " + err.Error()})
			return
		}
		req := &Request{
			Tenant: or.Tenant, Matrix: or.Matrix, Op: op,
			Seed: or.Seed, X: or.X,
			Iters: or.Iters, Tol: or.Tol, MaxIter: or.MaxIter,
			DeadlineMs: or.DeadlineMs, Priority: or.Priority,
		}
		resp, err := s.Do(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, resp)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var rej *RejectError
	var unk *UnknownMatrixError
	var val *ValidationError
	var ddl *core.DeadlineError
	var brk *BreakerError
	var shd *ShedError
	switch {
	case errors.As(err, &rej):
		status = http.StatusTooManyRequests
	case errors.As(err, &unk):
		status = http.StatusNotFound
	case errors.As(err, &val):
		status = http.StatusBadRequest
	case errors.As(err, &ddl):
		status = http.StatusGatewayTimeout
	case errors.As(err, &brk), errors.As(err, &shd),
		errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
