package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
)

// testSpec is a small SPD random band matrix, cheap enough to register in
// every test yet wide enough to exercise halo exchange on 4 ranks.
var testSpec = Spec{Kind: "random", N: 600, Bandwidth: 40, PerRow: 5, Seed: 7, SPD: true}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

// A served multiplication must be bit-identical to an independently built
// reference cluster with the same geometry.
func TestServeMulMatchesReference(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 4, Threads: 2})
	info, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ver.Close()

	for seed := int64(0); seed < 4; seed++ {
		resp, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: seed, Iters: 3})
		if err != nil {
			t.Fatalf("mul seed %d: %v", seed, err)
		}
		if err := ver.Check(OpMul, seed, 3, 0, 0, resp.Y); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// A served solve must converge and be bit-identical to the reference CG.
func TestServeSolveMatchesReference(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 4})
	info, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ver.Close()

	resp, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpSolve, Seed: 1, Tol: 1e-10, MaxIter: 400})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !resp.Converged {
		t.Fatalf("solve did not converge: %d iters, residual %g", resp.Iterations, resp.Residual)
	}
	if err := ver.Check(OpSolve, 1, 0, 1e-10, 400, resp.Y); err != nil {
		t.Error(err)
	}
}

// Registering the same name with an equal spec is idempotent; with a
// different one, an error.
func TestRegisterIdempotent(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2})
	a, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	b, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if a != b {
		t.Errorf("re-register returned different info: %+v vs %+v", a, b)
	}
	other := testSpec
	other.Seed = 99
	var val *ValidationError
	if _, err := s.Register("m", other); !errors.As(err, &val) {
		t.Errorf("conflicting re-register: got %v, want ValidationError", err)
	}
}

// Unknown matrices and malformed parameters are rejected at admission,
// before anything is queued.
func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	var unk *UnknownMatrixError
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "nope", Op: OpMul}); !errors.As(err, &unk) {
		t.Errorf("unknown matrix: got %v", err)
	}
	var val *ValidationError
	if _, err := s.Do(&Request{Matrix: "m", Op: OpMul}); !errors.As(err, &val) {
		t.Errorf("missing tenant: got %v", err)
	}
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Iters: -2}); !errors.As(err, &val) {
		t.Errorf("negative iters: got %v", err)
	}
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, X: make([]float64, 3)}); !errors.As(err, &val) {
		t.Errorf("short input: got %v", err)
	}
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpSolve, Tol: -1}); !errors.As(err, &val) {
		t.Errorf("negative tol: got %v", err)
	}
}

// With the dispatcher frozen, admissions beyond the queue depth must be
// rejected immediately with a RejectError naming the tenant.
func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, QueueDepth: 3})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()

	var wg sync.WaitGroup
	results := make([]error, 5)
	for i := range results {
		r := &Request{Tenant: "t", Matrix: "m", Op: OpMul, Seed: int64(i)}
		if err := s.prepare(r); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if err := s.admit(r); err != nil {
			results[i] = err
			s.reg.unpin(r.ent)
			continue
		}
		wg.Add(1)
		go func(r *Request) {
			defer wg.Done()
			<-r.done
			s.reg.unpin(r.ent)
		}(r)
	}
	var rejected int
	for _, err := range results {
		if err == nil {
			continue
		}
		var rej *RejectError
		if !errors.As(err, &rej) {
			t.Fatalf("unexpected admission error: %v", err)
		}
		if rej.Tenant != "t" || rej.Depth != 3 {
			t.Errorf("reject error %+v, want tenant t depth 3", rej)
		}
		rejected++
	}
	if rejected != 2 {
		t.Errorf("rejected %d of 5 admissions with depth 3, want 2", rejected)
	}
	s.resumeDispatch()
	wg.Wait()

	st := s.Stats()
	if st.Rejected != 2 || st.Completed != 3 {
		t.Errorf("stats rejected=%d completed=%d, want 2 and 3", st.Rejected, st.Completed)
	}
}

// A saturating tenant must not starve a light one: round-robin dispatch
// interleaves both, so the light tenant's requests complete while the
// heavy tenant still has a deep backlog.
func TestTenantFairness(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, QueueDepth: 64, InflightCap: 2, BatchMax: 2, Sessions: 1})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()

	const heavy, light = 40, 4
	type done struct {
		tenant string
		order  int
	}
	var mu sync.Mutex
	var finished []done
	var wg sync.WaitGroup
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			r := &Request{Tenant: tenant, Matrix: "m", Op: OpMul, Seed: int64(i)}
			if err := s.prepare(r); err != nil {
				t.Errorf("prepare: %v", err)
				return
			}
			if err := s.admit(r); err != nil {
				t.Errorf("admit %s/%d: %v", tenant, i, err)
				s.reg.unpin(r.ent)
				return
			}
			wg.Add(1)
			go func(r *Request) {
				defer wg.Done()
				<-r.done
				s.reg.unpin(r.ent)
				mu.Lock()
				finished = append(finished, done{tenant: r.Tenant, order: len(finished)})
				mu.Unlock()
			}(r)
		}
	}
	submit("heavy", heavy)
	submit("light", light)
	s.resumeDispatch()
	wg.Wait()

	// Every light request must finish well before the heavy backlog
	// drains: with strict round-robin the last light request completes
	// around position 2*light, not position heavy+light.
	lastLight := -1
	for _, d := range finished {
		if d.tenant == "light" {
			lastLight = d.order
		}
	}
	if lastLight < 0 {
		t.Fatal("no light-tenant completions recorded")
	}
	if lastLight > (heavy+light)/2 {
		t.Errorf("light tenant's last completion at position %d of %d — starved by the heavy tenant",
			lastLight, heavy+light)
	}
}

// A world failure mid-request must be retried transparently on a fresh
// world (attempts > 1, bit-identical result), and the pool must stay
// usable afterwards.
func TestWorldFailureMidRequestRetries(t *testing.T) {
	// One session whose epoch-0 world kills rank 1 at its 3rd operation;
	// the supervisor's redial consumes the schedule, so epoch 1 is clean.
	faulty := &faultmpi.Transport{Sched: faultmpi.Schedule{
		Kills: []faultmpi.Kill{{Rank: 1, AtOp: 3}},
	}}
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1, MaxAttempts: 3,
		Transport: func(string) func(int) core.Transport {
			return func(int) core.Transport { return faulty }
		},
	})
	info, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ver.Close()

	var sawRetry bool
	for seed := int64(0); seed < 6; seed++ {
		resp, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: seed, Iters: 2})
		if err != nil {
			t.Fatalf("mul seed %d after fault: %v", seed, err)
		}
		if resp.Attempts > 1 {
			sawRetry = true
		}
		if err := ver.Check(OpMul, seed, 2, 0, 0, resp.Y); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
	if !sawRetry {
		t.Error("no request reported attempts > 1; the injected kill never fired mid-request")
	}
	if st := s.Stats(); st.Restarts == 0 {
		t.Error("stats report zero supervisor restarts")
	}
}

// When the retry budget is exhausted (a world that dies every epoch), the
// failure must surface to the caller — and the pool must recover for
// later requests once the fault schedule is consumed.
func TestWorldFailureSurfacesAfterMaxAttempts(t *testing.T) {
	kills := make([]faultmpi.Kill, 12)
	for i := range kills {
		kills[i] = faultmpi.Kill{Rank: 1, AtOp: 1}
	}
	faulty := &faultmpi.Transport{Sched: faultmpi.Schedule{Kills: kills}}
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1, MaxAttempts: 2, MaxRestarts: 2,
		Transport: func(string) func(int) core.Transport {
			return func(int) core.Transport { return faulty }
		},
	})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 1}); err == nil {
		t.Fatal("request on an always-dying world succeeded")
	}
	// The schedule is finite: once consumed, the pool must serve again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 2}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after the fault schedule drained")
		}
	}
}

// Registering past the byte budget evicts the least-recently-used idle
// matrix; pinned matrices are never evicted.
func TestRegistryEviction(t *testing.T) {
	small := Spec{Kind: "random", N: 300, Bandwidth: 20, PerRow: 4, Seed: 1, SPD: true}
	one, err := small.build()
	if err != nil {
		t.Fatal(err)
	}
	_ = one
	s := newTestServer(t, Config{Ranks: 2, ByteBudget: 1 << 20})
	infoA, err := s.Register("a", small)
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	if 3*infoA.Bytes > 1<<20 {
		t.Skipf("test matrix too large for the budget math: %d bytes", infoA.Bytes)
	}
	if _, err := s.Register("b", Spec{Kind: "random", N: 300, Bandwidth: 20, PerRow: 4, Seed: 2, SPD: true}); err != nil {
		t.Fatalf("register b: %v", err)
	}
	// Touch "a" so "b" is the LRU victim when "c" needs the room.
	if _, err := s.Do(&Request{Tenant: "t", Matrix: "a", Op: OpMul}); err != nil {
		t.Fatalf("mul a: %v", err)
	}
	big := Spec{Kind: "random", N: 3000, Bandwidth: 60, PerRow: 12, Seed: 3, SPD: true}
	if _, err := s.Register("c", big); err != nil {
		t.Fatalf("register c: %v", err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	var unk *UnknownMatrixError
	if _, err := s.Do(&Request{Tenant: "t", Matrix: "b", Op: OpMul}); !errors.As(err, &unk) {
		t.Errorf("evicted matrix b still serves: %v", err)
	}
	if _, err := s.Do(&Request{Tenant: "t", Matrix: "a", Op: OpMul}); err != nil {
		t.Errorf("surviving matrix a broken after eviction: %v", err)
	}
}

// Requests still queued at Close must fail with ErrClosed, not hang.
func TestCloseFailsQueuedRequests(t *testing.T) {
	s := NewServer(Config{Ranks: 2, QueueDepth: 16})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()
	r := &Request{Tenant: "t", Matrix: "m", Op: OpMul}
	if err := s.prepare(r); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := s.admit(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		<-r.done
		done <- r.err
	}()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("queued request failed with %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request hung across Close")
	}
	if _, err := s.Do(&Request{Tenant: "t", Matrix: "m", Op: OpMul}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close: %v, want ErrClosed", err)
	}
}

// Concurrent mixed traffic from many tenants: everything completes (or is
// cleanly rejected), and every result is bit-identical to the reference.
// Run with -race this doubles as the dispatcher's race stress.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, Threads: 2, QueueDepth: 128, Sessions: 2, BatchMax: 4})
	info, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ver.Close()

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := []string{"a", "b", "c"}[w%3]
			for i := 0; i < perWorker; i++ {
				seed := int64((w*perWorker + i) % 5)
				if i%4 == 3 {
					resp, err := s.Do(&Request{Tenant: tenant, Matrix: "m", Op: OpSolve, Seed: seed, Tol: 1e-8, MaxIter: 300})
					if err != nil {
						errCh <- err
						continue
					}
					if err := ver.Check(OpSolve, seed, 0, 1e-8, 300, resp.Y); err != nil {
						errCh <- err
					}
				} else {
					resp, err := s.Do(&Request{Tenant: tenant, Matrix: "m", Op: OpMul, Seed: seed, Iters: 2})
					if err != nil {
						errCh <- err
						continue
					}
					if err := ver.Check(OpMul, seed, 2, 0, 0, resp.Y); err != nil {
						errCh <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		var rej *RejectError
		if errors.As(err, &rej) {
			continue // admission control doing its job under burst
		}
		t.Errorf("traffic error: %v", err)
	}
	st := s.Stats()
	if st.Batches == 0 || st.BatchedRequests < st.Batches {
		t.Errorf("implausible batching stats: %d batches, %d requests", st.Batches, st.BatchedRequests)
	}
	if math.IsNaN(float64(st.Completed)) || st.Completed == 0 {
		t.Error("no completions recorded")
	}
}

// With the dispatcher frozen and several compatible requests queued,
// resuming must coalesce them into shared batches (fewer batches than
// requests).
func TestDispatcherBatchesCompatibleRequests(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, QueueDepth: 32, InflightCap: 16, BatchMax: 8, Sessions: 1})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r := &Request{Tenant: "t", Matrix: "m", Op: OpMul, Seed: int64(i)}
		if err := s.prepare(r); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if err := s.admit(r); err != nil {
			t.Fatalf("admit: %v", err)
		}
		wg.Add(1)
		go func(r *Request) {
			defer wg.Done()
			<-r.done
			s.reg.unpin(r.ent)
		}(r)
	}
	s.resumeDispatch()
	wg.Wait()
	st := s.Stats()
	if st.BatchedRequests != n {
		t.Fatalf("batched %d requests, want %d", st.BatchedRequests, n)
	}
	if st.Batches >= n {
		t.Errorf("%d batches for %d compatible requests — no batching happened", st.Batches, n)
	}
}
