package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return eb.Error
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/register", RegisterRequest{Name: "m", Spec: testSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d: %s", resp.StatusCode, decodeError(t, resp))
	}
	var info MatrixInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Rows != testSpec.N || info.Ranks != 2 {
		t.Errorf("register info %+v", info)
	}

	resp = postJSON(t, srv, "/v1/mul", OpRequest{Tenant: "a", Matrix: "m", Seed: 3, Iters: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mul status %d: %s", resp.StatusCode, decodeError(t, resp))
	}
	var mul Response
	if err := json.NewDecoder(resp.Body).Decode(&mul); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mul.Y) != testSpec.N {
		t.Fatalf("mul returned %d rows, want %d", len(mul.Y), testSpec.N)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatal(err)
	}
	defer ver.Close()
	if err := ver.Check(OpMul, 3, 2, 0, 0, mul.Y); err != nil {
		t.Errorf("HTTP mul result not bit-identical: %v", err)
	}

	resp = postJSON(t, srv, "/v1/solve", OpRequest{Tenant: "a", Matrix: "m", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, decodeError(t, resp))
	}
	var solve Response
	json.NewDecoder(resp.Body).Decode(&solve)
	resp.Body.Close()
	if !solve.Converged {
		t.Errorf("solve did not converge: %+v", solve)
	}

	sr, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(sr.Body).Decode(&st)
	sr.Body.Close()
	if st.Completed < 2 {
		t.Errorf("stats completed %d, want ≥ 2", st.Completed)
	}

	mr, err := srv.Client().Get(srv.URL + "/v1/matrix/m")
	if err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Errorf("matrix info status %d", mr.StatusCode)
	}
}

// Error mapping: 400 enumerates valid tokens for bad mode/format, 404 for
// unknown matrices, 429 for a full queue.
func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/register", RegisterRequest{Name: "m", Spec: testSpec, Mode: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode status %d", resp.StatusCode)
	}
	msg := decodeError(t, resp)
	for _, tok := range core.ModeTokens() {
		if !strings.Contains(msg, tok) {
			t.Errorf("400 body %q does not enumerate mode token %q", msg, tok)
		}
	}

	resp = postJSON(t, srv, "/v1/register", RegisterRequest{Name: "m", Spec: testSpec, Format: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d", resp.StatusCode)
	}
	msg = decodeError(t, resp)
	for _, tok := range core.FormatTokens() {
		if !strings.Contains(msg, tok) {
			t.Errorf("400 body %q does not enumerate format token %q", msg, tok)
		}
	}

	resp = postJSON(t, srv, "/v1/mul", OpRequest{Tenant: "a", Matrix: "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown matrix status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Fill the depth-1 queue with the dispatcher frozen; the next request
	// must bounce with 429.
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatal(err)
	}
	s.pauseDispatch()
	blocked := &Request{Tenant: "t", Matrix: "m", Op: OpMul}
	if err := s.prepare(blocked); err != nil {
		t.Fatal(err)
	}
	if err := s.admit(blocked); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, srv, "/v1/mul", OpRequest{Tenant: "t", Matrix: "m"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
	s.resumeDispatch()
	<-blocked.done
	s.reg.unpin(blocked.ent)
}

// The load generator end to end: a short closed-loop run over HTTP with
// verification on, then an open-loop run. Every response must verify.
func TestRunLoadSmoke(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, QueueDepth: 64, Sessions: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := &Client{Base: srv.URL, HTTP: srv.Client()}
	res, err := RunLoad(LoadConfig{
		Client: client, Matrix: "m", Spec: testSpec,
		Tenants: 2, Concurrency: 4, Duration: 500 * time.Millisecond,
		MulFraction: 0.9, Seeds: 8, Verify: true,
	})
	if err != nil {
		t.Fatalf("closed-loop RunLoad: %v", err)
	}
	if res.Completed == 0 || res.ReqPerSec <= 0 {
		t.Errorf("no throughput: %+v", res)
	}
	if res.VerifyFailures != 0 {
		t.Errorf("%d verification failures of %d verified", res.VerifyFailures, res.Verified)
	}
	if res.Verified != res.Completed {
		t.Errorf("verified %d of %d completions", res.Verified, res.Completed)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Errorf("implausible percentiles: %+v", res)
	}

	open, err := RunLoad(LoadConfig{
		Client: client, Matrix: "m", Spec: testSpec,
		Tenants: 1, Concurrency: 2, Duration: 400 * time.Millisecond,
		OpenRateHz: 200, Seeds: 4, Verify: true,
	})
	if err != nil {
		t.Fatalf("open-loop RunLoad: %v", err)
	}
	if open.Requests == 0 {
		t.Error("open loop issued no requests")
	}
	if open.VerifyFailures != 0 {
		t.Errorf("open loop: %d verification failures", open.VerifyFailures)
	}
}
