package serve

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/genmat"
	"repro/internal/matrix"
)

// Spec describes a matrix to generate at registration. It is a comparable
// value: registering the same name with an equal spec is idempotent, with a
// different one an error. Generation is fully deterministic, so a client
// holding the spec can rebuild the server's exact matrix for verification.
type Spec struct {
	// Kind selects the generator: "random" (genmat.RandomBand),
	// "holstein" (the paper's Holstein–Hubbard Hamiltonian, HMEp
	// ordering), or "poisson" (the sAMG-substitute Poisson matrix).
	Kind string `json:"kind"`
	// Random-band parameters (Kind "random").
	N         int    `json:"n,omitempty"`
	Bandwidth int    `json:"bandwidth,omitempty"`
	PerRow    int    `json:"per_row,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	SPD       bool   `json:"spd,omitempty"`
	// Scale selects the problem size for "holstein" and "poisson"
	// ("small", "medium", "full"; default "small").
	Scale string `json:"scale,omitempty"`
}

// normalize canonicalizes the spec so equal-meaning specs compare equal.
func (sp Spec) normalize() Spec {
	sp.Kind = strings.ToLower(strings.TrimSpace(sp.Kind))
	sp.Scale = strings.ToLower(strings.TrimSpace(sp.Scale))
	if sp.Kind != "random" {
		sp.N, sp.Bandwidth, sp.PerRow, sp.Seed, sp.SPD = 0, 0, 0, 0, false
		if sp.Scale == "" {
			sp.Scale = "small"
		}
	} else {
		sp.Scale = ""
	}
	return sp
}

// build materializes the spec's matrix source.
func (sp Spec) build() (matrix.ValueSource, error) {
	switch sp.Kind {
	case "random":
		return genmat.NewRandomBand(genmat.RandomBandConfig{
			N: sp.N, Bandwidth: sp.Bandwidth, PerRow: sp.PerRow,
			Seed: sp.Seed, Symmetric: sp.SPD, SPD: sp.SPD,
		})
	case "holstein":
		scale, err := expt.ParseScale(sp.Scale)
		if err != nil {
			return nil, &ValidationError{Msg: err.Error()}
		}
		return expt.HolsteinSource(genmat.HMEp, scale)
	case "poisson":
		scale, err := expt.ParseScale(sp.Scale)
		if err != nil {
			return nil, &ValidationError{Msg: err.Error()}
		}
		return expt.PoissonSource(scale)
	default:
		return nil, &ValidationError{Msg: fmt.Sprintf("unknown matrix kind %q (valid: random, holstein, poisson)", sp.Kind)}
	}
}

// MatrixInfo is the registered matrix's geometry — everything a client
// needs to build a bit-identical reference cluster: same spec (which the
// client supplied), same rank partition (derived deterministically from
// the spec), same mode and storage format. Thread count is deliberately
// omitted from the reproducibility contract: rows are computed whole per
// thread, so it does not affect result bits.
type MatrixInfo struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Nnz     int64  `json:"nnz"`
	Ranks   int    `json:"ranks"`
	Threads int    `json:"threads"`
	Mode    string `json:"mode"`
	Format  string `json:"format"`
	// Bytes is the plan's resident footprint estimate (core.Plan.Bytes),
	// the unit of the registry's eviction budget.
	Bytes int64 `json:"bytes"`
}

// entry is one resident matrix: its converted plan, its session pool, and
// the registry bookkeeping (pin count, LRU clock, byte estimate).
type entry struct {
	name       string
	spec       Spec
	modeName   string
	formatName string
	mode       core.Mode
	info       MatrixInfo
	plan       *core.Plan
	pool       *pool
	bytes      int64
	lastUse    uint64
	active     int
}

// registry owns the named matrices and their byte budget. Requests pin
// their entry from validation to completion, so eviction only ever takes
// matrices no queued or in-flight request references.
type registry struct {
	s *Server

	// buildMu serializes registrations end to end (generation and plan
	// building happen outside mu, so lookups and pins stay fast).
	buildMu sync.Mutex

	mu        sync.Mutex
	entries   map[string]*entry
	useClock  uint64
	bytes     int64
	evictions uint64
}

func newRegistry(s *Server) *registry {
	return &registry{s: s, entries: make(map[string]*entry)}
}

// register loads/generates the matrix, partitions it by nonzeros over the
// server's ranks, converts it to the session format once (pooled sessions
// then share the read-only plan), spins up the session pool, and commits
// the entry — evicting idle matrices if the byte budget requires.
func (reg *registry) register(name string, spec Spec, mode core.Mode, format matrix.FormatBuilder) (MatrixInfo, error) {
	if name == "" {
		return MatrixInfo{}, &ValidationError{Msg: "register needs a matrix name"}
	}
	spec = spec.normalize()
	if format == nil {
		format = matrix.CSRBuilder{}
	}
	modeName, formatName := mode.String(), format.Name()

	reg.buildMu.Lock()
	defer reg.buildMu.Unlock()

	reg.mu.Lock()
	if e := reg.entries[name]; e != nil {
		defer reg.mu.Unlock()
		if e.spec != spec || e.modeName != modeName || e.formatName != formatName {
			return MatrixInfo{}, &ValidationError{Msg: fmt.Sprintf(
				"matrix %q already registered with a different spec/mode/format", name)}
		}
		reg.useClock++
		e.lastUse = reg.useClock
		return e.info, nil
	}
	reg.mu.Unlock()

	src, err := spec.build()
	if err != nil {
		return MatrixInfo{}, err
	}
	rows, _ := src.Dims()
	part := core.PartitionByNnz(src, reg.s.cfg.Ranks)
	plan, err := core.BuildPlan(src, part, true)
	if err != nil {
		return MatrixInfo{}, err
	}
	if err := plan.ConvertFormat(format); err != nil {
		return MatrixInfo{}, err
	}
	var nnz int64
	for _, rp := range plan.Ranks {
		nnz += rp.NnzLocal + rp.NnzRemote
	}
	bytes := plan.Bytes()

	e := &entry{
		name: name, spec: spec, modeName: modeName, formatName: formatName,
		mode: mode, plan: plan, bytes: bytes,
		info: MatrixInfo{
			Name: name, Rows: rows, Nnz: nnz,
			Ranks: reg.s.cfg.Ranks, Threads: reg.s.cfg.Threads,
			Mode: modeName, Format: formatName, Bytes: bytes,
		},
	}

	// Make room before spinning the pool up: evict least-recently-used
	// unpinned entries until the new entry fits, or fail if the budget
	// cannot be met (pinned entries are untouchable).
	victims, err := reg.claim(e)
	if err != nil {
		return MatrixInfo{}, err
	}
	for _, v := range victims {
		reg.s.removePool(v.pool)
		v.pool.shutdown()
	}

	e.pool = newPool(reg.s, name, plan, mode)
	reg.s.addPool(e.pool)
	reg.mu.Lock()
	reg.entries[name] = e
	reg.useClock++
	e.lastUse = reg.useClock
	reg.mu.Unlock()
	return e.info, nil
}

// claim reserves budget for the new entry, detaching LRU victims from the
// registry (their pools are shut down by the caller, outside reg.mu).
func (reg *registry) claim(e *entry) ([]*entry, error) {
	budget := reg.s.cfg.ByteBudget
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var victims []*entry
	if budget > 0 {
		for reg.bytes+e.bytes > budget {
			var lru *entry
			for _, cand := range reg.entries {
				if cand.active > 0 {
					continue
				}
				if lru == nil || cand.lastUse < lru.lastUse {
					lru = cand
				}
			}
			if lru == nil {
				// Roll back the victims already detached? They are not yet
				// shut down, so re-attach them and fail cleanly.
				for _, v := range victims {
					reg.entries[v.name] = v
					reg.bytes += v.bytes
				}
				return nil, &ValidationError{Msg: fmt.Sprintf(
					"matrix %q (%d bytes) does not fit the byte budget (%d in use of %d, all pinned)",
					e.name, e.bytes, reg.bytes, budget)}
			}
			delete(reg.entries, lru.name)
			reg.bytes -= lru.bytes
			reg.evictions++
			victims = append(victims, lru)
		}
	}
	reg.bytes += e.bytes
	return victims, nil
}

// pin looks the matrix up and holds it against eviction until unpin.
func (reg *registry) pin(name string) (*entry, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	e := reg.entries[name]
	if e == nil {
		return nil, &UnknownMatrixError{Name: name}
	}
	e.active++
	reg.useClock++
	e.lastUse = reg.useClock
	return e, nil
}

func (reg *registry) unpin(e *entry) {
	reg.mu.Lock()
	e.active--
	reg.mu.Unlock()
}
