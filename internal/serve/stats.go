package serve

import "time"

// FillVector fills x with deterministic values in [-1, 1) derived from
// seed via splitmix64 — the shared request-input generator. The server
// uses it for every request that carries a seed instead of an explicit
// vector, so a verifying client can reconstruct the exact input from the
// wire-level seed alone and check the response bit for bit.
func FillVector(x []float64, seed int64) {
	z := uint64(seed) * 0x9e3779b97f4a7c15
	for i := range x {
		z += 0x9e3779b97f4a7c15
		w := z
		w = (w ^ w>>30) * 0xbf58476d1ce4e5b9
		w = (w ^ w>>27) * 0x94d049bb133111eb
		w ^= w >> 31
		x[i] = float64(w>>11)/float64(1<<52)*2 - 1
	}
}

// TenantStats is one tenant's admission and completion counters.
type TenantStats struct {
	Name      string `json:"name"`
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Shed      uint64 `json:"shed,omitempty"`
	Queued    int    `json:"queued"`
	Inflight  int    `json:"inflight"`
	// RetryTokens is the tenant's remaining transparent-retry budget
	// (see Config.RetryBudget).
	RetryTokens int `json:"retry_tokens"`
}

// MatrixStats is one registered matrix's residency and pool state.
type MatrixStats struct {
	Name     string `json:"name"`
	Bytes    int64  `json:"bytes"`
	Pinned   int    `json:"pinned"`
	Sessions int    `json:"sessions"`
	// Breaker is the pool's circuit-breaker state: "closed",
	// "half-open" or "open".
	Breaker string `json:"breaker,omitempty"`
}

// Stats is a consistent snapshot of the server's counters.
type Stats struct {
	UptimeNs        int64         `json:"uptime_ns"`
	Accepted        uint64        `json:"accepted"`
	Rejected        uint64        `json:"rejected"`
	Completed       uint64        `json:"completed"`
	Failed          uint64        `json:"failed"`
	Retried         uint64        `json:"retried"`
	Batches         uint64        `json:"batches"`
	BatchedRequests uint64        `json:"batched_requests"`
	Restarts        uint64        `json:"restarts"`
	Shed            uint64        `json:"shed"`
	Deadlined       uint64        `json:"deadlined"`
	Evictions       uint64        `json:"evictions"`
	ResidentBytes   int64         `json:"resident_bytes"`
	Tenants         []TenantStats `json:"tenants,omitempty"`
	Matrices        []MatrixStats `json:"matrices,omitempty"`
}

// Stats snapshots the server's counters, tenants and registry.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		UptimeNs:        time.Now().UnixNano() - int64(s.startNs),
		Accepted:        s.accepted,
		Rejected:        s.rejected,
		Completed:       s.completed,
		Failed:          s.failed,
		Retried:         s.retried,
		Batches:         s.batches,
		BatchedRequests: s.batchedReqs,
		Restarts:        s.restarts,
		Shed:            s.shed,
		Deadlined:       s.deadlined,
	}
	for _, t := range s.order {
		st.Tenants = append(st.Tenants, TenantStats{
			Name: t.name, Accepted: t.accepted, Rejected: t.rejected,
			Completed: t.completed, Failed: t.failed, Shed: t.shed,
			Queued: t.q.n, Inflight: t.inflight,
			RetryTokens: t.retryTokens,
		})
	}
	sessions := make(map[string]int, len(s.pools))
	breakers := make(map[string]string, len(s.pools))
	for _, p := range s.pools {
		sessions[p.name] = len(p.sessions)
		breakers[p.name] = p.breakerState()
	}
	s.mu.Unlock()

	reg := s.reg
	reg.mu.Lock()
	st.Evictions = reg.evictions
	st.ResidentBytes = reg.bytes
	for _, e := range reg.entries {
		st.Matrices = append(st.Matrices, MatrixStats{
			Name: e.name, Bytes: e.bytes, Pinned: e.active,
			Sessions: sessions[e.name], Breaker: breakers[e.name],
		})
	}
	reg.mu.Unlock()
	return st
}
