// Package serve is the multi-tenant SpMV service layer over the resident
// distributed runtime: a Registry of named matrices (loaded once,
// partitioned, converted to the session format, evicted under a byte
// budget), a pool of warm core.Clusters per matrix (lazy spin-up,
// core.Supervisor-wrapped so a failed world restarts transparently),
// per-tenant FIFO queues with admission control (bounded queue depth →
// fast 429-style rejection), and a dispatcher that batches compatible
// requests onto a warm cluster so the steady state stays on the
// zero-allocation resident path.
//
// The serving guarantee is the runtime's bit-reproducibility contract
// lifted to the wire: a multiply or solve request is a pure function of
// (matrix spec, partition geometry, mode, format, input seed), so every
// served response can be verified bit-identical against an independently
// built reference — the load generator (RunLoad) does exactly that for
// every response it receives.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solver"
)

// Op selects the request operation.
type Op int

const (
	// OpMul is y = A^iters · x on the matrix's warm cluster.
	OpMul Op = iota
	// OpSolve is a distributed CG solve A·x = b (the matrix must be SPD
	// for CG to converge; a breakdown surfaces as a request error).
	OpSolve
)

func (o Op) String() string {
	switch o {
	case OpMul:
		return "mul"
	case OpSolve:
		return "solve"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Ranks and Threads are the geometry of every pooled cluster: ranks
	// per world, compute threads per rank (defaults 4 and 1).
	Ranks   int
	Threads int
	// Mode is the default kernel mode for registered matrices (a register
	// request may override it per matrix).
	Mode core.Mode
	// Format is the default storage format builder (nil = CSR); a
	// register request may override it per matrix. Conversion happens
	// once at registration, so pooled sessions share the converted plan.
	Format matrix.FormatBuilder
	// QueueDepth bounds each tenant's FIFO; an admission beyond it is
	// rejected immediately with a *RejectError (default 64).
	QueueDepth int
	// InflightCap bounds how many of a tenant's requests may be
	// dispatched-but-unfinished at once; beyond it the tenant's queue
	// simply waits (default 16).
	InflightCap int
	// BatchMax bounds how many requests ride one dispatch batch onto a
	// warm cluster (default 8).
	BatchMax int
	// Sessions bounds the resident clusters per matrix; sessions spin up
	// lazily as load arrives (default 2).
	Sessions int
	// ByteBudget bounds the registry's resident matrix bytes (plan
	// estimate, see core.Plan.Bytes); registration beyond it evicts
	// least-recently-used idle matrices, or fails if none can go
	// (0 = unlimited).
	ByteBudget int64
	// MaxAttempts bounds how many worlds one request may be tried on
	// before its failure is surfaced to the caller (default 2: the
	// original attempt plus one transparent retry after a world failure).
	MaxAttempts int
	// MaxRestarts is each session supervisor's restart budget per
	// recovery episode (default 3).
	MaxRestarts int
	// Transport, when non-nil, supplies the transport factory for a
	// matrix's pool — the fault-injection hook (nil epochs fall back to
	// the in-process chan transport).
	Transport func(matrixName string) func(epoch int) core.Transport

	// RetryBudget is each tenant's transparent-retry token bucket. A
	// world failure consumes one token to re-run the request on a fresh
	// epoch; a completed request restores one (capacity RetryBudget). An
	// empty bucket fails requests on their first world failure instead of
	// retrying, so a tenant whose traffic keeps poisoning worlds cannot
	// burn unbounded epochs (default 8).
	RetryBudget int
	// BreakerThreshold opens a matrix pool's circuit breaker after that
	// many consecutive supervisor give-ups; an open breaker fail-fasts
	// admissions with a *BreakerError (HTTP 503) instead of queueing onto
	// a pool that keeps losing worlds (default 2).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// a single half-open probe through; the probe's fate decides between
	// closing the breaker and another cooldown (default 250ms).
	BreakerCooldown time.Duration
	// BrownoutHigh and BrownoutLow are the total-queued watermarks of
	// brown-out mode: when the server-wide queue depth holds at or above
	// High for BrownoutAfter, the lowest-priority queued requests are
	// shed with a *ShedError (HTTP 503) until depth falls to Low — a
	// deliberate partial outage instead of timing every request out.
	// Defaults: 2×QueueDepth and QueueDepth/2.
	BrownoutHigh int
	BrownoutLow  int
	// BrownoutAfter is how long overload must persist before shedding
	// begins — a burst shorter than this rides the queues (default 100ms).
	BrownoutAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.InflightCap <= 0 {
		c.InflightCap = 16
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.Sessions <= 0 {
		c.Sessions = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.BrownoutHigh <= 0 {
		c.BrownoutHigh = 2 * c.QueueDepth
	}
	if c.BrownoutLow <= 0 {
		c.BrownoutLow = c.QueueDepth / 2
	}
	if c.BrownoutAfter <= 0 {
		c.BrownoutAfter = 100 * time.Millisecond
	}
	return c
}

// ErrClosed reports a request against a server that has shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrDraining reports an admission during graceful drain: the server is
// finishing queued and in-flight work but accepts nothing new. The HTTP
// layer maps it to 503.
var ErrDraining = errors.New("serve: server draining (no new admissions)")

// BreakerError is a fail-fast rejection from a matrix pool's circuit
// breaker: the pool's supervisors kept giving up, so admissions are
// refused until a cooldown elapses and a half-open probe succeeds. The
// HTTP layer maps it to 503.
type BreakerError struct {
	Matrix string
	State  string // "open" or "half-open"
}

func (e *BreakerError) Error() string {
	return fmt.Sprintf("serve: matrix %q circuit breaker %s (pool keeps losing worlds); retry later", e.Matrix, e.State)
}

// ShedError reports a queued request shed by brown-out mode: the server
// held at its overload watermark long enough that the lowest-priority
// queued work was dropped to keep the rest inside its latency budget.
// The HTTP layer maps it to 503.
type ShedError struct {
	Tenant   string
	Priority int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: request from tenant %q (priority %d) shed under sustained overload; retry later", e.Tenant, e.Priority)
}

// RejectError is a fast admission rejection: the tenant's queue is at its
// configured depth. The HTTP layer maps it to 429 Too Many Requests.
type RejectError struct {
	Tenant string
	Depth  int
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: tenant %q queue full (depth %d); retry later", e.Tenant, e.Depth)
}

// UnknownMatrixError reports a request naming an unregistered (or
// evicted) matrix. The HTTP layer maps it to 404.
type UnknownMatrixError struct{ Name string }

func (e *UnknownMatrixError) Error() string {
	return fmt.Sprintf("serve: unknown matrix %q (register it first)", e.Name)
}

// ValidationError reports malformed request parameters. The HTTP layer
// maps it to 400.
type ValidationError struct{ Msg string }

func (e *ValidationError) Error() string { return "serve: " + e.Msg }

// Request is one tenant operation against a registered matrix. The
// exported fields are the wire-level parameters; everything needed to
// dispatch, retry and complete the request lives in unexported runtime
// state, so a Request must not be reused across Do calls.
type Request struct {
	Tenant string
	Matrix string
	Op     Op
	// Seed derives the input vector when X is nil — the shared
	// deterministic generator FillVector, so a verifying client can
	// rebuild the exact input from the wire-level seed.
	Seed int64
	// X is the explicit input (mul RHS, solve right-hand side b); nil
	// generates it from Seed.
	X []float64
	// Iters is the mul iteration count (default 1).
	Iters int
	// Tol and MaxIter configure a solve (defaults 1e-8 and 500).
	Tol     float64
	MaxIter int
	// DeadlineMs, when positive, is the request's end-to-end budget in
	// milliseconds from admission. A request still queued at expiry is
	// failed without ever touching a cluster; one already executing is
	// abandoned through the cluster's interrupt path. Both surface a
	// *core.DeadlineError (HTTP 504), final for this request — it is
	// never retried, though batch-mates of a mid-job expiry are.
	DeadlineMs int64
	// Priority orders requests under brown-out shedding: when sustained
	// overload forces the server to drop queued work, lower priorities go
	// first (default 0; higher is more important).
	Priority int

	// runtime state (owned by the server once admitted)
	ent        *entry
	tn         *tenant
	x, y       []float64
	done       chan struct{}
	err        error
	finished   bool
	attempts   int
	queuedNs   int64
	deadlineNs int64 // absolute; 0 means no deadline
	startedNs  int64
	finishedNs int64
	solveRes   solver.CGResult
}

// Response carries a completed request's results and timing.
type Response struct {
	// Y is the mul result y = A^iters·x, or the solve solution x.
	Y []float64 `json:"y"`
	// Iterations, Residual and Converged are set for solves.
	Iterations int     `json:"iterations,omitempty"`
	Residual   float64 `json:"residual,omitempty"`
	Converged  bool    `json:"converged,omitempty"`
	// Attempts counts the worlds this request ran on (>1 means a world
	// failure was recovered transparently).
	Attempts int `json:"attempts"`
	// QueueNs and ExecNs split the request's latency into time waiting
	// for dispatch and time on the cluster (batch-mates included).
	QueueNs int64 `json:"queue_ns"`
	ExecNs  int64 `json:"exec_ns"`
}

// Server is the multi-tenant serving runtime: registry, tenant queues,
// dispatcher and session pools. Create with NewServer, serve with Do (or
// the HTTP Handler), shut down with Close.
type Server struct {
	cfg Config
	reg *registry

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	order    []*tenant
	rr       int
	pools    []*pool
	dirty    bool
	paused   bool // test hook: freeze the dispatcher
	closed   bool
	draining bool

	// brown-out state (under mu): total queued across all tenants, when
	// the high watermark was first crossed, and a grow-once scratch for
	// the shed pass.
	queuedTotal     int
	overloadSinceNs int64
	shedScratch     []*Request

	dispatchDone chan struct{}

	startNs uint64
	// global counters (under mu)
	accepted, rejected, completed, failed, retried uint64
	batches, batchedReqs, restarts                 uint64
	shed, deadlined                                uint64
}

// NewServer builds a serving runtime and starts its dispatcher.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:          cfg.withDefaults(),
		tenants:      make(map[string]*tenant),
		dispatchDone: make(chan struct{}),
		startNs:      uint64(time.Now().UnixNano()),
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.reg = newRegistry(s)
	go s.dispatchLoop()
	return s
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Register loads/generates the named matrix, partitions it into the
// server's cluster geometry, converts it to the session's storage format,
// and readies a session pool — evicting idle matrices if the byte budget
// requires. Registering the same name with the same spec is idempotent.
func (s *Server) Register(name string, spec Spec) (MatrixInfo, error) {
	return s.reg.register(name, spec, s.cfg.Mode, s.cfg.Format)
}

// RegisterWith is Register with per-matrix mode and format overrides.
func (s *Server) RegisterWith(name string, spec Spec, mode core.Mode, format matrix.FormatBuilder) (MatrixInfo, error) {
	if format == nil {
		format = s.cfg.Format
	}
	return s.reg.register(name, spec, mode, format)
}

// Matrix returns the registered matrix's info.
func (s *Server) Matrix(name string) (MatrixInfo, error) {
	ent, err := s.reg.pin(name)
	if err != nil {
		return MatrixInfo{}, err
	}
	defer s.reg.unpin(ent)
	return ent.info, nil
}

// Do validates, admits, dispatches and waits out one request. Admission
// failures (unknown matrix, malformed parameters, full tenant queue)
// return immediately; an admitted request blocks until its batch has run
// on a warm cluster (transparently retried on a fresh world after a world
// failure, up to Config.MaxAttempts).
func (s *Server) Do(req *Request) (*Response, error) {
	if err := s.prepare(req); err != nil {
		return nil, err
	}
	if err := s.admit(req); err != nil {
		s.reg.unpin(req.ent)
		return nil, err
	}
	<-req.done
	s.reg.unpin(req.ent)
	if req.err != nil {
		return nil, req.err
	}
	resp := &Response{
		Y:        req.y,
		Attempts: req.attempts,
		QueueNs:  req.startedNs - req.queuedNs,
		ExecNs:   req.finishedNs - req.startedNs,
	}
	if req.Op == OpSolve {
		resp.Iterations = req.solveRes.Iterations
		resp.Residual = req.solveRes.Residual
		resp.Converged = req.solveRes.Converged
	}
	return resp, nil
}

// prepare validates the request, pins its matrix against eviction, and
// materializes the input and result buffers.
func (s *Server) prepare(req *Request) error {
	if req.Tenant == "" {
		return &ValidationError{Msg: "request needs a tenant"}
	}
	if req.Matrix == "" {
		return &ValidationError{Msg: "request needs a matrix name"}
	}
	switch req.Op {
	case OpMul:
		if req.Iters == 0 {
			req.Iters = 1
		}
		if req.Iters < 1 {
			return &ValidationError{Msg: fmt.Sprintf("mul needs iters ≥ 1, got %d", req.Iters)}
		}
	case OpSolve:
		if req.Tol == 0 {
			req.Tol = 1e-8
		}
		if req.MaxIter == 0 {
			req.MaxIter = 500
		}
		if req.Tol <= 0 || req.MaxIter < 1 {
			return &ValidationError{Msg: fmt.Sprintf("solve needs tol > 0 and maxiter ≥ 1, got tol=%g maxiter=%d", req.Tol, req.MaxIter)}
		}
	default:
		return &ValidationError{Msg: fmt.Sprintf("unknown op %d", int(req.Op))}
	}
	if req.DeadlineMs < 0 {
		return &ValidationError{Msg: fmt.Sprintf("deadline must be ≥ 0 ms, got %d", req.DeadlineMs)}
	}
	ent, err := s.reg.pin(req.Matrix)
	if err != nil {
		return err
	}
	rows := ent.info.Rows
	if req.X != nil && len(req.X) != rows {
		s.reg.unpin(ent)
		return &ValidationError{Msg: fmt.Sprintf("input length %d, matrix %q has %d rows", len(req.X), req.Matrix, rows)}
	}
	req.ent = ent
	req.x = req.X
	if req.x == nil {
		req.x = make([]float64, rows)
		FillVector(req.x, req.Seed)
	}
	req.y = make([]float64, rows)
	req.done = make(chan struct{})
	req.finished = false
	req.err = nil
	req.attempts = 0
	return nil
}

// admit appends the request to its tenant's FIFO — or rejects immediately
// when the server is draining, the matrix's circuit breaker is open, or
// the queue is at depth — and wakes the dispatcher. Admission is also
// where the request's deadline is armed and where sustained overload is
// re-evaluated (each arriving request gives brown-out a clock edge even
// when nothing is completing).
func (s *Server) admit(req *Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.draining {
		return ErrDraining
	}
	now := time.Now().UnixNano()
	t := s.tenants[req.Tenant]
	if t == nil {
		t = newTenant(req.Tenant, s.cfg.QueueDepth, s.cfg.RetryBudget)
		s.tenants[req.Tenant] = t
		s.order = append(s.order, t)
	}
	// Queue capacity before the breaker, so a queue-full rejection can
	// never consume the breaker's half-open probe slot.
	if t.q.n == len(t.q.buf) {
		t.rejected++
		s.rejected++
		return &RejectError{Tenant: req.Tenant, Depth: s.cfg.QueueDepth}
	}
	if err := req.ent.pool.breakerAdmit(now); err != nil {
		return err
	}
	t.q.push(req)
	req.tn = t
	req.queuedNs = now
	if req.DeadlineMs > 0 {
		req.deadlineNs = now + req.DeadlineMs*int64(time.Millisecond)
	} else {
		req.deadlineNs = 0
	}
	t.accepted++
	s.accepted++
	s.queuedTotal++
	s.checkBrownout(now)
	s.dirty = true
	s.cond.Broadcast()
	return nil
}

// checkBrownout tracks how long the server has held at or above the high
// watermark and sheds once the overload is sustained. Caller holds s.mu.
func (s *Server) checkBrownout(nowNs int64) {
	if s.queuedTotal < s.cfg.BrownoutHigh {
		s.overloadSinceNs = 0
		return
	}
	if s.overloadSinceNs == 0 {
		s.overloadSinceNs = nowNs
		return
	}
	if nowNs-s.overloadSinceNs >= int64(s.cfg.BrownoutAfter) {
		s.shedLowest(nowNs)
	}
}

// shedLowest drops queued requests — lowest priority first, newest first
// within a priority — until the total backlog is back at the low
// watermark. Shed requests fail with *ShedError; requests already
// dispatched are never shed. Caller holds s.mu.
func (s *Server) shedLowest(nowNs int64) {
	sc := s.shedScratch[:0]
	for _, t := range s.order {
		for i := 0; i < t.q.n; i++ {
			sc = append(sc, t.q.buf[(t.q.head+i)%len(t.q.buf)])
		}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].Priority != sc[j].Priority {
			return sc[i].Priority < sc[j].Priority
		}
		return sc[i].queuedNs > sc[j].queuedNs
	})
	for _, r := range sc {
		if s.queuedTotal <= s.cfg.BrownoutLow {
			break
		}
		r.err = &ShedError{Tenant: r.Tenant, Priority: r.Priority}
		r.startedNs = nowNs
		r.finishedNs = nowNs
		r.finished = true
		r.tn.shed++
		s.shed++
		s.queuedTotal--
	}
	// Compact every ring around the shed requests and release their
	// callers. FIFO order of the survivors is preserved.
	for _, t := range s.order {
		for i, n := 0, t.q.n; i < n; i++ {
			r := t.q.pop()
			if r.finished {
				close(r.done)
				continue
			}
			t.q.push(r)
		}
	}
	s.shedScratch = sc[:0]
	if s.queuedTotal < s.cfg.BrownoutHigh {
		s.overloadSinceNs = 0
	}
}

// dispatchLoop is the single dispatcher goroutine: it sleeps until
// admission or batch completion marks work available, then drains tenant
// queues into batches and flushes them onto warm sessions.
func (s *Server) dispatchLoop() {
	defer close(s.dispatchDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for (!s.dirty || s.paused) && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		s.dirty = false
		s.checkBrownout(time.Now().UnixNano())
		s.drain()
		s.flushOpen()
	}
}

// drain is the dispatcher's steady-state request loop: round-robin over
// the tenants (the starting tenant rotates per round, so no tenant owns
// the head of the line), popping at most one request per tenant per round
// into its matrix's open batch, until no tenant can make progress —
// queue empty, in-flight cap reached, or the matrix's batches all full.
// Every structure it touches is preallocated (rings, batch freelists), so
// a steady-state dispatch allocates nothing. Caller holds s.mu.
//
//repro:noalloc
func (s *Server) drain() {
	n := len(s.order)
	if n == 0 {
		return
	}
	for {
		progress := false
		for k := 0; k < n; k++ {
			t := s.order[(s.rr+k)%n]
			if t.q.n == 0 || t.inflight >= s.cfg.InflightCap {
				continue
			}
			r := t.q.peek()
			if !r.ent.pool.offer(r) {
				continue
			}
			t.q.pop()
			s.queuedTotal--
			t.inflight++
			progress = true
		}
		s.rr++
		if !progress {
			return
		}
	}
}

// flushOpen hands every non-empty open batch to a warm session (spinning
// one up lazily below the pool's cap). A batch no session can take stays
// open and is retried when a session completes. Caller holds s.mu.
//
//repro:noalloc
func (s *Server) flushOpen() {
	for _, p := range s.pools {
		b := p.open
		if b == nil || b.n == 0 {
			continue
		}
		if p.trySend(b) {
			p.open = nil
		}
	}
}

// noteRestart counts a session supervisor's recovery decision.
func (s *Server) noteRestart() {
	s.mu.Lock()
	s.restarts++
	s.mu.Unlock()
}

// noteDeadline counts a request failed by its deadline.
func (s *Server) noteDeadline() {
	s.mu.Lock()
	s.deadlined++
	s.mu.Unlock()
}

// takeRetryToken consumes one of the tenant's transparent-retry tokens,
// reporting false when the bucket is empty (the request must fail rather
// than burn another epoch).
func (s *Server) takeRetryToken(t *tenant) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.retryTokens <= 0 {
		return false
	}
	t.retryTokens--
	return true
}

// Drain puts the server into graceful-drain mode: every subsequent
// admission fails fast with ErrDraining while queued and in-flight work
// runs to completion. It blocks until the server is quiet or ctx
// expires, returning ctx's error in the latter case; either way the
// server stays in drain mode until Close.
func (s *Server) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	for ctx.Err() == nil && !s.closed && !s.quietLocked() {
		s.cond.Wait()
	}
	return ctx.Err()
}

// quietLocked reports whether no request is queued or in flight.
func (s *Server) quietLocked() bool {
	if s.queuedTotal > 0 {
		return false
	}
	for _, t := range s.order {
		if t.inflight > 0 {
			return false
		}
	}
	for _, p := range s.pools {
		if b := p.open; b != nil && b.n > 0 {
			return false
		}
	}
	return true
}

// addPool publishes a new matrix's pool to the dispatcher.
func (s *Server) addPool(p *pool) {
	s.mu.Lock()
	s.pools = append(s.pools, p)
	s.mu.Unlock()
}

// removePool retracts an evicted matrix's pool.
func (s *Server) removePool(p *pool) {
	s.mu.Lock()
	for i, q := range s.pools {
		if q == p {
			s.pools = append(s.pools[:i], s.pools[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// pauseDispatch freezes the dispatcher (test hook for admission and
// batching edges); resumeDispatch unfreezes it.
func (s *Server) pauseDispatch() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

func (s *Server) resumeDispatch() {
	s.mu.Lock()
	s.paused = false
	s.dirty = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close shuts the service down: the dispatcher exits, in-flight epochs
// are interrupted (the supervisor's graceful-departure path), sessions
// drain, and every request still queued or batched fails with ErrClosed.
// Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	pools := append([]*pool(nil), s.pools...)
	s.mu.Unlock()

	<-s.dispatchDone
	s.cancel()
	for _, p := range pools {
		p.shutdown()
	}

	// Final sweep: nothing is running anymore, so whatever is still
	// queued in tenant rings or parked in open batches fails here.
	s.mu.Lock()
	for _, t := range s.order {
		for t.q.n > 0 {
			r := t.q.pop()
			s.queuedTotal--
			r.err = ErrClosed
			r.finished = true
			s.failed++
			t.failed++
			close(r.done)
		}
	}
	for _, p := range s.pools {
		if b := p.open; b != nil {
			for i := 0; i < b.n; i++ {
				r := b.reqs[i]
				r.err = ErrClosed
				r.finished = true
				r.tn.inflight--
				r.tn.failed++
				s.failed++
				close(r.done)
			}
			b.n = 0
			p.open = nil
		}
	}
	s.mu.Unlock()
	return nil
}
