package serve

// Gray-failure behavior of the serving layer: end-to-end deadlines
// (queue expiry and mid-job interrupt), bounded transparent retries,
// the per-pool circuit breaker, brown-out shedding under sustained
// overload, and graceful drain.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
)

// A request whose deadline passes while it waits in the tenant queue
// must fail with a typed *core.DeadlineError without ever touching a
// cluster — and the server must keep serving afterwards.
func TestDeadlineExpiredInQueue(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()
	r := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 1, DeadlineMs: 1}
	if err := s.prepare(r); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := s.admit(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let the deadline pass in-queue
	s.resumeDispatch()
	<-r.done
	s.reg.unpin(r.ent)

	var de *core.DeadlineError
	if !errors.As(r.err, &de) {
		t.Fatalf("queue-expired request failed with %v, want *core.DeadlineError", r.err)
	}
	if de.Op != "queue" {
		t.Errorf("DeadlineError.Op = %q, want %q (the request must die in the queue, not on a cluster)", de.Op, "queue")
	}
	if !errors.Is(r.err, context.DeadlineExceeded) {
		t.Errorf("DeadlineError does not unwrap to context.DeadlineExceeded: %v", r.err)
	}
	if r.attempts != 0 {
		t.Errorf("queue-expired request ran %d attempts on a cluster, want 0", r.attempts)
	}
	// Non-poisoning: the pool serves the very next request.
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 2}); err != nil {
		t.Fatalf("request after a queue expiry: %v", err)
	}
	if st := s.Stats(); st.Deadlined != 1 {
		t.Errorf("stats deadlined = %d, want 1", st.Deadlined)
	}
}

// The deterministic gray-failure drill of the serving layer: one slow
// link makes exactly the request that carries a deadline miss it (typed
// *core.DeadlineError), its batch-mate is retried transparently on a
// fresh world, and all later traffic is bit-identical to the reference
// — a slow rank degrades one request, not the service.
func TestMidJobDeadlineOnlyAffectsItsRequest(t *testing.T) {
	// The first frame rank 1 sends to rank 0 is delivered 500ms late —
	// far past the 100ms deadline of the request that triggers it. The
	// slowdown is one-shot (Count: 1), so the post-interrupt epoch and
	// all later traffic run clean.
	faulty := &faultmpi.Transport{Sched: faultmpi.Schedule{
		Slowdowns: []faultmpi.Slowdown{{
			Src: 1, Dst: 0, Tag: faultmpi.Any,
			Count: 1, Delay: 500 * time.Millisecond,
		}},
	}}
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1,
		Transport: func(string) func(int) core.Transport {
			return func(int) core.Transport { return faulty }
		},
	})
	info, err := s.Register("m", testSpec)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	ver, err := NewVerifier(testSpec, info)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ver.Close()

	// Queue the deadline-carrying victim and an innocent batch-mate
	// before releasing the dispatcher, so they ride one batch.
	s.pauseDispatch()
	victim := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 3, DeadlineMs: 100}
	mate := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 4}
	for _, r := range []*Request{victim, mate} {
		if err := s.prepare(r); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if err := s.admit(r); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	s.resumeDispatch()
	<-victim.done
	<-mate.done
	s.reg.unpin(victim.ent)
	s.reg.unpin(mate.ent)

	var de *core.DeadlineError
	if !errors.As(victim.err, &de) {
		t.Fatalf("victim failed with %v, want *core.DeadlineError", victim.err)
	}
	if !errors.Is(victim.err, context.DeadlineExceeded) {
		t.Errorf("victim's error does not unwrap to context.DeadlineExceeded: %v", victim.err)
	}
	if mate.err != nil {
		t.Fatalf("batch-mate failed: %v (a deadline is final for ITS request only)", mate.err)
	}
	if err := ver.Check(OpMul, 4, 1, 0, 0, mate.y); err != nil {
		t.Errorf("batch-mate after the interrupted epoch: %v", err)
	}
	// The cluster stays usable and later traffic is bit-identical.
	for seed := int64(5); seed < 8; seed++ {
		resp, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: seed})
		if err != nil {
			t.Fatalf("mul seed %d after the gray failure: %v", seed, err)
		}
		if err := ver.Check(OpMul, seed, 1, 0, 0, resp.Y); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
	st := s.Stats()
	if st.Deadlined != 1 {
		t.Errorf("stats deadlined = %d, want 1", st.Deadlined)
	}
	if st.Restarts == 0 {
		t.Error("mid-job interrupt recorded no supervisor restart (the world must be rebuilt for batch-mates)")
	}
}

// An exhausted retry budget fails the request to its caller instead of
// burning more epochs; a later success replenishes the bucket.
func TestRetryBudgetExhaustion(t *testing.T) {
	kills := make([]faultmpi.Kill, 4)
	for i := range kills {
		kills[i] = faultmpi.Kill{Rank: 1, AtOp: 1}
	}
	faulty := &faultmpi.Transport{Sched: faultmpi.Schedule{Kills: kills}}
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1, MaxAttempts: 5, RetryBudget: 1,
		Transport: func(string) func(int) core.Transport {
			return func(int) core.Transport { return faulty }
		},
	})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	r := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 1}
	if err := s.prepare(r); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := s.admit(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	<-r.done
	s.reg.unpin(r.ent)
	if r.err == nil {
		t.Fatal("request on an always-dying world succeeded")
	}
	// MaxAttempts alone would allow 5 tries; the budget of 1 caps the
	// request at the original attempt plus one transparent retry.
	if r.attempts != 2 {
		t.Errorf("request ran %d attempts with a retry budget of 1, want 2", r.attempts)
	}
	// The remaining schedule drains, then a success restores the token.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 2}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after the fault schedule drained")
		}
	}
	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].RetryTokens != 1 {
		t.Errorf("tenant retry tokens = %+v, want 1 restored by the completed request", st.Tenants)
	}
}

// flakyTransport fails every Dial while broken, delegating to the
// in-process chan transport once healed — a pool whose worlds cannot
// come up at all, then recover.
type flakyTransport struct {
	broken atomic.Bool
	inner  core.ChanTransport
}

func (t *flakyTransport) Dial(ctx context.Context, size int) (core.World, error) {
	if t.broken.Load() {
		return nil, &core.PeerError{Phase: core.PhaseHandshake, Err: errors.New("flaky: transport down")}
	}
	return t.inner.Dial(ctx, size)
}

// Repeated supervisor give-ups must open the pool's circuit breaker so
// admissions fail fast with a *BreakerError instead of queueing onto a
// pool that cannot hold a world up — and a served batch after healing
// must close it again.
func TestBreakerFailFastAndRecovery(t *testing.T) {
	tr := &flakyTransport{}
	tr.broken.Store(true)
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1, MaxRestarts: 1,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		Transport: func(string) func(int) core.Transport {
			return func(int) core.Transport { return tr }
		},
	})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	// The canary is admitted while the pool is broken; it sits on the
	// session's work channel through the give-ups and completes after
	// healing.
	canary := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 1}
	if err := s.prepare(canary); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := s.admit(canary); err != nil {
		t.Fatalf("admit: %v", err)
	}
	waitBreaker := func(want string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st := s.Stats()
			if len(st.Matrices) == 1 && st.Matrices[0].Breaker == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("breaker never reached %q: %+v", want, st.Matrices)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitBreaker("open")

	// Fail-fast: an admission against the open breaker is rejected
	// without queueing (and without waiting out any world timeout).
	start := time.Now()
	_, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 2})
	var be *BreakerError
	if !errors.As(err, &be) {
		t.Fatalf("admission against an open breaker: %v, want *BreakerError", err)
	}
	if be.State != "open" || be.Matrix != "m" {
		t.Errorf("breaker error %+v, want matrix m state open", be)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("fail-fast rejection took %v", d)
	}

	// Heal: the canary's batch serves on the next supervised epoch,
	// which closes the breaker; traffic flows again.
	tr.broken.Store(false)
	<-canary.done
	s.reg.unpin(canary.ent)
	if canary.err != nil {
		t.Fatalf("canary failed after healing: %v", canary.err)
	}
	waitBreaker("closed")
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 3}); err != nil {
		t.Fatalf("request after breaker recovery: %v", err)
	}
}

// White-box half-open mechanics: cooldown admits exactly one probe per
// window, a probe give-up reopens, a served batch closes.
func TestBreakerHalfOpenProbe(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.mu.Lock()
	p := s.pools[0]
	s.mu.Unlock()

	p.noteGiveUp()
	p.noteGiveUp()
	now := time.Now().UnixNano()
	cool := int64(s.cfg.BreakerCooldown)

	s.mu.Lock()
	defer s.mu.Unlock()
	var be *BreakerError
	if err := p.breakerAdmit(now); !errors.As(err, &be) || be.State != "open" {
		t.Fatalf("admit while open = %v, want open BreakerError", err)
	}
	if err := p.breakerAdmit(now + cool); err != nil {
		t.Fatalf("first probe after cooldown rejected: %v", err)
	}
	if err := p.breakerAdmit(now + cool); !errors.As(err, &be) || be.State != "half-open" {
		t.Fatalf("second admit in the probe window = %v, want half-open BreakerError", err)
	}
	// A probe that vanished (shed, timed out) must not wedge the pool:
	// the next window admits a fresh probe.
	if err := p.breakerAdmit(now + 2*cool + 1); err != nil {
		t.Fatalf("probe in the next window rejected: %v", err)
	}
	// A give-up during half-open reopens immediately. (noteGiveUp stamps
	// the real clock, so probe the state at the real clock too.)
	s.mu.Unlock()
	p.noteGiveUp()
	s.mu.Lock()
	if err := p.breakerAdmit(time.Now().UnixNano()); !errors.As(err, &be) || be.State != "open" {
		t.Fatalf("admit after a half-open give-up = %v, want open BreakerError", err)
	}
	// A served batch closes the breaker outright.
	p.noteServedLocked()
	if err := p.breakerAdmit(time.Now().UnixNano()); err != nil {
		t.Fatalf("admit after close: %v", err)
	}
}

// Sustained overload must shed exactly the lowest-priority queued work
// (newest first) with *ShedError, while the surviving requests complete
// with per-request execution time comparable to an unloaded server —
// the brown-out keeps the service degraded, not dead.
func TestBrownoutShedsLowestPriority(t *testing.T) {
	s := newTestServer(t, Config{
		Ranks: 2, Sessions: 1, QueueDepth: 64, InflightCap: 16,
		BrownoutHigh: 12, BrownoutLow: 4, BrownoutAfter: time.Millisecond,
	})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Unloaded baseline: per-request execution time on a warm cluster.
	var baseline int64
	for seed := int64(0); seed < 5; seed++ {
		resp, err := s.Do(&Request{Tenant: "hi", Matrix: "m", Op: OpMul, Seed: seed})
		if err != nil {
			t.Fatalf("baseline mul: %v", err)
		}
		if seed > 0 && resp.ExecNs > baseline { // skip the cold-start sample
			baseline = resp.ExecNs
		}
	}

	s.pauseDispatch()
	admit := func(tenant string, prio int, seed int64) *Request {
		t.Helper()
		r := &Request{Tenant: tenant, Matrix: "m", Op: OpMul, Seed: seed, Priority: prio}
		if err := s.prepare(r); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if err := s.admit(r); err != nil {
			t.Fatalf("admit: %v", err)
		}
		return r
	}
	var high, low []*Request
	for i := 0; i < 4; i++ {
		high = append(high, admit("hi", 1, int64(i)))
	}
	for i := 0; i < 8; i++ {
		low = append(low, admit("lo", 0, int64(i)))
	}
	// 12 queued = the high watermark; hold past BrownoutAfter, then one
	// more admission crosses into shedding.
	time.Sleep(10 * time.Millisecond)
	low = append(low, admit("lo", 0, 99))

	// The shed pass runs inside that 13th admit: down to the low
	// watermark (4), lowest priority first — exactly the 9 low-priority
	// requests, every high-priority one untouched.
	var wg sync.WaitGroup
	for _, r := range append(append([]*Request{}, high...), low...) {
		wg.Add(1)
		go func(r *Request) {
			defer wg.Done()
			<-r.done
			s.reg.unpin(r.ent)
		}(r)
	}
	s.resumeDispatch()
	wg.Wait()

	for i, r := range low {
		var se *ShedError
		if !errors.As(r.err, &se) {
			t.Errorf("low-priority request %d: err = %v, want *ShedError", i, r.err)
			continue
		}
		if se.Tenant != "lo" || se.Priority != 0 {
			t.Errorf("shed error %+v, want tenant lo priority 0", se)
		}
	}
	var worst int64
	for i, r := range high {
		if r.err != nil {
			t.Errorf("high-priority request %d shed or failed: %v", i, r.err)
			continue
		}
		if d := r.finishedNs - r.startedNs; d > worst {
			worst = d
		}
	}
	// The survivors' execution time must stay within 2× the unloaded
	// baseline (the queue wait is bounded structurally by the low
	// watermark). The absolute numbers are tens of microseconds, so a
	// small additive slack absorbs scheduler noise without weakening
	// the 2× claim at any realistic scale.
	slack := int64(20 * time.Millisecond)
	if worst > 2*baseline+slack {
		t.Errorf("worst surviving ExecNs = %dns, want ≤ 2×%dns (+%dns slack): brown-out failed to protect admitted work", worst, baseline, slack)
	}
	st := s.Stats()
	if st.Shed != 9 {
		t.Errorf("stats shed = %d, want 9", st.Shed)
	}
	for _, ts := range st.Tenants {
		switch ts.Name {
		case "lo":
			if ts.Shed != 9 {
				t.Errorf("tenant lo shed = %d, want 9", ts.Shed)
			}
		case "hi":
			// +5 for the unloaded-baseline requests, which ran as "hi".
			if ts.Shed != 0 || ts.Completed != uint64(len(high))+5 {
				t.Errorf("tenant hi shed = %d completed = %d, want 0 and %d", ts.Shed, ts.Completed, len(high)+5)
			}
		}
	}
}

// Drain finishes queued work, rejects new admissions with ErrDraining,
// and returns once the server is quiet.
func TestDrainGraceful(t *testing.T) {
	s := newTestServer(t, Config{Ranks: 2, Sessions: 1})
	if _, err := s.Register("m", testSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.pauseDispatch()
	r := &Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 1}
	if err := s.prepare(r); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := s.admit(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Wait for drain mode to engage, then probe the admission edge.
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Do(&Request{Tenant: "a", Matrix: "m", Op: OpMul, Seed: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission during drain: %v, want ErrDraining", err)
	}
	s.resumeDispatch()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	<-r.done
	s.reg.unpin(r.ent)
	if r.err != nil {
		t.Fatalf("queued request failed across drain: %v (drain must finish queued work)", r.err)
	}
	// A context that expires before quiet surfaces its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Drain with a dead context: %v, want context.Canceled", err)
	}
}
