package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/solver"
)

// Client is a thin JSON client for the serving API, shared by the load
// generator (RunLoad), cmd/spmv-load and the benchmark harness.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8311"
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		var eb errorBody
		data, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &StatusError{Code: hr.StatusCode, Msg: eb.Error}
		}
		return &StatusError{Code: hr.StatusCode, Msg: string(data)}
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

// StatusError is a non-200 API response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg) }

// Rejected reports whether the error is an admission rejection (HTTP 429).
func (e *StatusError) Rejected() bool { return e.Code == http.StatusTooManyRequests }

// DeadlineExceeded reports whether the request missed its end-to-end
// deadline (HTTP 504, a *core.DeadlineError server-side).
func (e *StatusError) DeadlineExceeded() bool { return e.Code == http.StatusGatewayTimeout }

// Shed reports whether the server refused the request to protect itself
// (HTTP 503): brown-out shedding, an open circuit breaker, or a
// draining/closed server.
func (e *StatusError) Shed() bool { return e.Code == http.StatusServiceUnavailable }

// Register registers a matrix and returns its geometry.
func (c *Client) Register(req RegisterRequest) (MatrixInfo, error) {
	var info MatrixInfo
	err := c.post("/v1/register", req, &info)
	return info, err
}

// Mul requests y = A^iters·x.
func (c *Client) Mul(req OpRequest) (*Response, error) {
	var resp Response
	if err := c.post("/v1/mul", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Solve requests a CG solve.
func (c *Client) Solve(req OpRequest) (*Response, error) {
	var resp Response
	if err := c.post("/v1/solve", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	body, err := c.httpClient().Get(c.Base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer body.Body.Close()
	return st, json.NewDecoder(body.Body).Decode(&st)
}

// Verifier checks served responses bit for bit against an independently
// built reference cluster with the server's exact geometry (same spec,
// partition, mode and storage format — threads don't affect bits, so the
// reference runs single-threaded). Results are memoized per (op, seed,
// parameters), so sweeping a bounded seed set pays each reference
// computation once. Safe for concurrent use; Close releases the cluster.
type Verifier struct {
	mu   sync.Mutex
	cl   *core.Cluster
	rows int
	memo map[verifyKey][]float64
	x, b []float64
}

type verifyKey struct {
	op      Op
	seed    int64
	iters   int
	tol     float64
	maxIter int
}

// NewVerifier builds the reference cluster from the registered matrix's
// spec and reported geometry.
func NewVerifier(spec Spec, info MatrixInfo) (*Verifier, error) {
	src, err := spec.normalize().build()
	if err != nil {
		return nil, err
	}
	mode, err := core.ParseMode(info.Mode)
	if err != nil {
		return nil, err
	}
	var format matrix.FormatBuilder
	if info.Format != "" {
		format, err = core.ParseFormat(info.Format)
		if err != nil {
			return nil, err
		}
	}
	part := core.PartitionByNnz(src, info.Ranks)
	plan, err := core.BuildPlan(src, part, true)
	if err != nil {
		return nil, err
	}
	if format != nil {
		if err := plan.ConvertFormat(format); err != nil {
			return nil, err
		}
	}
	cl, err := core.NewCluster(plan, core.WithMode(mode), core.WithThreads(1))
	if err != nil {
		return nil, err
	}
	return &Verifier{
		cl: cl, rows: info.Rows,
		memo: make(map[verifyKey][]float64),
		x:    make([]float64, info.Rows),
		b:    make([]float64, info.Rows),
	}, nil
}

// Close releases the reference cluster.
func (v *Verifier) Close() error { return v.cl.Close() }

// Expected returns the reference result for a seeded request.
func (v *Verifier) Expected(op Op, seed int64, iters int, tol float64, maxIter int) ([]float64, error) {
	key := verifyKey{op: op, seed: seed, iters: iters, tol: tol, maxIter: maxIter}
	v.mu.Lock()
	defer v.mu.Unlock()
	if y, ok := v.memo[key]; ok {
		return y, nil
	}
	FillVector(v.b, seed)
	y := make([]float64, v.rows)
	switch op {
	case OpMul:
		if err := v.cl.Mul(y, v.b, iters); err != nil {
			return nil, err
		}
	case OpSolve:
		if _, err := solver.DistCG(v.cl, v.b, y, tol, maxIter); err != nil {
			return nil, err
		}
	}
	v.memo[key] = y
	return y, nil
}

// Check compares a served result bit for bit against the reference.
func (v *Verifier) Check(op Op, seed int64, iters int, tol float64, maxIter int, got []float64) error {
	want, err := v.Expected(op, seed, iters, tol, maxIter)
	if err != nil {
		return fmt.Errorf("serve: reference computation: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("serve: result length %d, reference %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("serve: result differs from reference at row %d: got %x want %x",
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
	return nil
}

// LoadConfig drives RunLoad: a fixed-duration sweep of concurrent tenants
// against one registered matrix.
type LoadConfig struct {
	Client *Client
	// Matrix and Spec identify (and if needed register) the target.
	Matrix string
	Spec   Spec
	Mode   string // optional registration overrides
	Format string
	// Tenants is the number of distinct tenant identities; Concurrency
	// the number of closed-loop workers (worker i acts as tenant
	// i%Tenants). Defaults 1 and 1.
	Tenants     int
	Concurrency int
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// MulFraction is the share of requests that are multiplications, the
	// rest CG solves (default 1.0 — all mul).
	MulFraction float64
	Iters       int
	Tol         float64
	MaxIter     int
	// Seeds is the cardinality of the request-seed set (default 32):
	// request k uses seed k%Seeds, so verification memoizes at most Seeds
	// reference results per op.
	Seeds int
	// OpenRateHz, when positive, switches to open-loop arrivals at the
	// given rate: requests fire on a fixed clock regardless of
	// completions, up to Concurrency outstanding; arrivals beyond that
	// are counted as Dropped (the offered load exceeded capacity).
	OpenRateHz float64
	// Verify checks every successful response bit for bit against a
	// reference cluster built from Spec.
	Verify bool
	// DeadlineMs, when positive, attaches an end-to-end deadline to every
	// request; misses come back as HTTP 504 and are counted in
	// LoadResult.Deadlined instead of Errors.
	DeadlineMs int64
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	// Deadlined counts HTTP 504 responses (missed end-to-end deadlines);
	// Shed counts HTTP 503 fail-fast refusals (brown-out shedding, open
	// circuit breaker, draining server). Both are the server degrading
	// gracefully, kept apart from hard Errors.
	Deadlined      int     `json:"deadlined,omitempty"`
	Shed           int     `json:"shed,omitempty"`
	Errors         int     `json:"errors"`
	Dropped        int     `json:"dropped,omitempty"`
	Verified       int     `json:"verified"`
	VerifyFailures int     `json:"verify_failures"`
	Retried        int     `json:"retried"`
	DurationSec    float64 `json:"duration_sec"`
	ReqPerSec      float64 `json:"req_per_sec"`
	MeanMs         float64 `json:"mean_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
}

// RunLoad registers the matrix (idempotent) and drives it for the
// configured duration, measuring throughput, latency percentiles,
// rejections — and, with Verify, checking every response bit for bit.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Client == nil {
		return LoadResult{}, fmt.Errorf("serve: RunLoad needs a Client")
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.MulFraction == 0 {
		cfg.MulFraction = 1.0
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-8
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 500
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 32
	}

	info, err := cfg.Client.Register(RegisterRequest{
		Name: cfg.Matrix, Spec: cfg.Spec, Mode: cfg.Mode, Format: cfg.Format,
	})
	if err != nil {
		return LoadResult{}, fmt.Errorf("serve: load register: %w", err)
	}

	var ver *Verifier
	if cfg.Verify {
		ver, err = NewVerifier(cfg.Spec, info)
		if err != nil {
			return LoadResult{}, fmt.Errorf("serve: load verifier: %w", err)
		}
		defer ver.Close()
	}

	var (
		mu        sync.Mutex
		res       LoadResult
		latencies []float64
		seq       atomic.Int64
	)
	deadline := time.Now().Add(cfg.Duration)

	oneRequest := func(worker int) {
		k := seq.Add(1) - 1
		seed := k % int64(cfg.Seeds)
		// Deterministic op mix: hash the request index against the
		// configured fraction.
		h := uint64(k)*0x9e3779b97f4a7c15 + 0x1d8e4e27c47d124f
		h ^= h >> 33
		isMul := float64(h%1000)/1000.0 < cfg.MulFraction
		req := OpRequest{
			Tenant:     fmt.Sprintf("tenant-%d", worker%cfg.Tenants),
			Matrix:     cfg.Matrix,
			Seed:       seed,
			DeadlineMs: cfg.DeadlineMs,
		}
		start := time.Now()
		var resp *Response
		var err error
		op := OpMul
		if isMul {
			req.Iters = cfg.Iters
			resp, err = cfg.Client.Mul(req)
		} else {
			op = OpSolve
			req.Tol = cfg.Tol
			req.MaxIter = cfg.MaxIter
			resp, err = cfg.Client.Solve(req)
		}
		elapsed := time.Since(start).Seconds() * 1000

		var verifyErr error
		if err == nil && ver != nil {
			verifyErr = ver.Check(op, seed, cfg.Iters, cfg.Tol, cfg.MaxIter, resp.Y)
		}

		mu.Lock()
		defer mu.Unlock()
		res.Requests++
		var se *StatusError
		switch {
		case err == nil:
			res.Completed++
			latencies = append(latencies, elapsed)
			if resp.Attempts > 1 {
				res.Retried++
			}
			if ver != nil {
				res.Verified++
				if verifyErr != nil {
					res.VerifyFailures++
				}
			}
		case errors.As(err, &se) && se.Rejected():
			res.Rejected++
		case errors.As(err, &se) && se.DeadlineExceeded():
			res.Deadlined++
		case errors.As(err, &se) && se.Shed():
			res.Shed++
		default:
			res.Errors++
		}
	}

	start := time.Now()
	if cfg.OpenRateHz > 0 {
		runOpenLoop(cfg, deadline, oneRequest, &mu, &res)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					oneRequest(worker)
				}
			}(w)
		}
		wg.Wait()
	}
	res.DurationSec = time.Since(start).Seconds()

	if res.DurationSec > 0 {
		res.ReqPerSec = float64(res.Completed) / res.DurationSec
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanMs = sum / float64(n)
		res.P50Ms = percentile(latencies, 0.50)
		res.P95Ms = percentile(latencies, 0.95)
		res.P99Ms = percentile(latencies, 0.99)
		res.MaxMs = latencies[n-1]
	}
	return res, nil
}

// runOpenLoop fires requests on a fixed clock regardless of completions —
// the offered-load mode: a tick finding Concurrency requests already
// outstanding drops the arrival instead of queueing it client-side, so the
// measured rejection and latency profile reflects the server's admission
// control, not the generator's backlog.
func runOpenLoop(cfg LoadConfig, deadline time.Time, oneRequest func(int), mu *sync.Mutex, res *LoadResult) {
	interval := time.Duration(float64(time.Second) / cfg.OpenRateHz)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	var outstanding atomic.Int64
	worker := 0
	for now := range ticker.C {
		if !now.Before(deadline) {
			break
		}
		if outstanding.Load() >= int64(cfg.Concurrency) {
			mu.Lock()
			res.Dropped++
			mu.Unlock()
			continue
		}
		outstanding.Add(1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer outstanding.Add(-1)
			oneRequest(w)
		}(worker)
		worker++
	}
	wg.Wait()
}

// percentile reads the p-quantile from an ascending sample by
// nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
