package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RankOrderAnalyzer enforces the bit-determinism rule of PR 4: reduction
// combine loops iterate ranks in canonical ascending order 0 ⊕ 1 ⊕ … ⊕
// size-1. Floating-point reduction is not associative, so the chanmpi and
// tcpmpi reducers only produce bit-identical results — across runs AND
// across transports — because both walk their per-rank contributions in
// the same order. A descending, strided, or map-ordered loop around
// ReduceOp.Combine silently breaks every bit-identity test downstream.
//
// Any loop enclosing a ReduceOp.Combine call must therefore be provably
// ascending with unit stride: a classic for loop with `<`/`<=` condition
// and `++` post, or a range over a slice, array or integer. Descending
// (`--`), compound-assignment strides, and range-over-map loops are
// flagged. Loops with no post statement (condition-only service loops)
// are not iteration orders and pass.
var RankOrderAnalyzer = &Analyzer{
	Name: "rankorder",
	Doc:  "flags reduction combine loops that do not iterate ranks in canonical ascending order",
	Run:  runRankOrder,
}

func runRankOrder(pass *Pass) error {
	info := pass.TypesInfo
	reported := make(map[token.Pos]bool) // one report per offending loop
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, isMethod := methodCall(info, call)
			if !isMethod || name != "Combine" || !namedType(recv, chanmpiPath, "ReduceOp") {
				return true
			}
			for _, anc := range stack {
				switch loop := anc.(type) {
				case *ast.ForStmt:
					if bad, why := badForDirection(loop); bad && !reported[loop.For] {
						reported[loop.For] = true
						pass.Reportf(loop.For, "combine loop %s: reductions must iterate ranks in canonical ascending order", why)
					}
				case *ast.RangeStmt:
					if tv, ok := info.Types[loop.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !reported[loop.For] {
							reported[loop.For] = true
							pass.Reportf(loop.For, "combine loop ranges over a map: iteration order is non-deterministic, reductions must combine in canonical rank order")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// badForDirection reports whether a classic for loop provably iterates in
// a non-canonical order: a decrementing post statement, or a compound
// stride other than += 1.
func badForDirection(loop *ast.ForStmt) (bool, string) {
	switch post := loop.Post.(type) {
	case nil:
		return false, "" // condition-only loop, not a rank iteration
	case *ast.IncDecStmt:
		if post.Tok == token.DEC {
			return true, "iterates downward (-- post statement)"
		}
		return false, ""
	case *ast.AssignStmt:
		switch post.Tok {
		case token.SUB_ASSIGN:
			return true, "iterates downward (-= post statement)"
		case token.ADD_ASSIGN:
			if len(post.Rhs) == 1 {
				if lit, ok := post.Rhs[0].(*ast.BasicLit); ok && lit.Value == "1" {
					return false, ""
				}
			}
			return true, "strides by more than one rank (+= post statement)"
		case token.MUL_ASSIGN, token.QUO_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			return true, "strides non-linearly"
		}
	}
	return false, ""
}
