package analysis

import (
	"go/ast"
	"go/token"
)

// PersistWaitAnalyzer enforces the one-Wait-per-Start persistent-channel
// contract hardened in PR 5: every PersistentRequest.Start must be matched
// by a Wait before the same channel is started again (and, for sends,
// before the bound buffer is refilled — the waitHalo discipline). A
// double Start corrupts the channel's single completion token; on the
// in-process runtime it surfaces as a runtime error, on a genuinely
// asynchronous transport it silently reuses a buffer still in flight.
//
// The check is function-local and syntactic on the receiver expression:
//
//   - Two Starts of the same receiver in one statement block with no
//     intervening Wait of that receiver are flagged at the second Start.
//   - A Start inside a loop whose receiver does not depend on the loop
//     variables needs a Wait of the same receiver inside that loop body;
//     otherwise the next iteration is a double Start.
//
// Receivers that do depend on the loop variables (reqs[i].Start() in a
// range loop — the postRecvs/gatherAndSend shape) start a different
// channel each iteration and are exempt. Start and Wait split across
// helper functions (postRecvs starts, waitHalo waits) is an explicit
// non-goal: cross-function pairing is the callers' contract, covered by
// the runtime tests.
var PersistWaitAnalyzer = &Analyzer{
	Name: "persistwait",
	Doc:  "flags PersistentRequest.Start calls not matched by a Wait (one-Wait-per-Start)",
	Run:  runPersistWait,
}

// persistEvent is one Start or Wait call on a persistent request.
type persistEvent struct {
	key   string // printed receiver expression
	start bool   // Start (true) or Wait (false)
	pos   token.Pos
	node  *ast.CallExpr
}

func runPersistWait(pass *Pass) error {
	funcBodies(pass.Files, func(_ string, _ *ast.CommentGroup, body *ast.BlockStmt) {
		checkPersistBody(pass, body)
	})
	return nil
}

// persistCall classifies a call as Start/Wait on a PersistentRequest and
// returns its receiver key.
func persistCall(pass *Pass, call *ast.CallExpr) (ev persistEvent, ok bool) {
	recv, name, isMethod := methodCall(pass.TypesInfo, call)
	if !isMethod || (name != "Start" && name != "Wait") {
		return ev, false
	}
	if !namedType(recv, chanmpiPath, "PersistentRequest") {
		return ev, false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	return persistEvent{
		key:   exprString(pass.Fset, sel.X),
		start: name == "Start",
		pos:   call.Pos(),
		node:  call,
	}, true
}

func checkPersistBody(pass *Pass, body *ast.BlockStmt) {
	// Rule A — double Start in one statement block: for every block in
	// this function body (not descending into nested function literals),
	// scan its events in source order per receiver.
	walkWithStack(body, func(n ast.Node, _ []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false // delivered separately by funcBodies
		}
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		lastStart := make(map[string]*persistEvent)
		for _, stmt := range block.List {
			for _, ev := range stmtEvents(pass, stmt) {
				e := ev
				if !e.start {
					delete(lastStart, e.key)
					continue
				}
				if prev, open := lastStart[e.key]; open {
					pass.Reportf(e.pos, "%s.Start follows Start at line %d with no intervening Wait (one-Wait-per-Start)",
						e.key, pass.Fset.Position(prev.pos).Line)
				}
				lastStart[e.key] = &e
			}
		}
		return true
	})

	// Rule B — Start inside a loop with no Wait in the same loop body.
	walkWithStack(body, func(n ast.Node, _ []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		loopBody, loopVars := loopParts(n)
		if loopBody == nil {
			return true
		}
		events := collectEvents(pass, loopBody)
		waited := make(map[string]bool)
		for _, ev := range events {
			if !ev.start {
				waited[ev.key] = true
			}
		}
		reported := make(map[string]bool)
		for _, ev := range events {
			if !ev.start || waited[ev.key] || reported[ev.key] {
				continue
			}
			if exprUsesVars(ev.node.Fun.(*ast.SelectorExpr).X, loopVars) {
				continue // a different channel each iteration
			}
			reported[ev.key] = true
			pass.Reportf(ev.pos, "%s.Start in a loop with no Wait in the loop body restarts an in-flight channel", ev.key)
		}
		return true
	})
}

// stmtEvents collects the persistent-channel events syntactically inside
// one statement, without descending into nested blocks (those are scanned
// as their own blocks by rule A) or function literals.
func stmtEvents(pass *Pass, stmt ast.Stmt) []persistEvent {
	var evs []persistEvent
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ev, ok := persistCall(pass, call); ok {
				evs = append(evs, ev)
			}
		}
		return true
	})
	return evs
}

// collectEvents collects every event under root, at any block depth,
// excluding nested function literals.
func collectEvents(pass *Pass, root ast.Node) []persistEvent {
	var evs []persistEvent
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ev, ok := persistCall(pass, call); ok {
				evs = append(evs, ev)
			}
		}
		return true
	})
	return evs
}

// loopParts returns the body and iteration-variable names of a loop node.
func loopParts(n ast.Node) (*ast.BlockStmt, map[string]bool) {
	vars := make(map[string]bool)
	switch l := n.(type) {
	case *ast.ForStmt:
		collectAssigned(l.Init, vars)
		collectAssigned(l.Post, vars)
		return l.Body, vars
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{l.Key, l.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				vars[id.Name] = true
			}
		}
		return l.Body, vars
	}
	return nil, nil
}

func collectAssigned(s ast.Stmt, vars map[string]bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				vars[id.Name] = true
			}
		}
	case *ast.IncDecStmt:
		if id, ok := st.X.(*ast.Ident); ok {
			vars[id.Name] = true
		}
	}
}

// exprUsesVars reports whether the expression mentions any of the names.
func exprUsesVars(e ast.Expr, vars map[string]bool) bool {
	if len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
