// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	c.Barrier() // want `error from Barrier is discarded`
//
// Each want comment carries one or more backquoted or double-quoted
// regular expressions; every diagnostic on that line must be matched by
// one of them, and every regexp must match a diagnostic. Fixture files
// live under testdata/ (invisible to the go tool) and import the real
// repro packages, which are resolved — like everything in
// internal/analysis — through the local toolchain's export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package in dir (every .go file), runs the
// analyzer, and reports mismatches against the want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)

	// Match diagnostics to wants per line.
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRx extracts the quoted regexps of a want comment.
var wantRx = regexp.MustCompile("//\\s*want\\s+(.*)$")

var wantArgRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRx.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, a := range args {
					pat := a[1]
					if pat == "" {
						pat = a[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loadFixture parses and type-checks the fixture files in dir as one
// package, resolving their imports (the real repro packages and the
// standard library) through `go list -deps -export`.
func loadFixture(dir string) (*analysis.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	imp, err := analysis.ExportDataImporter(fset, imports)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Error: func(error) {}}
	pkgPath := "repro/fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	return &analysis.Package{
		ImportPath: pkgPath,
		Dir:        abs,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
