package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClockAnalyzer enforces virtual-time purity: in a package whose
// package clause carries the //repro:virtualtime directive (internal/des,
// internal/simnet), any use of the wall clock is a bug. The simulator's
// determinism rests on every timestamp coming from the DES clock —
// des.Sim.Now advances only when events fire — so a stray time.Now or
// time.Sleep smuggles host scheduling back into results that must be
// bit-reproducible across machines and runs.
//
// The directive marks the package, not the file: one //repro:virtualtime
// in a package doc comment covers every file of that package, including
// in-package test files. Flagged are the wall-clock entry points of
// package time — Now, Since, Until, Sleep, After, AfterFunc, Tick,
// NewTimer, NewTicker — whether called or merely referenced (a stored
// time.Now function value is the same leak one hop later).
//
// A sanctioned clock source is annotated in place with
// `//reprolint:ignore wallclock <reason>`: simnet's WallBudget measures
// PLANNING wall time (how long the planner lets the simulator run), not
// simulated time, and is the one legitimate user.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock time package uses inside //repro:virtualtime (virtual-time pure) packages",
	Run:  runWallClock,
}

// virtualTimeDirective is matched against the package doc comments.
const virtualTimeDirective = "//repro:virtualtime"

// wallClockFuncs are package time's wall-clock entry points. Conversions
// and arithmetic (time.Duration, time.Unix, the constants) stay legal —
// the des clock is float64 seconds, but callers converting budgets or
// intervals still speak time.Duration at the API boundary.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(pass *Pass) error {
	pure := false
	for _, f := range pass.Files {
		if f.Doc == nil {
			continue
		}
		for _, c := range f.Doc.List {
			if strings.TrimSpace(c.Text) == virtualTimeDirective {
				pure = true
			}
		}
	}
	if !pure {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s in a //repro:virtualtime package: virtual-time purity requires every timestamp to come from the des clock", sel.Sel.Name)
			return true
		})
	}
	return nil
}
