package analysis

import (
	"go/ast"
	"go/types"
)

// CommErrAnalyzer enforces the error-first transport contract of PR 4: no
// error returned by a core.Comm, core.Request or core.PersistentRequest
// method (or the *chanmpi.Comm concrete form) may be discarded. The nine
// panic paths chanmpi rewrote into typed errors are only an improvement if
// every call site actually looks at them — a discarded Barrier or Wait
// error turns a detected world failure back into the silent wedge the
// rewrite was built to kill.
//
// Flagged: a comm-method call used as a bare statement, launched with go
// or defer (the error is unobservable), or with the error position
// assigned to the blank identifier. Assigning to a variable — including a
// named return checked elsewhere — satisfies the contract; tracking
// whether the variable is subsequently read is intentionally out of scope
// (see the analysistest fixtures for the named-return case).
var CommErrAnalyzer = &Analyzer{
	Name: "commerr",
	Doc:  "flags discarded errors from core.Comm / Request / PersistentRequest methods",
	Run:  runCommErr,
}

// commErrTypes are the receiver types whose methods carry the error-first
// contract. core.Request and core.PersistentRequest are aliases of the
// chanmpi definitions, so matching the defining package covers both.
func isCommReceiver(t types.Type) bool {
	return namedType(t, corePath, "Comm") ||
		namedType(t, chanmpiPath, "Comm") ||
		namedType(t, chanmpiPath, "Request") ||
		namedType(t, chanmpiPath, "PersistentRequest")
}

func runCommErr(pass *Pass) error {
	info := pass.TypesInfo
	// commCall resolves a call to (receiver-type name, method name) if it
	// is an error-returning comm-contract method call.
	commCall := func(call *ast.CallExpr) (string, bool) {
		recv, name, ok := methodCall(info, call)
		if !ok || !isCommReceiver(recv) {
			return "", false
		}
		if _, errLast := returnsErrorLast(info, call); !errLast {
			return "", false // Rank(), Size()
		}
		return name, true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := commCall(call); ok {
						pass.Reportf(call.Pos(), "error from %s is discarded (error-first comm contract)", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := commCall(s.Call); ok {
					pass.Reportf(s.Call.Pos(), "error from %s is unobservable in a go statement", name)
				}
			case *ast.DeferStmt:
				if name, ok := commCall(s.Call); ok {
					pass.Reportf(s.Call.Pos(), "error from %s is unobservable in a deferred call", name)
				}
			case *ast.AssignStmt:
				// One call on the RHS; the error is its last result. Blank
				// in that LHS position discards it.
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := commCall(call)
				if !ok {
					return true
				}
				if id, isIdent := s.Lhs[len(s.Lhs)-1].(*ast.Ident); isIdent && id.Name == "_" {
					pass.Reportf(call.Pos(), "error from %s is assigned to the blank identifier", name)
				}
			}
			return true
		})
	}
	return nil
}
