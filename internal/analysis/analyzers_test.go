package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer must catch every seeded violation in its fixture package
// and stay silent on the compliant shapes (including the documented
// known-hard false-positive cases).

func TestCommErr(t *testing.T) {
	analysistest.Run(t, "testdata/src/commerr", analysis.CommErrAnalyzer)
}

func TestPersistWait(t *testing.T) {
	analysistest.Run(t, "testdata/src/persistwait", analysis.PersistWaitAnalyzer)
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", analysis.HotAllocAnalyzer)
}

func TestRankOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/rankorder", analysis.RankOrderAnalyzer)
}

func TestClusterCtx(t *testing.T) {
	analysistest.Run(t, "testdata/src/clusterctx", analysis.ClusterCtxAnalyzer)
}

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata/src/wallclock", analysis.WallClockAnalyzer)
}

// The wallclock analyzer is directive-scoped: a package without
// //repro:virtualtime may use the wall clock freely (no want comments —
// any diagnostic fails the run).
func TestWallClockSilentWithoutDirective(t *testing.T) {
	analysistest.Run(t, "testdata/src/wallclockclean", analysis.WallClockAnalyzer)
}

// TestAllNames pins the analyzer roster: CI flags and suppression
// directives address analyzers by these names.
func TestAllNames(t *testing.T) {
	want := []string{"commerr", "persistwait", "hotalloc", "rankorder", "clusterctx", "wallclock"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestLoadRepo exercises the export-data loader end to end on a real
// package of this module (with its test variant) and runs the full suite
// over it; the analysis package itself must be clean.
func TestLoadRepo(t *testing.T) {
	pkgs, err := analysis.Load("", true, "repro/internal/analysis")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// The in-package test variant plus this external _test package.
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("unexpected diagnostic in %s: %s", pkg.ImportPath, d)
		}
	}
}
