// Fixture for the wallclock analyzer's scoping: this package has NO
// //repro:virtualtime directive, so wall-clock use is none of the
// analyzer's business — it must stay silent here.
package wallclockclean

import "time"

// Stamp uses the wall clock freely; only directive-marked packages are
// virtual-time pure.
func Stamp() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
