// Fixture for the hotalloc analyzer: per-call heap allocations inside
// functions annotated //repro:noalloc.
package hotalloc

// sink is an interface-typed package variable used to force boxing.
var sink interface{}

// state is a resident hot-path object in the style of core.Worker.
type state struct {
	buf    []float64
	chunks []int
	out    [][]float64
}

// allocates collects the violation shapes.
//
//repro:noalloc
func (s *state) allocates(n int) {
	tmp := make([]float64, n)   // want `make allocates`
	s.buf = append(s.buf, 1)    // want `append allocates`
	_ = new(state)              // want `new allocates`
	_ = []int{1, 2, 3}          // want `slice literal allocates`
	_ = map[int]int{}           // want `map literal allocates`
	p := &state{}               // want `&composite escapes to the heap`
	f := func() {}              // want `closure allocates`
	go s.clean(tmp)             // want `go statement allocates a goroutine`
	sink = n                    // want `value of type int boxed into`
	_ = string(s.chunksBytes()) // want `string/slice conversion allocates`
	_ = p
	f()
}

// clean is steady-state-shaped code: index loops, calls, value reads —
// none of it allocates, none of it may be flagged.
//
//repro:noalloc
func (s *state) clean(x []float64) {
	for i := range x {
		x[i] = 2 * x[i]
	}
	for _, c := range s.chunks {
		if c < len(x) {
			x[c] = 0
		}
	}
	s.step(x)
}

// step shows the allowed shapes: value struct literals stay on the stack,
// pointers and interfaces pass without boxing.
//
//repro:noalloc
func (s *state) step(x []float64) {
	r := span{0, len(x)}
	_ = r.hi - r.lo
}

type span struct{ lo, hi int }

// coldGuard is the known-hard false-positive case #1: allocations inside
// an early-exit guard are error-path work, not steady state. The
// terminating block exempts them.
//
//repro:noalloc
func (s *state) coldGuard(n int) error {
	if n > cap(s.buf) {
		s.buf = make([]float64, n) // cold: the guard returns
		return errGrow
	}
	s.buf = s.buf[:n]
	return nil
}

var errGrow error

// growOnce is the known-hard false-positive case #2: the resident
// grow-once buffer idiom. The guard does NOT return, so the analyzer
// cannot prove it cold; the site carries the explicit alloc-ok directive
// (the convention used by chanmpi's reducer and tcpmpi's frame buffers).
//
//repro:noalloc
func (s *state) growOnce(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //repro:alloc-ok grow-once resident buffer
	}
	s.buf = s.buf[:n]
}

// unmarkedGrow is the same idiom WITHOUT the directive: flagged, so new
// grow sites must be reviewed and annotated deliberately.
//
//repro:noalloc
func (s *state) unmarkedGrow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) // want `make allocates`
	}
	s.buf = s.buf[:n]
}

// notAnnotated is identical to allocates but carries no directive:
// nothing is flagged outside //repro:noalloc functions.
func (s *state) notAnnotated(n int) {
	_ = make([]float64, n)
	sink = n
}

func (s *state) chunksBytes() []byte { return nil }
