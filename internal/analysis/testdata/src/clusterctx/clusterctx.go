// Fixture for the clusterctx analyzer: mutex-taking *core.Cluster
// methods must not be reachable from cluster job bodies (self-deadlock).
// A body is recognized by its func(*core.Worker) error type at any call
// site — Cluster.Run itself, or any wrapper that forwards bodies to a
// cluster (the pooled-session shape of internal/serve).
package clusterctx

import (
	"context"

	"repro/internal/core"
)

// direct calls locking methods straight from the body literal.
func direct(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		if err := cl.SetMode(core.TaskMode); err != nil { // want `Cluster.SetMode called from inside a cluster job body`
			return err
		}
		return cl.Close() // want `Cluster.Close called from inside a cluster job body`
	})
}

// reconfigure is a package-local helper that takes the cluster lock.
func reconfigure(cl *core.Cluster) error {
	return cl.SetMode(core.TaskMode)
}

// deepHelper adds a second hop to the chain.
func deepHelper(cl *core.Cluster) error {
	return reconfigure(cl)
}

// viaHelper reaches the lock through one call edge.
func viaHelper(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return reconfigure(cl) // want `reconfigure reaches Cluster.SetMode from inside a cluster job body`
	})
}

// viaTwoHops reaches it through two — the fixpoint, not a one-step scan.
func viaTwoHops(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return deepHelper(cl) // want `deepHelper reaches Cluster.SetMode from inside a cluster job body`
	})
}

// app shows the named-body form: Run(a.body) instead of a literal.
type app struct{ cl *core.Cluster }

func (a *app) body(w *core.Worker) error {
	return a.cl.Close()
}

func (a *app) run() error {
	return a.cl.Run(a.body) // want `job body body calls Cluster.Close`
}

// allowed exercises every lock-free method: Mode is the documented
// exception, and the read-only accessors plus Interrupt never touch the
// mutex. None of these may be flagged.
func allowed(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		if cl.Mode() == core.TaskMode {
			_ = cl.Ranks()
			_ = cl.Threads()
			_ = cl.Rows()
		}
		cl.Interrupt()
		return w.Comm.Barrier()
	})
}

// otherCluster is the known-hard false-positive case: the analyzer is
// receiver-insensitive, so locking a DIFFERENT cluster from a body is
// flagged even though no lock is shared. This over-approximation is
// deliberate — two live clusters in one process is not a runtime shape,
// and the directive below is the escape hatch when it ever is.
func otherCluster(cl, other *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return other.Close() // want `Cluster.Close called from inside a cluster job body`
	})
}

// otherClusterSuppressed is the same shape with the documented opt-out.
func otherClusterSuppressed(cl, other *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		//reprolint:ignore clusterctx distinct cluster, no shared lock
		return other.Close()
	})
}

// submit is the pooled-cluster wrapper shape: it forwards bodies to a
// cluster it owns, so its job-body-typed parameter marks every argument
// as running under the cluster lock — without the analyzer knowing
// "submit" by name.
func submit(cl *core.Cluster, body func(w *core.Worker) error) error {
	return cl.Run(body)
}

// viaWrapper passes a deadlocking literal through the wrapper instead of
// straight to Run.
func viaWrapper(cl *core.Cluster) error {
	return submit(cl, func(w *core.Worker) error {
		return cl.Convert(nil) // want `Cluster.Convert called from inside a cluster job body`
	})
}

// viaWrapperHelper reaches the lock through a helper from a wrapped body.
func viaWrapperHelper(cl *core.Cluster) error {
	return submit(cl, func(w *core.Worker) error {
		return reconfigure(cl) // want `reconfigure reaches Cluster.SetMode from inside a cluster job body`
	})
}

// viaWrapperNamed passes a named deadlocking body through the wrapper.
func viaWrapperNamed(a *app) error {
	return submit(a.cl, a.body) // want `job body body calls Cluster.Close`
}

// probe calls the Failed accessor, which takes the cluster lock — the
// pool-facing method must be as forbidden in a body as Mul or Close.
func probe(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		if cl.Failed() != nil { // want `Cluster.Failed called from inside a cluster job body`
			return nil
		}
		return nil
	})
}

// contextVariants: the Context entry points take the same cluster lock
// as their plain counterparts — a deadline does not make a nested
// submission safe.
func contextVariants(ctx context.Context, cl *core.Cluster, y, x []float64) error {
	return cl.RunContext(ctx, func(w *core.Worker) error {
		if err := cl.MulContext(ctx, y, x, 1); err != nil { // want `Cluster.MulContext called from inside a cluster job body`
			return err
		}
		return cl.RunContext(ctx, func(w *core.Worker) error { return nil }) // want `Cluster.RunContext called from inside a cluster job body`
	})
}

// deadlineHelper reaches MulContext through a package-local call edge.
func deadlineHelper(ctx context.Context, cl *core.Cluster, y, x []float64) error {
	return cl.MulContext(ctx, y, x, 1)
}

// viaDeadlineHelper: the fixpoint must taint the Context variants too.
func viaDeadlineHelper(ctx context.Context, cl *core.Cluster, y, x []float64) error {
	return cl.Run(func(w *core.Worker) error {
		return deadlineHelper(ctx, cl, y, x) // want `deadlineHelper reaches Cluster.MulContext from inside a cluster job body`
	})
}

// wrapperAllowed: a clean body through the wrapper is not flagged.
func wrapperAllowed(cl *core.Cluster) error {
	return submit(cl, func(w *core.Worker) error {
		_ = cl.Mode()
		return w.Comm.Barrier()
	})
}
