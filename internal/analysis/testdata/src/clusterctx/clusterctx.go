// Fixture for the clusterctx analyzer: mutex-taking *core.Cluster
// methods must not be reachable from Run job bodies (self-deadlock).
package clusterctx

import "repro/internal/core"

// direct calls locking methods straight from the body literal.
func direct(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		if err := cl.SetMode(core.TaskMode); err != nil { // want `Cluster.SetMode called from inside a Run job body`
			return err
		}
		return cl.Close() // want `Cluster.Close called from inside a Run job body`
	})
}

// reconfigure is a package-local helper that takes the cluster lock.
func reconfigure(cl *core.Cluster) error {
	return cl.SetMode(core.TaskMode)
}

// deepHelper adds a second hop to the chain.
func deepHelper(cl *core.Cluster) error {
	return reconfigure(cl)
}

// viaHelper reaches the lock through one call edge.
func viaHelper(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return reconfigure(cl) // want `reconfigure reaches Cluster.SetMode from inside a Run job body`
	})
}

// viaTwoHops reaches it through two — the fixpoint, not a one-step scan.
func viaTwoHops(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return deepHelper(cl) // want `deepHelper reaches Cluster.SetMode from inside a Run job body`
	})
}

// app shows the named-body form: Run(a.body) instead of a literal.
type app struct{ cl *core.Cluster }

func (a *app) body(w *core.Worker) error {
	return a.cl.Close()
}

func (a *app) run() error {
	return a.cl.Run(a.body) // want `job body body calls Cluster.Close`
}

// allowed exercises every lock-free method: Mode is the documented
// exception, and the read-only accessors plus Interrupt never touch the
// mutex. None of these may be flagged.
func allowed(cl *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		if cl.Mode() == core.TaskMode {
			_ = cl.Ranks()
			_ = cl.Threads()
			_ = cl.Rows()
		}
		cl.Interrupt()
		return w.Comm.Barrier()
	})
}

// otherCluster is the known-hard false-positive case: the analyzer is
// receiver-insensitive, so locking a DIFFERENT cluster from a body is
// flagged even though no lock is shared. This over-approximation is
// deliberate — two live clusters in one process is not a runtime shape,
// and the directive below is the escape hatch when it ever is.
func otherCluster(cl, other *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		return other.Close() // want `Cluster.Close called from inside a Run job body`
	})
}

// otherClusterSuppressed is the same shape with the documented opt-out.
func otherClusterSuppressed(cl, other *core.Cluster) error {
	return cl.Run(func(w *core.Worker) error {
		//reprolint:ignore clusterctx distinct cluster, no shared lock
		return other.Close()
	})
}
