// Fixture for the persistwait analyzer: the one-Wait-per-Start contract
// of persistent communication channels.
package persistwait

import "repro/internal/core"

// doubleStart is the straight-line violation: two Starts of the same
// channel with no intervening Wait.
func doubleStart(p core.PersistentRequest) error {
	if err := p.Start(); err != nil {
		return err
	}
	if err := p.Start(); err != nil { // want `p.Start follows Start at line 10 with no intervening Wait`
		return err
	}
	return p.Wait()
}

// startWaitStart is legal: the Wait between the Starts completes the
// first transfer.
func startWaitStart(p core.PersistentRequest) error {
	if err := p.Start(); err != nil {
		return err
	}
	if err := p.Wait(); err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		return err
	}
	return p.Wait()
}

// loopNoWait is the loop violation: the second iteration restarts a
// channel whose first transfer was never waited.
func loopNoWait(p core.PersistentRequest, iters int) error {
	for i := 0; i < iters; i++ {
		if err := p.Start(); err != nil { // want `p.Start in a loop with no Wait in the loop body`
			return err
		}
	}
	return nil
}

// loopStartWait is the steady-state shape (Worker.Step): Start and Wait
// both inside the loop body — legal.
func loopStartWait(p core.PersistentRequest, iters int) error {
	for i := 0; i < iters; i++ {
		if err := p.Start(); err != nil {
			return err
		}
		if err := p.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// loopVariant is the postRecvs/gatherAndSend shape: the receiver depends
// on the loop variable, so each iteration starts a DIFFERENT channel and
// the Waits legitimately live in another function (waitHalo). Exempt.
func loopVariant(reqs []core.PersistentRequest) error {
	for _, r := range reqs {
		if err := r.Start(); err != nil {
			return err
		}
	}
	for i := range reqs {
		if err := reqs[i].Start(); err != nil {
			return err
		}
	}
	return nil
}

// splitAcrossHelpers is the known-hard false-positive case, documented as
// a non-goal: Start in one function, Wait in another (the
// postRecvs/waitHalo split of core.Worker). The pairing is the callers'
// contract; a function-local analyzer cannot see it, so a lone Start in
// straight-line code is NOT flagged.
func splitAcrossHelpers(p core.PersistentRequest) error {
	return p.Start() // waited by the caller via waitHelper
}

func waitHelper(p core.PersistentRequest) error {
	return p.Wait()
}
