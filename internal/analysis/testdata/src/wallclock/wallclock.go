// Fixture for the wallclock analyzer: the //repro:virtualtime directive
// below marks this package virtual-time pure, so every wall-clock entry
// point of package time is a violation — called, deferred, or stored as a
// function value. The annotated budget helper shows the sanctioned
// escape hatch.
//
//repro:virtualtime
package wallclock

import "time"

// now leaks the host clock directly.
func now() time.Time {
	return time.Now() // want `time.Now in a //repro:virtualtime package`
}

// elapsed leaks it through the convenience wrappers.
func elapsed(start time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want `time.Sleep in a //repro:virtualtime package`
	return time.Since(start)     // want `time.Since in a //repro:virtualtime package`
}

// stored smuggles the clock out as a function value — same leak, one hop
// later.
var stored = time.Now // want `time.Now in a //repro:virtualtime package`

// ticking covers the channel-shaped entry points.
func ticking() {
	t := time.NewTimer(time.Second) // want `time.NewTimer in a //repro:virtualtime package`
	defer t.Stop()
	<-time.After(time.Second) // want `time.After in a //repro:virtualtime package`
	go func() {
		for range time.Tick(time.Second) { // want `time.Tick in a //repro:virtualtime package`
			return
		}
	}()
}

// budget is the sanctioned wall-clock source, annotated in place like
// simnet's WallBudget.
func budget() time.Time {
	return time.Now() //reprolint:ignore wallclock the sanctioned planner wall-clock budget
}

// durations, conversions and constants are not wall-clock reads.
func pureDuration(d time.Duration) float64 {
	deadline := 3 * time.Second
	if d > deadline {
		d = deadline
	}
	return d.Seconds()
}
