// Fixture for the commerr analyzer: discarded errors from the error-first
// core.Comm / Request / PersistentRequest contract.
package commerr

import (
	"fmt"

	"repro/internal/core"
)

// discards collects the violation shapes: each `want` line must be
// flagged.
func discards(c core.Comm, buf []float64) {
	c.Barrier()                      // want `error from Barrier is discarded`
	c.Waitall()                      // want `error from Waitall is discarded`
	go c.Barrier()                   // want `error from Barrier is unobservable in a go statement`
	defer c.Barrier()                // want `error from Barrier is unobservable in a deferred call`
	_ = c.Barrier()                  // want `error from Barrier is assigned to the blank identifier`
	res, _ := c.Allreduce(0, buf)    // want `error from Allreduce is assigned to the blank identifier`
	req, _ := c.Irecv(0, 0, buf)     // want `error from Irecv is assigned to the blank identifier`
	req2, _ := c.SendInit(0, 0, buf) // want `error from SendInit is assigned to the blank identifier`
	_ = res
	if req != nil {
		req.Wait() // want `error from Wait is discarded`
	}
	if req2 != nil {
		req2.Start() // want `error from Start is discarded`
		req2.Wait()  // want `error from Wait is discarded`
	}
}

// observed shows the compliant shapes: none of these may be flagged.
func observed(c core.Comm, buf []float64) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	res, err := c.Allreduce(core.OpSum, buf)
	if err != nil {
		return err
	}
	_ = res // the RESULT may be discarded; only the error is contractual
	_, err = c.AllreduceScalar(core.OpMax, 1)
	if err != nil {
		return err
	}
	// Rank and Size carry no error and are exempt.
	fmt.Println(c.Rank(), c.Size())
	return nil
}

// namedReturn is the known-hard false-positive case: the error is
// assigned to a named return and checked by the CALLER, never inspected
// locally. commerr intentionally accepts any assignment to a non-blank
// variable — flow-tracking whether the variable is later read is a
// documented non-goal (it would need SSA liveness, and the shape below is
// legitimate error-first code).
func namedReturn(c core.Comm) (err error) {
	err = c.Barrier() // legitimately unchecked here: the caller sees it
	return
}

// suppressed shows the escape hatch: a deliberate best-effort discard
// carries an explicit directive (the faultmpi delayed-frame shape).
func suppressed(c core.Comm) {
	//reprolint:ignore commerr fixture for the deliberate best-effort shape
	c.Barrier()
}
