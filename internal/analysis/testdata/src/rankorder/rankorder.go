// Fixture for the rankorder analyzer: reduction combine loops must
// iterate ranks in canonical ascending order (bit-determinism rule).
package rankorder

import "repro/internal/chanmpi"

// ascending is the canonical chanmpi/tcpmpi reducer shape: legal.
func ascending(op chanmpi.ReduceOp, vecs [][]float64, acc []float64) {
	copy(acc, vecs[0])
	for q := 1; q < len(vecs); q++ {
		for i, v := range vecs[q] {
			acc[i] = op.Combine(acc[i], v)
		}
	}
}

// rangeOverSlice is equally canonical: range order is ascending.
func rangeOverSlice(op chanmpi.ReduceOp, vecs [][]float64, acc []float64) {
	for _, vec := range vecs {
		for i, v := range vec {
			acc[i] = op.Combine(acc[i], v)
		}
	}
}

// descending combines size-1 ⊕ … ⊕ 0: bit-different from every other
// transport. Flagged.
func descending(op chanmpi.ReduceOp, vecs [][]float64, acc []float64) {
	for q := len(vecs) - 1; q >= 0; q-- { // want `combine loop iterates downward`
		for i, v := range vecs[q] {
			acc[i] = op.Combine(acc[i], v)
		}
	}
}

// strided skips ranks on the first pass and revisits them later —
// non-canonical order. Flagged.
func strided(op chanmpi.ReduceOp, vecs [][]float64, acc []float64) {
	for q := 0; q < len(vecs); q += 2 { // want `combine loop strides by more than one rank`
		for i, v := range vecs[q] {
			acc[i] = op.Combine(acc[i], v)
		}
	}
}

// mapOrder combines in map iteration order, which differs run to run —
// the exact failure bit-identity tests exist to catch. Flagged.
func mapOrder(op chanmpi.ReduceOp, byRank map[int][]float64, acc []float64) {
	for _, vec := range byRank { // want `combine loop ranges over a map`
		for i, v := range vec {
			acc[i] = op.Combine(acc[i], v)
		}
	}
}

// serviceLoop is the known-hard false-positive case: a condition-only
// retry loop AROUND a canonical combine (the reducer's wait-for-round
// shape). The outer loop is not a rank iteration and must not be
// flagged; only provably descending/strided/map-ordered loops are.
func serviceLoop(op chanmpi.ReduceOp, vecs [][]float64, acc []float64, ready func() bool) {
	for !ready() {
		for q := 1; q < len(vecs); q++ {
			for i, v := range vecs[q] {
				acc[i] = op.Combine(acc[i], v)
			}
		}
	}
}
