package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Import paths of the packages whose contracts the analyzers encode. The
// transport-neutral aliases in core (core.Request = chanmpi.Request, …)
// resolve to the same named types, so matching on the defining package
// covers both spellings.
const (
	corePath    = "repro/internal/core"
	chanmpiPath = "repro/internal/chanmpi"
)

// namedType reports whether t (after unwrapping aliases and one level of
// pointer) is the named type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodCall resolves a call of the form x.M(...) to its selection: the
// receiver type and method name. It returns ok=false for non-method calls
// (plain functions, conversions, builtins).
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection.Recv(), sel.Sel.Name, true
}

// returnsErrorLast reports whether the call's result tuple ends in error.
func returnsErrorLast(info *types.Info, call *ast.CallExpr) (n int, errLast bool) {
	tv, ok := info.Types[call]
	if !ok {
		return 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return 0, false
		}
		return t.Len(), isErrorType(t.At(t.Len() - 1).Type())
	default:
		return 1, isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }

// exprString renders an expression compactly — the syntactic identity key
// persistwait uses to correlate Start/Wait receivers.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

// funcBodies visits every function body in the file set exactly once:
// declared functions (with their names and doc comments) and function
// literals (with name "" and nil doc). Each body is presented as its own
// unit — visitors that walk a body themselves should not descend into
// nested FuncLits, which are delivered separately.
func funcBodies(files []*ast.File, visit func(name string, doc *ast.CommentGroup, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					visit(d.Name.Name, d.Doc, d.Body)
				}
			case *ast.FuncLit:
				visit("", nil, d.Body)
			}
			return true
		})
	}
}

// walkWithStack walks the AST depth-first, giving the visitor the stack of
// ancestor nodes (outermost first, excluding n itself). Return false to
// prune the subtree.
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// terminates reports whether a statement list ends in a statement that
// leaves the function: return, panic, or an unconditional branch out.
// Blocks that terminate are the cold early-exit guards of the hot paths;
// hotalloc exempts allocations inside them.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.GOTO || s.Tok == token.BREAK || s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
