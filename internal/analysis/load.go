package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
// ForTest marks the in-package test variant ("pkg [pkg.test]" entries),
// whose GoFiles already include the _test.go files of the package under
// test.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	ForTest    string
	Standard   bool
}

// Load enumerates and type-checks the packages matched by patterns,
// resolving every import through gc export data produced by the local
// toolchain (`go list -deps -export`). dir is the directory the patterns
// are interpreted in (the module root for "./..."); "" means the current
// directory. With tests true, the in-package test variants are loaded too,
// so _test.go files are analyzed against the same contracts.
//
// This is the standard-library stand-in for go/packages: no module
// downloads, no network — everything comes from the toolchain's own build
// cache.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-deps", "-export", "-json"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthetic test-main package
		}
		lp := p
		targets = append(targets, &lp)
	}
	// With -test, a package that has in-package test files is listed twice:
	// plain and as the "pkg [pkg.test]" variant whose GoFiles are a
	// superset. Analyze only the variant, so findings are not duplicated.
	variants := make(map[string]bool)
	for _, t := range targets {
		if t.ForTest != "" && !strings.Contains(t.ImportPath, "_test ") {
			variants[t.ForTest] = true
		}
	}
	kept := targets[:0]
	for _, t := range targets {
		if t.ForTest == "" && variants[t.ImportPath] {
			continue
		}
		kept = append(kept, t)
	}
	targets = kept
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			continue // cgo packages are outside the analyzers' scope
		}
		pkg, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package against the export
// data of its dependencies.
func typecheck(t *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = t.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer: newExportImporter(fset, exports, t.ForTest),
		Error:    func(error) {}, // collect only the first hard failure below
	}
	tpkg, err := conf.Check(strings.TrimSuffix(t.ImportPath, " ["+t.ForTest+".test]"), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportDataImporter builds an importer over the export data of the given
// import paths and their dependencies (`go list -deps -export`), resolved
// relative to the current directory's module. The analysistest fixture
// loader uses it to give fixture packages access to the real repro types.
func ExportDataImporter(fset *token.FileSet, imports []string) (types.ImporterFrom, error) {
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("decoding go list output: %w", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return newExportImporter(fset, exports, ""), nil
}

// exportImporter resolves imports from gc export data files. When loading
// a test variant of package P ("P [P.test]"), packages in P's import graph
// may have been recompiled against P's test files; those variants are
// listed as "Q [P.test]" and are preferred over the plain Q export.
type exportImporter struct {
	fset    *token.FileSet
	exports map[string]string
	forTest string
	gc      types.ImporterFrom
	seen    map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string, forTest string) *exportImporter {
	imp := &exportImporter{fset: fset, exports: exports, forTest: forTest, seen: make(map[string]*types.Package)}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup).(types.ImporterFrom)
	return imp
}

func (imp *exportImporter) resolve(path string) string {
	if imp.forTest != "" {
		if variant := path + " [" + imp.forTest + ".test]"; imp.exports[variant] != "" {
			return variant
		}
	}
	return path
}

func (imp *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := imp.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

func (imp *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	key := imp.resolve(path)
	if p, ok := imp.seen[key]; ok {
		return p, nil
	}
	p, err := imp.gc.ImportFrom(key, dir, mode)
	if err != nil {
		return nil, err
	}
	imp.seen[key] = p
	return p, nil
}
