// Package analysis is reprolint's analyzer suite: static checks that
// encode this repository's hard-won runtime contracts — the error-first
// core.Comm surface, the one-Wait-per-Start persistent-channel discipline,
// the zero-allocation steady state, canonical-rank-order reductions, and
// the Cluster job-body locking rule — as machine-checked law. The runtime
// tests (alloc gates, bit-identity suites) catch these bugs after they are
// written; the analyzers catch them at vet time, before a test ever runs.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, want-comment fixtures) but is built entirely on the
// standard library: the toolchain image carries no external modules, so
// package loading rides `go list -deps -export -json` and the gc export
// data importer instead of go/packages. cmd/reprolint is the multichecker
// front end; it also speaks the `go vet -vettool` unitchecker protocol.
//
// See doc.go ("Static contracts") for the invariant each analyzer encodes
// and the //repro:noalloc annotation convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and
// suppression comments), a one-paragraph contract description, and the
// per-package run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the reprolint analyzer suite in presentation order.
func All() []*Analyzer {
	return []*Analyzer{
		CommErrAnalyzer,
		PersistWaitAnalyzer,
		HotAllocAnalyzer,
		RankOrderAnalyzer,
		ClusterCtxAnalyzer,
		WallClockAnalyzer,
	}
}

// ignoreDirective matches the uniform suppression comment:
//
//	//reprolint:ignore <name>[,<name>...] [reason]
//
// placed on the flagged line or alone on the line directly above it. The
// hotalloc-specific //repro:alloc-ok comment (documented with the noalloc
// annotation) is accepted as a synonym for "reprolint:ignore hotalloc".
var ignoreDirective = regexp.MustCompile(`^//\s*reprolint:ignore\s+([a-z]+(?:\s*,\s*[a-z]+)*)`)

// suppressions maps "file:line" to the analyzer names silenced there.
func suppressions(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	sup := make(map[string]map[string]bool)
	add := func(pos token.Position, names ...string) {
		for _, delta := range []int{0, 1} {
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line+delta)
			if sup[key] == nil {
				sup[key] = make(map[string]bool)
			}
			for _, n := range names {
				sup[key][strings.TrimSpace(n)] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				if strings.HasPrefix(c.Text, "//repro:alloc-ok") {
					add(pos, "hotalloc")
					continue
				}
				if m := ignoreDirective.FindStringSubmatch(c.Text); m != nil {
					add(pos, strings.Split(m[1], ",")...)
				}
			}
		}
	}
	return sup
}

// RunAnalyzers runs the given analyzers over one loaded package, applies
// the suppression comments, and returns the surviving diagnostics in
// position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup := suppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if s := sup[key]; s != nil && s[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
