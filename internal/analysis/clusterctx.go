package analysis

import (
	"go/ast"
	"go/types"
)

// ClusterCtxAnalyzer enforces the job-body locking rule documented on
// core.Cluster since PR 3: a cluster job body executes while the
// submitting goroutine holds the cluster's mutex, so calling any
// mutex-taking Cluster method from inside the body self-deadlocks — the
// body waits for the lock that is waiting for the body. Mode() is
// lock-free and explicitly safe.
//
// A job body is recognized by its type, not its destination: any function
// literal (or named function) passed as an argument whose parameter type
// is the job-body signature func(*core.Worker) error is checked. That
// covers (*core.Cluster).Run directly, and equally any wrapper that
// forwards bodies to a cluster — the session pools of internal/serve, a
// test harness, a retry shim — so pooled-cluster job bodies get the same
// guarantee without the analyzer knowing the wrapper by name.
//
// From each body the check walks the calls reachable through same-package
// functions and methods (one fixpoint over the package's call graph — the
// "call-graph reachability from body literals" of the PR 3 postmortem).
// A reachable call to a locking method is reported at the body's call
// site; helpers are reported with the chain's first hop so the deadlock
// is attributable.
//
// Locking methods: Mul, MulContext, Run, RunContext, SetMode, Convert,
// Close, Failed. Lock-free and allowed: Mode, Ranks, LocalRanks,
// Threads, Rows, Plan, Interrupt.
// Cross-package helpers are a documented non-goal (export data carries no
// bodies); the runtime's own packages keep job-body helpers local.
var ClusterCtxAnalyzer = &Analyzer{
	Name: "clusterctx",
	Doc:  "flags mutex-taking *core.Cluster methods called (transitively) from cluster job bodies",
	Run:  runClusterCtx,
}

// lockingClusterMethods take c.mu; calling them from a job body
// self-deadlocks.
var lockingClusterMethods = map[string]bool{
	"Mul":        true,
	"MulContext": true,
	"Run":        true,
	"RunContext": true,
	"SetMode":    true,
	"Convert":    true,
	"Close":      true,
	"Failed":     true,
}

func runClusterCtx(pass *Pass) error {
	info := pass.TypesInfo

	// lockingCall returns the method name if call is a locking method on a
	// *core.Cluster value.
	lockingCall := func(call *ast.CallExpr) (string, bool) {
		recv, name, ok := methodCall(info, call)
		if !ok || !lockingClusterMethods[name] || !namedType(recv, corePath, "Cluster") {
			return "", false
		}
		return name, true
	}

	// Pass 1 — taint summaries for this package's declared functions and
	// methods: which locking Cluster methods does each call directly, and
	// which package-local functions does it call. Inside core itself, Run
	// bodies constructed by the runtime (the resident mulJob) are built
	// before submission, not inside a body — the same rule applies.
	type summary struct {
		locking map[string]bool      // directly called locking methods
		callees map[*types.Func]bool // same-package static callees
	}
	summaries := make(map[*types.Func]*summary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{locking: map[string]bool{}, callees: map[*types.Func]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := lockingCall(call); ok {
					s.locking[name] = true
					return true
				}
				if callee := staticCallee(info, call); callee != nil && callee.Pkg() == pass.Pkg {
					s.callees[callee] = true
				}
				return true
			})
			summaries[obj] = s
		}
	}

	// Fixpoint: propagate taint through same-package call edges.
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			for callee := range s.callees {
				cs, ok := summaries[callee]
				if !ok {
					continue
				}
				for m := range cs.locking {
					if !s.locking[m] {
						s.locking[m] = true
						changed = true
					}
				}
			}
		}
	}

	// reportBody checks one argument in job-body position: a literal is
	// walked directly (plus reachable helpers), a named function is
	// checked through its summary.
	reportBody := func(arg ast.Expr) {
		body, ok := arg.(*ast.FuncLit)
		if !ok {
			if callee := staticCallee(info, arg); callee != nil {
				if s, ok := summaries[callee]; ok {
					for m := range s.locking {
						pass.Reportf(arg.Pos(), "job body %s calls Cluster.%s, which takes the cluster lock the submitter holds (self-deadlock)", callee.Name(), m)
					}
				}
			}
			return
		}
		ast.Inspect(body.Body, func(bn ast.Node) bool {
			bcall, ok := bn.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := lockingCall(bcall); ok {
				pass.Reportf(bcall.Pos(), "Cluster.%s called from inside a cluster job body self-deadlocks (the submitter holds the cluster lock; Mode is the lock-free exception)", m)
				return true
			}
			if callee := staticCallee(info, bcall); callee != nil {
				if s, ok := summaries[callee]; ok {
					for m := range s.locking {
						pass.Reportf(bcall.Pos(), "%s reaches Cluster.%s from inside a cluster job body (self-deadlock via helper)", callee.Name(), m)
					}
				}
			}
			return true
		})
	}

	// Pass 2 — walk every call and check each argument sitting in a
	// job-body-typed parameter slot. Cluster.Run is just one such call;
	// wrappers that forward bodies to a pooled cluster match the same way.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := types.Unalias(info.TypeOf(call.Fun)).(*types.Signature)
			if !ok {
				return true // conversion, builtin, type expression
			}
			params := sig.Params()
			for i, arg := range call.Args {
				pt, ok := paramType(params, i, sig.Variadic())
				if !ok || !isJobBodyType(pt) {
					continue
				}
				reportBody(arg)
			}
			return true
		})
	}
	return nil
}

// paramType returns the declared type of the i-th argument's parameter,
// unpacking the variadic tail.
func paramType(params *types.Tuple, i int, variadic bool) (types.Type, bool) {
	n := params.Len()
	if n == 0 {
		return nil, false
	}
	if variadic && i >= n-1 {
		if sl, ok := types.Unalias(params.At(n - 1).Type()).(*types.Slice); ok {
			return sl.Elem(), true
		}
		return nil, false
	}
	if i >= n {
		return nil, false
	}
	return params.At(i).Type(), true
}

// isJobBodyType reports whether t is the cluster job-body signature
// func(*core.Worker) error — the type whose values run under the
// submitter-held cluster lock, wherever they are passed.
func isJobBodyType(t types.Type) bool {
	sig, ok := types.Unalias(t).(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	return namedType(sig.Params().At(0).Type(), corePath, "Worker")
}

// staticCallee resolves the *types.Func a call or function-valued
// expression statically refers to: a plain function, a method, or a
// function-valued identifier bound to a declaration.
func staticCallee(info *types.Info, n ast.Expr) *types.Func {
	switch e := n.(type) {
	case *ast.CallExpr:
		return staticCallee(info, e.Fun)
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn // package-qualified function
		}
	case *ast.ParenExpr:
		return staticCallee(info, e.X)
	}
	return nil
}
