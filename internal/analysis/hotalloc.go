package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocAnalyzer is the static complement of the TestAllocGate* runtime
// gates: functions annotated //repro:noalloc (the resident steady-state
// paths — halo restart loops, team region dispatch, kernel passes) must
// not contain per-call heap allocations. The alloc gates catch a
// regression after it runs; hotalloc flags the allocating construct at
// vet time.
//
// Flagged inside an annotated function: make, new, append (growth), map
// and slice composite literals, address-taken composite literals,
// function literals (closure capture), string<->[]byte/[]rune
// conversions, go statements, and interface boxing of non-pointer
// concrete values (assignments, call arguments and returns into
// interface-typed slots).
//
// Two escape-analysis-adjacent exemptions keep the check aligned with how
// the hot paths are actually written:
//
//   - Cold guards: allocations inside a block that terminates in
//     return/panic (the error early-exits) are not steady-state work.
//   - Grow-once buffers: the resident `if cap(buf) < n { buf = make(…) }`
//     idiom allocates only until the high-water mark; such sites carry an
//     explicit //repro:alloc-ok comment rather than an analyzer guess.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocations inside //repro:noalloc functions",
	Run:  runHotAlloc,
}

// noallocDirective marks a function whose body must be allocation-free in
// steady state.
const noallocDirective = "//repro:noalloc"

func hasNoalloc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), noallocDirective) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoalloc(fd.Doc) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name

	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}

	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		// Cold guards: a block that exits the function is not the
		// steady-state path.
		if b, ok := n.(*ast.BlockStmt); ok && terminates(b.List) && n != fd.Body {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure allocates in %s %s", noallocDirective, name)
			return false
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement allocates a goroutine in %s %s", noallocDirective, name)
		case *ast.CallExpr:
			checkNoallocCall(pass, info, e, name)
		case *ast.CompositeLit:
			checkNoallocComposite(pass, info, e, stack, name)
		case *ast.AssignStmt:
			for i, rhs := range e.Rhs {
				if len(e.Lhs) != len(e.Rhs) {
					break
				}
				if t, ok := info.Types[e.Lhs[i]]; ok {
					checkBoxing(pass, info, rhs, t.Type, name)
				}
			}
		case *ast.ReturnStmt:
			if sig == nil || sig.Results().Len() != len(e.Results) {
				break
			}
			for i, res := range e.Results {
				checkBoxing(pass, info, res, sig.Results().At(i).Type(), name)
			}
		}
		return true
	})
}

func checkNoallocCall(pass *Pass, info *types.Info, call *ast.CallExpr, name string) {
	// Builtins: make / new / append allocate (append at least potentially,
	// on growth — statically indistinguishable, so it is flagged).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s allocates in %s function", b.Name(), noallocDirective)
			}
			return
		}
	}
	// Conversions: string <-> []byte / []rune copy their payload.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if argTV, ok := info.Types[call.Args[0]]; ok {
			from := argTV.Type.Underlying()
			if isStringByteConv(from, to) {
				pass.Reportf(call.Pos(), "string/slice conversion allocates in %s function", noallocDirective)
			}
		}
		return
	}
	// Interface boxing of arguments.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, info, arg, pt, name)
	}
}

// checkBoxing flags a non-pointer concrete value converted to an
// interface type: the value escapes to the heap to fit behind the
// interface word. Pointers, interfaces, nil and constants are free.
func checkBoxing(pass *Pass, info *types.Info, expr ast.Expr, target types.Type, name string) {
	if target == nil {
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil { // constants are allocated statically
		return
	}
	t := tv.Type
	if t == nil || types.Identical(t, types.Typ[types.UntypedNil]) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return // single-word values fit the interface without boxing
	}
	pass.Reportf(expr.Pos(), "value of type %s boxed into %s in %s %s", t, target, noallocDirective, name)
}

func checkNoallocComposite(pass *Pass, info *types.Info, lit *ast.CompositeLit, stack []ast.Node, name string) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(lit.Pos(), "%s literal allocates in %s %s", describeComposite(tv.Type), noallocDirective, name)
		return
	}
	// A struct/array value literal lives on the stack unless its address
	// is taken.
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			pass.Reportf(lit.Pos(), "&%s escapes to the heap in %s %s", describeComposite(tv.Type), noallocDirective, name)
		}
	}
}

func describeComposite(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}

func isStringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}
