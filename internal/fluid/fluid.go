// Package fluid models bandwidth-like shared resources under a fluid-flow
// approximation on top of the des kernel. A Flow transfers a fixed number of
// bytes across one or more Resources; each resource divides its (occupancy-
// dependent) capacity equally among the flows crossing it, and a flow runs
// at the minimum of its per-resource shares.
//
// The occupancy-dependent capacity C(n) is how the paper's central
// node-level fact — a NUMA locality domain's memory bus saturates at about
// four cores (Fig. 3) — enters the simulator: each compute thread is one
// flow on its LD's memory resource, so adding threads beyond saturation
// adds no bandwidth.
//
// The equal-share-per-resource rule is a local approximation of max-min
// fairness: it never overcommits a resource and requires only neighbour
// updates when a flow starts or ends, keeping large strong-scaling
// simulations cheap. Bottlenecked-elsewhere flows may leave some capacity
// unused, which is conservative (never optimistic) for contended links.
package fluid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
)

// Capacity returns a resource's total capacity (bytes/s) when n ≥ 1 flows
// are active. Implementations must be positive and non-increasing per flow
// (C(n)/n non-increasing keeps the model stable).
type Capacity func(n int) float64

// ConstCapacity is a capacity independent of occupancy (network links).
func ConstCapacity(c float64) Capacity {
	return func(int) float64 { return c }
}

// TableCapacity interpolates total capacity from a per-occupancy table:
// table[i] is the capacity with i+1 active flows; occupancies beyond the
// table use the last entry. This encodes measured saturation curves like
// the STREAM and spMVM bandwidths of Fig. 3.
func TableCapacity(table []float64) Capacity {
	if len(table) == 0 {
		panic("fluid: empty capacity table")
	}
	t := append([]float64(nil), table...)
	return func(n int) float64 {
		if n <= 0 {
			n = 1
		}
		if n > len(t) {
			n = len(t)
		}
		return t[n-1]
	}
}

// Resource is one shared capacity (an LD memory bus, a NIC, a torus link).
type Resource struct {
	name  string
	capFn Capacity
	flows map[*Flow]struct{}
}

// Flow is an in-progress transfer.
type Flow struct {
	sys        *System
	id         int64
	resources  []*Resource
	remaining  float64
	rate       float64
	lastUpdate float64
	completion *des.Event
	// Done fires when the transfer finishes.
	Done *des.Signal
}

// System owns the resources and flows of one simulation.
type System struct {
	sim    *des.Sim
	nextID int64
}

// NewSystem creates a flow system bound to a simulator.
func NewSystem(sim *des.Sim) *System { return &System{sim: sim} }

// NewResource creates a resource with the given capacity model.
func (s *System) NewResource(name string, c Capacity) *Resource {
	return &Resource{name: name, capFn: c, flows: make(map[*Flow]struct{})}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Active returns the number of flows currently crossing the resource.
func (r *Resource) Active() int { return len(r.flows) }

// Start begins transferring `bytes` across the given resources and returns
// the flow. A zero-byte flow completes immediately. Must be called from
// simulation context (a proc or event callback).
func (s *System) Start(bytes float64, resources ...*Resource) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("fluid: invalid flow size %g", bytes))
	}
	s.nextID++
	f := &Flow{
		sys:        s,
		id:         s.nextID,
		resources:  resources,
		remaining:  bytes,
		lastUpdate: s.sim.Now(),
		Done:       s.sim.NewSignal(),
	}
	if bytes == 0 || len(resources) == 0 {
		// Infinitely fast: no shared medium, or nothing to move.
		f.Done.Fire()
		return f
	}
	touched := s.attach(f)
	s.rebalance(touched)
	return f
}

// attach registers the flow on its resources and returns every flow whose
// rate may have changed (the neighbours on shared resources).
func (s *System) attach(f *Flow) map[*Flow]struct{} {
	touched := map[*Flow]struct{}{f: {}}
	for _, r := range f.resources {
		for g := range r.flows {
			touched[g] = struct{}{}
		}
		r.flows[f] = struct{}{}
	}
	return touched
}

// detach removes a finished flow and returns the affected neighbours.
func (s *System) detach(f *Flow) map[*Flow]struct{} {
	touched := map[*Flow]struct{}{}
	for _, r := range f.resources {
		delete(r.flows, f)
		for g := range r.flows {
			touched[g] = struct{}{}
		}
	}
	return touched
}

// advance charges a flow's progress up to the current time.
func (f *Flow) advance(now float64) {
	if f.rate > 0 {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// currentRate computes the flow's fair share: min over resources of
// C_r(n_r)/n_r.
func (f *Flow) currentRate() float64 {
	rate := math.Inf(1)
	for _, r := range f.resources {
		n := len(r.flows)
		share := r.capFn(n) / float64(n)
		if share < rate {
			rate = share
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// rebalance recomputes rates and completion events for the touched flows,
// in flow-id order so event scheduling (and hence same-time tie-breaking)
// is deterministic.
func (s *System) rebalance(touched map[*Flow]struct{}) {
	now := s.sim.Now()
	ordered := make([]*Flow, 0, len(touched))
	for f := range touched {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, f := range ordered {
		if f.Done.Fired() {
			continue
		}
		f.advance(now)
		f.rate = f.currentRate()
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.remaining <= 0 {
			s.complete(f)
			continue
		}
		if f.rate > 0 {
			f := f
			f.completion = s.sim.After(f.remaining/f.rate, func() {
				f.advance(s.sim.Now())
				s.complete(f)
			})
		}
	}
}

// complete finishes a flow: detaches it, fires Done, rebalances neighbours.
func (s *System) complete(f *Flow) {
	if f.Done.Fired() {
		return
	}
	if f.completion != nil {
		f.completion.Cancel()
		f.completion = nil
	}
	neighbours := s.detach(f)
	f.Done.Fire()
	s.rebalance(neighbours)
}
