// Package fluid models bandwidth-like shared resources under a fluid-flow
// approximation on top of the des kernel. A Flow transfers a fixed number of
// bytes across one or more Resources; each resource divides its (occupancy-
// dependent) capacity equally among the flows crossing it, and a flow runs
// at the minimum of its per-resource shares.
//
// The occupancy-dependent capacity C(n) is how the paper's central
// node-level fact — a NUMA locality domain's memory bus saturates at about
// four cores (Fig. 3) — enters the simulator: each compute thread is one
// flow on its LD's memory resource, so adding threads beyond saturation
// adds no bandwidth.
//
// The equal-share-per-resource rule is a local approximation of max-min
// fairness: it never overcommits a resource and requires only neighbour
// updates when a flow starts or ends, keeping large strong-scaling
// simulations cheap. Bottlenecked-elsewhere flows may leave some capacity
// unused, which is conservative (never optimistic) for contended links.
//
// Flow objects carry resident completion closures and can be pooled via
// Recycle, so steady-state traffic (simnet's halo exchanges) allocates
// nothing once warm.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Capacity returns a resource's total capacity (bytes/s) when n ≥ 1 flows
// are active. Implementations must be positive and non-increasing per flow
// (C(n)/n non-increasing keeps the model stable).
type Capacity func(n int) float64

// ConstCapacity is a capacity independent of occupancy (network links).
func ConstCapacity(c float64) Capacity {
	return func(int) float64 { return c }
}

// TableCapacity interpolates total capacity from a per-occupancy table:
// table[i] is the capacity with i+1 active flows; occupancies beyond the
// table use the last entry. This encodes measured saturation curves like
// the STREAM and spMVM bandwidths of Fig. 3.
func TableCapacity(table []float64) Capacity {
	if len(table) == 0 {
		panic("fluid: empty capacity table")
	}
	t := append([]float64(nil), table...)
	return func(n int) float64 {
		if n <= 0 {
			n = 1
		}
		if n > len(t) {
			n = len(t)
		}
		return t[n-1]
	}
}

// Resource is one shared capacity (an LD memory bus, a NIC, a torus link).
type Resource struct {
	name  string
	capFn Capacity
	flows []*Flow
}

// Flow is an in-progress transfer.
type Flow struct {
	sys        *System
	id         int64
	resources  []*Resource
	remaining  float64
	rate       float64
	lastUpdate float64
	completion *des.Event
	schedT     float64 // virtual time completion is scheduled for
	stamp      int64   // last rebalance collection that saw this flow
	completeFn func()  // resident completion-event callback
	// Done fires when the transfer finishes.
	Done *des.Signal
}

// System owns the resources and flows of one simulation.
type System struct {
	sim    *des.Sim
	nextID int64
	stamp  int64     // collection epoch for touched-set dedup
	scr    [][]*Flow // pooled collection slices, one per rebalance nesting level
	depth  int
	pool   []*Flow // recycled flow objects
}

// NewSystem creates a flow system bound to a simulator.
func NewSystem(sim *des.Sim) *System { return &System{sim: sim} }

// NewResource creates a resource with the given capacity model.
func (s *System) NewResource(name string, c Capacity) *Resource {
	return &Resource{name: name, capFn: c}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Active returns the number of flows currently crossing the resource.
func (r *Resource) Active() int { return len(r.flows) }

// Start begins transferring `bytes` across the given resources and returns
// the flow. A zero-byte flow completes immediately. Must be called from
// simulation context (a proc or event callback). The resources slice is
// referenced, not copied, and released again when the flow is recycled.
//
//repro:noalloc
func (s *System) Start(bytes float64, resources ...*Resource) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("fluid: invalid flow size %g", bytes))
	}
	s.nextID++
	var f *Flow
	if n := len(s.pool); n > 0 {
		f = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
	} else {
		f = &Flow{sys: s, Done: s.sim.NewSignal()} //repro:alloc-ok pool warm-up; Recycle refills it
		f.completeFn = func() {                    //repro:alloc-ok resident closure, built once per pooled flow
			f.completion = nil // the firing event: drop before anything can reuse it
			now := s.sim.Now()
			f.advance(now)
			if f.remaining > 0 && f.rate > 0 {
				// A stale early event: the flow slowed down after this was
				// scheduled (rebalance leaves too-early events in place
				// rather than churning the heap). Re-arm at the true time —
				// unless the residue is below virtual-clock resolution
				// (now+dt == now), which would re-fire forever.
				dt := f.remaining / f.rate
				if now+dt > now {
					f.schedT = now + dt
					f.completion = s.sim.After(dt, f.completeFn)
					return
				}
			}
			s.complete(f)
		}
	}
	f.id = s.nextID
	f.resources = resources
	f.remaining = bytes
	f.rate = 0
	f.lastUpdate = s.sim.Now()
	f.completion = nil
	if bytes == 0 || len(resources) == 0 {
		// Infinitely fast: no shared medium, or nothing to move.
		f.Done.Fire()
		return f
	}
	touched := s.collectAttach(f)
	s.rebalance(touched)
	s.releaseScratch(touched)
	return f
}

// Recycle returns a finished flow to the pool for reuse by a later Start.
// Opt-in: callers that retain Done (or the flow) must not recycle. The
// flow must have completed; its Done signal is reset for the next use.
//
//repro:noalloc
func (s *System) Recycle(f *Flow) {
	if !f.Done.Fired() {
		panic("fluid: Recycle of an unfinished flow")
	}
	f.resources = nil
	f.Done.Reset()
	s.pool = append(s.pool, f) //repro:alloc-ok pool grows once to high-water mark
}

// grabScratch checks out a collection slice for the current nesting level.
//
//repro:noalloc
func (s *System) grabScratch() []*Flow {
	if s.depth == len(s.scr) {
		s.scr = append(s.scr, nil) //repro:alloc-ok one slot per observed nesting depth
	}
	sl := s.scr[s.depth][:0]
	s.depth++
	return sl
}

// releaseScratch returns a (possibly grown) collection slice to its level.
//
//repro:noalloc
func (s *System) releaseScratch(sl []*Flow) {
	s.depth--
	s.scr[s.depth] = sl
}

// collectAttach registers the flow on its resources and returns the
// deduplicated set of flows whose rate may have changed (the flow itself
// plus its neighbours on shared resources).
//
//repro:noalloc
func (s *System) collectAttach(f *Flow) []*Flow {
	s.stamp++
	st := s.stamp
	sl := s.grabScratch()
	f.stamp = st
	sl = append(sl, f) //repro:alloc-ok scratch grows once to high-water mark
	for _, r := range f.resources {
		for _, g := range r.flows {
			if g.stamp != st {
				g.stamp = st
				sl = append(sl, g) //repro:alloc-ok scratch grows once to high-water mark
			}
		}
		r.flows = append(r.flows, f) //repro:alloc-ok per-resource flow list grows once
	}
	return sl
}

// collectDetach removes a finished flow and returns the affected
// neighbours.
//
//repro:noalloc
func (s *System) collectDetach(f *Flow) []*Flow {
	s.stamp++
	st := s.stamp
	sl := s.grabScratch()
	for _, r := range f.resources {
		fl := r.flows
		for i, g := range fl {
			if g == f {
				n := len(fl) - 1
				fl[i] = fl[n]
				fl[n] = nil
				r.flows = fl[:n]
				break
			}
		}
		for _, g := range r.flows {
			if g.stamp != st {
				g.stamp = st
				sl = append(sl, g) //repro:alloc-ok scratch grows once to high-water mark
			}
		}
	}
	return sl
}

// advance charges a flow's progress up to the current time.
//
//repro:noalloc
func (f *Flow) advance(now float64) {
	if f.rate > 0 {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// currentRate computes the flow's fair share: min over resources of
// C_r(n_r)/n_r.
//
//repro:noalloc
func (f *Flow) currentRate() float64 {
	rate := math.Inf(1)
	for _, r := range f.resources {
		n := len(r.flows)
		share := r.capFn(n) / float64(n)
		if share < rate {
			rate = share
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// rebalance recomputes rates and completion events for the touched flows,
// in flow-id order so event scheduling (and hence same-time tie-breaking)
// is deterministic.
//
// Completion events are rescheduled lazily: a flow that SLOWED down keeps
// its existing (now too-early) event — firing early is harmless, the
// callback re-arms at the true time — because cancelling and re-pushing
// every neighbour on every attach turns the event heap into a garbage
// dump and dominated large-rank-count runs. Only a flow whose completion
// moved EARLIER (a neighbour left) must replace its event.
//
//repro:noalloc
func (s *System) rebalance(touched []*Flow) {
	now := s.sim.Now()
	sortFlowsByID(touched)
	for _, f := range touched {
		if f.Done.Fired() {
			continue
		}
		f.advance(now)
		f.rate = f.currentRate()
		if f.remaining <= 0 {
			if f.completion != nil {
				f.completion.Cancel()
				f.completion = nil
			}
			s.complete(f)
			continue
		}
		if f.rate <= 0 {
			continue
		}
		newT := now + f.remaining/f.rate
		if f.completion != nil && newT >= f.schedT {
			continue // existing event fires at or before newT; it re-arms itself
		}
		if f.completion != nil {
			f.completion.Cancel()
		}
		f.schedT = newT
		f.completion = s.sim.After(f.remaining/f.rate, f.completeFn)
	}
}

// sortFlowsByID is an insertion sort (the touched sets are small and
// sort.Slice's comparator forces an allocation on the hot path).
//
//repro:noalloc
func sortFlowsByID(sl []*Flow) {
	for i := 1; i < len(sl); i++ {
		f := sl[i]
		j := i - 1
		for j >= 0 && sl[j].id > f.id {
			sl[j+1] = sl[j]
			j--
		}
		sl[j+1] = f
	}
}

// complete finishes a flow: detaches it, fires Done, rebalances neighbours.
//
//repro:noalloc
func (s *System) complete(f *Flow) {
	if f.Done.Fired() {
		return
	}
	if f.completion != nil {
		f.completion.Cancel()
		f.completion = nil
	}
	neighbours := s.collectDetach(f)
	f.Done.Fire()
	s.rebalance(neighbours)
	s.releaseScratch(neighbours)
}
