package fluid

import (
	"math"
	"testing"

	"repro/internal/des"
)

const eps = 1e-9

func TestSingleFlowClosedForm(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("link", ConstCapacity(100))
	var done float64 = -1
	sim.Spawn("p", func(p *des.Proc) {
		f := sys.Start(500, r)
		p.Wait(f.Done)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-5) > eps {
		t.Errorf("500 bytes at 100 B/s finished at %g, want 5", done)
	}
}

func TestTwoEqualFlowsShare(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("link", ConstCapacity(100))
	var d1, d2 float64
	sim.Spawn("a", func(p *des.Proc) {
		f := sys.Start(500, r)
		p.Wait(f.Done)
		d1 = p.Now()
	})
	sim.Spawn("b", func(p *des.Proc) {
		f := sys.Start(500, r)
		p.Wait(f.Done)
		d2 = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share 100 B/s → 50 each → 10 s.
	if math.Abs(d1-10) > eps || math.Abs(d2-10) > eps {
		t.Errorf("shared flows finished at %g, %g, want 10, 10", d1, d2)
	}
}

func TestStaggeredFlowsRateChange(t *testing.T) {
	// Flow A starts alone (100 B/s); at t=2 flow B joins (both 50 B/s).
	// A has 300 left at t=2 → finishes at t=8. B (200 bytes): at t=8 it has
	// transferred 6s×50=300... B is 200 → done at t=6. Then A alone again at
	// t=6 with 300-200=... recompute: A: [0,2]: 200 done, 300 left.
	// [2,6]: B(200)@50 done at t=6; A moved 200, 100 left. [6,..] A@100 →
	// done t=7.
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("link", ConstCapacity(100))
	var da, db float64
	sim.Spawn("a", func(p *des.Proc) {
		f := sys.Start(500, r)
		p.Wait(f.Done)
		da = p.Now()
	})
	sim.Spawn("b", func(p *des.Proc) {
		p.Sleep(2)
		f := sys.Start(200, r)
		p.Wait(f.Done)
		db = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(db-6) > eps {
		t.Errorf("B finished at %g, want 6", db)
	}
	if math.Abs(da-7) > eps {
		t.Errorf("A finished at %g, want 7", da)
	}
}

func TestSaturatingCapacityTable(t *testing.T) {
	// Capacity table like an LD memory bus: 1 flow → 10, 2 → 16, 3 → 18,
	// 4+ → 18 (saturated at 3).
	table := []float64{10, 16, 18, 18}
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("ld", TableCapacity(table))
	finish := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		sim.Spawn("w", func(p *des.Proc) {
			f := sys.Start(90, r)
			p.Wait(f.Done)
			finish[i] = p.Now()
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 flows × 90 bytes = 360 total at 18 B/s aggregate → all done at 20.
	for i, f := range finish {
		if math.Abs(f-20) > eps {
			t.Errorf("flow %d finished at %g, want 20", i, f)
		}
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	// A flow crossing a fast and a slow resource runs at the slow rate.
	sim := des.New()
	sys := NewSystem(sim)
	fast := sys.NewResource("fast", ConstCapacity(1000))
	slow := sys.NewResource("slow", ConstCapacity(10))
	var done float64
	sim.Spawn("p", func(p *des.Proc) {
		f := sys.Start(100, fast, slow)
		p.Wait(f.Done)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-10) > eps {
		t.Errorf("bottlenecked flow finished at %g, want 10", done)
	}
}

func TestZeroByteFlowImmediate(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("r", ConstCapacity(1))
	var done float64 = -1
	sim.Spawn("p", func(p *des.Proc) {
		f := sys.Start(0, r)
		p.Wait(f.Done)
		done = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Errorf("zero-byte flow finished at %g, want 0", done)
	}
}

func TestNoResourceFlowImmediate(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	sim.Spawn("p", func(p *des.Proc) {
		f := sys.Start(100)
		p.Wait(f.Done)
		if p.Now() != 0 {
			t.Errorf("free flow took time %g", p.Now())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveCount(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("r", ConstCapacity(10))
	sim.Spawn("p", func(p *des.Proc) {
		f1 := sys.Start(100, r)
		if r.Active() != 1 {
			t.Errorf("active = %d, want 1", r.Active())
		}
		f2 := sys.Start(100, r)
		if r.Active() != 2 {
			t.Errorf("active = %d, want 2", r.Active())
		}
		p.WaitAll(f1.Done, f2.Done)
		if r.Active() != 0 {
			t.Errorf("active after completion = %d, want 0", r.Active())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConservationProperty(t *testing.T) {
	// Random staggered flows on one resource: total completion time must be
	// at least total bytes / max capacity (work conservation upper bound on
	// throughput) and the system must drain.
	sim := des.New()
	sys := NewSystem(sim)
	cap := 50.0
	r := sys.NewResource("r", ConstCapacity(cap))
	var totalBytes float64
	var last float64
	for i := 0; i < 20; i++ {
		start := float64(i%7) * 0.3
		bytes := float64(10 + (i*37)%200)
		totalBytes += bytes
		sim.Spawn("f", func(p *des.Proc) {
			p.Sleep(start)
			f := sys.Start(bytes, r)
			p.Wait(f.Done)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if last < totalBytes/cap-eps {
		t.Errorf("drained at %g, faster than capacity bound %g", last, totalBytes/cap)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		sim := des.New()
		sys := NewSystem(sim)
		r1 := sys.NewResource("a", TableCapacity([]float64{10, 15, 18}))
		r2 := sys.NewResource("b", ConstCapacity(12))
		var finishes []float64
		for i := 0; i < 12; i++ {
			i := i
			sim.Spawn("f", func(p *des.Proc) {
				p.Sleep(float64(i) * 0.1)
				var f *Flow
				if i%3 == 0 {
					f = sys.Start(40, r1, r2)
				} else {
					f = sys.Start(25, r1)
				}
				p.Wait(f.Done)
				finishes = append(finishes, p.Now())
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return finishes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestInvalidFlowPanics(t *testing.T) {
	sim := des.New()
	sys := NewSystem(sim)
	r := sys.NewResource("r", ConstCapacity(1))
	sim.Spawn("p", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative flow size did not panic")
			}
		}()
		sys.Start(-1, r)
	})
	_ = sim.Run()
}

func TestTableCapacityClamps(t *testing.T) {
	c := TableCapacity([]float64{5, 8})
	if c(0) != 5 || c(1) != 5 || c(2) != 8 || c(9) != 8 {
		t.Errorf("table clamping wrong: %g %g %g %g", c(0), c(1), c(2), c(9))
	}
}
