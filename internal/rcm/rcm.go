// Package rcm implements the Reverse Cuthill–McKee reordering the paper
// applied to the Hamiltonian matrix (§1.3.1) to improve RHS locality and
// push interprocess communication toward near-neighbour exchange.
package rcm

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Permutation maps new index → old index (perm) and old → new (inv).
type Permutation struct {
	Perm []int32 // Perm[new] = old
	Inv  []int32 // Inv[old] = new
}

// Identity returns the identity permutation of size n.
func Identity(n int) *Permutation {
	p := &Permutation{Perm: make([]int32, n), Inv: make([]int32, n)}
	for i := range p.Perm {
		p.Perm[i] = int32(i)
		p.Inv[i] = int32(i)
	}
	return p
}

// Validate checks that the permutation is a bijection.
func (p *Permutation) Validate() error {
	n := len(p.Perm)
	if len(p.Inv) != n {
		return fmt.Errorf("rcm: perm/inv length mismatch %d vs %d", n, len(p.Inv))
	}
	for i, old := range p.Perm {
		if old < 0 || int(old) >= n {
			return fmt.Errorf("rcm: Perm[%d] = %d out of range", i, old)
		}
		if p.Inv[old] != int32(i) {
			return fmt.Errorf("rcm: Inv[Perm[%d]] = %d, want %d", i, p.Inv[old], i)
		}
	}
	return nil
}

// ReverseCuthillMcKee computes the RCM ordering of a structurally symmetric
// sparse matrix. Unsymmetric patterns are symmetrized implicitly (the
// ordering uses A+Aᵀ adjacency). Each connected component is seeded with a
// pseudo-peripheral vertex found by repeated BFS.
func ReverseCuthillMcKee(a *matrix.CSR) *Permutation {
	n := a.NumRows
	adj := symmetrizedAdjacency(a)
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		deg[i] = int32(len(adj[i]))
	}

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		seed := pseudoPeripheral(int32(start), adj, deg)
		// Cuthill–McKee BFS from the seed, neighbours by ascending degree.
		visited[seed] = true
		queue = append(queue[:0], seed)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			nbrs := make([]int32, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool {
				if deg[nbrs[i]] != deg[nbrs[j]] {
					return deg[nbrs[i]] < deg[nbrs[j]]
				}
				return nbrs[i] < nbrs[j]
			})
			queue = append(queue, nbrs...)
		}
	}

	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	p := &Permutation{Perm: order, Inv: make([]int32, n)}
	for newIdx, old := range order {
		p.Inv[old] = int32(newIdx)
	}
	return p
}

// symmetrizedAdjacency builds adjacency lists of A+Aᵀ without self loops.
func symmetrizedAdjacency(a *matrix.CSR) [][]int32 {
	n := a.NumRows
	adj := make([][]int32, n)
	add := func(u, v int32) {
		adj[u] = append(adj[u], v)
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if int(j) == i {
				continue
			}
			add(int32(i), j)
			add(j, int32(i))
		}
	}
	// Dedup each list.
	for i := range adj {
		l := adj[i]
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		out := l[:0]
		var prev int32 = -1
		for _, v := range l {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[i] = out
	}
	return adj
}

// pseudoPeripheral finds a vertex of (locally) maximal eccentricity in the
// component containing start, via the standard Gibbs–Poole–Stockmeyer-style
// iteration: repeat BFS and jump to a minimum-degree vertex of the last
// level until the eccentricity stops growing.
func pseudoPeripheral(start int32, adj [][]int32, deg []int32) int32 {
	cur := start
	curEcc := -1
	level := make(map[int32]int)
	for {
		last, ecc := bfsLastLevel(cur, adj, level)
		if ecc <= curEcc {
			return cur
		}
		curEcc = ecc
		// Pick the minimum-degree vertex in the last level.
		best := last[0]
		for _, v := range last[1:] {
			if deg[v] < deg[best] || (deg[v] == deg[best] && v < best) {
				best = v
			}
		}
		cur = best
	}
}

// bfsLastLevel runs BFS from s, returning the vertices of the deepest level
// and the eccentricity. The level map is reused between calls.
func bfsLastLevel(s int32, adj [][]int32, level map[int32]int) (last []int32, ecc int) {
	for k := range level {
		delete(level, k)
	}
	level[s] = 0
	queue := []int32{s}
	last = []int32{s}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, w := range adj[v] {
			if _, ok := level[w]; !ok {
				level[w] = level[v] + 1
				if level[w] > ecc {
					ecc = level[w]
					last = last[:0]
				}
				if level[w] == ecc {
					last = append(last, w)
				}
				queue = append(queue, w)
			}
		}
	}
	return last, ecc
}

// ApplySymmetric returns P·A·Pᵀ: row and column i of the result correspond
// to row and column Perm[i] of A.
func ApplySymmetric(a *matrix.CSR, p *Permutation) *matrix.CSR {
	n := a.NumRows
	out := &matrix.CSR{NumRows: n, NumCols: a.NumCols, RowPtr: make([]int64, n+1)}
	out.ColIdx = make([]int32, 0, a.Nnz())
	out.Val = make([]float64, 0, a.Nnz())
	for newI := 0; newI < n; newI++ {
		old := p.Perm[newI]
		cols, vals := a.Row(int(old))
		base := len(out.ColIdx)
		for k, c := range cols {
			out.ColIdx = append(out.ColIdx, p.Inv[c])
			out.Val = append(out.Val, vals[k])
		}
		sort.Sort(&pairSorter{out.ColIdx[base:], out.Val[base:]})
		out.RowPtr[newI+1] = int64(len(out.ColIdx))
	}
	return out
}

type pairSorter struct {
	cols []int32
	vals []float64
}

func (s *pairSorter) Len() int           { return len(s.cols) }
func (s *pairSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *pairSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Bandwidth returns the maximum |i-j| over stored entries — the quantity RCM
// minimizes heuristically.
func Bandwidth(a *matrix.CSR) int64 {
	var bw int64
	for i := 0; i < a.NumRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := int64(i) - int64(a.ColIdx[k])
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the envelope size Σ_i (i - min_j(i)), a finer locality
// metric than bandwidth.
func Profile(a *matrix.CSR) int64 {
	var prof int64
	for i := 0; i < a.NumRows; i++ {
		minJ := int64(i)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int64(a.ColIdx[k]) < minJ {
				minJ = int64(a.ColIdx[k])
			}
		}
		prof += int64(i) - minJ
	}
	return prof
}
