package rcm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/genmat"
	"repro/internal/matrix"
)

func gridLaplacian(nx, ny int) *matrix.CSR {
	n := nx * ny
	var entries []matrix.Coord
	id := func(x, y int) int32 { return int32(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			entries = append(entries, matrix.Coord{Row: i, Col: i, Val: 4})
			if x > 0 {
				entries = append(entries, matrix.Coord{Row: i, Col: id(x-1, y), Val: -1})
			}
			if x < nx-1 {
				entries = append(entries, matrix.Coord{Row: i, Col: id(x+1, y), Val: -1})
			}
			if y > 0 {
				entries = append(entries, matrix.Coord{Row: i, Col: id(x, y-1), Val: -1})
			}
			if y < ny-1 {
				entries = append(entries, matrix.Coord{Row: i, Col: id(x, y+1), Val: -1})
			}
		}
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		panic(err)
	}
	return a
}

// shuffled returns P·A·Pᵀ for a random permutation, destroying locality.
func shuffled(a *matrix.CSR, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := a.NumRows
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) {
		p.Perm[i], p.Perm[j] = p.Perm[j], p.Perm[i]
	})
	for i, old := range p.Perm {
		p.Inv[old] = int32(i)
	}
	return ApplySymmetric(a, p)
}

func TestRCMPermutationValid(t *testing.T) {
	a := gridLaplacian(12, 9)
	p := ReverseCuthillMcKee(a)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Perm) != a.NumRows {
		t.Fatalf("perm length %d, want %d", len(p.Perm), a.NumRows)
	}
}

func TestRCMReducesBandwidthOfShuffledGrid(t *testing.T) {
	a := shuffled(gridLaplacian(16, 16), 4)
	before := Bandwidth(a)
	p := ReverseCuthillMcKee(a)
	b := ApplySymmetric(a, p)
	after := Bandwidth(b)
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d → %d", before, after)
	}
	// A 16x16 grid has optimal bandwidth 16; RCM should land within ~2x.
	if after > 40 {
		t.Errorf("RCM bandwidth %d too large for 16x16 grid", after)
	}
	if Profile(b) >= Profile(a) {
		t.Errorf("RCM did not reduce profile: %d → %d", Profile(a), Profile(b))
	}
}

func TestApplySymmetricPreservesOperator(t *testing.T) {
	a := gridLaplacian(7, 5)
	p := ReverseCuthillMcKee(a)
	b := ApplySymmetric(a, p)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != b.Nnz() {
		t.Fatalf("nnz changed: %d → %d", a.Nnz(), b.Nnz())
	}
	// Verify (P A Pᵀ)(Px) = P(Ax): multiply both ways and compare.
	n := a.NumRows
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Px in new ordering: (Px)[new] = x[Perm[new]].
	px := make([]float64, n)
	for newI, old := range p.Perm {
		px[newI] = x[old]
	}
	y1 := make([]float64, n)
	b.MulVec(y1, px)
	y0 := make([]float64, n)
	a.MulVec(y0, x)
	for newI, old := range p.Perm {
		if math.Abs(y1[newI]-y0[old]) > 1e-12 {
			t.Fatalf("permuted multiply mismatch at %d: %g vs %g", newI, y1[newI], y0[old])
		}
	}
}

func TestRCMOnDisconnectedGraph(t *testing.T) {
	// Two disjoint blocks: the ordering must cover both components.
	d := [][]float64{
		{1, 1, 0, 0},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
		{0, 0, 1, 1},
	}
	a := matrix.NewCSRFromDense(d)
	p := ReverseCuthillMcKee(a)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRCMOnDiagonalMatrix(t *testing.T) {
	d := [][]float64{{1, 0}, {0, 2}}
	p := ReverseCuthillMcKee(matrix.NewCSRFromDense(d))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRCMDeterministic(t *testing.T) {
	a := shuffled(gridLaplacian(10, 10), 9)
	p1 := ReverseCuthillMcKee(a)
	p2 := ReverseCuthillMcKee(a)
	for i := range p1.Perm {
		if p1.Perm[i] != p2.Perm[i] {
			t.Fatal("RCM not deterministic")
		}
	}
}

func TestRCMPropertyBijective(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
			N: n, Bandwidth: 1 + rng.Intn(n), PerRow: 1 + rng.Intn(5),
			Seed: uint64(seed) + 1, Symmetric: true,
		})
		if err != nil {
			return false
		}
		a := matrix.Materialize(g)
		p := ReverseCuthillMcKee(a)
		return p.Validate() == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRCMOnHolsteinDoesNotHelpMuch mirrors the paper's observation that RCM
// provides no real advantage over the HMeP ordering: the Hamiltonian's
// bandwidth is dominated by the tensor-product hopping structure.
func TestRCMOnHolsteinDoesNotHelpMuch(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 2,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.PhononsContiguous,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	p := ReverseCuthillMcKee(a)
	b := ApplySymmetric(a, p)
	// RCM may improve the raw bandwidth metric somewhat, but not by an order
	// of magnitude — record the ratio as a sanity check.
	rb, ra := Bandwidth(b), Bandwidth(a)
	if rb > ra {
		t.Logf("RCM increased Holstein bandwidth: %d → %d (allowed, heuristic)", ra, rb)
	}
	if rb*20 < ra {
		t.Errorf("RCM reduced Holstein bandwidth by >20x (%d → %d); unexpected for this structure", ra, rb)
	}
}
