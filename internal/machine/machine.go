// Package machine describes the benchmark systems of the paper (Fig. 2):
// dual-socket Intel Nehalem EP and Westmere EP nodes on a QDR InfiniBand
// fat tree, and dual-socket AMD Magny Cours nodes (Cray XE6) on a Gemini
// 2-D torus. A node is a set of ccNUMA locality domains (LDs); each LD has
// a saturating memory-bandwidth curve calibrated against the paper's
// published STREAM and spMVM measurements (§1.3.2, Fig. 3).
//
// All rates are bytes/second, all times seconds.
package machine

import "fmt"

// GB is 10⁹ bytes (bandwidth vendors' gigabyte).
const GB = 1e9

// NodeSpec describes one compute node.
type NodeSpec struct {
	Name string

	Sockets      int
	LDsPerSocket int // NUMA locality domains per socket (Magny Cours: 2)
	CoresPerLD   int
	SMTWays      int // hardware threads per core (1 = no SMT)

	// StreamBW[i] is the effective STREAM-triad bandwidth of one LD with
	// i+1 active cores (write-allocate included, as in the paper's scaled
	// numbers). SpmvBW[i] is the bandwidth the CRS spMVM kernel achieves —
	// lower than STREAM and saturating later (Fig. 3a).
	StreamBW []float64
	SpmvBW   []float64
}

// LDsPerNode returns the number of NUMA locality domains per node.
func (n *NodeSpec) LDsPerNode() int { return n.Sockets * n.LDsPerSocket }

// CoresPerNode returns the number of physical cores per node.
func (n *NodeSpec) CoresPerNode() int { return n.LDsPerNode() * n.CoresPerLD }

// NodeStreamBW returns the saturated full-node STREAM bandwidth.
func (n *NodeSpec) NodeStreamBW() float64 {
	return float64(n.LDsPerNode()) * n.StreamBW[len(n.StreamBW)-1]
}

// NodeSpmvBW returns the saturated full-node spMVM-achievable bandwidth.
func (n *NodeSpec) NodeSpmvBW() float64 {
	return float64(n.LDsPerNode()) * n.SpmvBW[len(n.SpmvBW)-1]
}

// Validate checks internal consistency.
func (n *NodeSpec) Validate() error {
	if n.Sockets < 1 || n.LDsPerSocket < 1 || n.CoresPerLD < 1 || n.SMTWays < 1 {
		return fmt.Errorf("machine: %s has nonpositive topology", n.Name)
	}
	if len(n.StreamBW) != n.CoresPerLD || len(n.SpmvBW) != n.CoresPerLD {
		return fmt.Errorf("machine: %s bandwidth tables must have %d entries", n.Name, n.CoresPerLD)
	}
	for i := 0; i < n.CoresPerLD; i++ {
		if n.StreamBW[i] <= 0 || n.SpmvBW[i] <= 0 {
			return fmt.Errorf("machine: %s nonpositive bandwidth at %d cores", n.Name, i+1)
		}
		if n.SpmvBW[i] > n.StreamBW[i]*1.05 {
			return fmt.Errorf("machine: %s spMVM bandwidth exceeds STREAM at %d cores", n.Name, i+1)
		}
		if i > 0 && (n.StreamBW[i] < n.StreamBW[i-1] || n.SpmvBW[i] < n.SpmvBW[i-1]) {
			return fmt.Errorf("machine: %s bandwidth table not monotone at %d cores", n.Name, i+1)
		}
	}
	return nil
}

// NetKind selects the interconnect model.
type NetKind int

const (
	// FatTree is a fully nonblocking fat tree (QDR InfiniBand): the only
	// shared resources are each node's injection and ejection links.
	FatTree NetKind = iota
	// Torus2D is a 2-D torus with dimension-ordered routing and link
	// contention (Cray Gemini).
	Torus2D
)

func (k NetKind) String() string {
	switch k {
	case FatTree:
		return "fat-tree"
	case Torus2D:
		return "torus-2d"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// NetSpec describes the interconnect.
type NetSpec struct {
	Kind NetKind

	// LinkBW is the bandwidth of one network link (per direction):
	// the NIC link for FatTree, one torus link for Torus2D.
	LinkBW float64
	// Latency is the base internode MPI latency.
	Latency float64
	// HopLatency is the additional latency per torus hop (FatTree: unused).
	HopLatency float64

	// IntraBW and IntraLatency model intranode MPI (shared-memory copies).
	IntraBW      float64
	IntraLatency float64

	// EagerThreshold is the message size (bytes) below which the eager
	// protocol applies: the transfer starts at send time without receiver
	// progress. At or above it, the rendezvous protocol requires both
	// endpoints to drive MPI progress — the mechanism behind the paper's
	// "nonblocking MPI does not overlap" observation.
	EagerThreshold int
}

// ClusterSpec is a complete machine description.
type ClusterSpec struct {
	Name string
	Node NodeSpec
	Net  NetSpec
}

// Validate checks the full specification.
func (c *ClusterSpec) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.Net.LinkBW <= 0 || c.Net.IntraBW <= 0 {
		return fmt.Errorf("machine: %s nonpositive network bandwidth", c.Name)
	}
	if c.Net.Latency < 0 || c.Net.HopLatency < 0 || c.Net.IntraLatency < 0 {
		return fmt.Errorf("machine: %s negative latency", c.Name)
	}
	return nil
}

// NehalemEP returns the Intel Nehalem EP node (Xeon X5550): two sockets,
// one LD each, four cores per LD, SMT. The spMVM curve reproduces the
// measured 0.91/1.50/1.95/2.25 GFlop/s of Fig. 3a at B_CRS(κ=2.5) ≈ 8.05
// bytes/flop: 7.3/12.1/15.7/18.1 GB/s, against 21.2 GB/s STREAM.
func NehalemEP() NodeSpec {
	return NodeSpec{
		Name:    "Nehalem EP (X5550)",
		Sockets: 2, LDsPerSocket: 1, CoresPerLD: 4, SMTWays: 2,
		StreamBW: []float64{13.0 * GB, 19.5 * GB, 21.0 * GB, 21.2 * GB},
		SpmvBW:   []float64{7.3 * GB, 12.1 * GB, 15.7 * GB, 18.1 * GB},
	}
}

// WestmereEP returns the Intel Westmere EP node (Xeon X5650): like Nehalem
// but six cores per socket at the same per-core L3 share.
func WestmereEP() NodeSpec {
	return NodeSpec{
		Name:    "Westmere EP (X5650)",
		Sockets: 2, LDsPerSocket: 1, CoresPerLD: 6, SMTWays: 2,
		StreamBW: []float64{13.5 * GB, 20.0 * GB, 21.8 * GB, 22.3 * GB, 22.4 * GB, 22.4 * GB},
		SpmvBW:   []float64{7.5 * GB, 12.5 * GB, 16.3 * GB, 18.9 * GB, 19.8 * GB, 20.3 * GB},
	}
}

// MagnyCours returns the AMD Magny Cours node (Opteron 6172) of the Cray
// XE6: a 12-core package is two 6-core dies with separate memory
// controllers, so a two-socket node has four LDs with two DDR3 channels
// each — weaker per LD than Westmere but ~25% faster per node (Fig. 3b).
func MagnyCours() NodeSpec {
	return NodeSpec{
		Name:    "AMD Magny Cours (Opteron 6172)",
		Sockets: 2, LDsPerSocket: 2, CoresPerLD: 6, SMTWays: 1,
		StreamBW: []float64{8.5 * GB, 12.2 * GB, 13.5 * GB, 14.0 * GB, 14.2 * GB, 14.3 * GB},
		SpmvBW:   []float64{5.5 * GB, 9.0 * GB, 11.3 * GB, 12.4 * GB, 12.8 * GB, 13.0 * GB},
	}
}

// WestmereCluster returns the Westmere/QDR-InfiniBand cluster of the study.
func WestmereCluster() ClusterSpec {
	return ClusterSpec{
		Name: "Westmere + QDR IB fat tree",
		Node: WestmereEP(),
		Net: NetSpec{
			Kind:           FatTree,
			LinkBW:         3.4 * GB,
			Latency:        1.7e-6,
			IntraBW:        15.0 * GB,
			IntraLatency:   0.5e-6,
			EagerThreshold: 16 << 10,
		},
	}
}

// NehalemCluster returns a Nehalem/QDR-InfiniBand cluster (Fig. 3a host).
func NehalemCluster() ClusterSpec {
	c := WestmereCluster()
	c.Name = "Nehalem + QDR IB fat tree"
	c.Node = NehalemEP()
	return c
}

// CrayXE6 returns the Cray XE6: Magny Cours nodes on a Gemini 2-D torus.
// A Gemini link is faster than QDR IB, but dimension-ordered torus routing
// shares links between flows, so non-nearest-neighbour traffic contends —
// the effect the paper observed at larger node counts.
func CrayXE6() ClusterSpec {
	return ClusterSpec{
		Name: "Cray XE6 (Magny Cours + Gemini 2D torus)",
		Node: MagnyCours(),
		Net: NetSpec{
			Kind:           Torus2D,
			LinkBW:         4.7 * GB,
			Latency:        1.4e-6,
			HopLatency:     0.1e-6,
			IntraBW:        18.0 * GB,
			IntraLatency:   0.5e-6,
			EagerThreshold: 16 << 10,
		},
	}
}
