package machine

import (
	"math"
	"testing"
)

func TestAllSpecsValid(t *testing.T) {
	for _, spec := range []ClusterSpec{WestmereCluster(), NehalemCluster(), CrayXE6()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestTopologyCounts(t *testing.T) {
	neh := NehalemEP()
	if neh.LDsPerNode() != 2 || neh.CoresPerNode() != 8 {
		t.Errorf("Nehalem: %d LDs, %d cores", neh.LDsPerNode(), neh.CoresPerNode())
	}
	wsm := WestmereEP()
	if wsm.LDsPerNode() != 2 || wsm.CoresPerNode() != 12 {
		t.Errorf("Westmere: %d LDs, %d cores", wsm.LDsPerNode(), wsm.CoresPerNode())
	}
	mc := MagnyCours()
	// The paper's unique feature: four NUMA LDs per two-socket node.
	if mc.LDsPerNode() != 4 || mc.CoresPerNode() != 24 {
		t.Errorf("Magny Cours: %d LDs, %d cores", mc.LDsPerNode(), mc.CoresPerNode())
	}
	if mc.SMTWays != 1 || wsm.SMTWays != 2 {
		t.Error("SMT configuration wrong")
	}
}

// TestPaperCalibration checks the quantitative anchors of §2 / Fig. 3.
func TestPaperCalibration(t *testing.T) {
	neh := NehalemEP()
	// Single socket spMVM draws 18.1 GB/s against 21.2 GB/s STREAM (§2):
	// "more than 85% of the STREAM bandwidth can be reached".
	ratio := neh.SpmvBW[3] / neh.StreamBW[3]
	if ratio < 0.85 {
		t.Errorf("Nehalem spMVM/STREAM at 4 cores = %.3f, paper says > 0.85", ratio)
	}
	// Fig. 3a performance scaling: 0.91 → 2.25 GFlop/s from 1 to 4 cores
	// (ratio ≈ 2.47) at fixed code balance; our bandwidth table must
	// reproduce that ratio.
	scale := neh.SpmvBW[3] / neh.SpmvBW[0]
	if math.Abs(scale-2.47) > 0.15 {
		t.Errorf("Nehalem 4-core/1-core spMVM ratio %.2f, paper 2.47", scale)
	}
	// Magny Cours node ~25% faster than Westmere node (Fig. 3b) despite
	// a weaker single LD.
	wsm := WestmereEP()
	mc := MagnyCours()
	nodeRatio := mc.NodeSpmvBW() / wsm.NodeSpmvBW()
	if nodeRatio < 1.15 || nodeRatio > 1.40 {
		t.Errorf("MagnyCours/Westmere node ratio %.2f, paper ≈ 1.25", nodeRatio)
	}
	if mc.SpmvBW[5] >= wsm.SpmvBW[5] {
		t.Error("Magny Cours LD should be weaker than Westmere LD")
	}
}

func TestSaturationBehaviour(t *testing.T) {
	// STREAM saturates early; spMVM keeps benefiting through 4 cores
	// ("the spMVM bandwidth ... still benefits from the use of all cores").
	for _, n := range []NodeSpec{NehalemEP(), WestmereEP(), MagnyCours()} {
		streamGain := n.StreamBW[len(n.StreamBW)-1] / n.StreamBW[1]
		if streamGain > 1.25 {
			t.Errorf("%s: STREAM gains %.2fx beyond 2 cores; should saturate early", n.Name, streamGain)
		}
		spmvGain3to4 := n.SpmvBW[3] / n.SpmvBW[2]
		if spmvGain3to4 < 1.05 {
			t.Errorf("%s: spMVM gains only %.3fx from 3→4 cores; should still improve", n.Name, spmvGain3to4)
		}
	}
}

func TestCrayNetworkFasterLinkThanIB(t *testing.T) {
	// "The internode bandwidth of the 2D torus network is beyond the
	// capability of QDR InfiniBand."
	ib := WestmereCluster().Net
	gem := CrayXE6().Net
	if gem.LinkBW <= ib.LinkBW {
		t.Errorf("Gemini link %.1f GB/s not above QDR IB %.1f GB/s", gem.LinkBW/GB, ib.LinkBW/GB)
	}
	if gem.Kind != Torus2D || ib.Kind != FatTree {
		t.Error("network kinds wrong")
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := NehalemEP()
	bad.StreamBW = bad.StreamBW[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short bandwidth table accepted")
	}
	bad2 := NehalemEP()
	bad2.SpmvBW[0] = bad2.StreamBW[0] * 2
	if err := bad2.Validate(); err == nil {
		t.Error("spMVM above STREAM accepted")
	}
	bad3 := NehalemEP()
	bad3.SpmvBW[2] = bad3.SpmvBW[0] / 2
	if err := bad3.Validate(); err == nil {
		t.Error("non-monotone table accepted")
	}
	bad4 := WestmereCluster()
	bad4.Net.LinkBW = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero link bandwidth accepted")
	}
}
