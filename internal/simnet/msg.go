package simnet

import (
	"repro/internal/core"
	"repro/internal/fluid"

	"repro/internal/des"
)

// ckey identifies one ordered message channel (src, dst, tag). Matching is
// FIFO per channel, like every MPI implementation, which is what makes
// payload results deterministic regardless of event interleaving.
type ckey struct{ src, dst, tag int }

func (k ckey) less(o ckey) bool {
	if k.src != o.src {
		return k.src < o.src
	}
	if k.dst != o.dst {
		return k.dst < o.dst
	}
	return k.tag < o.tag
}

// queue is a FIFO with head compaction so steady-state push/pop reuses the
// same backing array.
type queue[T any] struct {
	items []T
	head  int
}

//repro:noalloc
func (q *queue[T]) push(v T) {
	q.items = append(q.items, v) //repro:alloc-ok backing array grows once to high-water mark
}

//repro:noalloc
func (q *queue[T]) pop() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

//repro:noalloc
func (q *queue[T]) len() int { return len(q.items) - q.head }

// sq returns (creating on first use) the send queue of a channel.
//
//repro:noalloc
func (w *world) sq(k ckey) *queue[*msg] {
	if q, ok := w.sendQ[k]; ok {
		return q
	}
	q := &queue[*msg]{} //repro:alloc-ok one queue per channel, cached forever
	w.sendQ[k] = q      //repro:alloc-ok grow-once channel map
	return q
}

//repro:noalloc
func (w *world) rq(k ckey) *queue[*rpost] {
	if q, ok := w.recvQ[k]; ok {
		return q
	}
	q := &queue[*rpost]{} //repro:alloc-ok one queue per channel, cached forever
	w.recvQ[k] = q        //repro:alloc-ok grow-once channel map
	return q
}

// msg is one in-flight message. Transient Isends allocate one per call
// (alloc-ok: the runtime's hot paths use persistent channels); persistent
// sends keep resident or pooled msgs with resident event closures.
type msg struct {
	w        *world
	src, dst int
	tag      int

	eager bool    // wire size below the eager threshold
	wireB float64 // modeled bytes on the wire (payload + header)
	data  []float64
	n     int

	owner *psend // pooled eager persistent-send msgs return here

	matched   bool
	started   bool // transfer scheduled (guards double-start from stall lists)
	arrived   bool // payload has reached the receiver in virtual time
	delivered bool

	post *rpost
	path *pathEnt
	flow *fluid.Flow

	// sendSig, when non-nil (rendezvous persistent sends), fires at
	// delivery so the sender's Wait models a blocking MPI_Wait.
	sendSig *des.Signal

	flowStartFn func() // resident: begin the fluid flow
	arriveFn    func() // resident: flow done → payload arrived
}

// newMsg wires the resident event closures.
func (w *world) newMsg() *msg {
	m := &msg{w: w}
	m.flowStartFn = func() { w.flowStart(m) }
	m.arriveFn = func() { w.arrive(m) }
	return m
}

// rpost is one posted receive: transient (Irecv) or resident (RecvInit).
type rpost struct {
	c        *comm
	src, tag int
	buf      []float64
	sig      *des.Signal
	err      error
	n        int // elements delivered
	matched  bool
	queued   bool // posted and not yet matched (precv in-flight guard)
	gen      int  // posting generation; retires stale deadline watch entries
	m        *msg // the matched message, for deadline attribution
}

// wireBytes is the modeled on-wire size of an n-element message: payload
// plus a fixed per-message header.
const msgHeaderB = 64.0

//repro:noalloc
func wireBytes(n int) float64 { return 8*float64(n) + msgHeaderB }

// send enters a message into the world: eager transfers launch
// immediately (buffered semantics — the §3 eager protocol needs no
// receiver participation), then the message matches a posted receive or
// queues. Caller holds w.mu.
//
//repro:noalloc
func (w *world) send(m *msg) {
	w.stuck = 0 // a fresh post is real progress for the deadline backstop
	m.path = w.pathFor(m.src, m.dst)
	if m.eager {
		m.started = true
		w.sim.After(m.path.lat+w.extraLat(m.src), m.flowStartFn)
	}
	k := ckey{m.src, m.dst, m.tag}
	if p, ok := w.rq(k).pop(); ok {
		w.match(m, p)
		return
	}
	w.sq(k).push(m)
}

// recv posts a receive: matches the oldest queued message on its channel
// or queues. Caller holds w.mu.
//
//repro:noalloc
func (w *world) recv(p *rpost) {
	k := ckey{p.src, p.c.rank, p.tag}
	if m, ok := w.sq(k).pop(); ok {
		w.match(m, p)
		return
	}
	w.rq(k).push(p)
}

// match pairs a message with a receive. Truncation is detected here —
// like chanmpi, the receive completes with a *TruncationError and the
// world fails. A rendezvous message whose receiver just appeared may now
// start (if both endpoints are making MPI progress).
//
//repro:noalloc
func (w *world) match(m *msg, p *rpost) {
	m.matched, p.matched, p.queued = true, true, false
	if m.n > len(p.buf) {
		p.err = &core.TruncationError{Len: m.n, Cap: len(p.buf), Src: m.src, Tag: m.tag}
		p.sig.Fire()
		w.fail(p.err)
		return
	}
	m.post = p
	p.m = m
	if m.arrived {
		w.deliver(m)
		return
	}
	if !m.eager && !m.started {
		w.tryStart(m)
	}
}

// tryStart attempts to begin a matched rendezvous transfer. The §3 model:
// without an asynchronous progress thread, the transfer advances only
// while BOTH endpoints are inside MPI calls; otherwise the message parks
// on both endpoints' stall lists and is retried when either re-enters MPI.
//
//repro:noalloc
func (w *world) tryStart(m *msg) {
	if m.started {
		return
	}
	src, dst := w.comms[m.src], w.comms[m.dst]
	if !src.driving() || !dst.driving() {
		// Parked on both ends (duplicates are fine: started guards).
		src.stalled = append(src.stalled, m) //repro:alloc-ok stall list grows once to high-water mark
		dst.stalled = append(dst.stalled, m) //repro:alloc-ok stall list grows once to high-water mark
		return
	}
	m.started = true
	w.sim.After(w.rdvLat+m.path.lat+w.extraLat(m.src), m.flowStartFn)
}

// extraLat is the injected gray-failure latency of a message's source at
// the current virtual time: 0 for healthy ranks and before a slowdown's
// onset. Caller holds w.mu.
//
//repro:noalloc
func (w *world) extraLat(src int) float64 {
	if w.slowOf == nil {
		return 0
	}
	if s := &w.slowOf[src]; s.Extra > 0 && w.sim.Now() >= s.After {
		return s.Extra
	}
	return 0
}

// flowStart begins the wire transfer as a fluid flow over the message's
// route. Runs as an event callback (driver holds w.mu).
//
//repro:noalloc
func (w *world) flowStart(m *msg) {
	m.flow = w.sys.Start(m.wireB, m.path.res...)
	m.flow.Done.OnFire(m.arriveFn)
}

// arrive marks the payload as having reached the receiver in virtual time
// and delivers it if a receive is already matched. Runs inside the flow's
// Done callback (driver holds w.mu).
//
//repro:noalloc
func (w *world) arrive(m *msg) {
	m.arrived = true
	if m.flow != nil {
		w.sys.Recycle(m.flow)
		m.flow = nil
	}
	if m.post != nil {
		w.deliver(m)
	}
}

// deliver copies the payload into the receive buffer — the bit-identity
// half of the transport — and completes both sides. Caller holds w.mu.
//
//repro:noalloc
func (w *world) deliver(m *msg) {
	if m.delivered || w.err != nil {
		return
	}
	m.delivered = true
	p := m.post
	copy(p.buf[:m.n], m.data[:m.n])
	p.n = m.n
	if m.sendSig != nil {
		m.sendSig.Fire()
	}
	p.sig.Fire()
	if m.owner != nil {
		m.owner.recycleMsg(m)
	}
}
