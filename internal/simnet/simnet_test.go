package simnet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/machine"
)

// session2 builds a 2-rank session on the default machine.
func session2(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionEagerPingPong(t *testing.T) {
	// An eager-sized message moves real data and nonzero virtual time.
	s := session2(t)
	got := make([]float64, 3)
	var tRecv float64
	s.Spawn(0, func(p *des.Proc, c core.Comm) error {
		req, err := c.Isend(1, 7, []float64{1, 2, 3})
		if err != nil {
			return err
		}
		return req.Wait()
	})
	s.Spawn(1, func(p *des.Proc, c core.Comm) error {
		req, err := c.Irecv(0, 7, got)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		tRecv = p.Now()
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("payload corrupted: %v", got)
	}
	if tRecv <= 0 {
		t.Fatalf("delivery at t=%g, want > 0 (latency + wire time)", tRecv)
	}
}

func TestSessionRendezvousNeedsBothEndpoints(t *testing.T) {
	// A rendezvous-sized transfer must not progress while the receiver
	// computes outside MPI: the receiver sleeps for `gap` before posting
	// its receive, so delivery lands after the gap plus the wire time —
	// whereas an async-progress world overlaps the transfer with the gap.
	// The receive is posted (matched) up front; the receiver then computes
	// outside MPI for `gap` seconds before waiting. Standard progress
	// stalls the matched transfer until the receiver enters its Wait;
	// async progress moves it during the gap.
	const n = 1 << 16 // 512 KiB ≫ eager threshold
	const gap = 1.0e-3
	run := func(async bool) float64 {
		s, err := NewSession(Config{RanksPerNode: 1, AsyncProgress: async}, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]float64, n)
		buf := make([]float64, n)
		data[n-1] = 42
		var tRecv float64
		s.Spawn(0, func(p *des.Proc, c core.Comm) error {
			ps, err := c.SendInit(1, 0, data)
			if err != nil {
				return err
			}
			if err := ps.Start(); err != nil {
				return err
			}
			return ps.Wait() // rendezvous Wait blocks until delivery
		})
		s.Spawn(1, func(p *des.Proc, c core.Comm) error {
			req, err := c.Irecv(0, 0, buf)
			if err != nil {
				return err
			}
			p.Sleep(gap) // "computing": matched, but not inside MPI
			if err := req.Wait(); err != nil {
				return err
			}
			tRecv = p.Now()
			return nil
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if buf[n-1] != 42 {
			t.Fatalf("rendezvous payload corrupted (async=%v)", async)
		}
		return tRecv
	}
	sync := run(false)
	async := run(true)
	wire := 8 * float64(n) / (3.4 * machine.GB) // QDR link time, the dominant term
	if sync < gap+wire {
		t.Errorf("standard progress delivered at %g, want ≥ %g (no transfer before the receiver enters MPI)", sync, gap+wire)
	}
	// With async progress the transfer finished during the gap, so the
	// receiver's Wait returns the moment its compute gap ends.
	if async > gap {
		t.Errorf("async progress returned at %g, want by the end of the receiver's %g compute gap", async, gap)
	}
}

func TestSessionCollectiveRounds(t *testing.T) {
	// Repeated barrier/reduce/gather rounds through the double-buffered
	// round state, with canonical ascending-rank combines.
	const ranks, rounds = 5, 7
	s, err := NewSession(Config{}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		r := r
		s.Spawn(r, func(p *des.Proc, c core.Comm) error {
			for round := 0; round < rounds; round++ {
				if err := c.Barrier(); err != nil {
					return err
				}
				v, err := c.AllreduceScalar(core.OpSum, float64(r+round))
				if err != nil {
					return err
				}
				want := float64(ranks*round) + float64(ranks*(ranks-1)/2)
				if v != want {
					t.Errorf("round %d rank %d: sum %g, want %g", round, r, v, want)
				}
				mx, err := c.Allreduce(core.OpMax, []float64{float64(r), -float64(r)})
				if err != nil {
					return err
				}
				if mx[0] != float64(ranks-1) || mx[1] != 0 {
					t.Errorf("round %d rank %d: max %v", round, r, mx)
				}
				g, err := c.AllgatherInt64(int64(r * 10))
				if err != nil {
					return err
				}
				for i, got := range g {
					if got != int64(i*10) {
						t.Errorf("round %d: gather[%d] = %d", round, i, got)
					}
				}
			}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionAllreduceLengthMismatch(t *testing.T) {
	s := session2(t)
	var errs [2]error
	for r := 0; r < 2; r++ {
		r := r
		s.Spawn(r, func(p *des.Proc, c core.Comm) error {
			_, errs[r] = c.Allreduce(core.OpSum, make([]float64, 1+r))
			return nil
		})
	}
	if err := s.Run(); err == nil {
		t.Fatal("mismatched Allreduce did not fail the session")
	}
	var mm *core.MismatchError
	if !errors.As(errs[1], &mm) && !errors.As(errs[0], &mm) {
		t.Fatalf("no rank saw a MismatchError: %v / %v", errs[0], errs[1])
	}
}

func TestPersistentChannelRoundTrips(t *testing.T) {
	// Persistent Start/Wait cycles deliver fresh buffer contents each
	// iteration in both regimes (eager snapshot, rendezvous zero-copy).
	for _, n := range []int{8, 1 << 15} { // eager | rendezvous
		s, err := NewSession(Config{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		const iters = 5
		src := make([]float64, n)
		dst := make([]float64, n)
		s.Spawn(0, func(p *des.Proc, c core.Comm) error {
			ps, err := c.SendInit(1, 0, src)
			if err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				src[0] = float64(it + 1) // current contents, MPI_Send_init
				if err := ps.Start(); err != nil {
					return err
				}
				if err := ps.Wait(); err != nil {
					return err
				}
			}
			return nil
		})
		s.Spawn(1, func(p *des.Proc, c core.Comm) error {
			pr, err := c.RecvInit(0, 0, dst)
			if err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				if err := pr.Start(); err != nil {
					return err
				}
				if err := pr.Wait(); err != nil {
					return err
				}
				if dst[0] != float64(it+1) {
					t.Errorf("n=%d iter %d: got %g, want %g", n, it, dst[0], float64(it+1))
				}
			}
			return nil
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPersistentStartWhileInFlight(t *testing.T) {
	// The chanmpi contract: restarting an in-flight persistent receive is
	// a caller bug and errs; the world stays healthy.
	s := session2(t)
	var startErr error
	s.Spawn(0, func(p *des.Proc, c core.Comm) error {
		pr, err := c.RecvInit(1, 0, make([]float64, 4))
		if err != nil {
			return err
		}
		if err := pr.Start(); err != nil {
			return err
		}
		startErr = pr.Start() //reprolint:ignore persistwait this test exercises the double-Start error path
		return nil
	})
	s.Spawn(1, func(p *des.Proc, c core.Comm) error {
		req, err := c.Isend(0, 0, make([]float64, 4))
		if err != nil {
			return err
		}
		return req.Wait()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if startErr == nil || !strings.Contains(startErr.Error(), "still in flight") {
		t.Fatalf("double Start returned %v, want still-in-flight error", startErr)
	}
}

// ringWorkload builds a synthetic ring halo: every rank exchanges `halo`
// elements with both neighbours and owns identical local work.
func ringWorkload(ranks, rows int, nnzLocal, nnzRemote int64, halo int) *Workload {
	wl := &Workload{
		Name: "ring", Ranks: ranks, Kappa: 0,
		Rows:      make([]int, ranks),
		NnzLocal:  make([]int64, ranks),
		NnzRemote: make([]int64, ranks),
		Sends:     make([][]Seg, ranks),
		Recvs:     make([][]Seg, ranks),
	}
	for r := 0; r < ranks; r++ {
		wl.Rows[r] = rows
		wl.NnzLocal[r] = nnzLocal
		wl.NnzRemote[r] = nnzRemote
		wl.TotalNnz += nnzLocal + nnzRemote
		left, right := (r+ranks-1)%ranks, (r+1)%ranks
		wl.Sends[r] = []Seg{{Peer: left, Elems: halo}, {Peer: right, Elems: halo}}
		wl.Recvs[r] = []Seg{{Peer: left, Elems: halo}, {Peer: right, Elems: halo}}
	}
	wl.Nnzr = float64(wl.TotalNnz) / float64(ranks*rows)
	return wl
}

func TestRunPointDeterministicEventForEvent(t *testing.T) {
	// Two runs of the same point must agree to the bit AND in DES event
	// count — the reproducibility contract of session mode.
	wl := ringWorkload(8, 20000, 200000, 20000, 3000)
	cfg := PointConfig{
		Cluster: machine.WestmereCluster(),
		Nodes:   4, Layout: ProcPerLD, Mode: core.TaskMode,
	}
	a, err := RunPoint(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimePerIter != b.TimePerIter || a.Events != b.Events {
		t.Fatalf("nondeterministic: run1 (t=%v, events=%d) vs run2 (t=%v, events=%d)",
			a.TimePerIter, a.Events, b.TimePerIter, b.Events)
	}
	if a.GFlops <= 0 || a.Events == 0 {
		t.Fatalf("degenerate result: %+v", a)
	}
}

func TestRunPointTaskModeOverlaps(t *testing.T) {
	// With large rendezvous halos, task mode (communication thread inside
	// MPI) must beat vector no-overlap, and naive overlap must NOT —
	// the paper's central claim, reproduced by the progress model.
	wl := ringWorkload(8, 40000, 400000, 40000, 60000) // 480 KB halos
	base := PointConfig{
		Cluster: machine.WestmereCluster(),
		Nodes:   4, Layout: ProcPerLD,
	}
	times := map[core.Mode]float64{}
	for _, mode := range core.Modes {
		cfg := base
		cfg.Mode = mode
		res, err := RunPoint(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimePerIter <= 0 {
			t.Fatalf("mode %v: time %g", mode, res.TimePerIter)
		}
		times[mode] = res.TimePerIter
	}
	if times[core.TaskMode] >= times[core.VectorNoOverlap] {
		t.Errorf("task mode (%g) not faster than no-overlap (%g)",
			times[core.TaskMode], times[core.VectorNoOverlap])
	}
	// Naive overlap cannot beat task mode: its transfers stall until the
	// Waitall (§3). Allow it the no-overlap ballpark.
	if times[core.VectorNaiveOverlap] < times[core.TaskMode] {
		t.Errorf("naive overlap (%g) beat task mode (%g) — progress semantics broken",
			times[core.VectorNaiveOverlap], times[core.TaskMode])
	}
}

func TestRunPointAsyncProgressRescuesNaive(t *testing.T) {
	// The §5 ablation: with an async progress thread, naive overlap's
	// transfers move during the local phase, closing most of the gap.
	wl := ringWorkload(8, 40000, 400000, 40000, 60000)
	cfg := PointConfig{
		Cluster: machine.WestmereCluster(),
		Nodes:   4, Layout: ProcPerLD, Mode: core.VectorNaiveOverlap,
	}
	std, err := RunPoint(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AsyncProgress = true
	async, err := RunPoint(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if async.TimePerIter >= std.TimePerIter {
		t.Errorf("async progress did not help naive overlap: %g vs %g",
			async.TimePerIter, std.TimePerIter)
	}
}

func TestParseLayout(t *testing.T) {
	for _, tok := range LayoutTokens() {
		if _, err := ParseLayout(tok); err != nil {
			t.Errorf("ParseLayout(%q): %v", tok, err)
		}
	}
	if l, err := ParseLayout("  Proc-Per-LD "); err != nil || l != ProcPerLD {
		t.Errorf("ParseLayout with case/space = %v, %v", l, err)
	}
	_, err := ParseLayout("banana")
	if err == nil {
		t.Fatal("ParseLayout accepted junk")
	}
	for _, tok := range LayoutTokens() {
		if !strings.Contains(err.Error(), tok) {
			t.Errorf("error %q does not enumerate token %q", err, tok)
		}
	}
}

func TestWorkloadFromPlanAgainstRing(t *testing.T) {
	// Sanity on the Workload invariants the planner relies on.
	wl := ringWorkload(4, 100, 1000, 100, 10)
	if wl.TotalNnz != 4*(1000+100) {
		t.Fatalf("TotalNnz = %d", wl.TotalNnz)
	}
	for r := 0; r < 4; r++ {
		if len(wl.Sends[r]) != 2 || len(wl.Recvs[r]) != 2 {
			t.Fatalf("rank %d segments: %v / %v", r, wl.Sends[r], wl.Recvs[r])
		}
	}
}
