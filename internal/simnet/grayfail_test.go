package simnet

// Virtual-time gray failures, in-package so the drills can read the
// simulation clock: a Slowdown makes one rank's messages late without
// killing it, and RecvDeadline turns that lateness into a deterministic,
// attributed phase-"slow" failure — with time-to-detect measured in
// virtual seconds, not wall-clock sleeps. This is the 1000+-rank arm of
// the repo's gray-failure story: the same detection contract tcpmpi
// implements with EWMAs is pinned here at a scale no real host could run.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/matrix"
)

// captureTransport keeps the last dialed world so a drill can read the
// virtual clock after a failure surfaces through the cluster.
type captureTransport struct {
	Transport
	last *world
}

func (t *captureTransport) Dial(ctx context.Context, size int) (core.World, error) {
	w, err := t.Transport.Dial(ctx, size)
	if err != nil {
		return nil, err
	}
	t.last = w.(*world)
	return w, nil
}

// clockNow reads the captured world's virtual clock.
func (t *captureTransport) clockNow() float64 {
	t.last.mu.Lock()
	defer t.last.mu.Unlock()
	return t.last.sim.Now()
}

func grayPlan(t *testing.T, ranks int) (*matrix.CSR, *core.Plan) {
	t.Helper()
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 12, Ny: 10, Nz: 9, GradingZ: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	plan, err := core.BuildPlan(p, core.PartitionByNnz(p, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

// TestSlowRankKeepsNumericsBitIdentical pins the "gray, not dead" half:
// with no detection armed, a rank whose every message pays half a second
// of extra virtual latency still produces the exact same product as a
// healthy simulated cluster on an identically-built plan — the
// degradation is pure time, visible on the clock, absent from the
// payloads. (The reference is a healthy CLUSTER, not the serial MulVec:
// distributing the rows changes summation order, which is allowed to
// perturb last bits; a slowdown is not.)
func TestSlowRankKeepsNumericsBitIdentical(t *testing.T) {
	const extra = 0.5
	a, planSlow := grayPlan(t, 4)
	_, planRef := grayPlan(t, 4)
	tr := &captureTransport{Transport: Transport{Slow: []Slowdown{{Rank: 1, Extra: extra}}}}
	clSlow, err := core.NewCluster(planSlow, core.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer clSlow.Close()
	clRef, err := core.NewCluster(planRef, core.WithTransport(&Transport{}))
	if err != nil {
		t.Fatal(err)
	}
	defer clRef.Close()

	n := a.NumRows
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, n)
	if err := clSlow.Mul(y, x, 1); err != nil {
		t.Fatalf("Mul with an undetected slow rank: %v", err)
	}
	want := make([]float64, n)
	if err := clRef.Mul(want, x, 1); err != nil {
		t.Fatalf("reference Mul: %v", err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g (a slowdown must never change the numerics)", i, y[i], want[i])
		}
	}
	if now := tr.clockNow(); now < extra {
		t.Fatalf("virtual clock at %gs after the solve, want ≥ %gs (the slow rank's latency must be paid in virtual time)", now, extra)
	}
}

// TestSlowRankDrill1024 is the at-scale detection drill: 1024 virtual
// ranks, rank 617 degraded far past the receive deadline. Exactly the
// receives sourced at the slow rank can expire, so the failure names rank
// 617 in phase "slow", is supervisor-recoverable, and lands within a
// deadline's width of virtual time — the bounded time-to-detect the
// gray-failure contract promises.
func TestSlowRankDrill1024(t *testing.T) {
	const (
		ranks    = 1024
		slowRank = 617
		extra    = 0.5  // seconds of injected per-message latency
		deadline = 0.05 // virtual receive deadline
	)
	a, plan := grayPlan(t, ranks)
	tr := &captureTransport{Transport: Transport{
		Slow:         []Slowdown{{Rank: slowRank, Extra: extra}},
		RecvDeadline: deadline,
	}}
	cl, err := core.NewCluster(plan, core.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	n := a.NumRows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, n)
	err = cl.Mul(y, x, 2)
	var pe *core.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("Mul against the degraded rank returned %v, want a *core.PeerError cause", err)
	}
	if pe.Phase != core.PhaseSlow || pe.RankLo != slowRank || pe.RankHi != slowRank+1 {
		t.Fatalf("suspect = [%d,%d) phase %q, want [%d,%d) phase %q",
			pe.RankLo, pe.RankHi, pe.Phase, slowRank, slowRank+1, core.PhaseSlow)
	}
	if !core.Recoverable(err) {
		t.Fatal("a slow-peer failure must be supervisor-recoverable (restart on a fresh world)")
	}
	detected := tr.clockNow()
	if detected < deadline || detected > 2*deadline {
		t.Fatalf("detected at t=%gs of virtual time, want within [%g, %g] — one deadline width after the degraded receive was posted", detected, deadline, 2*deadline)
	}
	if detected >= extra {
		t.Fatalf("detection at t=%gs did not beat the slow frame's own arrival (%gs): the deadline added nothing", detected, extra)
	}
}
