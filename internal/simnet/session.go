package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
)

// Session is the closed-world driving discipline: every rank is a des.Proc
// under the kernel's one-at-a-time token, and one Run drains the event
// heap. Runs are strictly deterministic event-for-event (Sim().Events() is
// a reproducibility fingerprint), which is what the capacity planner and
// cmd/spmv-sim build on. For plugging simulated ranks under an unmodified
// core.Cluster, use Transport instead.
type Session struct {
	w   *world
	err error // first body error
}

// NewSession creates a simulated world in session mode.
func NewSession(cfg Config, size int) (*Session, error) {
	w, err := newWorld(cfg, size, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	w.session = true
	return &Session{w: w}, nil
}

// Sim exposes the underlying simulator (clock, events, spawning).
func (s *Session) Sim() *des.Sim { return s.w.sim }

// Sys exposes the fluid-flow system, for modeling compute phases as
// memory-bus flows alongside the communication.
func (s *Session) Sys() *fluid.System { return s.w.sys }

// World returns the session's world (for Fail/Close and inspection).
func (s *Session) World() core.World { return s.w }

// Network path resources are shared with compute flows through Sys; the
// node of a rank is fixed by Config.RanksPerNode.

// NodeOf returns the node hosting a rank.
func (s *Session) NodeOf(rank int) int { return s.w.nodeOf[rank] }

// Spawn starts rank's body as a simulated proc. The body's Comm performs
// all operations in virtual time; a body error fails the world.
func (s *Session) Spawn(rank int, body func(p *des.Proc, c core.Comm) error) {
	c := s.w.comms[rank]
	s.w.sim.Spawn(fmt.Sprintf("rank%d", rank), func(p *des.Proc) {
		c.proc = p
		if err := body(p, c); err != nil {
			if s.err == nil {
				s.err = err
			}
			s.w.Fail(err)
		}
	})
}

// Run drains the simulation. It returns the first body error, then any
// world failure, then the kernel's own deadlock diagnosis.
func (s *Session) Run() error {
	simErr := s.w.sim.Run()
	if s.err != nil {
		return s.err
	}
	if s.w.err != nil {
		return s.w.worldErr()
	}
	return simErr
}
