package simnet_test

// Foreign-mode conformance: the PR 4/5 transport suite run against simnet.
// An unmodified core.Cluster dials a simulated world, and everything the
// runtime promises on the chan transport must hold here too — bit-identical
// numerics, fail-stop unwedging with *WorldError, zero steady-state
// allocations — plus the simulator's own guarantees: virtual-time kills,
// frame-drop deadlock detection, and supervised recovery at rank counts no
// real host could run.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultmpi"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/simnet"
	"repro/internal/solver"
)

func randVec(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// poissonPlan builds a small SPD system (12×10×9 grid, 1080 rows).
func poissonPlan(t *testing.T, ranks int) (*matrix.CSR, *core.Plan) {
	t.Helper()
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 12, Ny: 10, Nz: 9, GradingZ: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	plan, err := core.BuildPlan(p, core.PartitionByNnz(p, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

func simCluster(t *testing.T, ranks int, opts ...core.Option) (*matrix.CSR, *core.Cluster) {
	t.Helper()
	a, plan := poissonPlan(t, ranks)
	opts = append(opts, core.WithTransport(&simnet.Transport{}))
	cl, err := core.NewCluster(plan, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return a, cl
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterMulBitIdenticalChanVsSim(t *testing.T) {
	// The tentpole's bit-identity clause: payload data moves for real, so
	// a Mul on the simulated transport agrees with the chan transport to
	// the bit, in every kernel mode.
	_, chanCl := func() (*matrix.CSR, *core.Cluster) {
		a, plan := poissonPlan(t, 6)
		cl, err := core.NewCluster(plan, core.WithThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return a, cl
	}()
	a, simCl := simCluster(t, 6, core.WithThreads(2))
	n := a.NumRows
	x := randVec(91, n)
	want := make([]float64, n)
	got := make([]float64, n)
	for _, mode := range core.Modes {
		if err := chanCl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		if err := simCl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		if err := chanCl.Mul(want, x, 2); err != nil {
			t.Fatal(err)
		}
		if err := simCl.Mul(got, x, 2); err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Fatalf("mode %v: sim transport Mul differs from chan transport", mode)
		}
	}
}

func TestDistCGBitIdenticalChanVsSim(t *testing.T) {
	// The acceptance criterion: DistCG over WithTransport(simnet) —
	// persistent halo exchange, Allreduce, AllgatherInt64, the whole Comm
	// surface — converges bit-identical to the chan transport.
	a, planChan := poissonPlan(t, 5)
	_, planSim := poissonPlan(t, 5)
	n := a.NumRows
	b := randVec(23, n)

	chanCl, err := core.NewCluster(planChan)
	if err != nil {
		t.Fatal(err)
	}
	defer chanCl.Close()
	xChan := make([]float64, n)
	refRes, err := solver.DistCG(chanCl, b, xChan, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Converged {
		t.Fatalf("chan reference did not converge (res %g)", refRes.Residual)
	}

	simCl, err := core.NewCluster(planSim, core.WithTransport(&simnet.Transport{}))
	if err != nil {
		t.Fatal(err)
	}
	defer simCl.Close()
	xSim := make([]float64, n)
	simRes, err := solver.DistCG(simCl, b, xSim, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}

	if !bitsEqual(xSim, xChan) {
		t.Fatal("sim-transport DistCG solution is not bit-identical to chan")
	}
	if simRes.Iterations != refRes.Iterations || !bitsEqual(simRes.History, refRes.History) {
		t.Fatalf("sim run: %d iterations, chan run: %d — residual histories must match bit for bit",
			simRes.Iterations, refRes.Iterations)
	}
}

func TestClusterFailedRankUnwedgesBlockedPeersSim(t *testing.T) {
	// The fail-stop regression on the simulated transport: one rank's body
	// errors while peers sit in a collective; the failure must wake the
	// parked ranks with a *WorldError instead of wedging virtual time.
	_, cl := simCluster(t, 4)
	done := make(chan error, 1)
	go func() {
		done <- cl.Run(func(w *core.Worker) error {
			if w.Comm.Rank() == 2 {
				return fmt.Errorf("rank 2 bailed")
			}
			return w.Comm.Barrier() // abandoned by rank 2
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "bailed") {
			t.Fatalf("Run returned %v, want the primary rank 2 failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peers stayed wedged in the abandoned collective")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close after failed job: %v", err)
	}
}

func TestAllocGateClusterMulSim(t *testing.T) {
	// The steady-state allocation contract holds on the simulated
	// transport too: DES events, fluid flows, and messages are pooled, so
	// a warm Cluster.Mul performs zero allocations per multiplication.
	a, cl := simCluster(t, 4, core.WithThreads(2))
	n := a.NumRows
	x := randVec(41, n)
	y := make([]float64, n)
	for _, mode := range core.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			if err := cl.SetMode(mode); err != nil {
				t.Fatal(err)
			}
			mul := func() {
				if err := cl.Mul(y, x, 1); err != nil {
					t.Fatal(err)
				}
			}
			mul() // steady the pools and queue capacities
			mul()
			if allocs := testing.AllocsPerRun(30, mul); allocs != 0 {
				t.Fatalf("%v: Mul allocates %.1f objects per multiplication, want 0", mode, allocs)
			}
		})
	}
}

func TestVirtualTimeKillFailsWorld(t *testing.T) {
	// A simnet.Kill detonates at a virtual-time offset: the world fails
	// with a recoverable *PeerError naming the rank, and every blocked
	// rank unwedges.
	_, plan := poissonPlan(t, 4)
	tr := &simnet.Transport{Kills: []simnet.Kill{{Rank: 1, At: 1e-6}}}
	cl, err := core.NewCluster(plan, core.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(w *core.Worker) error {
		for i := 0; i < 50; i++ {
			if err := w.Comm.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("job over a killed world succeeded")
	}
	var pe *core.PeerError
	if !errors.As(err, &pe) || pe.RankLo != 1 {
		t.Fatalf("error %v does not name the killed rank 1", err)
	}
	if !core.Recoverable(err) {
		t.Fatalf("virtual-time kill %v is not recoverable", err)
	}
}

func TestDroppedFrameDetectedAsVirtualDeadlock(t *testing.T) {
	// faultmpi composes with simnet: a dropped halo frame wedges the
	// receiver; once every rank is parked with no scheduled events, the
	// deadlock detector fails the world with a *PeerError naming the
	// silent source — the virtual-time analogue of tcpmpi's heartbeats.
	_, plan := poissonPlan(t, 4)
	tr := &faultmpi.Transport{
		Inner: &simnet.Transport{},
		Sched: faultmpi.Schedule{Frames: []faultmpi.FrameFault{
			{Action: faultmpi.Drop, Src: 0, Dst: 1, Tag: faultmpi.Any},
		}},
	}
	cl, err := core.NewCluster(plan, core.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	done := make(chan error, 1)
	go func() {
		done <- cl.Run(func(w *core.Worker) error {
			// rank 0's message to rank 1 is dropped; 1 wedges in Wait, the
			// others pile into the barrier until everyone is parked.
			data := []float64{float64(w.Comm.Rank())}
			buf := make([]float64, 1)
			next := (w.Comm.Rank() + 1) % w.Comm.Size()
			prev := (w.Comm.Rank() + w.Comm.Size() - 1) % w.Comm.Size()
			req, err := w.Comm.Irecv(prev, 9, buf)
			if err != nil {
				return err
			}
			if _, err := w.Comm.Isend(next, 9, data); err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			return w.Comm.Barrier()
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job with a dropped frame succeeded")
		}
		var pe *core.PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("error %v is not a PeerError", err)
		}
		if pe.RankLo != 0 || pe.RankHi != 1 {
			t.Fatalf("deadlock suspect [%d,%d), want the silent sender [0,1)", pe.RankLo, pe.RankHi)
		}
		if !core.Recoverable(err) {
			t.Fatalf("deadlock %v is not recoverable", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dropped frame wedged the world instead of failing it")
	}
}

func TestSupervisorEpochRestart1000Ranks(t *testing.T) {
	// The 1000-rank chaos drill: epoch 0's transport kills a rank at a
	// virtual-time offset, the supervisor re-dials epoch 1 clean, and the
	// whole thing runs in real milliseconds because time is simulated.
	const ranks = 1000
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 12, Ny: 10, Nz: 9, GradingZ: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(p, core.PartitionByNnz(p, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	var causes []error
	s := &core.Supervisor{
		Transport: func(epoch int) core.Transport {
			if epoch == 0 {
				return &simnet.Transport{Kills: []simnet.Kill{{Rank: 617, At: 2e-6}}}
			}
			return &simnet.Transport{}
		},
		Backoff: time.Millisecond,
		OnRetry: func(epoch int, cause error, delay time.Duration) { causes = append(causes, cause) },
	}
	epochs := 0
	err = s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		epochs++
		return cl.Run(func(w *core.Worker) error {
			for i := 0; i < 5; i++ {
				if err := w.Comm.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 2 {
		t.Fatalf("ran %d epochs, want 2 (killed, then clean)", epochs)
	}
	if len(causes) != 1 {
		t.Fatalf("observed %d retries, want 1", len(causes))
	}
	var pe *core.PeerError
	if !errors.As(causes[0], &pe) || pe.RankLo != 617 {
		t.Fatalf("retry cause %v does not name the killed rank 617", causes[0])
	}
}

func TestSupervisedCGRecoveryBitIdenticalSim(t *testing.T) {
	// Checkpoint/restore over the simulated transport: a CG solve on 64
	// virtual ranks is killed mid-run, the supervisor re-dials, the body
	// restores the snapshot, and convergence is bit-identical to an
	// uninterrupted 64-rank reference.
	const tol, maxIter, every = 1e-10, 5000, 10
	const ranks = 64
	a, plan := poissonPlan(t, ranks)
	n := a.NumRows
	b := randVec(21, n)

	refCl, err := core.NewCluster(plan, core.WithTransport(&simnet.Transport{}))
	if err != nil {
		t.Fatal(err)
	}
	xRef := make([]float64, n)
	ref, err := solver.DistCG(refCl, b, xRef, tol, maxIter)
	refCl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Iterations < 3*every {
		t.Fatalf("reference unusable: converged=%v in %d iterations", ref.Converged, ref.Iterations)
	}

	tr := &faultmpi.Transport{
		Inner: &simnet.Transport{},
		Sched: faultmpi.Schedule{Kills: []faultmpi.Kill{{Rank: 41, AtOp: 150}}},
	}
	s := &core.Supervisor{
		Transport: func(epoch int) core.Transport { return tr },
		Backoff:   time.Millisecond,
	}
	var ck *solver.CGCheckpoint
	var rec solver.CGResult
	epochs := 0
	xRec := make([]float64, n)
	err = s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		epochs++
		if ck == nil {
			ck = solver.NewCGCheckpoint(cl, maxIter)
		}
		opt := solver.CGOptions{Tol: tol, MaxIter: maxIter, CheckpointEvery: every, Checkpoint: ck}
		if ck.Valid() {
			opt.Restore = ck
		}
		var err error
		rec, err = solver.DistCGOpt(cl, b, xRec, opt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 2 {
		t.Fatalf("ran %d epochs, want 2 (killed, then recovered from checkpoint)", epochs)
	}
	if !rec.Converged {
		t.Fatal("recovered run did not converge")
	}
	if !bitsEqual(xRec, xRef) {
		t.Fatal("recovered solution is not bit-identical to the uninterrupted run")
	}
	if rec.Iterations != ref.Iterations || !bitsEqual(rec.History, ref.History) {
		t.Fatalf("recovered run: %d iterations, reference: %d — histories must match bit for bit",
			rec.Iterations, ref.Iterations)
	}
}

func TestWorldCloseReleasesBlockedRank(t *testing.T) {
	// Close on a world with a parked rank must release it with
	// ErrWorldClosed underneath, and be idempotent.
	tr := &simnet.Transport{}
	w, err := tr.Dial(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c0, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2); err == nil {
		t.Fatal("Comm(2) on a 2-rank world succeeded")
	}
	done := make(chan error, 1)
	go func() { done <- c0.Barrier() }()
	time.Sleep(10 * time.Millisecond) // let rank 0 park
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		var we *core.WorldError
		if !errors.As(err, &we) {
			t.Fatalf("blocked Barrier returned %v, want *WorldError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the parked rank wedged")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
