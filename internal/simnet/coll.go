package simnet

import (
	"repro/internal/core"
	"repro/internal/des"
)

// Collectives are modeled as ⌈log₂ P⌉-stage trees: every rank pays
// stages×latency (plus serialized wire time for the payload), charged as
// one event when the last rank arrives. Results are computed for real —
// reductions combine contributions in ascending rank order, the canonical
// order every transport in this repo uses, so floating-point results are
// bit-identical to chanmpi.
//
// Each collective keeps two alternating round signals (and result
// buffers). Double buffering is sufficient: a rank must complete round r
// before it can enter round r+1, and round r+2 cannot begin until every
// rank has entered (hence completed) rounds r and r+1 — so recycling
// round r's slot when round r+2 starts can never race a straggler.

// round holds one collective's alternating per-round signals.
type round struct {
	seq   int64
	count int
	sigs  [2]*des.Signal
	fire  [2]func()
}

func (r *round) init(sim *des.Sim) {
	for i := range r.sigs {
		sig := sim.NewSignal()
		r.sigs[i] = sig
		r.fire[i] = sig.Fire
	}
}

// enter registers one arrival and returns this round's signal and seq.
// Caller holds w.mu; the first arriver re-arms the round's signal.
//
//repro:noalloc
func (r *round) enter() (*des.Signal, int64) {
	if r.count == 0 {
		r.sigs[r.seq&1].Reset()
	}
	sig, seq := r.sigs[r.seq&1], r.seq
	r.count++
	return sig, seq
}

// complete reports whether this arrival was the last of the round and, if
// so, advances to the next round and returns the completion callback to
// schedule.
//
//repro:noalloc
func (r *round) complete(size int) (func(), bool) {
	if r.count < size {
		return nil, false
	}
	r.count = 0
	fire := r.fire[r.seq&1]
	r.seq++
	return fire, true
}

type barrier struct{ round }

type reducer struct {
	round
	n     int
	op    core.ReduceOp
	slots [][]float64
	res   [2][]float64
}

type gatherer struct {
	round
	slots []int64
	res   [2][]int64
}

// Barrier blocks until all ranks arrive, then releases them barCost later.
//
//repro:noalloc
func (c *comm) Barrier() error {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.worldErr()
	}
	c.enterMPI()
	sig, _ := w.bar.enter()
	if fire, last := w.bar.complete(w.size); last {
		w.sim.After(w.barCost, fire)
	}
	c.await(sig)
	c.exitMPI()
	if !sig.Fired() {
		return w.worldErr()
	}
	return nil
}

// Allreduce combines in-vectors elementwise across all ranks. The last
// arriver combines all contributions in ascending rank order into the
// round's resident result buffer; the returned slice is shared and
// read-only, like chanmpi's.
//
//repro:noalloc
func (c *comm) Allreduce(op core.ReduceOp, in []float64) ([]float64, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, w.worldErr()
	}
	r := &w.red
	if r.count == 0 {
		r.n = len(in)
		r.op = op
	} else if len(in) != r.n {
		err := &core.MismatchError{Got: len(in), Want: r.n}
		w.fail(err)
		return nil, err
	}
	c.enterMPI()
	sig, seq := r.enter()
	r.slots[c.rank] = in
	if fire, last := r.complete(w.size); last {
		res := r.res[seq&1]
		if cap(res) < r.n {
			res = make([]float64, r.n) //repro:alloc-ok result buffer grows once per parity
		}
		res = res[:r.n]
		copy(res, r.slots[0])
		for rank := 1; rank < w.size; rank++ {
			combine(r.op, res, r.slots[rank])
		}
		r.res[seq&1] = res
		for i := range r.slots {
			r.slots[i] = nil
		}
		w.sim.After(w.collCost(8*float64(r.n)), fire)
	}
	c.await(sig)
	c.exitMPI()
	if !sig.Fired() {
		return nil, w.worldErr()
	}
	return r.res[seq&1], nil
}

// combine folds src into dst elementwise under op, dst being the
// accumulated lower ranks — canonical ascending rank order.
//
//repro:noalloc
func combine(op core.ReduceOp, dst, src []float64) {
	switch op {
	case core.OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case core.OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case core.OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
}

// AllreduceScalar combines one value across all ranks.
//
//repro:noalloc
func (c *comm) AllreduceScalar(op core.ReduceOp, v float64) (float64, error) {
	c.scalar[0] = v
	res, err := c.Allreduce(op, c.scalar[:1])
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// AllgatherInt64 gathers one int64 per rank, indexed by rank; the result
// is shared and read-only.
//
//repro:noalloc
func (c *comm) AllgatherInt64(v int64) ([]int64, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, w.worldErr()
	}
	g := &w.gat
	c.enterMPI()
	sig, seq := g.enter()
	g.slots[c.rank] = v
	if fire, last := g.complete(w.size); last {
		res := g.res[seq&1]
		if cap(res) < w.size {
			res = make([]int64, w.size) //repro:alloc-ok result buffer grows once per parity
		}
		res = res[:w.size]
		copy(res, g.slots)
		g.res[seq&1] = res
		w.sim.After(w.collCost(8*float64(w.size)), fire)
	}
	c.await(sig)
	c.exitMPI()
	if !sig.Fired() {
		return nil, w.worldErr()
	}
	return g.res[seq&1], nil
}
