// Package simnet is the DES-backed simulated transport: a third
// core.Transport (after chanmpi and tcpmpi) whose Dial returns a
// virtual-time world. Every rank is local, and every communication
// operation — Isend/Irecv/Wait, persistent halo channels, barriers,
// reductions — is costed on the des event loop with the latency, bandwidth
// and eager/rendezvous semantics of the machine description, fluid-flow
// link contention from netmodel, and the paper's §3 rule that a rendezvous
// transfer progresses only while both endpoints are inside MPI calls.
//
// Payload data still moves for real — receive buffers are filled with the
// sender's bytes, reductions combine in canonical rank order — so results
// are bit-identical to the chan transport and testable as such. Only TIME
// is simulated: the same resident core.Cluster / Supervisor / solver code
// runs unchanged at thousands of virtual ranks.
//
// Two driving disciplines share one engine:
//
//   - Foreign mode (Transport.Dial): the cluster's own rank goroutines call
//     into the world. All simulation state lives under one mutex; a rank
//     whose operation cannot complete yet becomes the DRIVER and pops DES
//     events one at a time until its completion signal fires, then hands
//     the event loop to a parked peer. Exactly one goroutine advances
//     virtual time at any instant, so the simulation is race-free; payload
//     results are deterministic (matching is per-channel FIFO and
//     reductions combine in rank order), while event interleaving may vary
//     run to run with goroutine scheduling.
//
//   - Session mode (NewSession): ranks are des.Procs under the kernel's
//     one-at-a-time token, and a single Run drains the heap. This is
//     strictly deterministic event-for-event (Sim.Events is a run
//     fingerprint) and is what cmd/spmv-sim uses for capacity planning.
//
// If every rank is blocked and no event remains, the world fails itself
// with a *core.PeerError naming the most likely culprit (the source of the
// oldest unmatched receive) — this is what unwedges fault-injection tests
// that drop frames, mirroring tcpmpi's peer-death detection.
//
// This package is virtual-time pure: the reprolint wallclock analyzer
// forbids package time here. The one sanctioned wall-clock source is
// WallBudget, which bounds PLANNING time (how long we let the simulator
// itself run), not simulated time.
//
//repro:virtualtime
package simnet

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/chanmpi"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/machine"
	"repro/internal/netmodel"
)

// Config describes the simulated machine and rank placement.
type Config struct {
	// Machine is the cluster description (zero value: machine.WestmereCluster).
	Machine machine.ClusterSpec
	// RanksPerNode places ranks onto nodes round-robin-free: rank r lives
	// on node r/RanksPerNode. 0 defaults to one rank per NUMA locality
	// domain (the paper's best-practice hybrid layout).
	RanksPerNode int
	// AsyncProgress models an MPI library with a working progress thread:
	// rendezvous transfers start without both endpoints being inside MPI
	// (the §5 ablation).
	AsyncProgress bool
	// TorusOccupancy (torus networks only) is the fraction of the machine
	// the job owns; values in (0,1) scatter the job's nodes over a
	// proportionally larger torus, modeling fragmented allocations. 0 or 1
	// means a dedicated, exactly-fitting torus.
	TorusOccupancy float64
	// PlacementSeed seeds the scattered placement.
	PlacementSeed uint64
}

// Kill schedules a rank's death at a virtual-time offset: when the
// simulation clock reaches At, the world fails with a *core.PeerError for
// that rank — deterministic chaos for Supervisor tests.
type Kill struct {
	Rank int
	At   float64 // seconds of virtual time
}

// Slowdown degrades one rank in virtual time: every message the rank
// originates from After onward pays Extra additional seconds of latency
// before its transfer begins. This is the gray-failure counterpart of
// Kill — the rank stays alive and its payloads stay bit-identical, only
// its transfers crawl — and it is the simulator-native analogue of
// faultmpi's wall-clock Slowdown schedule (whose time.AfterFunc delivery
// would be invisible to the virtual clock and trip the deadlock detector
// here). Being an event-time perturbation, it is exactly reproducible at
// any rank count.
type Slowdown struct {
	Rank  int
	Extra float64 // seconds added to each originated message's start
	After float64 // virtual-time offset at which the degradation begins
}

// Transport implements core.Transport: Dial returns a virtual-time world
// with every rank local. The zero value simulates the Westmere cluster.
type Transport struct {
	Config
	// Kills fail the world at virtual-time offsets (deterministic fault
	// injection; see also faultmpi for operation-count-based injection).
	Kills []Kill
	// Slow degrades ranks without killing them (one entry per rank; a
	// later entry for the same rank wins). Pair with RecvDeadline to
	// exercise detection, or leave RecvDeadline zero to measure how far
	// an undetected gray failure drags the solve.
	Slow []Slowdown
	// RecvDeadline, when positive, bounds every posted point-to-point
	// receive to that many seconds of VIRTUAL time: expiry fails the
	// world with a *core.PeerError naming the receive's source rank in
	// phase "slow" — the simulator's deterministic model of tcpmpi's
	// slow-peer suspicion, with time-to-detect readable off the clock.
	RecvDeadline float64
}

var _ core.Transport = (*Transport)(nil)

// Dial builds the simulated world. It never blocks (all ranks are local);
// ctx is checked once for early cancellation.
func (t *Transport) Dial(ctx context.Context, size int) (core.World, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return newWorld(t.Config, size, t.Kills, t.Slow, t.RecvDeadline)
}

// pathEnt caches one node pair's route.
type pathEnt struct {
	res []*fluid.Resource
	lat float64
}

type pathKey struct{ a, b int }

// world is the simulated MPI world. All state is guarded by mu in foreign
// mode; in session mode the des token discipline serializes access and mu
// is uncontended.
type world struct {
	mu  sync.Mutex
	sim *des.Sim
	sys *fluid.System
	net *netmodel.Network

	size    int
	nodeOf  []int
	local   []int
	comms   []*comm
	session bool

	async   bool
	eager   int     // bytes; wire sizes strictly below use the eager protocol
	rdvLat  float64 // rendezvous handshake latency
	latency float64
	linkBW  float64
	stages  float64 // ⌈log₂ P⌉ collective stages
	barCost float64

	// slowOf (nil when no slowdowns) is indexed by rank; recvDeadline > 0
	// puts every posted receive on the deadline watchlist (deadline.go).
	// Both are the gray-failure injection/detection pair of this transport.
	slowOf       []Slowdown
	recvDeadline float64
	armed        []armedRecv // posted receives under deadline watch
	armedFloor   float64     // min live deadline (stale-low is safe)
	stuck        int         // yielded pop attempts since last real progress

	sendQ map[ckey]*queue[*msg]
	recvQ map[ckey]*queue[*rpost]

	pathCache map[pathKey]*pathEnt

	err error // first failure; write-once

	driving bool
	parked  []*gate

	bar barrier
	red reducer
	gat gatherer

	kickScratch []*msg
}

func newWorld(cfg Config, size int, kills []Kill, slow []Slowdown, recvDeadline float64) (*world, error) {
	if size < 1 {
		return nil, fmt.Errorf("simnet: world size %d < 1", size)
	}
	spec := cfg.Machine
	if spec.Name == "" {
		spec = machine.WestmereCluster()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rpn := cfg.RanksPerNode
	if rpn == 0 {
		rpn = spec.Node.LDsPerNode()
	}
	if rpn < 1 {
		return nil, fmt.Errorf("simnet: %d ranks per node", rpn)
	}
	nodes := (size + rpn - 1) / rpn

	sim := des.New()
	sys := fluid.NewSystem(sim)
	slots := nodes
	if spec.Net.Kind == machine.Torus2D && cfg.TorusOccupancy > 0 && cfg.TorusOccupancy < 1 {
		slots = int(float64(nodes)/cfg.TorusOccupancy + 0.999)
	}
	net := netmodel.NewSized(sys, spec.Net, nodes, slots)
	if slots > nodes {
		gw, gh := net.Dims()
		net.SetPlacement(netmodel.ScatteredPlacement(nodes, gw*gh, cfg.PlacementSeed+1))
	}

	w := &world{
		sim:       sim,
		sys:       sys,
		net:       net,
		size:      size,
		async:     cfg.AsyncProgress,
		eager:     spec.Net.EagerThreshold,
		rdvLat:    spec.Net.Latency,
		latency:   spec.Net.Latency,
		linkBW:    spec.Net.LinkBW,
		sendQ:     make(map[ckey]*queue[*msg]),
		recvQ:     make(map[ckey]*queue[*rpost]),
		pathCache: make(map[pathKey]*pathEnt),
	}
	w.stages = math.Ceil(math.Log2(math.Max(float64(size), 2)))
	w.barCost = w.stages * w.latency
	w.nodeOf = make([]int, size)
	w.local = make([]int, size)
	w.comms = make([]*comm, size)
	w.bar.init(sim)
	w.red.init(sim)
	w.gat.init(sim)
	w.red.slots = make([][]float64, size)
	w.gat.slots = make([]int64, size)
	for r := 0; r < size; r++ {
		w.nodeOf[r] = r / rpn
		w.local[r] = r
		c := &comm{w: w, rank: r, node: r / rpn}
		g := &gate{w: w, ch: make(chan struct{}, 1)}
		g.wakeFn = func() {
			if g.parked {
				w.unpark(g)
				select {
				case g.ch <- struct{}{}:
				default:
				}
			}
		}
		c.g = g
		w.comms[r] = c
	}
	if recvDeadline < 0 {
		return nil, fmt.Errorf("simnet: negative receive deadline %g", recvDeadline)
	}
	w.recvDeadline = recvDeadline
	w.armedFloor = math.Inf(1)
	for _, s := range slow {
		if s.Rank < 0 || s.Rank >= size {
			return nil, &core.RankError{Op: "Slowdown", Rank: s.Rank, Size: size}
		}
		if s.Extra < 0 || s.After < 0 {
			return nil, fmt.Errorf("simnet: negative slowdown (extra %g, after %g)", s.Extra, s.After)
		}
		if w.slowOf == nil {
			w.slowOf = make([]Slowdown, size)
		}
		w.slowOf[s.Rank] = s
	}
	for _, k := range kills {
		if k.Rank < 0 || k.Rank >= size {
			return nil, &core.RankError{Op: "Kill", Rank: k.Rank, Size: size}
		}
		if k.At < 0 {
			return nil, fmt.Errorf("simnet: kill at negative time %g", k.At)
		}
		k := k
		sim.At(k.At, func() {
			w.fail(&core.PeerError{
				RankLo: k.Rank, RankHi: k.Rank + 1, Phase: core.PhaseSend,
				Err: fmt.Errorf("simnet: injected kill at t=%gs", k.At),
			})
		})
	}
	return w, nil
}

// collCost is the modeled duration of one collective on a payload of the
// given bytes: ⌈log₂ P⌉ stages of latency plus serialized wire time.
func (w *world) collCost(bytes float64) float64 {
	return w.stages * (w.latency + bytes/w.linkBW)
}

// pathFor returns the cached route between two ranks' nodes.
//
//repro:noalloc
func (w *world) pathFor(src, dst int) *pathEnt {
	k := pathKey{w.nodeOf[src], w.nodeOf[dst]}
	if e, ok := w.pathCache[k]; ok {
		return e
	}
	res, lat := w.net.Path(k.a, k.b)
	e := &pathEnt{res: res, lat: lat} //repro:alloc-ok one entry per node pair, cached forever
	w.pathCache[k] = e                //repro:alloc-ok grow-once route cache
	return e
}

// --- core.World ---

func (w *world) Size() int { return w.size }

func (w *world) LocalRanks() []int { return w.local }

func (w *world) Comm(rank int) (core.Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, &core.RankError{Op: "Comm", Rank: rank, Size: w.size}
	}
	return w.comms[rank], nil
}

// Fail poisons the world: blocked ranks wake with a *core.WorldError and
// subsequent operations refuse. First cause wins.
func (w *world) Fail(err error) {
	w.mu.Lock()
	w.fail(err)
	w.mu.Unlock()
}

// Close fails the world with ErrWorldClosed (idempotent), releasing any
// blocked ranks. It shares chanmpi's sentinel so errors.Is(err,
// chanmpi.ErrWorldClosed) is transport-neutral.
func (w *world) Close() error {
	w.Fail(chanmpi.ErrWorldClosed)
	return nil
}

// fail is the locked implementation: record the first cause and wake every
// parked gate so blocked ranks observe the failure.
func (w *world) fail(cause error) {
	if w.err != nil || cause == nil {
		return
	}
	w.err = cause
	for len(w.parked) > 0 {
		g := w.parked[len(w.parked)-1]
		w.unpark(g)
		select {
		case g.ch <- struct{}{}:
		default:
		}
	}
}

// worldErr wraps the failure cause for an operation's return.
func (w *world) worldErr() error { return &core.WorldError{Cause: w.err} }

// --- foreign-mode scheduling ---

// gate is a foreign rank's parking spot: a one-token channel its goroutine
// blocks on while another rank drives the event loop.
type gate struct {
	w      *world
	ch     chan struct{}
	parked bool
	idx    int // position in w.parked while parked
	wakeFn func()
}

// unpark removes g from the parked set (O(1) swap-remove).
//
//repro:noalloc
func (w *world) unpark(g *gate) {
	n := len(w.parked) - 1
	last := w.parked[n]
	w.parked[g.idx] = last
	last.idx = g.idx
	w.parked[n] = nil
	w.parked = w.parked[:n]
	g.parked = false
}

// await blocks the calling rank until sig fires or the world fails. Caller
// holds w.mu; await returns with it held. In session mode the rank's proc
// waits on the des kernel; in foreign mode the rank either becomes the
// driver (advancing virtual time event by event) or parks on its gate.
//
//repro:noalloc
func (c *comm) await(sig *des.Signal) {
	w := c.w
	if c.proc != nil {
		if sig.Fired() || w.err != nil {
			return
		}
		w.mu.Unlock()
		c.proc.Wait(sig)
		w.mu.Lock()
		return
	}
	g := c.g
	for !sig.Fired() && w.err == nil {
		if !w.driving {
			w.driving = true
			for !sig.Fired() && w.err == nil && w.stepOrJudge() {
			}
			w.driving = false
			w.handoff()
			if sig.Fired() || w.err != nil {
				return
			}
		}
		w.park(g, sig)
	}
}

// park blocks the gate until a wake token arrives: its signal firing, a
// driver handoff, or world failure. The last rank to park with an empty
// event heap has proven a virtual-time deadlock and fails the world
// instead of wedging.
//
//repro:noalloc
func (w *world) park(g *gate, sig *des.Signal) {
	if !w.driving && !w.sim.Pending() && len(w.parked)+1 >= w.size {
		w.deadlock()
		return
	}
	g.parked = true
	g.idx = len(w.parked)
	w.parked = append(w.parked, g) //repro:alloc-ok parked set grows once to world size
	sig.OnFire(g.wakeFn)
	w.mu.Unlock()
	<-g.ch
	w.mu.Lock()
}

// handoff passes the event loop to a parked rank when the current driver
// stops with events still pending — otherwise virtual time would stall
// until the driver's next MPI call.
//
//repro:noalloc
func (w *world) handoff() {
	if w.err != nil || w.driving || !w.sim.Pending() || len(w.parked) == 0 {
		return
	}
	g := w.parked[len(w.parked)-1]
	w.unpark(g)
	select {
	case g.ch <- struct{}{}:
	default:
	}
}

// deadlock fails the world when every rank is blocked with no scheduled
// events. The suspect is the source of the oldest unmatched receive (a
// dropped or never-sent message), reported like a dead peer so
// core.Supervisor treats it as recoverable.
func (w *world) deadlock() {
	suspect, found := ckey{}, false
	for k, q := range w.recvQ {
		if q.len() == 0 {
			continue
		}
		if !found || k.less(suspect) {
			suspect, found = k, true
		}
	}
	lo, hi := 0, w.size
	if found {
		lo, hi = suspect.src, suspect.src+1
	}
	w.fail(&core.PeerError{
		RankLo: lo, RankHi: hi, Phase: core.PhaseFrameRead,
		Err: fmt.Errorf("simnet: virtual deadlock: all %d ranks blocked with no scheduled events", w.size),
	})
}

// --- MPI progress bookkeeping (§3) ---

// driving reports whether this rank currently makes MPI progress.
//
//repro:noalloc
func (c *comm) driving() bool { return c.inMPI > 0 || c.w.async }

// enterMPI marks the rank as inside an MPI call; on the outermost entry,
// matched rendezvous transfers stalled on this endpoint are retried.
//
//repro:noalloc
func (c *comm) enterMPI() {
	c.inMPI++
	if c.inMPI == 1 && len(c.stalled) > 0 {
		c.kickStalled()
	}
}

//repro:noalloc
func (c *comm) exitMPI() {
	c.inMPI--
	if c.inMPI == 0 {
		// The op may have scheduled events (an eager launch, a kicked
		// rendezvous) without ever blocking. If every other rank is
		// already parked, nobody is left to drive them — wake one.
		c.w.handoff()
	}
}

// kickStalled retries this endpoint's stalled rendezvous messages. The
// world-level scratch keeps the swap allocation-free; tryStart may re-park
// a still-stalled message on the (now reset) list.
//
//repro:noalloc
func (c *comm) kickStalled() {
	w := c.w
	scratch := w.kickScratch[:0]
	scratch = append(scratch, c.stalled...) //repro:alloc-ok scratch grows once to high-water mark
	c.stalled = c.stalled[:0]
	for _, m := range scratch {
		w.tryStart(m)
	}
	w.kickScratch = scratch[:0]
}
