package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// This file is the capacity-planning sweep shared by cmd/spmv-sim and
// spmv-bench's -snapshot: rank counts × kernel modes simulated on a
// machine-described cluster, reduced to the Fig. 5/6 question — at which
// scale does each kernel organization win?

// SweepConfig parameterizes a strong-scaling sweep.
type SweepConfig struct {
	Cluster machine.ClusterSpec
	Layout  Layout
	// RankCounts are the MPI rank counts to simulate. Each must be a
	// multiple of the layout's ranks-per-node for the cluster's node.
	RankCounts []int
	// Modes are the kernel organizations to compare (default core.Modes).
	Modes []core.Mode
	// Format labels the points and sets the Eq. 1 per-nonzero matrix
	// traffic (EntryBytes; 0 defaults to CRS's 12).
	Format     string
	EntryBytes float64
	// AsyncProgress models an MPI library with a working progress thread.
	AsyncProgress bool
	// Warmup and Iters control each point's measurement loop. The sweep's
	// defaults (1 and 4) are tighter than RunPoint's own: a planner wants
	// many points under a wall budget more than it wants the last decimal.
	Warmup, Iters int
	// Budget, when non-nil, bounds the planner's own wall time: the sweep
	// stops with ErrBudgetExceeded once it runs out.
	Budget *WallBudget
}

// ErrBudgetExceeded reports a sweep stopped by its wall-clock budget.
var ErrBudgetExceeded = fmt.Errorf("simnet: sweep wall-clock budget exceeded")

// SweepPoint is one simulated strong-scaling measurement, shaped for the
// machine-readable crossover table (cmd/spmv-sim's JSON, BENCH_<n>.json).
type SweepPoint struct {
	Ranks       int     `json:"ranks"`
	Nodes       int     `json:"nodes"`
	ThreadsEach int     `json:"threads_each"`
	Layout      string  `json:"layout"`
	Mode        string  `json:"mode"`
	Format      string  `json:"format"`
	TimePerIter float64 `json:"time_per_iter_s"`
	GFlops      float64 `json:"gflops"`
	Events      int64   `json:"events"`
}

// Crossover marks the smallest swept rank count at which the winning
// kernel mode differs from the winner at the smallest rank count — the
// crossover the paper's Figs. 5/6 exist to locate.
type Crossover struct {
	Ranks int    `json:"ranks"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// Sweep simulates every rank count × mode point. workload supplies the
// partitioned matrix structure per rank count (typically a memoized
// PartitionByNnz + WorkloadFromPlan over a pattern source).
func Sweep(cfg SweepConfig, workload func(ranks int) (*Workload, error)) ([]SweepPoint, error) {
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = core.Modes
	}
	format := cfg.Format
	if format == "" {
		format = "crs"
	}
	perNode := cfg.Layout.RanksPerNode(&cfg.Cluster.Node)
	var points []SweepPoint
	for _, ranks := range cfg.RankCounts {
		if ranks <= 0 || ranks%perNode != 0 {
			return points, fmt.Errorf("simnet: rank count %d is not a multiple of %d (%s on %s)",
				ranks, perNode, cfg.Layout, cfg.Cluster.Node.Name)
		}
		wl, err := workload(ranks)
		if err != nil {
			return points, err
		}
		for _, mode := range modes {
			if cfg.Budget != nil && cfg.Budget.Exceeded() {
				return points, fmt.Errorf("%w after %d of %d points",
					ErrBudgetExceeded, len(points), len(cfg.RankCounts)*len(modes))
			}
			warmup, iters := cfg.Warmup, cfg.Iters
			if warmup <= 0 {
				warmup = 1
			}
			if iters <= 0 {
				iters = 4
			}
			res, err := RunPoint(PointConfig{
				Cluster:       cfg.Cluster,
				Nodes:         ranks / perNode,
				Layout:        cfg.Layout,
				Mode:          mode,
				EntryBytes:    cfg.EntryBytes,
				AsyncProgress: cfg.AsyncProgress,
				Warmup:        warmup,
				Iters:         iters,
			}, wl)
			if err != nil {
				return points, fmt.Errorf("simnet: %d ranks, %v: %w", ranks, mode, err)
			}
			points = append(points, SweepPoint{
				Ranks:       res.Ranks,
				Nodes:       ranks / perNode,
				ThreadsEach: res.ThreadsEach,
				Layout:      cfg.Layout.String(),
				Mode:        mode.String(),
				Format:      format,
				TimePerIter: res.TimePerIter,
				GFlops:      res.GFlops,
				Events:      res.Events,
			})
		}
	}
	return points, nil
}

// FindCrossover locates the mode crossover in a sweep's points (one
// format at a time): the winner per rank count is the mode with the
// lowest time per iteration, and the crossover is the smallest rank count
// whose winner differs from the smallest rank count's. Returns false when
// one mode wins everywhere or fewer than two rank counts were swept.
func FindCrossover(points []SweepPoint) (Crossover, bool) {
	winner := map[int]SweepPoint{}
	var rankOrder []int
	for _, p := range points {
		best, ok := winner[p.Ranks]
		if !ok {
			rankOrder = append(rankOrder, p.Ranks)
		}
		if !ok || p.TimePerIter < best.TimePerIter {
			winner[p.Ranks] = p
		}
	}
	if len(rankOrder) < 2 {
		return Crossover{}, false
	}
	for i := 1; i < len(rankOrder); i++ {
		if rankOrder[i] < rankOrder[i-1] {
			return Crossover{}, false // callers sweep ascending; refuse to guess otherwise
		}
	}
	base := winner[rankOrder[0]].Mode
	for _, r := range rankOrder[1:] {
		if w := winner[r]; w.Mode != base {
			return Crossover{Ranks: r, From: base, To: w.Mode}, true
		}
	}
	return Crossover{}, false
}
