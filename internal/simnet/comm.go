package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// comm is one simulated rank's communicator. The same object serves both
// driving disciplines: foreign cluster goroutines block through its gate,
// session procs through the des kernel (proc is set by Session.Spawn).
type comm struct {
	w    *world
	rank int
	node int

	g    *gate
	proc *des.Proc

	inMPI   int
	stalled []*msg // matched rendezvous messages waiting for this endpoint

	scalar [1]float64 // resident AllreduceScalar staging
}

var _ core.Comm = (*comm)(nil)

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.w.size }

// sreq is a locally-complete send request: simnet gives transient sends
// buffered semantics (like chanmpi), so Wait is immediate. Timing costs
// still apply to the message itself on the virtual wire.
type sreq struct{ err error }

func (r sreq) Wait() error { return r.err }
func (r sreq) Done() bool  { return true }

// rreq is a transient receive request.
type rreq struct {
	c *comm
	p *rpost
}

//repro:noalloc
func (r *rreq) errLocked() error {
	if r.p.err != nil {
		return r.p.err
	}
	if !r.p.sig.Fired() {
		return r.c.w.worldErr()
	}
	return nil
}

func (r *rreq) Wait() error {
	w := r.c.w
	w.mu.Lock()
	r.c.enterMPI()
	r.c.await(r.p.sig)
	r.c.exitMPI()
	err := r.errLocked()
	w.mu.Unlock()
	return err
}

func (r *rreq) Done() bool {
	w := r.c.w
	w.mu.Lock()
	done := r.p.sig.Fired() || w.err != nil
	w.mu.Unlock()
	return done
}

// Isend starts a nonblocking buffered send: the payload is copied, the
// returned request is immediately complete, and the message pays the
// eager or rendezvous wire cost in virtual time.
func (c *comm) Isend(dst, tag int, data []float64) (core.Request, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.handoff() // drive any events this op schedules if all peers are parked
	if dst < 0 || dst >= w.size {
		return nil, &core.RankError{Op: "Isend", Rank: dst, Size: w.size}
	}
	if w.err != nil {
		return nil, w.worldErr()
	}
	m := w.newMsg() //repro:alloc-ok transient sends are off the steady-state hot path
	m.src, m.dst, m.tag = c.rank, dst, tag
	m.n = len(data)
	m.data = append(m.data[:0], data...)
	m.wireB = wireBytes(m.n)
	m.eager = 8*m.n < w.eager
	w.send(m)
	return sreq{}, nil
}

// Irecv posts a nonblocking receive; completion (and any truncation
// error) surfaces through the returned request's Wait.
func (c *comm) Irecv(src, tag int, buf []float64) (core.Request, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.handoff() // drive any events this op schedules if all peers are parked
	if src < 0 || src >= w.size {
		return nil, &core.RankError{Op: "Irecv", Rank: src, Size: w.size}
	}
	if w.err != nil {
		return nil, w.worldErr()
	}
	p := &rpost{c: c, src: src, tag: tag, buf: buf, sig: w.sim.NewSignal()} //repro:alloc-ok transient receive
	p.queued = true
	w.recv(p)
	w.armRecvDeadline(p)
	return &rreq{c: c, p: p}, nil //repro:alloc-ok transient receive
}

// psend is a persistent send channel. Two regimes, fixed at SendInit by
// the buffer's wire size:
//
//   - eager: buffered like chanmpi — each Start snapshots the buffer into
//     a pooled message and completes locally; Wait returns immediately.
//     The pool exists because virtual time lets a sender run several
//     iterations ahead of its receiver.
//   - rendezvous: one resident message referencing the caller's buffer
//     (zero copy); Wait blocks until delivery, keeping the rank inside
//     MPI — which is exactly what the §3 progress rule requires of a
//     large synchronous send.
type psend struct {
	c        *comm
	dst, tag int
	buf      []float64
	eager    bool

	// rendezvous regime
	m        *msg
	sig      *des.Signal
	inflight bool

	// eager regime
	pool    []*msg
	lastErr error
}

// SendInit creates a persistent send channel to dst (MPI_Send_init).
func (c *comm) SendInit(dst, tag int, buf []float64) (core.PersistentRequest, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if dst < 0 || dst >= w.size {
		return nil, &core.RankError{Op: "SendInit", Rank: dst, Size: w.size}
	}
	p := &psend{c: c, dst: dst, tag: tag, buf: buf}
	p.eager = 8*len(buf) < w.eager
	if !p.eager {
		p.sig = w.sim.NewSignal()
		m := w.newMsg()
		m.src, m.dst, m.tag = c.rank, dst, tag
		m.sendSig = p.sig
		p.m = m
	}
	return p, nil
}

func (p *psend) Start() error {
	c, w := p.c, p.c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.handoff() // drive any events this op schedules if all peers are parked
	if w.err != nil {
		return w.worldErr()
	}
	if p.eager {
		var m *msg
		if n := len(p.pool); n > 0 {
			m = p.pool[n-1]
			p.pool[n-1] = nil
			p.pool = p.pool[:n-1]
			m.matched, m.started, m.arrived, m.delivered = false, false, false, false
		} else {
			m = w.newMsg() //repro:alloc-ok pool warm-up; delivery refills it
			m.src, m.dst, m.tag = c.rank, p.dst, p.tag
			m.owner = p
			m.eager = true
		}
		m.n = len(p.buf)
		m.data = append(m.data[:0], p.buf...)
		m.wireB = wireBytes(m.n)
		w.send(m)
		if w.err != nil {
			return w.worldErr()
		}
		p.lastErr = nil
		return nil
	}
	if p.inflight {
		return fmt.Errorf("simnet: Start on a persistent send still in flight (Wait it first)")
	}
	p.inflight = true
	p.sig.Reset()
	m := p.m
	m.matched, m.started, m.arrived, m.delivered = false, false, false, false
	m.post = nil
	m.n = len(p.buf)
	m.data = p.buf
	m.wireB = wireBytes(m.n)
	w.send(m)
	return nil
}

//repro:noalloc
func (p *psend) Wait() error {
	if p.eager {
		return p.lastErr
	}
	c, w := p.c, p.c.w
	w.mu.Lock()
	c.enterMPI()
	c.await(p.sig)
	c.exitMPI()
	p.inflight = false
	var err error
	if !p.sig.Fired() {
		err = w.worldErr()
	}
	w.mu.Unlock()
	return err
}

// recycleMsg returns a delivered pooled message to its owning channel.
// Caller holds w.mu.
//
//repro:noalloc
func (p *psend) recycleMsg(m *msg) {
	m.post = nil
	p.pool = append(p.pool, m) //repro:alloc-ok pool grows once to high-water mark
}

// precv is a persistent receive channel: one resident post, re-queued by
// each Start. Mirrors chanmpi's contract, including the still-in-flight
// guard and immediate-match truncation reporting from Start.
type precv struct {
	c *comm
	p *rpost
}

// RecvInit creates a persistent receive channel for src (MPI_Recv_init).
func (c *comm) RecvInit(src, tag int, buf []float64) (core.PersistentRequest, error) {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if src < 0 || src >= w.size {
		return nil, &core.RankError{Op: "RecvInit", Rank: src, Size: w.size}
	}
	return &precv{c: c, p: &rpost{c: c, src: src, tag: tag, buf: buf, sig: w.sim.NewSignal()}}, nil
}

func (r *precv) Start() error {
	w := r.c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.handoff() // drive any events this op schedules if all peers are parked
	if w.err != nil {
		return w.worldErr()
	}
	p := r.p
	if p.queued && !p.matched {
		return fmt.Errorf("simnet: Start on a persistent receive still in flight (Wait it first)")
	}
	p.sig.Reset()
	p.err = nil
	p.matched = false
	p.m = nil
	p.queued = true
	p.n = 0
	p.gen++
	w.recv(p)
	w.armRecvDeadline(p)
	if p.err != nil {
		// Immediate-match truncation: report from Start, like chanmpi.
		return p.err
	}
	return nil
}

//repro:noalloc
func (r *precv) Wait() error {
	c, w := r.c, r.c.w
	w.mu.Lock()
	c.enterMPI()
	c.await(r.p.sig)
	c.exitMPI()
	var err error
	if r.p.err != nil {
		err = r.p.err
	} else if !r.p.sig.Fired() {
		err = w.worldErr()
	}
	w.mu.Unlock()
	return err
}

// Waitall blocks until every request completes, counting as ONE MPI entry
// for progress purposes (a rank sitting in Waitall drives all its
// rendezvous transfers, the heart of the §3 model).
func (c *comm) Waitall(reqs ...core.Request) error {
	w := c.w
	w.mu.Lock()
	c.enterMPI()
	var first error
	for _, req := range reqs {
		switch t := req.(type) {
		case *rreq:
			c.await(t.p.sig)
			if err := t.errLocked(); err != nil && first == nil {
				first = err
			}
		case sreq:
			if t.err != nil && first == nil {
				first = t.err
			}
		default:
			// A foreign request (not from this transport): wait unlocked.
			w.mu.Unlock()
			err := req.Wait()
			w.mu.Lock()
			if err != nil && first == nil {
				first = err
			}
		}
	}
	c.exitMPI()
	w.mu.Unlock()
	return first
}
