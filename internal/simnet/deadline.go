package simnet

// Virtual-time receive deadlines, foreign-mode edition.
//
// The obvious implementation — schedule a des event at post+deadline that
// fails the world if the receive hasn't completed — is wrong in foreign
// mode. Rank goroutines enter the world on the OS scheduler's timetable,
// and virtual time advances whenever SOME rank drives the event heap: an
// armed expiry event lets the first-arriving rank fast-forward the clock
// to the deadline while its peers' goroutines simply haven't been
// scheduled yet, indicting perfectly healthy ranks. (Session mode has no
// such race — procs run under the des token — but it also takes no
// Transport, so deadlines never arm there.)
//
// The deadline is therefore a CAP on clock advancement, enforced by the
// driver at each pop:
//
//   - If the next event's time is within every live deadline, pop it.
//   - If it lies beyond an expired receive that is provably late — matched
//     to a message whose transfer has started, so its delivery is itself
//     an event at or beyond the next pop — fail the world exactly at the
//     deadline instant, naming the source. Provable lateness is what makes
//     attribution deterministic: a healthy transfer delivers in virtual
//     microseconds and retires its watch entry long before any deadline,
//     so only genuinely degraded sources ever qualify.
//   - If it lies beyond an expired receive with no started transfer, the
//     missing send may still be posted at the CURRENT virtual instant by a
//     goroutine the OS hasn't run yet — so the driver yields instead of
//     advancing, and the hand-off rotation retries as ranks arrive. A
//     rotation budget backstops the one unresolvable case (the sender is
//     never coming, e.g. its frame was dropped by fault injection while
//     unrelated events keep the heap non-empty).

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// armedRecv is one posted receive on the deadline watchlist.
type armedRecv struct {
	p   *rpost
	gen int     // p.gen at arming; a re-posted persistent receive retires the entry
	at  float64 // virtual instant the receive expires
}

// stuckSpins bounds the driver hand-off rotation while an expired receive
// stays unattributable: each yielded pop attempt counts, and any real
// progress (an event fired, a message or receive posted) resets the
// count. The budget is generous — rotations are microseconds of wall
// clock — so a rank merely stuck in a long compute phase posts again well
// before it runs out.
const stuckSpins = 1 << 16

// armRecvDeadline registers a just-posted receive on the deadline
// watchlist. No event is scheduled — see the file comment for why the
// deadline caps clock advancement instead.
func (w *world) armRecvDeadline(p *rpost) {
	if w.recvDeadline <= 0 {
		return
	}
	w.stuck = 0 // a fresh post is real progress for the rotation backstop
	at := w.sim.Now() + w.recvDeadline
	w.armed = append(w.armed, armedRecv{p: p, gen: p.gen, at: at})
	if at < w.armedFloor {
		w.armedFloor = at
	}
}

// stepOrJudge advances the simulation by one event unless doing so would
// carry virtual time past a posted receive's deadline; it is the driver's
// replacement for sim.Step. Returns false when the driver should stop —
// the heap is empty, the world just failed, or progress must wait for
// rank goroutines that haven't been scheduled yet. Caller holds w.mu.
//
//repro:noalloc
func (w *world) stepOrJudge() bool {
	if w.recvDeadline > 0 {
		if nt, ok := w.sim.NextAt(); ok && nt > w.armedFloor {
			p, at, overdue := w.judgeOverdue(nt)
			if p != nil {
				return w.failOverdue(p, at)
			}
			if overdue {
				w.stuck++
				if w.stuck >= stuckSpins {
					w.failUnattributed()
				}
				return false
			}
			// The floor was stale; judgeOverdue recomputed it. Fall
			// through and pop.
		}
	}
	w.stuck = 0
	return w.sim.Step()
}

// judgeOverdue scans the watchlist: dead entries (delivered, errored, or
// superseded by a re-post) are compacted away and the floor recomputed;
// among live entries expiring before nt, the earliest provably-late one
// (ties broken by channel key, so attribution does not depend on
// goroutine scheduling) is returned with its expiry instant. overdue
// reports whether ANY live entry has expired, attributable or not.
// Caller holds w.mu.
//
//repro:noalloc
func (w *world) judgeOverdue(nt float64) (*rpost, float64, bool) {
	floor := math.Inf(1)
	live := w.armed[:0]
	var best *rpost
	var bestAt float64
	var bestKey ckey
	overdue := false
	for _, e := range w.armed {
		if e.p.sig.Fired() || e.p.gen != e.gen || e.p.err != nil {
			continue
		}
		live = append(live, e) //repro:alloc-ok in-place compaction, never grows
		if e.at < floor {
			floor = e.at
		}
		if e.at >= nt {
			continue
		}
		overdue = true
		if m := e.p.m; m == nil || !m.started {
			continue // no transfer scheduled: a late goroutine could still post one
		}
		k := ckey{e.p.src, e.p.c.rank, e.p.tag}
		if best == nil || e.at < bestAt || (e.at == bestAt && k.less(bestKey)) {
			best, bestAt, bestKey = e.p, e.at, k
		}
	}
	for i := len(live); i < len(w.armed); i++ {
		w.armed[i] = armedRecv{}
	}
	w.armed = live
	w.armedFloor = floor
	return best, bestAt, overdue
}

// failOverdue lands the clock exactly on the expired deadline and fails
// the world there, so time-to-detect is readable off the virtual clock.
// The failure event is necessarily the heap minimum (the judged expiry
// precedes every scheduled event), so the immediate Step pops it.
func (w *world) failOverdue(p *rpost, at float64) bool {
	w.sim.At(at, func() {
		w.fail(&core.PeerError{
			RankLo: p.src, RankHi: p.src + 1, Phase: core.PhaseSlow,
			Err: fmt.Errorf("simnet: receive from rank %d undelivered after %gs of virtual time (alive but degraded)", p.src, w.recvDeadline),
		})
	})
	return w.sim.Step()
}

// failUnattributed is the rotation-budget backstop: an expired receive
// has no started transfer and no goroutine is posting one. Blame the
// earliest expired entry's source (ties by channel key), mirroring the
// virtual-deadlock suspect rule.
func (w *world) failUnattributed() {
	var best *rpost
	var bestAt float64
	var bestKey ckey
	for _, e := range w.armed {
		k := ckey{e.p.src, e.p.c.rank, e.p.tag}
		if best == nil || e.at < bestAt || (e.at == bestAt && k.less(bestKey)) {
			best, bestAt, bestKey = e.p, e.at, k
		}
	}
	if best == nil {
		return
	}
	w.fail(&core.PeerError{
		RankLo: best.src, RankHi: best.src + 1, Phase: core.PhaseSlow,
		Err: fmt.Errorf("simnet: receive from rank %d expired after %gs of virtual time and no matching transfer was ever started", best.src, w.recvDeadline),
	})
}
