package simnet

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/machine"
)

// This file is the capacity planner: simexec's process-layout and
// code-balance model (Eqs. 1/2, Figs. 5/6) rebuilt on the simnet Session,
// so the simulated strong-scaling points exercise the SAME core.Comm
// persistent-channel surface the real runtime uses — Start/Wait halo
// exchanges, modeled barriers — instead of a parallel MPI re-enactment.
// cmd/spmv-sim drives it.

// Layout selects how MPI processes map onto a node (the three panels of
// Figs. 5 and 6).
type Layout int

const (
	// ProcPerCore is pure MPI: one single-threaded process per physical core.
	ProcPerCore Layout = iota
	// ProcPerLD is one process per NUMA locality domain, one thread per
	// core of the domain — the paper's best-practice hybrid layout.
	ProcPerLD
	// ProcPerNode is one process per node, threads spanning all domains.
	ProcPerNode
)

func (l Layout) String() string {
	switch l {
	case ProcPerCore:
		return "proc-per-core"
	case ProcPerLD:
		return "proc-per-LD"
	case ProcPerNode:
		return "proc-per-node"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Layouts lists all process layouts in presentation order.
var Layouts = []Layout{ProcPerCore, ProcPerLD, ProcPerNode}

// layoutTokens is the single source of truth for every spelling
// ParseLayout accepts, canonical String() names first.
var layoutTokens = []struct {
	tok    string
	layout Layout
}{
	{"proc-per-core", ProcPerCore},
	{"core", ProcPerCore},
	{"proc-per-ld", ProcPerLD},
	{"ld", ProcPerLD},
	{"proc-per-node", ProcPerNode},
	{"node", ProcPerNode},
}

// LayoutTokens returns every spelling ParseLayout accepts.
func LayoutTokens() []string {
	out := make([]string, len(layoutTokens))
	for i, e := range layoutTokens {
		out[i] = e.tok
	}
	return out
}

// ParseLayout maps a layout name to its Layout value; an unknown name
// yields an error that enumerates every valid token.
func ParseLayout(s string) (Layout, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, e := range layoutTokens {
		if e.tok == name {
			return e.layout, nil
		}
	}
	return 0, fmt.Errorf("simnet: unknown layout %q (valid: %s)", s, strings.Join(LayoutTokens(), ", "))
}

// RanksPerNode returns how many MPI processes this layout places on a node.
func (l Layout) RanksPerNode(node *machine.NodeSpec) int {
	switch l {
	case ProcPerCore:
		return node.CoresPerNode()
	case ProcPerLD:
		return node.LDsPerNode()
	default:
		return 1
	}
}

// CommPlacement selects where task mode's communication thread runs (§3.2).
type CommPlacement int

const (
	// CommOnSMT binds the communication thread to a virtual (SMT) core:
	// all physical cores keep computing.
	CommOnSMT CommPlacement = iota
	// CommDedicatedCore devotes one physical core to communication,
	// removing it from the compute team.
	CommDedicatedCore
)

func (c CommPlacement) String() string {
	if c == CommOnSMT {
		return "comm-on-SMT"
	}
	return "comm-on-core"
}

// haloTag is the message tag of the planner's halo exchanges (matching is
// FIFO per channel, so one tag suffices across iterations).
const haloTag = 0

// Seg is one halo segment exchanged with a peer.
type Seg struct {
	Peer  int
	Elems int
}

// Workload carries the structural quantities of a partitioned matrix —
// everything the planner needs, with no values attached.
type Workload struct {
	Name      string
	Ranks     int
	Rows      []int
	NnzLocal  []int64
	NnzRemote []int64
	Sends     [][]Seg
	Recvs     [][]Seg
	TotalNnz  int64
	Nnzr      float64
	// Kappa is the matrix's κ (extra B(:) traffic in bytes per nonzero,
	// Eq. 1), measured by the cache simulator or taken from §2.
	Kappa float64
}

// WorkloadFromPlan extracts the planner workload from a communication
// plan (values not required).
func WorkloadFromPlan(plan *core.Plan, name string, kappa float64) *Workload {
	r := plan.Part.NumRanks()
	wl := &Workload{
		Name: name, Ranks: r, Kappa: kappa,
		Rows:      make([]int, r),
		NnzLocal:  make([]int64, r),
		NnzRemote: make([]int64, r),
		Sends:     make([][]Seg, r),
		Recvs:     make([][]Seg, r),
	}
	for i, rp := range plan.Ranks {
		wl.Rows[i] = rp.NLocal
		wl.NnzLocal[i] = rp.NnzLocal
		wl.NnzRemote[i] = rp.NnzRemote
		wl.TotalNnz += rp.NnzLocal + rp.NnzRemote
		for _, tx := range rp.SendTo {
			wl.Sends[i] = append(wl.Sends[i], Seg{Peer: tx.Peer, Elems: tx.Count})
		}
		for _, rx := range rp.RecvFrom {
			wl.Recvs[i] = append(wl.Recvs[i], Seg{Peer: rx.Peer, Elems: rx.Count})
		}
	}
	if plan.Part.Rows() > 0 {
		wl.Nnzr = float64(wl.TotalNnz) / float64(plan.Part.Rows())
	}
	return wl
}

// PointConfig parameterizes one simulated strong-scaling point.
type PointConfig struct {
	Cluster machine.ClusterSpec
	Nodes   int
	Layout  Layout
	Mode    core.Mode

	// EntryBytes is the per-nonzero matrix traffic of Eq. 1 (value +
	// index). 12 for CRS (8+4); SELL-C-σ multiplies by its padding factor.
	// 0 defaults to 12.
	EntryBytes float64

	// CommPlacement applies to task mode only. Defaults to CommOnSMT when
	// the node has SMT, CommDedicatedCore otherwise.
	CommPlacement *CommPlacement

	// AsyncProgress models an MPI library with a working progress thread.
	AsyncProgress bool

	// Warmup and Iters control the measurement loop (defaults 2 and 10).
	Warmup, Iters int

	// OmpBarrier is the synchronization cost per parallel region
	// (default 1.5 µs).
	OmpBarrier float64

	// TorusOccupancy and PlacementSeed model fragmented torus allocations
	// (see Config).
	TorusOccupancy float64
	PlacementSeed  uint64
}

// RanksFor returns the number of MPI ranks this configuration runs.
func (c *PointConfig) RanksFor() int {
	return c.Nodes * c.Layout.RanksPerNode(&c.Cluster.Node)
}

// Result summarizes one simulated strong-scaling point.
type Result struct {
	TimePerIter float64
	GFlops      float64
	Ranks       int
	ThreadsEach int
	// Events is the DES event count of the run — a determinism fingerprint
	// (two runs of the same point must agree exactly).
	Events int64
}

// proc is the per-rank planner state: which LD memory buses the rank's
// compute threads live on.
type proc struct {
	lds     []*fluid.Resource
	workers []int
	totalW  int
}

// computeFlows starts one flow per worker thread, splitting bytes evenly,
// and returns the completion signals.
func (p *proc) computeFlows(sys *fluid.System, bytes float64) []*des.Signal {
	if p.totalW == 0 || bytes <= 0 {
		return nil
	}
	share := bytes / float64(p.totalW)
	var sigs []*des.Signal
	for i, ld := range p.lds {
		for w := 0; w < p.workers[i]; w++ {
			f := sys.Start(share, ld)
			sigs = append(sigs, f.Done)
		}
	}
	return sigs
}

// RunPoint simulates one strong-scaling point and returns its steady-state
// performance. The halo exchange runs over real persistent core.Comm
// channels (data moves; zero payloads here since only structure matters),
// compute phases are fluid flows on the LD memory buses with the byte
// counts of the code-balance model:
//
//	full kernel:  nnz·(eb+κ) + rows·24        (Eq. 1 × 2·nnz)
//	split local:  nnzLocal·(eb+κ) + rows·24
//	split remote: nnzRemote·(eb+κ) + rows·16  (result written twice, Eq. 2)
//	gather:       24 bytes per gathered element
func RunPoint(cfg PointConfig, wl *Workload) (Result, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("simnet: nodes %d < 1", cfg.Nodes)
	}
	ranks := cfg.RanksFor()
	if ranks != wl.Ranks {
		return Result{}, fmt.Errorf("simnet: config needs %d ranks but workload has %d", ranks, wl.Ranks)
	}
	node := &cfg.Cluster.Node
	commPlace := CommOnSMT
	if node.SMTWays < 2 {
		commPlace = CommDedicatedCore
	}
	if cfg.CommPlacement != nil {
		commPlace = *cfg.CommPlacement
	}
	if cfg.Mode == core.TaskMode && commPlace == CommOnSMT && node.SMTWays < 2 {
		return Result{}, fmt.Errorf("simnet: %s has no SMT for the communication thread", node.Name)
	}
	warmup, iters := cfg.Warmup, cfg.Iters
	if warmup <= 0 {
		warmup = 2
	}
	if iters <= 0 {
		iters = 10
	}
	ompBarrier := cfg.OmpBarrier
	if ompBarrier == 0 {
		ompBarrier = 1.5e-6
	}
	entryB := cfg.EntryBytes
	if entryB == 0 {
		entryB = 12
	}

	procsPerNode := ranks / cfg.Nodes
	sess, err := NewSession(Config{
		Machine:        cfg.Cluster,
		RanksPerNode:   procsPerNode,
		AsyncProgress:  cfg.AsyncProgress,
		TorusOccupancy: cfg.TorusOccupancy,
		PlacementSeed:  cfg.PlacementSeed,
	}, ranks)
	if err != nil {
		return Result{}, err
	}
	sys := sess.Sys()

	// Memory resources: one per LD per node, with the spMVM-achievable
	// bandwidth curve (Fig. 3).
	ldRes := make([][]*fluid.Resource, cfg.Nodes)
	for n := range ldRes {
		ldRes[n] = make([]*fluid.Resource, node.LDsPerNode())
		for l := range ldRes[n] {
			ldRes[n][l] = sys.NewResource(
				fmt.Sprintf("mem[n%d,ld%d]", n, l),
				fluid.TableCapacity(node.SpmvBW),
			)
		}
	}

	procs := make([]*proc, ranks)
	for r := 0; r < ranks; r++ {
		p := &proc{}
		n := r / procsPerNode
		idx := r % procsPerNode
		switch cfg.Layout {
		case ProcPerCore:
			p.lds = []*fluid.Resource{ldRes[n][idx/node.CoresPerLD]}
			p.workers = []int{1}
		case ProcPerLD:
			p.lds = []*fluid.Resource{ldRes[n][idx]}
			p.workers = []int{node.CoresPerLD}
		default: // ProcPerNode
			p.lds = append([]*fluid.Resource(nil), ldRes[n]...)
			p.workers = make([]int, len(p.lds))
			for i := range p.workers {
				p.workers[i] = node.CoresPerLD
			}
		}
		// Task mode with a dedicated communication core gives up one
		// compute thread (paper: no difference beyond saturation).
		if cfg.Mode == core.TaskMode && commPlace == CommDedicatedCore {
			if p.workers[0] > 1 {
				p.workers[0]--
			} else if len(p.workers) == 1 {
				return Result{}, fmt.Errorf("simnet: task mode with a dedicated comm core leaves no compute thread in layout %v", cfg.Layout)
			}
		}
		for _, w := range p.workers {
			p.totalW += w
		}
		procs[r] = p
	}

	kappa := wl.Kappa
	times := make([]float64, 2)
	for r := 0; r < ranks; r++ {
		r := r
		p := procs[r]
		rows := float64(wl.Rows[r])
		nl := float64(wl.NnzLocal[r])
		nr := float64(wl.NnzRemote[r])
		var sendElems int
		for _, s := range wl.Sends[r] {
			sendElems += s.Elems
		}
		gatherBytes := 24 * float64(sendElems)
		fullBytes := (nl+nr)*(entryB+kappa) + rows*24
		localBytes := nl*(entryB+kappa) + rows*24
		remoteBytes := nr*(entryB+kappa) + rows*16

		sess.Spawn(r, func(pr *des.Proc, c core.Comm) error {
			// Compile the halo schedule into persistent channels once, like
			// the resident Workers of internal/core.
			recvs := make([]core.PersistentRequest, len(wl.Recvs[r]))
			for i, rx := range wl.Recvs[r] {
				pc, err := c.RecvInit(rx.Peer, haloTag, make([]float64, rx.Elems))
				if err != nil {
					return err
				}
				recvs[i] = pc
			}
			sends := make([]core.PersistentRequest, len(wl.Sends[r]))
			for i, tx := range wl.Sends[r] {
				pc, err := c.SendInit(tx.Peer, haloTag, make([]float64, tx.Elems))
				if err != nil {
					return err
				}
				sends[i] = pc
			}

			computePhase := func(bytes float64) {
				if sigs := p.computeFlows(sys, bytes); sigs != nil {
					pr.WaitAll(sigs...)
					pr.Sleep(ompBarrier)
				}
			}
			startAll := func(reqs []core.PersistentRequest) error {
				for _, q := range reqs {
					if err := q.Start(); err != nil {
						return err
					}
				}
				return nil
			}
			waitAll := func(reqs []core.PersistentRequest) error {
				var first error
				for _, q := range reqs {
					if err := q.Wait(); err != nil && first == nil {
						first = err
					}
				}
				return first
			}
			waitHalo := func() error {
				if err := waitAll(recvs); err != nil {
					return err
				}
				return waitAll(sends)
			}

			step := func() error {
				if err := startAll(recvs); err != nil {
					return err
				}
				computePhase(gatherBytes)
				if err := startAll(sends); err != nil {
					return err
				}
				switch cfg.Mode {
				case core.VectorNoOverlap:
					if err := waitHalo(); err != nil {
						return err
					}
					computePhase(fullBytes)
				case core.VectorNaiveOverlap:
					// Local part first; with standard progress semantics
					// the transfers do not move until the waits.
					computePhase(localBytes)
					if err := waitHalo(); err != nil {
						return err
					}
					computePhase(remoteBytes)
				default: // core.TaskMode
					// This proc doubles as the communication thread: it
					// sits inside the MPI waits, driving progress, while
					// the team's local flows compute concurrently.
					sigs := p.computeFlows(sys, localBytes)
					if err := waitHalo(); err != nil {
						return err
					}
					pr.WaitAll(sigs...) // the omp_barrier of Fig. 4c
					pr.Sleep(ompBarrier)
					computePhase(remoteBytes)
				}
				return nil
			}

			for it := 0; it < warmup; it++ {
				if err := step(); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if r == 0 {
				times[0] = pr.Now()
			}
			for it := 0; it < iters; it++ {
				if err := step(); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if r == 0 {
				times[1] = pr.Now()
			}
			return nil
		})
	}

	if err := sess.Run(); err != nil {
		return Result{}, fmt.Errorf("simnet: %w", err)
	}
	perIter := (times[1] - times[0]) / float64(iters)
	res := Result{
		TimePerIter: perIter,
		Ranks:       ranks,
		ThreadsEach: procs[0].totalW,
		Events:      sess.Sim().Events(),
	}
	if perIter > 0 && !math.IsNaN(perIter) {
		res.GFlops = 2 * float64(wl.TotalNnz) / perIter / 1e9
	}
	return res, nil
}
