package simnet

import "time"

// WallBudget is the package's ONE sanctioned wall-clock source. Everything
// else in simnet runs in virtual time and the reprolint wallclock analyzer
// rejects package time here; the budget is the deliberate exception — it
// bounds how long the PLANNER itself may run (cmd/spmv-sim's -budget
// flag, the sim-smoke CI gate), which is a property of the host machine,
// not of the simulated one.
type WallBudget struct {
	start time.Time //reprolint:ignore wallclock the sanctioned planner wall-clock budget
	limit time.Duration
}

// NewWallBudget starts a budget of d; d ≤ 0 means unlimited.
func NewWallBudget(d time.Duration) *WallBudget {
	return &WallBudget{start: time.Now(), limit: d} //reprolint:ignore wallclock the sanctioned planner wall-clock budget
}

// Elapsed returns wall time since the budget started.
func (b *WallBudget) Elapsed() time.Duration {
	return time.Since(b.start) //reprolint:ignore wallclock the sanctioned planner wall-clock budget
}

// Exceeded reports whether the budget has run out.
func (b *WallBudget) Exceeded() bool {
	return b.limit > 0 && b.Elapsed() > b.limit
}
