// Package perfmodel implements the paper's node-level performance model
// (§1.2): the code balance of the CRS spMVM kernel (Eq. 1), its split-kernel
// variant (Eq. 2), roofline-style performance bounds from measured
// bandwidth, and the experimental extraction of the κ parameter (the extra
// B(:) traffic caused by limited cache capacity).
package perfmodel

import "fmt"

// CodeBalance returns B_CRS in bytes/flop (Eq. 1):
//
//	B_CRS = 6 + 12/Nnzr + κ/2
//
// where Nnzr is the average number of nonzeros per row and κ the extra
// bytes of B(:) traffic per inner-loop iteration.
func CodeBalance(nnzr, kappa float64) float64 {
	if nnzr <= 0 {
		panic(fmt.Sprintf("perfmodel: nnzr %g must be positive", nnzr))
	}
	return 6 + 12/nnzr + kappa/2
}

// SplitCodeBalance returns the split-kernel balance (Eq. 2):
//
//	B_split = 6 + 20/Nnzr + κ/2
//
// The extra 8/Nnzr bytes/flop come from writing the result vector twice in
// the overlap variants (Fig. 4b/4c).
func SplitCodeBalance(nnzr, kappa float64) float64 {
	if nnzr <= 0 {
		panic(fmt.Sprintf("perfmodel: nnzr %g must be positive", nnzr))
	}
	return 6 + 20/nnzr + kappa/2
}

// MaxPerformance returns the bandwidth-limited performance ceiling in
// flop/s for a given memory bandwidth (bytes/s) and code balance
// (bytes/flop) — the roofline the paper evaluates with κ = 0.
func MaxPerformance(bandwidth, balance float64) float64 {
	if balance <= 0 {
		panic(fmt.Sprintf("perfmodel: balance %g must be positive", balance))
	}
	return bandwidth / balance
}

// KappaFromMeasurement inverts Eq. 1: given the measured spMVM memory
// bandwidth (bytes/s), the measured performance (flop/s) and Nnzr, it
// returns the experimentally realized κ (§2: κ = 2.5 for HMeP on Nehalem).
func KappaFromMeasurement(bandwidth, performance, nnzr float64) float64 {
	if performance <= 0 {
		panic(fmt.Sprintf("perfmodel: performance %g must be positive", performance))
	}
	balance := bandwidth / performance
	return 2 * (balance - 6 - 12/nnzr)
}

// KappaFromTraffic converts measured excess B(:) traffic into κ: extra is
// the number of bytes of B(:) loaded from memory beyond the compulsory
// first load, nnz the number of inner-loop iterations.
func KappaFromTraffic(extraBytes float64, nnz int64) float64 {
	if nnz <= 0 {
		panic("perfmodel: nnz must be positive")
	}
	return extraBytes / float64(nnz)
}

// RHSLoadFactor returns how many times the full B(:) vector is effectively
// loaded from main memory: 1 (compulsory) + κ·Nnzr/8 extra. The paper's §2
// example: κ = 2.5, Nnzr = 15 → B(:) loaded about six times.
func RHSLoadFactor(kappa, nnzr float64) float64 {
	return 1 + kappa*nnzr/8
}

// SplitPenalty returns the predicted relative slowdown of the split kernel
// versus the monolithic kernel at equal bandwidth: B_split/B_CRS - 1.
// For Nnzr ≈ 7…15 and κ = 0 this is the paper's "between 15% and 8%".
func SplitPenalty(nnzr, kappa float64) float64 {
	return SplitCodeBalance(nnzr, kappa)/CodeBalance(nnzr, kappa) - 1
}

// Prediction bundles the model outputs for one machine/matrix combination.
type Prediction struct {
	Nnzr           float64
	Kappa          float64
	Balance        float64 // bytes/flop, Eq. 1
	SplitBalance   float64 // bytes/flop, Eq. 2
	MaxGFlops      float64 // bandwidth / balance at κ=0 (upper bound)
	ExpectedGFlops float64 // bandwidth / balance at the given κ
}

// Predict evaluates the model for a measured bandwidth (bytes/s).
func Predict(bandwidth, nnzr, kappa float64) Prediction {
	return Prediction{
		Nnzr:           nnzr,
		Kappa:          kappa,
		Balance:        CodeBalance(nnzr, kappa),
		SplitBalance:   SplitCodeBalance(nnzr, kappa),
		MaxGFlops:      MaxPerformance(bandwidth, CodeBalance(nnzr, 0)) / 1e9,
		ExpectedGFlops: MaxPerformance(bandwidth, CodeBalance(nnzr, kappa)) / 1e9,
	}
}
