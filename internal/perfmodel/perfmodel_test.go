package perfmodel

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6g, want %.6g", name, got, want)
	}
}

func TestCodeBalancePaperValues(t *testing.T) {
	// §2: Nnzr = 15, κ = 0 → B = 6.8 bytes/flop; with 18.1 GB/s the socket
	// ceiling is 2.66 GFlop/s and with STREAM 21.2 GB/s it is 3.12.
	b := CodeBalance(15, 0)
	almost(t, "B_CRS(15,0)", b, 6.8, 1e-12)
	almost(t, "max perf @18.1GB/s", MaxPerformance(18.1e9, b)/1e9, 2.66, 0.01)
	almost(t, "max perf @21.2GB/s", MaxPerformance(21.2e9, b)/1e9, 3.12, 0.01)
}

func TestKappaExtractionPaperValue(t *testing.T) {
	// §2: measured 2.25 GFlop/s at 18.1 GB/s, Nnzr = 15 → κ ≈ 2.5
	// (37.3 bytes per row ⇒ 2.49 bytes per inner iteration).
	kappa := KappaFromMeasurement(18.1e9, 2.25e9, 15)
	if kappa < 2.2 || kappa > 2.8 {
		t.Errorf("κ = %.3f, paper finds ≈ 2.5", kappa)
	}
}

func TestRHSLoadFactorPaperValue(t *testing.T) {
	// §2: κ = 2.5, Nnzr = 15 → "the complete vector B(:) is loaded six
	// times from main memory".
	f := RHSLoadFactor(2.5, 15)
	if math.Abs(f-5.7) > 0.6 {
		t.Errorf("RHS load factor = %.2f, paper says about 6", f)
	}
}

func TestSplitPenaltyPaperRange(t *testing.T) {
	// §3.1: for Nnzr = 7…15 and κ = 0 the split-kernel penalty is between
	// 15% and 8%, and smaller for κ > 0.
	p7 := SplitPenalty(7, 0)
	p15 := SplitPenalty(15, 0)
	if math.Abs(p7-0.146) > 0.02 {
		t.Errorf("penalty(Nnzr=7) = %.3f, want ≈ 0.15", p7)
	}
	if math.Abs(p15-0.076) > 0.02 {
		t.Errorf("penalty(Nnzr=15) = %.3f, want ≈ 0.08", p15)
	}
	if SplitPenalty(7, 3) >= p7 {
		t.Error("penalty should shrink for κ > 0")
	}
}

func TestHMEpKappaImpliesTenPercentDrop(t *testing.T) {
	// §2: κ(HMEp) = 3.79 vs κ(HMeP) = 2.5 → ≈10% performance drop at equal
	// bandwidth.
	drop := 1 - CodeBalance(15, 2.5)/CodeBalance(15, 3.79)
	if math.Abs(drop-0.074) > 0.04 {
		t.Errorf("predicted HMEp drop = %.3f, paper reports about 10%%", drop)
	}
}

func TestSplitVsPlainBalanceRelation(t *testing.T) {
	// B_split - B_CRS = 8/Nnzr exactly, for any κ.
	for _, nnzr := range []float64{3, 7, 15, 40} {
		for _, kappa := range []float64{0, 1.3, 5} {
			diff := SplitCodeBalance(nnzr, kappa) - CodeBalance(nnzr, kappa)
			almost(t, "B_split-B_CRS", diff, 8/nnzr, 1e-12)
		}
	}
}

func TestKappaRoundTrip(t *testing.T) {
	// KappaFromMeasurement inverts CodeBalance.
	for _, kappa := range []float64{0, 1.0, 2.5, 3.79} {
		nnzr := 15.0
		bw := 18.1e9
		perf := MaxPerformance(bw, CodeBalance(nnzr, kappa))
		almost(t, "κ round trip", KappaFromMeasurement(bw, perf, nnzr), kappa, 1e-9)
	}
}

func TestKappaFromTraffic(t *testing.T) {
	// 2.5 extra bytes per nonzero: extra = 2.5 × nnz.
	almost(t, "KappaFromTraffic", KappaFromTraffic(2.5e6, 1e6), 2.5, 1e-12)
}

func TestPredictBundle(t *testing.T) {
	p := Predict(18.1e9, 15, 2.5)
	almost(t, "Balance", p.Balance, 8.05, 1e-9)
	almost(t, "MaxGFlops", p.MaxGFlops, 2.66, 0.01)
	almost(t, "ExpectedGFlops", p.ExpectedGFlops, 2.25, 0.01)
	if p.SplitBalance <= p.Balance {
		t.Error("split balance must exceed plain balance")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"CodeBalance":          func() { CodeBalance(0, 0) },
		"SplitCodeBalance":     func() { SplitCodeBalance(-1, 0) },
		"MaxPerformance":       func() { MaxPerformance(1e9, 0) },
		"KappaFromMeasurement": func() { KappaFromMeasurement(1e9, 0, 15) },
		"KappaFromTraffic":     func() { KappaFromTraffic(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on invalid input", name)
				}
			}()
			f()
		}()
	}
}
