package matrix

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testMatrix() *CSR {
	// 4x5:
	// [1 0 2 0 0]
	// [0 3 0 0 0]
	// [0 0 0 0 0]
	// [4 0 0 5 6]
	return NewCSRFromDense([][]float64{
		{1, 0, 2, 0, 0},
		{0, 3, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{4, 0, 0, 5, 6},
	})
}

func TestNewCSRFromDense(t *testing.T) {
	a := testMatrix()
	if a.NumRows != 4 || a.NumCols != 5 {
		t.Fatalf("dims = %dx%d, want 4x5", a.NumRows, a.NumCols)
	}
	if a.Nnz() != 6 {
		t.Fatalf("nnz = %d, want 6", a.Nnz())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantPtr := []int64{0, 2, 3, 3, 6}
	if !reflect.DeepEqual(a.RowPtr, wantPtr) {
		t.Errorf("RowPtr = %v, want %v", a.RowPtr, wantPtr)
	}
	wantCols := []int32{0, 2, 1, 0, 3, 4}
	if !reflect.DeepEqual(a.ColIdx, wantCols) {
		t.Errorf("ColIdx = %v, want %v", a.ColIdx, wantCols)
	}
}

func TestMulVec(t *testing.T) {
	a := testMatrix()
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 4)
	a.MulVec(y, x)
	want := []float64{7, 6, 0, 54}
	if !reflect.DeepEqual(y, want) {
		t.Errorf("A*x = %v, want %v", y, want)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	a := testMatrix()
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong dims did not panic")
		}
	}()
	a.MulVec(make([]float64, 4), make([]float64, 3))
}

func TestNnzRow(t *testing.T) {
	a := testMatrix()
	if got := a.NnzRow(); got != 1.5 {
		t.Errorf("NnzRow = %g, want 1.5", got)
	}
	empty := &CSR{RowPtr: []int64{0}}
	if got := empty.NnzRow(); got != 0 {
		t.Errorf("empty NnzRow = %g, want 0", got)
	}
}

func TestTranspose(t *testing.T) {
	a := testMatrix()
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatalf("transpose Validate: %v", err)
	}
	d := a.Dense()
	dt := at.Dense()
	for i := range d {
		for j := range d[i] {
			if d[i][j] != dt[j][i] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is the identity.
	if !a.Equal(at.Transpose()) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestSymmetry(t *testing.T) {
	sym := NewCSRFromDense([][]float64{
		{2, -1, 0},
		{-1, 2, -1},
		{0, -1, 2},
	})
	if !sym.IsStructurallySymmetric() {
		t.Error("tridiagonal Laplacian reported structurally asymmetric")
	}
	if !sym.IsSymmetric(0) {
		t.Error("tridiagonal Laplacian reported numerically asymmetric")
	}
	asym := NewCSRFromDense([][]float64{
		{2, -1, 0},
		{0, 2, -1},
		{0, -1, 2},
	})
	if asym.IsStructurallySymmetric() {
		t.Error("asymmetric pattern reported symmetric")
	}
	numAsym := NewCSRFromDense([][]float64{
		{2, -1},
		{1, 2},
	})
	if numAsym.IsSymmetric(0) {
		t.Error("numerically asymmetric matrix reported symmetric")
	}
	if !numAsym.IsStructurallySymmetric() {
		t.Error("structurally symmetric matrix reported asymmetric")
	}
	rect := testMatrix()
	if rect.IsStructurallySymmetric() {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestExtractRows(t *testing.T) {
	a := testMatrix()
	sub := a.ExtractRows(1, 4)
	if sub.NumRows != 3 || sub.NumCols != 5 {
		t.Fatalf("sub dims = %dx%d, want 3x5", sub.NumRows, sub.NumCols)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := a.Dense()[1:]
	if !reflect.DeepEqual(sub.Dense(), want) {
		t.Errorf("ExtractRows dense mismatch")
	}
}

func TestRestrictCols(t *testing.T) {
	a := testMatrix()
	sub := a.RestrictCols(1, 4)
	if sub.NumRows != 4 || sub.NumCols != 5 {
		t.Fatalf("sub dims = %dx%d, want unchanged 4x5", sub.NumRows, sub.NumCols)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := NewCSRFromDense([][]float64{
		{0, 0, 2, 0, 0},
		{0, 3, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 5, 0},
	})
	if !sub.Equal(want) {
		t.Errorf("RestrictCols(1,4) mismatch:\n%v", sub.Dense())
	}
	if !a.RestrictCols(0, 5).Equal(a) {
		t.Error("full-range restriction changed the matrix")
	}
	if a.RestrictCols(2, 2).Nnz() != 0 {
		t.Error("empty-range restriction kept entries")
	}
	for _, rg := range [][2]int{{-1, 3}, {0, 6}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RestrictCols(%d,%d) did not panic", rg[0], rg[1])
				}
			}()
			a.RestrictCols(rg[0], rg[1])
		}()
	}
}

func TestCSRBuilder(t *testing.T) {
	b := CSRBuilder{}
	if b.Name() != "crs" {
		t.Errorf("Name() = %q", b.Name())
	}
	a := testMatrix()
	full, err := b.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if full.(*CSR) != a {
		t.Error("Build must return the matrix itself")
	}
	part, err := b.BuildColRange(a, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !part.(*CSR).Equal(a.RestrictCols(1, 4)) {
		t.Error("BuildColRange differs from RestrictCols")
	}
	// Same failure contract as the other builders: an error, not a panic.
	if _, err := b.BuildColRange(a, 4, 2); err == nil {
		t.Error("BuildColRange accepted an inverted range")
	}
}

func TestCooDuplicatesSummed(t *testing.T) {
	entries := []Coord{
		{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {0, 1, -1}, {0, 1, 1},
	}
	a, err := NewCSRFromCOO(2, 2, entries)
	if err != nil {
		t.Fatal(err)
	}
	d := a.Dense()
	if d[0][0] != 3 {
		t.Errorf("duplicate (0,0) sum = %g, want 3", d[0][0])
	}
	if d[0][1] != 0 {
		t.Errorf("duplicate (0,1) sum = %g, want 0 (explicit zero kept)", d[0][1])
	}
	// Explicit zeros remain stored entries.
	if a.Nnz() != 3 {
		t.Errorf("nnz = %d, want 3", a.Nnz())
	}
}

func TestCooOutOfRange(t *testing.T) {
	if _, err := NewCSRFromCOO(2, 2, []Coord{{2, 0, 1}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := NewCSRFromCOO(2, 2, []Coord{{0, -1, 1}}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := testMatrix()
	a.ColIdx[0] = 99
	if err := a.Validate(); err == nil {
		t.Error("out-of-range column not caught")
	}
	a = testMatrix()
	a.RowPtr[1] = 5
	a.RowPtr[2] = 2
	if err := a.Validate(); err == nil {
		t.Error("non-monotone RowPtr not caught")
	}
	a = testMatrix()
	a.ColIdx[0], a.ColIdx[1] = a.ColIdx[1], a.ColIdx[0]
	if err := a.Validate(); err == nil {
		t.Error("descending columns not caught")
	}
}

// RandomCSR builds a random sparse matrix for tests: each row gets between
// 1 and maxPerRow entries at distinct random columns.
func RandomCSR(rng *rand.Rand, rows, cols, maxPerRow int) *CSR {
	entries := make([]Coord, 0, rows*maxPerRow)
	for i := 0; i < rows; i++ {
		n := 1 + rng.Intn(maxPerRow)
		seen := map[int32]bool{}
		for len(seen) < n && len(seen) < cols {
			c := int32(rng.Intn(cols))
			if !seen[c] {
				seen[c] = true
				entries = append(entries, Coord{int32(i), c, rng.NormFloat64()})
			}
		}
	}
	a, err := NewCSRFromCOO(rows, cols, entries)
	if err != nil {
		panic(err)
	}
	return a
}

func TestMulVecMatchesDenseProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		a := RandomCSR(rng, rows, cols, min(cols, 8))
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		a.MulVec(y, x)
		d := a.Dense()
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(want-y[i]) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), 5)
		return a.Equal(a.Transpose().Transpose())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortRows(t *testing.T) {
	a := &CSR{
		NumRows: 2, NumCols: 4,
		RowPtr: []int64{0, 3, 4},
		ColIdx: []int32{2, 0, 1, 3},
		Val:    []float64{20, 0.5, 10, 30},
	}
	a.SortRows()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate after SortRows: %v", err)
	}
	if a.ColIdx[0] != 0 || a.Val[0] != 0.5 || a.ColIdx[2] != 2 || a.Val[2] != 20 {
		t.Errorf("SortRows did not keep values attached: cols=%v vals=%v", a.ColIdx, a.Val)
	}
}

func TestClone(t *testing.T) {
	a := testMatrix()
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Error("clone shares storage")
	}
}
