package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market coordinate-format I/O. Only the subset needed for exchanging
// the study's test matrices is implemented: real/integer/pattern values,
// general or symmetric layout, coordinate storage.

// WriteMatrixMarket writes the matrix in Matrix Market coordinate real
// general format (1-based indices).
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.NumRows, a.NumCols, a.Nnz()); err != nil {
		return err
	}
	for i := 0; i < a.NumRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate file. Symmetric and
// skew-symmetric storage is expanded to full general storage. Pattern files
// get value 1 for every entry.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrix: bad Matrix Market header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("matrix: only coordinate format supported, got %q", header[2])
	}
	valType := header[3]
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrix: unsupported value type %q", valType)
	}
	symmetry := header[4]
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrix: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, declared int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("matrix: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &declared); err != nil {
			return nil, fmt.Errorf("matrix: bad size line %q: %w", line, err)
		}
		break
	}

	entries := make([]Coord, 0, declared*2)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("matrix: short entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad row index in %q: %w", line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad column index in %q: %w", line, err)
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: bad value in %q: %w", line, err)
			}
		}
		entries = append(entries, Coord{Row: int32(i - 1), Col: int32(j - 1), Val: v})
		if symmetry != "general" && i != j {
			off := v
			if symmetry == "skew-symmetric" {
				off = -v
			}
			entries = append(entries, Coord{Row: int32(j - 1), Col: int32(i - 1), Val: off})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewCSRFromCOO(rows, cols, entries)
}
