// Package matrix provides sparse matrix storage in Compressed Row Storage
// (CRS/CSR) format, construction helpers, pattern streaming for matrices too
// large to materialize, statistics, and Matrix Market I/O.
//
// CSR is the storage format analyzed by the paper (§1.2): all nonzeros live
// in one contiguous Val array, row by row; RowPtr holds the starting offset
// of each row; ColIdx holds the original column index of each entry.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in Compressed Row Storage format.
//
// ColIdx is deliberately int32 (4 bytes): the paper's code-balance model
// (Eq. 1) counts 4 bytes of index traffic per nonzero, and all matrices in
// the study have fewer than 2^31 columns.
type CSR struct {
	// NumRows and NumCols are the matrix dimensions.
	NumRows, NumCols int
	// RowPtr has length NumRows+1; row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int64
	// ColIdx holds the column index of each stored entry.
	ColIdx []int32
	// Val holds the value of each stored entry; Val[k] corresponds to ColIdx[k].
	Val []float64
}

// Nnz returns the number of stored entries.
func (a *CSR) Nnz() int64 {
	if len(a.RowPtr) == 0 {
		return 0
	}
	return a.RowPtr[len(a.RowPtr)-1]
}

// NnzRow returns the average number of stored entries per row
// (the paper's Nnzr parameter). It returns 0 for an empty matrix.
func (a *CSR) NnzRow() float64 {
	if a.NumRows == 0 {
		return 0
	}
	return float64(a.Nnz()) / float64(a.NumRows)
}

// Dims returns the matrix dimensions, satisfying PatternSource.
func (a *CSR) Dims() (rows, cols int) { return a.NumRows, a.NumCols }

// AppendRow appends the column indices of row i to dst, satisfying PatternSource.
func (a *CSR) AppendRow(i int, dst []int32) []int32 {
	return append(dst, a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]...)
}

// AppendRowValues appends the column indices and values of row i,
// satisfying ValueSource.
func (a *CSR) AppendRowValues(i int, cols []int32, vals []float64) ([]int32, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return append(cols, a.ColIdx[lo:hi]...), append(vals, a.Val[lo:hi]...)
}

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage. The caller must not modify them.
func (a *CSR) Row(i int) (cols []int32, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Validate checks structural invariants: monotone RowPtr, in-range column
// indices, consistent slice lengths, and (optionally) strictly ascending
// column indices within each row.
func (a *CSR) Validate() error {
	if a.NumRows < 0 || a.NumCols < 0 {
		return fmt.Errorf("matrix: negative dimension %dx%d", a.NumRows, a.NumCols)
	}
	if len(a.RowPtr) != a.NumRows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(a.RowPtr), a.NumRows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	nnz := a.RowPtr[a.NumRows]
	if int64(len(a.ColIdx)) != nnz || int64(len(a.Val)) != nnz {
		return fmt.Errorf("matrix: nnz %d but len(ColIdx)=%d len(Val)=%d",
			nnz, len(a.ColIdx), len(a.Val))
	}
	for i := 0; i < a.NumRows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
		prev := int32(-1)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			if c < 0 || int(c) >= a.NumCols {
				return fmt.Errorf("matrix: row %d has column %d out of range [0,%d)", i, c, a.NumCols)
			}
			if c <= prev {
				return fmt.Errorf("matrix: row %d columns not strictly ascending at entry %d", i, k)
			}
			prev = c
		}
	}
	return nil
}

// MulVec computes y = A*x with the reference serial CSR kernel
// (the paper's loop in §1.2). It panics if dimensions mismatch.
//
//repro:noalloc
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.NumCols || len(y) != a.NumRows {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			a.NumRows, a.NumCols, len(x), len(y)))
	}
	a.MulVecBlocks(y, x, 0, a.NumRows)
}

// Transpose returns Aᵀ as a new CSR matrix.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		NumRows: a.NumCols,
		NumCols: a.NumRows,
		RowPtr:  make([]int64, a.NumCols+1),
		ColIdx:  make([]int32, a.Nnz()),
		Val:     make([]float64, a.Nnz()),
	}
	// Count entries per column of A.
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < a.NumCols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, a.NumCols)
	copy(next, t.RowPtr[:a.NumCols])
	for i := 0; i < a.NumRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			next[c]++
			t.ColIdx[p] = int32(i)
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// IsStructurallySymmetric reports whether the sparsity pattern of A equals
// that of Aᵀ. The matrix must be square.
func (a *CSR) IsStructurallySymmetric() bool {
	if a.NumRows != a.NumCols {
		return false
	}
	t := a.Transpose()
	for i := 0; i <= a.NumRows; i++ {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != t.ColIdx[k] {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether A is numerically symmetric to within tol.
func (a *CSR) IsSymmetric(tol float64) bool {
	if !a.IsStructurallySymmetric() {
		return false
	}
	t := a.Transpose()
	for k := range a.Val {
		if math.Abs(a.Val[k]-t.Val[k]) > tol {
			return false
		}
	}
	return true
}

// ExtractRows returns the sub-matrix consisting of rows [lo, hi), keeping
// the full column range.
func (a *CSR) ExtractRows(lo, hi int) *CSR {
	if lo < 0 || hi > a.NumRows || lo > hi {
		panic(fmt.Sprintf("matrix: ExtractRows bounds [%d,%d) outside [0,%d)", lo, hi, a.NumRows))
	}
	base := a.RowPtr[lo]
	sub := &CSR{
		NumRows: hi - lo,
		NumCols: a.NumCols,
		RowPtr:  make([]int64, hi-lo+1),
		ColIdx:  a.ColIdx[base:a.RowPtr[hi]],
		Val:     a.Val[base:a.RowPtr[hi]],
	}
	for i := lo; i <= hi; i++ {
		sub.RowPtr[i-lo] = a.RowPtr[i] - base
	}
	return sub
}

// RestrictCols returns a copy holding only the entries with columns in
// [lo, hi). Dimensions are unchanged: rows whose entries all fall outside
// the range become empty rather than disappearing, so the result multiplies
// the same vectors as a.
func (a *CSR) RestrictCols(lo, hi int) *CSR {
	if lo < 0 || hi > a.NumCols || lo > hi {
		panic(fmt.Sprintf("matrix: RestrictCols bounds [%d,%d) outside [0,%d]", lo, hi, a.NumCols))
	}
	lo32, hi32 := int32(lo), int32(hi)
	var nnz int64
	for _, c := range a.ColIdx {
		if c >= lo32 && c < hi32 {
			nnz++
		}
	}
	sub := &CSR{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		RowPtr:  make([]int64, a.NumRows+1),
		ColIdx:  make([]int32, 0, nnz),
		Val:     make([]float64, 0, nnz),
	}
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if c >= lo32 && c < hi32 {
				sub.ColIdx = append(sub.ColIdx, c)
				sub.Val = append(sub.Val, vals[k])
			}
		}
		sub.RowPtr[i+1] = int64(len(sub.ColIdx))
	}
	return sub
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		RowPtr:  append([]int64(nil), a.RowPtr...),
		ColIdx:  append([]int32(nil), a.ColIdx...),
		Val:     append([]float64(nil), a.Val...),
	}
	return b
}

// Equal reports whether two matrices have identical structure and values.
func (a *CSR) Equal(b *CSR) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.Nnz() != b.Nnz() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// Dense returns the matrix as a dense row-major slice of slices.
// Intended for tests on small matrices only.
func (a *CSR) Dense() [][]float64 {
	d := make([][]float64, a.NumRows)
	for i := range d {
		d[i] = make([]float64, a.NumCols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return d
}

// Coord is one coordinate-format (COO) entry used during construction.
type Coord struct {
	Row, Col int32
	Val      float64
}

// NewCSRFromCOO builds a CSR matrix from coordinate entries. Duplicate
// (row, col) entries are summed; entries are sorted per row by column.
// The input slice is reordered in place.
func NewCSRFromCOO(rows, cols int, entries []Coord) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("matrix: COO entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	a := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int64, rows+1),
	}
	a.ColIdx = make([]int32, 0, len(entries))
	a.Val = make([]float64, 0, len(entries))
	for k := 0; k < len(entries); {
		e := entries[k]
		v := e.Val
		k++
		for k < len(entries) && entries[k].Row == e.Row && entries[k].Col == e.Col {
			v += entries[k].Val
			k++
		}
		a.ColIdx = append(a.ColIdx, e.Col)
		a.Val = append(a.Val, v)
		a.RowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a, nil
}

// NewCSRFromDense builds a CSR matrix from a dense representation,
// storing entries with |v| > 0. Intended for tests.
func NewCSRFromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	a := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	for i, r := range d {
		if len(r) != cols {
			panic("matrix: ragged dense input")
		}
		for j, v := range r {
			if v != 0 {
				a.ColIdx = append(a.ColIdx, int32(j))
				a.Val = append(a.Val, v)
			}
		}
		a.RowPtr[i+1] = int64(len(a.ColIdx))
	}
	return a
}

// ErrNotCSR reports an operation that requires canonical CSR form.
var ErrNotCSR = errors.New("matrix: not in canonical CSR form")

// SortRows sorts the column indices (and values) within each row in place,
// establishing canonical CSR form.
func (a *CSR) SortRows() {
	for i := 0; i < a.NumRows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi]
		sort.Sort(&rowSorter{cols, vals})
	}
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (s *rowSorter) Len() int           { return len(s.cols) }
func (s *rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
