package matrix

import "fmt"

// Format is the node-level storage contract every sparse scheme satisfies so
// the parallel engine (spmv.Parallel), the solver operators and the
// distributed modes can run on any of them. Work is expressed in *blocks* —
// the smallest row groups a format can compute independently: single rows
// for CSR, row chunks of height C for SELL-C-σ. Blocks own disjoint result
// rows, so block ranges can be computed concurrently without synchronizing
// on the output vector.
type Format interface {
	// Dims returns the matrix dimensions.
	Dims() (rows, cols int)
	// Nnz returns the number of stored nonzeros (excluding any padding).
	Nnz() int64
	// NumBlocks returns the number of indivisible parallel work units.
	NumBlocks() int
	// BlockNnzPrefix returns a prefix sum of per-block work (length
	// NumBlocks+1), suitable for spmv.BalanceNnz-style chunking. Padded
	// formats count padded slots: that is the work a block actually costs.
	BlockNnzPrefix() []int64
	// MulVecBlocks computes the rows owned by blocks [lo, hi) of y = A·x,
	// overwriting those rows of y.
	MulVecBlocks(y, x []float64, lo, hi int)
	// MulVecBlocksAdd is MulVecBlocks with += semantics on y.
	MulVecBlocksAdd(y, x []float64, lo, hi int)
}

var _ Format = (*CSR)(nil)

// FormatBuilder constructs a storage format from CSR input. Build covers
// the whole matrix; BuildColRange builds the format of the sub-matrix
// holding only the entries with columns in [colLo, colHi) — the local half
// of a distributed column split. Implementations keep the full row count
// and column dimension (so input and result vectors keep their indexing);
// only the stored entries are restricted.
type FormatBuilder interface {
	// Name identifies the format (benchmark labels, error messages).
	Name() string
	// Build converts the full matrix.
	Build(a *CSR) (Format, error)
	// BuildColRange converts only the entries with columns in [colLo, colHi).
	BuildColRange(a *CSR, colLo, colHi int) (Format, error)
}

// CSRBuilder is the identity FormatBuilder: Build returns the matrix
// itself, BuildColRange a column-restricted copy.
type CSRBuilder struct{}

var _ FormatBuilder = CSRBuilder{}

// Name returns "crs".
func (CSRBuilder) Name() string { return "crs" }

// Build returns a unchanged.
func (CSRBuilder) Build(a *CSR) (Format, error) { return a, nil }

// BuildColRange returns a copy restricted to columns [colLo, colHi).
func (CSRBuilder) BuildColRange(a *CSR, colLo, colHi int) (Format, error) {
	if colLo < 0 || colHi > a.NumCols || colLo > colHi {
		return nil, fmt.Errorf("matrix: column range [%d,%d) outside [0,%d]", colLo, colHi, a.NumCols)
	}
	return a.RestrictCols(colLo, colHi), nil
}

// NumBlocks returns the row count: CSR parallelizes at row granularity.
func (a *CSR) NumBlocks() int { return a.NumRows }

// BlockNnzPrefix returns RowPtr: per-row nonzero counts in prefix form.
func (a *CSR) BlockNnzPrefix() []int64 { return a.RowPtr }

// MulVecBlocks computes y[lo:hi] = (A·x)[lo:hi] with the unrolled row kernel.
//
//repro:noalloc
func (a *CSR) MulVecBlocks(y, x []float64, lo, hi int) {
	rowPtr, colIdx, val := a.RowPtr, a.ColIdx, a.Val
	for i := lo; i < hi; i++ {
		y[i] = RowDot(0, val, colIdx, x, rowPtr[i], rowPtr[i+1])
	}
}

// MulVecBlocksAdd computes y[lo:hi] += (A·x)[lo:hi].
//
//repro:noalloc
func (a *CSR) MulVecBlocksAdd(y, x []float64, lo, hi int) {
	rowPtr, colIdx, val := a.RowPtr, a.ColIdx, a.Val
	for i := lo; i < hi; i++ {
		y[i] = RowDot(y[i], val, colIdx, x, rowPtr[i], rowPtr[i+1])
	}
}

// RowDot accumulates s + Σ val[k]·x[colIdx[k]] over k in [lo, hi), 4-way
// unrolled. The unroll keeps a single running accumulator — strictly
// sequential floating-point order — so every kernel built on it (serial,
// parallel, split two-pass, compacted halo) produces bit-identical
// results; it still amortizes loop control and bounds checks over four
// entries. This is the single row kernel of the engine: every other
// kernel either calls it or (SELL-C-σ) preserves its summation order.
//
//repro:noalloc
func RowDot(s float64, val []float64, colIdx []int32, x []float64, lo, hi int64) float64 {
	k := lo
	for ; k+4 <= hi; k += 4 {
		s += val[k] * x[colIdx[k]]
		s += val[k+1] * x[colIdx[k+1]]
		s += val[k+2] * x[colIdx[k+2]]
		s += val[k+3] * x[colIdx[k+3]]
	}
	for ; k < hi; k++ {
		s += val[k] * x[colIdx[k]]
	}
	return s
}
