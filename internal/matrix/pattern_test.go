package matrix

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRowNnzCountsAndCountNnz(t *testing.T) {
	a := testMatrix()
	counts := RowNnzCounts(a)
	want := []int64{2, 1, 0, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("row %d count = %d, want %d", i, counts[i], want[i])
		}
	}
	if CountNnz(a) != a.Nnz() {
		t.Errorf("CountNnz = %d, want %d", CountNnz(a), a.Nnz())
	}
}

func TestComputeStats(t *testing.T) {
	a := NewCSRFromDense([][]float64{
		{2, -1, 0, 0},
		{-1, 2, -1, 0},
		{0, -1, 2, -1},
		{0, 0, -1, 2},
	})
	s := ComputeStats(a)
	if s.Rows != 4 || s.Cols != 4 {
		t.Errorf("dims %dx%d", s.Rows, s.Cols)
	}
	if s.Nnz != 10 {
		t.Errorf("nnz = %d, want 10", s.Nnz)
	}
	if s.NnzRowMin != 2 || s.NnzRowMax != 3 {
		t.Errorf("min/max = %d/%d, want 2/3", s.NnzRowMin, s.NnzRowMax)
	}
	if s.Bandwidth != 1 {
		t.Errorf("bandwidth = %d, want 1", s.Bandwidth)
	}
	if s.Diagonal != 4 {
		t.Errorf("diagonal = %d, want 4", s.Diagonal)
	}
	if math.Abs(s.NnzRowAvg-2.5) > 1e-15 {
		t.Errorf("Nnzr = %g, want 2.5", s.NnzRowAvg)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomCSR(rng, 37, 23, 6)
	b := Materialize(a)
	if !a.Equal(b) {
		t.Error("Materialize(CSR) != CSR")
	}
}

func TestBlockOccupancyDiagonal(t *testing.T) {
	// Identity matrix: occupancy concentrated on the block diagonal.
	n := 64
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 1
	}
	a := NewCSRFromDense(d)
	occ := BlockOccupancy(a, 8)
	for bi := 0; bi < 8; bi++ {
		for bj := 0; bj < 8; bj++ {
			if bi == bj {
				if occ[bi][bj] <= 0 {
					t.Errorf("diagonal block (%d,%d) empty", bi, bj)
				}
			} else if occ[bi][bj] != 0 {
				t.Errorf("off-diagonal block (%d,%d) = %g, want 0", bi, bj, occ[bi][bj])
			}
		}
	}
	// Diagonal block of size 8x8 holds 8 of 64 positions.
	if math.Abs(occ[0][0]-0.125) > 1e-12 {
		t.Errorf("occ[0][0] = %g, want 0.125", occ[0][0])
	}
}

func TestBlockOccupancyUnevenDivision(t *testing.T) {
	// 10 rows, 3 blocks: block sizes 3/3/4 must still normalize correctly.
	d := make([][]float64, 10)
	for i := range d {
		d[i] = make([]float64, 10)
		for j := range d[i] {
			d[i][j] = 1
		}
	}
	a := NewCSRFromDense(d)
	occ := BlockOccupancy(a, 3)
	for bi := range occ {
		for bj := range occ[bi] {
			if math.Abs(occ[bi][bj]-1) > 1e-12 {
				t.Errorf("dense matrix block (%d,%d) occupancy = %g, want 1", bi, bj, occ[bi][bj])
			}
		}
	}
}

func TestRenderOccupancy(t *testing.T) {
	occ := [][]float64{{0, 0.5}, {1e-7, 1e-3}}
	s := RenderOccupancy(occ)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("render shape wrong: %q", s)
	}
	if lines[0][0] != ' ' {
		t.Errorf("zero block rendered as %q, want space", lines[0][0])
	}
	if lines[0][1] == ' ' {
		t.Errorf("half-full block rendered as space")
	}
}
