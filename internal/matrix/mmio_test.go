package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := RandomCSR(rng, 25, 31, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Matrix Market round trip changed the matrix")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := NewCSRFromDense([][]float64{
		{2, -1, 0},
		{-1, 2, -1},
		{0, -1, 0},
	})
	if !a.Equal(want) {
		t.Errorf("symmetric expansion wrong:\n got %v\nwant %v", a.Dense(), want.Dense())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != 2 || a.Val[0] != 1 || a.Val[1] != 1 {
		t.Errorf("pattern read wrong: %+v", a)
	}
}

func TestReadMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := a.Dense()
	if d[1][0] != 3 || d[0][1] != -3 {
		t.Errorf("skew expansion wrong: %v", d)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\nx y z\n",
		"not a header\n1 1 0\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}
