package matrix

import "math"

// PatternSource streams the sparsity pattern of a matrix row by row without
// requiring the matrix to be materialized. The paper's full-scale matrices
// (N up to 2.3×10⁷, Nnz up to 1.6×10⁸) are consumed in this form when only
// structural information (partitioning, communication volumes, cache
// behaviour) is needed.
//
// Implementations must be safe for concurrent use by multiple goroutines
// reading disjoint row ranges.
type PatternSource interface {
	// Dims returns the matrix dimensions.
	Dims() (rows, cols int)
	// AppendRow appends the column indices of row i to dst and returns the
	// extended slice. Indices need not be sorted unless the implementation
	// documents otherwise.
	AppendRow(i int, dst []int32) []int32
}

// ValueSource extends PatternSource with values, allowing full rows to be
// streamed for on-the-fly kernels and materialization.
type ValueSource interface {
	PatternSource
	// AppendRowValues appends the column indices and values of row i.
	// The two appended lengths are equal.
	AppendRowValues(i int, cols []int32, vals []float64) ([]int32, []float64)
}

// Materialize builds an in-memory CSR matrix from a ValueSource.
// Rows are sorted by column index afterwards to establish canonical form.
func Materialize(src ValueSource) *CSR {
	rows, cols := src.Dims()
	a := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < rows; i++ {
		a.ColIdx, a.Val = src.AppendRowValues(i, a.ColIdx, a.Val)
		a.RowPtr[i+1] = int64(len(a.ColIdx))
	}
	a.SortRows()
	return a
}

// RowNnzCounts streams the pattern once and returns the number of stored
// entries in each row.
func RowNnzCounts(src PatternSource) []int64 {
	rows, _ := src.Dims()
	counts := make([]int64, rows)
	var buf []int32
	for i := 0; i < rows; i++ {
		buf = src.AppendRow(i, buf[:0])
		counts[i] = int64(len(buf))
	}
	return counts
}

// CountNnz streams the pattern once and returns the total number of stored
// entries.
func CountNnz(src PatternSource) int64 {
	rows, _ := src.Dims()
	var total int64
	var buf []int32
	for i := 0; i < rows; i++ {
		buf = src.AppendRow(i, buf[:0])
		total += int64(len(buf))
	}
	return total
}

// Stats summarises structural properties of a sparse matrix
// (used for Fig. 1 captions and DESIGN/EXPERIMENTS reporting).
type Stats struct {
	Rows, Cols   int
	Nnz          int64
	NnzRowAvg    float64 // the paper's Nnzr
	NnzRowMin    int64
	NnzRowMax    int64
	Bandwidth    int64 // max |i - j| over stored entries
	AvgBandwidth float64
	Diagonal     int64 // number of stored diagonal entries
}

// ComputeStats streams the pattern once and gathers structural statistics.
func ComputeStats(src PatternSource) Stats {
	rows, cols := src.Dims()
	s := Stats{Rows: rows, Cols: cols, NnzRowMin: int64(1) << 62}
	var buf []int32
	var bwSum float64
	for i := 0; i < rows; i++ {
		buf = src.AppendRow(i, buf[:0])
		n := int64(len(buf))
		s.Nnz += n
		if n < s.NnzRowMin {
			s.NnzRowMin = n
		}
		if n > s.NnzRowMax {
			s.NnzRowMax = n
		}
		for _, c := range buf {
			d := int64(i) - int64(c)
			if d < 0 {
				d = -d
			}
			if d > s.Bandwidth {
				s.Bandwidth = d
			}
			bwSum += float64(d)
			if int(c) == i {
				s.Diagonal++
			}
		}
	}
	if rows > 0 {
		s.NnzRowAvg = float64(s.Nnz) / float64(rows)
	}
	if s.Nnz > 0 {
		s.AvgBandwidth = bwSum / float64(s.Nnz)
	} else {
		s.NnzRowMin = 0
	}
	return s
}

// BlockOccupancy aggregates the sparsity pattern into a blocks×blocks grid
// and returns the fraction of nonzero positions in each block, reproducing
// the occupancy visualisation of Fig. 1. The result is indexed
// [blockRow][blockCol].
func BlockOccupancy(src PatternSource, blocks int) [][]float64 {
	rows, cols := src.Dims()
	if blocks <= 0 {
		panic("matrix: BlockOccupancy needs blocks > 0")
	}
	occ := make([][]float64, blocks)
	for i := range occ {
		occ[i] = make([]float64, blocks)
	}
	if rows == 0 || cols == 0 {
		return occ
	}
	// blockOf inverts the range mapping [b*n/blocks, (b+1)*n/blocks) used for
	// normalization below, so every index lands in the block whose range
	// contains it even when blocks does not divide n.
	blockOf := func(i, n int) int { return ((i+1)*blocks - 1) / n }
	var buf []int32
	for i := 0; i < rows; i++ {
		bi := blockOf(i, rows)
		buf = src.AppendRow(i, buf[:0])
		for _, c := range buf {
			occ[bi][blockOf(int(c), cols)]++
		}
	}
	// Normalize by block area (positions per block).
	for bi := 0; bi < blocks; bi++ {
		rLo, rHi := bi*rows/blocks, (bi+1)*rows/blocks
		for bj := 0; bj < blocks; bj++ {
			cLo, cHi := bj*cols/blocks, (bj+1)*cols/blocks
			area := float64(rHi-rLo) * float64(cHi-cLo)
			if area > 0 {
				occ[bi][bj] /= area
			}
		}
	}
	return occ
}

// RenderOccupancy renders a block-occupancy grid as ASCII art with a
// logarithmic gray scale, one character per block.
func RenderOccupancy(occ [][]float64) string {
	const ramp = " .:-=+*#%@" // log-scale shade ramp, space = empty
	out := make([]byte, 0, len(occ)*(len(occ)+1))
	for _, row := range occ {
		for _, v := range row {
			out = append(out, shade(v, ramp))
		}
		out = append(out, '\n')
	}
	return string(out)
}

func shade(v float64, ramp string) byte {
	if v <= 0 {
		return ramp[0]
	}
	// Map occupancies 1e-6..0.5+ (the Fig. 1 color bar) onto the ramp.
	const lo, hi = 1e-6, 0.5
	t := (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	idx := 1 + int(t*float64(len(ramp)-2)+0.5)
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}
