// Package ckpt persists solver checkpoints to disk and coordinates their
// use across a multi-process world — the durable half of the fault
// tolerance story. internal/solver produces in-memory snapshots at
// collective boundaries; this package makes them survive a SIGKILL.
//
// Three properties matter:
//
//   - Atomicity. A crash mid-save must never leave a file that a later
//     Load mistakes for a snapshot. Save writes to a temp file in the
//     same directory, fsyncs, and renames into place — the checkpoint
//     either exists completely or not at all. A CRC over the payload
//     rejects torn or corrupted files as a second line of defense.
//
//   - Identity. Load restores the exact bits Save was given; the binary
//     fixed-width encoding round-trips float64 payloads bit for bit, so
//     the solver's bit-identical-restore contract extends through disk.
//
//   - Agreement. On a multi-process world each process saves its own row
//     span, and a crash can leave processes holding different "latest"
//     iterations (one sealed iteration 40 just before dying, the others
//     only 30). Agree reduces each process's newest local iteration with
//     a min across the world, so everyone restores the newest snapshot
//     that ALL processes hold.
//
// File names encode the row span and iteration (cg-000000-000160-i00000040.ckpt),
// so LatestCG/LatestLanczos can pick the newest matching snapshot with a
// directory scan and stale spans from a re-partitioned run are ignored.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/solver"
)

const (
	magic   = "RPCK"
	version = 1
	kindCG  = 1
	kindLcz = 2
)

// CGPath returns the file name a CG snapshot of rows [lo,hi) at the given
// iteration is saved under, inside dir.
func CGPath(dir string, lo, hi, iter int) string {
	return filepath.Join(dir, fmt.Sprintf("cg-%06d-%06d-i%08d.ckpt", lo, hi, iter))
}

// LanczosPath is the Lanczos analogue of CGPath.
func LanczosPath(dir string, lo, hi, step int) string {
	return filepath.Join(dir, fmt.Sprintf("lcz-%06d-%06d-i%08d.ckpt", lo, hi, step))
}

type enc struct{ buf bytes.Buffer }

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *enc) i64(v int) { e.u64(uint64(int64(v))) }

func (e *enc) f64s(v []float64) {
	e.i64(len(v))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("ckpt: truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int { return int(int64(d.u64())) }

// f64s decodes a length-prefixed float64 slice into dst[:0], growing it as
// needed; max bounds the length so a corrupt header cannot force a huge
// allocation before the CRC would have caught it.
func (d *dec) f64s(dst []float64, max int) []float64 {
	n := d.i64()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > max {
		d.err = fmt.Errorf("ckpt: implausible vector length %d (max %d)", n, max)
		return nil
	}
	dst = append(dst[:0], make([]float64, n)...)
	for i := range dst {
		dst[i] = math.Float64frombits(d.u64())
	}
	return dst
}

// writeAtomic writes payload (with a trailing CRC) to path via a temp file
// and rename, fsyncing the file and its directory, so the checkpoint is
// durable and appears atomically.
func writeAtomic(path string, payload []byte) error {
	crc := crc32.ChecksumIEEE(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(payload); err == nil {
		_, err = tmp.Write(tail[:])
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readVerified reads path and returns the payload with its CRC verified
// and stripped.
func readVerified(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(raw) < 4+len(magic) {
		return nil, fmt.Errorf("ckpt: %s: file too short", path)
	}
	payload, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("ckpt: %s: checksum mismatch (torn or corrupted)", path)
	}
	return payload, nil
}

func (d *dec) header(wantKind int) {
	if d.err != nil {
		return
	}
	if len(d.b) < len(magic) || string(d.b[:len(magic)]) != magic {
		d.err = fmt.Errorf("ckpt: bad magic")
		return
	}
	d.b = d.b[len(magic):]
	if v := d.i64(); d.err == nil && v != version {
		d.err = fmt.Errorf("ckpt: unsupported version %d", v)
	}
	if k := d.i64(); d.err == nil && k != wantKind {
		d.err = fmt.Errorf("ckpt: wrong snapshot kind %d, want %d", k, wantKind)
	}
}

// SaveCG atomically persists a sealed CG snapshot into dir and returns the
// file path.
func SaveCG(dir string, c *solver.CGCheckpoint) (string, error) {
	if !c.Valid() {
		return "", fmt.Errorf("ckpt: refusing to save an invalid CG checkpoint")
	}
	var e enc
	e.buf.WriteString(magic)
	e.i64(version)
	e.i64(kindCG)
	e.i64(c.Lo)
	e.i64(c.Hi)
	e.i64(c.Iter)
	e.i64(c.MVMs)
	e.u64(math.Float64bits(c.RR))
	e.f64s(c.History)
	e.f64s(c.X)
	e.f64s(c.R)
	e.f64s(c.P)
	path := CGPath(dir, c.Lo, c.Hi, c.Iter)
	if err := writeAtomic(path, e.buf.Bytes()); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCG fills c (sized by solver.NewCGCheckpoint for the same cluster
// shape) from a file written by SaveCG and seals it. The file's row span
// must match c's.
func LoadCG(path string, c *solver.CGCheckpoint) error {
	payload, err := readVerified(path)
	if err != nil {
		return err
	}
	d := dec{b: payload}
	d.header(kindCG)
	lo, hi := d.i64(), d.i64()
	if d.err == nil && (lo != c.Lo || hi != c.Hi) {
		return fmt.Errorf("ckpt: %s covers rows [%d,%d), checkpoint buffer holds [%d,%d)", path, lo, hi, c.Lo, c.Hi)
	}
	n := hi - lo
	c.Iter = d.i64()
	c.MVMs = d.i64()
	c.RR = math.Float64frombits(d.u64())
	c.History = d.f64s(c.History, c.Iter)
	c.X = d.f64s(c.X, n)
	c.R = d.f64s(c.R, n)
	c.P = d.f64s(c.P, n)
	if d.err != nil {
		return fmt.Errorf("ckpt: %s: %w", path, d.err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("ckpt: %s: %d trailing bytes", path, len(d.b))
	}
	if len(c.X) != n || len(c.R) != n || len(c.P) != n {
		return fmt.Errorf("ckpt: %s: vector lengths disagree with row span", path)
	}
	c.Seal()
	return nil
}

// SaveLanczos atomically persists a sealed Lanczos snapshot into dir and
// returns the file path.
func SaveLanczos(dir string, c *solver.LanczosCheckpoint) (string, error) {
	if !c.Valid() {
		return "", fmt.Errorf("ckpt: refusing to save an invalid Lanczos checkpoint")
	}
	var e enc
	e.buf.WriteString(magic)
	e.i64(version)
	e.i64(kindLcz)
	e.i64(c.Lo)
	e.i64(c.Hi)
	e.i64(c.Step)
	e.i64(c.MVMs)
	e.f64s(c.Alphas)
	e.f64s(c.Betas)
	e.f64s(c.Basis[:(c.Step+1)*(c.Hi-c.Lo)])
	path := LanczosPath(dir, c.Lo, c.Hi, c.Step)
	if err := writeAtomic(path, e.buf.Bytes()); err != nil {
		return "", err
	}
	return path, nil
}

// LoadLanczos fills c (sized by solver.NewLanczosCheckpoint for the same
// cluster shape and m) from a file written by SaveLanczos and seals it.
func LoadLanczos(path string, c *solver.LanczosCheckpoint) error {
	payload, err := readVerified(path)
	if err != nil {
		return err
	}
	d := dec{b: payload}
	d.header(kindLcz)
	lo, hi := d.i64(), d.i64()
	if d.err == nil && (lo != c.Lo || hi != c.Hi) {
		return fmt.Errorf("ckpt: %s covers rows [%d,%d), checkpoint buffer holds [%d,%d)", path, lo, hi, c.Lo, c.Hi)
	}
	n := hi - lo
	c.Step = d.i64()
	c.MVMs = d.i64()
	c.Alphas = d.f64s(c.Alphas, c.Step)
	c.Betas = d.f64s(c.Betas, c.Step)
	basis := d.f64s(c.Basis, (c.Step+1)*n)
	if d.err != nil {
		return fmt.Errorf("ckpt: %s: %w", path, d.err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("ckpt: %s: %d trailing bytes", path, len(d.b))
	}
	if len(c.Alphas) != c.Step || len(c.Betas) != c.Step || len(basis) != (c.Step+1)*n {
		return fmt.Errorf("ckpt: %s: section lengths disagree with step %d", path, c.Step)
	}
	// Keep the full-capacity basis buffer: the resumed iteration appends
	// the remaining vectors in place.
	c.Basis = append(basis, make([]float64, cap(basis)-len(basis))...)[:cap(basis)]
	c.Seal()
	return nil
}

// latest scans dir for snapshots with the given name prefix and row span
// and returns the newest iteration and its path; iter is -1 when none
// exist (including when dir itself is missing — a fresh start).
func latest(dir, kind string, lo, hi int) (iter int, path string, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return -1, "", nil
	}
	if err != nil {
		return -1, "", fmt.Errorf("ckpt: %w", err)
	}
	prefix := fmt.Sprintf("%s-%06d-%06d-i", kind, lo, hi)
	iter = -1
	for _, ent := range entries {
		name := ent.Name()
		var it int
		if _, serr := fmt.Sscanf(name, prefix+"%08d.ckpt", &it); serr != nil || !ent.Type().IsRegular() {
			continue
		}
		if it > iter {
			iter, path = it, filepath.Join(dir, name)
		}
	}
	return iter, path, nil
}

// LatestCG returns the newest CG snapshot iteration for rows [lo,hi) in
// dir, or -1 when none exists.
func LatestCG(dir string, lo, hi int) (iter int, path string, err error) {
	return latest(dir, "cg", lo, hi)
}

// LatestLanczos is the Lanczos analogue of LatestCG.
func LatestLanczos(dir string, lo, hi int) (step int, path string, err error) {
	return latest(dir, "lcz", lo, hi)
}

// Agree reduces each process's newest locally held iteration (-1 for
// none) to the newest iteration ALL processes hold, using the world's
// min-reduction — the restart rendezvous after a crash, where the dying
// process may have sealed one snapshot fewer than its peers. Every
// process must call Agree; all receive the same answer.
func Agree(cl *core.Cluster, latest int) (int, error) {
	agreed := latest
	first := cl.LocalRanks()[0]
	err := cl.Run(func(w *core.Worker) error {
		v, err := w.Comm.AllreduceScalar(core.OpMin, float64(latest))
		if err != nil {
			return err
		}
		// Every local rank computes the same reduction; one writes.
		if w.Comm.Rank() == first {
			agreed = int(v)
		}
		return nil
	})
	if err != nil {
		return -1, err
	}
	return agreed, nil
}
