package ckpt

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/solver"
)

func testCluster(t *testing.T, ranks int) *core.Cluster {
	t.Helper()
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 8, Ny: 6, Nz: 5})
	if err != nil {
		t.Fatal(err)
	}
	part := core.PartitionByNnz(p, ranks)
	plan, err := core.BuildPlan(p, part, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func fillCG(cl *core.Cluster, rng *rand.Rand, iter int) *solver.CGCheckpoint {
	ck := solver.NewCGCheckpoint(cl, 100)
	ck.Iter = iter
	ck.MVMs = iter + 1
	ck.RR = rng.Float64()
	for i := 0; i < iter; i++ {
		ck.History = append(ck.History, rng.Float64())
	}
	for i := range ck.X {
		ck.X[i] = rng.NormFloat64()
		ck.R[i] = rng.NormFloat64()
		ck.P[i] = rng.NormFloat64()
	}
	ck.Seal()
	return ck
}

// TestCGRoundTrip pins the identity property: a save/load round trip
// reproduces every field bit for bit.
func TestCGRoundTrip(t *testing.T) {
	cl := testCluster(t, 3)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	ck := fillCG(cl, rng, 40)

	path, err := SaveCG(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	if want := CGPath(dir, ck.Lo, ck.Hi, 40); path != want {
		t.Fatalf("saved to %s, want %s", path, want)
	}

	got := solver.NewCGCheckpoint(cl, 100)
	if err := LoadCG(path, got); err != nil {
		t.Fatal(err)
	}
	if !got.Valid() || got.Iter != ck.Iter || got.MVMs != ck.MVMs ||
		math.Float64bits(got.RR) != math.Float64bits(ck.RR) {
		t.Fatalf("scalars corrupted: %+v", got)
	}
	if !bitsEqual(got.History, ck.History) || !bitsEqual(got.X, ck.X) ||
		!bitsEqual(got.R, ck.R) || !bitsEqual(got.P, ck.P) {
		t.Fatal("vectors are not bit-identical after the round trip")
	}
}

// TestLanczosRoundTrip is the Lanczos analogue, including the partially
// filled basis buffer.
func TestLanczosRoundTrip(t *testing.T) {
	cl := testCluster(t, 2)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	const m, step = 30, 10

	ck := solver.NewLanczosCheckpoint(cl, m)
	ck.Step = step
	ck.MVMs = step
	for i := 0; i < step; i++ {
		ck.Alphas = append(ck.Alphas, rng.NormFloat64())
		ck.Betas = append(ck.Betas, rng.NormFloat64())
	}
	span := ck.Hi - ck.Lo
	for i := 0; i < (step+1)*span; i++ {
		ck.Basis[i] = rng.NormFloat64()
	}
	ck.Seal()

	path, err := SaveLanczos(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	got := solver.NewLanczosCheckpoint(cl, m)
	if err := LoadLanczos(path, got); err != nil {
		t.Fatal(err)
	}
	if !got.Valid() || got.Step != step || got.MVMs != step {
		t.Fatalf("scalars corrupted: %+v", got)
	}
	if !bitsEqual(got.Alphas, ck.Alphas) || !bitsEqual(got.Betas, ck.Betas) {
		t.Fatal("coefficients are not bit-identical after the round trip")
	}
	if len(got.Basis) != m*span || !bitsEqual(got.Basis[:(step+1)*span], ck.Basis[:(step+1)*span]) {
		t.Fatal("basis is not bit-identical (or lost its capacity) after the round trip")
	}
}

// TestLatestPicksNewestMatchingSpan pins the directory scan: newest
// iteration wins, other spans and junk files are ignored, and a missing
// directory means a fresh start, not an error.
func TestLatestPicksNewestMatchingSpan(t *testing.T) {
	cl := testCluster(t, 3)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))

	var lastPath string
	for _, it := range []int{20, 60, 40} {
		p, err := SaveCG(dir, fillCG(cl, rng, it))
		if err != nil {
			t.Fatal(err)
		}
		if it == 60 {
			lastPath = p
		}
	}
	// Junk and foreign spans must be ignored.
	os.WriteFile(filepath.Join(dir, "cg-000000-000001-i00000099.ckpt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)

	iter, path, err := LatestCG(dir, fillCG(cl, rng, 1).Lo, fillCG(cl, rng, 1).Hi)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 60 || path != lastPath {
		t.Fatalf("latest = %d (%s), want 60 (%s)", iter, path, lastPath)
	}

	iter, _, err = LatestCG(filepath.Join(dir, "missing"), 0, 1)
	if err != nil || iter != -1 {
		t.Fatalf("missing dir: got %d, %v; want -1, nil", iter, err)
	}
}

// TestLoadRejectsCorruption pins the torn-file defense: a flipped byte
// fails the CRC, a truncated file fails outright, and a span mismatch is
// named.
func TestLoadRejectsCorruption(t *testing.T) {
	cl := testCluster(t, 2)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	ck := fillCG(cl, rng, 8)
	path, err := SaveCG(dir, ck)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.ckpt")
	os.WriteFile(bad, flipped, 0o644)
	if err := LoadCG(bad, solver.NewCGCheckpoint(cl, 100)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted file: got %v, want a checksum error", err)
	}

	os.WriteFile(bad, raw[:10], 0o644)
	if err := LoadCG(bad, solver.NewCGCheckpoint(cl, 100)); err == nil {
		t.Fatal("truncated file accepted")
	}

	other := solver.NewCGCheckpoint(cl, 100)
	other.Lo++
	if err := LoadCG(path, other); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("span mismatch: got %v, want a row-span error", err)
	}

	if _, err := SaveCG(dir, solver.NewCGCheckpoint(cl, 100)); err == nil {
		t.Fatal("saving an unsealed checkpoint accepted")
	}
}

// TestSaveLeavesNoTempDebris pins atomicity's visible half: after a save,
// the directory holds exactly the named snapshot.
func TestSaveLeavesNoTempDebris(t *testing.T) {
	cl := testCluster(t, 2)
	dir := t.TempDir()
	if _, err := SaveCG(dir, fillCG(cl, rand.New(rand.NewSource(5)), 4)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.HasPrefix(ents[0].Name(), "cg-") {
		t.Fatalf("directory contents after save: %v", ents)
	}
}

// TestAgree pins the restart rendezvous on a single-process world: the
// reduction of one process's latest is itself, and -1 (no snapshot)
// survives the float round trip.
func TestAgree(t *testing.T) {
	cl := testCluster(t, 3)
	for _, latest := range []int{-1, 0, 40} {
		got, err := Agree(cl, latest)
		if err != nil {
			t.Fatal(err)
		}
		if got != latest {
			t.Fatalf("Agree(%d) = %d", latest, got)
		}
	}
}

// TestAgreeAcrossRestoredSolve drives the full durable recovery loop
// in-process: solve with on-disk checkpointing, "crash" (discard all
// memory), agree on the newest snapshot, load it, and resume to a
// bit-identical answer.
func TestAgreeAcrossRestoredSolve(t *testing.T) {
	const tol, maxIter, every = 1e-10, 5000, 15
	p, err := genmat.NewPoisson(genmat.PoissonConfig{Nx: 10, Ny: 8, Nz: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(p)
	part := core.PartitionByNnz(p, 4)
	plan, err := core.BuildPlan(p, part, true)
	if err != nil {
		t.Fatal(err)
	}
	n := a.NumRows
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dir := t.TempDir()

	cl, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	xRef := make([]float64, n)
	ref, err := solver.DistCG(cl, b, xRef, tol, maxIter)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Iterations < 3*every {
		t.Fatalf("reference unusable: %+v", ref)
	}

	ck := solver.NewCGCheckpoint(cl, maxIter)
	x := make([]float64, n)
	_, err = solver.DistCGOpt(cl, b, x, solver.CGOptions{
		Tol: tol, MaxIter: maxIter,
		CheckpointEvery: every, Checkpoint: ck,
		OnCheckpoint: func(c *solver.CGCheckpoint) error {
			_, err := SaveCG(dir, c)
			return err
		},
	})
	cl.Close()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": everything in memory is gone; only dir survives.
	cl2, err := core.NewCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	ck2 := solver.NewCGCheckpoint(cl2, maxIter)
	iter, path, err := LatestCG(dir, ck2.Lo, ck2.Hi)
	if err != nil {
		t.Fatal(err)
	}
	agreed, err := Agree(cl2, iter)
	if err != nil {
		t.Fatal(err)
	}
	if agreed != iter || agreed < every {
		t.Fatalf("agreed on %d (local latest %d)", agreed, iter)
	}
	if err := LoadCG(path, ck2); err != nil {
		t.Fatal(err)
	}
	xRec := make([]float64, n)
	rec, err := solver.DistCGOpt(cl2, b, xRec, solver.CGOptions{Tol: tol, MaxIter: maxIter, Restore: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged || !bitsEqual(xRec, xRef) || !bitsEqual(rec.History, ref.History) {
		t.Fatal("durably restored run is not bit-identical to the reference")
	}
}
