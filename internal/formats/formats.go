// Package formats implements the alternative sparse storage schemes the
// paper weighs CRS against (§1.2 and related work [1,2,6,7]): ELLPACK
// (padded row-major, the GPU/vector favourite), Jagged Diagonal Storage
// (JDS, the classic vector-computer format from the lineage of [6,7]), and
// SELL-C-σ, the modern unification of the two from the paper's successor
// line. All formats satisfy matrix.Format, so the parallel engine, the
// solvers and the distributed modes run on any of them; see README.md for
// when SELL-C-σ beats CRS and how σ-sorting composes with RCM reordering.
// Benchmarks in the harness substantiate the paper's choice of CRS as "the
// most efficient format for general sparse matrices on cache-based
// microprocessors" — and quantify where the chunked successor overtakes it.
package formats

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// ELLPACK stores every row padded to the maximum row length, column-major
// across rows (val[slot·rows + row]), giving perfectly regular access at
// the cost of padding.
type ELLPACK struct {
	Rows, Cols int
	Width      int // entries per padded row
	ColIdx     []int32
	Val        []float64
}

// NewELLPACK converts a CSR matrix. It returns an error when padding would
// blow storage up by more than maxBlowup (e.g. 10): ELLPACK is unusable for
// strongly irregular rows, which is part of the point.
func NewELLPACK(a *matrix.CSR, maxBlowup float64) (*ELLPACK, error) {
	width := 0
	for i := 0; i < a.NumRows; i++ {
		if l := int(a.RowPtr[i+1] - a.RowPtr[i]); l > width {
			width = l
		}
	}
	padded := float64(width) * float64(a.NumRows)
	if a.Nnz() > 0 && padded/float64(a.Nnz()) > maxBlowup {
		return nil, fmt.Errorf("formats: ELLPACK padding blowup %.1fx exceeds %.1fx",
			padded/float64(a.Nnz()), maxBlowup)
	}
	e := &ELLPACK{
		Rows: a.NumRows, Cols: a.NumCols, Width: width,
		ColIdx: make([]int32, width*a.NumRows),
		Val:    make([]float64, width*a.NumRows),
	}
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		for s := 0; s < width; s++ {
			idx := s*a.NumRows + i
			if s < len(cols) {
				e.ColIdx[idx] = cols[s]
				e.Val[idx] = vals[s]
			} else {
				// Pad with a harmless in-range column and zero value.
				e.ColIdx[idx] = 0
			}
		}
	}
	return e, nil
}

// PaddingRatio returns stored slots / actual nonzeros.
func (e *ELLPACK) PaddingRatio(nnz int64) float64 {
	if nnz == 0 {
		return 1
	}
	return float64(e.Width) * float64(e.Rows) / float64(nnz)
}

// MulVec computes y = A·x.
func (e *ELLPACK) MulVec(y, x []float64) {
	if len(x) != e.Cols || len(y) != e.Rows {
		panic("formats: ELLPACK MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for s := 0; s < e.Width; s++ {
		base := s * e.Rows
		for i := 0; i < e.Rows; i++ {
			y[i] += e.Val[base+i] * x[e.ColIdx[base+i]]
		}
	}
}

// JDS is Jagged Diagonal Storage: rows are sorted by descending length and
// stored as dense "jagged diagonals". The format vectorizes beautifully on
// long-vector machines — the architecture class of the paper's reference
// [6,7] era — but permutes the result and scatters cache accesses on
// microprocessors.
type JDS struct {
	Rows, Cols int
	// Perm[k] is the original row index of sorted position k.
	Perm []int32
	// JdPtr[d] is the offset of jagged diagonal d; there are MaxLen diagonals.
	JdPtr  []int64
	ColIdx []int32
	Val    []float64
}

// NewJDS converts a CSR matrix.
func NewJDS(a *matrix.CSR) *JDS {
	n := a.NumRows
	j := &JDS{Rows: n, Cols: a.NumCols, Perm: make([]int32, n)}
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		j.Perm[i] = int32(i)
		lens[i] = int(a.RowPtr[i+1] - a.RowPtr[i])
	}
	sort.SliceStable(j.Perm, func(x, y int) bool {
		return lens[j.Perm[x]] > lens[j.Perm[y]]
	})
	maxLen := 0
	if n > 0 {
		maxLen = lens[j.Perm[0]]
	}
	j.JdPtr = make([]int64, maxLen+1)
	for d := 0; d < maxLen; d++ {
		// Rows with length > d contribute to diagonal d; they are a prefix
		// of the sorted order.
		count := sort.Search(n, func(k int) bool { return lens[j.Perm[k]] <= d })
		j.JdPtr[d+1] = j.JdPtr[d] + int64(count)
	}
	j.ColIdx = make([]int32, j.JdPtr[maxLen])
	j.Val = make([]float64, j.JdPtr[maxLen])
	for d := 0; d < maxLen; d++ {
		base := j.JdPtr[d]
		for k := int64(0); base+k < j.JdPtr[d+1]; k++ {
			row := j.Perm[k]
			cols, vals := a.Row(int(row))
			j.ColIdx[base+k] = cols[d]
			j.Val[base+k] = vals[d]
		}
	}
	return j
}

// MulVec computes y = A·x (y in original row order).
func (j *JDS) MulVec(y, x []float64) {
	if len(x) != j.Cols || len(y) != j.Rows {
		panic("formats: JDS MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for d := 0; d < len(j.JdPtr)-1; d++ {
		base := j.JdPtr[d]
		cnt := j.JdPtr[d+1] - base
		for k := int64(0); k < cnt; k++ {
			y[j.Perm[k]] += j.Val[base+k] * x[j.ColIdx[base+k]]
		}
	}
}

// MemoryBytes reports the storage footprint of each format for comparison
// tables: CSR = 12·nnz + 8·(rows+1); ELLPACK = 12·width·rows;
// JDS = 12·nnz + 8·diagonals + 4·rows.
func MemoryBytes(a *matrix.CSR, e *ELLPACK, j *JDS) (csr, ell, jds int64) {
	csr = 12*a.Nnz() + 8*int64(a.NumRows+1)
	if e != nil {
		ell = 12 * int64(e.Width) * int64(e.Rows)
	}
	if j != nil {
		jds = 12*j.JdPtr[len(j.JdPtr)-1] + 8*int64(len(j.JdPtr)) + 4*int64(j.Rows)
	}
	return
}
