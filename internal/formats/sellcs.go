package formats

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// MaxChunkHeight bounds the SELL-C-σ chunk height C so the kernel can keep
// its per-chunk accumulators in a fixed stack array.
const MaxChunkHeight = 64

// SELLCSigma is the SELL-C-σ storage scheme (Kreutzer, Hager, Wellein et
// al.), the successor of ELLPACK and JDS for wide-SIMD hardware: rows are
// grouped into chunks of height C, each chunk is padded only to the width of
// its own longest row, and rows are sorted by descending length within
// windows of σ rows so that chunk-mates have similar lengths and padding
// stays small. C = 1 degenerates to CSR, C = NumRows with σ = NumRows to
// ELLPACK+JDS-style full sorting.
//
// Entries are stored chunk-local column-major: slot j of chunk c occupies
// positions ChunkPtr[c]+j·C .. ChunkPtr[c]+j·C+C-1, one entry per chunk row.
// The trailing chunk is padded to full height C so the stride is uniform.
type SELLCSigma struct {
	Rows, Cols int
	C, Sigma   int
	// Perm[k] is the original row stored at sorted position k.
	Perm []int32
	// ChunkPtr[c] is the storage offset of chunk c; len NumChunks+1.
	ChunkPtr []int64
	// ChunkLen[c] is the slot count (width) of chunk c.
	ChunkLen []int32
	ColIdx   []int32
	Val      []float64

	nnz int64
}

// NewSELLCSigma converts a CSR matrix. c must lie in [1, MaxChunkHeight];
// sigma ≥ 1 is the sorting-window size (sigma = 1 disables sorting and
// preserves row order; a multiple of c is customary).
func NewSELLCSigma(a *matrix.CSR, c, sigma int) (*SELLCSigma, error) {
	return NewSELLCSigmaColRange(a, c, sigma, 0, a.NumCols)
}

// NewSELLCSigmaColRange builds the SELL-C-σ representation of the entries
// of a with columns in [colLo, colHi) — the local half of a distributed
// column split, without materializing an intermediate CSR copy. Row count
// and column dimension stay those of a (rows with no in-range entry are
// stored with width contributions of zero), so input and result vectors
// keep their indexing. Row lengths for σ-sorting and chunk widths count
// in-range entries only.
func NewSELLCSigmaColRange(a *matrix.CSR, c, sigma, colLo, colHi int) (*SELLCSigma, error) {
	if c < 1 || c > MaxChunkHeight {
		return nil, fmt.Errorf("formats: chunk height C=%d outside [1,%d]", c, MaxChunkHeight)
	}
	if sigma < 1 {
		return nil, fmt.Errorf("formats: sorting window σ=%d < 1", sigma)
	}
	if colLo < 0 || colHi > a.NumCols || colLo > colHi {
		return nil, fmt.Errorf("formats: column range [%d,%d) outside [0,%d]", colLo, colHi, a.NumCols)
	}
	lo32, hi32 := int32(colLo), int32(colHi)
	n := a.NumRows
	s := &SELLCSigma{
		Rows: n, Cols: a.NumCols, C: c, Sigma: sigma,
		Perm: make([]int32, n),
	}
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		s.Perm[i] = int32(i)
		cols, _ := a.Row(i)
		for _, col := range cols {
			if col >= lo32 && col < hi32 {
				lens[i]++
			}
		}
		s.nnz += int64(lens[i])
	}
	// σ-window sort: descending row length within each window of σ rows,
	// stable so equal-length rows keep their (e.g. RCM-optimized) order.
	for lo := 0; lo < n; lo += sigma {
		hi := lo + sigma
		if hi > n {
			hi = n
		}
		win := s.Perm[lo:hi]
		sort.SliceStable(win, func(x, y int) bool {
			return lens[win[x]] > lens[win[y]]
		})
	}

	numChunks := (n + c - 1) / c
	s.ChunkPtr = make([]int64, numChunks+1)
	s.ChunkLen = make([]int32, numChunks)
	for ch := 0; ch < numChunks; ch++ {
		width := 0
		for r := ch * c; r < (ch+1)*c && r < n; r++ {
			if l := lens[s.Perm[r]]; l > width {
				width = l
			}
		}
		s.ChunkLen[ch] = int32(width)
		s.ChunkPtr[ch+1] = s.ChunkPtr[ch] + int64(width*c)
	}
	s.ColIdx = make([]int32, s.ChunkPtr[numChunks])
	s.Val = make([]float64, s.ChunkPtr[numChunks])
	// Padding slots keep ColIdx 0 and Val 0: the kernel's 0·x[0] term adds
	// +0.0, which leaves accumulators bit-unchanged for finite x. (With a
	// non-finite x[0], 0·±Inf = NaN contaminates padded rows — the standard
	// SELL-C-σ caveat; see MulVecBlocks.)
	for ch := 0; ch < numChunks; ch++ {
		base := s.ChunkPtr[ch]
		for r := 0; r < c; r++ {
			row := ch*c + r
			if row >= n {
				break
			}
			cols, vals := a.Row(int(s.Perm[row]))
			slot := 0
			for j, col := range cols {
				if col < lo32 || col >= hi32 {
					continue
				}
				s.ColIdx[base+int64(slot*c+r)] = col
				s.Val[base+int64(slot*c+r)] = vals[j]
				slot++
			}
		}
	}
	return s, nil
}

var _ matrix.Format = (*SELLCSigma)(nil)

// SELLBuilder is the matrix.FormatBuilder of SELL-C-σ, carrying the chunk
// height C and sorting window σ. It is what Plan.ConvertFormat and the
// format-generic split consume, covering both the full local matrix and
// the column-restricted local half.
type SELLBuilder struct {
	C, Sigma int
}

var _ matrix.FormatBuilder = SELLBuilder{}

// Name returns e.g. "sell-32-256".
func (b SELLBuilder) Name() string { return fmt.Sprintf("sell-%d-%d", b.C, b.Sigma) }

// Build converts the full matrix.
func (b SELLBuilder) Build(a *matrix.CSR) (matrix.Format, error) {
	return NewSELLCSigma(a, b.C, b.Sigma)
}

// BuildColRange converts only the entries with columns in [colLo, colHi).
func (b SELLBuilder) BuildColRange(a *matrix.CSR, colLo, colHi int) (matrix.Format, error) {
	return NewSELLCSigmaColRange(a, b.C, b.Sigma, colLo, colHi)
}

// Dims returns the matrix dimensions.
func (s *SELLCSigma) Dims() (rows, cols int) { return s.Rows, s.Cols }

// Nnz returns the stored nonzeros, excluding padding.
func (s *SELLCSigma) Nnz() int64 { return s.nnz }

// NumBlocks returns the chunk count: chunks own disjoint result rows and are
// the format's parallel work unit.
func (s *SELLCSigma) NumBlocks() int { return len(s.ChunkLen) }

// BlockNnzPrefix returns the per-chunk stored-slot counts (including
// padding — the work a chunk actually costs) in prefix form.
func (s *SELLCSigma) BlockNnzPrefix() []int64 { return s.ChunkPtr }

// PaddingRatio returns stored slots / actual nonzeros.
func (s *SELLCSigma) PaddingRatio() float64 {
	if s.nnz == 0 {
		return 1
	}
	return float64(s.ChunkPtr[len(s.ChunkPtr)-1]) / float64(s.nnz)
}

// MemoryBytes returns the storage footprint (12 bytes per stored slot plus
// chunk metadata and the permutation).
func (s *SELLCSigma) MemoryBytes() int64 {
	return 12*s.ChunkPtr[len(s.ChunkPtr)-1] + 12*int64(len(s.ChunkLen)) + 4*int64(s.Rows)
}

// MulVec computes y = A·x.
func (s *SELLCSigma) MulVec(y, x []float64) {
	if len(x) != s.Cols || len(y) != s.Rows {
		panic("formats: SELL-C-σ MulVec dimension mismatch")
	}
	s.MulVecBlocks(y, x, 0, len(s.ChunkLen))
}

// MulVecBlocks computes the rows of chunks [lo, hi), overwriting them in y.
// Per row the accumulation runs in ascending slot order — the same
// floating-point order as the CSR row kernel — so for finite x the results
// are bit-identical to the serial CRS reference. (Padding slots multiply
// 0·x[0]; if x holds Inf or NaN — e.g. a diverged solver iterate — padded
// rows pick up NaN where CSR would not. A -0.0 partial sum likewise
// normalizes to +0.0.)
func (s *SELLCSigma) MulVecBlocks(y, x []float64, lo, hi int) {
	s.mulBlocks(y, x, lo, hi, false)
}

// MulVecBlocksAdd is MulVecBlocks with += semantics.
func (s *SELLCSigma) MulVecBlocksAdd(y, x []float64, lo, hi int) {
	s.mulBlocks(y, x, lo, hi, true)
}

func (s *SELLCSigma) mulBlocks(y, x []float64, lo, hi int, add bool) {
	c := s.C
	for ch := lo; ch < hi; ch++ {
		var acc [MaxChunkHeight]float64
		rows := s.Rows - ch*c // rows actually present in this chunk
		if rows > c {
			rows = c
		}
		if add {
			for r := 0; r < rows; r++ {
				acc[r] = y[s.Perm[ch*c+r]]
			}
		}
		base := s.ChunkPtr[ch]
		for j := int32(0); j < s.ChunkLen[ch]; j++ {
			val := s.Val[base : base+int64(c)]
			col := s.ColIdx[base : base+int64(c)]
			for r := 0; r < c; r++ {
				acc[r] += val[r] * x[col[r]]
			}
			base += int64(c)
		}
		for r := 0; r < rows; r++ {
			y[s.Perm[ch*c+r]] = acc[r]
		}
	}
}
