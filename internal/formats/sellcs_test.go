package formats

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/spmv"
)

func TestSELLCSigmaBitIdenticalToCSR(t *testing.T) {
	a := randomCSR(41, 500, 7)
	x := randVec(42, 500)
	want := make([]float64, 500)
	a.MulVec(want, x)
	for _, cfg := range []struct{ c, sigma int }{
		{1, 1}, {4, 4}, {8, 64}, {32, 128}, {32, 500}, {64, 500}, {3, 10},
	} {
		s, err := NewSELLCSigma(a, cfg.c, cfg.sigma)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, 500)
		s.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("C=%d σ=%d: not bit-identical to CSR at row %d: %v != %v",
					cfg.c, cfg.sigma, i, got[i], want[i])
			}
		}
	}
}

func TestSELLCSigmaBlocksAdd(t *testing.T) {
	a := randomCSR(43, 300, 5)
	x := randVec(44, 300)
	y0 := randVec(45, 300)
	s, err := NewSELLCSigma(a, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), y0...)
	a.MulVecBlocksAdd(want, x, 0, a.NumRows)
	got := append([]float64(nil), y0...)
	s.MulVecBlocksAdd(got, x, 0, s.NumBlocks())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Add kernel differs from CSR at row %d", i)
		}
	}
}

func TestSELLCSigmaParallel(t *testing.T) {
	a := randomCSR(46, 700, 6)
	x := randVec(47, 700)
	want := make([]float64, 700)
	a.MulVec(want, x)
	s, err := NewSELLCSigma(a, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		team := spmv.NewTeam(workers)
		p := spmv.NewParallelFormat(s, workers)
		got := make([]float64, 700)
		p.MulVec(team, got, x)
		team.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: parallel SELL-C-σ differs from serial CSR at row %d", workers, i)
			}
		}
	}
}

func TestSELLCSigmaSortingReducesPadding(t *testing.T) {
	// Strongly skewed row lengths: one long row per 64-row stretch. With
	// σ = 1 (no sorting) the long row pads its whole chunk; a σ spanning
	// several chunks groups long rows together.
	n := 512
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 1
		if i%64 == 0 {
			for j := 0; j < 32; j++ {
				d[i][(i+j)%n] = 1
			}
		}
	}
	a := matrix.NewCSRFromDense(d)
	unsorted, err := NewSELLCSigma(a, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := NewSELLCSigma(a, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.PaddingRatio() >= unsorted.PaddingRatio() {
		t.Errorf("σ-sorting did not reduce padding: %.2f >= %.2f",
			sorted.PaddingRatio(), unsorted.PaddingRatio())
	}
	// Both still multiply correctly.
	x := randVec(48, n)
	want := make([]float64, n)
	a.MulVec(want, x)
	for _, s := range []*SELLCSigma{unsorted, sorted} {
		got := make([]float64, n)
		s.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("σ=%d: mismatch at row %d", s.Sigma, i)
			}
		}
	}
}

func TestSELLCSigmaColRangeMatchesRestrictedCSR(t *testing.T) {
	a := randomCSR(61, 400, 6)
	x := randVec(62, 400)
	for _, rg := range []struct{ lo, hi int }{
		{0, 400}, {0, 250}, {130, 270}, {399, 400}, {200, 200},
	} {
		restricted := a.RestrictCols(rg.lo, rg.hi)
		want := make([]float64, 400)
		restricted.MulVec(want, x)
		for _, cfg := range []struct{ c, sigma int }{{1, 1}, {8, 32}, {32, 256}} {
			s, err := NewSELLCSigmaColRange(a, cfg.c, cfg.sigma, rg.lo, rg.hi)
			if err != nil {
				t.Fatal(err)
			}
			if s.Nnz() != restricted.Nnz() {
				t.Fatalf("[%d,%d) C=%d: nnz %d, want %d", rg.lo, rg.hi, cfg.c, s.Nnz(), restricted.Nnz())
			}
			if rows, cols := s.Dims(); rows != a.NumRows || cols != a.NumCols {
				t.Fatalf("[%d,%d): dims %dx%d, want full %dx%d", rg.lo, rg.hi, rows, cols, a.NumRows, a.NumCols)
			}
			got := make([]float64, 400)
			s.MulVec(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("[%d,%d) C=%d σ=%d: differs from restricted CSR at row %d: %v != %v",
						rg.lo, rg.hi, cfg.c, cfg.sigma, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSELLCSigmaColRangeRejectsBadRange(t *testing.T) {
	a := randomCSR(63, 50, 4)
	for _, rg := range []struct{ lo, hi int }{{-1, 10}, {0, 51}, {30, 20}} {
		if _, err := NewSELLCSigmaColRange(a, 4, 4, rg.lo, rg.hi); err == nil {
			t.Errorf("column range [%d,%d) accepted", rg.lo, rg.hi)
		}
	}
}

func TestSELLBuilder(t *testing.T) {
	b := SELLBuilder{C: 8, Sigma: 32}
	if b.Name() != "sell-8-32" {
		t.Errorf("Name() = %q", b.Name())
	}
	a := randomCSR(65, 200, 5)
	x := randVec(66, 200)
	full, err := b.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 200)
	a.MulVec(want, x)
	got := make([]float64, 200)
	full.MulVecBlocks(got, x, 0, full.NumBlocks())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Build product differs at row %d", i)
		}
	}
	if _, err := b.BuildColRange(a, 10, 5); err == nil {
		t.Error("BuildColRange accepted an inverted range")
	}
	if _, err := (SELLBuilder{C: 0, Sigma: 1}).Build(a); err == nil {
		t.Error("C=0 accepted")
	}
}

func TestFormatSplitWithSELL(t *testing.T) {
	// The format-generic split with a SELL-C-σ local half: two-pass product
	// bit-identical to the serial CSR kernel, local chunking in the SELL
	// chunk (block) space.
	a := randomCSR(67, 350, 6)
	const boundary = 220
	fs, err := spmv.NewFormatSplit(a, boundary, SELLBuilder{C: 16, Sigma: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := fs.Local.(*SELLCSigma)
	if !ok {
		t.Fatalf("local half is %T, want *SELLCSigma", fs.Local)
	}
	if s.NumBlocks() != (350+15)/16 {
		t.Fatalf("local half has %d blocks", s.NumBlocks())
	}
	x := randVec(68, 350)
	want := make([]float64, 350)
	a.MulVec(want, x)
	team := spmv.NewTeam(3)
	defer team.Close()
	got := make([]float64, 350)
	fs.MulVecLocal(team, fs.LocalChunks(3), got, x)
	fs.MulVecRemoteAdd(team, fs.RemoteChunks(3), got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SELL format split differs from serial at row %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestSELLCSigmaRejectsBadParams(t *testing.T) {
	a := randomCSR(49, 50, 3)
	if _, err := NewSELLCSigma(a, 0, 1); err == nil {
		t.Error("C=0 accepted")
	}
	if _, err := NewSELLCSigma(a, MaxChunkHeight+1, 1); err == nil {
		t.Error("C beyond MaxChunkHeight accepted")
	}
	if _, err := NewSELLCSigma(a, 4, 0); err == nil {
		t.Error("σ=0 accepted")
	}
}

func TestSELLCSigmaEmptyAndTiny(t *testing.T) {
	empty := &matrix.CSR{NumRows: 0, NumCols: 0, RowPtr: []int64{0}}
	s, err := NewSELLCSigma(empty, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != 0 || s.Nnz() != 0 {
		t.Errorf("empty matrix: %d blocks, %d nnz", s.NumBlocks(), s.Nnz())
	}
	s.MulVec(nil, nil)

	// 5 rows with C=4: the trailing partial chunk must still be correct.
	tiny := matrix.NewCSRFromDense([][]float64{
		{1, 0, 2}, {0, 3, 0}, {4, 0, 0}, {0, 5, 6}, {7, 0, 8},
	})
	st, err := NewSELLCSigma(tiny, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	want := make([]float64, 5)
	tiny.MulVec(want, x)
	got := make([]float64, 5)
	st.MulVec(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partial trailing chunk wrong at row %d: %v != %v", i, got[i], want[i])
		}
	}
}
