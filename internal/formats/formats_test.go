package formats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/genmat"
	"repro/internal/matrix"
)

func randomCSR(seed int64, n, perRow int) *matrix.CSR {
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: n, Bandwidth: n / 2, PerRow: perRow, Seed: uint64(seed),
	})
	if err != nil {
		panic(err)
	}
	return matrix.Materialize(g)
}

func randVec(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func equal(a, b []float64, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestELLPACKMatchesCSR(t *testing.T) {
	a := randomCSR(1, 300, 5)
	e, err := NewELLPACK(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(2, 300)
	want := make([]float64, 300)
	a.MulVec(want, x)
	got := make([]float64, 300)
	e.MulVec(got, x)
	if !equal(want, got, 1e-13) {
		t.Error("ELLPACK result differs from CSR")
	}
	if r := e.PaddingRatio(a.Nnz()); r < 1 {
		t.Errorf("padding ratio %.2f < 1", r)
	}
}

func TestELLPACKRejectsIrregularRows(t *testing.T) {
	// One dense row among empty-ish rows: massive padding.
	n := 100
	var entries []matrix.Coord
	for jj := 0; jj < n; jj++ {
		entries = append(entries, matrix.Coord{Row: 0, Col: int32(jj), Val: 1})
	}
	for i := 1; i < n; i++ {
		entries = append(entries, matrix.Coord{Row: int32(i), Col: int32(i), Val: 1})
	}
	a, err := matrix.NewCSRFromCOO(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewELLPACK(a, 10); err == nil {
		t.Error("pathological padding accepted")
	}
	if _, err := NewELLPACK(a, 1000); err != nil {
		t.Errorf("padding within budget rejected: %v", err)
	}
}

func TestJDSMatchesCSR(t *testing.T) {
	a := randomCSR(3, 400, 6)
	j := NewJDS(a)
	x := randVec(4, 400)
	want := make([]float64, 400)
	a.MulVec(want, x)
	got := make([]float64, 400)
	j.MulVec(got, x)
	if !equal(want, got, 1e-13) {
		t.Error("JDS result differs from CSR")
	}
}

func TestJDSDiagonalLengthsDecrease(t *testing.T) {
	a := randomCSR(5, 200, 7)
	j := NewJDS(a)
	for d := 1; d < len(j.JdPtr)-1; d++ {
		l0 := j.JdPtr[d] - j.JdPtr[d-1]
		l1 := j.JdPtr[d+1] - j.JdPtr[d]
		if l1 > l0 {
			t.Fatalf("jagged diagonal %d longer than %d (%d > %d)", d, d-1, l1, l0)
		}
	}
	// Total slots equal nnz exactly: no padding in JDS.
	if j.JdPtr[len(j.JdPtr)-1] != a.Nnz() {
		t.Errorf("JDS stores %d entries, want %d", j.JdPtr[len(j.JdPtr)-1], a.Nnz())
	}
}

func TestJDSPermIsBijection(t *testing.T) {
	a := randomCSR(6, 150, 4)
	j := NewJDS(a)
	seen := make([]bool, a.NumRows)
	for _, p := range j.Perm {
		if seen[p] {
			t.Fatal("JDS permutation repeats a row")
		}
		seen[p] = true
	}
}

func TestFormatsOnHolstein(t *testing.T) {
	h, err := genmat.NewHolstein(genmat.HolsteinConfig{
		Sites: 4, NumUp: 2, NumDown: 2, MaxPhonons: 3,
		T: 1, U: 4, Omega: 1, G: 1, Ordering: genmat.HMeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(h)
	x := randVec(7, a.NumRows)
	want := make([]float64, a.NumRows)
	a.MulVec(want, x)

	e, err := NewELLPACK(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, a.NumRows)
	e.MulVec(got, x)
	if !equal(want, got, 1e-12) {
		t.Error("ELLPACK wrong on Hamiltonian")
	}

	j := NewJDS(a)
	for i := range got {
		got[i] = 0
	}
	j.MulVec(got, x)
	if !equal(want, got, 1e-12) {
		t.Error("JDS wrong on Hamiltonian")
	}

	csr, ell, jds := MemoryBytes(a, e, j)
	if ell < csr-8*int64(a.NumRows+1) {
		t.Errorf("ELLPACK (%d B) cannot be smaller than CSR payload (%d B)", ell, csr)
	}
	if jds <= 0 || csr <= 0 {
		t.Error("memory accounting broken")
	}
}

func TestFormatsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		a := randomCSR(seed, n, 1+rng.Intn(6))
		x := randVec(seed+1, n)
		want := make([]float64, n)
		a.MulVec(want, x)
		e, err := NewELLPACK(a, 50)
		if err != nil {
			return true // padding guard tripped: fine
		}
		gotE := make([]float64, n)
		e.MulVec(gotE, x)
		gotJ := make([]float64, n)
		NewJDS(a).MulVec(gotJ, x)
		return equal(want, gotE, 1e-12) && equal(want, gotJ, 1e-12)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	a := &matrix.CSR{NumRows: 3, NumCols: 3, RowPtr: []int64{0, 0, 0, 0}}
	e, err := NewELLPACK(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 2, 3}
	e.MulVec(y, []float64{1, 1, 1})
	for _, v := range y {
		if v != 0 {
			t.Error("empty ELLPACK produced nonzero")
		}
	}
	j := NewJDS(a)
	y = []float64{1, 2, 3}
	j.MulVec(y, []float64{1, 1, 1})
	for _, v := range y {
		if v != 0 {
			t.Error("empty JDS produced nonzero")
		}
	}
}
