package simmpi

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/machine"
	"repro/internal/netmodel"
)

const eps = 1e-9

// testWorld builds a 2-node fat-tree world with one rank per node.
// Link bandwidth 100 B/s, latency 1 ms, eager threshold 10 bytes.
func testWorld(ranks int) (*des.Sim, *World) {
	sim := des.New()
	sys := fluid.NewSystem(sim)
	spec := machine.NetSpec{
		Kind: machine.FatTree, LinkBW: 100, Latency: 1e-3,
		IntraBW: 1000, IntraLatency: 1e-4, EagerThreshold: 10,
	}
	net := netmodel.New(sys, spec, ranks)
	nodeOf := make([]int, ranks)
	for i := range nodeOf {
		nodeOf[i] = i
	}
	w := NewWorld(sim, sys, net, nodeOf, Config{
		EagerThreshold: 10, BarrierLatency: 1e-3, RendezvousLatency: 0,
	})
	return sim, w
}

// TestNoProgressOutsideMPI is the paper's central mechanism: a rendezvous
// transfer posted with Isend/Irecv makes no progress while the sender
// computes outside MPI; the transfer happens entirely inside Waitall.
func TestNoProgressOutsideMPI(t *testing.T) {
	sim, w := testWorld(2)
	var senderDone, recvDone float64
	sim.Spawn("sender", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 1000) // 1000 B ≥ eager → rendezvous
		p.Sleep(5)                    // "computation": no MPI progress
		proc.Waitall(p, req)
		senderDone = p.Now()
	})
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		req := proc.Irecv(0, 0)
		proc.Waitall(p, req) // receiver waits from the start
		recvDone = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Transfer = latency (1ms) + 1000/100 = 10.001 s, starting only at t=5.
	want := 5 + 1e-3 + 10.0
	if math.Abs(senderDone-want) > 1e-6 {
		t.Errorf("sender done at %g, want %g (no overlap)", senderDone, want)
	}
	if math.Abs(recvDone-want) > 1e-6 {
		t.Errorf("receiver done at %g, want %g", recvDone, want)
	}
}

// TestAsyncProgressOverlaps models an MPI library with a working progress
// thread (the paper's outlook): the same exchange overlaps the compute.
func TestAsyncProgressOverlaps(t *testing.T) {
	sim, w := testWorld(2)
	w.Proc(0).AsyncProgress = true
	w.Proc(1).AsyncProgress = true
	var senderDone float64
	sim.Spawn("sender", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 1000)
		p.Sleep(5)
		proc.Waitall(p, req)
		senderDone = p.Now()
	})
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		req := proc.Irecv(0, 0)
		proc.Waitall(p, req)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Transfer (≈10 s) overlaps the 5 s sleep → done ≈ 10.001 s.
	want := 1e-3 + 10.0
	if math.Abs(senderDone-want) > 1e-6 {
		t.Errorf("sender done at %g, want %g (full overlap)", senderDone, want)
	}
}

// TestTaskModeCommThreadOverlaps: when the endpoint sits inside Waitall
// (the dedicated communication thread), the transfer runs concurrently
// with other simulated work.
func TestTaskModeCommThreadOverlaps(t *testing.T) {
	sim, w := testWorld(2)
	var done float64
	sim.Spawn("sender-comm", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 1000)
		proc.Waitall(p, req) // comm thread sits in MPI immediately
		done = p.Now()
	})
	sim.Spawn("receiver-comm", func(p *des.Proc) {
		proc := w.Proc(1)
		req := proc.Irecv(0, 0)
		proc.Waitall(p, req)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1e-3 + 10.0
	if math.Abs(done-want) > 1e-6 {
		t.Errorf("comm thread done at %g, want %g", done, want)
	}
}

// TestEagerBypassesProgress: small messages leave immediately even though
// neither process is inside MPI.
func TestEagerBypassesProgress(t *testing.T) {
	sim, w := testWorld(2)
	var recvDone float64
	sim.Spawn("sender", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 8) // below the 10-byte threshold
		if !req.signal().Fired() {
			t.Error("eager send request should complete immediately")
		}
		p.Sleep(100) // never re-enters MPI
	})
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		p.Sleep(0.5)
		req := proc.Irecv(0, 0)
		proc.Waitall(p, req)
		recvDone = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Transfer: starts at 0, latency 1ms + 8/100 s = 0.081 → arrival 0.081;
	// receiver posts at 0.5 → completes at 0.5.
	if math.Abs(recvDone-0.5) > 1e-6 {
		t.Errorf("eager receive done at %g, want 0.5", recvDone)
	}
}

func TestRecvPostedFirstThenRendezvous(t *testing.T) {
	sim, w := testWorld(2)
	var recvDone float64
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		req := proc.Irecv(0, 0)
		proc.Waitall(p, req)
		recvDone = p.Now()
	})
	sim.Spawn("sender", func(p *des.Proc) {
		p.Sleep(2)
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 500)
		proc.Waitall(p, req)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 + 1e-3 + 5.0
	if math.Abs(recvDone-want) > 1e-6 {
		t.Errorf("receive done at %g, want %g", recvDone, want)
	}
}

func TestContentionOnSharedNIC(t *testing.T) {
	// Two senders to the same destination share its ejection link.
	sim, w := testWorld(3)
	var done [2]float64
	for s := 0; s < 2; s++ {
		s := s
		sim.Spawn("sender", func(p *des.Proc) {
			proc := w.Proc(s)
			req := proc.Isend(2, 0, 500)
			proc.Waitall(p, req)
			done[s] = p.Now()
		})
	}
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(2)
		r0 := proc.Irecv(0, 0)
		r1 := proc.Irecv(1, 0)
		proc.Waitall(p, r0, r1)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 total bytes through one 100 B/s down link → ≈ 10 s for both.
	for s, d := range done {
		if math.Abs(d-(1e-3+10.0)) > 1e-6 {
			t.Errorf("sender %d done at %g, want ≈10.001 (shared link)", s, d)
		}
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two same-tag messages: receives match in posting order.
	sim, w := testWorld(2)
	var first, second float64
	sim.Spawn("sender", func(p *des.Proc) {
		proc := w.Proc(0)
		r1 := proc.Isend(1, 5, 100) // 1 s on the wire
		r2 := proc.Isend(1, 5, 900) // 9 s
		proc.Waitall(p, r1, r2)
	})
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		r1 := proc.Irecv(0, 5)
		r2 := proc.Irecv(0, 5)
		proc.Waitall(p, r1)
		first = p.Now()
		proc.Waitall(p, r2)
		second = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if first >= second {
		t.Errorf("FIFO violated: first %g, second %g", first, second)
	}
}

func TestBarrierCost(t *testing.T) {
	sim, w := testWorld(4)
	var release [4]float64
	for r := 0; r < 4; r++ {
		r := r
		sim.Spawn("p", func(p *des.Proc) {
			p.Sleep(float64(r)) // staggered arrivals: last at t=3
			w.Proc(r).Barrier(p)
			release[r] = p.Now()
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := 3 + 2e-3 // last arrival + log2(4)×1ms
	for r, d := range release {
		if math.Abs(d-want) > eps {
			t.Errorf("rank %d released at %g, want %g", r, d, want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	sim, w := testWorld(3)
	counts := make([]int, 3)
	for r := 0; r < 3; r++ {
		r := r
		sim.Spawn("p", func(p *des.Proc) {
			for round := 0; round < 5; round++ {
				w.Proc(r).Barrier(p)
				counts[r]++
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != 5 {
			t.Errorf("rank %d completed %d rounds", r, c)
		}
	}
}

// TestRendezvousNeedsBothSides: sender in Waitall but receiver computing →
// no transfer until the receiver enters MPI.
func TestRendezvousNeedsBothSides(t *testing.T) {
	sim, w := testWorld(2)
	var recvDone float64
	sim.Spawn("sender", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 1000)
		proc.Waitall(p, req)
	})
	sim.Spawn("receiver", func(p *des.Proc) {
		proc := w.Proc(1)
		req := proc.Irecv(0, 0)
		p.Sleep(7) // computing, not driving progress
		proc.Waitall(p, req)
		recvDone = p.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := 7 + 1e-3 + 10.0
	if math.Abs(recvDone-want) > 1e-6 {
		t.Errorf("receive done at %g, want %g (transfer gated on receiver)", recvDone, want)
	}
}

func TestRendezvousLatencyApplied(t *testing.T) {
	sim := des.New()
	sys := fluid.NewSystem(sim)
	spec := machine.NetSpec{Kind: machine.FatTree, LinkBW: 100, Latency: 1e-3, IntraBW: 1000, IntraLatency: 1e-4}
	net := netmodel.New(sys, spec, 2)
	w := NewWorld(sim, sys, net, []int{0, 1}, Config{
		EagerThreshold: 10, BarrierLatency: 1e-3, RendezvousLatency: 0.25,
	})
	var done float64
	sim.Spawn("s", func(p *des.Proc) {
		proc := w.Proc(0)
		req := proc.Isend(1, 0, 100)
		proc.Waitall(p, req)
		done = p.Now()
	})
	sim.Spawn("r", func(p *des.Proc) {
		proc := w.Proc(1)
		proc.Waitall(p, proc.Irecv(0, 0))
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := 0.25 + 1e-3 + 1.0
	if math.Abs(done-want) > 1e-6 {
		t.Errorf("done at %g, want %g (handshake latency)", done, want)
	}
}

func TestDeterministicExchange(t *testing.T) {
	run := func() float64 {
		sim, w := testWorld(4)
		var last float64
		for r := 0; r < 4; r++ {
			r := r
			sim.Spawn("p", func(p *des.Proc) {
				proc := w.Proc(r)
				next := (r + 1) % 4
				prev := (r + 3) % 4
				for it := 0; it < 3; it++ {
					rx := proc.Irecv(prev, it)
					tx := proc.Isend(next, it, 200+float64(50*r))
					p.Sleep(0.1)
					proc.Waitall(p, rx, tx)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %g vs %g", a, b)
	}
}
