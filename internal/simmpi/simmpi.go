// Package simmpi models MPI point-to-point timing semantics on the
// discrete-event simulator. Its central feature is the paper's central
// observation (§3): standard MPI implementations make progress — actual
// data transfer — only while the user process executes MPI library code.
//
// Concretely: a message at or above the eager threshold (rendezvous
// protocol) begins transferring only once it is matched AND both endpoint
// processes are "driving progress", i.e. blocked inside an MPI call (or
// served by an asynchronous progress thread, the ablation the paper
// proposes for MPI libraries). Sub-threshold (eager) messages leave the
// sender immediately.
//
// Transfers are fluid flows over the network model, so messages sharing
// NICs or torus links contend for bandwidth.
package simmpi

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/netmodel"
)

// World owns the simulated MPI state: processes, matching queues, barriers.
type World struct {
	sim *des.Sim
	sys *fluid.System
	net *netmodel.Network

	eager      float64
	latencyFor func(src, dst int) ([]*fluid.Resource, float64)

	procs []*Process

	sendQ map[chanKey][]*message
	recvQ map[chanKey][]*message

	barrierCount int
	barrierSig   *des.Signal
	barrierCost  float64
}

type chanKey struct{ src, dst, tag int }

// Config parameterizes the world.
type Config struct {
	// EagerThreshold in bytes; messages strictly below it use the eager
	// protocol.
	EagerThreshold float64
	// BarrierLatency is the cost of one barrier round; the full barrier
	// costs BarrierLatency × ⌈log₂(P)⌉.
	BarrierLatency float64
	// RendezvousLatency is the extra handshake delay before a rendezvous
	// transfer starts.
	RendezvousLatency float64
}

// NewWorld creates the MPI world for `ranks` processes over the network.
// nodeOf maps each rank to its node.
func NewWorld(sim *des.Sim, sys *fluid.System, net *netmodel.Network, nodeOf []int, cfg Config) *World {
	w := &World{
		sim:   sim,
		sys:   sys,
		net:   net,
		eager: cfg.EagerThreshold,
		sendQ: make(map[chanKey][]*message),
		recvQ: make(map[chanKey][]*message),
	}
	p := len(nodeOf)
	w.barrierCost = cfg.BarrierLatency * math.Ceil(math.Log2(float64(max(p, 2))))
	w.procs = make([]*Process, p)
	for r, node := range nodeOf {
		w.procs[r] = &Process{w: w, rank: r, node: node, rdvLatency: cfg.RendezvousLatency}
	}
	return w
}

// Proc returns the process handle of a rank.
func (w *World) Proc(rank int) *Process { return w.procs[rank] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// Process is one simulated MPI process.
type Process struct {
	w          *World
	rank, node int
	rdvLatency float64

	// inMPI counts nested MPI calls; the process drives progress while > 0.
	inMPI int
	// AsyncProgress marks an MPI library with a working progress thread:
	// rendezvous transfers start without the process being inside MPI.
	// The paper's outlook proposes exactly this; it is exposed for the
	// ablation benchmark.
	AsyncProgress bool

	// stalled lists matched rendezvous messages waiting for this endpoint
	// to drive progress.
	stalled []*message
}

// Rank returns the process rank.
func (p *Process) Rank() int { return p.rank }

// Node returns the node hosting the process.
func (p *Process) Node() int { return p.node }

func (p *Process) driving() bool { return p.inMPI > 0 || p.AsyncProgress }

// message is one in-flight point-to-point message.
type message struct {
	src, dst int
	tag      int
	bytes    float64
	eager    bool

	matched bool
	started bool

	// done fires when the payload has fully arrived.
	done *des.Signal
	// sendDone fires when the sender's request completes: immediately for
	// eager (buffered) sends, at transfer completion for rendezvous.
	sendDone *des.Signal
}

// Request is a nonblocking operation handle.
type Request struct {
	msg    *message
	isSend bool
}

func (r *Request) signal() *des.Signal {
	if r.isSend {
		return r.msg.sendDone
	}
	return r.msg.done
}

// Isend posts a nonblocking send of `bytes` to rank dst.
func (p *Process) Isend(dst, tag int, bytes float64) *Request {
	if dst < 0 || dst >= len(p.w.procs) {
		panic(fmt.Sprintf("simmpi: Isend to rank %d of %d", dst, len(p.w.procs)))
	}
	m := &message{
		src: p.rank, dst: dst, tag: tag, bytes: bytes,
		eager:    bytes < p.w.eager,
		done:     p.w.sim.NewSignal(),
		sendDone: p.w.sim.NewSignal(),
	}
	if m.eager {
		// Buffered: the send request completes immediately, and the wire
		// transfer starts now regardless of matching or progress.
		m.sendDone.Fire()
		m.started = true
		p.w.launch(m)
	}
	k := chanKey{m.src, m.dst, tag}
	if q := p.w.recvQ[k]; len(q) > 0 {
		rcv := q[0]
		p.w.recvQ[k] = q[1:]
		p.w.match(m, rcv)
	} else {
		p.w.sendQ[k] = append(p.w.sendQ[k], m)
	}
	return &Request{msg: m, isSend: true}
}

// Irecv posts a nonblocking receive from rank src.
func (p *Process) Irecv(src, tag int) *Request {
	if src < 0 || src >= len(p.w.procs) {
		panic(fmt.Sprintf("simmpi: Irecv from rank %d of %d", src, len(p.w.procs)))
	}
	k := chanKey{src, p.rank, tag}
	if q := p.w.sendQ[k]; len(q) > 0 {
		m := q[0]
		p.w.sendQ[k] = q[1:]
		p.w.match(m, nil)
		return &Request{msg: m}
	}
	m := &message{
		src: src, dst: p.rank, tag: tag,
		done:     p.w.sim.NewSignal(),
		sendDone: p.w.sim.NewSignal(),
	}
	p.w.recvQ[k] = append(p.w.recvQ[k], m)
	return &Request{msg: m}
}

// match joins a posted send with a posted receive. rcv is nil when the
// receive is being posted right now (the send message carries the state);
// otherwise the receive placeholder's waiters are transferred.
func (w *World) match(snd *message, rcv *message) {
	snd.matched = true
	if rcv != nil {
		// The receive was posted first as a placeholder with its own done
		// signal; chain it: when the send completes, fire the placeholder.
		rcvSig := rcv.done
		if snd.done.Fired() {
			rcvSig.Fire()
		} else {
			w.chain(snd.done, rcvSig)
		}
		rcv.matched = true
		// Waiters of the placeholder follow rcvSig; replace the message
		// state so tryStart sees one canonical message.
		*rcv = *snd
		rcv.done = rcvSig
	}
	w.tryStart(snd)
}

// chain fires `to` when `from` fires.
func (w *World) chain(from, to *des.Signal) {
	w.sim.Spawn("sig-chain", func(p *des.Proc) {
		p.Wait(from)
		to.Fire()
	})
}

// tryStart launches a matched rendezvous transfer if both endpoints drive
// progress; otherwise it parks the message on both endpoints' stall lists.
func (w *World) tryStart(m *message) {
	if m.started || !m.matched {
		return
	}
	src, dst := w.procs[m.src], w.procs[m.dst]
	if !src.driving() || !dst.driving() {
		src.stalled = append(src.stalled, m)
		dst.stalled = append(dst.stalled, m)
		return
	}
	m.started = true
	w.sim.After(src.rdvLatency, func() { w.launch(m) })
}

// launch places the message payload on the network as a fluid flow.
func (w *World) launch(m *message) {
	path, lat := w.net.Path(w.procs[m.src].node, w.procs[m.dst].node)
	w.sim.After(lat, func() {
		flow := w.sys.Start(m.bytes, path...)
		w.chainFlow(flow, m)
	})
}

func (w *World) chainFlow(flow *fluid.Flow, m *message) {
	w.sim.Spawn("xfer-done", func(p *des.Proc) {
		p.Wait(flow.Done)
		m.done.Fire()
		if !m.eager {
			m.sendDone.Fire()
		}
	})
}

// enterMPI marks the process as driving progress and kicks stalled
// transfers.
func (p *Process) enterMPI() {
	p.inMPI++
	if p.inMPI == 1 {
		p.kickStalled()
	}
}

func (p *Process) kickStalled() {
	stalled := p.stalled
	p.stalled = nil
	for _, m := range stalled {
		p.w.tryStart(m)
	}
}

func (p *Process) exitMPI() { p.inMPI-- }

// Waitall blocks the calling proc inside MPI until every request completes.
// While blocked, the process drives progress — this is what makes the
// paper's task mode work: the communication thread sits in Waitall for the
// whole compute phase.
func (p *Process) Waitall(proc *des.Proc, reqs ...*Request) {
	p.enterMPI()
	for _, r := range reqs {
		proc.Wait(r.signal())
	}
	p.exitMPI()
}

// Barrier synchronizes all ranks; the last arrival releases everyone after
// a log₂(P)-scaled latency. Processes drive progress while waiting.
func (p *Process) Barrier(proc *des.Proc) {
	w := p.w
	p.enterMPI()
	if w.barrierSig == nil {
		w.barrierSig = w.sim.NewSignal()
	}
	w.barrierCount++
	sig := w.barrierSig
	if w.barrierCount == len(w.procs) {
		w.barrierCount = 0
		w.barrierSig = nil
		w.sim.After(w.barrierCost, sig.Fire)
	}
	proc.Wait(sig)
	p.exitMPI()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
