package tcpmpi_test

// End-to-end slow-peer suspicion over real loopback TCP: a rank that is
// alive — its process responsive, its connection healthy — but whose
// collective contributions suddenly crawl is the gray failure the paper's
// §3 is about. These tests pin both policies: FailOnSlow (the world fails
// with a phase-"slow" PeerError, so a supervisor restarts) and advisory
// (the OnSlow hook observes the degradation while the world rides it out).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tcpmpi"
)

// dialPairWith brings up a 2-process world on loopback from the two given
// transports (tr0 coordinates; addresses are wired here).
func dialPairWith(t *testing.T, tr0, tr1 *tcpmpi.Transport) (w0, w1 core.World) {
	t.Helper()
	addr := freeAddr(t)
	tr0.Addr, tr0.Coordinate, tr0.RankLo, tr0.RankHi = addr, true, 0, 1
	tr1.Addr, tr1.RankLo, tr1.RankHi = addr, 1, 2
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	var wg sync.WaitGroup
	var e0, e1 error
	wg.Add(2)
	go func() { defer wg.Done(); w0, e0 = tr0.Dial(ctx, 2) }()
	go func() { defer wg.Done(); w1, e1 = tr1.Dial(ctx, 2) }()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("dial: %v / %v", e0, e1)
	}
	t.Cleanup(func() { w0.Close(); w1.Close() })
	return w0, w1
}

// runRank1Barriers drives rank 1 through barriers until its world dies or
// rounds are exhausted, sleeping stallFor before round stallAt — the
// injected gray failure: the rank is alive the whole time, just late.
func runRank1Barriers(t *testing.T, w1 core.World, rounds, stallAt int, stallFor time.Duration) *sync.WaitGroup {
	t.Helper()
	c1, err := w1.Comm(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if i == stallAt {
				time.Sleep(stallFor)
			}
			if err := c1.Barrier(); err != nil {
				return
			}
		}
	}()
	return &wg
}

// TestSlowPeerSuspicionFailsWorld pins the restart policy: with
// FailOnSlow, a collective edge whose wait leaps past SlowFactor × its
// own EWMA fails the world with a *core.PeerError in phase "slow" naming
// the degraded rank — recoverable, so a core.Supervisor would redial.
func TestSlowPeerSuspicionFailsWorld(t *testing.T) {
	tr0 := &tcpmpi.Transport{
		SlowFactor:     4,
		SlowFloor:      50 * time.Millisecond,
		SlowMinSamples: 4,
		FailOnSlow:     true,
	}
	w0, w1 := dialPairWith(t, tr0, &tcpmpi.Transport{})
	wg := runRank1Barriers(t, w1, 1000, 10, 400*time.Millisecond)
	defer wg.Wait()

	c0, err := w0.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	var barrierErr error
	for i := 0; i < 1000; i++ {
		if barrierErr = c0.Barrier(); barrierErr != nil {
			break
		}
	}
	var pe *core.PeerError
	if !errors.As(barrierErr, &pe) {
		t.Fatalf("barriers against a crawling peer ended with %v, want a *core.PeerError cause", barrierErr)
	}
	if pe.Phase != core.PhaseSlow || pe.RankLo != 1 {
		t.Fatalf("suspect = rank %d phase %q, want rank 1 phase %q (alive but degraded)", pe.RankLo, pe.Phase, core.PhaseSlow)
	}
	if !core.Recoverable(barrierErr) {
		t.Fatal("a slow-peer failure must be supervisor-recoverable (restart on a fresh world)")
	}
}

// TestSlowPeerAdvisoryHook pins the ride-it-out policy: without
// FailOnSlow the same degradation is reported through OnSlow — once per
// episode — while the world keeps completing collectives.
func TestSlowPeerAdvisoryHook(t *testing.T) {
	const rounds = 30
	var mu sync.Mutex
	var reports []*core.PeerError
	tr0 := &tcpmpi.Transport{
		SlowFactor:     4,
		SlowFloor:      50 * time.Millisecond,
		SlowMinSamples: 4,
		OnSlow: func(pe *core.PeerError) {
			mu.Lock()
			reports = append(reports, pe)
			mu.Unlock()
		},
	}
	w0, w1 := dialPairWith(t, tr0, &tcpmpi.Transport{})
	wg := runRank1Barriers(t, w1, rounds, 10, 400*time.Millisecond)

	c0, err := w0.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := c0.Barrier(); err != nil {
			t.Fatalf("advisory mode failed the world at round %d: %v", i, err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("the degraded round raised no OnSlow report")
	}
	for _, pe := range reports {
		if pe.Phase != core.PhaseSlow || pe.RankLo != 1 {
			t.Fatalf("report = rank %d phase %q, want rank 1 phase %q", pe.RankLo, pe.Phase, core.PhaseSlow)
		}
	}
}
