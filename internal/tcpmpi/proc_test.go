package tcpmpi_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/solver"
	"repro/internal/tcpmpi"
)

// The acceptance test of the multi-process transport: a DistCG solve over
// tcpmpi with TWO REAL OS PROCESSES on loopback, each owning half the
// ranks, bit-identical to the all-local chan-transport solve. The second
// process is this test binary re-executed with TCPMPI_HELPER set (the
// standard helper-process pattern), so `go test ./...` covers the OS
// process boundary hermetically; the CI smoke job additionally drives the
// cmd/spmv-worker binary through examples/tcp.

const (
	procN     = 160
	procSeed  = 424242
	procRanks = 4
	procTol   = 1e-10
	procIters = 2000
)

// procPlan rebuilds the deterministic SPD fixture; every process derives
// the identical plan from the shared constants, as real workers would
// from shared flags.
func procPlan(tb testing.TB) (*matrix.CSR, *core.Plan) {
	tb.Helper()
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: procN, Bandwidth: procN / 4, PerRow: 5, Seed: procSeed, Symmetric: true, SPD: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	a := matrix.Materialize(g)
	plan, err := core.BuildPlan(a, core.PartitionByNnz(a, procRanks), true)
	if err != nil {
		tb.Fatal(err)
	}
	return a, plan
}

func procRHS(a *matrix.CSR) []float64 {
	xTrue := make([]float64, procN)
	for i := range xTrue {
		xTrue[i] = float64((i*11)%17) / 17
	}
	b := make([]float64, procN)
	a.MulVec(b, xTrue)
	return b
}

// solveAndVerify joins the world as ranks [lo,hi), runs DistCG over
// tcpmpi, and checks this process's solution rows bit-exactly against an
// in-process all-local reference solve.
func solveAndVerify(tb testing.TB, addr string, coordinate bool, lo, hi int) solver.CGResult {
	tb.Helper()
	a, plan := procPlan(tb)
	b := procRHS(a)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl, err := core.NewCluster(plan,
		core.WithThreads(2),
		core.WithMode(core.TaskMode),
		core.WithTransport(&tcpmpi.Transport{Addr: addr, Coordinate: coordinate, RankLo: lo, RankHi: hi}),
		core.WithDialContext(ctx))
	if err != nil {
		tb.Fatalf("joining world: %v", err)
	}
	defer cl.Close()
	x := make([]float64, procN)
	res, err := solver.DistCG(cl, b, x, procTol, procIters)
	if err != nil {
		tb.Fatalf("DistCG over tcpmpi: %v", err)
	}
	if !res.Converged {
		tb.Fatalf("DistCG did not converge (residual %g)", res.Residual)
	}

	// In-process reference on the default chan transport.
	_, refPlan := procPlan(tb)
	refCl, err := core.NewCluster(refPlan, core.WithThreads(2), core.WithMode(core.TaskMode))
	if err != nil {
		tb.Fatal(err)
	}
	defer refCl.Close()
	xRef := make([]float64, procN)
	resRef, err := solver.DistCG(refCl, b, xRef, procTol, procIters)
	if err != nil {
		tb.Fatal(err)
	}
	if res.Iterations != resRef.Iterations || res.Residual != resRef.Residual {
		tb.Fatalf("iteration trace differs: tcp (%d, %v) vs chan (%d, %v)",
			res.Iterations, res.Residual, resRef.Iterations, resRef.Residual)
	}
	for _, r := range cl.LocalRanks() {
		rg := cl.Plan().Ranks[r].Rows
		for row := rg.Lo; row < rg.Hi; row++ {
			if x[row] != xRef[row] {
				tb.Fatalf("row %d: tcp %v != chan %v", row, x[row], xRef[row])
			}
		}
	}
	return res
}

// TestHelperWorkerProcess is not a test: it is the worker half of
// TestTwoProcessDistCGBitIdentical, run in a child OS process.
func TestHelperWorkerProcess(t *testing.T) {
	addr := os.Getenv("TCPMPI_HELPER")
	if addr == "" {
		t.Skip("helper half of TestTwoProcessDistCGBitIdentical")
	}
	res := solveAndVerify(t, addr, false, procRanks/2, procRanks)
	fmt.Printf("HELPER-OK iterations=%d\n", res.Iterations)
}

func TestTwoProcessDistCGBitIdentical(t *testing.T) {
	addr := freeAddr(t)
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorkerProcess$", "-test.v", "-test.timeout=120s")
	cmd.Env = append(os.Environ(), "TCPMPI_HELPER="+addr)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker process: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()

	// This process coordinates and drives the first half of the ranks.
	res := solveAndVerify(t, addr, true, 0, procRanks/2)

	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("worker process failed: %v\n%s", err, out.String())
		}
	case <-time.After(90 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("worker process hung\n%s", out.String())
	}
	if !strings.Contains(out.String(), "HELPER-OK") {
		t.Fatalf("worker process did not verify its half\n%s", out.String())
	}
	if want := fmt.Sprintf("iterations=%d", res.Iterations); !strings.Contains(out.String(), want) {
		t.Fatalf("worker converged differently (coordinator: %d iterations)\n%s", res.Iterations, out.String())
	}
}
