package tcpmpi

// In-package tests of the slow-peer machinery: the EWMA fold, the
// suspicion threshold + debounce, the fail-vs-advise policy split, and —
// because the RTT counters are internal — the kindPing→kindPong echo
// producing round-trip samples on a real loopback world.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestLatEwmaObserve(t *testing.T) {
	var e latEwma
	prev, n := e.observe(10 * time.Millisecond)
	if prev != 0 || n != 0 {
		t.Fatalf("first observe returned prev=%v n=%d, want 0, 0", prev, n)
	}
	prev, n = e.observe(10 * time.Millisecond)
	if prev != 10*time.Millisecond || n != 1 {
		t.Fatalf("second observe returned prev=%v n=%d, want 10ms, 1", prev, n)
	}
	// A single outlier moves the average by at most alpha of the gap.
	prev, _ = e.observe(110 * time.Millisecond)
	if prev != 10*time.Millisecond {
		t.Fatalf("third observe returned prev=%v, want the pre-outlier 10ms", prev)
	}
	prev, _ = e.observe(0)
	want := time.Duration(ewmaAlpha*float64(110*time.Millisecond) + (1-ewmaAlpha)*float64(10*time.Millisecond))
	if prev != want {
		t.Fatalf("EWMA after outlier = %v, want %v", prev, want)
	}
}

// slowTestWorld builds the minimal world state noteSlow and
// observeLinkLatency need: two processes, no connections.
func slowTestWorld(sc slowConfig) *world {
	return &world{
		procs:       []procInfo{{RankLo: 0, RankHi: 1}, {RankLo: 1, RankHi: 2}},
		slow:        sc,
		slowSuspect: make([]atomic.Bool, 2),
		failure:     &failure{ch: make(chan struct{})},
	}
}

func TestSlowSuspicionThresholdAndDebounce(t *testing.T) {
	var calls []*core.PeerError
	w := slowTestWorld(slowConfig{
		factor:     3,
		floor:      10 * time.Millisecond,
		minSamples: 3,
		onSlow:     func(pe *core.PeerError) { calls = append(calls, pe) },
	})
	var e latEwma
	feed := func(d time.Duration) { w.observeLinkLatency(1, 1, 2, "test link", &e, d) }

	// Warm-up: below minSamples nothing can trip, and healthy samples
	// below the floor never do.
	for i := 0; i < 4; i++ {
		feed(time.Millisecond)
	}
	if len(calls) != 0 {
		t.Fatalf("warm-up raised %d suspicions", len(calls))
	}
	// 50ms against a ~1ms baseline: suspect, reported once.
	feed(50 * time.Millisecond)
	if len(calls) != 1 {
		t.Fatalf("degraded sample raised %d suspicions, want 1", len(calls))
	}
	pe := calls[0]
	if pe.Phase != core.PhaseSlow || pe.RankLo != 1 || pe.RankHi != 2 {
		t.Fatalf("suspicion = phase %q ranks [%d,%d), want slow [1,2)", pe.Phase, pe.RankLo, pe.RankHi)
	}
	// Still degraded: debounced, not re-reported.
	feed(50 * time.Millisecond)
	if len(calls) != 1 {
		t.Fatalf("sustained degradation re-reported (got %d calls)", len(calls))
	}
	// Recovery clears the episode; a fresh degradation reports again.
	feed(time.Millisecond)
	feed(300 * time.Millisecond)
	if len(calls) != 2 {
		t.Fatalf("re-degradation after recovery raised %d total suspicions, want 2", len(calls))
	}
	if w.failure.Err() != nil {
		t.Fatalf("advisory policy failed the world: %v", w.failure.Err())
	}
}

func TestSlowSuspicionFailOnSlow(t *testing.T) {
	w := slowTestWorld(slowConfig{factor: 3, floor: 10 * time.Millisecond, minSamples: 2, failOnSlow: true})
	var e latEwma
	for i := 0; i < 3; i++ {
		w.observeLinkLatency(1, 1, 2, "test link", &e, time.Millisecond)
	}
	w.observeLinkLatency(1, 1, 2, "test link", &e, 100*time.Millisecond)
	err := w.failure.Err()
	var pe *core.PeerError
	if !errors.As(err, &pe) || pe.Phase != core.PhaseSlow {
		t.Fatalf("FailOnSlow left the world with %v, want a phase-slow *core.PeerError", err)
	}
}

// TestPingPongRoundTripSamples pins the echo protocol end-to-end: on an
// idle heartbeat-enabled loopback world, every ping comes back as a pong
// and the link accumulates round-trip EWMA samples — the signal the RTT
// half of slow-peer suspicion feeds on.
func TestPingPongRoundTripSamples(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	mk := func(coord bool, lo, hi int) *Transport {
		return &Transport{
			Addr: addr, Coordinate: coord, RankLo: lo, RankHi: hi,
			HeartbeatInterval: 5 * time.Millisecond,
			HeartbeatTimeout:  2 * time.Second,
		}
	}
	var wg sync.WaitGroup
	worlds := make([]core.World, 2)
	errs := make([]error, 2)
	trs := []*Transport{mk(true, 0, 1), mk(false, 1, 2)}
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *Transport) {
			defer wg.Done()
			worlds[i], errs[i] = tr.Dial(ctx, 2)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	defer worlds[0].Close()
	defer worlds[1].Close()

	// Idle: only heartbeat traffic. Wait for round-trip samples to land.
	w0 := worlds[0].(*world)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var samples int64
		for _, p := range w0.conns {
			if p != nil {
				samples += p.rtt.count.Load()
			}
		}
		if samples >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ping round-trip samples after %d heartbeat intervals", 5*int(time.Second/(5*time.Millisecond)))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w0.failure.Err(); err != nil {
		t.Fatalf("idle heartbeat world failed: %v", err)
	}
}
