package tcpmpi

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// The collectives run on a static binary tree over ranks (children of r
// are 2r+1 and 2r+2), using internal kindColl frames so they can never
// collide with user tags. Each collective is gather + transform +
// broadcast:
//
//  1. every rank sends its subtree's vectors — its own followed by its
//     children's subtrees, i.e. the subtree's depth-first enumeration —
//     up to its parent (tagGather);
//  2. root 0, holding every rank's vector, applies the transform;
//  3. the result travels back down the tree (tagBcast).
//
// The gather preserves per-rank vectors instead of combining en route, so
// the root can combine in canonical rank order 0 ⊕ 1 ⊕ … ⊕ size-1 — the
// exact floating-point sequence the in-process chanmpi runtime uses. That
// is what makes whole solves bit-identical across transports. Ranks
// participate in collectives in one global order (an SPMD requirement, as
// in MPI), so the per-(src,tag) FIFO matching keeps successive rounds
// separated.
//
// Everything a round needs is resident on the communicator and reused
// across rounds (collectives on one rank are never concurrent), mirroring
// the in-process reducer's resident collection buffers: the gather
// payload, the child receive buffers, the result, the root's rank-indexed
// vector table and the int64 conversion scratch — and the receives
// themselves, which run over one persistent channel per static tree edge
// (parent and children never change), restarted with the round's buffer.
// A steady-state round therefore allocates nothing. The returned slices
// stay valid only until the rank's next collective.
const (
	tagGather = 0
	tagBcast  = 1
)

// collScratch is a communicator's resident collective workspace.
type collScratch struct {
	payload  []float64    // own + child subtree vectors, DFS order
	child    [2][]float64 // per-child gather receive buffers
	res      []float64    // transform output / broadcast receive buffer
	vecs     [][]float64  // root only: rank-indexed views into payload
	gathered []int64      // AllgatherInt64 conversion output

	// Persistent receive channels on the static tree edges, created on
	// first use: one per child for the gather, one toward the parent for
	// the broadcast.
	gatherRecv [2]*precv
	bcastRecv  *precv

	// deadline is the resident timer of the optional per-collective
	// deadline (Transport.CollectiveTimeout), created on first use and
	// Reset per edge wait — Go's post-1.23 timer semantics guarantee a
	// Reset discards any stale fire, so no drain dance is needed and the
	// steady-state wait allocates nothing.
	deadline *time.Timer
}

// grow returns buf resized to n elements, reallocating only on capacity
// growth — the steady-state rounds of a solver reuse the same backing
// arrays forever.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// recvExact receives a collective payload of exactly want elements from
// src into buf (grown as needed) over the resident persistent channel in
// *slot (created on first use — the tree edges are static, so the channel
// is restarted forever after); any other length is a protocol-level
// mismatch that fails the world. With Transport.CollectiveTimeout set,
// the wait is bounded: a tree edge that stays silent past the deadline
// fails the world with a *core.PeerError naming src as the hung rank —
// the detection path for a peer that is alive (its connection pings) but
// stuck outside the collective. With Transport.SlowFactor set, each
// edge's wait duration feeds the channel's latency EWMA: a rank whose
// contribution is suddenly far later than its own history is suspected
// SLOW (phase "slow") long before any absolute deadline would fire.
func (c *comm) recvExact(slot **precv, src, tag, want int, buf []float64) ([]float64, error) {
	buf = grow(buf, want)
	if *slot == nil {
		*slot = c.newPrecv(src, tag, true)
	}
	p := *slot
	if err := p.startInto(buf[:want]); err != nil {
		return buf, err
	}
	var waitStart time.Time
	if c.w.slow.enabled() {
		waitStart = time.Now()
	}
	if d := c.w.collTimeout; d > 0 {
		cs := &c.cs
		if cs.deadline == nil {
			cs.deadline = time.NewTimer(d)
		} else {
			cs.deadline.Reset(d)
		}
		err, timedOut := p.req.waitTimer(cs.deadline.C)
		if timedOut {
			err = &core.PeerError{
				RankLo: src, RankHi: src + 1, Phase: core.PhaseCollective,
				Err: fmt.Errorf("tcpmpi: no contribution on tree edge %d→%d within %v", src, c.rank, d),
			}
			c.w.failWorld(err)
			return buf, err
		}
		cs.deadline.Stop()
		if err != nil {
			return buf, err
		}
	} else if err := p.Wait(); err != nil {
		return buf, err
	}
	if c.w.slow.enabled() {
		c.w.observeLinkLatency(c.w.rankProc[src], src, src+1, "collective edge", &p.lat, time.Since(waitStart))
	}
	if p.req.n != want {
		err := &core.MismatchError{Got: p.req.n, Want: want}
		c.w.failWorld(err)
		return buf, err
	}
	return buf, nil
}

// gatherTransformBcast runs one tree collective for local rank `rank`:
// contribute the ln-element vector in, let root transform the full
// per-rank set (indexed by rank) into an out vector of resLen elements,
// and return the result every rank receives. Ranks must agree on ln and
// resLen per round; a disagreement surfaces as a *core.MismatchError (or a
// truncation) and fails the world rather than wedging the tree. The
// returned slice aliases the communicator's resident scratch: read-only,
// valid until the rank's next collective.
func (c *comm) gatherTransformBcast(in []float64, resLen int, transform func(vecs [][]float64, out []float64) error) ([]float64, error) {
	w, rank, cs := c.w, c.rank, &c.cs
	if err := w.failure.Err(); err != nil {
		return nil, &core.WorldError{Cause: err}
	}
	ln := len(in)
	size := w.size

	// Gather: own vector first, then each child subtree's DFS payload.
	cs.payload = grow(cs.payload, w.subSize[rank]*ln)[:0]
	cs.payload = append(cs.payload, in...)
	for ci, child := range [2]int{2*rank + 1, 2*rank + 2} {
		if child >= size {
			continue
		}
		sub, err := c.recvExact(&cs.gatherRecv[ci], child, tagGather, w.subSize[child]*ln, cs.child[ci])
		cs.child[ci] = sub
		if err != nil {
			return nil, err
		}
		cs.payload = append(cs.payload, sub...)
	}

	cs.res = grow(cs.res, resLen)
	if rank != 0 {
		if err := w.send(rank, (rank-1)/2, tagGather, true, cs.payload, nil); err != nil {
			return nil, err
		}
		res, err := c.recvExact(&cs.bcastRecv, (rank-1)/2, tagBcast, resLen, cs.res)
		cs.res = res
		if err != nil {
			return nil, err
		}
		for _, child := range [2]int{2*rank + 1, 2*rank + 2} {
			if child < size {
				if err := w.send(rank, child, tagBcast, true, res, nil); err != nil {
					return nil, err
				}
			}
		}
		return res, nil
	}

	// Root: reorder the depth-first payload into rank-indexed vectors.
	if cap(cs.vecs) < size {
		cs.vecs = make([][]float64, size)
	}
	vecs := cs.vecs[:size]
	for i, r := range w.dfsOrder {
		vecs[r] = cs.payload[i*ln : (i+1)*ln]
	}
	if err := transform(vecs, cs.res); err != nil {
		w.failWorld(err)
		return nil, err
	}
	for _, child := range [2]int{1, 2} {
		if child < size {
			if err := w.send(rank, child, tagBcast, true, cs.res, nil); err != nil {
				return nil, err
			}
		}
	}
	return cs.res, nil
}

// Barrier is the empty-payload tree collective: it completes only after
// every rank's (empty) contribution has reached the root and the (empty)
// release has travelled back down.
func (c *comm) Barrier() error {
	_, err := c.gatherTransformBcast(nil, 0, func([][]float64, []float64) error {
		return nil
	})
	return err
}

// Allreduce combines in-vectors elementwise across all ranks. The root
// combines in canonical rank order with the shared ReduceOp.Combine table,
// so results are bit-identical to the in-process runtime's. The returned
// slice is the communicator's resident result buffer: read-only, valid
// until this rank's next collective.
func (c *comm) Allreduce(op core.ReduceOp, in []float64) ([]float64, error) {
	return c.gatherTransformBcast(in, len(in), func(vecs [][]float64, out []float64) error {
		copy(out, vecs[0])
		for q := 1; q < len(vecs); q++ {
			for i, v := range vecs[q] {
				out[i] = op.Combine(out[i], v)
			}
		}
		return nil
	})
}

// AllreduceScalar combines a single value across all ranks, contributing
// through the communicator's resident one-element buffer.
func (c *comm) AllreduceScalar(op core.ReduceOp, v float64) (float64, error) {
	c.scalarBuf[0] = v
	res, err := c.Allreduce(op, c.scalarBuf[:])
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// AllgatherInt64 gathers one int64 from every rank, indexed by rank. The
// values ride the float64 frames bit-cast (exact for the full int64
// range), and the root's transform is pure placement — no arithmetic — so
// the round trip is lossless. The returned slice is resident scratch:
// read-only, valid until the rank's next collective.
func (c *comm) AllgatherInt64(v int64) ([]int64, error) {
	c.scalarBuf[0] = math.Float64frombits(uint64(v))
	res, err := c.gatherTransformBcast(c.scalarBuf[:], c.w.size,
		func(vecs [][]float64, out []float64) error {
			for r, vec := range vecs {
				out[r] = vec[0]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	cs := &c.cs
	if cap(cs.gathered) < len(res) {
		cs.gathered = make([]int64, len(res))
	}
	out := cs.gathered[:len(res)]
	for i, f := range res {
		out[i] = int64(math.Float64bits(f))
	}
	return out, nil
}
