package tcpmpi

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// The collectives run on a static binary tree over ranks (children of r
// are 2r+1 and 2r+2), using internal kindColl frames so they can never
// collide with user tags. Each collective is gather + transform +
// broadcast:
//
//  1. every rank sends its subtree's vectors — its own followed by its
//     children's subtrees, i.e. the subtree's depth-first enumeration —
//     up to its parent (tagGather);
//  2. root 0, holding every rank's vector, applies the transform;
//  3. the result travels back down the tree (tagBcast).
//
// The gather preserves per-rank vectors instead of combining en route, so
// the root can combine in canonical rank order 0 ⊕ 1 ⊕ … ⊕ size-1 — the
// exact floating-point sequence the in-process chanmpi runtime uses. That
// is what makes whole solves bit-identical across transports. Ranks
// participate in collectives in one global order (an SPMD requirement, as
// in MPI), so the per-(src,tag) FIFO matching keeps successive rounds
// separated.
const (
	tagGather = 0
	tagBcast  = 1
)

// recvExact receives a collective payload of exactly want elements from
// src; any other length is a protocol-level mismatch that fails the world.
func (w *world) recvExact(rank, src, tag, want int) ([]float64, error) {
	buf := make([]float64, want)
	req, err := w.post(rank, src, tag, true, buf)
	if err != nil {
		return nil, err
	}
	if err := req.Wait(); err != nil {
		return nil, err
	}
	if req.n != want {
		err := &core.MismatchError{Got: req.n, Want: want}
		w.failWorld(err)
		return nil, err
	}
	return buf, nil
}

// gatherTransformBcast runs one tree collective for local rank `rank`:
// contribute the ln-element vector in, let root transform the full
// per-rank set (indexed by rank), and return the resLen-element result
// every rank receives. Ranks must agree on ln and resLen per round; a
// disagreement surfaces as a *core.MismatchError (or a truncation) and
// fails the world rather than wedging the tree.
func (w *world) gatherTransformBcast(rank int, in []float64, resLen int, transform func(vecs [][]float64) ([]float64, error)) ([]float64, error) {
	if err := w.failure.Err(); err != nil {
		return nil, &core.WorldError{Cause: err}
	}
	ln := len(in)
	size := w.size

	// Gather: own vector first, then each child subtree's DFS payload.
	payload := make([]float64, 0, w.subSize[rank]*ln)
	payload = append(payload, in...)
	for _, child := range []int{2*rank + 1, 2*rank + 2} {
		if child >= size {
			continue
		}
		sub, err := w.recvExact(rank, child, tagGather, w.subSize[child]*ln)
		if err != nil {
			return nil, err
		}
		payload = append(payload, sub...)
	}

	if rank != 0 {
		if err := w.send(rank, (rank-1)/2, tagGather, true, payload); err != nil {
			return nil, err
		}
		res, err := w.recvExact(rank, (rank-1)/2, tagBcast, resLen)
		if err != nil {
			return nil, err
		}
		for _, child := range []int{2*rank + 1, 2*rank + 2} {
			if child < size {
				if err := w.send(rank, child, tagBcast, true, res); err != nil {
					return nil, err
				}
			}
		}
		return res, nil
	}

	// Root: reorder the depth-first payload into rank-indexed vectors.
	vecs := make([][]float64, size)
	for i, r := range w.dfsOrder {
		vecs[r] = payload[i*ln : (i+1)*ln]
	}
	res, err := transform(vecs)
	if err != nil {
		w.failWorld(err)
		return nil, err
	}
	if len(res) != resLen {
		err := fmt.Errorf("tcpmpi: collective transform produced %d elements, want %d", len(res), resLen)
		w.failWorld(err)
		return nil, err
	}
	for _, child := range []int{1, 2} {
		if child < size {
			if err := w.send(rank, child, tagBcast, true, res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// Barrier is the empty-payload tree collective: it completes only after
// every rank's (empty) contribution has reached the root and the (empty)
// release has travelled back down.
func (c *comm) Barrier() error {
	_, err := c.w.gatherTransformBcast(c.rank, nil, 0, func([][]float64) ([]float64, error) {
		return nil, nil
	})
	return err
}

// Allreduce combines in-vectors elementwise across all ranks. The root
// combines in canonical rank order with the shared ReduceOp.Combine
// table, so results are bit-identical to the in-process runtime's. The
// returned slice is freshly allocated per rank.
func (c *comm) Allreduce(op core.ReduceOp, in []float64) ([]float64, error) {
	return c.w.gatherTransformBcast(c.rank, in, len(in), func(vecs [][]float64) ([]float64, error) {
		acc := append([]float64(nil), vecs[0]...)
		for q := 1; q < len(vecs); q++ {
			for i, v := range vecs[q] {
				acc[i] = op.Combine(acc[i], v)
			}
		}
		return acc, nil
	})
}

// AllreduceScalar combines a single value across all ranks.
func (c *comm) AllreduceScalar(op core.ReduceOp, v float64) (float64, error) {
	res, err := c.Allreduce(op, []float64{v})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// AllgatherInt64 gathers one int64 from every rank, indexed by rank. The
// values ride the float64 frames bit-cast (exact for the full int64
// range), and the root's transform is pure placement — no arithmetic —
// so the round trip is lossless.
func (c *comm) AllgatherInt64(v int64) ([]int64, error) {
	res, err := c.w.gatherTransformBcast(c.rank, []float64{math.Float64frombits(uint64(v))}, c.w.size,
		func(vecs [][]float64) ([]float64, error) {
			out := make([]float64, len(vecs))
			for r, vec := range vecs {
				out[r] = vec[0]
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(res))
	for i, f := range res {
		out[i] = int64(math.Float64bits(f))
	}
	return out, nil
}
