// Package tcpmpi is the multi-process TCP backend of the core.Comm
// transport contract: several OS processes, each owning a contiguous rank
// range, rendezvous at a coordinator address and assemble one
// message-passing world over length-prefixed binary frames. Point-to-point
// traffic is tag-matched per (source, tag) in posting order — the same
// discipline as the in-process chanmpi runtime — and the collectives run
// on a binary tree with canonical rank-order combining, so distributed
// solves are bit-identical to their in-process counterparts.
//
// Bring-up: the coordinator process listens on Addr; every worker process
// dials it and announces its rank range, the coordinator validates that
// the ranges tile [0, size), broadcasts the roster, and the workers
// complete a full mesh among themselves (the join connections double as
// the coordinator's mesh edges). See README.md for the wire format and
// the failure and progress semantics.
package tcpmpi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/core"
)

// protoVersion guards against mismatched binaries rendezvousing.
// Version 2 added the kindPing heartbeat frame; version 3 its kindPong
// echo (a v2 peer would fail a pong as an unknown frame kind).
const protoVersion = 3

// Transport joins (or coordinates) a multi-process world over TCP. It
// implements core.Transport: Dial blocks until every process has joined
// and the mesh is connected, then returns a core.World owning the ranks
// [RankLo, RankHi) locally.
type Transport struct {
	// Addr is the rendezvous address (host:port). The coordinator listens
	// on it; workers dial it, retrying until the context expires, so the
	// processes may start in any order.
	Addr string
	// Coordinate marks this process the rendezvous coordinator. Exactly
	// one process of a world must coordinate.
	Coordinate bool
	// RankLo, RankHi delimit the contiguous rank range [RankLo, RankHi)
	// this process owns. The ranges of all processes must tile [0, size).
	RankLo, RankHi int
	// ListenAddr is where a worker process accepts mesh connections from
	// other workers (default "127.0.0.1:0", an ephemeral loopback port).
	// Unused by the coordinator and in two-process worlds.
	ListenAddr string
	// RetryInterval paces a worker's rendezvous dial attempts while the
	// coordinator is still coming up (default 50ms).
	RetryInterval time.Duration
	// HeartbeatInterval, when positive, enables the heartbeat monitor: an
	// empty kindPing frame is written on every peer connection that has
	// been send-idle for an interval, and a peer whose connection stays
	// silent past HeartbeatTimeout fails the world with a
	// *core.PeerError naming its rank range. All processes of a world
	// should agree on the interval (the detector tolerates skew up to the
	// timeout).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence span after which a peer is declared
	// suspect (default 4 × HeartbeatInterval). It must comfortably exceed
	// the interval, or healthy peers' ping cadence will trip it.
	HeartbeatTimeout time.Duration
	// CollectiveTimeout, when positive, bounds each tree-edge receive
	// inside the collectives: a rank whose contribution does not arrive
	// within the deadline is named hung in a *core.PeerError and the
	// world fails, instead of the collective blocking forever. It is the
	// complement of the heartbeat: heartbeats catch dead or frozen
	// PROCESSES, the deadline catches a live process whose RANK never
	// enters the collective. Set it above the slowest legitimate
	// inter-collective compute span.
	CollectiveTimeout time.Duration
	// SlowFactor, when positive, enables slow-peer suspicion — the
	// gray-failure detector for peers that are alive but degraded (see
	// slow.go). Every link keeps an EWMA of its ping round-trips and of
	// each collective tree edge's receive wait; a sample exceeding
	// SlowFactor × the link's prior EWMA (and at least SlowFloor, after
	// SlowMinSamples of warm-up) declares the peer suspect with a
	// *core.PeerError in phase "slow" — distinct from every dead-peer
	// phase, so policy can differ. Typical values are 3–10: the factor is
	// relative to the link's own history, not an absolute bound.
	SlowFactor float64
	// SlowFloor is the absolute latency below which a sample never raises
	// suspicion, whatever the factor says — sub-millisecond jitter on a
	// fast link is noise, not degradation (default 10ms).
	SlowFloor time.Duration
	// SlowMinSamples is the EWMA warm-up: suspicion is withheld until a
	// link has this many samples of history (default 8).
	SlowMinSamples int
	// FailOnSlow selects the restart policy: a suspect peer fails the
	// world with the phase-"slow" PeerError (recoverable — a Supervisor
	// redials a fresh world, leaving the degraded peer behind). When
	// false, suspicion is advisory: OnSlow observes it and the world
	// keeps running (ride it out).
	FailOnSlow bool
	// OnSlow, when non-nil, observes each transition into suspicion —
	// once per degradation episode per peer process, from a transport
	// goroutine (it must be concurrency-safe and must not block).
	OnSlow func(*core.PeerError)
}

var _ core.Transport = (*Transport)(nil)

// Handshake messages, one JSON object per line; after the handshake the
// connection switches to binary frames (see frame.go).
type joinMsg struct {
	Proto  int    `json:"proto"`
	Size   int    `json:"size"`
	RankLo int    `json:"rank_lo"`
	RankHi int    `json:"rank_hi"`
	Addr   string `json:"addr"` // the worker's mesh listener
}

type procInfo struct {
	RankLo int    `json:"rank_lo"`
	RankHi int    `json:"rank_hi"`
	Addr   string `json:"addr"`
}

type rosterMsg struct {
	Proto int        `json:"proto"`
	Procs []procInfo `json:"procs"` // ascending by RankLo; index is the process id
	Coord int        `json:"coord"` // the coordinator's process id
	You   int        `json:"you"`   // the receiving worker's process id
	Err   string     `json:"err,omitempty"`
}

type helloMsg struct {
	Proto int `json:"proto"`
	Proc  int `json:"proc"` // the dialing worker's process id
}

func writeJSONLine(c net.Conn, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = c.Write(append(b, '\n'))
	return err
}

func readJSONLine(br *bufio.Reader, v any) error {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}

// applyDeadline bounds a handshake connection by the context's deadline,
// if any. clearDeadline lifts it once the connection switches to frames.
func applyDeadline(ctx context.Context, c net.Conn) {
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
	}
}

func clearDeadline(c net.Conn) { c.SetDeadline(time.Time{}) }

// closeOnDone closes the connection when ctx fires, so a handshake read
// blocked on a stalled peer aborts even under a cancel-only context
// (which applyDeadline cannot bound). The returned stop releases the
// hook once the handshake step is over.
func closeOnDone(ctx context.Context, c net.Conn) func() bool {
	return context.AfterFunc(ctx, func() { c.Close() })
}

// Dial establishes the world. The context bounds the whole bring-up: the
// rendezvous dial-retry loop, the coordinator's wait for joiners, and the
// mesh completion all abort when it expires.
func (t *Transport) Dial(ctx context.Context, size int) (core.World, error) {
	if size < 1 {
		return nil, fmt.Errorf("tcpmpi: world size %d < 1", size)
	}
	if t.RankLo < 0 || t.RankHi <= t.RankLo || t.RankHi > size {
		return nil, fmt.Errorf("tcpmpi: rank range [%d,%d) invalid for world size %d", t.RankLo, t.RankHi, size)
	}
	if t.Addr == "" {
		return nil, fmt.Errorf("tcpmpi: no rendezvous address")
	}
	if t.Coordinate {
		return t.dialCoordinator(ctx, size)
	}
	return t.dialWorker(ctx, size)
}

// finishWorld applies the transport's detection options to a fully meshed
// world and starts the heartbeat monitor if enabled. Both dial paths call
// it last, after every connection's reader is running.
func (t *Transport) finishWorld(w *world) *world {
	w.collTimeout = t.CollectiveTimeout
	if t.SlowFactor > 0 {
		w.slow = slowConfig{
			factor:     t.SlowFactor,
			floor:      t.SlowFloor,
			minSamples: t.SlowMinSamples,
			failOnSlow: t.FailOnSlow,
			onSlow:     t.OnSlow,
		}
		if w.slow.floor <= 0 {
			w.slow.floor = 10 * time.Millisecond
		}
		if w.slow.minSamples <= 0 {
			w.slow.minSamples = 8
		}
	}
	if t.HeartbeatInterval > 0 {
		w.hbInterval = t.HeartbeatInterval
		w.hbTimeout = t.HeartbeatTimeout
		if w.hbTimeout <= 0 {
			w.hbTimeout = 4 * t.HeartbeatInterval
		}
		w.startHeartbeat()
	}
	return w
}

// dialCoordinator listens on Addr, collects joiners until their ranges
// (plus its own) tile [0, size), broadcasts the roster, and brings the
// world up with the join connections as its mesh edges.
func (t *Transport) dialCoordinator(ctx context.Context, size int) (core.World, error) {
	type joiner struct {
		conn net.Conn
		br   *bufio.Reader
		info procInfo
	}
	var joiners []joiner
	abort := func(err error) (core.World, error) {
		for _, j := range joiners {
			j.conn.Close()
		}
		return nil, err
	}

	if t.RankHi-t.RankLo < size {
		ln, err := (&net.ListenConfig{}).Listen(ctx, "tcp", t.Addr)
		if err != nil {
			return nil, fmt.Errorf("tcpmpi: coordinator listen: %w", err)
		}
		stop := context.AfterFunc(ctx, func() { ln.Close() })
		covered := t.RankHi - t.RankLo
		for covered < size {
			conn, err := ln.Accept()
			if err != nil {
				ln.Close()
				stop()
				if ctx.Err() != nil {
					err = fmt.Errorf("tcpmpi: rendezvous aborted with %d of %d ranks joined: %w", covered, size, ctx.Err())
				}
				return abort(err)
			}
			applyDeadline(ctx, conn)
			br := bufio.NewReader(conn)
			var jm joinMsg
			stopConn := closeOnDone(ctx, conn)
			err = readJSONLine(br, &jm)
			stopConn()
			if err != nil {
				ln.Close()
				stop()
				conn.Close()
				return abort(fmt.Errorf("tcpmpi: reading join: %w", err))
			}
			if jm.Proto != protoVersion || jm.Size != size ||
				jm.RankLo < 0 || jm.RankHi <= jm.RankLo || jm.RankHi > size {
				ln.Close()
				stop()
				conn.Close()
				return abort(fmt.Errorf("tcpmpi: bad join (proto %d, size %d, ranks [%d,%d)) for a %d-rank world",
					jm.Proto, jm.Size, jm.RankLo, jm.RankHi, size))
			}
			joiners = append(joiners, joiner{conn: conn, br: br, info: procInfo{RankLo: jm.RankLo, RankHi: jm.RankHi, Addr: jm.Addr}})
			covered += jm.RankHi - jm.RankLo
		}
		ln.Close()
		stop()
	}

	// Assemble and validate the roster: process ids ascend by rank range,
	// and the ranges must tile [0, size) exactly.
	procs := []procInfo{{RankLo: t.RankLo, RankHi: t.RankHi, Addr: t.Addr}}
	for _, j := range joiners {
		procs = append(procs, j.info)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].RankLo < procs[j].RankLo })
	expect := 0
	for _, p := range procs {
		if p.RankLo != expect {
			err := fmt.Errorf("tcpmpi: rank ranges do not tile [0,%d): gap or overlap at rank %d", size, expect)
			for _, j := range joiners {
				writeJSONLine(j.conn, rosterMsg{Proto: protoVersion, Err: err.Error()})
			}
			return abort(err)
		}
		expect = p.RankHi
	}
	me, coordIdx := 0, 0
	for i, p := range procs {
		if p.RankLo == t.RankLo {
			me, coordIdx = i, i
		}
	}

	w, err := newWorld(size, t.RankLo, t.RankHi, procs, me)
	if err != nil {
		return abort(err)
	}
	for _, j := range joiners {
		idx := sort.Search(len(procs), func(i int) bool { return procs[i].RankLo >= j.info.RankLo })
		if err := writeJSONLine(j.conn, rosterMsg{Proto: protoVersion, Procs: procs, Coord: coordIdx, You: idx}); err != nil {
			return abort(fmt.Errorf("tcpmpi: sending roster: %w", err))
		}
		clearDeadline(j.conn)
		pc := newPeerConn(j.conn, j.br)
		w.conns[idx] = pc
		go w.readLoop(idx, pc)
	}
	return t.finishWorld(w), nil
}

// dialWorker opens a mesh listener, rendezvouses with the coordinator
// (retrying while it comes up), and completes the mesh with its fellow
// workers: it dials every lower-id worker and accepts a hello from every
// higher-id one.
func (t *Transport) dialWorker(ctx context.Context, size int) (core.World, error) {
	listenAddr := t.ListenAddr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	retry := t.RetryInterval
	if retry <= 0 {
		retry = 50 * time.Millisecond
	}
	ln, err := (&net.ListenConfig{}).Listen(ctx, "tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpmpi: worker mesh listen: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var conn net.Conn
	d := net.Dialer{}
	for {
		conn, err = d.DialContext(ctx, "tcp", t.Addr)
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			ln.Close()
			return nil, fmt.Errorf("tcpmpi: rendezvous with %s: %w (last: %v)", t.Addr, ctx.Err(), err)
		case <-time.After(retry):
		}
	}
	applyDeadline(ctx, conn)
	fail := func(err error) (core.World, error) {
		ln.Close()
		conn.Close()
		return nil, err
	}
	if err := writeJSONLine(conn, joinMsg{Proto: protoVersion, Size: size, RankLo: t.RankLo, RankHi: t.RankHi, Addr: ln.Addr().String()}); err != nil {
		return fail(fmt.Errorf("tcpmpi: sending join: %w", err))
	}
	br := bufio.NewReader(conn)
	var rm rosterMsg
	stopConn := closeOnDone(ctx, conn)
	err = readJSONLine(br, &rm)
	stopConn()
	if err != nil {
		return fail(fmt.Errorf("tcpmpi: reading roster: %w", err))
	}
	if rm.Err != "" {
		return fail(fmt.Errorf("tcpmpi: coordinator rejected the world: %s", rm.Err))
	}
	if rm.Proto != protoVersion || rm.You < 0 || rm.You >= len(rm.Procs) || rm.Coord < 0 || rm.Coord >= len(rm.Procs) {
		return fail(fmt.Errorf("tcpmpi: malformed roster"))
	}
	clearDeadline(conn)

	w, err := newWorld(size, t.RankLo, t.RankHi, rm.Procs, rm.You)
	if err != nil {
		return fail(err)
	}
	w.listener = ln
	pc := newPeerConn(conn, br)
	w.conns[rm.Coord] = pc
	go w.readLoop(rm.Coord, pc)

	// Mesh with the other workers: dial the lower ids, accept the higher.
	expectInbound := 0
	for p := range rm.Procs {
		if p == rm.You || p == rm.Coord {
			continue
		}
		if p > rm.You {
			expectInbound++
			continue
		}
		mc, err := d.DialContext(ctx, "tcp", rm.Procs[p].Addr)
		if err != nil {
			w.Close()
			return nil, &core.PeerError{
				RankLo: rm.Procs[p].RankLo, RankHi: rm.Procs[p].RankHi, Phase: core.PhaseHandshake,
				Err: fmt.Errorf("tcpmpi: meshing with process %d at %s: %w", p, rm.Procs[p].Addr, err),
			}
		}
		applyDeadline(ctx, mc)
		if err := writeJSONLine(mc, helloMsg{Proto: protoVersion, Proc: rm.You}); err != nil {
			mc.Close()
			w.Close()
			return nil, &core.PeerError{
				RankLo: rm.Procs[p].RankLo, RankHi: rm.Procs[p].RankHi, Phase: core.PhaseHandshake,
				Err: fmt.Errorf("tcpmpi: hello to process %d: %w", p, err),
			}
		}
		clearDeadline(mc)
		mpc := newPeerConn(mc, nil)
		w.conns[p] = mpc
		go w.readLoop(p, mpc)
	}
	for i := 0; i < expectInbound; i++ {
		mc, err := ln.Accept()
		if err != nil {
			w.Close()
			if ctx.Err() != nil {
				err = fmt.Errorf("tcpmpi: mesh accept: %w", ctx.Err())
			}
			return nil, err
		}
		applyDeadline(ctx, mc)
		mbr := bufio.NewReader(mc)
		var hm helloMsg
		stopMesh := closeOnDone(ctx, mc)
		err = readJSONLine(mbr, &hm)
		stopMesh()
		if err != nil {
			mc.Close()
			w.Close()
			return nil, fmt.Errorf("tcpmpi: reading hello: %w", err)
		}
		if hm.Proto != protoVersion || hm.Proc <= rm.You || hm.Proc >= len(rm.Procs) || hm.Proc == rm.Coord || w.conns[hm.Proc] != nil {
			mc.Close()
			w.Close()
			return nil, fmt.Errorf("tcpmpi: unexpected hello from process %d", hm.Proc)
		}
		clearDeadline(mc)
		mpc := newPeerConn(mc, mbr)
		w.conns[hm.Proc] = mpc
		go w.readLoop(hm.Proc, mpc)
	}
	return t.finishWorld(w), nil
}
