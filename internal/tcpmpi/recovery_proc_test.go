package tcpmpi_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/tcpmpi"
)

// The acceptance test of the fault-tolerance stack: a two-OS-process
// DistCG solve in which the worker process is SIGKILLed — no BYE, no
// cleanup, memory gone — right after sealing its second on-disk
// checkpoint. The coordinator's supervisor detects the death (frame-read
// EOF or heartbeat), re-dials; the test restarts the worker process; both
// agree on the newest common checkpoint, restore it, and converge to a
// solution BIT-IDENTICAL to an uninterrupted in-process reference run.

const (
	recoveryEvery  = 5 // checkpoint cadence (iterations)
	recoveryKillAt = 2 // helper SIGKILLs itself after sealing this many
)

// supervisedSolve joins the world as ranks [lo,hi) under a supervisor
// with durable checkpointing into dir, resuming from the newest snapshot
// all processes hold. killAt > 0 makes the process SIGKILL itself right
// after sealing its killAt-th checkpoint — the injected hard crash.
func supervisedSolve(tb testing.TB, addr string, coordinate bool, lo, hi int, dir string, killAt int) (res solver.CGResult, epochs int, x []float64) {
	tb.Helper()
	a, plan := procPlan(tb)
	b := procRHS(a)
	var ck *solver.CGCheckpoint
	sealed := 0
	x = make([]float64, procN)
	s := &core.Supervisor{
		Transport: func(epoch int) core.Transport {
			return &tcpmpi.Transport{
				Addr: addr, Coordinate: coordinate, RankLo: lo, RankHi: hi,
				HeartbeatInterval: 25 * time.Millisecond, CollectiveTimeout: 10 * time.Second,
			}
		},
		Options:     []core.Option{core.WithThreads(2), core.WithMode(core.TaskMode)},
		MaxRestarts: 4,
		Backoff:     50 * time.Millisecond,
		DialTimeout: 60 * time.Second,
	}
	err := s.Run(context.Background(), plan, func(epoch int, cl *core.Cluster) error {
		epochs++
		if ck == nil {
			ck = solver.NewCGCheckpoint(cl, procIters)
		}
		opt := solver.CGOptions{
			Tol: procTol, MaxIter: procIters,
			CheckpointEvery: recoveryEvery, Checkpoint: ck,
			OnCheckpoint: func(c *solver.CGCheckpoint) error {
				if _, err := ckpt.SaveCG(dir, c); err != nil {
					return err
				}
				if sealed++; killAt > 0 && sealed >= killAt {
					p, _ := os.FindProcess(os.Getpid())
					p.Kill() // SIGKILL: no BYE, no cleanup, memory gone
					select {}
				}
				return nil
			},
		}
		latest := -1
		if ck.Valid() {
			latest = ck.Iter
		}
		if it, _, err := ckpt.LatestCG(dir, ck.Lo, ck.Hi); err != nil {
			return err
		} else if it > latest {
			latest = it
		}
		agreed, err := ckpt.Agree(cl, latest)
		if err != nil {
			return err
		}
		switch {
		case agreed < 0: // fresh start
		case ck.Valid() && ck.Iter == agreed:
			opt.Restore = ck
		default:
			if err := ckpt.LoadCG(ckpt.CGPath(dir, ck.Lo, ck.Hi, agreed), ck); err != nil {
				return err
			}
			opt.Restore = ck
		}
		var serr error
		res, serr = solver.DistCGOpt(cl, b, x, opt)
		return serr
	})
	if err != nil {
		tb.Fatalf("supervised solve as ranks [%d,%d): %v", lo, hi, err)
	}
	return res, epochs, x
}

// TestHelperRecoveryWorkerProcess is not a test: it is the killable
// worker half of TestSIGKILLedWorkerRecoversBitIdentical, run in child OS
// processes (first launch dies by SIGKILL; the relaunch completes).
func TestHelperRecoveryWorkerProcess(t *testing.T) {
	addr := os.Getenv("TCPMPI_RECOVERY_ADDR")
	if addr == "" {
		t.Skip("helper half of TestSIGKILLedWorkerRecoversBitIdentical")
	}
	killAt := 0
	if os.Getenv("TCPMPI_RECOVERY_KILL") == "1" {
		killAt = recoveryKillAt
	}
	res, _, _ := supervisedSolve(t, addr, false, procRanks/2, procRanks,
		os.Getenv("TCPMPI_RECOVERY_DIR"), killAt)
	fmt.Printf("RECOVERY-HELPER-OK iterations=%d residual=%x\n", res.Iterations, res.Residual)
}

func TestSIGKILLedWorkerRecoversBitIdentical(t *testing.T) {
	// Uninterrupted in-process reference: the ground truth the recovered
	// two-process solve must match bit for bit.
	a, plan := procPlan(t)
	b := procRHS(a)
	refCl, err := core.NewCluster(plan, core.WithThreads(2), core.WithMode(core.TaskMode))
	if err != nil {
		t.Fatal(err)
	}
	xRef := make([]float64, procN)
	ref, err := solver.DistCG(refCl, b, xRef, procTol, procIters)
	refCl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Iterations < (recoveryKillAt+2)*recoveryEvery {
		t.Fatalf("reference fixture unusable: converged=%v in %d iterations", ref.Converged, ref.Iterations)
	}

	addr := freeAddr(t)
	dir := t.TempDir()
	env := append(os.Environ(), "TCPMPI_RECOVERY_ADDR="+addr, "TCPMPI_RECOVERY_DIR="+dir)
	helper := func(kill string) (*exec.Cmd, *strings.Builder) {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperRecoveryWorkerProcess$", "-test.v", "-test.timeout=120s")
		cmd.Env = append(append([]string(nil), env...), "TCPMPI_RECOVERY_KILL="+kill)
		var out strings.Builder
		cmd.Stdout = &out
		cmd.Stderr = &out
		return cmd, &out
	}

	// First worker: dies of SIGKILL after sealing checkpoint #2. The test
	// plays cluster manager: it observes the death and launches a
	// replacement, the way a real scheduler restarts a failed job.
	doomed, doomedOut := helper("1")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	relaunched := make(chan struct{})
	var healthy *exec.Cmd
	var healthyOut *strings.Builder
	var healthyErr error
	go func() {
		defer close(relaunched)
		if err := doomed.Wait(); err == nil {
			healthyErr = errors.New("doomed worker exited cleanly; the SIGKILL never fired")
			return
		}
		healthy, healthyOut = helper("0")
		healthyErr = healthy.Start()
	}()

	// This process coordinates ranks [0,2) and must survive the worker's
	// death: epoch 0 dies with the world, epoch 1 resumes from the agreed
	// checkpoint alongside the relaunched worker.
	res, epochs, x := supervisedSolve(t, addr, true, 0, procRanks/2, dir, 0)

	<-relaunched
	if healthyErr != nil {
		t.Fatalf("relaunching worker: %v\n%s", healthyErr, doomedOut.String())
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- healthy.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("relaunched worker failed: %v\n%s", err, healthyOut.String())
		}
	case <-time.After(90 * time.Second):
		healthy.Process.Kill()
		t.Fatalf("relaunched worker hung\n%s", healthyOut.String())
	}

	if epochs != 2 {
		t.Fatalf("coordinator ran %d epochs, want 2 (killed world, then recovery)", epochs)
	}
	if !res.Converged {
		t.Fatal("recovered solve did not converge")
	}
	if res.Iterations != ref.Iterations || res.Residual != ref.Residual {
		t.Fatalf("recovered trace (%d, %v) differs from uninterrupted reference (%d, %v)",
			res.Iterations, res.Residual, ref.Iterations, ref.Residual)
	}
	for r := 0; r < procRanks/2; r++ {
		rg := plan.Ranks[r].Rows
		for row := rg.Lo; row < rg.Hi; row++ {
			if x[row] != xRef[row] {
				t.Fatalf("row %d: recovered %v != reference %v", row, x[row], xRef[row])
			}
		}
	}
	if !strings.Contains(healthyOut.String(), "RECOVERY-HELPER-OK") {
		t.Fatalf("relaunched worker did not complete\n%s", healthyOut.String())
	}
	if want := fmt.Sprintf("iterations=%d residual=%x", res.Iterations, res.Residual); !strings.Contains(healthyOut.String(), want) {
		t.Fatalf("relaunched worker converged differently (want %s)\n%s", want, healthyOut.String())
	}
}
