package tcpmpi_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tcpmpi"
)

// TestAllocGatePostedReceiveFastPath pins the posted-receive fast path of
// the wire transport on a two-process loopback world (both endpoints in
// this test process, real TCP in between): once a persistent receive is
// posted, an arriving frame is decoded by the reader goroutine DIRECTLY
// into the bound user buffer — no intermediate []float64, no per-message
// request or carrier — so a steady-state ping round allocates nothing on
// either endpoint. testing.AllocsPerRun counts mallocs process-wide, so
// the sender's frame path and the receiver's reader goroutine are both
// inside the measurement.
func TestAllocGatePostedReceiveFastPath(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var worlds [2]core.World
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := &tcpmpi.Transport{Addr: addr, Coordinate: i == 0, RankLo: i, RankHi: i + 1}
			worlds[i], errs[i] = tr.Dial(ctx, 2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()
	c0, err := worlds[0].Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := worlds[1].Comm(1)
	if err != nil {
		t.Fatal(err)
	}

	const n, tag = 256, 9
	out := make([]float64, n)
	in := make([]float64, n)
	ack := make([]float64, 1)
	for i := range out {
		out[i] = float64(i) * 0.5
	}
	recv, err := c1.RecvInit(0, tag, in)
	if err != nil {
		t.Fatal(err)
	}
	send, err := c0.SendInit(1, tag, out)
	if err != nil {
		t.Fatal(err)
	}
	ackRecv, err := c0.RecvInit(1, tag+1, ack)
	if err != nil {
		t.Fatal(err)
	}
	ackSend, err := c1.SendInit(0, tag+1, ack)
	if err != nil {
		t.Fatal(err)
	}

	// One round: rank 1 posts, rank 0 sends, rank 1 waits the payload and
	// acks, rank 0 waits the ack — so by the end of the measured function
	// every frame of the round has been fully processed by both readers.
	round := func() {
		if err := ackRecv.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv.Start(); err != nil {
			t.Fatal(err)
		}
		if err := send.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := ackSend.Start(); err != nil {
			t.Fatal(err)
		}
		if err := ackRecv.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the socket buffers, bufio scratch and mailbox capacities.
	for i := 0; i < 5; i++ {
		round()
	}
	if in[100] != out[100] {
		t.Fatal("payload not delivered")
	}
	allocs := testing.AllocsPerRun(50, round)
	if allocs != 0 {
		t.Fatalf("posted-receive round allocates %.2f objects per message round, want 0", allocs)
	}

	// The tree collectives ride the same machinery — persistent channels
	// on the static tree edges plus resident per-comm scratch — so a
	// steady-state scalar reduction round must be allocation-free too.
	redDone := make(chan float64, 1)
	redStart := make(chan struct{})
	redStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-redStop:
				return
			case <-redStart:
			}
			v, err := c1.AllreduceScalar(core.OpSum, 2)
			if err != nil {
				v = -1
			}
			redDone <- v
		}
	}()
	defer close(redStop)
	reduceRound := func() {
		redStart <- struct{}{}
		v, err := c0.AllreduceScalar(core.OpSum, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != 3 {
			t.Fatalf("allreduce sum = %g, want 3", v)
		}
		if got := <-redDone; got != 3 {
			t.Fatalf("peer allreduce sum = %g, want 3", got)
		}
	}
	for i := 0; i < 5; i++ {
		reduceRound()
	}
	if allocs := testing.AllocsPerRun(50, reduceRound); allocs != 0 {
		t.Fatalf("scalar allreduce round allocates %.2f objects per round, want 0", allocs)
	}
}
