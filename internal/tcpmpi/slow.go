package tcpmpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Slow-peer suspicion: the gray-failure detector. Heartbeats (PR 6) catch
// peers that are DEAD — no traffic at all within the timeout. This file
// catches peers that are ALIVE but degraded: a throttled core, a sick NIC,
// a process swapping — the paper's §3 failure shape, where transfers crawl
// because progress is slow rather than absent, and nothing ever times out.
//
// Detection is EWMA-relative per link, with two independent signals:
//
//   - ping round-trips: the heartbeat monitor stamps each ping it writes,
//     the peer echoes a kindPong, and the reader folds the round-trip into
//     the connection's EWMA — a per-process link health signal that needs
//     no application traffic at all;
//   - collective-edge latency: each static tree edge's receive wait
//     (recvExact) is folded into the edge's own EWMA — a per-RANK signal
//     that catches a rank whose process is healthy but whose contribution
//     is consistently late.
//
// A sample is suspect when it exceeds SlowFactor × the link's prior EWMA,
// is at least SlowFloor (so microsecond noise can't trip it), and the EWMA
// has warmed up over SlowMinSamples. Suspicion surfaces a *core.PeerError
// with Phase "slow" — distinct from every dead-peer phase — either through
// the advisory OnSlow hook (ride it out: the world keeps running) or, with
// FailOnSlow, by failing the world so a core.Supervisor restarts the epoch
// on a fresh one (PeerError is recoverable).

// ewmaAlpha is the smoothing factor of the latency EWMAs: new sample
// weight 0.2, so the baseline follows drifts over ~5 samples but a single
// outlier cannot drag it far.
const ewmaAlpha = 0.2

// latEwma is a lock-free exponentially weighted latency average, safe for
// one writer and any readers (the CAS tolerates concurrent writers too —
// a lost update is one lost sample, never corruption).
type latEwma struct {
	bits  atomic.Uint64 // float64 bits of the average, in nanoseconds
	count atomic.Int64
}

// observe folds one sample in and returns the average BEFORE the fold and
// the number of earlier samples — the degradation check compares against
// the prior baseline so a slow sample cannot dilute its own threshold.
func (e *latEwma) observe(sample time.Duration) (prev time.Duration, n int64) {
	s := float64(sample)
	for {
		old := e.bits.Load()
		prevF := math.Float64frombits(old)
		n = e.count.Load()
		next := s
		if n > 0 {
			next = ewmaAlpha*s + (1-ewmaAlpha)*prevF
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			e.count.Add(1)
			return time.Duration(prevF), n
		}
	}
}

// slowConfig is the world's resident copy of the Transport's slow-peer
// settings (factor 0: detection disabled).
type slowConfig struct {
	factor     float64
	floor      time.Duration
	minSamples int
	failOnSlow bool
	onSlow     func(*core.PeerError)
}

func (sc *slowConfig) enabled() bool { return sc.factor > 0 }

// observeLinkLatency folds one latency sample into a link's EWMA and
// raises (or clears) suspicion of the peer owning ranks [rankLo, rankHi).
// proc indexes the owning process for the per-process debounce. Called
// from reader goroutines (round-trips) and rank goroutines (collective
// edges) concurrently; everything it touches is atomic.
func (w *world) observeLinkLatency(proc, rankLo, rankHi int, site string, e *latEwma, sample time.Duration) {
	prev, n := e.observe(sample)
	sc := &w.slow
	if !sc.enabled() {
		return
	}
	if n < int64(sc.minSamples) {
		return // baseline still warming up
	}
	if sample >= sc.floor && float64(sample) >= sc.factor*float64(prev) {
		w.noteSlow(proc, rankLo, rankHi, site, sample, prev)
		return
	}
	// A healthy sample clears the debounce, so a peer that degrades,
	// recovers and degrades again is reported again.
	w.slowSuspect[proc].Store(false)
}

// noteSlow surfaces one transition into suspicion. With FailOnSlow the
// world fails (restart policy: the supervisor redials); otherwise the
// advisory hook observes the PeerError at most once per degradation
// episode per process (ride-it-out policy).
func (w *world) noteSlow(proc, rankLo, rankHi int, site string, sample, baseline time.Duration) {
	pe := &core.PeerError{
		RankLo: rankLo, RankHi: rankHi, Phase: core.PhaseSlow,
		Err: fmt.Errorf("tcpmpi: %s latency %v is %.1f× the link's %v baseline",
			site, sample.Round(time.Microsecond), float64(sample)/float64(baseline), baseline.Round(time.Microsecond)),
	}
	if w.slow.failOnSlow {
		w.failWorld(pe)
		return
	}
	if w.slow.onSlow != nil && !w.slowSuspect[proc].Swap(true) {
		w.slow.onSlow(pe)
	}
}
