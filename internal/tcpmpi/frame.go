package tcpmpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire framing: every message between two processes is one length-prefixed
// binary frame (little-endian):
//
//	offset  0  uint32  count — number of float64 payload elements
//	offset  4  uint8   kind  — kindUser or kindColl (matching namespace)
//	offset  5  int32   src   — sending rank
//	offset  9  int32   dst   — receiving rank (must be local to the reader)
//	offset 13  int32   tag
//	offset 17  payload — count IEEE-754 float64 values, little-endian
//
// Frames of user point-to-point traffic and of the internal tree
// collectives share the connection but live in separate matching
// namespaces via kind, so a collective can never steal a user message
// with a colliding tag (or vice versa). kindBye is the graceful-shutdown
// announcement: the last frame a closing process writes on each
// connection, telling the peer its ranks have departed (src/dst/tag and
// payload empty). kindPing is the heartbeat: an empty frame written on a
// connection that has been send-idle for a heartbeat interval, proving
// the writing process is alive; the reader consumes it silently (every
// successfully read frame, ping or not, refreshes the connection's
// last-heard clock). kindPong is the ping's echo, written by the reader
// that consumed the ping; the originator stamps each ping it writes, so
// the echo yields one round-trip latency sample per idle interval — the
// raw material of slow-peer suspicion (see slow.go).
const (
	kindUser byte = 0
	kindColl byte = 1
	kindBye  byte = 2
	kindPing byte = 3
	kindPong byte = 4
)

const frameHeaderLen = 17

// maxFrameElems bounds a frame's payload (2^27 float64 = 1 GiB), so a
// corrupt or hostile length prefix cannot drive an arbitrary allocation.
const maxFrameElems = 1 << 27

// peerConn is one established connection to a peer process: a buffered
// reader owned by the world's reader goroutine and a mutex-serialized
// buffered writer shared by every local rank sending to that process.
type peerConn struct {
	c  net.Conn
	br *bufio.Reader
	// rscratch is the raw payload buffer and rhdr the header buffer, owned
	// by the single reader goroutine and reused across frames; the mailbox
	// decodes out of rscratch (into a posted receive's buffer or a
	// recycled carrier) before the next frame is read, so nothing escapes
	// and the steady-state read path allocates nothing.
	rscratch []byte
	rhdr     [frameHeaderLen]byte

	wmu     sync.Mutex
	bw      *bufio.Writer
	scratch []byte

	// lastSent / lastHeard are UnixNano stamps of the most recent
	// successful frame write / read on this connection, maintained
	// unconditionally (the stores are two atomic ops per frame) so the
	// optional heartbeat monitor needs no per-frame hooks: it pings a
	// connection whose lastSent is stale and declares the peer suspect
	// when lastHeard exceeds the timeout.
	lastSent  atomic.Int64
	lastHeard atomic.Int64

	// pingSentNs is the UnixNano stamp of the oldest unanswered ping (0:
	// none outstanding). The heartbeat monitor CASes it from 0 when it
	// writes a ping, the reader swaps it back to 0 on the kindPong echo,
	// and the difference is one round-trip sample for rtt. At most one
	// ping is ever measured at a time, so the pairing cannot skew.
	pingSentNs atomic.Int64
	// rtt is the link's ping round-trip EWMA (see slow.go).
	rtt latEwma
}

func newPeerConn(c net.Conn, br *bufio.Reader) *peerConn {
	if br == nil {
		br = bufio.NewReader(c)
	}
	p := &peerConn{c: c, br: br, bw: bufio.NewWriter(c)}
	now := time.Now().UnixNano()
	p.lastSent.Store(now)
	p.lastHeard.Store(now)
	return p
}

// writeFrame sends one frame, flushing it onto the wire before returning —
// buffered-send semantics: once writeFrame returns, the payload is owned
// by the kernel's socket buffer and the caller may reuse data.
//
//repro:noalloc
func (p *peerConn) writeFrame(kind byte, src, dst, tag int, data []float64) error {
	if len(data) > maxFrameElems {
		return fmt.Errorf("tcpmpi: frame of %d elements exceeds the %d-element cap", len(data), maxFrameElems)
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	need := frameHeaderLen + 8*len(data)
	if cap(p.scratch) < need {
		p.scratch = make([]byte, need) //repro:alloc-ok grow-once resident buffer
	}
	b := p.scratch[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(len(data)))
	b[4] = kind
	binary.LittleEndian.PutUint32(b[5:], uint32(int32(src)))
	binary.LittleEndian.PutUint32(b[9:], uint32(int32(dst)))
	binary.LittleEndian.PutUint32(b[13:], uint32(int32(tag)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[frameHeaderLen+8*i:], math.Float64bits(v))
	}
	if _, err := p.bw.Write(b); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.lastSent.Store(time.Now().UnixNano())
	return nil
}

// readFrame reads one frame from the peer into the connection's resident
// raw byte buffer and returns it UNDECODED. The reader goroutine passes
// the raw payload to the mailbox, which decodes it directly into a posted
// receive's user buffer when one is waiting (the posted-receive fast path
// — zero allocations per frame) or into a recycled buffered-arrival
// carrier otherwise. raw is valid until the next readFrame (readFrame is
// only called from the connection's single reader goroutine).
//
//repro:noalloc
func (p *peerConn) readFrame() (kind byte, src, dst, tag int, raw []byte, err error) {
	hdr := p.rhdr[:]
	if _, err = io.ReadFull(p.br, hdr); err != nil {
		return
	}
	count := binary.LittleEndian.Uint32(hdr[0:])
	kind = hdr[4]
	src = int(int32(binary.LittleEndian.Uint32(hdr[5:])))
	dst = int(int32(binary.LittleEndian.Uint32(hdr[9:])))
	tag = int(int32(binary.LittleEndian.Uint32(hdr[13:])))
	if count > maxFrameElems {
		err = fmt.Errorf("tcpmpi: frame length prefix %d exceeds the %d-element cap", count, maxFrameElems)
		return
	}
	if kind > kindPong {
		err = fmt.Errorf("tcpmpi: unknown frame kind %d", kind)
		return
	}
	if count == 0 {
		return
	}
	if cap(p.rscratch) < int(8*count) {
		p.rscratch = make([]byte, 8*count) //repro:alloc-ok grow-once resident buffer
	}
	raw = p.rscratch[:8*count]
	_, err = io.ReadFull(p.br, raw)
	return
}

// decodeInto decodes a raw little-endian float64 payload into dst, which
// must hold exactly len(raw)/8 elements.
//
//repro:noalloc
func decodeInto(dst []float64, raw []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}
