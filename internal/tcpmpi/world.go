package tcpmpi

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/chanmpi"
	"repro/internal/core"
)

// ErrWorldClosed is the failure cause recorded when a world is shut down
// via Close; operations attempted afterwards return a *core.WorldError
// wrapping it.
var ErrWorldClosed = errors.New("tcpmpi: world closed")

// failure is the write-once failure state of a world (same contract as the
// in-process runtime's): the first fail wins, blocked waiters select on ch.
type failure struct {
	mu  sync.Mutex
	err error
	ch  chan struct{}
}

func (f *failure) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
		close(f.ch)
	}
}

func (f *failure) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// world is one process's endpoint of a multi-process TCP world: the local
// rank range [lo, hi), one mailbox per local rank, and one connection per
// peer process, each drained by a dedicated reader goroutine. The reader
// goroutines give the transport genuinely asynchronous progress: frames
// move off the wire whether or not any rank is inside a communication
// call (see README.md for how this relates to §3 of the paper).
type world struct {
	size   int
	lo, hi int
	procs  []procInfo
	me     int

	rankProc []int      // rank → owning process index
	boxes    []*mailbox // local rank r → boxes[r-lo]
	conns    []*peerConn
	departed []atomic.Bool // by process index: announced a graceful Close (BYE)

	// dfsOrder and subSize describe the binary collective tree: dfsOrder
	// is the depth-first enumeration of ranks from root 0 (the layout of
	// gathered payloads), subSize[r] the size of r's subtree.
	dfsOrder []int
	subSize  []int

	failure   *failure
	closing   atomic.Bool
	closeOnce sync.Once
	listener  net.Listener // joiner mesh / coordinator join listener, may be nil
}

func newWorld(size, lo, hi int, procs []procInfo, me int) (*world, error) {
	w := &world{
		size:     size,
		lo:       lo,
		hi:       hi,
		procs:    procs,
		me:       me,
		rankProc: make([]int, size),
		boxes:    make([]*mailbox, hi-lo),
		conns:    make([]*peerConn, len(procs)),
		departed: make([]atomic.Bool, len(procs)),
		failure:  &failure{ch: make(chan struct{})},
	}
	covered := 0
	for p, pi := range procs {
		if pi.RankLo != covered || pi.RankHi <= pi.RankLo || pi.RankHi > size {
			return nil, fmt.Errorf("tcpmpi: roster does not tile [0,%d): process %d owns [%d,%d)", size, p, pi.RankLo, pi.RankHi)
		}
		for r := pi.RankLo; r < pi.RankHi; r++ {
			w.rankProc[r] = p
		}
		covered = pi.RankHi
	}
	if covered != size {
		return nil, fmt.Errorf("tcpmpi: roster covers %d of %d ranks", covered, size)
	}
	if me < 0 || me >= len(procs) || procs[me].RankLo != lo || procs[me].RankHi != hi {
		return nil, fmt.Errorf("tcpmpi: roster disagrees with local rank range [%d,%d)", lo, hi)
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	w.subSize = make([]int, size)
	for r := size - 1; r >= 0; r-- {
		w.subSize[r] = 1
		if l := 2*r + 1; l < size {
			w.subSize[r] += w.subSize[l]
		}
		if rr := 2*r + 2; rr < size {
			w.subSize[r] += w.subSize[rr]
		}
	}
	w.dfsOrder = make([]int, 0, size)
	var dfs func(r int)
	dfs = func(r int) {
		if r >= size {
			return
		}
		w.dfsOrder = append(w.dfsOrder, r)
		dfs(2*r + 1)
		dfs(2*r + 2)
	}
	dfs(0)
	return w, nil
}

// failWorld records the first failure and tears the connections down, so
// blocked local waiters wake with a *core.WorldError and peer processes
// observe the loss on their next read — the closest TCP analogue of an
// MPI job abort.
func (w *world) failWorld(err error) {
	w.failure.fail(err)
	w.teardown()
}

func (w *world) teardown() {
	w.closeOnce.Do(func() {
		if w.listener != nil {
			w.listener.Close()
		}
		for _, p := range w.conns {
			if p != nil {
				p.c.Close()
			}
		}
	})
}

// Size returns the total number of ranks across all processes.
func (w *world) Size() int { return w.size }

// Fail poisons the world with the given cause (core.World contract); see
// failWorld. The connection teardown propagates the failure to peer
// processes, so a job that fails in one process fails the whole world.
func (w *world) Fail(err error) { w.failWorld(err) }

// LocalRanks lists the ranks this process owns, ascending.
func (w *world) LocalRanks() []int {
	ranks := make([]int, 0, w.hi-w.lo)
	for r := w.lo; r < w.hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

// Comm returns the communicator of a local rank.
func (w *world) Comm(rank int) (core.Comm, error) {
	if rank < w.lo || rank >= w.hi {
		return nil, fmt.Errorf("tcpmpi: rank %d is not local to this process (owns [%d,%d))", rank, w.lo, w.hi)
	}
	return &comm{w: w, rank: rank}, nil
}

// Close shuts the endpoint down gracefully: a BYE frame is flushed to
// every peer — the last bytes this process writes, so the peers' readers
// see the departure announcement before the EOF and treat it as a clean
// exit rather than a world failure — then the local world is failed with
// ErrWorldClosed (releasing anything still blocked in it) and every
// connection is closed. Already-delivered frames on the peers remain
// receivable after the departure (see post), so a lagging peer can finish
// consuming a completed exchange; only receives that can never be matched
// fail. Close is idempotent.
func (w *world) Close() error {
	if w.closing.Swap(true) {
		return nil
	}
	if w.failure.Err() == nil {
		for _, p := range w.conns {
			if p != nil {
				p.writeFrame(kindBye, 0, 0, 0, nil) // best effort
			}
		}
	}
	w.failure.fail(ErrWorldClosed)
	w.teardown()
	return nil
}

// markDeparted records a peer process's graceful exit and fails every
// posted receive that is still waiting on one of its ranks — those can
// never be matched now. Buffered arrivals from the departed process stay
// consumable.
func (w *world) markDeparted(proc int) {
	w.departed[proc].Store(true)
	for _, box := range w.boxes {
		box.mu.Lock()
		for _, r := range box.recvs {
			if !r.matched && w.rankProc[r.src] == proc {
				r.failWith(w.departedErr(r.src))
			}
		}
		box.compactLocked()
		box.mu.Unlock()
	}
}

func (w *world) departedErr(src int) error {
	return fmt.Errorf("tcpmpi: the process owning rank %d closed its world before the message arrived", src)
}

// readLoop drains one peer connection, delivering each frame into the
// destination rank's mailbox. A BYE frame marks the peer gracefully
// departed (the connection's EOF is then expected); any other read error
// fails the world — unless this endpoint is itself closing.
func (w *world) readLoop(proc int, p *peerConn) {
	for {
		kind, src, dst, tag, data, err := p.readFrame()
		if err != nil {
			if !w.closing.Load() && !w.departed[proc].Load() {
				w.failWorld(fmt.Errorf("tcpmpi: peer connection lost: %w", err))
			}
			return
		}
		if kind == kindBye {
			w.markDeparted(proc)
			continue // EOF follows
		}
		if src < 0 || src >= w.size || dst < w.lo || dst >= w.hi {
			w.failWorld(fmt.Errorf("tcpmpi: frame addressed %d→%d outside this process's ranks [%d,%d)", src, dst, w.lo, w.hi))
			return
		}
		if err := w.deliverArrival(kind == kindColl, src, dst, tag, data); err != nil {
			w.failWorld(err)
			return
		}
	}
}

// mailbox holds the unmatched arrivals and posted receives of one local
// rank, in the same posting-order matching discipline as the in-process
// runtime: earliest posted receive with equal (src, tag, coll) wins.
type mailbox struct {
	mu    sync.Mutex
	recvs []*request
	sends []*inflight
}

type inflight struct {
	src, tag int
	coll     bool
	data     []float64
}

// request is the tcpmpi-backed core.Request implementation for receives.
type request struct {
	done chan struct{}
	fail *failure

	n        int
	src, tag int
	coll     bool
	buf      []float64
	matched  bool
	err      error
}

func (r *request) Wait() error {
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
		return r.err
	case <-r.fail.ch:
		select {
		case <-r.done:
			return r.err
		default:
			return &core.WorldError{Cause: r.fail.Err()}
		}
	}
}

func (r *request) Done() bool {
	if r == nil {
		return true
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// doneRequest is the trivially complete handle of a buffered send.
type doneRequest struct{}

func (doneRequest) Wait() error { return nil }
func (doneRequest) Done() bool  { return true }

// failWith completes the request with an error. Callers hold the mailbox
// lock.
func (r *request) failWith(err error) {
	r.err = err
	r.matched = true
	close(r.done)
}

// complete copies data into the request buffer and closes it, recording a
// truncation error if the message does not fit. Callers hold the mailbox
// lock and must release it before failing the world on the returned error.
func (r *request) complete(data []float64) error {
	if len(data) > len(r.buf) {
		err := &core.TruncationError{Len: len(data), Cap: len(r.buf), Src: r.src, Tag: r.tag}
		r.failWith(err)
		return err
	}
	copy(r.buf, data)
	r.n = len(data)
	r.matched = true
	close(r.done)
	return nil
}

func (b *mailbox) compactLocked() {
	recvs := b.recvs[:0]
	for _, r := range b.recvs {
		if !r.matched {
			recvs = append(recvs, r)
		}
	}
	b.recvs = recvs
	sends := b.sends[:0]
	for _, s := range b.sends {
		if s != nil {
			sends = append(sends, s)
		}
	}
	b.sends = sends
}

// deliverArrival files a frame that arrived from the wire (or a local
// send's copied payload): match the earliest posted receive or buffer it.
// The data slice is owned by the mailbox afterwards.
func (w *world) deliverArrival(coll bool, src, dst, tag int, data []float64) error {
	box := w.boxes[dst-w.lo]
	box.mu.Lock()
	for _, rr := range box.recvs {
		if rr.matched || rr.src != src || rr.tag != tag || rr.coll != coll {
			continue
		}
		err := rr.complete(data)
		box.compactLocked()
		box.mu.Unlock()
		return err
	}
	box.sends = append(box.sends, &inflight{src: src, tag: tag, coll: coll, data: data})
	box.mu.Unlock()
	return nil
}

// send transmits data from local rank src to rank dst: a direct mailbox
// delivery when dst is local, one frame on the owning process's connection
// otherwise. Buffered semantics either way — the caller may reuse data as
// soon as send returns.
func (w *world) send(src, dst, tag int, coll bool, data []float64) error {
	if dst < 0 || dst >= w.size {
		return &core.RankError{Op: "Isend", Rank: dst, Size: w.size}
	}
	if err := w.failure.Err(); err != nil {
		return &core.WorldError{Cause: err}
	}
	if dst >= w.lo && dst < w.hi {
		if err := w.deliverArrival(coll, src, dst, tag, append([]float64(nil), data...)); err != nil {
			w.failWorld(err)
			return err
		}
		return nil
	}
	proc := w.rankProc[dst]
	if w.departed[proc].Load() {
		// The peer closed gracefully; the send can never arrive, but the
		// rest of the world is intact — report without failing it.
		return fmt.Errorf("tcpmpi: send %d→%d: the owning process closed its world", src, dst)
	}
	kind := kindUser
	if coll {
		kind = kindColl
	}
	if err := w.conns[proc].writeFrame(kind, src, dst, tag, data); err != nil {
		err = fmt.Errorf("tcpmpi: send %d→%d: %w", src, dst, err)
		w.failWorld(err)
		return err
	}
	return nil
}

// post registers a nonblocking receive for local rank dst, matching any
// already-buffered arrival first. The buffered-arrival scan runs BEFORE
// the failure check: a message that reached this process before the world
// failed is still deliverable (a lagging rank must be able to consume the
// final frames of a completed exchange after a peer has departed).
func (w *world) post(dst, src, tag int, coll bool, buf []float64) (*request, error) {
	if src < 0 || src >= w.size {
		return nil, &core.RankError{Op: "Irecv", Rank: src, Size: w.size}
	}
	req := &request{done: make(chan struct{}), fail: w.failure, src: src, tag: tag, coll: coll, buf: buf}
	box := w.boxes[dst-w.lo]
	box.mu.Lock()
	for i, m := range box.sends {
		if m == nil || m.src != src || m.tag != tag || m.coll != coll {
			continue
		}
		box.sends[i] = nil
		err := req.complete(m.data)
		box.compactLocked()
		box.mu.Unlock()
		if err != nil {
			w.failWorld(err)
		}
		return req, err
	}
	if err := w.failure.Err(); err != nil {
		box.mu.Unlock()
		return nil, &core.WorldError{Cause: err}
	}
	if w.departed[w.rankProc[src]].Load() {
		// Checked under the box lock, after the buffered scan: anything
		// the departed peer sent before its BYE was already consumable
		// above; what remains can never be matched.
		box.mu.Unlock()
		return nil, w.departedErr(src)
	}
	box.recvs = append(box.recvs, req)
	box.mu.Unlock()
	return req, nil
}

// comm is one local rank's communicator handle, satisfying core.Comm.
type comm struct {
	w    *world
	rank int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.w.size }

func (c *comm) Isend(dst, tag int, data []float64) (core.Request, error) {
	if err := c.w.send(c.rank, dst, tag, false, data); err != nil {
		return nil, err
	}
	return doneRequest{}, nil
}

func (c *comm) Irecv(src, tag int, buf []float64) (core.Request, error) {
	req, err := c.w.post(c.rank, src, tag, false, buf)
	if req == nil {
		return nil, err
	}
	return req, err
}

// Waitall delegates to the shared implementation — core.Request aliases
// the chanmpi interface, so the wait-all-then-first-error discipline is
// written once for every transport.
func (c *comm) Waitall(reqs ...core.Request) error {
	return chanmpi.Waitall(reqs...)
}

// Interface satisfaction checks.
var (
	_ core.Comm    = (*comm)(nil)
	_ core.World   = (*world)(nil)
	_ core.Request = (*request)(nil)
	_ core.Request = doneRequest{}
)
