package tcpmpi

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chanmpi"
	"repro/internal/core"
)

// ErrWorldClosed is the failure cause recorded when a world is shut down
// via Close; operations attempted afterwards return a *core.WorldError
// wrapping it.
var ErrWorldClosed = errors.New("tcpmpi: world closed")

// failure is the write-once failure state of a world (same contract as the
// in-process runtime's): the first fail wins, blocked waiters select on ch.
type failure struct {
	mu  sync.Mutex
	err error
	ch  chan struct{}
}

func (f *failure) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
		close(f.ch)
	}
}

func (f *failure) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// world is one process's endpoint of a multi-process TCP world: the local
// rank range [lo, hi), one mailbox per local rank, and one connection per
// peer process, each drained by a dedicated reader goroutine. The reader
// goroutines give the transport genuinely asynchronous progress: frames
// move off the wire whether or not any rank is inside a communication
// call (see README.md for how this relates to §3 of the paper).
type world struct {
	size   int
	lo, hi int
	procs  []procInfo
	me     int

	rankProc []int      // rank → owning process index
	boxes    []*mailbox // local rank r → boxes[r-lo]
	conns    []*peerConn
	departed []atomic.Bool // by process index: announced a graceful Close (BYE)

	// dfsOrder and subSize describe the binary collective tree: dfsOrder
	// is the depth-first enumeration of ranks from root 0 (the layout of
	// gathered payloads), subSize[r] the size of r's subtree.
	dfsOrder []int
	subSize  []int

	// hbInterval/hbTimeout configure the heartbeat monitor (zero interval:
	// disabled); collTimeout bounds each collective-edge receive (zero:
	// unbounded). All are fixed at bring-up by the Transport.
	hbInterval  time.Duration
	hbTimeout   time.Duration
	collTimeout time.Duration

	// slow is the slow-peer suspicion policy (see slow.go); slowSuspect,
	// by process index, debounces the advisory hook per degradation
	// episode.
	slow        slowConfig
	slowSuspect []atomic.Bool

	failure   *failure
	closing   atomic.Bool
	closeOnce sync.Once
	listener  net.Listener // joiner mesh / coordinator join listener, may be nil
}

func newWorld(size, lo, hi int, procs []procInfo, me int) (*world, error) {
	w := &world{
		size:        size,
		lo:          lo,
		hi:          hi,
		procs:       procs,
		me:          me,
		rankProc:    make([]int, size),
		boxes:       make([]*mailbox, hi-lo),
		conns:       make([]*peerConn, len(procs)),
		departed:    make([]atomic.Bool, len(procs)),
		slowSuspect: make([]atomic.Bool, len(procs)),
		failure:     &failure{ch: make(chan struct{})},
	}
	covered := 0
	for p, pi := range procs {
		if pi.RankLo != covered || pi.RankHi <= pi.RankLo || pi.RankHi > size {
			return nil, fmt.Errorf("tcpmpi: roster does not tile [0,%d): process %d owns [%d,%d)", size, p, pi.RankLo, pi.RankHi)
		}
		for r := pi.RankLo; r < pi.RankHi; r++ {
			w.rankProc[r] = p
		}
		covered = pi.RankHi
	}
	if covered != size {
		return nil, fmt.Errorf("tcpmpi: roster covers %d of %d ranks", covered, size)
	}
	if me < 0 || me >= len(procs) || procs[me].RankLo != lo || procs[me].RankHi != hi {
		return nil, fmt.Errorf("tcpmpi: roster disagrees with local rank range [%d,%d)", lo, hi)
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	w.subSize = make([]int, size)
	for r := size - 1; r >= 0; r-- {
		w.subSize[r] = 1
		if l := 2*r + 1; l < size {
			w.subSize[r] += w.subSize[l]
		}
		if rr := 2*r + 2; rr < size {
			w.subSize[r] += w.subSize[rr]
		}
	}
	w.dfsOrder = make([]int, 0, size)
	var dfs func(r int)
	dfs = func(r int) {
		if r >= size {
			return
		}
		w.dfsOrder = append(w.dfsOrder, r)
		dfs(2*r + 1)
		dfs(2*r + 2)
	}
	dfs(0)
	return w, nil
}

// failWorld records the first failure and tears the connections down, so
// blocked local waiters wake with a *core.WorldError and peer processes
// observe the loss on their next read — the closest TCP analogue of an
// MPI job abort.
func (w *world) failWorld(err error) {
	w.failure.fail(err)
	w.teardown()
}

func (w *world) teardown() {
	w.closeOnce.Do(func() {
		if w.listener != nil {
			w.listener.Close()
		}
		for _, p := range w.conns {
			if p != nil {
				p.c.Close()
			}
		}
	})
}

// Size returns the total number of ranks across all processes.
func (w *world) Size() int { return w.size }

// Fail poisons the world with the given cause (core.World contract); see
// failWorld. The connection teardown propagates the failure to peer
// processes, so a job that fails in one process fails the whole world.
func (w *world) Fail(err error) { w.failWorld(err) }

// LocalRanks lists the ranks this process owns, ascending.
func (w *world) LocalRanks() []int {
	ranks := make([]int, 0, w.hi-w.lo)
	for r := w.lo; r < w.hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

// Comm returns the communicator of a local rank.
func (w *world) Comm(rank int) (core.Comm, error) {
	if rank < w.lo || rank >= w.hi {
		return nil, fmt.Errorf("tcpmpi: rank %d is not local to this process (owns [%d,%d))", rank, w.lo, w.hi)
	}
	return &comm{w: w, rank: rank}, nil
}

// Close shuts the endpoint down gracefully: a BYE frame is flushed to
// every peer — the last bytes this process writes, so the peers' readers
// see the departure announcement before the EOF and treat it as a clean
// exit rather than a world failure — then the local world is failed with
// ErrWorldClosed (releasing anything still blocked in it) and every
// connection is closed. Already-delivered frames on the peers remain
// receivable after the departure (see post), so a lagging peer can finish
// consuming a completed exchange; only receives that can never be matched
// fail. Close is idempotent.
func (w *world) Close() error {
	if w.closing.Swap(true) {
		return nil
	}
	if w.failure.Err() == nil {
		for _, p := range w.conns {
			if p != nil {
				p.writeFrame(kindBye, 0, 0, 0, nil) // best effort
			}
		}
	}
	w.failure.fail(ErrWorldClosed)
	w.teardown()
	return nil
}

// startHeartbeat launches the world's heartbeat monitor: every hbInterval
// it pings each peer connection that has been send-idle for an interval
// (so a quiet but healthy world exchanges pings in both directions and
// never trips the detector) and declares a peer suspect — failing the
// world with a *core.PeerError naming the peer's rank range — when
// nothing, ping or payload, has arrived on its connection within
// hbTimeout. The monitor exits when the world fails (which includes
// Close). A departed peer (BYE received) is exempt: its silence is
// announced, not suspect. Steady-state cost is two time loads per tick
// per peer and one empty frame per idle interval; nothing on the tick
// path allocates, so the PR 5 alloc gates hold with heartbeats enabled.
func (w *world) startHeartbeat() {
	go func() {
		ticker := time.NewTicker(w.hbInterval)
		defer ticker.Stop()
		for {
			select {
			case <-w.failure.ch:
				return
			case <-ticker.C:
			}
			now := time.Now().UnixNano()
			for proc, p := range w.conns {
				if p == nil || w.departed[proc].Load() {
					continue
				}
				if now-p.lastHeard.Load() > int64(w.hbTimeout) {
					pi := w.procs[proc]
					w.failWorld(&core.PeerError{
						RankLo: pi.RankLo, RankHi: pi.RankHi, Phase: core.PhaseHeartbeat,
						Err: fmt.Errorf("tcpmpi: no traffic from process %d within %v", proc, w.hbTimeout),
					})
					return
				}
				if now-p.lastSent.Load() >= int64(w.hbInterval) {
					// Stamp before writing so the echo's round-trip includes
					// the write; only one ping is measured at a time (the CAS
					// fails while one is outstanding — an unanswered ping is
					// the heartbeat timeout's business, not a fresh sample).
					p.pingSentNs.CompareAndSwap(0, now)
					// Best effort: a write error here means the connection is
					// dying, which the reader loop reports with the real cause.
					p.writeFrame(kindPing, 0, 0, 0, nil)
				}
			}
		}
	}()
}

// markDeparted records a peer process's graceful exit and fails every
// posted receive that is still waiting on one of its ranks — those can
// never be matched now. Buffered arrivals from the departed process stay
// consumable.
func (w *world) markDeparted(proc int) {
	w.departed[proc].Store(true)
	for _, box := range w.boxes {
		box.mu.Lock()
		for _, r := range box.recvs {
			if !r.matched && w.rankProc[r.src] == proc {
				r.failWith(w.departedErr(r.src))
			}
		}
		box.compactLocked()
		box.mu.Unlock()
	}
}

func (w *world) departedErr(src int) error {
	return fmt.Errorf("tcpmpi: the process owning rank %d closed its world before the message arrived", src)
}

// readLoop drains one peer connection, delivering each frame into the
// destination rank's mailbox. A BYE frame marks the peer gracefully
// departed (the connection's EOF is then expected); any other read error
// fails the world — unless this endpoint is itself closing — with a
// *core.PeerError naming the peer's rank range as the suspect, so a
// crashed process (EOF without BYE) is pinpointed rather than reported as
// an anonymous connection loss. Payloads are decoded straight out of the
// connection's raw buffer: into a posted receive's user buffer when one
// is waiting (zero allocations per frame), into a recycled carrier
// otherwise.
func (w *world) readLoop(proc int, p *peerConn) {
	for {
		kind, src, dst, tag, raw, err := p.readFrame()
		if err != nil {
			if !w.closing.Load() && !w.departed[proc].Load() {
				pi := w.procs[proc]
				w.failWorld(&core.PeerError{
					RankLo: pi.RankLo, RankHi: pi.RankHi, Phase: core.PhaseFrameRead,
					Err: fmt.Errorf("tcpmpi: peer connection lost: %w", err),
				})
			}
			return
		}
		now := time.Now().UnixNano()
		p.lastHeard.Store(now)
		if kind == kindPing {
			// Echo so the originator gets a round-trip sample; best effort —
			// a write error here means the connection is dying, which the
			// next read reports with the real cause.
			p.writeFrame(kindPong, 0, 0, 0, nil)
			continue
		}
		if kind == kindPong {
			if sent := p.pingSentNs.Swap(0); sent != 0 {
				pi := w.procs[proc]
				w.observeLinkLatency(proc, pi.RankLo, pi.RankHi, "ping round-trip", &p.rtt, time.Duration(now-sent))
			}
			continue
		}
		if kind == kindBye {
			w.markDeparted(proc)
			continue // EOF follows
		}
		if src < 0 || src >= w.size || dst < w.lo || dst >= w.hi {
			w.failWorld(fmt.Errorf("tcpmpi: frame addressed %d→%d outside this process's ranks [%d,%d)", src, dst, w.lo, w.hi))
			return
		}
		if err := w.deliverRaw(kind == kindColl, src, dst, tag, raw); err != nil {
			w.failWorld(err)
			return
		}
	}
}

// mailbox holds the unmatched arrivals and posted receives of one local
// rank, in the same posting-order matching discipline as the in-process
// runtime: earliest posted receive with equal (src, tag, coll) wins.
// Consumed buffered-arrival carriers are recycled on a small free ring
// (payload buffer included), so the buffered path stops allocating once
// the steady-state exchange sizes have been seen.
type mailbox struct {
	mu    sync.Mutex
	recvs []*request
	sends []*inflight
	free  []*inflight // recycled carriers, most recently freed last
}

// maxFreeCarriers bounds the recycle ring per mailbox; halo exchanges have
// a handful of peers, so a short ring captures the steady state without
// pinning memory after a burst.
const maxFreeCarriers = 16

// getCarrierLocked returns a recycled carrier whose payload buffer holds n
// elements, growing or allocating only when the ring has nothing suitable.
func (b *mailbox) getCarrierLocked(n int) *inflight {
	for i := len(b.free) - 1; i >= 0; i-- {
		if cap(b.free[i].data) >= n {
			m := b.free[i]
			b.free = append(b.free[:i], b.free[i+1:]...)
			m.data = m.data[:n]
			return m
		}
	}
	if len(b.free) > 0 {
		// Reuse the struct, grow its buffer.
		m := b.free[len(b.free)-1]
		b.free = b.free[:len(b.free)-1]
		m.data = make([]float64, n)
		return m
	}
	return &inflight{data: make([]float64, n)}
}

// putCarrierLocked returns a consumed carrier to the ring.
func (b *mailbox) putCarrierLocked(m *inflight) {
	if m == nil || m.owned || len(b.free) >= maxFreeCarriers {
		return
	}
	b.free = append(b.free, m)
}

type inflight struct {
	src, tag int
	coll     bool
	data     []float64
	// owned marks a persistent send's resident staging copy: it belongs to
	// the SendInit request (pending tracks whether it is buffered here) and
	// must never enter the recycle ring.
	owned   bool
	pending bool
}

// request is the tcpmpi-backed core.Request implementation for receives.
type request struct {
	done chan struct{}
	fail *failure

	n        int
	src, tag int
	coll     bool
	buf      []float64
	matched  bool
	// queued/persistent: restartable RecvInit request state — completion
	// sends a token on the buffered done channel instead of closing it,
	// so the resident request restarts without reallocating.
	queued     bool
	persistent bool
	err        error
}

func (r *request) signalDone() {
	if r.persistent {
		r.done <- struct{}{}
	} else {
		close(r.done)
	}
}

func (r *request) Wait() error {
	if r == nil {
		return nil
	}
	select {
	case <-r.done:
		return r.err
	case <-r.fail.ch:
		select {
		case <-r.done:
			return r.err
		default:
			return &core.WorldError{Cause: r.fail.Err()}
		}
	}
}

// waitTimer completes like Wait but gives up when the timer channel
// fires first, reporting timedOut without consuming the request's
// completion (the world is about to be failed anyway). The collectives
// use it with the communicator's resident deadline timer.
func (r *request) waitTimer(tc <-chan time.Time) (err error, timedOut bool) {
	select {
	case <-r.done:
		return r.err, false
	case <-r.fail.ch:
		select {
		case <-r.done:
			return r.err, false
		default:
			return &core.WorldError{Cause: r.fail.Err()}, false
		}
	case <-tc:
		select {
		case <-r.done:
			return r.err, false
		default:
			return nil, true
		}
	}
}

func (r *request) Done() bool {
	if r == nil {
		return true
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// doneRequest is the trivially complete handle of a buffered send.
type doneRequest struct{}

func (doneRequest) Wait() error { return nil }
func (doneRequest) Done() bool  { return true }

// failWith completes the request with an error. Callers hold the mailbox
// lock.
func (r *request) failWith(err error) {
	r.err = err
	r.matched = true
	r.signalDone()
}

// complete copies data into the request buffer and completes it, recording
// a truncation error if the message does not fit. Callers hold the mailbox
// lock and must release it before failing the world on the returned error.
func (r *request) complete(data []float64) error {
	if len(data) > len(r.buf) {
		err := &core.TruncationError{Len: len(data), Cap: len(r.buf), Src: r.src, Tag: r.tag}
		r.failWith(err)
		return err
	}
	copy(r.buf, data)
	r.n = len(data)
	r.matched = true
	r.signalDone()
	return nil
}

// completeRaw decodes a raw wire payload directly into the request buffer
// — the posted-receive fast path: no intermediate []float64 exists at any
// point. Callers hold the mailbox lock.
func (r *request) completeRaw(raw []byte) error {
	n := len(raw) / 8
	if n > len(r.buf) {
		err := &core.TruncationError{Len: n, Cap: len(r.buf), Src: r.src, Tag: r.tag}
		r.failWith(err)
		return err
	}
	decodeInto(r.buf[:n], raw)
	r.n = n
	r.matched = true
	r.signalDone()
	return nil
}

func (b *mailbox) compactLocked() {
	recvs := b.recvs[:0]
	for _, r := range b.recvs {
		if !r.matched {
			recvs = append(recvs, r)
		}
	}
	b.recvs = recvs
	sends := b.sends[:0]
	for _, s := range b.sends {
		if s != nil {
			sends = append(sends, s)
		}
	}
	b.sends = sends
}

// deliverRaw files a frame payload straight off the wire: decoded into the
// earliest matching posted receive's user buffer when one is waiting (the
// fast path — the frame never materializes as a separate slice), decoded
// into a recycled carrier and buffered otherwise. raw is only borrowed;
// ownership stays with the reader goroutine.
func (w *world) deliverRaw(coll bool, src, dst, tag int, raw []byte) error {
	box := w.boxes[dst-w.lo]
	box.mu.Lock()
	for _, rr := range box.recvs {
		if rr.matched || rr.src != src || rr.tag != tag || rr.coll != coll {
			continue
		}
		err := rr.completeRaw(raw)
		box.compactLocked()
		box.mu.Unlock()
		return err
	}
	m := box.getCarrierLocked(len(raw) / 8)
	m.src, m.tag, m.coll = src, tag, coll
	decodeInto(m.data, raw)
	box.sends = append(box.sends, m)
	box.mu.Unlock()
	return nil
}

// deliverLocal files a local rank-to-rank send: copied into the earliest
// matching posted receive directly, or buffered through a recycled carrier
// (or the persistent send's resident staging copy when stage is non-nil
// and free). Buffered semantics — data may be reused on return.
func (w *world) deliverLocal(coll bool, src, dst, tag int, data []float64, stage *inflight) error {
	box := w.boxes[dst-w.lo]
	box.mu.Lock()
	for _, rr := range box.recvs {
		if rr.matched || rr.src != src || rr.tag != tag || rr.coll != coll {
			continue
		}
		err := rr.complete(data)
		box.compactLocked()
		box.mu.Unlock()
		return err
	}
	m := stage
	if m == nil || m.pending {
		m = box.getCarrierLocked(len(data))
	} else {
		if cap(m.data) < len(data) {
			m.data = make([]float64, len(data))
		}
		m.data = m.data[:len(data)]
		m.pending = true
	}
	m.src, m.tag, m.coll = src, tag, coll
	copy(m.data, data)
	box.sends = append(box.sends, m)
	box.mu.Unlock()
	return nil
}

// send transmits data from local rank src to rank dst: a direct mailbox
// delivery when dst is local, one frame on the owning process's connection
// otherwise. Buffered semantics either way — the caller may reuse data as
// soon as send returns. stage, when non-nil, is a persistent send's
// resident staging carrier for the local unmatched case.
func (w *world) send(src, dst, tag int, coll bool, data []float64, stage *inflight) error {
	if dst < 0 || dst >= w.size {
		return &core.RankError{Op: "Isend", Rank: dst, Size: w.size}
	}
	if err := w.failure.Err(); err != nil {
		return &core.WorldError{Cause: err}
	}
	if dst >= w.lo && dst < w.hi {
		if err := w.deliverLocal(coll, src, dst, tag, data, stage); err != nil {
			w.failWorld(err)
			return err
		}
		return nil
	}
	proc := w.rankProc[dst]
	pi := w.procs[proc]
	if w.departed[proc].Load() {
		// The peer closed gracefully; the send can never arrive, but the
		// rest of the world is intact — report without failing it. Still a
		// *core.PeerError: a supervisor may recover by re-dialing a world
		// where a restarted replacement owns these ranks.
		return &core.PeerError{
			RankLo: pi.RankLo, RankHi: pi.RankHi, Phase: core.PhaseSend,
			Err: fmt.Errorf("tcpmpi: send %d→%d: the owning process closed its world", src, dst),
		}
	}
	kind := kindUser
	if coll {
		kind = kindColl
	}
	if err := w.conns[proc].writeFrame(kind, src, dst, tag, data); err != nil {
		// A write on a peer connection failing (reset, broken pipe) is the
		// send-side face of a peer death: name the suspect so the failure
		// is recognizably world-level (core.Supervisor restarts on it).
		perr := &core.PeerError{
			RankLo: pi.RankLo, RankHi: pi.RankHi, Phase: core.PhaseSend,
			Err: fmt.Errorf("tcpmpi: send %d→%d: %w", src, dst, err),
		}
		w.failWorld(perr)
		return perr
	}
	return nil
}

// post registers a nonblocking receive for local rank dst, matching any
// already-buffered arrival first.
func (w *world) post(dst, src, tag int, coll bool, buf []float64) (*request, error) {
	if src < 0 || src >= w.size {
		return nil, &core.RankError{Op: "Irecv", Rank: src, Size: w.size}
	}
	req := &request{done: make(chan struct{}), fail: w.failure, src: src, tag: tag, coll: coll, buf: buf}
	if err := w.postReq(dst, req); err != nil {
		if req.matched {
			// Completed with a delivery error (truncation): the request
			// carries the error for both endpoints.
			return req, err
		}
		return nil, err // refused: failed world or departed peer
	}
	return req, nil
}

// postReq files a (new or restarted) receive request into dst's mailbox,
// matching any already-buffered arrival first. The buffered-arrival scan
// runs BEFORE the failure check: a message that reached this process
// before the world failed is still deliverable (a lagging rank must be
// able to consume the final frames of a completed exchange after a peer
// has departed). The caller distinguishes "completed with error" from
// "never posted" by req.matched.
func (w *world) postReq(dst int, req *request) error {
	src, tag, coll := req.src, req.tag, req.coll
	box := w.boxes[dst-w.lo]
	box.mu.Lock()
	for i, m := range box.sends {
		if m == nil || m.src != src || m.tag != tag || m.coll != coll {
			continue
		}
		box.sends[i] = nil
		m.pending = false
		err := req.complete(m.data)
		box.putCarrierLocked(m)
		box.compactLocked()
		box.mu.Unlock()
		if err != nil {
			w.failWorld(err)
		}
		return err
	}
	if err := w.failure.Err(); err != nil {
		box.mu.Unlock()
		return &core.WorldError{Cause: err}
	}
	if w.departed[w.rankProc[src]].Load() {
		// Checked under the box lock, after the buffered scan: anything
		// the departed peer sent before its BYE was already consumable
		// above; what remains can never be matched.
		box.mu.Unlock()
		return w.departedErr(src)
	}
	req.queued = true
	box.recvs = append(box.recvs, req)
	box.mu.Unlock()
	return nil
}

// comm is one local rank's communicator handle, satisfying core.Comm. It
// carries the rank's resident collective scratch (see collective.go), so
// a handle belongs to one rank goroutine; the Cluster obtains one per
// local rank and keeps it.
type comm struct {
	w    *world
	rank int
	// scalarBuf is the resident one-element contribution vector of the
	// scalar collectives.
	scalarBuf [1]float64
	cs        collScratch
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.w.size }

func (c *comm) Isend(dst, tag int, data []float64) (core.Request, error) {
	if err := c.w.send(c.rank, dst, tag, false, data, nil); err != nil {
		return nil, err
	}
	return doneRequest{}, nil
}

func (c *comm) Irecv(src, tag int, buf []float64) (core.Request, error) {
	req, err := c.w.post(c.rank, src, tag, false, buf)
	if req == nil {
		return nil, err
	}
	return req, err
}

// precv is a persistent receive channel (MPI_Recv_init): one resident
// request — token-completed, so restartable — re-posted into the rank's
// mailbox by each Start. Combined with the reader goroutine's
// posted-receive fast path, a started persistent receive means an arriving
// frame decodes straight into the bound user buffer: zero allocations per
// message on either side.
type precv struct {
	w    *world
	rank int
	req  *request
	// lat is the edge's receive-wait EWMA when the channel backs a
	// collective tree edge under slow-peer suspicion (see slow.go).
	lat latEwma
}

// newPrecv builds the resident request of a persistent receive; the
// collectives use coll=true channels on the static tree edges.
func (c *comm) newPrecv(src, tag int, coll bool) *precv {
	return &precv{
		w:    c.w,
		rank: c.rank,
		req: &request{
			done:       make(chan struct{}, 1),
			fail:       c.w.failure,
			src:        src,
			tag:        tag,
			coll:       coll,
			persistent: true,
		},
	}
}

// RecvInit creates a persistent receive channel for messages from rank src
// with the given tag, delivering into buf. The channel is inert until its
// first Start; each Start must be Waited before the next.
func (c *comm) RecvInit(src, tag int, buf []float64) (core.PersistentRequest, error) {
	if src < 0 || src >= c.w.size {
		return nil, &core.RankError{Op: "RecvInit", Rank: src, Size: c.w.size}
	}
	p := c.newPrecv(src, tag, false)
	p.req.buf = buf
	return p, nil
}

func (p *precv) Start() error { return p.startInto(p.req.buf) }

// startInto restarts the resident request delivering into buf — the
// rebind happens under the mailbox lock, inside the not-in-flight guard,
// so it can never race a delivery. The collectives use it to reuse one
// persistent channel per static tree edge across rounds of varying
// payload length.
func (p *precv) startInto(buf []float64) error {
	r := p.req
	box := p.w.boxes[p.rank-p.w.lo]
	box.mu.Lock()
	if r.queued && !r.matched {
		// A request left queued by a world failure is restartable once the
		// failure is the reported cause; only a healthy in-flight restart
		// is a usage error.
		if err := p.w.failure.Err(); err != nil {
			box.mu.Unlock()
			return &core.WorldError{Cause: err}
		}
		box.mu.Unlock()
		return fmt.Errorf("tcpmpi: Start on a persistent receive still in flight (Wait it first)")
	}
	// Drain a completion token the caller never waited for: restarting
	// abandons the previous round's completion.
	select {
	case <-r.done:
	default:
	}
	r.buf = buf
	r.matched, r.err, r.n, r.queued = false, nil, 0, false
	box.mu.Unlock()
	return p.w.postReq(p.rank, r)
}

func (p *precv) Wait() error { return p.req.Wait() }

// psend is a persistent send channel (MPI_Send_init): each Start transmits
// the current contents of the bound buffer. Remote destinations go through
// the connection's resident frame scratch; a local destination delivers
// directly into a posted receive or buffers through the request's resident
// staging carrier — no per-message allocation on any path.
type psend struct {
	w        *world
	src      int
	dst, tag int
	buf      []float64
	stage    *inflight
	lastErr  error
}

// SendInit creates a persistent send channel to rank dst with the given
// tag, transmitting the CURRENT contents of buf on each Start (the caller
// refills buf between Starts).
func (c *comm) SendInit(dst, tag int, buf []float64) (core.PersistentRequest, error) {
	if dst < 0 || dst >= c.w.size {
		return nil, &core.RankError{Op: "SendInit", Rank: dst, Size: c.w.size}
	}
	return &psend{
		w:     c.w,
		src:   c.rank,
		dst:   dst,
		tag:   tag,
		buf:   buf,
		stage: &inflight{owned: true},
	}, nil
}

func (p *psend) Start() error {
	p.lastErr = p.w.send(p.src, p.dst, p.tag, false, p.buf, p.stage)
	return p.lastErr
}

// Wait reports the outcome of the last Start; sends are buffered, so a
// successfully started transfer is already complete.
func (p *psend) Wait() error { return p.lastErr }

// Waitall delegates to the shared implementation — core.Request aliases
// the chanmpi interface, so the wait-all-then-first-error discipline is
// written once for every transport.
func (c *comm) Waitall(reqs ...core.Request) error {
	return chanmpi.Waitall(reqs...)
}

// Interface satisfaction checks.
var (
	_ core.Comm    = (*comm)(nil)
	_ core.World   = (*world)(nil)
	_ core.Request = (*request)(nil)
	_ core.Request = doneRequest{}
)
