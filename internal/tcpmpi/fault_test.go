package tcpmpi_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tcpmpi"
)

// fakeJoin performs the JSON rendezvous handshake of a worker owning rank
// 1 of a 2-rank world — and nothing more: the returned connection has
// completed the handshake but will never write a frame, modelling a
// process that freezes (or dies) immediately after bring-up.
func fakeJoin(t *testing.T, addr string) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rendezvous with %s never came up: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Proto 3 join for ranks [1,2) of a 2-rank world; the mesh address is
	// never used in a two-process world.
	if _, err := fmt.Fprintf(conn, `{"proto":3,"size":2,"rank_lo":1,"rank_hi":2,"addr":"127.0.0.1:1"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		t.Fatalf("reading roster: %v", err)
	}
	return conn
}

// dialCoordinator brings up the local endpoint of a 2-rank world whose
// other process is the fake joiner.
func dialCoordinator(t *testing.T, tr *tcpmpi.Transport) core.World {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var w core.World
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		w, err = tr.Dial(ctx, 2)
	}()
	fake := fakeJoin(t, tr.Addr)
	t.Cleanup(func() { fake.Close() })
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestHeartbeatDetectsSilentPeer pins the heartbeat detector: a peer that
// completes the handshake and then never writes a frame — a frozen
// process, indistinguishable from a slow one without liveness traffic —
// is declared suspect within the heartbeat timeout, failing the world
// with a *core.PeerError naming its rank range and the heartbeat phase,
// so a receive blocked on it unwedges in bounded time instead of forever.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	tr := &tcpmpi.Transport{
		Addr: freeAddr(t), Coordinate: true, RankLo: 0, RankHi: 1,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  60 * time.Millisecond,
	}
	w := dialCoordinator(t, tr)
	defer w.Close()
	c0, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	req, err := c0.Irecv(1, 5, make([]float64, 1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	werr := req.Wait()
	elapsed := time.Since(start)
	var pe *core.PeerError
	if !errors.As(werr, &pe) {
		t.Fatalf("blocked receive returned %v, want a *core.PeerError cause", werr)
	}
	if pe.RankLo != 1 || pe.RankHi != 2 || pe.Phase != core.PhaseHeartbeat {
		t.Fatalf("suspect = [%d,%d) phase %q, want [1,2) %q", pe.RankLo, pe.RankHi, pe.Phase, core.PhaseHeartbeat)
	}
	// Bounded detection: timeout plus a few intervals of slack, not "when
	// the connection happens to die".
	if elapsed > 2*time.Second {
		t.Fatalf("detection took %v, want bounded by the heartbeat timeout", elapsed)
	}
}

// TestCrashedPeerNamedInFrameReadError pins the enriched EOF-without-BYE
// path: a peer whose connection drops with no departure announcement is
// reported as a *core.PeerError naming its rank range in the frame-read
// phase — a crash, attributed, not an anonymous connection loss.
func TestCrashedPeerNamedInFrameReadError(t *testing.T) {
	tr := &tcpmpi.Transport{Addr: freeAddr(t), Coordinate: true, RankLo: 0, RankHi: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var w core.World
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		w, err = tr.Dial(ctx, 2)
	}()
	fake := fakeJoin(t, tr.Addr)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fake.Close() // crash: EOF with no BYE

	c0, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	req, err := c0.Irecv(1, 5, make([]float64, 1))
	if err == nil {
		err = req.Wait()
	}
	var pe *core.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want a *core.PeerError cause", err)
	}
	if pe.RankLo != 1 || pe.RankHi != 2 || pe.Phase != core.PhaseFrameRead {
		t.Fatalf("suspect = [%d,%d) phase %q, want [1,2) %q", pe.RankLo, pe.RankHi, pe.Phase, core.PhaseFrameRead)
	}
}

// dialLoopbackPair brings up both endpoints of a 2-process world in this
// test process over real TCP, applying mutate to each transport before
// dialing.
func dialLoopbackPair(t *testing.T, mutate func(i int, tr *tcpmpi.Transport)) [2]core.World {
	t.Helper()
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var worlds [2]core.World
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := &tcpmpi.Transport{Addr: addr, Coordinate: i == 0, RankLo: i, RankHi: i + 1}
			if mutate != nil {
				mutate(i, tr)
			}
			worlds[i], errs[i] = tr.Dial(ctx, 2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			w.Close()
		}
	})
	return worlds
}

// TestCollectiveDeadlineNamesHungRank pins the per-collective deadline:
// rank 0 enters a reduction that rank 1 never joins — the owning process
// is alive (its connection is healthy), just stuck elsewhere, which
// heartbeats cannot see. The tree-edge wait times out and fails the world
// with a *core.PeerError naming rank 1 in the collective phase.
func TestCollectiveDeadlineNamesHungRank(t *testing.T) {
	worlds := dialLoopbackPair(t, func(i int, tr *tcpmpi.Transport) {
		tr.CollectiveTimeout = 100 * time.Millisecond
	})
	c0, err := worlds[0].Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c0.AllreduceScalar(core.OpSum, 1) // rank 1 never contributes
	var pe *core.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want a *core.PeerError", err)
	}
	if pe.RankLo != 1 || pe.RankHi != 2 || pe.Phase != core.PhaseCollective {
		t.Fatalf("suspect = [%d,%d) phase %q, want [1,2) %q", pe.RankLo, pe.RankHi, pe.Phase, core.PhaseCollective)
	}
}

// TestHeartbeatKeepsQuietWorldAlive pins the no-false-positive side: two
// healthy endpoints exchanging NO application traffic for many timeout
// spans stay alive (their mutual pings refresh the liveness clocks), and
// the world still works afterwards.
func TestHeartbeatKeepsQuietWorldAlive(t *testing.T) {
	worlds := dialLoopbackPair(t, func(i int, tr *tcpmpi.Transport) {
		tr.HeartbeatInterval = 5 * time.Millisecond
		tr.HeartbeatTimeout = 25 * time.Millisecond
	})
	time.Sleep(300 * time.Millisecond) // 12 timeout spans of silence
	c0, err := worlds[0].Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := worlds[1].Comm(1)
	if err != nil {
		t.Fatal(err)
	}
	req, err := c1.Irecv(0, 5, make([]float64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Isend(1, 5, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(); err != nil {
		t.Fatalf("quiet world died under heartbeats: %v", err)
	}
}

// TestHeartbeatAllocGate re-runs the steady-state alloc discipline with
// heartbeats AND the collective deadline enabled: the ping path writes
// through the connection's resident frame scratch, the liveness clocks
// are two atomics, and the deadline timer is resident per communicator —
// so a persistent send/recv round and a scalar reduction round must stay
// at zero allocations even while the monitor ticks underneath.
func TestHeartbeatAllocGate(t *testing.T) {
	worlds := dialLoopbackPair(t, func(i int, tr *tcpmpi.Transport) {
		tr.HeartbeatInterval = 2 * time.Millisecond
		tr.HeartbeatTimeout = 2 * time.Second
		tr.CollectiveTimeout = 10 * time.Second
	})
	c0, err := worlds[0].Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := worlds[1].Comm(1)
	if err != nil {
		t.Fatal(err)
	}

	const n, tag = 256, 9
	out := make([]float64, n)
	in := make([]float64, n)
	ack := make([]float64, 1)
	recv, err := c1.RecvInit(0, tag, in)
	if err != nil {
		t.Fatal(err)
	}
	send, err := c0.SendInit(1, tag, out)
	if err != nil {
		t.Fatal(err)
	}
	ackRecv, err := c0.RecvInit(1, tag+1, ack)
	if err != nil {
		t.Fatal(err)
	}
	ackSend, err := c1.SendInit(0, tag+1, ack)
	if err != nil {
		t.Fatal(err)
	}
	round := func() {
		if err := ackRecv.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv.Start(); err != nil {
			t.Fatal(err)
		}
		if err := send.Start(); err != nil {
			t.Fatal(err)
		}
		if err := recv.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := ackSend.Start(); err != nil {
			t.Fatal(err)
		}
		if err := ackRecv.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("message round with heartbeats allocates %.2f objects, want 0", allocs)
	}

	redDone := make(chan float64, 1)
	redStart := make(chan struct{})
	redStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-redStop:
				return
			case <-redStart:
			}
			v, err := c1.AllreduceScalar(core.OpSum, 2)
			if err != nil {
				v = -1
			}
			redDone <- v
		}
	}()
	defer close(redStop)
	reduceRound := func() {
		redStart <- struct{}{}
		v, err := c0.AllreduceScalar(core.OpSum, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != 3 {
			t.Fatalf("allreduce sum = %g, want 3", v)
		}
		if got := <-redDone; got != 3 {
			t.Fatalf("peer allreduce sum = %g, want 3", got)
		}
	}
	for i := 0; i < 5; i++ {
		reduceRound()
	}
	if allocs := testing.AllocsPerRun(50, reduceRound); allocs != 0 {
		t.Fatalf("deadline-bounded allreduce round allocates %.2f objects, want 0", allocs)
	}
}
