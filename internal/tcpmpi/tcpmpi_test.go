package tcpmpi_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chanmpi"
	"repro/internal/core"
	"repro/internal/genmat"
	"repro/internal/matrix"
	"repro/internal/solver"
	"repro/internal/tcpmpi"
)

// freeAddr reserves an ephemeral loopback port for a rendezvous.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialSplit brings up one world of `size` ranks split across len(splits)
// endpoints inside this test process — real TCP on loopback, every
// handshake and frame path exercised, but no OS process boundary (see
// proc_test.go for that). splits lists each endpoint's [lo,hi) range;
// the first endpoint coordinates.
func dialSplit(t *testing.T, size int, splits [][2]int) []core.World {
	t.Helper()
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	worlds := make([]core.World, len(splits))
	errs := make([]error, len(splits))
	var wg sync.WaitGroup
	for i, s := range splits {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			tr := &tcpmpi.Transport{Addr: addr, Coordinate: i == 0, RankLo: lo, RankHi: hi}
			worlds[i], errs[i] = tr.Dial(ctx, size)
		}(i, s[0], s[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			w.Close()
		}
	})
	return worlds
}

// comms returns one communicator per rank, pulled from whichever world
// owns it.
func comms(t *testing.T, worlds []core.World, size int) []core.Comm {
	t.Helper()
	cs := make([]core.Comm, size)
	for _, w := range worlds {
		for _, r := range w.LocalRanks() {
			c, err := w.Comm(r)
			if err != nil {
				t.Fatal(err)
			}
			cs[r] = c
		}
	}
	return cs
}

// spmd runs body once per rank on its own goroutine and returns the first
// error.
func spmd(cs []core.Comm, body func(c core.Comm) error) error {
	errs := make([]error, len(cs))
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c core.Comm) {
			defer wg.Done()
			errs[i] = body(c)
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func TestWorldBringUpAndAccessors(t *testing.T) {
	worlds := dialSplit(t, 5, [][2]int{{0, 2}, {2, 3}, {3, 5}})
	if worlds[0].Size() != 5 {
		t.Errorf("Size() = %d", worlds[0].Size())
	}
	got := worlds[2].LocalRanks()
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("LocalRanks() = %v, want [3 4]", got)
	}
	if _, err := worlds[0].Comm(4); err == nil {
		t.Error("Comm for a remote rank accepted")
	}
	c, err := worlds[1].Comm(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 2 || c.Size() != 5 {
		t.Errorf("comm identity: rank %d size %d", c.Rank(), c.Size())
	}
}

func TestCrossProcessPingPong(t *testing.T) {
	worlds := dialSplit(t, 2, [][2]int{{0, 1}, {1, 2}})
	cs := comms(t, worlds, 2)
	err := spmd(cs, func(c core.Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Isend(1, 7, []float64{1, 2, 3}); err != nil {
				return err
			}
			buf := make([]float64, 3)
			req, err := c.Irecv(1, 8, buf)
			if err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if buf[0] != 2 || buf[1] != 4 || buf[2] != 6 {
				return fmt.Errorf("rank 0 got %v", buf)
			}
			return nil
		}
		buf := make([]float64, 3)
		req, err := c.Irecv(0, 7, buf)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		for i := range buf {
			buf[i] *= 2
		}
		_, err = c.Isend(0, 8, buf)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingAndTagSelectivity(t *testing.T) {
	worlds := dialSplit(t, 2, [][2]int{{0, 1}, {1, 2}})
	cs := comms(t, worlds, 2)
	err := spmd(cs, func(c core.Comm) error {
		if c.Rank() == 0 {
			for k := 0; k < 10; k++ {
				if _, err := c.Isend(1, 3, []float64{float64(k)}); err != nil {
					return err
				}
			}
			if _, err := c.Isend(1, 99, []float64{-1}); err != nil {
				return err
			}
			return nil
		}
		// Tag 99 first, although it was sent last.
		odd := make([]float64, 1)
		req, err := c.Irecv(0, 99, odd)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if odd[0] != -1 {
			return fmt.Errorf("tag selectivity broken: %v", odd[0])
		}
		// Same-tag messages arrive in posting order.
		for k := 0; k < 10; k++ {
			buf := make([]float64, 1)
			req, err := c.Irecv(0, 3, buf)
			if err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if buf[0] != float64(k) {
				return fmt.Errorf("overtaking: got %v at position %d", buf[0], k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectives(t *testing.T) {
	const size = 7
	worlds := dialSplit(t, size, [][2]int{{0, 3}, {3, 5}, {5, 7}})
	cs := comms(t, worlds, size)
	err := spmd(cs, func(c core.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		sum, err := c.AllreduceScalar(core.OpSum, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		if sum != 28 { // 1+…+7
			return fmt.Errorf("rank %d: sum = %g, want 28", c.Rank(), sum)
		}
		mx, err := c.AllreduceScalar(core.OpMax, float64(c.Rank()))
		if err != nil {
			return err
		}
		if mx != 6 {
			return fmt.Errorf("max = %g", mx)
		}
		mn, err := c.AllreduceScalar(core.OpMin, -float64(c.Rank()))
		if err != nil {
			return err
		}
		if mn != -6 {
			return fmt.Errorf("min = %g", mn)
		}
		vec, err := c.Allreduce(core.OpSum, []float64{1, float64(c.Rank())})
		if err != nil {
			return err
		}
		if vec[0] != size || vec[1] != 21 {
			return fmt.Errorf("vector allreduce = %v", vec)
		}
		g, err := c.AllgatherInt64(int64(c.Rank()*10 - 5))
		if err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			if g[r] != int64(r*10-5) {
				return fmt.Errorf("gather[%d] = %d", r, g[r])
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceBitIdenticalToChanmpi(t *testing.T) {
	// The canonical rank-order combine: tcpmpi's tree reduction must
	// produce the same floating-point bits as the in-process runtime for
	// the same inputs — the property whole-solve bit-identity rests on.
	const size = 6
	ins := make([][]float64, size)
	for r := range ins {
		ins[r] = []float64{1.0 / float64(r+3), float64(r) * 0.1, -7.77e-3 * float64(r*r)}
	}
	want := make([][]float64, size)
	cw, err := chanmpi.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Run(func(c *chanmpi.Comm) error {
		res, err := c.Allreduce(chanmpi.OpSum, ins[c.Rank()])
		want[c.Rank()] = append([]float64(nil), res...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	worlds := dialSplit(t, size, [][2]int{{0, 2}, {2, 6}})
	cs := comms(t, worlds, size)
	if err := spmd(cs, func(c core.Comm) error {
		res, err := c.Allreduce(core.OpSum, ins[c.Rank()])
		if err != nil {
			return err
		}
		for i := range res {
			if res[i] != want[c.Rank()][i] {
				return fmt.Errorf("rank %d elem %d: tcpmpi %v != chanmpi %v", c.Rank(), i, res[i], want[c.Rank()][i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationFailsWorld(t *testing.T) {
	worlds := dialSplit(t, 2, [][2]int{{0, 1}, {1, 2}})
	cs := comms(t, worlds, 2)
	errCh := make(chan error, 1)
	go func() {
		errCh <- spmd(cs, func(c core.Comm) error {
			if c.Rank() == 0 {
				_, err := c.Isend(1, 0, []float64{1, 2, 3, 4})
				return err
			}
			buf := make([]float64, 2)
			req, err := c.Irecv(0, 0, buf)
			if err != nil {
				return err
			}
			return req.Wait()
		})
	}()
	select {
	case err := <-errCh:
		var trunc *core.TruncationError
		if !errors.As(err, &trunc) {
			t.Fatalf("got %v, want *TruncationError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("truncation wedged the world")
	}
	// The receiving endpoint's world is failed; subsequent ops error out.
	if _, err := cs[1].Isend(0, 1, []float64{1}); err == nil {
		t.Error("send on failed world succeeded")
	}
}

func TestPeerDepartureUnblocksReceives(t *testing.T) {
	worlds := dialSplit(t, 2, [][2]int{{0, 1}, {1, 2}})
	cs := comms(t, worlds, 2)
	// Rank 0 sends one message, then its endpoint closes gracefully. Rank
	// 1 must still receive the already-sent message afterwards, while a
	// receive that can never be matched unwedges with a departure error
	// instead of hanging — and the survivor's world is NOT failed.
	if _, err := cs[0].Isend(1, 4, []float64{42}); err != nil {
		t.Fatal(err)
	}
	pending := make(chan error, 1)
	go func() {
		buf := make([]float64, 1)
		req, err := cs[1].Irecv(0, 5, buf) // never sent
		if err != nil {
			pending <- err
			return
		}
		pending <- req.Wait()
	}()
	time.Sleep(50 * time.Millisecond)
	worlds[0].Close()
	select {
	case err := <-pending:
		if err == nil || !strings.Contains(err.Error(), "closed its world") {
			t.Fatalf("unmatched receive got %v, want a departure error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receive stayed wedged after the peer departed")
	}
	// The buffered message outlives the departure.
	buf := make([]float64, 1)
	req, err := cs[1].Irecv(0, 4, buf)
	if err != nil {
		t.Fatalf("receiving a buffered message after departure: %v", err)
	}
	if err := req.Wait(); err != nil || buf[0] != 42 {
		t.Fatalf("buffered message after departure: %v (buf %v)", err, buf)
	}
	// A fresh receive from the departed rank errors immediately.
	if _, err := cs[1].Irecv(0, 9, make([]float64, 1)); err == nil || !strings.Contains(err.Error(), "closed its world") {
		t.Fatalf("post-departure receive got %v, want a departure error", err)
	}
	// Sends toward the departed process error without failing the world.
	if _, err := cs[1].Isend(0, 9, []float64{1}); err == nil {
		t.Fatal("send to departed process succeeded")
	}
}

func TestDialValidation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := (&tcpmpi.Transport{Addr: "127.0.0.1:1", RankLo: 0, RankHi: 0, Coordinate: true}).Dial(ctx, 2); err == nil {
		t.Error("empty rank range accepted")
	}
	if _, err := (&tcpmpi.Transport{Addr: "127.0.0.1:1", RankLo: 0, RankHi: 3, Coordinate: true}).Dial(ctx, 2); err == nil {
		t.Error("rank range beyond world size accepted")
	}
	if _, err := (&tcpmpi.Transport{RankLo: 0, RankHi: 2, Coordinate: true}).Dial(ctx, 2); err == nil {
		t.Error("missing rendezvous address accepted")
	}
	if _, err := (&tcpmpi.Transport{Addr: "127.0.0.1:1", RankLo: 0, RankHi: 2, Coordinate: true}).Dial(ctx, 0); err == nil {
		t.Error("world size 0 accepted")
	}
}

func TestWorkerDialTimesOutWithoutCoordinator(t *testing.T) {
	addr := freeAddr(t) // nobody listens here
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := (&tcpmpi.Transport{Addr: addr, RankLo: 1, RankHi: 2, RetryInterval: 20 * time.Millisecond}).Dial(ctx, 2)
	if err == nil {
		t.Fatal("worker dialed a world with no coordinator")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("worker did not respect the dial context")
	}
}

func TestCoordinatorRejectsOverlappingRanges(t *testing.T) {
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var coordErr, workErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, coordErr = (&tcpmpi.Transport{Addr: addr, Coordinate: true, RankLo: 0, RankHi: 2}).Dial(ctx, 3)
	}()
	go func() {
		defer wg.Done()
		// Overlaps the coordinator's range and leaves rank 2 uncovered —
		// but still brings the covered count to 3, ending the rendezvous.
		_, workErr = (&tcpmpi.Transport{Addr: addr, RankLo: 1, RankHi: 2}).Dial(ctx, 3)
	}()
	wg.Wait()
	if coordErr == nil || workErr == nil {
		t.Fatalf("overlapping ranges accepted: coord %v, worker %v", coordErr, workErr)
	}
}

// buildFixture generates the deterministic test system shared by the
// cluster-level tests: both endpoints build the identical plan locally,
// exactly as two real worker processes would.
func buildFixture(t *testing.T, n, ranks int) (*matrix.CSR, *core.Plan) {
	t.Helper()
	g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
		N: n, Bandwidth: n / 3, PerRow: 5, Seed: 12345, Symmetric: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Materialize(g)
	plan, err := core.BuildPlan(a, core.PartitionByNnz(a, ranks), true)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

func TestClusterMulOverTCPMatchesChanTransport(t *testing.T) {
	// Two endpoints, each driving a rank subset of the same plan through
	// its own Cluster — the multi-process execution shape, minus the
	// process boundary. Every mode must reproduce the all-local chan
	// cluster's result bit for bit.
	const n, ranks = 240, 4
	_, refPlan := buildFixture(t, n, ranks)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(i+2)
	}
	refCl, err := core.NewCluster(refPlan, core.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer refCl.Close()

	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	splits := [][2]int{{0, 2}, {2, 4}}
	clusters := make([]*core.Cluster, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, s := range splits {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			_, plan := buildFixture(t, n, ranks)
			clusters[i], errs[i] = core.NewCluster(plan,
				core.WithThreads(2),
				core.WithTransport(&tcpmpi.Transport{Addr: addr, Coordinate: i == 0, RankLo: lo, RankHi: hi}),
				core.WithDialContext(ctx))
		}(i, s[0], s[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cluster %d: %v", i, err)
		}
	}
	defer func() {
		for _, cl := range clusters {
			cl.Close()
		}
	}()
	if lr := clusters[1].LocalRanks(); len(lr) != 2 || lr[0] != 2 || lr[1] != 3 {
		t.Fatalf("worker cluster LocalRanks = %v, want [2 3]", lr)
	}

	want := make([]float64, n)
	for _, mode := range core.Modes {
		if err := refCl.SetMode(mode); err != nil {
			t.Fatal(err)
		}
		if err := refCl.Mul(want, x, 1); err != nil {
			t.Fatal(err)
		}
		// SPMD: both endpoint clusters run the same Mul concurrently;
		// each fills the rows of its local ranks.
		ys := make([][]float64, 2)
		mulErrs := make([]error, 2)
		var mw sync.WaitGroup
		for i, cl := range clusters {
			mw.Add(1)
			go func(i int, cl *core.Cluster) {
				defer mw.Done()
				if err := cl.SetMode(mode); err != nil {
					mulErrs[i] = err
					return
				}
				ys[i] = make([]float64, n)
				mulErrs[i] = cl.Mul(ys[i], x, 1)
			}(i, cl)
		}
		mw.Wait()
		for i, err := range mulErrs {
			if err != nil {
				t.Fatalf("mode %v cluster %d: %v", mode, i, err)
			}
		}
		for i, cl := range clusters {
			for _, r := range cl.LocalRanks() {
				rg := cl.Plan().Ranks[r].Rows
				for row := rg.Lo; row < rg.Hi; row++ {
					if ys[i][row] != want[row] {
						t.Fatalf("mode %v row %d: tcp %v != chan %v", mode, row, ys[i][row], want[row])
					}
				}
			}
		}
	}
}

func TestDistCGOverTCPBitIdenticalInProcess(t *testing.T) {
	// Full DistCG across two TCP endpoints (in-process variant of the
	// examples/tcp proof; proc_test.go runs it across real OS processes):
	// iteration counts, residuals and the solution rows of each endpoint
	// must match the all-local chan-transport solve bit for bit.
	const n, ranks = 180, 4
	// SPD fixture, rebuilt identically per endpoint — exactly as two real
	// worker processes would construct it from the shared configuration.
	spdPlan := func() (*matrix.CSR, *core.Plan) {
		g, err := genmat.NewRandomBand(genmat.RandomBandConfig{
			N: n, Bandwidth: n / 3, PerRow: 5, Seed: 12345, Symmetric: true, SPD: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sa := matrix.Materialize(g)
		plan, err := core.BuildPlan(sa, core.PartitionByNnz(sa, ranks), true)
		if err != nil {
			t.Fatal(err)
		}
		return sa, plan
	}
	a, refPlan := spdPlan()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64((i*7)%13) / 13
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	refCl, err := core.NewCluster(refPlan, core.WithThreads(2), core.WithMode(core.TaskMode))
	if err != nil {
		t.Fatal(err)
	}
	defer refCl.Close()
	xRef := make([]float64, n)
	resRef, err := solver.DistCG(refCl, b, xRef, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !resRef.Converged {
		t.Fatalf("reference CG did not converge (residual %g)", resRef.Residual)
	}

	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	splits := [][2]int{{0, 2}, {2, 4}}
	type out struct {
		x   []float64
		res solver.CGResult
		cl  *core.Cluster
		err error
	}
	outs := make([]out, 2)
	var wg sync.WaitGroup
	for i, s := range splits {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			o := &outs[i]
			_, plan := spdPlan()
			cl, err := core.NewCluster(plan,
				core.WithThreads(2),
				core.WithMode(core.TaskMode),
				core.WithTransport(&tcpmpi.Transport{Addr: addr, Coordinate: i == 0, RankLo: lo, RankHi: hi}),
				core.WithDialContext(ctx))
			if err != nil {
				o.err = err
				return
			}
			o.cl = cl
			o.x = make([]float64, n)
			o.res, o.err = solver.DistCG(cl, b, o.x, 1e-10, 2000)
		}(i, s[0], s[1])
	}
	wg.Wait()
	defer func() {
		for _, o := range outs {
			if o.cl != nil {
				o.cl.Close()
			}
		}
	}()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("endpoint %d: %v", i, o.err)
		}
		if o.res.Iterations != resRef.Iterations || o.res.Residual != resRef.Residual {
			t.Fatalf("endpoint %d: iterations %d residual %v, reference %d %v",
				i, o.res.Iterations, o.res.Residual, resRef.Iterations, resRef.Residual)
		}
		for _, r := range o.cl.LocalRanks() {
			rg := o.cl.Plan().Ranks[r].Rows
			for row := rg.Lo; row < rg.Hi; row++ {
				if o.x[row] != xRef[row] {
					t.Fatalf("endpoint %d row %d: tcp %v != chan %v", i, row, o.x[row], xRef[row])
				}
			}
		}
	}
}
