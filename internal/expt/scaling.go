package expt

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/simexec"
)

// nowSeconds is time.Now in seconds, separated for testability.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// WorkloadCache builds and memoizes simulator workloads per rank count so a
// strong-scaling sweep streams each partition of the matrix only once.
type WorkloadCache struct {
	Name  string
	Src   matrix.PatternSource
	Kappa float64
	cache map[int]*simexec.Workload
}

// NewWorkloadCache wraps a pattern source.
func NewWorkloadCache(name string, src matrix.PatternSource, kappa float64) *WorkloadCache {
	return &WorkloadCache{Name: name, Src: src, Kappa: kappa, cache: map[int]*simexec.Workload{}}
}

// For returns the workload partitioned over the given rank count.
func (c *WorkloadCache) For(ranks int) (*simexec.Workload, error) {
	if wl, ok := c.cache[ranks]; ok {
		return wl, nil
	}
	part := core.PartitionByNnz(c.Src, ranks)
	plan, err := core.BuildPlan(c.Src, part, false)
	if err != nil {
		return nil, err
	}
	wl := simexec.WorkloadFromPlan(plan, c.Name, c.Kappa)
	c.cache[ranks] = wl
	return wl, nil
}

// ScalingPoint is one strong-scaling measurement.
type ScalingPoint struct {
	Nodes      int
	Layout     simexec.Layout
	Mode       core.Mode
	GFlops     float64
	Ranks      int
	Efficiency float64 // vs best single-node × nodes
}

// ScalingStudy is the Fig. 5 / Fig. 6 runner.
type ScalingStudy struct {
	Cluster    machine.ClusterSpec
	NodeCounts []int
	Layouts    []simexec.Layout
	Modes      []core.Mode
	Iters      int
	// AsyncProgress runs the ablation with an MPI progress thread.
	AsyncProgress bool
	// TorusOccupancy < 1 scatters the job over a larger shared torus
	// (Cray runs; see simexec.Config).
	TorusOccupancy float64
	// PlacementSeed seeds the scattered placement.
	PlacementSeed uint64
}

// DefaultNodeCounts mirrors the figures' x axis (1–32 nodes).
var DefaultNodeCounts = []int{1, 2, 4, 8, 16, 24, 32}

// Run sweeps the study over the workload cache and returns all valid
// points (combinations the hardware cannot run, e.g. task mode without
// SMT in a pure-MPI layout, are skipped).
func (s *ScalingStudy) Run(wc *WorkloadCache) ([]ScalingPoint, error) {
	layouts := s.Layouts
	if layouts == nil {
		layouts = simexec.Layouts
	}
	modes := s.Modes
	if modes == nil {
		modes = core.Modes
	}
	nodeCounts := s.NodeCounts
	if nodeCounts == nil {
		nodeCounts = DefaultNodeCounts
	}
	var points []ScalingPoint
	for _, nodes := range nodeCounts {
		for _, layout := range layouts {
			for _, mode := range modes {
				cfg := simexec.Config{
					Cluster:        s.Cluster,
					Nodes:          nodes,
					Layout:         layout,
					Mode:           mode,
					Iters:          s.Iters,
					AsyncProgress:  s.AsyncProgress,
					TorusOccupancy: s.TorusOccupancy,
					PlacementSeed:  s.PlacementSeed,
				}
				if mode == core.TaskMode && s.Cluster.Node.SMTWays < 2 && layout == simexec.ProcPerCore {
					// No virtual core for the communication thread and no
					// spare physical core: the variant does not exist.
					continue
				}
				wl, err := wc.For(cfg.RanksFor())
				if err != nil {
					return nil, err
				}
				res, err := simexec.Run(cfg, wl)
				if err != nil {
					return nil, fmt.Errorf("expt: %d nodes %v %v: %w", nodes, layout, mode, err)
				}
				points = append(points, ScalingPoint{
					Nodes: nodes, Layout: layout, Mode: mode,
					GFlops: res.GFlops, Ranks: res.Ranks,
				})
			}
		}
	}
	fillEfficiency(points)
	return points, nil
}

// fillEfficiency normalizes by the best single-node performance (the
// paper's 50%-parallel-efficiency reference).
func fillEfficiency(points []ScalingPoint) {
	var best1 float64
	for _, p := range points {
		if p.Nodes == 1 && p.GFlops > best1 {
			best1 = p.GFlops
		}
	}
	if best1 == 0 {
		return
	}
	for i := range points {
		points[i].Efficiency = points[i].GFlops / (float64(points[i].Nodes) * best1)
	}
}

// PlacementStudy runs one torus configuration under several scattered
// placements and returns the per-seed GFlops — quantifying the paper's
// "strong influence of job topology and machine load on the communication
// performance over the 2D torus network".
func PlacementStudy(cluster machine.ClusterSpec, wc *WorkloadCache,
	nodes int, layout simexec.Layout, mode core.Mode,
	occupancy float64, seeds, iters int) ([]float64, error) {
	cfg := simexec.Config{
		Cluster: cluster, Nodes: nodes, Layout: layout, Mode: mode,
		Iters: iters, TorusOccupancy: occupancy,
	}
	wl, err := wc.For(cfg.RanksFor())
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, seeds)
	for s := 0; s < seeds; s++ {
		cfg.PlacementSeed = uint64(s) * 7919
		res, err := simexec.Run(cfg, wl)
		if err != nil {
			return nil, err
		}
		out = append(out, res.GFlops)
	}
	return out, nil
}

// BestPerNodeCount reduces a point set to the best GFlops per node count —
// the "best Cray XE6" reference line in Figs. 5 and 6.
func BestPerNodeCount(points []ScalingPoint) map[int]ScalingPoint {
	best := map[int]ScalingPoint{}
	for _, p := range points {
		if b, ok := best[p.Nodes]; !ok || p.GFlops > b.GFlops {
			best[p.Nodes] = p
		}
	}
	return best
}

// RenderScaling writes the three-panel table of one figure plus ASCII plots.
func RenderScaling(w io.Writer, title string, points []ScalingPoint, cray map[int]ScalingPoint) error {
	fmt.Fprintf(w, "\n%s\n", title)
	byLayout := map[simexec.Layout][]ScalingPoint{}
	for _, p := range points {
		byLayout[p.Layout] = append(byLayout[p.Layout], p)
	}
	for _, layout := range simexec.Layouts {
		pts := byLayout[layout]
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(w, "\npanel: one MPI process %s\n", layoutPhrase(layout))
		tbl := NewTable("nodes", "ranks", "mode", "GFlop/s", "efficiency")
		for _, p := range pts {
			tbl.Row(p.Nodes, p.Ranks, p.Mode.String(),
				fmt.Sprintf("%.2f", p.GFlops),
				fmt.Sprintf("%.0f%%", 100*p.Efficiency))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if err := renderScalingPlot(w, pts, cray); err != nil {
			return err
		}
	}
	return nil
}

func layoutPhrase(l simexec.Layout) string {
	switch l {
	case simexec.ProcPerCore:
		return "per physical core (pure MPI)"
	case simexec.ProcPerLD:
		return "per NUMA locality domain"
	default:
		return "per node"
	}
}

func renderScalingPlot(w io.Writer, pts []ScalingPoint, cray map[int]ScalingPoint) error {
	markers := map[core.Mode]byte{
		core.VectorNoOverlap:    'o',
		core.VectorNaiveOverlap: 'x',
		core.TaskMode:           '*',
	}
	byMode := map[core.Mode][]ScalingPoint{}
	var xs []float64
	seen := map[int]bool{}
	for _, p := range pts {
		byMode[p.Mode] = append(byMode[p.Mode], p)
		if !seen[p.Nodes] {
			seen[p.Nodes] = true
			xs = append(xs, float64(p.Nodes))
		}
	}
	plot := Plot{XLabel: "nodes", YLabel: "GFlop/s", X: xs}
	for _, mode := range core.Modes {
		mp := byMode[mode]
		if len(mp) == 0 {
			continue
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			for _, p := range mp {
				if p.Nodes == int(x) {
					ys[i] = p.GFlops
				}
			}
		}
		plot.Series = append(plot.Series, PlotSeries{Name: mode.String(), Y: ys, Marker: markers[mode]})
	}
	if cray != nil {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			if p, ok := cray[int(x)]; ok {
				ys[i] = p.GFlops
			}
		}
		plot.Series = append(plot.Series, PlotSeries{Name: "best Cray XE6", Y: ys, Marker: '+'})
	}
	return plot.Render(w, 64, 16)
}
