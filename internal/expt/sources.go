// Package expt contains one runner per figure of the paper's evaluation:
// sparsity patterns (Fig. 1), node-level performance (Fig. 3), the κ
// measurements of §2, and the strong-scaling studies (Figs. 5 and 6). The
// runners produce plain-text tables and ASCII plots, and are shared by the
// command-line tools, the benchmark harness, and EXPERIMENTS.md.
package expt

import (
	"fmt"

	"repro/internal/genmat"
	"repro/internal/matrix"
)

// Scale selects the problem size. The paper's exact sizes (Full) need a few
// GB of streaming passes; Medium keeps every figure reproducible in minutes
// and Small in seconds.
type Scale int

const (
	// Small: Holstein N = 50,400; Poisson N = 46,656.
	Small Scale = iota
	// Medium: Holstein N = 514,800; Poisson N = 1,152,000.
	Medium
	// Full: the paper's N = 6,201,600 (Holstein) and N = 22,770,000
	// (Poisson; the original sAMG car mesh had 22,786,800 unknowns).
	Full
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("expt: unknown scale %q (small|medium|full)", s)
}

// HolsteinSource builds the Holstein–Hubbard matrix source at a scale.
func HolsteinSource(o genmat.Ordering, s Scale) (*genmat.Holstein, error) {
	cfg := genmat.PaperConfig(o)
	switch s {
	case Small:
		cfg.MaxPhonons = 4 // phonon dim 126 → N = 50,400
	case Medium:
		cfg.MaxPhonons = 8 // phonon dim 1287 → N = 514,800
	case Full:
		// paper scale: MaxPhonons = 15 → N = 6,201,600
	}
	return genmat.NewHolstein(cfg)
}

// PoissonSource builds the sAMG-substitute Poisson matrix at a scale.
func PoissonSource(s Scale) (*genmat.Poisson, error) {
	switch s {
	case Small:
		return genmat.NewPoisson(genmat.SmallPoissonConfig())
	case Medium:
		return genmat.NewPoisson(genmat.PoissonConfig{
			Nx: 120, Ny: 100, Nz: 96, GradingZ: 1.02, PermWindow: 64, PermSeed: 1,
		})
	default:
		return genmat.NewPoisson(genmat.PaperPoissonConfig())
	}
}

// PaperKappa returns the κ the paper measured for each workload (§2):
// HMeP 2.5, HMEp 3.79; the sAMG matrix has strong locality (Nnzr ≈ 7,
// near-diagonal pattern), modeled with a small κ.
func PaperKappa(name string) float64 {
	switch name {
	case "HMeP":
		return 2.5
	case "HMEp":
		return 3.79
	default: // sAMG
		return 0.5
	}
}

// SourceInfo bundles a named matrix source.
type SourceInfo struct {
	Name string
	Src  matrix.ValueSource
}

// Sources returns the study's three matrices at a scale, in Fig. 1 order:
// HMEp, HMeP, sAMG.
func Sources(s Scale) ([]SourceInfo, error) {
	hmEp, err := HolsteinSource(genmat.HMEp, s)
	if err != nil {
		return nil, err
	}
	hmeP, err := HolsteinSource(genmat.HMeP, s)
	if err != nil {
		return nil, err
	}
	poisson, err := PoissonSource(s)
	if err != nil {
		return nil, err
	}
	return []SourceInfo{
		{Name: "HMEp", Src: hmEp},
		{Name: "HMeP", Src: hmeP},
		{Name: "sAMG", Src: poisson},
	}, nil
}
