package expt

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/simexec"
)

// BalanceRow is one row of the load-balancing study (§5 lists "a more
// complete investigation of load balancing effects" as future work; this
// runner performs it on the simulator).
type BalanceRow struct {
	Name          string
	Nodes         int
	Ranks         int
	ImbalanceNnz  float64 // maxNnz/avgNnz under nonzero balancing
	ImbalanceRows float64 // same under naive equal-rows splitting
	GFlopsNnz     float64
	GFlopsRows    float64
}

// rowPartitionWorkload builds a simulator workload under naive equal-rows
// partitioning (the baseline the paper's footnote 2 rejects).
func rowPartitionWorkload(name string, src matrix.PatternSource, kappa float64, ranks int) (*simexec.Workload, error) {
	rows, _ := src.Dims()
	part := core.PartitionByRows(rows, ranks)
	plan, err := core.BuildPlan(src, part, false)
	if err != nil {
		return nil, err
	}
	return simexec.WorkloadFromPlan(plan, name, kappa), nil
}

// LoadBalanceStudy compares nonzero-balanced against row-balanced
// partitioning for the given matrix on the simulated cluster.
func LoadBalanceStudy(cluster machine.ClusterSpec, name string,
	src matrix.PatternSource, kappa float64, nodeCounts []int, iters int) ([]BalanceRow, error) {
	wcNnz := NewWorkloadCache(name, src, kappa)
	rows, _ := src.Dims()
	var out []BalanceRow
	for _, nodes := range nodeCounts {
		cfg := simexec.Config{
			Cluster: cluster, Nodes: nodes,
			Layout: simexec.ProcPerLD, Mode: core.VectorNoOverlap, Iters: iters,
		}
		ranks := cfg.RanksFor()

		wlN, err := wcNnz.For(ranks)
		if err != nil {
			return nil, err
		}
		resN, err := simexec.Run(cfg, wlN)
		if err != nil {
			return nil, err
		}
		wlR, err := rowPartitionWorkload(name, src, kappa, ranks)
		if err != nil {
			return nil, err
		}
		resR, err := simexec.Run(cfg, wlR)
		if err != nil {
			return nil, err
		}
		out = append(out, BalanceRow{
			Name: name, Nodes: nodes, Ranks: ranks,
			ImbalanceNnz:  core.PartitionByNnz(src, ranks).Imbalance(src),
			ImbalanceRows: core.PartitionByRows(rows, ranks).Imbalance(src),
			GFlopsNnz:     resN.GFlops,
			GFlopsRows:    resR.GFlops,
		})
	}
	return out, nil
}

// RenderBalance writes the study as a table.
func RenderBalance(w io.Writer, rows []BalanceRow) error {
	tbl := NewTable("matrix", "nodes", "ranks",
		"imbalance (nnz)", "imbalance (rows)", "GFlop/s (nnz)", "GFlop/s (rows)", "gain")
	for _, r := range rows {
		gain := 0.0
		if r.GFlopsRows > 0 {
			gain = r.GFlopsNnz/r.GFlopsRows - 1
		}
		tbl.Row(r.Name, r.Nodes, r.Ranks,
			fmt.Sprintf("%.3f", r.ImbalanceNnz),
			fmt.Sprintf("%.3f", r.ImbalanceRows),
			fmt.Sprintf("%.2f", r.GFlopsNnz),
			fmt.Sprintf("%.2f", r.GFlopsRows),
			fmt.Sprintf("%+.1f%%", 100*gain))
	}
	return tbl.Render(w)
}
